// Capacity planning: given a target model, find the cheapest commodity
// server that can fine-tune it, and compare what each training system could
// do with the same machine — the workflow behind the paper's Figs. 2a/6/8.
package main

import (
	"fmt"

	"ratel"
)

func main() {
	target := "175B"
	fmt.Printf("planning a server to fine-tune the %s model\n\n", target)

	// Sweep main-memory sizes and GPUs the way Fig. 6 does.
	gpus := []ratel.GPU{ratel.RTX4080, ratel.RTX3090, ratel.RTX4090}
	mems := []ratel.Bytes{128 * ratel.GiB, 256 * ratel.GiB, 512 * ratel.GiB, 768 * ratel.GiB}

	fmt.Println("smallest feasible configurations (Ratel):")
	for _, gpu := range gpus {
		for _, mem := range mems {
			srv := ratel.EvalServer(gpu, mem, 12)
			cfg, ok, err := ratel.MaxTrainable("Ratel", srv, 1)
			if err != nil {
				panic(err)
			}
			if ok && cfg.Name == target {
				fmt.Printf("  %-28s + %3.0f GiB -> trains %s ($%.0f with 12 SSDs)\n",
					gpu.Name, mem.GiBf(), target, srv.PriceUSD())
				break
			}
		}
	}

	// What can the baselines do with the best of those machines?
	srv := ratel.EvalServer(ratel.RTX4090, 768*ratel.GiB, 12)
	fmt.Printf("\nmax trainable model on the full evaluation server (768 GiB, 12 SSDs):\n")
	for _, sys := range []string{"FlashNeuron", "Colossal-AI", "ZeRO-Offload", "ZeRO-Infinity", "Ratel"} {
		cfg, ok, err := ratel.MaxTrainable(sys, srv, 1)
		if err != nil {
			panic(err)
		}
		name := "-"
		if ok {
			name = cfg.Name
		}
		fmt.Printf("  %-14s %s\n", sys, name)
	}

	// And the predicted speed of fine-tuning the target on that server.
	rep, err := ratel.Predict("Ratel", target, 16, srv)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\npredicted %s fine-tuning at batch 16: %.1f s/iter, %.0f tokens/s, %.0f TFLOPS\n",
		target, rep.Makespan, rep.TokensPerSec, rep.TFLOPS)
}
