// Multi-GPU scaling: Ratel's holistic offloading on a server with several
// consumer GPUs (the paper's §V-G / Fig. 11 scenario), plus the §V-I
// cost-effectiveness comparison against a DGX-A100.
package main

import (
	"fmt"
	"log"

	"ratel"
	"ratel/internal/agoffload"
	"ratel/internal/cost"
	"ratel/internal/data"
	"ratel/internal/engine"
	"ratel/internal/itersim"
	"ratel/internal/model"
	"ratel/internal/nn"
	"ratel/internal/strategy"
)

func main() {
	base := ratel.EvalServer(ratel.RTX4090, 768*ratel.GiB, 12)

	fmt.Println("13B fine-tuning throughput, data parallel over consumer GPUs:")
	fmt.Printf("%-6s  %-14s  %-14s\n", "GPUs", "ZeRO-Infinity", "Ratel")
	for _, n := range []int{1, 2, 4} {
		srv := base.WithGPUs(n)
		gbatch := 32 * n
		zi := tput(strategy.ZeROInfinity, "13B", gbatch, srv)
		ra := tput(strategy.Ratel, "13B", gbatch, srv)
		fmt.Printf("%-6d  %-14s  %-14s\n", n, zi, ra)
	}

	fmt.Println("\ncost-effectiveness fine-tuning the 30B model (Fig. 13):")
	baseline, err := cost.MegatronBaseline(model.MustByName("30B"), 32)
	if err != nil {
		panic(err)
	}
	fmt.Printf("  %-24s $%8.0f  %6.1f tok/s per $1k\n",
		baseline.Label, baseline.PriceUSD, baseline.TokensPerSecPer1kUSD)
	sweep, err := cost.RatelSweep(model.MustByName("30B"), base.WithGPUs(4), 64, []int{1, 3, 6, 12})
	if err != nil {
		panic(err)
	}
	for _, p := range sweep {
		fmt.Printf("  %-24s $%8.0f  %6.1f tok/s per $1k\n", p.Label, p.PriceUSD, p.TokensPerSecPer1kUSD)
	}
	fmt.Printf("best advantage: %.2fx (paper: up to 2.17x)\n", cost.BestAdvantage(sweep, baseline))

	// And the real thing at mini scale: two engine replicas fine-tuning
	// data-parallel shards with an averaged all-reduce and one synchronous
	// optimizer pass (§V-G's setup, minus the GPUs).
	fmt.Println("\nreal data-parallel fine-tune (2 replicas, mini model):")
	cfg := engine.Config{
		Model:    nn.Config{Vocab: 48, Seq: 12, Hidden: 16, Heads: 2, Layers: 3, Batch: 4, Seed: 2},
		GradMode: agoffload.Optimized,
		Devices:  2,
	}
	dp, err := engine.NewDataParallel(cfg, 2)
	if err != nil {
		log.Fatal(err)
	}
	defer dp.Close()
	a, err := data.NewLoader(data.Progression, cfg.Model.Batch, cfg.Model.Seq, cfg.Model.Vocab, 1)
	if err != nil {
		log.Fatal(err)
	}
	b, err := data.NewLoader(data.Progression, cfg.Model.Batch, cfg.Model.Seq, cfg.Model.Vocab, 2)
	if err != nil {
		log.Fatal(err)
	}
	for step := 1; step <= 15; step++ {
		ta, ga := a.Next()
		tb, gb := b.Next()
		loss, err := dp.TrainStep([]engine.Batch{{Tokens: ta, Targets: ga}, {Tokens: tb, Targets: gb}})
		if err != nil {
			log.Fatal(err)
		}
		if step%5 == 0 || step == 1 {
			fmt.Printf("  step %2d  loss %.4f\n", step, loss)
		}
	}
}

func tput(p strategy.Policy, modelName string, gbatch int, srv ratel.Server) string {
	rep, err := itersim.SimulateMultiGPU(p, model.MustByName(modelName), gbatch, srv)
	if err != nil {
		return "-"
	}
	return fmt.Sprintf("%.0f tok/s", rep.TokensPerSec)
}
