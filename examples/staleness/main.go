// Staleness: why Ratel insists on synchronous updates. ZeRO-Offload's
// one-step delayed update (footnote 4 of the paper) overlaps the optimizer
// with the next iteration's compute — but the gradients it computes are
// then one update behind, changing the training trajectory. Active gradient
// offloading (§IV-C) achieves the overlap *without* the staleness.
//
// This example trains three identical models: serialized optimizer,
// optimized active gradient offloading, and one-step delayed update. The
// first two finish with bit-identical parameters; the delayed run diverges.
package main

import (
	"fmt"
	"log"

	"ratel/internal/agoffload"
	"ratel/internal/data"
	"ratel/internal/engine"
	"ratel/internal/nn"
)

func main() {
	modelCfg := nn.Config{Vocab: 32, Seq: 12, Hidden: 16, Heads: 2, Layers: 3, Batch: 4, Seed: 5}
	const steps = 12

	run := func(name string, grad agoffload.Mode, delayed bool) []float32 {
		e, err := engine.New(engine.Config{Model: modelCfg, GradMode: grad, DelayedUpdate: delayed, Devices: 2})
		if err != nil {
			log.Fatal(err)
		}
		defer e.Close()
		loader, err := data.NewLoader(data.Progression, modelCfg.Batch, modelCfg.Seq, modelCfg.Vocab, 9)
		if err != nil {
			log.Fatal(err)
		}
		var loss float64
		for s := 0; s < steps; s++ {
			tokens, targets := loader.Next()
			if loss, err = e.TrainStep(tokens, targets); err != nil {
				log.Fatal(err)
			}
		}
		if delayed {
			if err := e.FlushDelayed(); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("%-28s final loss %.6f\n", name, loss)
		var flat []float32
		for _, p := range e.Model().Params() {
			flat = append(flat, p.W.Data...)
		}
		return flat
	}

	serialized := run("serialized optimizer", agoffload.Serialized, false)
	active := run("active gradient offloading", agoffload.Optimized, false)
	delayed := run("one-step delayed update", agoffload.Optimized, true)

	fmt.Printf("\nactive vs serialized: %s\n", compare(active, serialized))
	fmt.Printf("delayed vs serialized: %s\n", compare(delayed, serialized))
	fmt.Println("\nActive gradient offloading hides the optimizer behind backward")
	fmt.Println("propagation while remaining exactly synchronous; the delayed update")
	fmt.Println("buys the same overlap at the cost of a different training trajectory.")
}

func compare(a, b []float32) string {
	diff := 0
	for i := range a {
		if a[i] != b[i] {
			diff++
		}
	}
	if diff == 0 {
		return fmt.Sprintf("bit-identical (%d parameters)", len(a))
	}
	return fmt.Sprintf("%d of %d parameters differ (stale trajectory)", diff, len(a))
}
