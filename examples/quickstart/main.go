// Quickstart: fine-tune a miniature language model with the real Ratel
// engine — the Fig. 4 user interface. Model states live on a striped NVMe
// substrate, activations are swapped or recomputed per the holistic plan,
// and the optimizer is hidden behind backward propagation.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ratel"
)

func main() {
	// Init is the paper's Ratel_init: it builds the engine, runs the
	// hardware-aware profiling stage, plans activation swapping with
	// Algorithm 1, and wraps the optimizer in active gradient offloading.
	sess, err := ratel.Init(ratel.Options{
		Model: ratel.ModelSpec{
			Vocab: 64, Seq: 16, Hidden: 32, Heads: 4, Layers: 4, Batch: 4, Seed: 7,
		},
		GradMode: ratel.Optimized,
		Devices:  4, // four (in-memory) NVMe devices
		// Plan for a compute-starved target (a small GPU with fast SSDs):
		// Algorithm 1 then prefers swapping activations to recomputing them.
		Rates: ratel.HWRates{
			THPG: ratel.TFLOPS(1e-6), BWG: ratel.GBps(10),
			BWS2M: ratel.GBps(10), BWM2S: ratel.GBps(10),
			MemAvail: 4096, // bytes of host headroom: most swaps spill to SSD
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	pl := sess.Plan()
	fmt.Printf("activation plan: %v — swap %v across %d layers, recompute %.2f GFLOP/iter\n",
		pl.Case, pl.AG2M, len(pl.Swapped), pl.FLOPr.GFLOPf())

	// The training loop matches plain PyTorch-style code: note there is no
	// optimizer.step() — updates happen as gradients arrive (§IV-C).
	rng := rand.New(rand.NewSource(7))
	tokens, targets := batch(rng)
	for step := 1; step <= 150; step++ {
		loss, err := sess.TrainStep(tokens, targets)
		if err != nil {
			log.Fatal(err)
		}
		if step%30 == 0 || step == 1 {
			fmt.Printf("step %2d  loss %.4f\n", step, loss)
		}
	}

	st := sess.Stats()
	fmt.Printf("data movement: offloaded %v of activations, SSD wrote %v / read %v\n",
		st.ActBytesOffload, st.SSD.BytesWritten, st.SSD.BytesRead)

	// Sample from the fine-tuned model: it has learned the +1 sequence.
	out, err := sess.Generate([]int{10, 11, 12, 13}, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greedy continuation of [10 11 12 13]: %v\n", out[4:])
}

// batch builds a fixed synthetic copy-task batch: predict the same sequence
// shifted by one.
func batch(rng *rand.Rand) (tokens, targets [][]int) {
	const b, s, v = 4, 16, 64
	tokens = make([][]int, b)
	targets = make([][]int, b)
	for i := range tokens {
		tokens[i] = make([]int, s)
		targets[i] = make([]int, s)
		start := rng.Intn(v)
		for j := 0; j < s; j++ {
			tokens[i][j] = (start + j) % v
			targets[i][j] = (start + j + 1) % v
		}
	}
	return tokens, targets
}
