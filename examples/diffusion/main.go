// Diffusion fine-tuning: Ratel's optimizations applied to DiT-style image
// models (the paper's §V-H / Fig. 12 scenario). Compares Ratel against
// Fast-DiT, which keeps every tensor GPU-resident, across the Table VI
// model scale-up.
package main

import (
	"fmt"

	"ratel"
)

func main() {
	srv := ratel.EvalServer(ratel.RTX4090, 768*ratel.GiB, 12)
	models := []string{"DiT-0.67B", "DiT-0.90B", "DiT-1.4B", "DiT-10B", "DiT-20B", "DiT-40B"}
	batches := []int{1, 2, 4, 8, 16, 32, 64, 128}

	fmt.Println("512x512 DiT fine-tuning on the RTX 4090 evaluation server (images/s):")
	fmt.Printf("%-10s  %-16s  %-16s\n", "model", "Fast-DiT", "Ratel")
	for _, m := range models {
		fd := bestOrOOM("Fast-DiT", m, srv, batches)
		ra := bestOrOOM("Ratel", m, srv, batches)
		fmt.Printf("%-10s  %-16s  %-16s\n", m, fd, ra)
	}

	fmt.Println("\nwhy: Fast-DiT must hold 16 bytes/param of model states plus all")
	fmt.Println("activations on the GPU; Ratel streams both through main memory and")
	fmt.Println("the SSD array, so the trainable size is bounded by SSD capacity and")
	fmt.Println("the batch size can stay large (§V-H).")
}

func bestOrOOM(system, modelName string, srv ratel.Server, batches []int) string {
	var best ratel.Report
	found := false
	for _, b := range batches {
		rep, err := ratel.Predict(system, modelName, b, srv)
		if err != nil {
			continue
		}
		if !found || rep.ImagesPerSec > best.ImagesPerSec {
			best, found = rep, true
		}
	}
	if !found {
		return "OOM"
	}
	return fmt.Sprintf("%.1f img/s (b%d)", best.ImagesPerSec, best.Batch)
}
