module ratel

go 1.22
