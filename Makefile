# Tier-1 check: everything builds, every test passes.
.PHONY: test
test:
	go build ./... && go test ./...

# Tier-2 check: race-detector pass over the packages that run on the
# shared worker pool or record telemetry concurrently (tensor kernels,
# attention fan-out, parallel Adam, NVMe array, span tracer, engine).
.PHONY: race
race:
	go test -race ./internal/tensor/... ./internal/nn/... ./internal/opt/... ./internal/agoffload/... ./internal/nvme/... ./internal/obs/... ./internal/engine/...

# Static analysis over the whole module.
.PHONY: vet
vet:
	go vet ./...

# Tier-2 umbrella: static analysis + race detector.
.PHONY: check
check: vet race

# Kernel micro-benchmarks (BENCH_kernels.json is a committed snapshot).
.PHONY: bench-kernels
bench-kernels:
	go test -bench 'BenchmarkMatMul_|BenchmarkAdamStep_' -benchmem ./internal/tensor ./internal/opt

# Full evaluation reproduction: one benchmark per paper figure/table.
.PHONY: bench
bench:
	go test -bench=. -benchmem
