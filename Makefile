# Tier-1 check: everything builds, every test passes.
.PHONY: test
test:
	go build ./... && go test ./...

# Tier-2 check: race-detector pass over the whole module.
.PHONY: race
race:
	go test -race ./...

# Static analysis over the whole module.
.PHONY: vet
vet:
	go vet ./...

# Repo-specific analyzers (simdet, unitsafe, spanpair, poolcapture,
# errdrop — see DESIGN.md §8). Also runs as a vet tool:
#   go build -o bin/ratelvet ./cmd/ratelvet && go vet -vettool=bin/ratelvet ./...
.PHONY: lint
lint:
	go run ./cmd/ratelvet ./...

# Tier-2 umbrella: static analysis + repo analyzers + race detector.
.PHONY: check
check: vet lint race

# Kernel micro-benchmarks (BENCH_kernels.json is a committed snapshot).
.PHONY: bench-kernels
bench-kernels:
	go test -bench 'BenchmarkMatMul_|BenchmarkAdamStep_' -benchmem ./internal/tensor ./internal/opt

# Full evaluation reproduction: one benchmark per paper figure/table.
.PHONY: bench
bench:
	go test -bench=. -benchmem
