# Tier-1 check: everything builds, every test passes.
.PHONY: test
test:
	go build ./... && go test ./...

# Tier-2 check: race-detector pass over the whole module.
.PHONY: race
race:
	go test -race ./...

# Portable-fallback pass: rerun the kernel-consuming suites with the SIMD
# dispatch vetoed, proving the generic reference path stays green (the
# exact code non-amd64 builds and RATEL_NOSIMD=1 deployments run).
.PHONY: test-nosimd
test-nosimd:
	RATEL_NOSIMD=1 go test -count=1 ./internal/tensor/... ./internal/nn ./internal/opt ./internal/engine

# Static analysis over the whole module.
.PHONY: vet
vet:
	go vet ./...

# Repo-specific analyzers (slotlife, xferown, atomicmix, gojoin, simdet,
# unitsafe, spanpair, poolcapture, errdrop, simddispatch, metrichygiene —
# see DESIGN.md §8 and §13), followed by the suppression audit so every
# //ratelvet:ignore and its reason is visible in the lint output. Also
# runs as a vet tool:
#   go build -o bin/ratelvet ./cmd/ratelvet && go vet -vettool=bin/ratelvet ./...
.PHONY: lint
lint:
	go run ./cmd/ratelvet ./...
	go run ./cmd/ratelvet audit

# Suppression budget: the //ratelvet:ignore count may not grow past the
# committed baseline (lint-baseline.txt). Remove suppressions freely and
# lower the baseline; raising it requires the justification in review.
.PHONY: suppress-gate
suppress-gate:
	@count=$$(go run ./cmd/ratelvet audit | tail -1 | sed 's/[^0-9]*//g'); \
	base=$$(cat lint-baseline.txt); \
	echo "suppress-gate: $$count suppression(s), baseline $$base"; \
	if [ "$$count" -gt "$$base" ]; then \
		echo "suppress-gate: count $$count exceeds the committed baseline $$base — remove the suppression or justify raising lint-baseline.txt" >&2; \
		exit 1; \
	fi

# Tier-2 umbrella: static analysis + repo analyzers + race detector +
# portable-fallback pass + one-iteration benchmark smoke (benchmarks must
# at least run) + snapshot-integrity gate.
.PHONY: check
check: vet lint suppress-gate race test-nosimd bench-smoke bench-gate

# Snapshot-integrity gate: every committed BENCH_*.json must parse and
# self-diff clean at zero tolerance, so the diff tool and the snapshot
# schema can't drift apart. Compare a fresh run against a snapshot with
#   go run ./cmd/ratelbench -tol 0.1 diff BENCH_x.json new.json
.PHONY: bench-gate
bench-gate:
	@for f in BENCH_*.json; do \
		echo "bench-gate: $$f"; \
		go run ./cmd/ratelbench -tol 0 diff $$f $$f || exit 1; \
	done

# Kernel micro-benchmarks (BENCH_kernels.json is a committed snapshot).
.PHONY: bench-kernels
bench-kernels:
	go test -bench 'BenchmarkMatMul_|BenchmarkAdamStep_|BenchmarkFP16' -benchmem ./internal/tensor ./internal/opt

# Data-path benchmarks (BENCH_datapath.json is a committed snapshot).
.PHONY: bench-datapath
bench-datapath:
	go test -run '^$$' -bench 'BenchmarkCacheRoundTrip|BenchmarkTrainStep_Swap' -benchtime=100x -benchmem ./internal/engine

# Activation I/O overlap benchmark: synchronous vs write-behind/read-ahead
# at depth 1 and 3 under Table III-shaped device throttles
# (BENCH_overlap.json is a committed snapshot).
.PHONY: bench-overlap
bench-overlap:
	go test -run '^$$' -bench 'BenchmarkTrainStepOverlap' -benchtime=15x -benchmem ./internal/engine

# Transfer-scheduler benchmark: FCFS vs duplex/priority/coalescing array
# scheduling on a mixed activation+optimizer trace at Table III-shaped
# device throttles, plus the adaptive-depth variant (BENCH_sched.json is a
# committed snapshot).
.PHONY: bench-sched
bench-sched:
	go test -run '^$$' -bench 'BenchmarkTrainStepSched' -benchtime=30x -benchmem ./internal/engine

# Optimizer scheduling benchmark: sync vs readiness-ordered state reads vs
# importance-partitioned async Adam at staleness 1 and 2, under the same
# Table III-shaped device throttles (BENCH_optimizer.json is a committed
# snapshot).
.PHONY: bench-optimizer
bench-optimizer:
	go test -run '^$$' -bench 'BenchmarkTrainStepOptSchedule' -benchtime=15x -benchmem ./internal/engine

# Every benchmark in the module at measurement settings.
.PHONY: bench
bench:
	go test -run '^$$' -bench . -benchmem ./...

# Smoke: run every benchmark exactly once so they can't rot. Wired into
# `make check` (and CI through it).
.PHONY: bench-smoke
bench-smoke:
	go test -run '^$$' -bench . -benchtime=1x ./...
