// Benchmarks regenerating every table and figure of the paper's evaluation
// (§V), one benchmark per artifact, plus micro-benchmarks of the real
// substrates. Key quantities are attached as benchmark metrics so
// `go test -bench=.` output doubles as the reproduction record
// (EXPERIMENTS.md).
package ratel_test

import (
	"fmt"
	"io"
	"testing"
	"time"

	"ratel"
	"ratel/internal/agoffload"
	"ratel/internal/engine"
	"ratel/internal/experiments"
	"ratel/internal/hw"
	"ratel/internal/itersim"
	"ratel/internal/model"
	"ratel/internal/nn"
	"ratel/internal/nvme"
	"ratel/internal/strategy"
	"ratel/internal/units"
)

func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(id, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func evalSrv() hw.Server { return hw.EvalServer(hw.RTX4090, 768*units.GiB, 12) }

func simMetric(b *testing.B, p strategy.Policy, modelName string, batch int, srv hw.Server) itersim.Report {
	b.Helper()
	var rep itersim.Report
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = itersim.Simulate(p, model.MustByName(modelName), batch, srv)
		if err != nil {
			b.Fatal(err)
		}
	}
	return rep
}

// --- Figure 1: stage breakdowns ---

func BenchmarkFig1Breakdown(b *testing.B) { runExperiment(b, "fig1") }

func BenchmarkFig1RatelIteration(b *testing.B) {
	rep := simMetric(b, strategy.Ratel, "13B", 32, evalSrv())
	b.ReportMetric(float64(rep.Makespan), "iter-s")
	b.ReportMetric(100*rep.GPUBusyFrac, "gpu-busy-%")
	b.ReportMetric(float64(rep.OptimizerTail), "opt-tail-s")
}

func BenchmarkFig1ZeROInfinityIteration(b *testing.B) {
	rep := simMetric(b, strategy.ZeROInfinity, "13B", 32, evalSrv())
	b.ReportMetric(float64(rep.Makespan), "iter-s")
	b.ReportMetric(100*rep.GPUBusyFrac, "gpu-busy-%")
	b.ReportMetric(float64(rep.OptimizerTail), "opt-tail-s")
}

// --- Figure 2: motivation ---

func BenchmarkFig2aMaxModelSize(b *testing.B)   { runExperiment(b, "fig2a") }
func BenchmarkFig2bGPUBusy(b *testing.B)        { runExperiment(b, "fig2b") }
func BenchmarkFig2cOptimizerShare(b *testing.B) { runExperiment(b, "fig2c") }

// --- Figure 5: end-to-end throughput ---

func BenchmarkFig5aThroughput4090(b *testing.B) {
	runExperiment(b, "fig5a")
	rep, err := itersim.Simulate(strategy.Ratel, model.MustByName("13B"), 32, evalSrv())
	if err != nil {
		b.Fatal(err)
	}
	zo, err := itersim.Simulate(strategy.ZeROOffload, model.MustByName("13B"), 32, evalSrv())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(rep.TokensPerSec, "ratel-tok/s")
	b.ReportMetric(rep.TokensPerSec/zo.TokensPerSec, "speedup-vs-zero-offload")
}

func BenchmarkFig5bThroughput3090(b *testing.B) { runExperiment(b, "fig5b") }

func BenchmarkFig5cTFLOPS(b *testing.B) {
	runExperiment(b, "fig5c")
	rep, err := itersim.BestThroughput(strategy.Ratel, model.MustByName("70B"), evalSrv(),
		[]int{1, 2, 4, 8, 16, 32, 64, 128})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(rep.TFLOPS, "ratel-70B-TFLOPS")
	b.ReportMetric(100*rep.TFLOPS/hw.RTX4090.PeakFP16.TFLOPSf(), "pct-of-peak")
}

// --- Figure 6: maximum trainable model size ---

func BenchmarkFig6MaxModelSize(b *testing.B) { runExperiment(b, "fig6") }

// --- Figure 7: active gradient offloading ablation ---

func BenchmarkFig7ActiveGradOffload(b *testing.B) {
	runExperiment(b, "fig7")
	opt := simMetricOnce(b, strategy.Ratel, "13B", 64)
	ser := simMetricOnce(b, strategy.RatelZeRO, "13B", 64)
	b.ReportMetric(opt.TokensPerSec/ser.TokensPerSec, "optimized-vs-serialized")
}

func simMetricOnce(b *testing.B, p strategy.Policy, modelName string, batch int) itersim.Report {
	b.Helper()
	rep, err := itersim.Simulate(p, model.MustByName(modelName), batch, evalSrv())
	if err != nil {
		b.Fatal(err)
	}
	return rep
}

// --- Figure 8: activations to SSD ---

func BenchmarkFig8ActivationsToSSD(b *testing.B) { runExperiment(b, "fig8") }

// --- Figure 9 + Table V: activation management ---

func BenchmarkFig9aActMgmt(b *testing.B)        { runExperiment(b, "fig9a") }
func BenchmarkTableVBatchSizes(b *testing.B)    { runExperiment(b, "tableV") }
func BenchmarkFig9bIterTimeVsSwap(b *testing.B) { runExperiment(b, "fig9b") }

// --- Figure 10: SSD scaling ---

func BenchmarkFig10aSSDScaling(b *testing.B) { runExperiment(b, "fig10a") }

func BenchmarkFig10bSSDScaling13B(b *testing.B) {
	runExperiment(b, "fig10b")
	rep, err := itersim.Simulate(strategy.Ratel, model.MustByName("13B"), 32, evalSrv())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(rep.TFLOPS, "b32-12ssd-TFLOPS")
}

// --- Figure 11: multi-GPU ---

func BenchmarkFig11MultiGPU(b *testing.B) { runExperiment(b, "fig11") }

// --- Figure 12 + Table VI: diffusion models ---

func BenchmarkFig12Diffusion(b *testing.B) { runExperiment(b, "fig12") }

// --- Figure 13 + Table VII: cost-effectiveness ---

func BenchmarkFig13CostEffectiveness(b *testing.B) { runExperiment(b, "fig13") }

// --- Substrate micro-benchmarks ---

// BenchmarkEngineTrainStep measures the real engine's step time per
// gradient-offloading mode (wall-clock at mini scale; the relative overlap
// effect mirrors Fig. 7's schedule comparison).
func BenchmarkEngineTrainStep(b *testing.B) {
	for _, mode := range []struct {
		name string
		m    agoffload.Mode
	}{{"serialized", agoffload.Serialized}, {"naive", agoffload.Naive}, {"optimized", agoffload.Optimized}} {
		b.Run(mode.name, func(b *testing.B) {
			e, err := engine.New(engine.Config{
				Model:    nn.Config{Vocab: 32, Seq: 16, Hidden: 32, Heads: 4, Layers: 4, Batch: 4, Seed: 1},
				GradMode: mode.m,
				Devices:  4,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			tokens := make([][]int, 4)
			targets := make([][]int, 4)
			for i := range tokens {
				tokens[i] = make([]int, 16)
				targets[i] = make([]int, 16)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.TrainStep(tokens, targets); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineOffloadedStep measures a step with all activations swapped
// through the NVMe substrate.
func BenchmarkEngineOffloadedStep(b *testing.B) {
	e, err := engine.New(engine.Config{
		Model:    nn.Config{Vocab: 32, Seq: 16, Hidden: 32, Heads: 4, Layers: 4, Batch: 4, Seed: 1},
		GradMode: agoffload.Optimized,
		Swap:     map[int]engine.Tier{0: engine.SwapSSD, 1: engine.SwapSSD, 2: engine.SwapSSD, 3: engine.SwapSSD},
		Devices:  4,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	tokens := make([][]int, 4)
	targets := make([][]int, 4)
	for i := range tokens {
		tokens[i] = make([]int, 16)
		targets[i] = make([]int, 16)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.TrainStep(tokens, targets); err != nil {
			b.Fatal(err)
		}
	}
	st := e.Stats()
	b.ReportMetric(float64(st.ActBytesOffload)/float64(b.N), "act-bytes/step")
}

// BenchmarkNVMeArray measures the striped store's in-memory throughput at 1
// and 4 devices.
func BenchmarkNVMeArray(b *testing.B) {
	for _, devs := range []int{1, 4} {
		b.Run(map[int]string{1: "1-device", 4: "4-devices"}[devs], func(b *testing.B) {
			a, err := nvme.Open(nvme.Config{Devices: devs})
			if err != nil {
				b.Fatal(err)
			}
			defer a.Close()
			payload := make([]byte, 4<<20)
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := a.Put("k", payload); err != nil {
					b.Fatal(err)
				}
				if err := a.ReadInto("k", payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPlannerOptimize measures Algorithm 1 on the largest catalog
// model (planning cost is paid once per fine-tuning job, §IV-B).
func BenchmarkPlannerOptimize(b *testing.B) {
	srv := evalSrv()
	for i := 0; i < b.N; i++ {
		if _, err := ratel.PlanFor("412B", 8, srv); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks (DESIGN.md design-choice sensitivity) ---

// BenchmarkAblationCPUAdamRate varies the CPU optimizer throughput: active
// gradient offloading hides the optimizer as long as the CPU keeps up with
// backward propagation.
func BenchmarkAblationCPUAdamRate(b *testing.B) {
	for _, scale := range []float64{0.25, 0.5, 1, 2} {
		b.Run(fmt.Sprintf("rate-x%.2g", scale), func(b *testing.B) {
			srv := evalSrv()
			srv.CPU.AdamParamsPerSec *= scale
			rep := simMetric(b, strategy.Ratel, "13B", 32, srv)
			b.ReportMetric(rep.TokensPerSec, "tok/s")
			b.ReportMetric(float64(rep.OptimizerTail), "opt-tail-s")
		})
	}
}

// BenchmarkAblationLinkBandwidth varies the GPU PCIe bandwidth: the planner
// re-balances swap vs recompute, so throughput degrades gracefully.
func BenchmarkAblationLinkBandwidth(b *testing.B) {
	for _, gbps := range []float64{8, 14, 21, 32} {
		b.Run(fmt.Sprintf("link-%.0fGBps", gbps), func(b *testing.B) {
			srv := evalSrv()
			srv.Link.GPUPerDirection = units.GBps(gbps)
			rep := simMetric(b, strategy.Ratel, "13B", 32, srv)
			b.ReportMetric(rep.TokensPerSec, "tok/s")
			b.ReportMetric(rep.AG2M.GiBf(), "swapped-GiB")
		})
	}
}

// BenchmarkAblationProfilingOverhead measures the §IV-B claim: the
// profiling iteration costs 2-3x a steady one.
func BenchmarkAblationProfilingOverhead(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		prof, err := itersim.SimulateProfiling(model.MustByName("13B"), 32, evalSrv())
		if err != nil {
			b.Fatal(err)
		}
		steady, err := itersim.Simulate(strategy.Ratel, model.MustByName("13B"), 32, evalSrv())
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(prof.Makespan) / float64(steady.Makespan)
	}
	b.ReportMetric(ratio, "profiling-vs-steady")
}

// BenchmarkAblationHostStaging varies Ratel's pinned host staging budget:
// less main memory pushes more activations to the SSD tier (Eq. 3).
func BenchmarkAblationHostStaging(b *testing.B) {
	for _, memGiB := range []int{32, 64, 128, 768} {
		b.Run(fmt.Sprintf("mem-%dGiB", memGiB), func(b *testing.B) {
			srv := hw.EvalServer(hw.RTX4090, units.Bytes(memGiB)*units.GiB, 12)
			rep := simMetric(b, strategy.Ratel, "13B", 32, srv)
			b.ReportMetric(rep.TokensPerSec, "tok/s")
			b.ReportMetric(rep.AlphaBytes.GiBf(), "spilled-GiB")
		})
	}
}

// BenchmarkEngineCorrectnessSuite runs the live mini-engine equivalence
// experiment (the "engine" artifact of cmd/ratelbench).
func BenchmarkEngineCorrectnessSuite(b *testing.B) { runExperiment(b, "engine") }

// BenchmarkEngineSSDScaling runs the real engine with throttled (in-memory)
// devices at 1 and 4 SSDs — the Fig. 10 aggregation effect in wall-clock.
func BenchmarkEngineSSDScaling(b *testing.B) {
	for _, devs := range []int{1, 4} {
		b.Run(fmt.Sprintf("%d-ssd", devs), func(b *testing.B) {
			e, err := engine.New(engine.Config{
				Model:    nn.Config{Vocab: 32, Seq: 16, Hidden: 32, Heads: 4, Layers: 4, Batch: 4, Seed: 1},
				GradMode: agoffload.Optimized,
				Swap:     map[int]engine.Tier{0: engine.SwapSSD, 1: engine.SwapSSD, 2: engine.SwapSSD, 3: engine.SwapSSD},
				Devices:  devs,
				SSD:      &nvme.Config{ReadBW: units.GBps(0.05), WriteBW: units.GBps(0.05)},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			tokens := make([][]int, 4)
			targets := make([][]int, 4)
			for i := range tokens {
				tokens[i] = make([]int, 16)
				targets[i] = make([]int, 16)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.TrainStep(tokens, targets); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGenerate compares full-recompute generation against KV-cache
// incremental decoding (identical outputs, different asymptotics).
func BenchmarkGenerate(b *testing.B) {
	m, err := nn.NewModel(nn.Config{Vocab: 64, Seq: 32, Hidden: 32, Heads: 4, Layers: 4, Batch: 1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	prompt := []int{1, 2, 3, 4}
	b.Run("full-forward", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := m.Generate(prompt, 24); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("kv-cache", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := m.GenerateCached(prompt, 24); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkNVMeMirror quantifies the RAID-1 write penalty.
func BenchmarkNVMeMirror(b *testing.B) {
	for _, mirror := range []bool{false, true} {
		name := "striped"
		if mirror {
			name = "mirrored"
		}
		b.Run(name, func(b *testing.B) {
			a, err := nvme.Open(nvme.Config{Devices: 4, Mirror: mirror})
			if err != nil {
				b.Fatal(err)
			}
			defer a.Close()
			payload := make([]byte, 1<<20)
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := a.Put("k", payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEnginePrefetch measures the full-duplex activation I/O pipeline
// on a latency-throttled array (Ratel_hook's pipelined data transfer,
// Fig. 4). At mini scale the optimizer's model-state I/O dominates the
// step, so the two variants run close — the isolated overlap effect is
// measured by BenchmarkTrainStepOverlap (BENCH_overlap.json); this
// benchmark documents that the pipeline itself adds no measurable overhead
// and never changes values (TestPipelineEquivalenceMatrix).
func BenchmarkEnginePrefetch(b *testing.B) {
	for _, disable := range []bool{true, false} {
		name := "pipeline-on"
		if disable {
			name = "pipeline-off"
		}
		b.Run(name, func(b *testing.B) {
			e, err := engine.New(engine.Config{
				Model:           nn.Config{Vocab: 32, Seq: 16, Hidden: 32, Heads: 4, Layers: 4, Batch: 4, Seed: 1},
				GradMode:        agoffload.Serialized,
				Swap:            map[int]engine.Tier{0: engine.SwapSSD, 1: engine.SwapSSD, 2: engine.SwapSSD, 3: engine.SwapSSD},
				Devices:         2,
				SSD:             &nvme.Config{OpLatency: time.Millisecond, StripeSize: 1 << 16},
				DisablePipeline: disable,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			tokens := make([][]int, 4)
			targets := make([][]int, 4)
			for i := range tokens {
				tokens[i] = make([]int, 16)
				targets[i] = make([]int, 16)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.TrainStep(tokens, targets); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
