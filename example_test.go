package ratel_test

import (
	"fmt"
	"log"

	"ratel"
)

// ExampleInit fine-tunes a miniature model with the Fig. 4 API: no
// optimizer.step() — updates ride behind backward propagation.
func ExampleInit() {
	sess, err := ratel.Init(ratel.Options{
		Model:    ratel.ModelSpec{Vocab: 32, Seq: 8, Hidden: 16, Heads: 2, Layers: 2, Batch: 2, Seed: 1},
		GradMode: ratel.Optimized,
		Devices:  2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	tokens := [][]int{{1, 2, 3, 4, 5, 6, 7, 8}, {2, 3, 4, 5, 6, 7, 8, 9}}
	targets := [][]int{{2, 3, 4, 5, 6, 7, 8, 9}, {3, 4, 5, 6, 7, 8, 9, 10}}
	first, _ := sess.TrainStep(tokens, targets)
	var last float64
	for i := 0; i < 20; i++ {
		last, _ = sess.TrainStep(tokens, targets)
	}
	fmt.Println("loss decreased:", last < first)
	// Output: loss decreased: true
}

// ExamplePredict sizes a machine analytically: what would the paper's
// evaluation server do with the 13B model?
func ExamplePredict() {
	srv := ratel.EvalServer(ratel.RTX4090, 768*ratel.GiB, 12)
	rep, err := ratel.Predict("Ratel", "13B", 32, srv)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("optimizer hidden behind backward:", rep.OptimizerTail < rep.Makespan/10)
	// Output: optimizer hidden behind backward: true
}

// ExampleMaxTrainable answers the capacity question of Fig. 6.
func ExampleMaxTrainable() {
	srv := ratel.EvalServer(ratel.RTX4080, 256*ratel.GiB, 12)
	cfg, ok, err := ratel.MaxTrainable("Ratel", srv, 1)
	if err != nil || !ok {
		log.Fatal(err)
	}
	fmt.Printf("an RTX 4080 with 256 GiB fine-tunes the %s model\n", cfg.Name)
	// Output: an RTX 4080 with 256 GiB fine-tunes the 175B model
}

// ExamplePlanFor shows Algorithm 1's decision for a concrete workload.
func ExamplePlanFor() {
	srv := ratel.EvalServer(ratel.RTX4090, 768*ratel.GiB, 12)
	pl, err := ratel.PlanFor("13B", 32, srv)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("interior optimum:", pl.Case.String() == "case3-interior")
	fmt.Println("swaps more than the inter-block floor:", pl.AG2M > 13*ratel.GiB)
	// Output:
	// interior optimum: true
	// swaps more than the inter-block floor: true
}
