// Package ratel is the public API of the Ratel reproduction: a low-cost
// training framework that fine-tunes models far larger than GPU and main
// memory by holistically managing tensor movement across GPU memory, main
// memory and an NVMe SSD array (Liao et al., "Ratel: Optimizing Holistic
// Data Movement to Fine-tune 100B Model on a Consumer GPU", ICDE 2025).
//
// Two surfaces are exposed:
//
//   - A real training engine (Init/TrainStep, mirroring the paper's Fig. 4
//     user interface): a miniature transformer fine-tuned with mixed
//     precision, model states homed on a striped NVMe substrate, activations
//     swapped or recomputed per the holistic plan, and the out-of-core CPU
//     optimizer hidden behind backward propagation via active gradient
//     offloading — with no parameter staleness.
//
//   - An analytical surface (Predict/MaxTrainable/PlanFor) built on a
//     discrete-event simulator calibrated against the paper's measurements,
//     which regenerates every table and figure of the evaluation (see
//     cmd/ratelbench and EXPERIMENTS.md).
package ratel

import (
	"ratel/internal/agoffload"
	"ratel/internal/core"
	"ratel/internal/engine"
	"ratel/internal/hw"
	"ratel/internal/itersim"
	"ratel/internal/model"
	"ratel/internal/nn"
	"ratel/internal/opt"
	"ratel/internal/plan"
	"ratel/internal/strategy"
	"ratel/internal/trace"
	"ratel/internal/units"
)

// Training surface (Fig. 4).
type (
	// Options configures a training session.
	Options = core.Options
	// Session is an initialized Ratel training context.
	Session = core.Session
	// ModelSpec sizes the transformer to fine-tune.
	ModelSpec = nn.Config
	// GradMode selects the active-gradient-offloading schedule.
	GradMode = agoffload.Mode
	// HWRates parameterizes the activation planner's hardware model.
	HWRates = engine.HWRates
	// Stats counts a session's data movement.
	Stats = engine.Stats
	// Batch is one micro-batch for gradient accumulation.
	Batch = engine.Batch
	// AdamConfig holds optimizer hyperparameters (AdamW when WeightDecay
	// is set).
	AdamConfig = opt.AdamConfig
	// Schedule maps an optimizer step to a learning rate.
	Schedule = opt.Schedule
)

// WarmupCosine is the conventional fine-tuning learning-rate schedule.
func WarmupCosine(base float64, warmup, total int, floor float64) Schedule {
	return opt.WarmupCosine(base, warmup, total, floor)
}

// Gradient-offloading schedules (§IV-C).
const (
	// Serialized runs the optimizer as a stage after backward.
	Serialized = agoffload.Serialized
	// Naive runs per-tensor handlers serialized internally (Fig. 3a).
	Naive = agoffload.Naive
	// Optimized pipelines handlers across SSD and CPU (Fig. 3b).
	Optimized = agoffload.Optimized
)

// Init runs hardware-aware profiling, plans activation swapping, and
// returns a training session (Ratel_init + Ratel_hook + Ratel_Optimizer).
func Init(opts Options) (*Session, error) { return core.Init(opts) }

// Analytical surface.
type (
	// Server describes a machine (GPUs, memory, SSD array, prices).
	Server = hw.Server
	// GPU describes an accelerator.
	GPU = hw.GPU
	// ModelConfig is a catalog model (Table IV / Table VI).
	ModelConfig = model.Config
	// Report is a simulated iteration's timeline and throughput.
	Report = itersim.Report
	// Plan is an activation-swapping decision (Algorithm 1 output).
	Plan = plan.Plan
	// Bytes is a tensor or transfer size.
	Bytes = units.Bytes
)

// GiB is a binary gigabyte, for sizing servers.
const GiB = units.GiB

// TFLOPS constructs a compute throughput for HWRates.
func TFLOPS(v float64) units.FLOPsPerSecond { return units.TFLOPS(v) }

// GBps constructs a bandwidth for HWRates.
func GBps(v float64) units.BytesPerSecond { return units.GBps(v) }

// Evaluated GPUs (Table III).
var (
	RTX4090 = hw.RTX4090
	RTX3090 = hw.RTX3090
	RTX4080 = hw.RTX4080
)

// EvalServer builds the paper's commodity evaluation server with the given
// GPU, main-memory capacity and SSD count.
func EvalServer(gpu GPU, mainMemory Bytes, ssds int) Server {
	return hw.EvalServer(gpu, mainMemory, ssds)
}

// DGXA100 is the Fig. 13 baseline machine.
func DGXA100() Server { return hw.DGXA100() }

// Predict simulates one iteration of a named system ("Ratel",
// "ZeRO-Infinity", "ZeRO-Offload", "Colossal-AI", "FlashNeuron", "G10", …)
// fine-tuning a catalog model ("13B" … "412B", "DiT-…") on a server.
func Predict(policy, modelName string, batch int, srv Server) (Report, error) {
	return core.Predict(policy, modelName, batch, srv)
}

// MaxTrainable reports the largest catalog model the named system can
// fine-tune on the server.
func MaxTrainable(policy string, srv Server, batch int) (ModelConfig, bool, error) {
	return core.MaxTrainable(policy, srv, batch)
}

// PlanFor runs the holistic traffic-aware activation planner for Ratel
// fine-tuning a catalog model on a server.
func PlanFor(modelName string, batch int, srv Server) (Plan, error) {
	return core.PlanFor(modelName, batch, srv)
}

// Policies lists the systems Predict accepts.
func Policies() []string {
	var names []string
	for _, p := range strategy.All() {
		names = append(names, p.Name)
	}
	return names
}

// Models lists the catalog model names.
func Models() []string {
	var names []string
	for _, list := range [][]model.Config{model.SmallLMs, model.TableIV, model.TableVI} {
		for _, c := range list {
			names = append(names, c.Name)
		}
	}
	return names
}

// Gantt renders a simulated iteration's timeline as a per-resource text
// strip (the Fig. 1 visualization).
func Gantt(rep Report, width int) string {
	return trace.Gantt(rep.Result, width)
}

// StageBreakdown renders the per-stage resource-utilization table (the
// Fig. 1 annotations).
func StageBreakdown(rep Report) string {
	return trace.FormatStageUtilization(rep.Result, trace.StageWindows{
		ForwardEnd: rep.ForwardEnd, BackwardEnd: rep.BackwardEnd, End: rep.Makespan,
	})
}
