// Command rateltrain fine-tunes a miniature language model with the real
// Ratel engine: model states homed on the (file- or memory-backed) NVMe
// substrate, activations swapped or recomputed per the holistic plan, and
// the out-of-core optimizer hidden behind backward propagation.
//
// Usage:
//
//	rateltrain -steps 50 -layers 4 -hidden 32 -mode optimized -dir /tmp/ratel
//	rateltrain -task chars -steps 300 -dropout 0.05   # char-level LM + sample
//	rateltrain -trace trace.json                      # Chrome/Perfetto timeline
//	rateltrain -debug-addr :6060                      # metrics (expvar + /metrics) + pprof
//
// The engine keeps a flight recorder — a bounded ring of the last steps'
// timing, stalls and byte flows — at all times. On SIGQUIT, a panic, or a
// training-step error, rateltrain dumps it (with the recent span timeline
// and a metrics snapshot, when those are enabled) to the -flight path as a
// JSON postmortem whose "trace" field is a Chrome trace-event array.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"os/signal"
	"syscall"
	"time"

	"ratel/internal/agoffload"
	"ratel/internal/core"
	"ratel/internal/data"
	"ratel/internal/nn"
	"ratel/internal/obs"
	"ratel/internal/opt"
	"ratel/internal/trace"
)

func main() {
	steps := flag.Int("steps", 50, "training steps")
	layers := flag.Int("layers", 4, "transformer blocks")
	hidden := flag.Int("hidden", 32, "hidden dimension")
	heads := flag.Int("heads", 4, "attention heads")
	seq := flag.Int("seq", 16, "sequence length")
	batch := flag.Int("batch", 4, "batch size")
	vocab := flag.Int("vocab", 64, "vocabulary size (ignored for -task chars)")
	devices := flag.Int("devices", 4, "NVMe devices")
	dir := flag.String("dir", "", "directory for file-backed SSDs (empty = in-memory)")
	schedOn := flag.Bool("sched", false, "enable the NVMe transfer scheduler (duplex queues + class priorities + coalescing)")
	schedClasses := flag.String("sched-classes", "", "scheduler priority order: comma-separated permutation of fetch,opt-read,writeback,write-behind (empty = default)")
	adaptiveDepth := flag.Bool("adaptive-depth", false, "let a feedback loop pick the effective pipeline depth from per-step stall profiles")
	mode := flag.String("mode", "optimized", "gradient offloading: serialized, naive or optimized")
	optSched := flag.String("opt-schedule", "sync", "optimizer scheduling: sync, readiness or async")
	asyncTopK := flag.Int("async-topk", 0, "async schedule: groups updated synchronously per step (0 = half)")
	maxStaleness := flag.Int("max-staleness", 0, "async schedule: max steps a deferred update may lag (0 = 1)")
	importEvery := flag.Int("importance-every", 0, "async schedule: recompute the importance partition every N steps (0 = every step)")
	task := flag.String("task", "progression", "training task: progression, copy, uniform or chars")
	dropout := flag.Float64("dropout", 0, "dropout probability")
	lr := flag.Float64("lr", 1e-3, "base learning rate (warmup-cosine schedule)")
	seed := flag.Int64("seed", 1, "random seed")
	checkpoint := flag.String("checkpoint", "", "write the final training state to this file")
	resume := flag.String("resume", "", "restore training state from this file before training")
	evalEvery := flag.Int("eval-every", 0, "report a held-out evaluation loss every N steps")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON timeline of the run to this file (open in Perfetto)")
	debugAddr := flag.String("debug-addr", "", "serve live metrics on this address (expvar at /debug/vars, OpenMetrics at /metrics, pprof at /debug/pprof)")
	flightOut := flag.String("flight", "ratel-flight.json", "flight-recorder dump path (written on SIGQUIT, panic or step error)")
	reportEvery := flag.Int("report-every", 0, "with -trace, print a bottleneck-attribution line every N steps")
	flag.Parse()

	var gm agoffload.Mode
	switch *mode {
	case "serialized":
		gm = agoffload.Serialized
	case "naive":
		gm = agoffload.Naive
	case "optimized":
		gm = agoffload.Optimized
	default:
		fail(fmt.Errorf("unknown mode %q", *mode))
	}
	sched, serr := opt.ParseScheduleMode(*optSched)
	if serr != nil {
		fail(serr)
	}

	// Resolve the data source.
	var (
		corpus    *data.Corpus
		loader    *data.Loader
		err       error
		vocabSize = *vocab
	)
	switch *task {
	case "chars":
		if corpus, err = data.NewCorpus(data.DefaultText); err != nil {
			fail(err)
		}
		vocabSize = corpus.VocabSize()
	case "progression", "copy", "uniform":
		t := map[string]data.Task{"progression": data.Progression, "copy": data.Copy, "uniform": data.Uniform}[*task]
		if loader, err = data.NewLoader(t, *batch, *seq, vocabSize, *seed); err != nil {
			fail(err)
		}
	default:
		fail(fmt.Errorf("unknown task %q", *task))
	}

	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer(obs.DefaultCapacity)
	}
	var registry *obs.Registry
	if *debugAddr != "" {
		registry = obs.NewRegistry()
		registry.PublishExpvar("ratel")
		http.Handle("/metrics", registry.MetricsHandler())
		go func() {
			// expvar, pprof and /metrics register on the default mux.
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "rateltrain: debug server:", err)
			}
		}()
		fmt.Printf("debug server on %s (/debug/vars, /metrics, /debug/pprof)\n", *debugAddr)
	}

	sess, err := core.Init(core.Options{
		Model: nn.Config{
			Vocab: vocabSize, Seq: *seq, Hidden: *hidden, Heads: *heads,
			Layers: *layers, Batch: *batch, Seed: *seed, Dropout: *dropout,
		},
		GradMode:        gm,
		OptSchedule:     sched,
		AsyncTopK:       *asyncTopK,
		MaxStaleness:    *maxStaleness,
		ImportanceEvery: *importEvery,
		Devices:         *devices,
		Dir:             *dir,
		Sched:           *schedOn,
		SchedClasses:    *schedClasses,
		AdaptiveDepth:   *adaptiveDepth,
		LRSchedule:      opt.WarmupCosine(*lr, *steps/10, *steps, *lr/10),
		Tracer:          tracer,
		Metrics:         registry,
	})
	if err != nil {
		fail(err)
	}
	defer sess.Close()

	// The flight recorder is always on inside the engine; this dumps it.
	// Safe to call from the signal goroutine mid-step — the ring, the span
	// buffer and the registry are all concurrency-safe.
	dumpFlight := func(reason string) {
		recs := sess.FlightRecords()
		if len(recs) == 0 {
			return
		}
		var spans []obs.Span
		if tracer != nil {
			spans = tracer.Spans()
		}
		var metrics map[string]float64
		if registry != nil {
			metrics = registry.Snapshot()
		}
		f, err := os.Create(*flightOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rateltrain: flight dump:", err)
			return
		}
		dump := trace.BuildFlightDump(reason, recs, spans, metrics)
		if err := trace.WriteFlightDump(dump, f); err != nil {
			fmt.Fprintln(os.Stderr, "rateltrain: flight dump:", err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "rateltrain: flight recorder (%s): %d steps dumped to %s\n",
			reason, len(recs), *flightOut)
	}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGQUIT)
	go func() {
		<-sigc
		dumpFlight("sigquit")
		os.Exit(2)
	}()
	defer func() {
		if r := recover(); r != nil {
			dumpFlight("panic")
			panic(r)
		}
	}()

	pl := sess.Plan()
	fmt.Printf("task %s (vocab %d), plan %v: swapping %v of activations (%d layers)\n",
		*task, vocabSize, pl.Case, pl.AG2M, len(pl.Swapped))

	if *resume != "" {
		f, err := os.Open(*resume)
		if err != nil {
			fail(err)
		}
		if err := sess.LoadCheckpoint(f); err != nil {
			f.Close()
			fail(err)
		}
		f.Close()
		fmt.Printf("resumed from %s\n", *resume)
	}

	// A held-out batch for evaluation, drawn from a disjoint seed.
	evalRng := rand.New(rand.NewSource(*seed + 7919))
	var evalTokens, evalTargets [][]int
	if corpus != nil {
		if evalTokens, evalTargets, err = corpus.Batch(evalRng, *batch, *seq); err != nil {
			fail(err)
		}
	} else {
		evalLoader, err := data.NewLoader(data.Progression, *batch, *seq, vocabSize, *seed+7919)
		if err != nil {
			fail(err)
		}
		evalTokens, evalTargets = evalLoader.Next()
	}

	rng := rand.New(rand.NewSource(*seed))
	for step := 1; step <= *steps; step++ {
		var tokens, targets [][]int
		if corpus != nil {
			if tokens, targets, err = corpus.Batch(rng, *batch, *seq); err != nil {
				fail(err)
			}
		} else {
			tokens, targets = loader.Next()
		}
		loss, err := sess.TrainStep(tokens, targets)
		if err != nil {
			dumpFlight("step-error")
			fail(err)
		}
		if step == 1 || step%25 == 0 || step == *steps {
			fmt.Printf("step %4d  loss %.4f\n", step, loss)
		}
		// Bottleneck attribution needs the span timeline, so the periodic
		// verdict rides on -trace; the default stdout stays byte-identical.
		if tracer != nil && *reportEvery > 0 && step%*reportEvery == 0 {
			if recs := sess.FlightRecords(); len(recs) > 0 {
				r := recs[len(recs)-1]
				a := obs.Attribute(tracer.Spans(), r.Start, r.End)
				fmt.Printf("step %4d  bound %s (%.0f%% of step, stalls %.0f%%), moved %d bytes (%d stalls, %v waiting)\n",
					step, a.Bound, 100*a.BoundFraction, 100*a.StallFraction(),
					r.Flow.Total(), r.Stalls, r.StallWait.Round(time.Microsecond))
			}
		}
		if *evalEvery > 0 && step%*evalEvery == 0 {
			eval, err := sess.Model().EvalLoss(evalTokens, evalTargets)
			if err != nil {
				fail(err)
			}
			fmt.Printf("step %4d  eval loss %.4f\n", step, eval)
		}
	}
	// Join in-flight deferred optimizer updates (async scheduling) before
	// the checkpoint and the traffic summary, so both cover every staged
	// gradient and the summary stays byte-identical across runs.
	if err := sess.FlushAsync(); err != nil {
		fail(err)
	}
	if *checkpoint != "" {
		f, err := os.Create(*checkpoint)
		if err != nil {
			fail(err)
		}
		if err := sess.SaveCheckpoint(f); err != nil {
			f.Close()
			fail(err)
		}
		f.Close()
		fmt.Printf("checkpoint written to %s\n", *checkpoint)
	}
	st := sess.Stats()
	fmt.Printf("done: %d steps, offloaded %v of activations, fetched %v, recomputed %d blocks\n",
		st.Steps, st.ActBytesOffload, st.ActBytesFetched, st.RecomputedBlocks)
	fmt.Printf("ssd traffic: wrote %v, read %v across %d objects\n",
		st.SSD.BytesWritten, st.SSD.BytesRead, st.SSD.Objects)
	// Wall-clock profile only under the telemetry flags: the default
	// stdout stays byte-identical across runs and thread counts.
	if m := sess.LastStepMetrics(); m.Step > 0 && (tracer != nil || registry != nil) {
		fmt.Printf("last step: %v wall (fwd %v, bwd %v, optimizer drain %v), %.0f tokens/s, adam %.2e params/s\n",
			m.Wall.Round(10e3), m.Forward.Round(10e3), m.Backward.Round(10e3), m.OptimizerDrain.Round(10e3),
			m.TokensPerSec, m.AdamParamsPerSec())
	}

	if tracer != nil {
		spans := tracer.Spans()
		f, err := os.Create(*traceOut)
		if err != nil {
			fail(err)
		}
		if err := trace.WriteEngineJSON(spans, f); err != nil {
			f.Close()
			fail(err)
		}
		f.Close()
		total, dropped := tracer.Recorded()
		fmt.Printf("trace: %d spans written to %s (%d recorded, %d dropped by the ring)\n",
			len(spans), *traceOut, total, dropped)
	}

	if corpus != nil {
		prompt, err := corpus.Encode("the key idea ")
		if err != nil {
			fail(err)
		}
		if len(prompt) > *seq-4 {
			prompt = prompt[:*seq-4]
		}
		out, err := sess.Generate(prompt, *seq-len(prompt))
		if err != nil {
			fail(err)
		}
		fmt.Printf("sample: %q\n", corpus.Decode(out))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "rateltrain:", err)
	os.Exit(1)
}
