// Command rateltrain fine-tunes a miniature language model with the real
// Ratel engine: model states homed on the (file- or memory-backed) NVMe
// substrate, activations swapped or recomputed per the holistic plan, and
// the out-of-core optimizer hidden behind backward propagation.
//
// Usage:
//
//	rateltrain -steps 50 -layers 4 -hidden 32 -mode optimized -dir /tmp/ratel
//	rateltrain -task chars -steps 300 -dropout 0.05   # char-level LM + sample
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"ratel/internal/agoffload"
	"ratel/internal/core"
	"ratel/internal/data"
	"ratel/internal/nn"
	"ratel/internal/opt"
)

func main() {
	steps := flag.Int("steps", 50, "training steps")
	layers := flag.Int("layers", 4, "transformer blocks")
	hidden := flag.Int("hidden", 32, "hidden dimension")
	heads := flag.Int("heads", 4, "attention heads")
	seq := flag.Int("seq", 16, "sequence length")
	batch := flag.Int("batch", 4, "batch size")
	vocab := flag.Int("vocab", 64, "vocabulary size (ignored for -task chars)")
	devices := flag.Int("devices", 4, "NVMe devices")
	dir := flag.String("dir", "", "directory for file-backed SSDs (empty = in-memory)")
	mode := flag.String("mode", "optimized", "gradient offloading: serialized, naive or optimized")
	task := flag.String("task", "progression", "training task: progression, copy, uniform or chars")
	dropout := flag.Float64("dropout", 0, "dropout probability")
	lr := flag.Float64("lr", 1e-3, "base learning rate (warmup-cosine schedule)")
	seed := flag.Int64("seed", 1, "random seed")
	checkpoint := flag.String("checkpoint", "", "write the final training state to this file")
	resume := flag.String("resume", "", "restore training state from this file before training")
	evalEvery := flag.Int("eval-every", 0, "report a held-out evaluation loss every N steps")
	flag.Parse()

	var gm agoffload.Mode
	switch *mode {
	case "serialized":
		gm = agoffload.Serialized
	case "naive":
		gm = agoffload.Naive
	case "optimized":
		gm = agoffload.Optimized
	default:
		fail(fmt.Errorf("unknown mode %q", *mode))
	}

	// Resolve the data source.
	var (
		corpus    *data.Corpus
		loader    *data.Loader
		err       error
		vocabSize = *vocab
	)
	switch *task {
	case "chars":
		if corpus, err = data.NewCorpus(data.DefaultText); err != nil {
			fail(err)
		}
		vocabSize = corpus.VocabSize()
	case "progression", "copy", "uniform":
		t := map[string]data.Task{"progression": data.Progression, "copy": data.Copy, "uniform": data.Uniform}[*task]
		if loader, err = data.NewLoader(t, *batch, *seq, vocabSize, *seed); err != nil {
			fail(err)
		}
	default:
		fail(fmt.Errorf("unknown task %q", *task))
	}

	sess, err := core.Init(core.Options{
		Model: nn.Config{
			Vocab: vocabSize, Seq: *seq, Hidden: *hidden, Heads: *heads,
			Layers: *layers, Batch: *batch, Seed: *seed, Dropout: *dropout,
		},
		GradMode:   gm,
		Devices:    *devices,
		Dir:        *dir,
		LRSchedule: opt.WarmupCosine(*lr, *steps/10, *steps, *lr/10),
	})
	if err != nil {
		fail(err)
	}
	defer sess.Close()

	pl := sess.Plan()
	fmt.Printf("task %s (vocab %d), plan %v: swapping %v of activations (%d layers)\n",
		*task, vocabSize, pl.Case, pl.AG2M, len(pl.Swapped))

	if *resume != "" {
		f, err := os.Open(*resume)
		if err != nil {
			fail(err)
		}
		if err := sess.LoadCheckpoint(f); err != nil {
			f.Close()
			fail(err)
		}
		f.Close()
		fmt.Printf("resumed from %s\n", *resume)
	}

	// A held-out batch for evaluation, drawn from a disjoint seed.
	evalRng := rand.New(rand.NewSource(*seed + 7919))
	var evalTokens, evalTargets [][]int
	if corpus != nil {
		if evalTokens, evalTargets, err = corpus.Batch(evalRng, *batch, *seq); err != nil {
			fail(err)
		}
	} else {
		evalLoader, err := data.NewLoader(data.Progression, *batch, *seq, vocabSize, *seed+7919)
		if err != nil {
			fail(err)
		}
		evalTokens, evalTargets = evalLoader.Next()
	}

	rng := rand.New(rand.NewSource(*seed))
	for step := 1; step <= *steps; step++ {
		var tokens, targets [][]int
		if corpus != nil {
			if tokens, targets, err = corpus.Batch(rng, *batch, *seq); err != nil {
				fail(err)
			}
		} else {
			tokens, targets = loader.Next()
		}
		loss, err := sess.TrainStep(tokens, targets)
		if err != nil {
			fail(err)
		}
		if step == 1 || step%25 == 0 || step == *steps {
			fmt.Printf("step %4d  loss %.4f\n", step, loss)
		}
		if *evalEvery > 0 && step%*evalEvery == 0 {
			eval, err := sess.Model().EvalLoss(evalTokens, evalTargets)
			if err != nil {
				fail(err)
			}
			fmt.Printf("step %4d  eval loss %.4f\n", step, eval)
		}
	}
	if *checkpoint != "" {
		f, err := os.Create(*checkpoint)
		if err != nil {
			fail(err)
		}
		if err := sess.SaveCheckpoint(f); err != nil {
			f.Close()
			fail(err)
		}
		f.Close()
		fmt.Printf("checkpoint written to %s\n", *checkpoint)
	}
	st := sess.Stats()
	fmt.Printf("done: %d steps, offloaded %v of activations, fetched %v, recomputed %d blocks\n",
		st.Steps, st.ActBytesOffload, st.ActBytesFetched, st.RecomputedBlocks)
	fmt.Printf("ssd traffic: wrote %v, read %v across %d objects\n",
		st.SSD.BytesWritten, st.SSD.BytesRead, st.SSD.Objects)

	if corpus != nil {
		prompt, err := corpus.Encode("the key idea ")
		if err != nil {
			fail(err)
		}
		if len(prompt) > *seq-4 {
			prompt = prompt[:*seq-4]
		}
		out, err := sess.Generate(prompt, *seq-len(prompt))
		if err != nil {
			fail(err)
		}
		fmt.Printf("sample: %q\n", corpus.Decode(out))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "rateltrain:", err)
	os.Exit(1)
}
