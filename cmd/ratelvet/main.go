// Command ratelvet runs the repo's domain-specific static analyzers
// (simdet, unitsafe, spanpair, poolcapture, errdrop — see DESIGN.md §8).
//
// Standalone:
//
//	go run ./cmd/ratelvet ./...
//
// As a vet tool, speaking the cmd/go unitchecker protocol so findings join
// the normal vet cache and diagnostics pipeline:
//
//	go vet -vettool=$(go env GOPATH)/bin/ratelvet ./...
//
// Findings print as file:line:col: [analyzer] message. Exit status is 0
// when clean, 1 on usage or load errors, and 2 when findings exist (the
// same convention go vet's unitchecker uses).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ratel/internal/analysis"
	"ratel/internal/analysis/registry"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// Protocol probes from cmd/go come first and must answer on stdout.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full" || args[0] == "--V=full":
			printVersion()
			return 0
		case args[0] == "-flags" || args[0] == "--flags":
			fmt.Println("[]") // no tool-specific flags
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return runVetUnit(args[0])
		}
	}
	return runStandalone(args)
}

// printVersion answers go vet's -V=full buildid probe. The executable's
// own hash is the version: any rebuild invalidates cached vet results.
func printVersion() {
	name := filepath.Base(os.Args[0])
	name = strings.TrimSuffix(name, ".exe")
	sum := [sha256.Size]byte{}
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum = sha256.Sum256(data)
		}
	}
	fmt.Printf("%s version devel buildID=%02x\n", name, sum)
}

// runStandalone loads the given patterns (default ./...) from the current
// directory and reports findings from every registered analyzer.
func runStandalone(patterns []string) int {
	for _, p := range patterns {
		if strings.HasPrefix(p, "-") {
			fmt.Fprintf(os.Stderr, "ratelvet: unknown flag %q (the only flags are the vet protocol's -V=full and -flags)\n", p)
			return 1
		}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	exit := 0
	for _, pkg := range pkgs {
		if pkg.TypeError != nil {
			fmt.Fprintf(os.Stderr, "ratelvet: %s: %v\n", pkg.PkgPath, pkg.TypeError)
			exit = 1
			continue
		}
		findings, err := analysis.Run(pkg, registry.All())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		for _, f := range findings {
			fmt.Println(f)
			if exit == 0 {
				exit = 2
			}
		}
	}
	return exit
}

// vetConfig is the subset of cmd/go's vet config file that ratelvet needs.
// cmd/go writes one per package and invokes the tool with its path as the
// sole argument.
type vetConfig struct {
	ImportPath                string
	Dir                       string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one package as directed by a vet config file.
func runVetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ratelvet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ratelvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	if cfg.VetxOnly {
		// Dependency package: cmd/go only wants facts, and ratelvet
		// exports none. Diagnostics are reported when the package is a
		// vet root.
		return writeVetx(cfg.VetxOutput)
	}

	// Source files import by the paths on the left of ImportMap; export
	// data is keyed by the canonical paths on the right. Flatten the two
	// hops into the single map CheckPackage resolves through.
	exports := make(map[string]string, len(cfg.PackageFile))
	for canon, file := range cfg.PackageFile {
		exports[canon] = file
	}
	for src, canon := range cfg.ImportMap {
		if file, ok := cfg.PackageFile[canon]; ok {
			exports[src] = file
		}
	}

	pkg, err := analysis.CheckPackage(cfg.ImportPath, cfg.Dir, cfg.GoFiles, exports)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ratelvet: %v\n", err)
		return 1
	}
	if pkg.TypeError != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(cfg.VetxOutput)
		}
		fmt.Fprintf(os.Stderr, "ratelvet: %s: %v\n", cfg.ImportPath, pkg.TypeError)
		return 1
	}

	findings, err := analysis.Run(pkg, registry.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "ratelvet: %v\n", err)
		return 1
	}
	if code := writeVetx(cfg.VetxOutput); code != 0 {
		return code
	}
	if len(findings) == 0 {
		return 0
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	return 2
}

// writeVetx records the (empty — ratelvet exports no facts) vetx output
// that cmd/go requires for its action cache.
func writeVetx(path string) int {
	if path == "" {
		return 0
	}
	if err := os.WriteFile(path, nil, 0o666); err != nil {
		fmt.Fprintf(os.Stderr, "ratelvet: %v\n", err)
		return 1
	}
	return 0
}
