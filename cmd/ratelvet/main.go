// Command ratelvet runs the repo's domain-specific static analyzers
// (slotlife, xferown, atomicmix, gojoin, simdet, unitsafe, spanpair,
// poolcapture, errdrop, ... — see DESIGN.md §8 and §13).
//
// Standalone (loads test variants too, so analyzers with IncludeTests see
// _test.go files):
//
//	go run ./cmd/ratelvet ./...
//	go run ./cmd/ratelvet -json ./...
//
// Suppression audit (lists every //ratelvet:ignore with its reason):
//
//	go run ./cmd/ratelvet audit
//
// As a vet tool, speaking the cmd/go unitchecker protocol so findings join
// the normal vet cache and diagnostics pipeline:
//
//	go vet -vettool=$(go env GOPATH)/bin/ratelvet ./...
//
// Findings print as file:line:col: [analyzer] message; suppressed findings
// are omitted from text output but carried (flagged) in -json. Exit status
// is 0 when clean, 1 on usage or load errors, and 2 when unsuppressed
// findings exist (the same convention go vet's unitchecker uses).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ratel/internal/analysis"
	"ratel/internal/analysis/registry"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// Protocol probes from cmd/go come first and must answer on stdout.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full" || args[0] == "--V=full":
			printVersion()
			return 0
		case args[0] == "-flags" || args[0] == "--flags":
			fmt.Println("[]") // no tool-specific flags
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return runVetUnit(args[0])
		}
	}
	if len(args) > 0 && args[0] == "audit" {
		return runAudit(args[1:])
	}
	jsonOut := false
	var patterns []string
	for _, a := range args {
		switch {
		case a == "-json" || a == "--json":
			jsonOut = true
		case strings.HasPrefix(a, "-"):
			fmt.Fprintf(os.Stderr, "ratelvet: unknown flag %q (flags: -json; subcommands: audit; plus the vet protocol's -V=full and -flags)\n", a)
			return 1
		default:
			patterns = append(patterns, a)
		}
	}
	return runStandalone(patterns, jsonOut)
}

// printVersion answers go vet's -V=full buildid probe. The executable's
// own hash is the version: any rebuild invalidates cached vet results.
func printVersion() {
	name := filepath.Base(os.Args[0])
	name = strings.TrimSuffix(name, ".exe")
	sum := [sha256.Size]byte{}
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum = sha256.Sum256(data)
		}
	}
	fmt.Printf("%s version devel buildID=%02x\n", name, sum)
}

// analyzersFor selects the analyzer subset for one loaded package. Test
// variants run only IncludeTests analyzers (the others already covered the
// plain build); plain packages skip IncludeTests analyzers when a test
// variant exists (it re-checks the same sources plus the _test.go files),
// and run everything when none does.
func analyzersFor(pkg *analysis.Package, hasVariant map[string]bool) []*analysis.Analyzer {
	var out []*analysis.Analyzer
	for _, a := range registry.All() {
		switch {
		case pkg.ForTest && !a.IncludeTests:
			continue
		case !pkg.ForTest && a.IncludeTests && hasVariant[pkg.PkgPath]:
			continue
		}
		out = append(out, a)
	}
	return out
}

// jsonFinding is one finding in -json output.
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// runStandalone loads the given patterns (default ./...) from the current
// directory, test variants included, and reports findings from every
// registered analyzer.
func runStandalone(patterns []string, jsonOut bool) int {
	pkgs, err := analysis.LoadWithTests(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	hasVariant := make(map[string]bool)
	for _, pkg := range pkgs {
		if pkg.ForTest {
			hasVariant[pkg.PkgPath] = true
		}
	}
	exit := 0
	var all []jsonFinding
	for _, pkg := range pkgs {
		if pkg.TypeError != nil {
			fmt.Fprintf(os.Stderr, "ratelvet: %s: %v\n", pkg.PkgPath, pkg.TypeError)
			exit = 1
			continue
		}
		findings, err := analysis.Run(pkg, analyzersFor(pkg, hasVariant))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		for _, f := range findings {
			if jsonOut {
				all = append(all, jsonFinding{
					File:       f.Position.Filename,
					Line:       f.Position.Line,
					Col:        f.Position.Column,
					Analyzer:   f.Analyzer,
					Message:    f.Message,
					Suppressed: f.Suppressed,
				})
			} else if !f.Suppressed {
				fmt.Println(f)
			}
			if !f.Suppressed && exit == 0 {
				exit = 2
			}
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if all == nil {
			all = []jsonFinding{}
		}
		if err := enc.Encode(all); err != nil {
			fmt.Fprintf(os.Stderr, "ratelvet: %v\n", err)
			return 1
		}
	}
	return exit
}

// runAudit walks the module's Go sources (testdata excluded — those files
// exercise analyzers, they are not production suppressions) and lists
// every //ratelvet:ignore comment with its analyzer and reason, sorted by
// position. The count is the suppression budget `make check` gates against
// lint-baseline.txt.
func runAudit(args []string) int {
	root := "."
	if len(args) == 1 {
		root = args[0]
	} else if len(args) > 1 {
		fmt.Fprintln(os.Stderr, "ratelvet: usage: ratelvet audit [dir]")
		return 1
	}
	type entry struct {
		path string
		s    analysis.Suppression
	}
	var entries []entry
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || name == ".git" || (name != "." && strings.HasPrefix(name, ".")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("%s: %v", path, err)
		}
		for _, s := range analysis.CollectSuppressions(fset, f) {
			entries = append(entries, entry{path: path, s: s})
		}
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ratelvet: audit: %v\n", err)
		return 1
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].path != entries[j].path {
			return entries[i].path < entries[j].path
		}
		return entries[i].s.Line < entries[j].s.Line
	})
	for _, e := range entries {
		reason := e.s.Reason
		if reason == "" {
			reason = "(missing reason)"
		}
		analyzer := e.s.Analyzer
		if analyzer == "" {
			analyzer = "(missing analyzer)"
		}
		fmt.Printf("%s:%d: %s: %s\n", e.path, e.s.Line, analyzer, reason)
	}
	fmt.Printf("total: %d suppression(s)\n", len(entries))
	return 0
}

// vetConfig is the subset of cmd/go's vet config file that ratelvet needs.
// cmd/go writes one per package and invokes the tool with its path as the
// sole argument.
type vetConfig struct {
	ImportPath                string
	Dir                       string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one package as directed by a vet config file. With
// `go vet -vettool`, test variants arrive as their own units with import
// paths like "ratel/internal/engine [ratel/internal/engine.test]"; those
// run only IncludeTests analyzers (the plain unit covers the rest) under
// the base path so analyzer scopes match.
func runVetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ratelvet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ratelvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	if cfg.VetxOnly {
		// Dependency package: cmd/go only wants facts, and ratelvet
		// exports none. Diagnostics are reported when the package is a
		// vet root.
		return writeVetx(cfg.VetxOutput)
	}

	importPath := cfg.ImportPath
	isVariant := false
	if i := strings.Index(importPath, " ["); i >= 0 {
		importPath = importPath[:i]
		isVariant = true
	}
	var active []*analysis.Analyzer
	for _, a := range registry.All() {
		if isVariant && !a.IncludeTests {
			continue
		}
		active = append(active, a)
	}
	if len(active) == 0 {
		return writeVetx(cfg.VetxOutput)
	}

	// Source files import by the paths on the left of ImportMap; export
	// data is keyed by the canonical paths on the right. Flatten the two
	// hops into the single map CheckPackage resolves through.
	exports := make(map[string]string, len(cfg.PackageFile))
	for canon, file := range cfg.PackageFile {
		exports[canon] = file
	}
	for src, canon := range cfg.ImportMap {
		if file, ok := cfg.PackageFile[canon]; ok {
			exports[src] = file
		}
	}

	pkg, err := analysis.CheckPackage(importPath, cfg.Dir, cfg.GoFiles, exports)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ratelvet: %v\n", err)
		return 1
	}
	if pkg.TypeError != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(cfg.VetxOutput)
		}
		fmt.Fprintf(os.Stderr, "ratelvet: %s: %v\n", cfg.ImportPath, pkg.TypeError)
		return 1
	}

	findings, err := analysis.Run(pkg, active)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ratelvet: %v\n", err)
		return 1
	}
	exit := 0
	for _, f := range findings {
		if f.Suppressed {
			continue
		}
		fmt.Fprintln(os.Stderr, f)
		exit = 2
	}
	if code := writeVetx(cfg.VetxOutput); code != 0 {
		return code
	}
	return exit
}

// writeVetx records the (empty — ratelvet exports no facts) vetx output
// that cmd/go requires for its action cache.
func writeVetx(path string) int {
	if path == "" {
		return 0
	}
	if err := os.WriteFile(path, nil, 0o666); err != nil {
		fmt.Fprintf(os.Stderr, "ratelvet: %v\n", err)
		return 1
	}
	return 0
}
