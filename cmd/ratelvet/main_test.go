package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ratel/internal/analysis"
	"ratel/internal/analysis/registry"
)

// TestAnalyzersForVariantSelection checks the standalone split: test
// variants run only IncludeTests analyzers, plain packages skip those
// exactly when a variant exists (it re-covers the same sources).
func TestAnalyzersForVariantSelection(t *testing.T) {
	all := registry.All()
	withTests, without := 0, 0
	for _, a := range all {
		if a.IncludeTests {
			withTests++
		} else {
			without++
		}
	}
	if withTests == 0 {
		t.Fatal("registry has no IncludeTests analyzer; the variant split is untested")
	}

	variant := &analysis.Package{PkgPath: "ratel/x", ForTest: true}
	for _, a := range analyzersFor(variant, map[string]bool{"ratel/x": true}) {
		if !a.IncludeTests {
			t.Errorf("test variant ran %s, which does not include tests", a.Name)
		}
	}

	base := &analysis.Package{PkgPath: "ratel/x"}
	got := analyzersFor(base, map[string]bool{"ratel/x": true})
	if len(got) != without {
		t.Errorf("base-with-variant ran %d analyzers, want %d (IncludeTests ones belong to the variant)", len(got), without)
	}
	for _, a := range got {
		if a.IncludeTests {
			t.Errorf("base-with-variant ran %s twice (variant covers it)", a.Name)
		}
	}

	if got := analyzersFor(base, map[string]bool{}); len(got) != len(all) {
		t.Errorf("base-without-variant ran %d analyzers, want all %d", len(got), len(all))
	}
}

// TestAuditListsSuppressions runs the audit over a synthetic tree and
// checks it reports each suppression with its reason, skips testdata
// directories, and prints the count the suppress-gate reads.
func TestAuditListsSuppressions(t *testing.T) {
	dir := t.TempDir()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(os.WriteFile(filepath.Join(dir, "a.go"), []byte(`package a

//ratelvet:ignore gojoin worker joined by the shutdown path in close()
var x = 1

var y = 2 //ratelvet:ignore atomicmix guarded by mu, never touched concurrently
`), 0o666))
	must(os.MkdirAll(filepath.Join(dir, "testdata", "src"), 0o777))
	must(os.WriteFile(filepath.Join(dir, "testdata", "src", "b.go"), []byte(`package b

//ratelvet:ignore xferown golden fixture, must not count
var z = 3
`), 0o666))

	out := captureStdout(t, func() {
		if code := runAudit([]string{dir}); code != 0 {
			t.Fatalf("runAudit = %d, want 0", code)
		}
	})
	for _, want := range []string{
		"a.go:3: gojoin: worker joined by the shutdown path in close()",
		"a.go:6: atomicmix: guarded by mu, never touched concurrently",
		"total: 2 suppression(s)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("audit output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "xferown") {
		t.Errorf("audit counted a testdata suppression:\n%s", out)
	}
}

func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = orig }()
	f()
	w.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}
