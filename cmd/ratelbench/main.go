// Command ratelbench regenerates the paper's tables and figures from the
// calibrated simulator. Run with no arguments to list experiments, with
// experiment ids (e.g. "fig5a") to run some, or with "all". The -out flag
// additionally writes each experiment's output to <dir>/<id>.txt for
// archiving (EXPERIMENTS.md provenance).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"ratel/internal/experiments"
)

func main() {
	outDir := flag.String("out", "", "also write each experiment's output to <dir>/<id>.txt")
	flag.Parse()
	args := flag.Args()

	if len(args) < 1 {
		fmt.Println("usage: ratelbench [-out dir] <experiment-id>...|all")
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-10s %s\n", e.ID, e.Title)
		}
		return
	}
	ids := args
	if args[0] == "all" {
		ids = nil
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
	}
	for _, id := range ids {
		if err := runOne(id, *outDir); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
}

func runOne(id, outDir string) error {
	var w io.Writer = os.Stdout
	if outDir != "" {
		f, err := os.Create(filepath.Join(outDir, id+".txt"))
		if err != nil {
			return err
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}
	return experiments.Run(id, w)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ratelbench:", err)
	os.Exit(1)
}
