// Command ratelbench regenerates the paper's tables and figures from the
// calibrated simulator. Run with no arguments to list experiments, with
// experiment ids (e.g. "fig5a") to run some, or with "all". The -out flag
// additionally writes each experiment's output to <dir>/<id>.txt for
// archiving (EXPERIMENTS.md provenance).
//
// The "tune" subcommand instead calibrates the CPU kernels on this
// machine: it sweeps the matmul tile sizes and the element-wise grain and
// writes a JSON profile (default ratel-tune.json, or the -tune-out path)
// that the engine applies at startup when RATEL_TUNE_PROFILE names it.
// Tuning is result-neutral — it changes kernel speed, never kernel output.
//
// The "diff" subcommand compares two BENCH_*.json snapshots row by row
// (matched on bench+variant) and exits non-zero when any metric regressed
// beyond -tol; `make bench-gate` uses it as the snapshot-integrity gate.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"ratel/internal/benchdiff"
	"ratel/internal/experiments"
	"ratel/internal/profile"
	"ratel/internal/tensor/simd"
)

func main() {
	outDir := flag.String("out", "", "also write each experiment's output to <dir>/<id>.txt")
	tuneOut := flag.String("tune-out", "ratel-tune.json", "profile path the tune subcommand writes")
	tuneDim := flag.Int("tune-dim", 0, "matmul dimension the tune sweep times (0 = default 512)")
	tol := flag.Float64("tol", 0.10, "relative tolerance for the diff subcommand (0.10 = 10%)")
	flag.Parse()
	args := flag.Args()

	if len(args) < 1 {
		fmt.Println("usage: ratelbench [-out dir] <experiment-id>...|all")
		fmt.Println("       ratelbench [-tune-out file] [-tune-dim n] tune")
		fmt.Println("       ratelbench [-tol frac] diff <old.json> <new.json>")
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-10s %s\n", e.ID, e.Title)
		}
		return
	}
	if args[0] == "tune" {
		if err := runTune(*tuneOut, *tuneDim); err != nil {
			fatal(err)
		}
		return
	}
	if args[0] == "diff" {
		if len(args) != 3 {
			fatal(fmt.Errorf("diff needs exactly two snapshot paths, got %d args", len(args)-1))
		}
		if err := runDiff(args[1], args[2], *tol); err != nil {
			fatal(err)
		}
		return
	}
	ids := args
	if args[0] == "all" {
		ids = nil
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
	}
	for _, id := range ids {
		if err := runOne(id, *outDir); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
}

func runOne(id, outDir string) error {
	var w io.Writer = os.Stdout
	if outDir != "" {
		f, err := os.Create(filepath.Join(outDir, id+".txt"))
		if err != nil {
			return err
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}
	return experiments.Run(id, w)
}

func runTune(out string, dim int) error {
	fmt.Printf("calibrating kernels (simd level %s)\n", simd.Level())
	t, err := profile.TuneKernels(profile.TuneConfig{Dim: dim}, func(format string, a ...any) {
		fmt.Printf("  "+format+"\n", a...)
	})
	if err != nil {
		return err
	}
	if err := t.Save(out); err != nil {
		return err
	}
	fmt.Printf("best: kBlock=%d jBlock=%d elemGrain=%d\n", t.MatMulKBlock, t.MatMulJBlock, t.ElemGrain)
	fmt.Printf("wrote %s — apply with %s=%s\n", out, profile.TuneEnvVar, out)
	return nil
}

func runDiff(oldPath, newPath string, tol float64) error {
	oldSnap, err := benchdiff.LoadFile(oldPath)
	if err != nil {
		return err
	}
	newSnap, err := benchdiff.LoadFile(newPath)
	if err != nil {
		return err
	}
	rep := benchdiff.Diff(oldSnap, newSnap, tol)
	rep.Write(os.Stdout)
	return rep.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ratelbench:", err)
	os.Exit(1)
}
