// Command ratelplan prints Ratel's holistic traffic-aware activation swap
// plan and the predicted iteration time for a (model, server, batch)
// combination.
//
// Usage:
//
//	ratelplan -model 13B -batch 32 -gpu 4090 -mem 768 -ssds 12
package main

import (
	"flag"
	"fmt"
	"os"

	"ratel/internal/capacity"
	"ratel/internal/hw"
	"ratel/internal/itersim"
	"ratel/internal/model"
	"ratel/internal/plan"
	"ratel/internal/sim"
	"ratel/internal/strategy"
	"ratel/internal/trace"
	"ratel/internal/units"
)

func main() {
	modelName := flag.String("model", "13B", "catalog model (6B..412B, DiT-*)")
	batch := flag.Int("batch", 32, "batch size")
	gpuName := flag.String("gpu", "4090", "GPU: 4090, 3090 or 4080")
	memGiB := flag.Int("mem", 768, "main memory in GiB")
	ssds := flag.Int("ssds", 12, "number of NVMe SSDs")
	traceCSV := flag.String("trace", "", "write the simulated iteration timeline to this CSV file")
	gantt := flag.Bool("gantt", false, "render a per-resource Gantt strip")
	serverJSON := flag.String("server", "", "JSON server description (overrides -gpu/-mem/-ssds)")
	flag.Parse()

	cfg, err := model.ByName(*modelName)
	if err != nil {
		fail(err)
	}
	var srv hw.Server
	if *serverJSON != "" {
		if srv, err = hw.LoadServer(*serverJSON); err != nil {
			fail(err)
		}
	} else {
		gpu, err := pickGPU(*gpuName)
		if err != nil {
			fail(err)
		}
		srv = hw.EvalServer(gpu, units.Bytes(*memGiB)*units.GiB, *ssds)
	}

	if err := capacity.Check(strategy.Ratel, cfg, *batch, srv); err != nil {
		fmt.Fprint(os.Stderr, capacity.Explain(strategy.Ratel, cfg, *batch, srv))
		fail(fmt.Errorf("configuration infeasible: %w", err))
	}
	fmt.Print(capacity.Explain(strategy.Ratel, cfg, *batch, srv))
	profile := capacity.PlannerProfile(strategy.Ratel, cfg, *batch, srv)
	pl, err := plan.Optimize(profile)
	if err != nil {
		fail(err)
	}
	fmt.Printf("model %s (P=%.1fB), batch %d on %s, %.0f GiB, %d SSDs\n",
		cfg.Name, float64(cfg.Params())/1e9, *batch, srv.GPU.Name, srv.MainMemory.GiBf(), srv.SSDCount)
	fmt.Printf("activations: total %v, inter-block floor %v\n",
		profile.Aall(), profile.AinterBlock())
	fmt.Printf("plan (%v): swap %v (%d layers), %.0f%% of swapped bytes spill to SSD\n",
		pl.Case, pl.AG2M, len(pl.Swapped), 100*pl.Alpha())
	fmt.Printf("recomputation: %.0f TFLOP per iteration\n", pl.FLOPr.TFLOPf())
	fmt.Printf("predicted: forward %.1f s, backward %.1f s, iteration %.1f s\n",
		pl.Predicted.Tf, pl.Predicted.Tb, pl.Predicted.Titer)

	rep, err := itersim.Simulate(strategy.Ratel, cfg, *batch, srv)
	if err != nil {
		fail(err)
	}
	fmt.Printf("simulated: iteration %.1f s, %.0f tokens/s, %.0f TFLOPS, GPU busy %.0f%%\n",
		rep.Makespan, rep.TokensPerSec, rep.TFLOPS, 100*rep.GPUBusyFrac)

	path := sim.CriticalPath(rep.Result)
	fmt.Print("critical path by resource:")
	shares := sim.ResourceShares(path)
	for _, res := range []sim.ResourceID{sim.GPUCompute, sim.PCIeM2G, sim.PCIeG2M, sim.SSDBus, sim.CPUAdam} {
		if shares[res] > 0.005 {
			fmt.Printf("  %s %.0f%%", res, 100*shares[res])
		}
	}
	fmt.Println()

	if *gantt {
		fmt.Print(trace.Gantt(rep.Result, 96))
		fmt.Print(trace.FormatStageUtilization(rep.Result, trace.StageWindows{
			ForwardEnd: rep.ForwardEnd, BackwardEnd: rep.BackwardEnd, End: rep.Makespan,
		}))
	}
	if *traceCSV != "" {
		f, err := os.Create(*traceCSV)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := trace.WriteCSV(rep.Result, f); err != nil {
			fail(err)
		}
		fmt.Printf("timeline written to %s (%d tasks)\n", *traceCSV, len(rep.Result.Spans))
	}
}

func pickGPU(name string) (hw.GPU, error) {
	switch name {
	case "4090":
		return hw.RTX4090, nil
	case "3090":
		return hw.RTX3090, nil
	case "4080":
		return hw.RTX4080, nil
	}
	return hw.GPU{}, fmt.Errorf("unknown GPU %q (want 4090, 3090 or 4080)", name)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ratelplan:", err)
	os.Exit(1)
}
