// Package units provides the byte, time and bandwidth quantities used
// throughout the Ratel reproduction, with the GiB-based formatting the paper
// reports its figures in.
package units

import (
	"fmt"
	"math"
	"time"
)

// Bytes is a tensor or transfer size in bytes.
type Bytes int64

// Common byte quantities.
const (
	KiB Bytes = 1 << 10
	MiB Bytes = 1 << 20
	GiB Bytes = 1 << 30
	TiB Bytes = 1 << 40

	KB Bytes = 1e3
	MB Bytes = 1e6
	GB Bytes = 1e9
	TB Bytes = 1e12
)

// GiBf reports b in binary gigabytes as a float, the unit the paper's
// figures use.
func (b Bytes) GiBf() float64 { return float64(b) / float64(GiB) }

// GBf reports b in decimal gigabytes as a float.
func (b Bytes) GBf() float64 { return float64(b) / float64(GB) }

// String renders b with a human-readable suffix.
func (b Bytes) String() string {
	abs := b
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= TiB:
		return fmt.Sprintf("%.2f TiB", float64(b)/float64(TiB))
	case abs >= GiB:
		return fmt.Sprintf("%.2f GiB", float64(b)/float64(GiB))
	case abs >= MiB:
		return fmt.Sprintf("%.2f MiB", float64(b)/float64(MiB))
	case abs >= KiB:
		return fmt.Sprintf("%.2f KiB", float64(b)/float64(KiB))
	}
	return fmt.Sprintf("%d B", int64(b))
}

// Seconds is a simulated duration. The simulator uses float seconds rather
// than time.Duration because iteration times are derived from bandwidth
// divisions and FLOP counts, where nanosecond quantization adds nothing.
type Seconds float64

// String renders s with millisecond precision.
func (s Seconds) String() string { return fmt.Sprintf("%.3fs", float64(s)) }

// Duration converts s to a wall-clock time.Duration, saturating at the
// representable range so +Inf (infeasible placements) stays ordered.
func (s Seconds) Duration() time.Duration {
	v := float64(s) * float64(time.Second)
	switch {
	case v >= math.MaxInt64:
		return time.Duration(math.MaxInt64)
	case v <= math.MinInt64:
		return time.Duration(math.MinInt64)
	}
	return time.Duration(v)
}

// BytesPerSecond is a link or device bandwidth.
type BytesPerSecond float64

// GBps constructs a bandwidth from decimal GB/s, the unit vendors and the
// paper use for PCIe and SSD bandwidth.
func GBps(v float64) BytesPerSecond { return BytesPerSecond(v * 1e9) }

// GBpsf reports the bandwidth in decimal GB/s.
func (bw BytesPerSecond) GBpsf() float64 { return float64(bw) / 1e9 }

// TransferTime reports how long moving b bytes takes at bandwidth bw.
// A zero or negative bandwidth with a positive size yields +Inf, which the
// iteration-time model treats as "this placement is infeasible".
func TransferTime(b Bytes, bw BytesPerSecond) Seconds {
	if b <= 0 {
		return 0
	}
	if bw <= 0 {
		return Seconds(math.Inf(1))
	}
	return Seconds(float64(b) / float64(bw))
}

// TransferDuration is TransferTime for callers pacing real I/O with
// time.Duration (the NVMe throttles).
func TransferDuration(b Bytes, bw BytesPerSecond) time.Duration {
	return TransferTime(b, bw).Duration()
}

// TransferNanos is the exact, fractional nanosecond cost of moving b bytes
// at bw. The NVMe throttles carry the sub-nanosecond remainder between
// charges: TransferDuration truncates to a whole nanosecond, which rounds a
// 1-byte chunk at 6.5 GB/s (0.15 ns) — and, accumulated, any stream of
// sub-microsecond transfers — down to free. Callers guard bw > 0.
func TransferNanos(b Bytes, bw BytesPerSecond) float64 {
	if b <= 0 || bw <= 0 {
		return 0
	}
	return float64(b) / float64(bw) * float64(time.Second)
}

// FLOPs is a floating-point operation count.
type FLOPs float64

// TFLOPf reports f in teraFLOPs.
func (f FLOPs) TFLOPf() float64 { return float64(f) / 1e12 }

// GFLOPf reports f in gigaFLOPs.
func (f FLOPs) GFLOPf() float64 { return float64(f) / 1e9 }

// FLOPsPerSecond is a compute throughput.
type FLOPsPerSecond float64

// TFLOPS constructs a throughput from teraFLOP/s.
func TFLOPS(v float64) FLOPsPerSecond { return FLOPsPerSecond(v * 1e12) }

// TFLOPSf reports the throughput in teraFLOP/s.
func (t FLOPsPerSecond) TFLOPSf() float64 { return float64(t) / 1e12 }

// Throughput reports the rate achieved by executing f FLOPs in s seconds.
// Non-positive times yield 0 rather than Inf: a report of "0 TFLOPS" for a
// degenerate measurement window is less misleading than an infinite one.
func Throughput(f FLOPs, s Seconds) FLOPsPerSecond {
	if s <= 0 {
		return 0
	}
	return FLOPsPerSecond(float64(f) / float64(s))
}

// ComputeTime reports how long executing f FLOPs takes at throughput thp.
func ComputeTime(f FLOPs, thp FLOPsPerSecond) Seconds {
	if f <= 0 {
		return 0
	}
	if thp <= 0 {
		return Seconds(math.Inf(1))
	}
	return Seconds(float64(f) / float64(thp))
}

// MaxSeconds returns the largest of the given durations; it is the max() of
// the paper's Eqs. 2 and 5.
func MaxSeconds(ds ...Seconds) Seconds {
	var m Seconds
	for _, d := range ds {
		if d > m {
			m = d
		}
	}
	return m
}
