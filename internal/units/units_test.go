package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestByteFormatting(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{0, "0 B"},
		{512, "512 B"},
		{2 * KiB, "2.00 KiB"},
		{3 * MiB, "3.00 MiB"},
		{GiB + GiB/2, "1.50 GiB"},
		{2 * TiB, "2.00 TiB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestGiBConversions(t *testing.T) {
	if got := (256 * GiB).GiBf(); got != 256 {
		t.Errorf("GiBf = %v, want 256", got)
	}
	if got := (21 * GB).GBf(); got != 21 {
		t.Errorf("GBf = %v, want 21", got)
	}
}

func TestTransferTime(t *testing.T) {
	if got := TransferTime(42*GB, GBps(21)); math.Abs(float64(got)-2.0) > 1e-9 {
		t.Errorf("TransferTime(42GB, 21GB/s) = %v, want 2s", got)
	}
	if got := TransferTime(0, GBps(21)); got != 0 {
		t.Errorf("TransferTime(0) = %v, want 0", got)
	}
	if got := TransferTime(GB, 0); !math.IsInf(float64(got), 1) {
		t.Errorf("TransferTime with zero bandwidth = %v, want +Inf", got)
	}
	if got := TransferTime(-GB, GBps(1)); got != 0 {
		t.Errorf("TransferTime(negative) = %v, want 0", got)
	}
}

func TestComputeTime(t *testing.T) {
	if got := ComputeTime(300e12, TFLOPS(150)); math.Abs(float64(got)-2.0) > 1e-9 {
		t.Errorf("ComputeTime(300T, 150T/s) = %v, want 2s", got)
	}
	if got := ComputeTime(1e12, 0); !math.IsInf(float64(got), 1) {
		t.Errorf("ComputeTime with zero throughput = %v, want +Inf", got)
	}
	if got := ComputeTime(0, TFLOPS(1)); got != 0 {
		t.Errorf("ComputeTime(0) = %v, want 0", got)
	}
}

func TestMaxSeconds(t *testing.T) {
	if got := MaxSeconds(1, 5, 3); got != 5 {
		t.Errorf("MaxSeconds = %v, want 5", got)
	}
	if got := MaxSeconds(); got != 0 {
		t.Errorf("MaxSeconds() = %v, want 0", got)
	}
}

func TestTransferTimeMonotone(t *testing.T) {
	// Property: more bytes never transfer faster at fixed bandwidth.
	f := func(a, b uint32) bool {
		x, y := Bytes(a), Bytes(b)
		if x > y {
			x, y = y, x
		}
		return TransferTime(x, GBps(10)) <= TransferTime(y, GBps(10))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBandwidthRoundTrip(t *testing.T) {
	f := func(v uint16) bool {
		g := float64(v) + 1
		return math.Abs(GBps(g).GBpsf()-g) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
