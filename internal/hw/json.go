package hw

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// serverJSON is the on-disk server description, in the units a user would
// write by hand (GiB, GB/s, TFLOPS, USD).
type serverJSON struct {
	Name string `json:"name"`
	GPU  struct {
		Name         string  `json:"name"`
		MemoryGiB    float64 `json:"memory_gib"`
		PeakTFLOPS   float64 `json:"peak_tflops"`
		HasGPUDirect bool    `json:"has_gpudirect,omitempty"`
		NVLinkGBps   float64 `json:"nvlink_gbps,omitempty"`
		PriceUSD     float64 `json:"price_usd,omitempty"`
	} `json:"gpu"`
	GPUCount      int     `json:"gpu_count"`
	MainMemoryGiB float64 `json:"main_memory_gib"`
	CPU           struct {
		Name            string  `json:"name"`
		AdamGParamsPerS float64 `json:"adam_gparams_per_s"`
		Cores           int     `json:"cores,omitempty"`
	} `json:"cpu"`
	SSD struct {
		Name       string  `json:"name"`
		CapacityGB float64 `json:"capacity_gb"`
		ReadGBps   float64 `json:"read_gbps"`
		WriteGBps  float64 `json:"write_gbps"`
		PriceUSD   float64 `json:"price_usd,omitempty"`
	} `json:"ssd"`
	SSDCount       int     `json:"ssd_count"`
	GPULinkGBps    float64 `json:"gpu_link_gbps"`
	HostSSDCapGBps float64 `json:"host_ssd_cap_gbps"`
	BasePriceUSD   float64 `json:"base_price_usd,omitempty"`
	FixedPriceUSD  float64 `json:"fixed_price_usd,omitempty"`
}

// WriteServer serializes a server description as JSON.
func WriteServer(w io.Writer, s Server) error {
	var j serverJSON
	j.Name = s.Name
	j.GPU.Name = s.GPU.Name
	j.GPU.MemoryGiB = s.GPU.Memory.GiBf()
	j.GPU.PeakTFLOPS = s.GPU.PeakFP16.TFLOPSf()
	j.GPU.HasGPUDirect = s.GPU.HasGPUDirect
	j.GPU.NVLinkGBps = s.GPU.NVLink.GBpsf()
	j.GPU.PriceUSD = s.GPU.PriceUSD
	j.GPUCount = s.GPUCount
	j.MainMemoryGiB = s.MainMemory.GiBf()
	j.CPU.Name = s.CPU.Name
	j.CPU.AdamGParamsPerS = s.CPU.AdamParamsPerSec / 1e9
	j.CPU.Cores = s.CPU.Cores
	j.SSD.Name = s.SSD.Name
	j.SSD.CapacityGB = s.SSD.Capacity.GBf()
	j.SSD.ReadGBps = s.SSD.ReadBW.GBpsf()
	j.SSD.WriteGBps = s.SSD.WriteBW.GBpsf()
	j.SSD.PriceUSD = s.SSD.PriceUSD
	j.SSDCount = s.SSDCount
	j.GPULinkGBps = s.Link.GPUPerDirection.GBpsf()
	j.HostSSDCapGBps = s.Link.HostSSDAggregate.GBpsf()
	j.BasePriceUSD = s.BasePriceUSD
	j.FixedPriceUSD = s.FixedPriceUSD
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(j)
}

// ReadServer parses a JSON server description and validates it.
func ReadServer(r io.Reader) (Server, error) {
	var j serverJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&j); err != nil {
		return Server{}, fmt.Errorf("hw: parse server: %w", err)
	}
	s := Server{
		Name: j.Name,
		GPU: GPU{
			Name:         j.GPU.Name,
			Memory:       gib(j.GPU.MemoryGiB),
			PeakFP16:     tflops(j.GPU.PeakTFLOPS),
			HasGPUDirect: j.GPU.HasGPUDirect,
			NVLink:       gbps(j.GPU.NVLinkGBps),
			PriceUSD:     j.GPU.PriceUSD,
		},
		GPUCount:   j.GPUCount,
		MainMemory: gib(j.MainMemoryGiB),
		CPU: CPU{
			Name:             j.CPU.Name,
			AdamParamsPerSec: j.CPU.AdamGParamsPerS * 1e9,
			Cores:            j.CPU.Cores,
		},
		SSD: SSD{
			Name:     j.SSD.Name,
			Capacity: gb(j.SSD.CapacityGB),
			ReadBW:   gbps(j.SSD.ReadGBps),
			WriteBW:  gbps(j.SSD.WriteGBps),
			PriceUSD: j.SSD.PriceUSD,
		},
		SSDCount: j.SSDCount,
		Link: Link{
			GPUPerDirection:  gbps(j.GPULinkGBps),
			HostSSDAggregate: gbps(j.HostSSDCapGBps),
		},
		BasePriceUSD:  j.BasePriceUSD,
		FixedPriceUSD: j.FixedPriceUSD,
	}
	if err := s.Validate(); err != nil {
		return Server{}, err
	}
	return s, nil
}

// LoadServer reads a server description from a file.
func LoadServer(path string) (Server, error) {
	f, err := os.Open(path)
	if err != nil {
		return Server{}, fmt.Errorf("hw: %w", err)
	}
	defer f.Close()
	return ReadServer(f)
}
