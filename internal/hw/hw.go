// Package hw describes the hardware the paper evaluates on: consumer GPUs,
// the PCIe fabric, NVMe SSDs, the CPU that runs the out-of-core Adam
// optimizer, and whole servers (the Table III evaluation server and the
// DGX-A100 baseline). All calibration constants of the reproduction live
// here so that every experiment draws from a single source.
package hw

import (
	"fmt"

	"ratel/internal/units"
)

// GPU describes a training accelerator.
type GPU struct {
	Name string
	// Memory is the device memory capacity.
	Memory units.Bytes
	// PeakFP16 is the *measured* peak mixed-precision throughput, i.e. the
	// green "Measured Peak TFLOPS" line of Fig. 5c: what a transformer block
	// achieves inside the GPU with no PCIe traffic. It is below the vendor
	// datasheet number.
	PeakFP16 units.FLOPsPerSecond
	// HasGPUDirect reports whether the GPU supports GPUDirect Storage.
	// Consumer GPUs do not (§III-C), which disqualifies G10's design.
	HasGPUDirect bool
	// NVLink is the per-GPU interconnect bandwidth for multi-GPU servers
	// (zero for consumer GPUs, which communicate over PCIe).
	NVLink units.BytesPerSecond
	// PriceUSD is the unit price used by the cost-effectiveness model.
	PriceUSD float64
}

// SSD describes one NVMe device.
type SSD struct {
	Name     string
	Capacity units.Bytes
	ReadBW   units.BytesPerSecond
	WriteBW  units.BytesPerSecond
	PriceUSD float64
}

// CPU describes the host processor that executes the out-of-core Adam.
type CPU struct {
	Name string
	// AdamParamsPerSec is the mixed-precision Adam update throughput in
	// parameters per second: for each parameter the CPU reads m, v, p32 and
	// the fp16 gradient, and writes m, v, p32 and the fp16 parameter copy.
	AdamParamsPerSec float64
	Cores            int
}

// Link describes the PCIe fabric of a server.
type Link struct {
	// GPUPerDirection is the effective GPU<->host bandwidth per direction.
	// The GPU link is duplex: both directions run concurrently (Eq. 2/5
	// account G2M and M2G separately).
	GPUPerDirection units.BytesPerSecond
	// HostSSDAggregate caps the total host<->SSD-array bandwidth regardless
	// of how many SSDs are attached. The SSD path is treated as simplex:
	// reads and writes share it (Eq. 2/5 sum SSD terms).
	HostSSDAggregate units.BytesPerSecond
}

// Server is a complete machine configuration.
type Server struct {
	Name       string
	GPU        GPU
	GPUCount   int
	MainMemory units.Bytes
	CPU        CPU
	SSD        SSD
	SSDCount   int
	Link       Link
	// BasePriceUSD is the chassis price without GPUs and SSDs (Table VII).
	BasePriceUSD float64
	// FixedPriceUSD, when non-zero, overrides component pricing entirely
	// (the DGX-A100 is priced as a unit).
	FixedPriceUSD float64
}

// Validate reports a descriptive error for physically meaningless
// configurations so experiment code can fail fast.
func (s Server) Validate() error {
	switch {
	case s.GPUCount <= 0:
		return fmt.Errorf("hw: server %q has %d GPUs", s.Name, s.GPUCount)
	case s.MainMemory <= 0:
		return fmt.Errorf("hw: server %q has no main memory", s.Name)
	case s.SSDCount < 0:
		return fmt.Errorf("hw: server %q has negative SSD count", s.Name)
	case s.GPU.PeakFP16 <= 0:
		return fmt.Errorf("hw: server %q GPU %q has no compute throughput", s.Name, s.GPU.Name)
	case s.Link.GPUPerDirection <= 0:
		return fmt.Errorf("hw: server %q has no GPU PCIe bandwidth", s.Name)
	}
	return nil
}

// BWS2M is the aggregate SSD-to-main-memory read bandwidth: per-device reads
// summed across the array, capped by the host link (Table I's BW_S2M).
func (s Server) BWS2M() units.BytesPerSecond {
	return capBW(units.BytesPerSecond(float64(s.SSD.ReadBW)*float64(s.SSDCount)), s.Link.HostSSDAggregate)
}

// BWM2S is the aggregate main-memory-to-SSD write bandwidth (Table I's BW_M2S).
func (s Server) BWM2S() units.BytesPerSecond {
	return capBW(units.BytesPerSecond(float64(s.SSD.WriteBW)*float64(s.SSDCount)), s.Link.HostSSDAggregate)
}

// SSDCapacity is the total capacity of the SSD array.
func (s Server) SSDCapacity() units.Bytes {
	return s.SSD.Capacity * units.Bytes(s.SSDCount)
}

// PriceUSD is the full server price under the Table VII component model.
func (s Server) PriceUSD() float64 {
	if s.FixedPriceUSD > 0 {
		return s.FixedPriceUSD
	}
	return s.BasePriceUSD + float64(s.GPUCount)*s.GPU.PriceUSD + float64(s.SSDCount)*s.SSD.PriceUSD
}

// WithSSDs returns a copy of s with n SSDs (for the Fig. 10/13 sweeps).
func (s Server) WithSSDs(n int) Server { s.SSDCount = n; return s }

// WithMainMemory returns a copy of s with the given main-memory capacity
// (for the Fig. 2a/6/8/9a sweeps, where memory is pinned away).
func (s Server) WithMainMemory(b units.Bytes) Server { s.MainMemory = b; return s }

// WithGPUs returns a copy of s with n GPUs (for the Fig. 11 sweeps).
func (s Server) WithGPUs(n int) Server { s.GPUCount = n; return s }

func capBW(v, limit units.BytesPerSecond) units.BytesPerSecond {
	if limit > 0 && v > limit {
		return limit
	}
	return v
}

// gib, gb, gbps and tflops are construction helpers for the JSON loader.
func gib(v float64) units.Bytes             { return units.Bytes(v * float64(units.GiB)) }
func gb(v float64) units.Bytes              { return units.Bytes(v * 1e9) }
func gbps(v float64) units.BytesPerSecond   { return units.GBps(v) }
func tflops(v float64) units.FLOPsPerSecond { return units.TFLOPS(v) }
