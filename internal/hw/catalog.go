package hw

import "ratel/internal/units"

// The catalog below encodes Table III (evaluation server), Table VII
// (prices), and the calibration constants documented in DESIGN.md §3.
// Bandwidth and throughput values are the paper's *measured* numbers where
// the paper reports them (Fig. 1 labels, Fig. 5c's measured-peak line), and
// datasheet-derived estimates otherwise.

// GPUs evaluated in the paper.
var (
	RTX4090 = GPU{
		Name:     "NVIDIA GeForce RTX 4090",
		Memory:   24 * units.GiB,
		PeakFP16: units.TFLOPS(150), // Fig. 5c measured peak
		PriceUSD: 1600,              // Table VII
	}
	RTX3090 = GPU{
		Name:     "NVIDIA GeForce RTX 3090",
		Memory:   24 * units.GiB,
		PeakFP16: units.TFLOPS(62),
		PriceUSD: 1100,
	}
	RTX4080 = GPU{
		Name:     "NVIDIA GeForce RTX 4080",
		Memory:   16 * units.GiB,
		PeakFP16: units.TFLOPS(80),
		PriceUSD: 1200,
	}
	A100_80G = GPU{
		Name:         "NVIDIA A100-80G",
		Memory:       80 * units.GiB,
		PeakFP16:     units.TFLOPS(270),
		HasGPUDirect: true,
		NVLink:       units.GBps(600),
		PriceUSD:     14177, // §I
	}
)

// IntelP5510 is the evaluation server's SSD (12× 3.84 TB Intel P5510).
var IntelP5510 = SSD{
	Name:     "Intel P5510 3.84TB",
	Capacity: 3840 * units.GB,
	ReadBW:   units.GBps(6.5),
	WriteBW:  units.GBps(3.8),
	PriceUSD: 308, // Table VII
}

// XeonGold5320x2 is the evaluation server's dual-socket CPU. The Adam rate
// is calibrated so that ZeRO-Infinity's serialized optimizer stage for the
// 13B model lands at the paper's ~23 s (Fig. 1a): ~12 s of CPU Adam plus
// ~11 s of SSD I/O.
var XeonGold5320x2 = CPU{
	Name:             "2x Intel Xeon Gold 5320",
	AdamParamsPerSec: 1.1e9,
	Cores:            52,
}

// PCIeGen4 is the evaluation server's fabric: the paper measures 21 GB/s
// effective per direction on the GPU link and a 32 GB/s aggregate to the SSD
// array (Fig. 1 labels).
var PCIeGen4 = Link{
	GPUPerDirection:  units.GBps(21),
	HostSSDAggregate: units.GBps(32),
}

// EvalServer builds the Table III commodity server with the given GPU,
// main-memory capacity and SSD count. The paper's full configuration is
// EvalServer(RTX4090, 768*units.GiB, 12).
func EvalServer(gpu GPU, mainMemory units.Bytes, ssds int) Server {
	return Server{
		Name:         "commodity-4u",
		GPU:          gpu,
		GPUCount:     1,
		MainMemory:   mainMemory,
		CPU:          XeonGold5320x2,
		SSD:          IntelP5510,
		SSDCount:     ssds,
		Link:         PCIeGen4,
		BasePriceUSD: 14098, // Table VII: Supermicro 4U without GPUs/SSDs
	}
}

// DGXA100 is the 8× A100-80G NVLink machine Megatron-LM runs on (Fig. 13).
func DGXA100() Server {
	return Server{
		Name:          "dgx-a100",
		GPU:           A100_80G,
		GPUCount:      8,
		MainMemory:    2 * units.TiB,
		CPU:           CPU{Name: "2x AMD EPYC 7742", AdamParamsPerSec: 2.5e9, Cores: 128},
		Link:          Link{GPUPerDirection: units.GBps(25), HostSSDAggregate: units.GBps(32)},
		FixedPriceUSD: 200000, // Table VII
	}
}

// Calibration constants shared by the capacity model and the simulator.
// They are derived from the paper's reported capacities (DESIGN.md §3).
const (
	// GPUPipelineDepth is how many transformer layers' fp16 parameters the
	// engine keeps resident on the GPU at once (current + prefetch + in
	// flight). Together with the gradient bucket this bounds the largest
	// trainable layer: the 412B model's 6 GiB layers exceed the RTX 4090 at
	// depth 3.5, matching Fig. 6a's 276B ceiling, while the 175B model's
	// 3.4 GiB layers still fit the RTX 4080 (§V-B).
	GPUPipelineDepth = 3

	// GPUGradBucketFraction sizes the device-side gradient staging bucket
	// as a fraction of the largest layer's fp16 parameters.
	GPUGradBucketFraction = 0.5

	// GPUWorkspaceFraction reserves a fraction of GPU memory for cuBLAS-like
	// workspaces, allocator slack and CUDA context.
	GPUWorkspaceFraction = 0.08

	// GPUReservedBytes is the fixed device-memory overhead (context,
	// framework).
	GPUReservedBytes = units.Bytes(1300 * units.MiB)

	// RatelHostBytesPerParam is the pinned host staging Ratel needs per
	// parameter: gradient landing buffers for active gradient offloading
	// plus optimizer-chunk double buffers and parameter staging. Calibrated
	// against Fig. 6/8: 135B fits in 128 GiB, 276B in 256 GiB, 412B would
	// need ~330 GiB (but is GPU-bound anyway).
	RatelHostBytesPerParam = 0.85

	// RatelHostBaseBytes is Ratel's fixed host overhead (runtime, I/O
	// buffers, dataset staging).
	RatelHostBaseBytes = units.Bytes(6 * units.GiB)

	// CPUAdamChunkOverlap is the fraction of optimizer SSD I/O that the
	// naive per-tensor handler fails to overlap with CPU compute (Fig. 3a
	// serializes all three steps; the optimized schedule of Fig. 3b overlaps
	// them fully).
	CPUAdamChunkOverlap = 1.0
)
