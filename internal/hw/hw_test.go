package hw

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ratel/internal/units"
)

func TestEvalServerMatchesTableIII(t *testing.T) {
	s := EvalServer(RTX4090, 768*units.GiB, 12)
	if err := s.Validate(); err != nil {
		t.Fatalf("evaluation server invalid: %v", err)
	}
	if s.GPU.Memory != 24*units.GiB {
		t.Errorf("4090 memory = %v, want 24 GiB", s.GPU.Memory)
	}
	if got := s.SSDCapacity().GBf(); math.Abs(got-12*3840) > 1 {
		t.Errorf("SSD capacity = %.0f GB, want %d GB", got, 12*3840)
	}
	if s.GPU.HasGPUDirect {
		t.Error("consumer GPU should not report GPUDirect (§III-C)")
	}
}

func TestSSDBandwidthAggregation(t *testing.T) {
	// Reads scale linearly until the 32 GB/s host cap: 6.5 GB/s per SSD
	// means 1→6.5, 3→19.5, 12→32 (capped).
	cases := []struct {
		n    int
		want float64
	}{{1, 6.5}, {3, 19.5}, {4, 26}, {12, 32}}
	for _, c := range cases {
		s := EvalServer(RTX4090, 768*units.GiB, c.n)
		if got := s.BWS2M().GBpsf(); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("BWS2M(%d SSDs) = %.1f GB/s, want %.1f", c.n, got, c.want)
		}
	}
	// Writes: 3.8 GB/s per SSD, capped at 32.
	s := EvalServer(RTX4090, 768*units.GiB, 12)
	if got := s.BWM2S().GBpsf(); math.Abs(got-32) > 1e-9 {
		t.Errorf("BWM2S(12 SSDs) = %.1f GB/s, want 32 (capped)", got)
	}
	s = s.WithSSDs(2)
	if got := s.BWM2S().GBpsf(); math.Abs(got-7.6) > 1e-9 {
		t.Errorf("BWM2S(2 SSDs) = %.1f GB/s, want 7.6", got)
	}
}

func TestServerPricing(t *testing.T) {
	// Table VII: commodity 4U $14098 + 4x4090 ($1600) + 6 SSDs ($308).
	s := EvalServer(RTX4090, 768*units.GiB, 6).WithGPUs(4)
	want := 14098.0 + 4*1600 + 6*308
	if got := s.PriceUSD(); got != want {
		t.Errorf("PriceUSD = %.0f, want %.0f", got, want)
	}
	if got := DGXA100().PriceUSD(); got != 200000 {
		t.Errorf("DGX price = %.0f, want 200000", got)
	}
}

func TestWithHelpers(t *testing.T) {
	s := EvalServer(RTX4090, 768*units.GiB, 12)
	if got := s.WithMainMemory(128 * units.GiB).MainMemory; got != 128*units.GiB {
		t.Errorf("WithMainMemory = %v", got)
	}
	if got := s.WithSSDs(3).SSDCount; got != 3 {
		t.Errorf("WithSSDs = %d", got)
	}
	if got := s.WithGPUs(2).GPUCount; got != 2 {
		t.Errorf("WithGPUs = %d", got)
	}
	// The originals are unchanged (value semantics).
	if s.SSDCount != 12 || s.GPUCount != 1 {
		t.Error("With* helpers mutated the receiver")
	}
}

func TestValidateCatchesBadServers(t *testing.T) {
	good := EvalServer(RTX4090, 768*units.GiB, 12)
	bad := []Server{
		func() Server { s := good; s.GPUCount = 0; return s }(),
		func() Server { s := good; s.MainMemory = 0; return s }(),
		func() Server { s := good; s.SSDCount = -1; return s }(),
		func() Server { s := good; s.GPU.PeakFP16 = 0; return s }(),
		func() Server { s := good; s.Link.GPUPerDirection = 0; return s }(),
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad server %d validated", i)
		}
	}
}

func TestZeroInfinityOptimizerStageCalibration(t *testing.T) {
	// DESIGN.md §3: the CPU Adam rate is calibrated so ZeRO-Infinity's
	// serialized 13B optimizer stage is ~23 s: 28 bytes/param of SSD I/O at
	// 32 GB/s plus Adam at 1.1 G params/s.
	const params13B = 12.84e9
	io := 28 * params13B / 32e9
	adam := params13B / XeonGold5320x2.AdamParamsPerSec
	if total := io + adam; total < 21 || total > 25 {
		t.Errorf("calibrated ZeRO-Infinity optimizer stage = %.1f s, want ~23 s", total)
	}
}

// TestServerJSONRoundTrip: a server survives serialization, and the loaded
// description drives the same bandwidth math.
func TestServerJSONRoundTrip(t *testing.T) {
	orig := EvalServer(RTX4090, 768*units.GiB, 12)
	var buf bytes.Buffer
	if err := WriteServer(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadServer(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.GPU.Name != orig.GPU.Name || got.SSDCount != 12 {
		t.Errorf("round trip lost fields: %+v", got)
	}
	if math.Abs(got.BWS2M().GBpsf()-orig.BWS2M().GBpsf()) > 1e-6 {
		t.Errorf("BWS2M differs after round trip")
	}
	if got.PriceUSD() != orig.PriceUSD() {
		t.Errorf("price differs: %v vs %v", got.PriceUSD(), orig.PriceUSD())
	}
}

func TestReadServerRejectsBadInput(t *testing.T) {
	if _, err := ReadServer(strings.NewReader(`{"unknown_field": 1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ReadServer(strings.NewReader(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
	// Physically invalid configurations are rejected by Validate.
	if _, err := ReadServer(strings.NewReader(`{"gpu":{"peak_tflops":0},"gpu_count":1,"main_memory_gib":64,"ssd_count":1,"gpu_link_gbps":21,"host_ssd_cap_gbps":32}`)); err == nil {
		t.Error("zero-throughput GPU accepted")
	}
}

func TestLoadServerFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "server.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteServer(f, DGXA100()); err != nil {
		t.Fatal(err)
	}
	f.Close()
	s, err := LoadServer(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.FixedPriceUSD != 200000 {
		t.Errorf("loaded DGX price = %v", s.FixedPriceUSD)
	}
	if _, err := LoadServer(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}
