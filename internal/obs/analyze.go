package obs

import (
	"sort"
	"time"
)

// This file folds a recorded span timeline into the aggregate shapes the
// calibration report compares against the simulator: per-lane busy time
// (interval union, since concurrent goroutines overlap on one lane) and
// busy fractions over a window.

// LanesBusy computes the union length of all spans on any of the given
// lanes, clipped to [from, to). Overlapping spans — concurrent prefetch
// goroutines, say — are counted once, matching how the simulator's serial
// resources accumulate busy time.
func LanesBusy(spans []Span, lanes []string, from, to time.Duration) time.Duration {
	if to <= from {
		return 0
	}
	want := make(map[string]bool, len(lanes))
	for _, l := range lanes {
		want[l] = true
	}
	type iv struct{ lo, hi time.Duration }
	var ivs []iv
	for _, s := range spans {
		if !want[s.Lane] {
			continue
		}
		lo, hi := s.Start, s.End
		if lo < from {
			lo = from
		}
		if hi > to {
			hi = to
		}
		if hi > lo {
			ivs = append(ivs, iv{lo, hi})
		}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	var busy time.Duration
	var curLo, curHi time.Duration
	started := false
	for _, v := range ivs {
		if !started || v.lo > curHi {
			if started {
				busy += curHi - curLo
			}
			curLo, curHi, started = v.lo, v.hi, true
			continue
		}
		if v.hi > curHi {
			curHi = v.hi
		}
	}
	if started {
		busy += curHi - curLo
	}
	return busy
}

// LaneBusy is LanesBusy for a single lane.
func LaneBusy(spans []Span, lane string, from, to time.Duration) time.Duration {
	return LanesBusy(spans, []string{lane}, from, to)
}

// Lanes lists the distinct lanes present in spans, sorted.
func Lanes(spans []Span) []string {
	seen := make(map[string]bool)
	for _, s := range spans {
		seen[s.Lane] = true
	}
	out := make([]string, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Window reports the [min start, max end) extent of spans (0,0 when empty).
func Window(spans []Span) (from, to time.Duration) {
	for i, s := range spans {
		if i == 0 || s.Start < from {
			from = s.Start
		}
		if s.End > to {
			to = s.End
		}
	}
	return from, to
}

// Filter returns the spans on lane, preserving order.
func Filter(spans []Span, lane string) []Span {
	var out []Span
	for _, s := range spans {
		if s.Lane == lane {
			out = append(out, s)
		}
	}
	return out
}
