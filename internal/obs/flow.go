package obs

import "sync/atomic"

// This file is the byte-flow side of the observability layer: a ledger
// attributing every byte the engine moves to an edge of the memory
// hierarchy (which tiers it crossed) and a purpose (whose bytes they
// were). The span tracer answers "how long"; the ledger answers "how many
// bytes, and whose" — together they are the inputs to bottleneck
// attribution (attrib.go) and the flight recorder.

// FlowEdge names one data-movement edge in the compute↔host↔NVMe
// hierarchy (plus the codec transforms that sit on the host side of it).
type FlowEdge uint8

const (
	// EdgeComputeHost: bytes staged between the compute ("GPU") working
	// set and pinned host memory — activation offload/pin traffic and
	// parameter installs.
	EdgeComputeHost FlowEdge = iota
	// EdgeHostNVMeRead: bytes read from the NVMe array into host buffers.
	EdgeHostNVMeRead
	// EdgeHostNVMeWrite: bytes written from host buffers to the NVMe array.
	EdgeHostNVMeWrite
	// EdgeCodecEncode: logical fp32 bytes entering the fp16-on-the-wire
	// encoder (arena blob encode, optimizer state save).
	EdgeCodecEncode
	// EdgeCodecDecode: logical fp32 bytes produced by the decoder (arena
	// blob decode, optimizer state load).
	EdgeCodecDecode

	numFlowEdges
)

// String names the edge for reports and JSON dumps.
func (e FlowEdge) String() string {
	switch e {
	case EdgeComputeHost:
		return "compute_host"
	case EdgeHostNVMeRead:
		return "host_nvme_read"
	case EdgeHostNVMeWrite:
		return "host_nvme_write"
	case EdgeCodecEncode:
		return "codec_encode"
	case EdgeCodecDecode:
		return "codec_decode"
	}
	return "edge_unknown"
}

// FlowEdges lists every edge in declaration order.
func FlowEdges() []FlowEdge {
	return []FlowEdge{EdgeComputeHost, EdgeHostNVMeRead, EdgeHostNVMeWrite, EdgeCodecEncode, EdgeCodecDecode}
}

// FlowPurpose names whose bytes moved.
type FlowPurpose uint8

const (
	FlowActivations FlowPurpose = iota // activation blobs (act/* keys, arena traffic)
	FlowParams                         // parameter groups (P16 installs)
	FlowGrads                          // gradient staging into the optimizer
	FlowOptState                       // out-of-core Adam state (states/* keys)
	FlowOther                          // unclassified traffic

	numFlowPurposes
)

// String names the purpose for reports and JSON dumps.
func (p FlowPurpose) String() string {
	switch p {
	case FlowActivations:
		return "activations"
	case FlowParams:
		return "params"
	case FlowGrads:
		return "grads"
	case FlowOptState:
		return "opt_state"
	case FlowOther:
		return "other"
	}
	return "purpose_unknown"
}

// FlowPurposes lists every purpose in declaration order.
func FlowPurposes() []FlowPurpose {
	return []FlowPurpose{FlowActivations, FlowParams, FlowGrads, FlowOptState, FlowOther}
}

// FlowLedger accumulates bytes moved per (edge, purpose) cell. It is a
// fixed atomic matrix: Add is lock-free and allocation-free, so the
// ledger stays on under the steady-state alloc pin. Cells are cumulative
// since creation; per-step flow is the difference of two snapshots.
//
// A nil *FlowLedger is a valid disabled ledger.
type FlowLedger struct {
	cells [numFlowEdges][numFlowPurposes]atomic.Int64
}

// NewFlowLedger creates an enabled, empty ledger.
func NewFlowLedger() *FlowLedger { return &FlowLedger{} }

// Add credits n bytes to the (edge, purpose) cell. Out-of-range enums and
// non-positive counts are ignored.
func (l *FlowLedger) Add(e FlowEdge, p FlowPurpose, n int64) {
	if l == nil || n <= 0 || e >= numFlowEdges || p >= numFlowPurposes {
		return
	}
	l.cells[e][p].Add(n)
}

// FlowSnapshot is a value-type copy of the ledger matrix.
type FlowSnapshot struct {
	Cells [numFlowEdges][numFlowPurposes]int64
}

// Snapshot reads every cell. Concurrent writers may land between cell
// reads; totals are consistent enough for per-step reporting.
func (l *FlowLedger) Snapshot() FlowSnapshot {
	var s FlowSnapshot
	if l == nil {
		return s
	}
	for e := 0; e < int(numFlowEdges); e++ {
		for p := 0; p < int(numFlowPurposes); p++ {
			s.Cells[e][p] = l.cells[e][p].Load()
		}
	}
	return s
}

// Get reads one cell.
func (s FlowSnapshot) Get(e FlowEdge, p FlowPurpose) int64 {
	if e >= numFlowEdges || p >= numFlowPurposes {
		return 0
	}
	return s.Cells[e][p]
}

// Edge sums one edge across purposes.
func (s FlowSnapshot) Edge(e FlowEdge) int64 {
	if e >= numFlowEdges {
		return 0
	}
	var t int64
	for p := 0; p < int(numFlowPurposes); p++ {
		t += s.Cells[e][p]
	}
	return t
}

// Purpose sums one purpose across edges.
func (s FlowSnapshot) Purpose(p FlowPurpose) int64 {
	if p >= numFlowPurposes {
		return 0
	}
	var t int64
	for e := 0; e < int(numFlowEdges); e++ {
		t += s.Cells[e][p]
	}
	return t
}

// Total sums every cell.
func (s FlowSnapshot) Total() int64 {
	var t int64
	for e := 0; e < int(numFlowEdges); e++ {
		for p := 0; p < int(numFlowPurposes); p++ {
			t += s.Cells[e][p]
		}
	}
	return t
}

// Sub returns the per-cell difference s - prev: the flow between two
// snapshots (one step, one reporting interval).
func (s FlowSnapshot) Sub(prev FlowSnapshot) FlowSnapshot {
	var d FlowSnapshot
	for e := 0; e < int(numFlowEdges); e++ {
		for p := 0; p < int(numFlowPurposes); p++ {
			d.Cells[e][p] = s.Cells[e][p] - prev.Cells[e][p]
		}
	}
	return d
}
