package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// This file renders the registry in the OpenMetrics / Prometheus text
// exposition format, alongside the expvar JSON publishing: counters as
// `<name>_total`, gauges as plain samples, histograms as cumulative
// `<name>_bucket{le="..."}` series plus `_sum` and `_count`. Metric names
// are sanitized (dots and dashes become underscores) because the registry
// uses dotted names internally. Output is sorted, so two renders of the
// same registry state are byte-identical — scrape-diffable in tests.

// WriteOpenMetrics renders every instrument to w in the Prometheus text
// format. Histogram samples carry the unit the recorder used (the engine
// records latencies in nanoseconds).
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	for _, name := range sortedKeysCounter(counters) {
		m := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s_total counter\n%s_total %d\n", m, m, counters[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeysGauge(gauges) {
		m := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", m, m, gauges[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeysHist(hists) {
		if err := writeHist(w, promName(name), hists[name]); err != nil {
			return err
		}
	}
	return nil
}

func writeHist(w io.Writer, m string, h *Histogram) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", m); err != nil {
		return err
	}
	var cum int64
	for _, b := range h.Buckets() {
		cum += b.Count
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", m, b.Upper, cum); err != nil {
			return err
		}
	}
	count := h.Count()
	if cum < count {
		// Samples recorded between the bucket walk and the count read.
		cum = count
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", m, cum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", m, h.Sum(), m, count)
	return err
}

// promName maps a registry name to a legal Prometheus metric name.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_':
			b.WriteRune(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func sortedKeysCounter(m map[string]*Counter) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeysGauge(m map[string]*Gauge) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeysHist(m map[string]*Histogram) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// MetricsHandler serves the registry at an HTTP endpoint in the
// Prometheus text format (rateltrain mounts it at /metrics on the
// -debug-addr mux, next to expvar's /debug/vars).
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteOpenMetrics(w)
	})
}
