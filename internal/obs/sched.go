package obs

import "time"

// Per-class NVMe scheduler telemetry. The transfer classes live in
// internal/nvme (Class constants); obs mirrors only the count and the
// canonical snake_case names so the flight recorder and the metric
// exporters can carry per-class samples without importing the storage
// layer. nvme pins the two counts equal with a compile-time assertion.

// SchedClassCount is the number of transfer priority classes.
const SchedClassCount = 4

// SchedClassNames are the canonical per-class telemetry names, indexed by
// class value (critical-path fetch, optimizer-state read, grad/state
// writeback, write-behind activation offload).
var SchedClassNames = [SchedClassCount]string{"fetch", "opt_read", "writeback", "write_behind"}

// SchedClassDelta is one step's scheduler activity for one class: transfers
// dispatched, their summed queue wait, and the class's cumulative queue
// depth high-water mark.
type SchedClassDelta struct {
	Dispatched int64
	Wait       time.Duration
	QueuePeak  int64
}

// SchedSample is a per-class scheduler snapshot carried on a StepRecord.
type SchedSample [SchedClassCount]SchedClassDelta

// Active reports whether any class saw traffic (the zero value means the
// scheduler was off or idle, and dumps omit the block).
func (s SchedSample) Active() bool {
	for _, c := range s {
		if c.Dispatched != 0 || c.Wait != 0 || c.QueuePeak != 0 {
			return true
		}
	}
	return false
}
