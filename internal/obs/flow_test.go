package obs

import (
	"sync"
	"testing"
	"time"
)

func TestFlowLedgerBasics(t *testing.T) {
	l := NewFlowLedger()
	l.Add(EdgeHostNVMeWrite, FlowActivations, 4096)
	l.Add(EdgeHostNVMeWrite, FlowActivations, 4096)
	l.Add(EdgeHostNVMeRead, FlowOptState, 1024)
	l.Add(EdgeCodecEncode, FlowActivations, 8192)
	l.Add(EdgeHostNVMeWrite, FlowActivations, -10) // ignored
	s := l.Snapshot()
	if got := s.Get(EdgeHostNVMeWrite, FlowActivations); got != 8192 {
		t.Fatalf("write/activations = %d, want 8192", got)
	}
	if got := s.Edge(EdgeHostNVMeWrite); got != 8192 {
		t.Fatalf("Edge(write) = %d, want 8192", got)
	}
	if got := s.Purpose(FlowActivations); got != 8192+8192 {
		t.Fatalf("Purpose(activations) = %d, want 16384", got)
	}
	if got := s.Total(); got != 8192+1024+8192 {
		t.Fatalf("Total = %d, want 17408", got)
	}
}

func TestFlowSnapshotSub(t *testing.T) {
	l := NewFlowLedger()
	l.Add(EdgeHostNVMeRead, FlowParams, 100)
	a := l.Snapshot()
	l.Add(EdgeHostNVMeRead, FlowParams, 50)
	l.Add(EdgeComputeHost, FlowGrads, 7)
	b := l.Snapshot()
	d := b.Sub(a)
	if got := d.Get(EdgeHostNVMeRead, FlowParams); got != 50 {
		t.Fatalf("delta read/params = %d, want 50", got)
	}
	if got := d.Get(EdgeComputeHost, FlowGrads); got != 7 {
		t.Fatalf("delta compute_host/grads = %d, want 7", got)
	}
	if got := d.Total(); got != 57 {
		t.Fatalf("delta total = %d, want 57", got)
	}
}

func TestFlowLedgerNilSafe(t *testing.T) {
	var l *FlowLedger
	l.Add(EdgeComputeHost, FlowParams, 100)
	if s := l.Snapshot(); s.Total() != 0 {
		t.Fatal("nil ledger snapshot should be zero")
	}
}

func TestFlowLedgerConcurrent(t *testing.T) {
	l := NewFlowLedger()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.Add(EdgeHostNVMeWrite, FlowActivations, 3)
			}
		}()
	}
	wg.Wait()
	if got := l.Snapshot().Get(EdgeHostNVMeWrite, FlowActivations); got != 8*1000*3 {
		t.Fatalf("concurrent adds = %d, want %d", got, 8*1000*3)
	}
}

// The ledger update path shares the steady-state alloc pin with the
// engine's step loop.
func TestFlowLedgerAddAllocationFree(t *testing.T) {
	l := NewFlowLedger()
	if n := testing.AllocsPerRun(1000, func() { l.Add(EdgeHostNVMeWrite, FlowActivations, 4096) }); n != 0 {
		t.Fatalf("Add allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { _ = l.Snapshot() }); n != 0 {
		t.Fatalf("Snapshot allocates %v per op, want 0", n)
	}
}

func TestFlowEnumStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range FlowEdges() {
		s := e.String()
		if s == "edge_unknown" || seen[s] {
			t.Fatalf("edge %d has bad/duplicate name %q", e, s)
		}
		seen[s] = true
	}
	for _, p := range FlowPurposes() {
		s := p.String()
		if s == "purpose_unknown" || seen[s] {
			t.Fatalf("purpose %d has bad/duplicate name %q", p, s)
		}
		seen[s] = true
	}
}

func TestAttributeVerdicts(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	cases := []struct {
		name  string
		spans []Span
		want  Verdict
	}{
		{
			name: "compute bound",
			spans: []Span{
				{Lane: LaneCompute, Name: "block0/fwd", Start: 0, End: ms(90)},
				{Lane: LaneNVMeWrite, Name: "act/block0", Start: ms(10), End: ms(30)},
			},
			want: VerdictComputeBound,
		},
		{
			name: "nvme write bound",
			spans: []Span{
				{Lane: LaneCompute, Name: "block0/fwd", Start: 0, End: ms(20)},
				{Lane: LaneNVMeWrite, Name: "act/block0", Start: 0, End: ms(95)},
			},
			want: VerdictNVMeWriteBound,
		},
		{
			name: "nvme read bound",
			spans: []Span{
				{Lane: LaneNVMeRead, Name: "act/block0", Start: 0, End: ms(80)},
				{Lane: LaneCompute, Name: "block0/bwd", Start: ms(10), End: ms(40)},
			},
			want: VerdictNVMeReadBound,
		},
		{
			name: "adam bound",
			spans: []Span{
				{Lane: LaneAdam, Name: "group0", Start: 0, End: ms(70)},
				{Lane: LaneCompute, Name: "block0/bwd", Start: 0, End: ms(30)},
			},
			want: VerdictAdamBound,
		},
		{
			name: "stalled on readahead",
			spans: []Span{
				{Lane: LaneCompute, Name: "block0/bwd", Start: 0, End: ms(50)},
				{Lane: LaneStall, Name: "block1/fetch-stall", Start: ms(50), End: ms(90)},
			},
			want: VerdictStalledReadhead,
		},
		{
			name: "stalled on offload",
			spans: []Span{
				{Lane: LaneCompute, Name: "block0/fwd", Start: 0, End: ms(40)},
				{Lane: LaneStall, Name: "block1/offload-stall", Start: ms(40), End: ms(80)},
			},
			want: VerdictStalledOffload,
		},
		{
			name:  "idle window",
			spans: nil,
			want:  VerdictIdle,
		},
	}
	for _, tc := range cases {
		a := Attribute(tc.spans, 0, ms(100))
		if a.Bound != tc.want {
			t.Errorf("%s: verdict = %s, want %s (attribution %+v)", tc.name, a.Bound, tc.want, a)
		}
		if tc.want != VerdictIdle && a.BoundFraction <= 0 {
			t.Errorf("%s: BoundFraction = %g, want > 0", tc.name, a.BoundFraction)
		}
	}
}

func TestAttributeStallSplit(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	spans := []Span{
		{Lane: LaneStall, Name: "block2/fetch-stall", Start: 0, End: ms(30)},
		{Lane: LaneStall, Name: "block5/offload-stall", Start: ms(40), End: ms(50)},
	}
	a := Attribute(spans, 0, ms(100))
	if a.FetchStall != ms(30) {
		t.Fatalf("FetchStall = %v, want 30ms", a.FetchStall)
	}
	if a.OffloadStall != ms(10) {
		t.Fatalf("OffloadStall = %v, want 10ms", a.OffloadStall)
	}
	if got := a.StallFraction(); got < 0.39 || got > 0.41 {
		t.Fatalf("StallFraction = %g, want 0.4", got)
	}
}

func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		f.Record(StepRecord{Step: i, Wall: time.Duration(i) * time.Millisecond})
	}
	recs := f.Records()
	if len(recs) != 4 {
		t.Fatalf("retained %d records, want 4", len(recs))
	}
	for i, r := range recs {
		if want := 6 + i; r.Step != want {
			t.Fatalf("Records[%d].Step = %d, want %d (oldest-first)", i, r.Step, want)
		}
	}
	if f.Len() != 4 {
		t.Fatalf("Len = %d, want 4", f.Len())
	}
}

func TestFlightRecorderNilSafeAndAllocationFree(t *testing.T) {
	var nilF *FlightRecorder
	nilF.Record(StepRecord{Step: 1})
	if nilF.Records() != nil || nilF.Len() != 0 {
		t.Fatal("nil recorder should read empty")
	}
	f := NewFlightRecorder(8)
	rec := StepRecord{Step: 3, Wall: time.Millisecond}
	if n := testing.AllocsPerRun(1000, func() { f.Record(rec) }); n != 0 {
		t.Fatalf("Record allocates %v per op, want 0", n)
	}
}
