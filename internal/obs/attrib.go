package obs

import (
	"strings"
	"time"
)

// This file turns a recorded span window into a bottleneck verdict: which
// resource bound the step. It extends the LanesBusy interval-union
// analysis with stall classification — time the compute loop measurably
// sat blocked (LaneStall spans) is attributed to the pipeline direction
// that starved it, because a stalled step is bound by the resource it
// waited for, not by whichever lane happened to show the most busy time.

// Verdict names the resource that bound a window.
type Verdict string

const (
	VerdictComputeBound    Verdict = "compute-bound"
	VerdictNVMeReadBound   Verdict = "nvme-read-bound"
	VerdictNVMeWriteBound  Verdict = "nvme-write-bound"
	VerdictAdamBound       Verdict = "cpu-adam-bound"
	VerdictStalledReadhead Verdict = "stalled-on-readahead"
	VerdictStalledOffload  Verdict = "stalled-on-offload"
	VerdictIdle            Verdict = "idle"
)

// stallVerdictThreshold: a stall fraction above this dominates the
// busy-time comparison — the step is waiting, not working.
const stallVerdictThreshold = 0.15

// Attribution is the folded view of one window: per-resource busy time,
// stall time split by direction, and the verdict with its supporting
// fraction.
type Attribution struct {
	Window time.Duration

	ComputeBusy   time.Duration // LaneCompute interval union
	NVMeReadBusy  time.Duration // LaneNVMeRead interval union
	NVMeWriteBusy time.Duration // LaneNVMeWrite interval union
	AdamBusy      time.Duration // LaneAdam interval union

	// Stall time from LaneStall spans, split by what the loop waited for:
	// fetch stalls (readahead missed its deadline) vs offload stalls
	// (write-behind window full / staging pool exhausted).
	FetchStall   time.Duration
	OffloadStall time.Duration

	Bound Verdict
	// BoundFraction is the bound resource's share of the window: busy
	// fraction for *-bound verdicts, stall fraction for stalled-* ones.
	BoundFraction float64
}

// StallFraction is total stall time over the window.
func (a Attribution) StallFraction() float64 {
	if a.Window <= 0 {
		return 0
	}
	return float64(a.FetchStall+a.OffloadStall) / float64(a.Window)
}

// fetchStallSuffix matches the engine's backward read-ahead wait labels
// ("block3/fetch-stall"); every other LaneStall span is offload-side
// backpressure ("block3/offload-stall", staging-pool waits).
const fetchStallSuffix = "/fetch-stall"

// Attribute folds the spans inside [from, to) into an Attribution.
func Attribute(spans []Span, from, to time.Duration) Attribution {
	a := Attribution{Window: to - from}
	if a.Window <= 0 {
		a.Bound = VerdictIdle
		return a
	}
	a.ComputeBusy = LaneBusy(spans, LaneCompute, from, to)
	a.NVMeReadBusy = LaneBusy(spans, LaneNVMeRead, from, to)
	a.NVMeWriteBusy = LaneBusy(spans, LaneNVMeWrite, from, to)
	a.AdamBusy = LaneBusy(spans, LaneAdam, from, to)

	// Stall spans never overlap each other (the compute loop is serial),
	// so clipped sums — not interval unions — are exact here and let the
	// two directions be separated by label.
	for _, s := range spans {
		if s.Lane != LaneStall {
			continue
		}
		lo, hi := s.Start, s.End
		if lo < from {
			lo = from
		}
		if hi > to {
			hi = to
		}
		if hi <= lo {
			continue
		}
		if strings.HasSuffix(s.Name, fetchStallSuffix) {
			a.FetchStall += hi - lo
		} else {
			a.OffloadStall += hi - lo
		}
	}

	a.Bound, a.BoundFraction = verdict(a)
	return a
}

func verdict(a Attribution) (Verdict, float64) {
	w := float64(a.Window)
	fetchFrac := float64(a.FetchStall) / w
	offloadFrac := float64(a.OffloadStall) / w
	if fetchFrac >= stallVerdictThreshold || offloadFrac >= stallVerdictThreshold {
		if fetchFrac >= offloadFrac {
			return VerdictStalledReadhead, fetchFrac
		}
		return VerdictStalledOffload, offloadFrac
	}
	best, bestBusy := VerdictIdle, time.Duration(0)
	for _, c := range []struct {
		v    Verdict
		busy time.Duration
	}{
		{VerdictComputeBound, a.ComputeBusy},
		{VerdictNVMeReadBound, a.NVMeReadBusy},
		{VerdictNVMeWriteBound, a.NVMeWriteBusy},
		{VerdictAdamBound, a.AdamBusy},
	} {
		if c.busy > bestBusy {
			best, bestBusy = c.v, c.busy
		}
	}
	if best == VerdictIdle {
		return VerdictIdle, 0
	}
	return best, float64(bestBusy) / w
}
