// Package obs is the live engine's observability layer: a low-overhead
// wall-clock span tracer and a metrics registry. The simulator predicts
// what *should* overlap (package sim); this package records what actually
// did — per-lane wall-clock spans for GPU-side compute, activation
// prefetch/offload, NVMe reads and writes, and CPU Adam chunks — so
// simulated schedules can be validated against engine reality (the
// calibration report in cmd/ratelbench).
//
// Design constraints, in order:
//
//  1. A nil *Tracer is a valid disabled tracer: every method is nil-safe
//     and the disabled path costs two branches and zero allocations, so
//     instrumentation can stay unconditionally wired into hot paths.
//  2. The enabled record path is also allocation-free at steady state:
//     spans land in a preallocated ring buffer and label strings are
//     passed in (callers precompute them once), never built per span.
//  3. The buffer is a ring: tracing a long run keeps the most recent
//     spans rather than growing without bound; Dropped() reports loss.
package obs

import (
	"sort"
	"sync"
	"time"
)

// Lanes name the engine-side resources a span can occupy. They mirror the
// simulator's sim.ResourceID set where a counterpart exists (the
// calibration report joins on that mapping): LaneCompute plays the role of
// sim.GPUCompute (the mini engine computes on CPU, standing in for the
// CUDA engine), LaneAdam is sim.CPUAdam, and LaneNVMeRead/LaneNVMeWrite
// together are sim.SSDBus.
const (
	LaneCompute   = "gpu"        // forward/backward/recompute kernels
	LanePrefetch  = "prefetch"   // backward-stage activation prefetch pipeline
	LaneOffload   = "offload"    // forward-stage activation offload/pin
	LaneNVMeRead  = "nvme-read"  // NVMe array object reads
	LaneNVMeWrite = "nvme-write" // NVMe array object writes
	LaneAdam      = "cpu-adam"   // out-of-core optimizer chunk updates
	LaneStep      = "step"       // whole-iteration markers
	// LaneStall records time the compute loop spent blocked on pipeline flow
	// control: the write-behind window was full (every ring slot in flight)
	// or the host staging pool could not admit another blob until an
	// in-flight write retired. Stall spans are backpressure made visible —
	// an empty lane means the pipeline fully hid the offload I/O.
	LaneStall = "stall"
)

// Span is one recorded wall-clock interval on a lane. Times are offsets
// from the tracer's epoch (monotonic, see time.Since), so spans from
// concurrent goroutines share one timeline.
type Span struct {
	Lane  string
	Name  string
	Start time.Duration
	End   time.Duration
}

// Duration is the span's extent.
func (s Span) Duration() time.Duration { return s.End - s.Start }

// Tracer records spans into a fixed-capacity ring buffer. All methods are
// safe for concurrent use and safe on a nil receiver (disabled tracing).
type Tracer struct {
	epoch time.Time

	mu   sync.Mutex
	buf  []Span
	next uint64 // spans ever recorded; ring slot = next % cap
}

// DefaultCapacity is the ring size NewTracer uses for capacity <= 0:
// enough for hundreds of fully-traced mini-engine steps.
const DefaultCapacity = 1 << 16

// NewTracer creates an enabled tracer holding up to capacity spans.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{epoch: time.Now(), buf: make([]Span, capacity)}
}

// Enabled reports whether spans are being recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// Now is the current offset on the tracer's timeline (0 when disabled).
func (t *Tracer) Now() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.epoch)
}

// Scope is an open span returned by StartSpan; call End exactly once.
// It is a value, not a pointer: starting a span allocates nothing.
type Scope struct {
	t     *Tracer
	lane  string
	name  string
	start time.Duration
}

// StartSpan opens a span on lane. The lane and name strings are stored by
// reference; pass precomputed labels, not per-call concatenations, to keep
// the path allocation-free.
func (t *Tracer) StartSpan(lane, name string) Scope {
	if t == nil {
		return Scope{}
	}
	return Scope{t: t, lane: lane, name: name, start: time.Since(t.epoch)}
}

// End closes the span and records it. End on a Scope from a nil tracer is
// a no-op.
func (s Scope) End() {
	if s.t == nil {
		return
	}
	s.t.record(Span{Lane: s.lane, Name: s.name, Start: s.start, End: time.Since(s.t.epoch)})
}

// RecordSpan records a span whose interval the caller measured itself
// (e.g. a goroutine timing its own work with t.Now()).
func (t *Tracer) RecordSpan(lane, name string, start, end time.Duration) {
	if t == nil {
		return
	}
	t.record(Span{Lane: lane, Name: name, Start: start, End: end})
}

// Instant records a zero-duration marker (stage boundaries, step edges).
func (t *Tracer) Instant(lane, name string) {
	if t == nil {
		return
	}
	now := time.Since(t.epoch)
	t.record(Span{Lane: lane, Name: name, Start: now, End: now})
}

func (t *Tracer) record(s Span) {
	t.mu.Lock()
	t.buf[t.next%uint64(len(t.buf))] = s
	t.next++
	t.mu.Unlock()
}

// Spans returns the retained spans sorted by start time (a copy).
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	n := t.next
	capacity := uint64(len(t.buf))
	var out []Span
	if n <= capacity {
		out = append(out, t.buf[:n]...)
	} else {
		// Ring wrapped: oldest retained span is at slot n % cap.
		at := n % capacity
		out = append(out, t.buf[at:]...)
		out = append(out, t.buf[:at]...)
	}
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Recorded reports how many spans were ever recorded and how many fell out
// of the ring.
func (t *Tracer) Recorded() (total, dropped uint64) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	total = t.next
	if capacity := uint64(len(t.buf)); total > capacity {
		dropped = total - capacity
	}
	return total, dropped
}

// Reset discards all recorded spans; the epoch is unchanged so offsets
// before and after a Reset remain comparable.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.next = 0
	t.mu.Unlock()
}
