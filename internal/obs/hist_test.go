package obs

import (
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should read zero")
	}
	h.Record(0)
	h.Record(1)
	h.Record(100)
	h.Record(1000)
	if got := h.Count(); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
	if got := h.Sum(); got != 1101 {
		t.Fatalf("Sum = %d, want 1101", got)
	}
	if got := h.Max(); got != 1000 {
		t.Fatalf("Max = %d, want 1000", got)
	}
	if got := h.Quantile(1); got != 1000 {
		t.Fatalf("Quantile(1) = %d, want max 1000", got)
	}
	if got := h.Quantile(0); got != 0 {
		t.Fatalf("Quantile(0) = %d, want 0", got)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Record(-5)
	if h.Count() != 1 || h.Sum() != 0 || h.Max() != 0 {
		t.Fatalf("negative sample should clamp to 0: count=%d sum=%d max=%d", h.Count(), h.Sum(), h.Max())
	}
}

// Quantile estimates from log buckets are bounded by the bucket geometry:
// the estimate lands in the same power-of-two bucket as the true value, so
// it is within a factor of 2.
func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewHistogram()
	samples := make([]int64, 10000)
	for i := range samples {
		// Latency-ish spread across several orders of magnitude.
		v := int64(1) << uint(rng.Intn(24))
		v += rng.Int63n(v)
		samples[i] = v
		h.Record(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.99} {
		truth := samples[int(q*float64(len(samples)-1))]
		got := h.Quantile(q)
		if got < truth/2 || got > truth*2 {
			t.Errorf("Quantile(%g) = %d, true value %d: outside 2x bound", q, got, truth)
		}
	}
}

func TestHistogramRecordDuration(t *testing.T) {
	h := NewHistogram()
	h.RecordDuration(3 * time.Millisecond)
	if got := h.Sum(); got != int64(3*time.Millisecond) {
		t.Fatalf("Sum = %d, want %d", got, int64(3*time.Millisecond))
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Record(5)
	h.RecordDuration(time.Second)
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 || h.Quantile(0.9) != 0 {
		t.Fatal("nil histogram reads should be zero")
	}
	if s := h.Snapshot(); s != (HistSnapshot{}) {
		t.Fatalf("nil Snapshot = %+v, want zero", s)
	}
	if b := h.Buckets(); b != nil {
		t.Fatalf("nil Buckets = %v, want nil", b)
	}
}

// The record path must be allocation-free: it runs on the engine step hot
// path under the steady-state alloc pin.
func TestHistogramRecordAllocationFree(t *testing.T) {
	h := NewHistogram()
	if n := testing.AllocsPerRun(1000, func() { h.Record(12345) }); n != 0 {
		t.Fatalf("Record allocates %v per op, want 0", n)
	}
	var nilH *Histogram
	if n := testing.AllocsPerRun(1000, func() { nilH.Record(12345) }); n != 0 {
		t.Fatalf("disabled Record allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { _ = h.Snapshot() }); n != 0 {
		t.Fatalf("Snapshot allocates %v per op, want 0", n)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram()
	h.Record(0) // bucket 0, upper 0
	h.Record(1) // bucket 1, upper 1
	h.Record(2) // bucket 2, upper 3
	h.Record(3) // bucket 2, upper 3
	h.Record(9) // bucket 4, upper 15
	want := []HistBucket{{0, 1}, {1, 1}, {3, 2}, {15, 1}}
	got := h.Buckets()
	if len(got) != len(want) {
		t.Fatalf("Buckets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Buckets[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	var total int64
	for _, b := range got {
		total += b.Count
	}
	if total != h.Count() {
		t.Fatalf("bucket counts sum to %d, Count() = %d", total, h.Count())
	}
}

func TestRegistryHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("engine.step_wall_ns")
	if h2 := r.Histogram("engine.step_wall_ns"); h2 != h {
		t.Fatal("Histogram should return the same instrument per name")
	}
	h.Record(100)
	h.Record(300)
	snap := r.Snapshot()
	if snap["engine.step_wall_ns.count"] != 2 {
		t.Fatalf("snapshot count = %v, want 2", snap["engine.step_wall_ns.count"])
	}
	if snap["engine.step_wall_ns.max"] != 300 {
		t.Fatalf("snapshot max = %v, want 300", snap["engine.step_wall_ns.max"])
	}
	found := false
	for _, n := range r.Names() {
		if n == "engine.step_wall_ns" {
			found = true
		}
	}
	if !found {
		t.Fatal("Names() should list the histogram")
	}

	var nilReg *Registry
	if h := nilReg.Histogram("x"); h != nil {
		t.Fatal("nil registry should hand out the nil disabled histogram")
	}
}

func TestWriteOpenMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter("nvme.bytes_read").Add(4096)
	r.Gauge("engine.tokens_per_s").Set(123.5)
	h := r.Histogram("engine.step_wall_ns")
	h.Record(10)
	h.Record(100)
	h.Record(1000)

	var b strings.Builder
	if err := r.WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE nvme_bytes_read_total counter",
		"nvme_bytes_read_total 4096",
		"# TYPE engine_tokens_per_s gauge",
		"engine_tokens_per_s 123.5",
		"# TYPE engine_step_wall_ns histogram",
		`engine_step_wall_ns_bucket{le="+Inf"} 3`,
		"engine_step_wall_ns_sum 1110",
		"engine_step_wall_ns_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("OpenMetrics output missing %q:\n%s", want, out)
		}
	}
	// Buckets must be cumulative and non-decreasing.
	lines := strings.Split(out, "\n")
	var last int64 = -1
	for _, ln := range lines {
		if !strings.HasPrefix(ln, "engine_step_wall_ns_bucket") {
			continue
		}
		fields := strings.Fields(ln)
		v, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
		if err != nil {
			t.Fatalf("parse %q: %v", ln, err)
		}
		if v < last {
			t.Fatalf("bucket series not cumulative at %q", ln)
		}
		last = v
	}

	var nilReg *Registry
	if err := nilReg.WriteOpenMetrics(&b); err != nil {
		t.Fatal("nil registry WriteOpenMetrics should be a no-op")
	}
}
