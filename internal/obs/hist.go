package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a fixed log2-bucketed streaming histogram for non-negative
// int64 samples (the engine records latencies in nanoseconds). Bucket i
// counts samples v with bits.Len64(v) == i, i.e. bucket 0 holds v == 0 and
// bucket i>0 holds [2^(i-1), 2^i). Sixty-five buckets cover the whole
// int64 range, so the record path is a handful of atomic adds: no locks,
// no allocation, no resizing — safe on the step hot path under the
// steady-state alloc pin.
//
// A nil *Histogram is a valid disabled histogram, matching the Counter /
// Gauge / Tracer convention: Record costs one branch and all reads return
// zeros, so instruments stay unconditionally wired.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// histBuckets is bits.Len64(maxInt64)+1: one bucket per possible bit
// length of a non-negative sample, plus bucket 0 for zero samples.
const histBuckets = 64

// NewHistogram creates an enabled, empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Record adds one sample. Negative samples are clamped to zero (a clock
// step backwards should not poison the max or underflow a bucket index).
// The path is allocation-free and lock-free.
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// RecordDuration records a duration as nanoseconds.
func (h *Histogram) RecordDuration(d time.Duration) { h.Record(int64(d)) }

// Count is the number of recorded samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum is the total of all recorded samples.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max is the largest recorded sample (0 when empty).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Quantile estimates the q-th quantile (q in [0,1]) by walking the
// cumulative bucket counts and interpolating linearly inside the landing
// bucket. Log bucketing bounds the relative error at 2x worst case —
// ample for "is P99 a millisecond or a second" attribution. Returns 0 on
// an empty histogram.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the sample we want, 1-based; q=1 lands on the last sample.
	rank := int64(q*float64(total-1)) + 1
	var cum int64
	for i := 0; i < histBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		if cum < rank {
			continue
		}
		if i == 0 {
			return 0
		}
		lo := int64(1) << (i - 1) // bucket covers [lo, 2*lo)
		// Position of the wanted rank inside this bucket, interpolated.
		within := float64(rank-(cum-c)) / float64(c)
		v := lo + int64(within*float64(lo))
		if m := h.max.Load(); v > m {
			v = m
		}
		return v
	}
	return h.max.Load()
}

// HistSnapshot is a point-in-time read of a histogram: counts plus the
// three quantiles the per-step telemetry reports. It is a value type so
// snapshotting allocates nothing beyond the caller's storage.
type HistSnapshot struct {
	Count int64
	Sum   int64
	Max   int64
	P50   int64
	P90   int64
	P99   int64
}

// Mean is Sum/Count (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Snapshot reads the histogram at one moment. Buckets may shift under a
// concurrent writer; the snapshot is a consistent-enough view for
// reporting, not a linearizable cut.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	return HistSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
}

// HistBucket is one non-empty bucket for exposition: Count samples were
// recorded with value <= Upper (the bucket's inclusive upper bound), in
// OpenMetrics cumulative-le convention the caller accumulates.
type HistBucket struct {
	Upper int64 // inclusive upper bound of the bucket's value range
	Count int64 // samples in this bucket (not cumulative)
}

// Buckets returns the non-empty buckets in ascending value order. The
// OpenMetrics exporter turns these into cumulative `le` series.
func (h *Histogram) Buckets() []HistBucket {
	if h == nil {
		return nil
	}
	var out []HistBucket
	for i := 0; i < histBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		upper := int64(0)
		if i > 0 {
			upper = int64(1)<<i - 1
		}
		out = append(out, HistBucket{Upper: upper, Count: c})
	}
	return out
}
