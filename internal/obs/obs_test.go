package obs

import (
	"encoding/json"
	"expvar"
	"sync"
	"testing"
	"time"
)

func TestTracerRecordsSpans(t *testing.T) {
	tr := NewTracer(16)
	sp := tr.StartSpan(LaneCompute, "block0/fwd")
	time.Sleep(time.Millisecond)
	sp.End()
	tr.RecordSpan(LaneAdam, "head/opt-adam", 5*time.Millisecond, 7*time.Millisecond)
	tr.Instant(LaneStep, "forward-end")

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	// Sorted by start: the StartSpan one began at ~0.
	if spans[0].Name != "block0/fwd" || spans[0].Lane != LaneCompute {
		t.Errorf("first span = %+v", spans[0])
	}
	if spans[0].Duration() < time.Millisecond {
		t.Errorf("span duration %v, want >= 1ms", spans[0].Duration())
	}
	for _, s := range spans {
		if s.End < s.Start {
			t.Errorf("span %q ends before it starts: %+v", s.Name, s)
		}
	}
	if total, dropped := tr.Recorded(); total != 3 || dropped != 0 {
		t.Errorf("Recorded() = %d, %d; want 3, 0", total, dropped)
	}
}

func TestTracerRingKeepsNewest(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.RecordSpan(LaneCompute, "s", time.Duration(i), time.Duration(i+1))
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring retained %d spans, want 4", len(spans))
	}
	// The newest four started at offsets 6..9.
	if spans[0].Start != 6 || spans[3].Start != 9 {
		t.Errorf("ring kept %v..%v, want 6..9", spans[0].Start, spans[3].Start)
	}
	if total, dropped := tr.Recorded(); total != 10 || dropped != 6 {
		t.Errorf("Recorded() = %d, %d; want 10, 6", total, dropped)
	}
	tr.Reset()
	if got := tr.Spans(); len(got) != 0 {
		t.Errorf("after Reset, %d spans retained", len(got))
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	sp := tr.StartSpan(LaneCompute, "x")
	sp.End()
	tr.RecordSpan(LaneAdam, "y", 0, 1)
	tr.Instant(LaneStep, "z")
	tr.Reset()
	if got := tr.Spans(); got != nil {
		t.Errorf("nil tracer returned spans %v", got)
	}
	if total, dropped := tr.Recorded(); total != 0 || dropped != 0 {
		t.Errorf("nil Recorded() = %d, %d", total, dropped)
	}
	if tr.Now() != 0 {
		t.Errorf("nil Now() = %v", tr.Now())
	}
}

// TestSpanPathAllocationFree pins the overhead budget: recording a span
// allocates nothing on the steady state, enabled or disabled. This is what
// lets instrumentation live unconditionally on engine hot paths.
func TestSpanPathAllocationFree(t *testing.T) {
	enabled := NewTracer(1024)
	var disabled *Tracer
	const label = "block0/bwd"
	if got := testing.AllocsPerRun(200, func() {
		sp := enabled.StartSpan(LaneCompute, label)
		sp.End()
	}); got != 0 {
		t.Errorf("enabled span path allocates %v per span, want 0", got)
	}
	if got := testing.AllocsPerRun(200, func() {
		sp := disabled.StartSpan(LaneCompute, label)
		sp.End()
	}); got != 0 {
		t.Errorf("disabled span path allocates %v per span, want 0", got)
	}
	if got := testing.AllocsPerRun(200, func() {
		enabled.RecordSpan(LaneAdam, label, 1, 2)
	}); got != 0 {
		t.Errorf("RecordSpan allocates %v per span, want 0", got)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(1 << 12)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp := tr.StartSpan(LaneAdam, "g")
				sp.End()
			}
		}()
	}
	wg.Wait()
	if total, _ := tr.Recorded(); total != 800 {
		t.Errorf("recorded %d spans, want 800", total)
	}
	spans := tr.Spans()
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].Start {
			t.Fatal("Spans() not sorted by start")
		}
	}
}

func TestLanesBusyUnion(t *testing.T) {
	spans := []Span{
		{Lane: "a", Start: 0, End: 10},
		{Lane: "a", Start: 5, End: 15},  // overlaps the first: union, not sum
		{Lane: "a", Start: 20, End: 30}, // disjoint
		{Lane: "b", Start: 0, End: 100}, // other lane, ignored
	}
	if got := LaneBusy(spans, "a", 0, 30); got != 25 {
		t.Errorf("LaneBusy = %v, want 25", got)
	}
	// Clipping to a window.
	if got := LaneBusy(spans, "a", 8, 22); got != 9 {
		t.Errorf("clipped LaneBusy = %v, want 9 (8..15 plus 20..22)", got)
	}
	// Union across multiple lanes.
	if got := LanesBusy(spans, []string{"a", "b"}, 0, 100); got != 100 {
		t.Errorf("LanesBusy = %v, want 100", got)
	}
	if got := LaneBusy(spans, "a", 30, 30); got != 0 {
		t.Errorf("empty window busy = %v", got)
	}
}

func TestWindowLanesFilter(t *testing.T) {
	spans := []Span{
		{Lane: "b", Start: 3, End: 9},
		{Lane: "a", Start: 1, End: 4},
	}
	from, to := Window(spans)
	if from != 1 || to != 9 {
		t.Errorf("Window = %v..%v, want 1..9", from, to)
	}
	if got := Lanes(spans); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Lanes = %v", got)
	}
	if got := Filter(spans, "a"); len(got) != 1 || got[0].Start != 1 {
		t.Errorf("Filter = %v", got)
	}
	if from, to := Window(nil); from != 0 || to != 0 {
		t.Errorf("empty Window = %v..%v", from, to)
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("engine.steps").Add(3)
	r.Counter("engine.steps").Add(2) // same instrument
	r.Gauge("engine.tokens_per_sec").Set(123.5)
	snap := r.Snapshot()
	if snap["engine.steps"] != 5 {
		t.Errorf("steps = %v, want 5", snap["engine.steps"])
	}
	if snap["engine.tokens_per_sec"] != 123.5 {
		t.Errorf("tokens/s = %v", snap["engine.tokens_per_sec"])
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "engine.steps" {
		t.Errorf("Names = %v", names)
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(1)
	r.Gauge("y").Set(2)
	if r.Snapshot() != nil || r.Names() != nil {
		t.Error("nil registry returned data")
	}
	r.PublishExpvar("never-published")
	var c *Counter
	var g *Gauge
	c.Add(1)
	g.Set(1)
	if c.Value() != 0 || g.Value() != 0 {
		t.Error("nil instruments hold values")
	}
}

func TestPublishExpvar(t *testing.T) {
	r := NewRegistry()
	r.Counter("pool.jobs").Add(7)
	r.PublishExpvar("ratel-test-metrics")
	v := expvar.Get("ratel-test-metrics")
	if v == nil {
		t.Fatal("expvar variable not published")
	}
	var decoded map[string]float64
	if err := json.Unmarshal([]byte(v.String()), &decoded); err != nil {
		t.Fatalf("expvar output not JSON: %v", err)
	}
	if decoded["pool.jobs"] != 7 {
		t.Errorf("expvar snapshot = %v", decoded)
	}
	// Live: later updates appear in subsequent reads.
	r.Counter("pool.jobs").Add(1)
	if err := json.Unmarshal([]byte(v.String()), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["pool.jobs"] != 8 {
		t.Errorf("expvar snapshot not live: %v", decoded)
	}
}
