package obs

import (
	"sync"
	"time"
)

// FlightRecorder keeps the last K steps' telemetry — timing, stall
// counts, and the step's flow-ledger delta — in a bounded ring so a
// postmortem (SIGQUIT, panic, engine error) can dump recent history
// without the process having opted into full tracing. Recording copies a
// value into a preallocated slot: no allocation, safe on the step path.
//
// A nil *FlightRecorder is a valid disabled recorder.
type FlightRecorder struct {
	mu   sync.Mutex
	buf  []StepRecord
	next uint64
}

// StepRecord is one step's entry in the flight ring. Start/End are
// offsets on the engine tracer's timeline (or zero when untraced) so a
// dump can join records to spans.
type StepRecord struct {
	Step  int
	Start time.Duration
	End   time.Duration

	Wall           time.Duration
	Forward        time.Duration
	Backward       time.Duration
	OptimizerDrain time.Duration
	Tokens         int

	Stalls    int64         // pipeline stall events this step
	StallWait time.Duration // time spent in those stalls

	// FetchStalls / FetchStallWait isolate the read-ahead misses (backward
	// blocked on an activation fetch) from the write-behind backpressure
	// counted in Stalls — the signal the adaptive depth controller and
	// postmortems key on.
	FetchStalls    int64
	FetchStallWait time.Duration

	// EffectiveDepth is the pipeline depth in force during the step (equal
	// to the configured depth when the adaptive controller is off).
	EffectiveDepth int

	// Sched is the NVMe transfer scheduler's per-class activity this step
	// (zero when the array ran unscheduled or saw no queued traffic).
	Sched SchedSample

	Flow FlowSnapshot // ledger delta for this step
}

// DefaultFlightDepth is the ring size NewFlightRecorder uses for
// depth <= 0: enough recent steps to see a pipeline wedge develop.
const DefaultFlightDepth = 32

// NewFlightRecorder creates a recorder retaining the last depth steps.
func NewFlightRecorder(depth int) *FlightRecorder {
	if depth <= 0 {
		depth = DefaultFlightDepth
	}
	return &FlightRecorder{buf: make([]StepRecord, depth)}
}

// Record stores one step's record, evicting the oldest when full.
func (f *FlightRecorder) Record(r StepRecord) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.buf[f.next%uint64(len(f.buf))] = r
	f.next++
	f.mu.Unlock()
}

// Records returns the retained step records, oldest first (a copy).
func (f *FlightRecorder) Records() []StepRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.next
	capacity := uint64(len(f.buf))
	var out []StepRecord
	if n <= capacity {
		out = append(out, f.buf[:n]...)
	} else {
		at := n % capacity
		out = append(out, f.buf[at:]...)
		out = append(out, f.buf[:at]...)
	}
	return out
}

// Len reports how many records are retained.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if n := f.next; n < uint64(len(f.buf)) {
		return int(n)
	}
	return len(f.buf)
}
