package obs

import (
	"expvar"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically-increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically-set float value (a most-recent measurement:
// tokens/s, a stage wall time in ms, a utilization fraction).
type Gauge struct{ bits atomic.Uint64 }

// Set stores the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value reads the gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Registry is a named set of counters and gauges with per-step snapshots.
// A nil *Registry is a valid disabled registry: Counter and Gauge return
// detached instruments whose updates go nowhere, so callers wire metrics
// unconditionally.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return &Counter{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil // nil *Histogram is the valid disabled instrument
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// Snapshot reads every instrument at one moment into a flat map (counters
// as exact integers widened to float64). Histograms flatten to
// name.count/.mean/.p50/.p90/.p99/.max entries.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.counters)+len(r.gauges)+6*len(r.hists))
	for name, c := range r.counters {
		out[name] = float64(c.Value())
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.hists {
		s := h.Snapshot()
		out[name+".count"] = float64(s.Count)
		out[name+".mean"] = s.Mean()
		out[name+".p50"] = float64(s.P50)
		out[name+".p90"] = float64(s.P90)
		out[name+".p99"] = float64(s.P99)
		out[name+".max"] = float64(s.Max)
	}
	return out
}

// Names lists the registered instrument names, sorted.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name := range r.counters {
		names = append(names, name)
	}
	for name := range r.gauges {
		names = append(names, name)
	}
	for name := range r.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// PublishExpvar exposes the registry as one expvar variable rendering the
// live snapshot (served at /debug/vars by net/http). Publishing the same
// name twice panics (expvar semantics), so call once per process.
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() interface{} { return r.Snapshot() }))
}
