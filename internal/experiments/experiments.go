// Package experiments regenerates every table and figure of the paper's
// evaluation (§V) from the calibrated simulator, one function per artifact.
// Both cmd/ratelbench and the top-level benchmarks drive this package, so
// the numbers in EXPERIMENTS.md, the CLI and `go test -bench` agree.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"ratel/internal/hw"
	"ratel/internal/model"
	"ratel/internal/units"
)

// Experiment is one reproducible artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer) error
}

var registry []Experiment

func register(id, title string, run func(w io.Writer) error) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// All lists the registered experiments in a stable order.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Run executes one experiment by id.
func Run(id string, w io.Writer) error {
	for _, e := range registry {
		if e.ID == id {
			fmt.Fprintf(w, "== %s: %s ==\n", e.ID, e.Title)
			return e.Run(w)
		}
	}
	return fmt.Errorf("experiments: unknown id %q (try: %v)", id, IDs())
}

// IDs lists the available experiment ids.
func IDs() []string {
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	return ids
}

// evalServer is the Table III machine with the given GPU, memory and SSDs.
func evalServer(gpu hw.GPU, memGiB int, ssds int) hw.Server {
	return hw.EvalServer(gpu, units.Bytes(memGiB)*units.GiB, ssds)
}

// lmCandidates is the model list capacity experiments search.
func lmCandidates() []model.Config {
	return append(append([]model.Config{}, model.SmallLMs...), model.TableIV...)
}

// table starts an aligned writer.
func table(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
}
