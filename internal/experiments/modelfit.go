package experiments

import (
	"fmt"
	"io"
	"math"

	"ratel/internal/capacity"
	"ratel/internal/hw"
	"ratel/internal/itersim"
	"ratel/internal/plan"
	"ratel/internal/strategy"
)

func init() {
	register("modelfit", "Analytical iteration-time model (Eqs. 1-5) vs discrete-event simulation", modelfit)
}

// modelfit cross-validates the paper's closed-form iteration-time model
// against the discrete-event simulator for Ratel across models and batch
// sizes. The analytical model assumes perfect overlap (pure max()), so the
// simulated time — which pays pipeline fill/drain and scheduling slack —
// should sit slightly above it, never far.
func modelfit(w io.Writer) error {
	srv := evalServer(hw.RTX4090, 768, 12)
	tw := table(w)
	fmt.Fprintln(tw, "model\tbatch\tanalytical(s)\tsimulated(s)\tsim/analytical")
	worst := 0.0
	for _, name := range []string{"6B", "13B", "30B", "70B"} {
		for _, batch := range []int{8, 32} {
			profile := capacity.PlannerProfile(strategy.Ratel, mustModel(name), batch, srv)
			pl, err := plan.Optimize(profile)
			if err != nil {
				return err
			}
			rep, err := itersim.Simulate(strategy.Ratel, mustModel(name), batch, srv)
			if err != nil {
				return err
			}
			ratio := float64(rep.Makespan) / float64(pl.Predicted.Titer)
			if r := math.Abs(ratio - 1); r > worst {
				worst = r
			}
			fmt.Fprintf(tw, "%s\t%d\t%.1f\t%.1f\t%.2fx\n",
				name, batch, pl.Predicted.Titer, rep.Makespan, ratio)
		}
	}
	fmt.Fprintf(tw, "worst deviation: %.0f%%\n", 100*worst)
	return tw.Flush()
}
