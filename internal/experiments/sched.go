package experiments

import (
	"fmt"
	"io"

	"ratel/internal/agoffload"
	"ratel/internal/data"
	"ratel/internal/engine"
	"ratel/internal/hw"
	"ratel/internal/itersim"
	"ratel/internal/model"
	"ratel/internal/nn"
	"ratel/internal/nvme"
	"ratel/internal/opt"
	"ratel/internal/strategy"
	"ratel/internal/units"
)

func init() {
	register("sched", "Transfer scheduler: simulated simplex vs duplex SSD lanes + real mini-engine FCFS vs scheduled exactness", schedExperiment)
}

// schedExperiment evaluates the transfer scheduler twice over, mirroring
// the optmodes experiment's shape. The discrete-event simulator prices a
// paper-scale iteration with optimizer-state traffic on the single shared
// SSDBus versus the duplex SSDRead/SSDWrite pair (the P5510's full-duplex
// 6.5/3.8 GB/s shape) across array widths: with one simplex lane the
// readiness prefetcher's state reads serialize against the gradient
// write-backs they overlap with, while the duplex model lets both
// directions progress at once — the same contention the real array
// scheduler's per-device read/write lanes remove. The win is largest
// exactly where the paper lives (one or two consumer SSDs, where the
// array is the bottleneck) and vanishes at the 12-SSD evaluation server
// whose array outruns the traffic. The real mini engine then runs one
// fine-tune under FCFS and under every scheduler configuration (priority
// classes, an inverted class order, the adaptive depth controller) and
// diffs the trajectories param-for-param: the scheduler reorders I/O,
// never data, so every row must report bit-identical.
func schedExperiment(w io.Writer) error {
	// ---- Simulated simplex vs duplex iteration (13B, readiness depth-2) ----
	cfg, err := model.ByName("13B")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "simulated iteration, %s batch 32, readiness depth-2, simplex SSDBus vs duplex SSDRead/SSDWrite\n", cfg.Name)
	fmt.Fprintf(w, "%-6s %14s %14s %10s\n", "ssds", "simplex (s)", "duplex (s)", "speedup")
	for _, ssds := range []int{1, 2, 4, 12} {
		srv := hw.EvalServer(hw.RTX4090, 768*units.GiB, ssds)
		var iter [2]units.Seconds
		for i, duplex := range []bool{false, true} {
			p := strategy.Ratel
			p.Name = "Ratel/readiness"
			p.GradMode = agoffload.Readiness
			p.OptSched = agoffload.Options{Depth: 2, Duplex: duplex}
			rep, err := itersim.Simulate(p, cfg, 32, srv)
			if err != nil {
				return err
			}
			iter[i] = rep.Makespan
		}
		fmt.Fprintf(w, "%-6d %14.2f %14.2f %9.2fx\n",
			ssds, float64(iter[0]), float64(iter[1]), float64(iter[0])/float64(iter[1]))
	}

	// ---- Real mini-engine FCFS vs scheduled exactness matrix ----
	modelCfg := nn.Config{Vocab: 48, Seq: 12, Hidden: 16, Heads: 2, Layers: 3, Batch: 4, Seed: 12}
	const steps = 8
	baseCfg := func() engine.Config {
		return engine.Config{
			Model:       modelCfg,
			GradMode:    agoffload.Optimized,
			Swap:        map[int]engine.Tier{0: engine.SwapSSD, 2: engine.SwapSSD},
			Devices:     2,
			OptSchedule: opt.ScheduleReadiness,
			SSD:         &nvme.Config{ReadBW: 256 << 20, WriteBW: 148 << 20, StripeSize: 1 << 12},
		}
	}
	engVariants := []struct {
		name string
		mut  func(*engine.Config)
	}{
		{"fcfs", func(c *engine.Config) {}},
		{"sched (default classes)", func(c *engine.Config) { c.Sched = true }},
		{"sched (inverted classes)", func(c *engine.Config) {
			c.Sched = true
			c.SchedClasses = "write-behind,writeback,opt-read,fetch"
		}},
		{"sched + adaptive depth", func(c *engine.Config) {
			c.Sched = true
			c.AdaptiveDepth = true
		}},
	}
	fmt.Fprintln(w)
	var ref []float32
	var refLoss float64
	for vi, v := range engVariants {
		ecfg := baseCfg()
		v.mut(&ecfg)
		e, err := engine.New(ecfg)
		if err != nil {
			return err
		}
		loader, err := data.NewLoader(data.Progression, modelCfg.Batch, modelCfg.Seq, modelCfg.Vocab, 99)
		if err != nil {
			e.Close()
			return err
		}
		var last float64
		for s := 0; s < steps; s++ {
			tokens, targets := loader.Next()
			if last, err = e.TrainStep(tokens, targets); err != nil {
				e.Close()
				return err
			}
		}
		if err := e.FlushAsync(); err != nil {
			e.Close()
			return err
		}
		var flat []float32
		for _, p := range e.Model().Params() {
			flat = append(flat, p.W.Data...)
		}
		e.Close()

		fmt.Fprintf(w, "%-26s loss %.4f", v.name, last)
		if vi == 0 {
			ref, refLoss = flat, last
			fmt.Fprintln(w, "  [reference]")
			continue
		}
		diff := 0
		for i := range flat {
			if flat[i] != ref[i] {
				diff++
			}
		}
		if diff == 0 && last == refLoss {
			fmt.Fprintln(w, "  == bit-identical to fcfs")
		} else {
			fmt.Fprintf(w, "  != %d/%d params differ from fcfs — scheduler changed values\n",
				diff, len(flat))
		}
	}
	fmt.Fprintf(w, "\nthe scheduler reorders I/O, never data: every configuration lands the same trajectory.\n")
	return nil
}
