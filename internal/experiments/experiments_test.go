package experiments

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// TestAllExperimentsRun executes every registered experiment and checks the
// output is substantive: these are the exact code paths cmd/ratelbench and
// the top-level benchmarks exercise.
func TestAllExperimentsRun(t *testing.T) {
	if len(All()) < 17 {
		t.Fatalf("only %d experiments registered; every paper artifact needs one", len(All()))
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Run(e.ID, &buf); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if buf.Len() < 80 {
				t.Errorf("%s produced only %d bytes of output", e.ID, buf.Len())
			}
		})
	}
}

func TestRunUnknownID(t *testing.T) {
	if err := Run("fig999", io.Discard); err == nil {
		t.Error("unknown experiment id accepted")
	}
}

func TestIDsSortedAndUnique(t *testing.T) {
	ids := IDs()
	seen := map[string]bool{}
	for i, id := range ids {
		if seen[id] {
			t.Errorf("duplicate experiment id %q", id)
		}
		seen[id] = true
		if i > 0 && ids[i-1] >= id {
			t.Errorf("ids not sorted: %q before %q", ids[i-1], id)
		}
	}
}

// TestKeyArtifactsContainHeadlines spot-checks that the rendered experiments
// carry the paper's headline content.
func TestKeyArtifactsContainHeadlines(t *testing.T) {
	checks := map[string][]string{
		"fig1":   {"ZeRO-Infinity", "G10", "Ratel", "optimizer tail"},
		"fig5a":  {"Ratel", "ZeRO-Offload", "Colossal-AI"},
		"fig6":   {"276B", "175B", "135B"},
		"fig9b":  {"predicted optimum"},
		"fig13":  {"Megatron DGX-A100", "advantage"},
		"tableV": {"Failed"},
	}
	for id, wants := range checks {
		var buf bytes.Buffer
		if err := Run(id, &buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		out := buf.String()
		for _, w := range wants {
			if !strings.Contains(out, w) {
				t.Errorf("%s output missing %q:\n%s", id, w, out)
			}
		}
	}
}
