package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"ratel/internal/agoffload"
	"ratel/internal/data"
	"ratel/internal/engine"
	"ratel/internal/nn"
	"ratel/internal/nvme"
	"ratel/internal/obs"
	"ratel/internal/sim"
	"ratel/internal/units"
)

func init() {
	register("calib", "Sim-vs-real calibration: measured engine timeline vs discrete-event schedule", calibExperiment)
}

// calibExperiment runs real engine steps under the span tracer, folds the
// recorded timeline into per-resource busy times, then replays the same
// iteration through the discrete-event simulator with rates calibrated
// from the run itself — the report shows where the analytical model and
// the living engine agree and where they drift.
func calibExperiment(w io.Writer) error {
	modelCfg := nn.Config{Vocab: 48, Seq: 12, Hidden: 16, Heads: 2, Layers: 3, Batch: 4, Seed: 5}
	const steps = 8

	tr := obs.NewTracer(obs.DefaultCapacity)
	e, err := engine.New(engine.Config{
		Model: modelCfg, GradMode: agoffload.Optimized, Devices: 2,
		Swap:   map[int]engine.Tier{0: engine.SwapSSD, 1: engine.SwapSSD, 2: engine.SwapSSD},
		Tracer: tr,
	})
	if err != nil {
		return err
	}
	defer e.Close()
	loader, err := data.NewLoader(data.Progression, modelCfg.Batch, modelCfg.Seq, modelCfg.Vocab, 42)
	if err != nil {
		return err
	}

	// One warm-up step (page faults, pool spin-up), then measure.
	tokens, targets := loader.Next()
	if _, err := e.TrainStep(tokens, targets); err != nil {
		return err
	}
	tr.Reset()
	var bwdSum, drainSum, adamBusy time.Duration
	var adamParams int64
	for s := 0; s < steps; s++ {
		tokens, targets = loader.Next()
		if _, err := e.TrainStep(tokens, targets); err != nil {
			return err
		}
		m := e.LastStepMetrics()
		bwdSum += m.Backward
		drainSum += m.OptimizerDrain
		adamBusy += m.AdamBusy
		adamParams += m.AdamParams
	}
	spans := tr.Spans()
	if len(spans) == 0 {
		return fmt.Errorf("calib: tracer recorded no spans")
	}

	// ---- Fold the measured timeline ----
	// Average duration per span name, for per-chunk comparisons.
	avg := make(map[string]time.Duration)
	count := make(map[string]int)
	for _, s := range spans {
		avg[s.Name] += s.Duration()
		count[s.Name]++
	}
	for name, total := range avg {
		avg[name] = total / time.Duration(count[name])
	}
	// Per-resource busy time (interval union — concurrent spans on one
	// lane count once), restricted to the backward+optimizer phase the
	// simulated schedule models.
	bwdGPU := func(s obs.Span) bool {
		return s.Lane == obs.LaneCompute &&
			(strings.HasSuffix(s.Name, "/bwd") || strings.HasSuffix(s.Name, "/recompute"))
	}
	optSSD := func(s obs.Span) bool {
		return (s.Lane == obs.LaneNVMeRead || s.Lane == obs.LaneNVMeWrite) &&
			strings.HasPrefix(s.Name, "states/")
	}
	adamLane := func(s obs.Span) bool { return s.Lane == obs.LaneAdam }
	busyWhere := func(keep func(obs.Span) bool) time.Duration {
		var sub []obs.Span
		for _, s := range spans {
			if keep(s) {
				sub = append(sub, s)
			}
		}
		from, to := obs.Window(sub)
		return obs.LanesBusy(sub, obs.Lanes(sub), from, to)
	}
	measured := map[sim.ResourceID]time.Duration{
		sim.GPUCompute: busyWhere(bwdGPU) / steps,
		sim.CPUAdam:    busyWhere(adamLane) / steps,
		sim.SSDBus:     busyWhere(optSSD) / steps,
	}
	measuredSpan := (bwdSum + drainSum) / steps

	// ---- Build the simulated iteration from calibrated rates ----
	adamRate := float64(adamParams) / adamBusy.Seconds()
	// State-streaming bandwidth measured from this very run: the optimizer
	// reads and writes 12 bytes/param of fp32 state per group (P32+M+V),
	// timed by the "states/" object spans.
	totalParams := int64(e.Model().NumParams())
	stateReadBusy := busyWhere(func(s obs.Span) bool {
		return s.Lane == obs.LaneNVMeRead && strings.HasPrefix(s.Name, "states/")
	})
	stateWriteBusy := busyWhere(func(s obs.Span) bool {
		return s.Lane == obs.LaneNVMeWrite && strings.HasPrefix(s.Name, "states/")
	})
	rates := agoffload.Rates{AdamParamsPerSec: adamRate}
	if stateReadBusy > 0 && stateWriteBusy > 0 {
		stateBytes := float64(12 * totalParams * steps)
		rates.BWS2M = units.BytesPerSecond(stateBytes / stateReadBusy.Seconds())
		rates.BWM2S = units.BytesPerSecond(stateBytes / stateWriteBusy.Seconds())
	}

	// Gradient-arrival tasks: the measured average backward (plus
	// recomputation) time per group, chained in arrival order — head
	// first, then blocks high to low, then the embedding (§IV-C).
	groups := e.Model().ParamGroups()
	type arrival struct {
		group nn.ParamGroup
		cost  time.Duration
	}
	order := []arrival{{groups[len(groups)-1], avg["head/bwd"]}}
	for i := len(groups) - 2; i >= 1; i-- {
		g := groups[i]
		order = append(order, arrival{g, avg[g.Name+"/bwd"] + avg[g.Name+"/recompute"]})
	}
	order = append(order, arrival{groups[0], avg["embed/bwd"]})

	var tasks []sim.Task
	id := 0
	var chunks []agoffload.Chunk
	prev := -1
	for _, a := range order {
		t := sim.Task{ID: id, Label: a.group.Name + "/bwd", Resource: sim.GPUCompute,
			Duration: units.Seconds(a.cost.Seconds())}
		if prev >= 0 {
			t.Deps = []int{prev}
		}
		tasks = append(tasks, t)
		chunks = append(chunks, agoffload.Chunk{
			Label: a.group.Name, Params: int64(a.group.NumParams()), ArrivalDep: id,
		})
		prev = id
		id++
	}
	optTasks, _, _, err := agoffload.Schedule(agoffload.Optimized, chunks, id, rates)
	if err != nil {
		return err
	}
	res, err := sim.Run(append(tasks, optTasks...))
	if err != nil {
		return err
	}
	simSpan := res.Makespan.Duration()

	// ---- Report ----
	fmt.Fprintf(w, "calibration: %d measured engine steps (3 blocks on SSD, optimized offloading)\n", steps)
	fmt.Fprintf(w, "calibrated rates: adam %.3g params/s, state read %.1f MB/s, write %.1f MB/s\n\n",
		adamRate, float64(rates.BWS2M)/1e6, float64(rates.BWM2S)/1e6)
	fmt.Fprintf(w, "backward+optimizer phase   measured %10v   simulated %10v   drift %+6.1f%%\n",
		measuredSpan.Round(time.Microsecond), simSpan.Round(time.Microsecond), drift(simSpan, measuredSpan))
	fmt.Fprintf(w, "\n%-12s %14s %7s %14s %7s %8s\n", "resource", "measured-busy", "frac", "sim-busy", "frac", "drift")
	for _, r := range []sim.ResourceID{sim.GPUCompute, sim.CPUAdam, sim.SSDBus} {
		mBusy := measured[r]
		sBusy := res.Busy[r].Duration()
		fmt.Fprintf(w, "%-12s %14v %6.1f%% %14v %6.1f%% %+7.1f%%\n",
			string(r),
			mBusy.Round(time.Microsecond), frac(mBusy, measuredSpan),
			sBusy.Round(time.Microsecond), 100*res.Utilization(r),
			drift(sBusy, mBusy))
	}
	fmt.Fprintf(w, "\n%-12s %14s %14s %8s\n", "adam chunk", "measured", "simulated", "drift")
	for _, c := range chunks {
		mDur := avg[c.Label+"/opt-adam"]
		sDur := time.Duration(float64(c.Params) / adamRate * float64(time.Second))
		fmt.Fprintf(w, "%-12s %14v %14v %+7.1f%%\n",
			c.Label, mDur.Round(time.Microsecond), sDur.Round(time.Microsecond), drift(sDur, mDur))
	}
	fmt.Fprintf(w, "\nper-resource drift bounds the rate-model error (the sim prices state writes at\n14 B/param where the engine stores 12); phase-span drift is engine work the\nschedule leaves out — gradient marshalling, cache decode, channel hand-off.\n")
	return calibForwardOverlap(w)
}

// calibForwardOverlap calibrates the write-behind activation pipeline
// against its analytic bounds. The same iteration runs twice through a
// Table III-shaped throttled array — synchronous (DisablePipeline) and with
// a depth-3 window — and the synchronous run's span timeline yields the two
// discrete-event bounds: serial C+W (compute, then write, the synchronous
// schedule) and full overlap max(C, W) (every write behind compute). The
// pipelined forward wall should land between them; where it lands is the
// overlap the pipeline actually recovered.
func calibForwardOverlap(w io.Writer) error {
	mcfg := nn.Config{Vocab: 64, Seq: 96, Hidden: 16, Heads: 2, Layers: 4, Batch: 2, Seed: 5}
	swap := map[int]engine.Tier{
		0: engine.SwapSSD, 1: engine.SwapSSD, 2: engine.SwapSSD, 3: engine.SwapSSD,
	}
	// Same device shape as BENCH_overlap.json: Intel P5510 read:write ratio,
	// scaled 1/200 to match this model's small blobs.
	ssd := &nvme.Config{
		ReadBW:     units.BytesPerSecond(33 << 20),
		WriteBW:    units.BytesPerSecond(19 << 20),
		StripeSize: 1 << 16,
	}
	const steps = 4

	run := func(mut func(*engine.Config)) (time.Duration, []obs.Span, error) {
		tr := obs.NewTracer(obs.DefaultCapacity)
		cfg := engine.Config{
			Model: mcfg, GradMode: agoffload.Serialized, Devices: 3,
			Swap: swap, SSD: ssd, Tracer: tr,
		}
		mut(&cfg)
		e, err := engine.New(cfg)
		if err != nil {
			return 0, nil, err
		}
		defer e.Close()
		loader, err := data.NewLoader(data.Progression, mcfg.Batch, mcfg.Seq, mcfg.Vocab, 42)
		if err != nil {
			return 0, nil, err
		}
		tokens, targets := loader.Next()
		if _, err := e.TrainStep(tokens, targets); err != nil {
			return 0, nil, err
		}
		tr.Reset()
		var fwd time.Duration
		for s := 0; s < steps; s++ {
			tokens, targets = loader.Next()
			if _, err := e.TrainStep(tokens, targets); err != nil {
				return 0, nil, err
			}
			fwd += e.LastStepMetrics().Forward
		}
		return fwd / steps, tr.Spans(), nil
	}

	syncFwd, syncSpans, err := run(func(c *engine.Config) { c.DisablePipeline = true })
	if err != nil {
		return err
	}
	pipeFwd, _, err := run(func(c *engine.Config) { c.PipelineDepth = 3 })
	if err != nil {
		return err
	}

	busy := func(keep func(obs.Span) bool) time.Duration {
		var sub []obs.Span
		for _, s := range syncSpans {
			if keep(s) {
				sub = append(sub, s)
			}
		}
		if len(sub) == 0 {
			return 0
		}
		from, to := obs.Window(sub)
		return obs.LanesBusy(sub, obs.Lanes(sub), from, to) / steps
	}
	compute := busy(func(s obs.Span) bool {
		return s.Lane == obs.LaneCompute && (strings.HasSuffix(s.Name, "/fwd") || s.Name == "loss")
	})
	writes := busy(func(s obs.Span) bool {
		return s.Lane == obs.LaneNVMeWrite && strings.HasPrefix(s.Name, "act/")
	})
	serial := compute + writes
	ideal := compute
	if writes > ideal {
		ideal = writes
	}
	recovered := 0.0
	if serial > ideal {
		recovered = 100 * (syncFwd - pipeFwd).Seconds() / (serial - ideal).Seconds()
	}
	fmt.Fprintf(w, "\nforward activation overlap (4 blocks on SSD, Table III / 200, depth-3 window)\n")
	fmt.Fprintf(w, "sim bounds: serial C+W %v, full overlap max(C,W) %v  (C %v, W %v)\n",
		serial.Round(time.Microsecond), ideal.Round(time.Microsecond),
		compute.Round(time.Microsecond), writes.Round(time.Microsecond))
	fmt.Fprintf(w, "measured forward: sync %v (drift vs serial %+.1f%%), pipelined %v — overlap recovered %.0f%%\n",
		syncFwd.Round(time.Microsecond), drift(serial, syncFwd),
		pipeFwd.Round(time.Microsecond), recovered)
	return nil
}

func drift(simulated, measured time.Duration) float64 {
	if measured <= 0 {
		return 0
	}
	return 100 * (simulated.Seconds() - measured.Seconds()) / measured.Seconds()
}

func frac(part, whole time.Duration) float64 {
	if whole <= 0 {
		return 0
	}
	return 100 * part.Seconds() / whole.Seconds()
}
