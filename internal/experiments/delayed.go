package experiments

import (
	"fmt"
	"io"

	"ratel/internal/hw"
	"ratel/internal/itersim"
	"ratel/internal/strategy"
)

func init() {
	register("delayed", "Ablation: one-step delayed update vs active gradient offloading (footnote 4)", delayedExperiment)
}

// delayedExperiment quantifies the paper's footnote-4 argument: the delayed
// update buys ZeRO-Offload/Infinity the same optimizer hiding that active
// gradient offloading provides — but Ratel gets there synchronously.
func delayedExperiment(w io.Writer) error {
	srv := evalServer(hw.RTX4090, 768, 12)
	tw := table(w)
	fmt.Fprintln(tw, "system\tbatch\tsync(tok/s)\tdelayed(tok/s)\tdelayed gain\tstale?")
	for _, p := range []strategy.Policy{strategy.ZeROOffload, strategy.ZeROInfinity} {
		for _, b := range []int{16, 32} {
			sync, err := itersim.Simulate(p, mustModel("13B"), b, srv)
			if err != nil {
				return err
			}
			delayed, err := itersim.SimulateDelayedOverlap(p, mustModel("13B"), b, srv)
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "%s\t%d\t%.0f\t%.0f\t%.2fx\tyes\n",
				p.Name, b, sync.TokensPerSec, delayed.TokensPerSec,
				delayed.TokensPerSec/sync.TokensPerSec)
		}
	}
	for _, b := range []int{16, 32} {
		ratel, err := itersim.Simulate(strategy.Ratel, mustModel("13B"), b, srv)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t-\t-\tno (synchronous overlap, §IV-C)\n",
			ratel.Policy, b, ratel.TokensPerSec)
	}
	return tw.Flush()
}
