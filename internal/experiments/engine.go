package experiments

import (
	"fmt"
	"io"

	"ratel/internal/agoffload"
	"ratel/internal/data"
	"ratel/internal/engine"
	"ratel/internal/nn"
)

func init() {
	register("engine", "Real mini-engine run: correctness of active gradient offloading and offloading tiers", engineExperiment)
}

// engineExperiment fine-tunes the same miniature model with every gradient
// schedule and activation tier, printing the loss trajectories and the
// bit-equality verdicts — the live version of the correctness suite.
func engineExperiment(w io.Writer) error {
	modelCfg := nn.Config{Vocab: 48, Seq: 12, Hidden: 16, Heads: 2, Layers: 3, Batch: 4, Seed: 12}
	const steps = 10

	type variant struct {
		name string
		cfg  engine.Config
	}
	variants := []variant{
		{"serialized optimizer, recompute all", engine.Config{Model: modelCfg, GradMode: agoffload.Serialized, Devices: 2}},
		{"naive handlers, recompute all", engine.Config{Model: modelCfg, GradMode: agoffload.Naive, Devices: 2}},
		{"optimized handlers, recompute all", engine.Config{Model: modelCfg, GradMode: agoffload.Optimized, Devices: 2}},
		{"optimized handlers, all caches on SSD", engine.Config{Model: modelCfg, GradMode: agoffload.Optimized, Devices: 2,
			Swap: map[int]engine.Tier{0: engine.SwapSSD, 1: engine.SwapSSD, 2: engine.SwapSSD}}},
		{"optimized handlers, host tier", engine.Config{Model: modelCfg, GradMode: agoffload.Optimized, Devices: 2,
			Swap: map[int]engine.Tier{0: engine.SwapHost, 1: engine.SwapHost, 2: engine.SwapHost}}},
		{"one-step DELAYED update (footnote 4)", engine.Config{Model: modelCfg, GradMode: agoffload.Optimized, Devices: 2,
			DelayedUpdate: true}},
	}

	var ref []float32
	for vi, v := range variants {
		e, err := engine.New(v.cfg)
		if err != nil {
			return err
		}
		loader, err := data.NewLoader(data.Progression, modelCfg.Batch, modelCfg.Seq, modelCfg.Vocab, 99)
		if err != nil {
			e.Close()
			return err
		}
		var losses []float64
		for s := 0; s < steps; s++ {
			tokens, targets := loader.Next()
			loss, err := e.TrainStep(tokens, targets)
			if err != nil {
				e.Close()
				return err
			}
			losses = append(losses, loss)
		}
		if v.cfg.DelayedUpdate {
			if err := e.FlushDelayed(); err != nil {
				e.Close()
				return err
			}
		}
		var flat []float32
		for _, p := range e.Model().Params() {
			flat = append(flat, p.W.Data...)
		}
		st := e.Stats()
		e.Close()

		fmt.Fprintf(w, "%-42s loss %.4f -> %.4f", v.name, losses[0], losses[len(losses)-1])
		if vi == 0 {
			ref = flat
			fmt.Fprintln(w, "  [reference]")
			continue
		}
		diff := 0
		for i := range flat {
			if flat[i] != ref[i] {
				diff++
			}
		}
		if diff == 0 {
			fmt.Fprintln(w, "  == bit-identical to reference")
		} else {
			fmt.Fprintf(w, "  != %d/%d parameters differ (stale)\n", diff, len(flat))
		}
		if st.ActBytesOffload+st.ActBytesHost > 0 {
			fmt.Fprintf(w, "%-42s activation traffic: ssd %v, host %v\n", "", st.ActBytesOffload, st.ActBytesHost)
		}
	}
	return nil
}
