package experiments

import (
	"fmt"
	"io"

	"ratel/internal/hw"
	"ratel/internal/itersim"
	"ratel/internal/strategy"
	"ratel/internal/trace"
)

func init() {
	register("fig1", "Stage breakdown of ZeRO-Infinity, G10 and Ratel (13B, batch 32, 12 SSDs)", fig1)
	register("fig2b", "ZeRO-Infinity GPU busy time vs batch size (Fig. 2b)", fig2b)
	register("fig2c", "ZeRO-Infinity optimizer-stage proportion vs batch size (Fig. 2c)", fig2c)
}

// fig1 reproduces the Fig. 1 breakdowns: per-stage durations and per-stage
// link utilizations for the three archetypes.
func fig1(w io.Writer) error {
	srv := evalServer(hw.RTX4090, 768, 12)
	for _, p := range []strategy.Policy{strategy.ZeROInfinity, strategy.G10, strategy.Ratel} {
		rep, err := itersim.Simulate(p, mustModel("13B"), 32, srv)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s: forward %.1fs, backward %.1fs, optimizer tail %.1fs, iteration %.1fs\n",
			p.Name, rep.ForwardEnd, rep.BackwardEnd-rep.ForwardEnd, rep.OptimizerTail, rep.Makespan)
		fmt.Fprintf(w, "  GPU busy %.0f%%, swapped activations %v (alpha %v), recompute %.0f TFLOP\n",
			100*rep.GPUBusyFrac, rep.AG2M, rep.AlphaBytes, rep.FLOPr.TFLOPf())
		fmt.Fprint(w, trace.FormatStageUtilization(rep.Result, trace.StageWindows{
			ForwardEnd: rep.ForwardEnd, BackwardEnd: rep.BackwardEnd, End: rep.Makespan,
		}))
		fmt.Fprint(w, trace.Gantt(rep.Result, 72))
		fmt.Fprintln(w)
	}
	return nil
}

func fig2b(w io.Writer) error {
	tw := table(w)
	fmt.Fprint(tw, "model\\batch")
	batches := []int{8, 16, 32, 64}
	for _, b := range batches {
		fmt.Fprintf(tw, "\t%d", b)
	}
	fmt.Fprintln(tw)
	srv := evalServer(hw.RTX4090, 768, 12)
	for _, name := range []string{"13B", "30B", "70B"} {
		fmt.Fprintf(tw, "%s", name)
		for _, b := range batches {
			rep, err := itersim.Simulate(strategy.ZeROInfinity, mustModel(name), b, srv)
			if err != nil {
				fmt.Fprint(tw, "\t-")
				continue
			}
			fmt.Fprintf(tw, "\t%.0f%%", 100*rep.GPUBusyFrac)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

func fig2c(w io.Writer) error {
	tw := table(w)
	fmt.Fprint(tw, "model\\batch")
	batches := []int{8, 16, 32, 64}
	for _, b := range batches {
		fmt.Fprintf(tw, "\t%d", b)
	}
	fmt.Fprintln(tw)
	srv := evalServer(hw.RTX4090, 768, 12)
	for _, name := range []string{"13B", "30B", "70B"} {
		fmt.Fprintf(tw, "%s", name)
		for _, b := range batches {
			rep, err := itersim.Simulate(strategy.ZeROInfinity, mustModel(name), b, srv)
			if err != nil {
				fmt.Fprint(tw, "\t-")
				continue
			}
			fmt.Fprintf(tw, "\t%.0f%%", 100*rep.OptimizerShare)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}
