package experiments

import (
	"fmt"
	"io"

	"ratel/internal/hw"
	"ratel/internal/itersim"
	"ratel/internal/strategy"
)

func init() {
	register("fig5a", "End-to-end throughput vs batch size, 13B on RTX 4090 (Fig. 5a)", fig5a)
	register("fig5b", "End-to-end throughput vs batch size, 13B on RTX 3090 (Fig. 5b)", fig5b)
	register("fig5c", "Achieved TFLOPS vs model size on RTX 4090 (Fig. 5c)", fig5c)
	register("fig7", "Effect of active gradient offloading, 13B and 175B (Fig. 7)", fig7)
}

var fig5Systems = []strategy.Policy{strategy.ColossalAI, strategy.ZeROInfinity,
	strategy.ZeROOffload, strategy.Ratel}

func throughputSweep(w io.Writer, gpu hw.GPU, modelName string, batches []int) error {
	srv := evalServer(gpu, 768, 12)
	tw := table(w)
	fmt.Fprint(tw, "system\\batch")
	for _, b := range batches {
		fmt.Fprintf(tw, "\t%d", b)
	}
	fmt.Fprintln(tw, "\t(tokens/s)")
	for _, p := range fig5Systems {
		fmt.Fprintf(tw, "%s", p.Name)
		for _, b := range batches {
			rep, err := itersim.Simulate(p, mustModel(modelName), b, srv)
			if err != nil {
				fmt.Fprint(tw, "\t-")
				continue
			}
			fmt.Fprintf(tw, "\t%.0f", rep.TokensPerSec)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

func fig5a(w io.Writer) error {
	return throughputSweep(w, hw.RTX4090, "13B", []int{8, 16, 32, 64, 128})
}

func fig5b(w io.Writer) error {
	return throughputSweep(w, hw.RTX3090, "13B", []int{8, 16, 32, 64})
}

var feasibleBatchGrid = []int{1, 2, 4, 8, 16, 32, 64, 128}

func fig5c(w io.Writer) error {
	srv := evalServer(hw.RTX4090, 768, 12)
	tw := table(w)
	fmt.Fprintf(tw, "measured peak: %.0f TFLOPS\n", hw.RTX4090.PeakFP16.TFLOPSf())
	fmt.Fprint(tw, "system\\model")
	models := []string{"13B", "30B", "70B", "135B", "175B"}
	for _, m := range models {
		fmt.Fprintf(tw, "\t%s", m)
	}
	fmt.Fprintln(tw, "\t(TFLOPS at best batch)")
	for _, p := range []strategy.Policy{strategy.ZeROInfinity, strategy.ZeROOffload, strategy.Ratel} {
		fmt.Fprintf(tw, "%s", p.Name)
		for _, m := range models {
			rep, err := itersim.BestThroughput(p, mustModel(m), srv, feasibleBatchGrid)
			if err != nil {
				fmt.Fprint(tw, "\t-")
				continue
			}
			fmt.Fprintf(tw, "\t%.0f(b%d)", rep.TFLOPS, rep.Batch)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

func fig7(w io.Writer) error {
	variants := []strategy.Policy{strategy.RatelZeRO, strategy.RatelNaive, strategy.Ratel}
	cases := []struct {
		model   string
		batches []int
	}{
		{"13B", []int{8, 16, 32, 64}},
		{"175B", []int{8, 16}},
	}
	srv := evalServer(hw.RTX4090, 768, 12)
	for _, c := range cases {
		fmt.Fprintf(w, "-- %s --\n", c.model)
		tw := table(w)
		fmt.Fprint(tw, "variant\\batch")
		for _, b := range c.batches {
			fmt.Fprintf(tw, "\t%d", b)
		}
		fmt.Fprintln(tw, "\t(tokens/s)")
		for _, p := range variants {
			fmt.Fprintf(tw, "%s", p.Name)
			for _, b := range c.batches {
				rep, err := itersim.Simulate(p, mustModel(c.model), b, srv)
				if err != nil {
					fmt.Fprint(tw, "\t-")
					continue
				}
				fmt.Fprintf(tw, "\t%.0f", rep.TokensPerSec)
			}
			fmt.Fprintln(tw)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}
