package experiments

import (
	"fmt"
	"io"

	"ratel/internal/capacity"
	"ratel/internal/hw"
	"ratel/internal/itersim"
	"ratel/internal/plan"
	"ratel/internal/strategy"
	"ratel/internal/units"
)

func init() {
	register("fig9a", "Throughput of activation-management strategies, 70B (Fig. 9a)", fig9a)
	register("tableV", "Batch sizes adopted by activation-management strategies, 70B (Table V)", tableV)
	register("fig9b", "Iteration time vs swapped activation size, 13B (Fig. 9b)", fig9b)
}

var actMgmtSystems = []strategy.Policy{strategy.RatelDS, strategy.RatelCap,
	strategy.RatelG10, strategy.RatelCM, strategy.Ratel}

var tableVBatchGrid = []int{8, 16, 24, 32}

func fig9a(w io.Writer) error {
	tw := table(w)
	fmt.Fprint(tw, "strategy\\mainmem(GiB)")
	mems := []int{128, 256, 512}
	for _, m := range mems {
		fmt.Fprintf(tw, "\t%d", m)
	}
	fmt.Fprintln(tw, "\t(tokens/s at adopted batch)")
	for _, p := range actMgmtSystems {
		fmt.Fprintf(tw, "%s", p.Name)
		for _, mem := range mems {
			srv := evalServer(hw.RTX4090, mem, 12)
			b, ok := capacity.MaxBatch(p, mustModel("70B"), srv, tableVBatchGrid)
			if !ok {
				fmt.Fprint(tw, "\tFailed")
				continue
			}
			rep, err := itersim.Simulate(p, mustModel("70B"), b, srv)
			if err != nil {
				fmt.Fprint(tw, "\tFailed")
				continue
			}
			fmt.Fprintf(tw, "\t%.0f", rep.TokensPerSec)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

func tableV(w io.Writer) error {
	tw := table(w)
	fmt.Fprintln(tw, "strategy\\mainmem(GiB)\t128\t256\t512")
	for _, p := range actMgmtSystems {
		fmt.Fprintf(tw, "%s", p.Name)
		for _, mem := range []int{128, 256, 512} {
			srv := evalServer(hw.RTX4090, mem, 12)
			b, ok := capacity.MaxBatch(p, mustModel("70B"), srv, tableVBatchGrid)
			if !ok {
				fmt.Fprint(tw, "\tFailed")
				continue
			}
			fmt.Fprintf(tw, "\t%d", b)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// fig9b sweeps the swapped-activation amount for the 13B model at several
// batch sizes and marks the planner's predicted optimum (the stars of
// Fig. 9b).
func fig9b(w io.Writer) error {
	srv := evalServer(hw.RTX4090, 768, 12)
	for _, batch := range []int{24, 36, 48, 60} {
		profile := capacity.PlannerProfile(strategy.Ratel, mustModel("13B"), batch, srv)
		curve, err := plan.Curve(profile)
		if err != nil {
			return err
		}
		opt, err := plan.Optimize(profile)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "-- batch %d (case %v, predicted optimum at %.0f GiB, %.1f s) --\n",
			batch, opt.Case, opt.AG2M.GiBf(), opt.Predicted.Titer)
		tw := table(w)
		fmt.Fprintln(tw, "swapped(GiB)\titeration(s)")
		step := len(curve) / 12
		if step == 0 {
			step = 1
		}
		for i := 0; i < len(curve); i += step {
			pt := curve[i]
			marker := ""
			if near(pt.AG2M, opt.AG2M) {
				marker = "  <- predicted optimum"
			}
			fmt.Fprintf(tw, "%.0f\t%.1f%s\n", pt.AG2M.GiBf(), pt.Times.Titer, marker)
		}
		last := curve[len(curve)-1]
		fmt.Fprintf(tw, "%.0f\t%.1f\n", last.AG2M.GiBf(), last.Times.Titer)
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}

func near(a, b units.Bytes) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 4*units.GiB
}
