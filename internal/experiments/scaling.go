package experiments

import (
	"fmt"
	"io"

	"ratel/internal/cost"
	"ratel/internal/hw"
	"ratel/internal/itersim"
	"ratel/internal/strategy"
)

func init() {
	register("fig10a", "Max throughput vs number of SSDs, 135B (Fig. 10a)", fig10a)
	register("fig10b", "Ratel TFLOPS vs number of SSDs, 13B (Fig. 10b)", fig10b)
	register("fig11", "Multi-GPU throughput, 13B and 70B on 2/4 GPUs (Fig. 11)", fig11)
	register("fig12", "Diffusion-model throughput: Ratel vs Fast-DiT (Fig. 12 / Table VI)", fig12)
	register("fig13", "Cost-effectiveness: Ratel 4x4090 vs Megatron DGX-A100 (Fig. 13 / Table VII)", fig13)
}

var ssdSweep = []int{1, 2, 3, 6, 12}

func fig10a(w io.Writer) error {
	tw := table(w)
	fmt.Fprint(tw, "system\\ssds")
	for _, n := range ssdSweep {
		fmt.Fprintf(tw, "\t%d", n)
	}
	fmt.Fprintln(tw, "\t(tokens/s at best batch)")
	for _, p := range []strategy.Policy{strategy.ZeROInfinity, strategy.Ratel} {
		fmt.Fprintf(tw, "%s", p.Name)
		for _, n := range ssdSweep {
			srv := evalServer(hw.RTX4090, 768, n)
			rep, err := itersim.BestThroughput(p, mustModel("135B"), srv, feasibleBatchGrid)
			if err != nil {
				fmt.Fprint(tw, "\t-")
				continue
			}
			fmt.Fprintf(tw, "\t%.1f", rep.TokensPerSec)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

func fig10b(w io.Writer) error {
	tw := table(w)
	fmt.Fprint(tw, "batch\\ssds")
	for _, n := range ssdSweep {
		fmt.Fprintf(tw, "\t%d", n)
	}
	fmt.Fprintln(tw, "\t(TFLOPS)")
	for _, b := range []int{32, 48, 64} {
		fmt.Fprintf(tw, "%d", b)
		for _, n := range ssdSweep {
			rep, err := itersim.Simulate(strategy.Ratel, mustModel("13B"), b, evalServer(hw.RTX4090, 768, n))
			if err != nil {
				fmt.Fprint(tw, "\t-")
				continue
			}
			fmt.Fprintf(tw, "\t%.0f", rep.TFLOPS)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

func fig11(w io.Writer) error {
	cases := []struct {
		model   string
		gpus    int
		batches []int
	}{
		{"13B", 2, []int{16, 32, 64, 128, 256}},
		{"70B", 2, []int{16, 32, 48, 64}},
		{"13B", 4, []int{32, 64, 128, 256, 512}},
		{"70B", 4, []int{32, 64, 96, 128}},
	}
	for _, c := range cases {
		fmt.Fprintf(w, "-- %s on %d GPUs --\n", c.model, c.gpus)
		tw := table(w)
		fmt.Fprint(tw, "system\\global batch")
		for _, b := range c.batches {
			fmt.Fprintf(tw, "\t%d", b)
		}
		fmt.Fprintln(tw, "\t(tokens/s)")
		srv := evalServer(hw.RTX4090, 768, 12).WithGPUs(c.gpus)
		for _, p := range []strategy.Policy{strategy.ZeROInfinity, strategy.Ratel} {
			fmt.Fprintf(tw, "%s", p.Name)
			for _, b := range c.batches {
				rep, err := itersim.SimulateMultiGPU(p, mustModel(c.model), b, srv)
				if err != nil {
					fmt.Fprint(tw, "\t-")
					continue
				}
				fmt.Fprintf(tw, "\t%.0f", rep.TokensPerSec)
			}
			fmt.Fprintln(tw)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}

func fig12(w io.Writer) error {
	tw := table(w)
	fmt.Fprintln(tw, "model\tFast-DiT(img/s)\tRatel(img/s)")
	for _, name := range []string{"DiT-0.67B", "DiT-0.90B", "DiT-1.4B", "DiT-10B", "DiT-20B", "DiT-40B"} {
		fmt.Fprintf(tw, "%s", name)
		srv := evalServer(hw.RTX4090, 768, 12)
		for _, p := range []strategy.Policy{strategy.FastDiT, strategy.Ratel} {
			rep, err := itersim.BestThroughput(p, mustModel(name), srv, feasibleBatchGrid)
			if err != nil {
				fmt.Fprint(tw, "\tOOM")
				continue
			}
			fmt.Fprintf(tw, "\t%.1f(b%d)", rep.ImagesPerSec, rep.Batch)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

func fig13(w io.Writer) error {
	base, err := cost.MegatronBaseline(mustModel("30B"), 32)
	if err != nil {
		return err
	}
	srv := evalServer(hw.RTX4090, 768, 12).WithGPUs(4)
	sweep, err := cost.RatelSweep(mustModel("30B"), srv, 64, ssdSweep)
	if err != nil {
		return err
	}
	tw := table(w)
	fmt.Fprintln(tw, "configuration\tprice($)\ttokens/s\ttok/s per $1k")
	fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%.1f\n", base.Label, base.PriceUSD, base.TokensPerSec, base.TokensPerSecPer1kUSD)
	for _, p := range sweep {
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%.1f\n", p.Label, p.PriceUSD, p.TokensPerSec, p.TokensPerSecPer1kUSD)
	}
	fmt.Fprintf(tw, "best Ratel advantage over DGX: %.2fx (paper: up to 2.17x)\n", cost.BestAdvantage(sweep, base))
	return tw.Flush()
}
