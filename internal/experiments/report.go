package experiments

import (
	"fmt"
	"io"
	"time"

	"ratel/internal/agoffload"
	"ratel/internal/data"
	"ratel/internal/engine"
	"ratel/internal/hw"
	"ratel/internal/nn"
	"ratel/internal/nvme"
	"ratel/internal/obs"
	"ratel/internal/units"
)

func init() {
	register("report", "Holistic data-movement report: per-stage bottleneck verdicts, byte-flow ledger, NVMe reconciliation", reportExperiment)
}

// reportExperiment is the observability stack end to end on a Table
// III-shaped run: a throttled array (Intel P5510 read:write ratio scaled
// 1/200, as in the overlap calibration) makes NVMe the scarce resource, and
// the report must say so — per-stage verdicts from the span timeline, the
// byte-flow ledger split by edge and purpose, ledger-vs-array
// reconciliation, latency quantiles, and measured-vs-configured bandwidth.
func reportExperiment(w io.Writer) error {
	mcfg := nn.Config{Vocab: 64, Seq: 96, Hidden: 16, Heads: 2, Layers: 4, Batch: 2, Seed: 5}
	swap := map[int]engine.Tier{
		0: engine.SwapSSD, 1: engine.SwapSSD, 2: engine.SwapSSD, 3: engine.SwapSSD,
	}
	ssd := &nvme.Config{
		ReadBW:     units.BytesPerSecond(33 << 20),
		WriteBW:    units.BytesPerSecond(19 << 20),
		StripeSize: 1 << 16,
	}
	const steps = 4

	tr := obs.NewTracer(obs.DefaultCapacity)
	reg := obs.NewRegistry()
	e, err := engine.New(engine.Config{
		Model: mcfg, GradMode: agoffload.Optimized, Devices: 3,
		Swap: swap, SSD: ssd, Tracer: tr, Metrics: reg,
	})
	if err != nil {
		return err
	}
	defer e.Close()
	loader, err := data.NewLoader(data.Progression, mcfg.Batch, mcfg.Seq, mcfg.Vocab, 42)
	if err != nil {
		return err
	}

	// Warm-up (pool spin-up, page faults), then the measured window.
	tokens, targets := loader.Next()
	if _, err := e.TrainStep(tokens, targets); err != nil {
		return err
	}
	tr.Reset()
	stats0 := e.Array().Stats()
	flows0 := e.Flows()
	for s := 0; s < steps; s++ {
		tokens, targets = loader.Next()
		if _, err := e.TrainStep(tokens, targets); err != nil {
			return err
		}
	}
	spans := tr.Spans()
	flow := e.Flows().Sub(flows0)
	stats := e.Array().Stats()

	// ---- Per-stage bottleneck verdicts ----
	// Each flight record carries the step's window on the tracer timeline;
	// the forward stage is the leading m.Forward of it, backward+optimizer
	// the rest.
	recs := e.FlightRecords()
	if len(recs) > steps {
		recs = recs[len(recs)-steps:]
	}
	fmt.Fprintf(w, "measured window: %d steps, 4 blocks on SSD, throttled array (read %v/s, write %v/s per device x3)\n\n",
		steps, units.Bytes(ssd.ReadBW), units.Bytes(ssd.WriteBW))
	tw := table(w)
	fmt.Fprintln(tw, "step\tstage\tverdict\tbound%\tstall%\tcompute\tnvme-r\tnvme-w\tadam")
	stages := func(r obs.StepRecord) []struct {
		name     string
		from, to time.Duration
	} {
		return []struct {
			name     string
			from, to time.Duration
		}{
			{"forward", r.Start, r.Start + r.Forward},
			{"bwd+opt", r.Start + r.Forward, r.End},
		}
	}
	for _, r := range recs {
		for _, st := range stages(r) {
			a := obs.Attribute(spans, st.from, st.to)
			fmt.Fprintf(tw, "%d\t%s\t%s\t%.0f%%\t%.0f%%\t%v\t%v\t%v\t%v\n",
				r.Step, st.name, a.Bound, 100*a.BoundFraction, 100*a.StallFraction(),
				a.ComputeBusy.Round(time.Microsecond), a.NVMeReadBusy.Round(time.Microsecond),
				a.NVMeWriteBusy.Round(time.Microsecond), a.AdamBusy.Round(time.Microsecond))
		}
	}
	tw.Flush()

	// ---- Byte-flow ledger: edges x purposes over the window ----
	fmt.Fprintf(w, "\nbyte flow over the window (edge x purpose)\n")
	tw = table(w)
	fmt.Fprint(tw, "edge")
	for _, p := range obs.FlowPurposes() {
		fmt.Fprintf(tw, "\t%s", p)
	}
	fmt.Fprintln(tw, "\ttotal")
	for _, edge := range obs.FlowEdges() {
		fmt.Fprintf(tw, "%s", edge)
		var rowTotal int64
		for _, p := range obs.FlowPurposes() {
			v := flow.Get(edge, p)
			rowTotal += v
			fmt.Fprintf(tw, "\t%v", units.Bytes(v))
		}
		fmt.Fprintf(tw, "\t%v\n", units.Bytes(rowTotal))
	}
	tw.Flush()

	// ---- Reconciliation: ledger NVMe rows vs the array's own counters ----
	wroteLedger := flow.Edge(obs.EdgeHostNVMeWrite)
	readLedger := flow.Edge(obs.EdgeHostNVMeRead)
	wroteArray := int64(stats.BytesWritten - stats0.BytesWritten)
	readArray := int64(stats.BytesRead - stats0.BytesRead)
	verdict := "OK"
	if wroteLedger != wroteArray || readLedger != readArray {
		verdict = "MISMATCH"
	}
	fmt.Fprintf(w, "\nreconciliation vs nvme array counters: %s\n", verdict)
	fmt.Fprintf(w, "  writes: ledger %v, array %v (%d ops)\n",
		units.Bytes(wroteLedger), units.Bytes(wroteArray), stats.WriteOps-stats0.WriteOps)
	fmt.Fprintf(w, "  reads:  ledger %v, array %v (%d ops)\n",
		units.Bytes(readLedger), units.Bytes(readArray), stats.ReadOps-stats0.ReadOps)

	// ---- Latency quantiles ----
	fmt.Fprintf(w, "\nlatency histograms (window + warm-up)\n")
	tw = table(w)
	fmt.Fprintln(tw, "metric\tcount\tp50\tp90\tp99\tmax")
	for _, name := range []string{"engine.step_wall_ns", "engine.forward_ns", "engine.backward_ns",
		"engine.optimizer_drain_ns", "nvme.read_ns", "nvme.write_ns", "pool.job_ns"} {
		h := reg.Histogram(name).Snapshot()
		fmt.Fprintf(tw, "%s\t%d\t%v\t%v\t%v\t%v\n", name, h.Count,
			time.Duration(h.P50).Round(time.Microsecond), time.Duration(h.P90).Round(time.Microsecond),
			time.Duration(h.P99).Round(time.Microsecond), time.Duration(h.Max).Round(time.Microsecond))
	}
	tw.Flush()

	// ---- Measured vs configured bandwidth ----
	// Busy time is the interval union on each NVMe lane; dividing the
	// ledger's bytes by it gives achieved bandwidth to compare against the
	// throttle ceiling (per-device rate x array width).
	from, to := obs.Window(spans)
	readBusy := obs.LaneBusy(spans, obs.LaneNVMeRead, from, to)
	writeBusy := obs.LaneBusy(spans, obs.LaneNVMeWrite, from, to)
	devs := float64(3)
	fmt.Fprintf(w, "\nachieved NVMe bandwidth vs throttle ceiling\n")
	fmt.Fprintf(w, "  (Table III device: %s, read %.1f / write %.1f GB/s; throttled ~1/200 here)\n",
		hw.IntelP5510.Name, hw.IntelP5510.ReadBW.GBpsf(), hw.IntelP5510.WriteBW.GBpsf())
	if writeBusy > 0 {
		achieved := float64(wroteLedger) / writeBusy.Seconds()
		ceiling := float64(ssd.WriteBW) * devs
		fmt.Fprintf(w, "  write %.1f MB/s of %.1f MB/s ceiling (%.0f%%)\n",
			achieved/1e6, ceiling/1e6, 100*achieved/ceiling)
	}
	if readBusy > 0 {
		achieved := float64(readLedger) / readBusy.Seconds()
		ceiling := float64(ssd.ReadBW) * devs
		fmt.Fprintf(w, "  read  %.1f MB/s of %.1f MB/s ceiling (%.0f%%)\n",
			achieved/1e6, ceiling/1e6, 100*achieved/ceiling)
	}
	return nil
}
