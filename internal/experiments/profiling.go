package experiments

import (
	"fmt"
	"io"

	"ratel/internal/hw"
	"ratel/internal/itersim"
	"ratel/internal/profile"
	"ratel/internal/strategy"
)

func init() {
	register("profiling", "Hardware-aware profiling iteration overhead (§IV-B)", profilingExperiment)
}

// profilingExperiment quantifies §IV-B's claim: the first (profiling)
// iteration costs 2-3x a steady one, which amortizes to nothing over a
// fine-tuning run of thousands of iterations.
func profilingExperiment(w io.Writer) error {
	srv := evalServer(hw.RTX4090, 768, 12)
	tw := table(w)
	fmt.Fprintln(tw, "model\tbatch\tprofiling(s)\tsteady(s)\tratio\tamortized over 1000 iters")
	for _, name := range []string{"13B", "30B", "70B"} {
		prof, err := itersim.SimulateProfiling(mustModel(name), 32, srv)
		if err != nil {
			return err
		}
		steady, err := itersim.Simulate(strategy.Ratel, mustModel(name), 32, srv)
		if err != nil {
			return err
		}
		ratio := float64(prof.Makespan) / float64(steady.Makespan)
		overhead := profile.Overhead(prof.Makespan, steady.Makespan, 1000)
		fmt.Fprintf(tw, "%s\t32\t%.1f\t%.1f\t%.2fx\t+%.2f%%\n",
			name, prof.Makespan, steady.Makespan, ratio, 100*overhead)
	}
	return tw.Flush()
}
