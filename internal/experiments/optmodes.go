package experiments

import (
	"fmt"
	"io"
	"math"

	"ratel/internal/agoffload"
	"ratel/internal/data"
	"ratel/internal/engine"
	"ratel/internal/hw"
	"ratel/internal/itersim"
	"ratel/internal/model"
	"ratel/internal/nn"
	"ratel/internal/opt"
	"ratel/internal/strategy"
	"ratel/internal/units"
)

func init() {
	register("optmodes", "Optimizer scheduling modes: simulated iteration comparison + real mini-engine exactness/convergence", optmodesExperiment)
}

// optmodesExperiment compares the optimizer scheduling modes twice over:
// the discrete-event simulator prices a paper-scale iteration under each
// agoffload schedule (the mode-comparison figure data), and the real mini
// engine runs the same fine-tune under each OptSchedule to report the
// exactness matrix — readiness bit-identical to sync, async within
// convergence tolerance at bounded staleness.
func optmodesExperiment(w io.Writer) error {
	// ---- Simulated mode comparison (13B on the evaluation server) ----
	cfg, err := model.ByName("13B")
	if err != nil {
		return err
	}
	srv := hw.EvalServer(hw.RTX4090, 768*units.GiB, 12)
	type simVariant struct {
		name string
		mode agoffload.Mode
		opts agoffload.Options
	}
	simVariants := []simVariant{
		{"serialized (ZeRO stage)", agoffload.Serialized, agoffload.Options{}},
		{"optimized (Fig. 3b)", agoffload.Optimized, agoffload.Options{}},
		{"readiness depth-2", agoffload.Readiness, agoffload.Options{Depth: 2}},
		{"readiness depth-4", agoffload.Readiness, agoffload.Options{Depth: 4}},
		{"async top-half", agoffload.AsyncTopK, agoffload.Options{}},
		{"async top-quarter", agoffload.AsyncTopK, agoffload.Options{TopK: (cfg.Layers + 2) / 4}},
	}
	fmt.Fprintf(w, "simulated iteration, %s batch 32 on the evaluation server (12 SSDs)\n", cfg.Name)
	fmt.Fprintf(w, "%-24s %10s %12s %16s\n", "schedule", "iter (s)", "opt tail (s)", "deferred params")
	var baseline units.Seconds
	for i, v := range simVariants {
		p := strategy.Ratel
		p.Name = "Ratel/" + v.mode.String()
		p.GradMode = v.mode
		p.OptSched = v.opts
		rep, err := itersim.Simulate(p, cfg, 32, srv)
		if err != nil {
			return err
		}
		if i == 0 {
			baseline = rep.Makespan
		}
		fmt.Fprintf(w, "%-24s %10.2f %12.2f %16d   (%.2fx vs serialized)\n",
			v.name, float64(rep.Makespan), float64(rep.OptimizerTail), rep.DeferredParams,
			float64(baseline)/float64(rep.Makespan))
	}

	// ---- Real mini-engine exactness/convergence matrix ----
	modelCfg := nn.Config{Vocab: 48, Seq: 12, Hidden: 16, Heads: 2, Layers: 3, Batch: 4, Seed: 12}
	const steps = 12
	type engVariant struct {
		name string
		cfg  engine.Config
	}
	engVariants := []engVariant{
		{"sync schedule", engine.Config{Model: modelCfg, GradMode: agoffload.Optimized, Devices: 2}},
		{"readiness schedule", engine.Config{Model: modelCfg, GradMode: agoffload.Optimized, Devices: 2,
			OptSchedule: opt.ScheduleReadiness}},
		{"async top-2, staleness 1", engine.Config{Model: modelCfg, GradMode: agoffload.Optimized, Devices: 2,
			OptSchedule: opt.ScheduleAsync, AsyncTopK: 2, MaxStaleness: 1}},
		{"async top-2, staleness 3", engine.Config{Model: modelCfg, GradMode: agoffload.Optimized, Devices: 2,
			OptSchedule: opt.ScheduleAsync, AsyncTopK: 2, MaxStaleness: 3}},
	}
	fmt.Fprintln(w)
	var ref []float32
	var refLoss float64
	for vi, v := range engVariants {
		e, err := engine.New(v.cfg)
		if err != nil {
			return err
		}
		loader, err := data.NewLoader(data.Progression, modelCfg.Batch, modelCfg.Seq, modelCfg.Vocab, 99)
		if err != nil {
			e.Close()
			return err
		}
		var first, last float64
		for s := 0; s < steps; s++ {
			tokens, targets := loader.Next()
			loss, err := e.TrainStep(tokens, targets)
			if err != nil {
				e.Close()
				return err
			}
			if s == 0 {
				first = loss
			}
			last = loss
		}
		if err := e.FlushAsync(); err != nil {
			e.Close()
			return err
		}
		var flat []float32
		for _, p := range e.Model().Params() {
			flat = append(flat, p.W.Data...)
		}
		e.Close()

		fmt.Fprintf(w, "%-28s loss %.4f -> %.4f", v.name, first, last)
		if vi == 0 {
			ref, refLoss = flat, last
			fmt.Fprintln(w, "  [reference]")
			continue
		}
		diff := 0
		for i := range flat {
			if flat[i] != ref[i] {
				diff++
			}
		}
		switch {
		case diff == 0:
			fmt.Fprintln(w, "  == bit-identical to sync")
		default:
			fmt.Fprintf(w, "  != %d/%d params differ, loss drift %+.2f%% (bounded staleness)\n",
				diff, len(flat), 100*(last-refLoss)/math.Abs(refLoss))
		}
	}
	fmt.Fprintf(w, "\nreadiness reorders state reads only (same updates, earlier fetches): bit-exact.\nasync defers the unimportant partition at most MaxStaleness steps: small, bounded drift.\n")
	return nil
}
