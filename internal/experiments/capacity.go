package experiments

import (
	"fmt"
	"io"

	"ratel/internal/capacity"
	"ratel/internal/hw"
	"ratel/internal/model"
	"ratel/internal/strategy"
)

func init() {
	register("fig2a", "Max trainable model size of prior systems vs main memory (Fig. 2a)", fig2a)
	register("fig6", "Max trainable model size, all systems, 4090/3090 and 4080 (Fig. 6)", fig6)
	register("fig8", "Effect of swapping activations to SSDs on trainable size (Fig. 8)", fig8)
}

func mustModel(name string) model.Config { return model.MustByName(name) }

var memSweepGiB = []int{128, 256, 384, 512, 640, 768}

func maxSizeRow(w io.Writer, p strategy.Policy, gpu hw.GPU, batch int) {
	fmt.Fprintf(w, "%s", p.Name)
	for _, mem := range memSweepGiB {
		srv := evalServer(gpu, mem, 12)
		cfg, ok := capacity.MaxModel(p, srv, batch, lmCandidates())
		if !ok {
			fmt.Fprint(w, "\t-")
			continue
		}
		fmt.Fprintf(w, "\t%s", cfg.Name)
	}
	fmt.Fprintln(w)
}

func fig2a(w io.Writer) error {
	tw := table(w)
	fmt.Fprint(tw, "system\\mainmem(GiB)")
	for _, m := range memSweepGiB {
		fmt.Fprintf(tw, "\t%d", m)
	}
	fmt.Fprintln(tw)
	for _, p := range []strategy.Policy{strategy.FlashNeuron, strategy.ColossalAI, strategy.ZeROInfinity} {
		maxSizeRow(tw, p, hw.RTX4090, 1)
	}
	return tw.Flush()
}

func fig6(w io.Writer) error {
	systems := []strategy.Policy{strategy.FlashNeuron, strategy.ColossalAI,
		strategy.ZeROInfinity, strategy.ZeROOffload, strategy.Ratel}
	for _, gpu := range []hw.GPU{hw.RTX4090, hw.RTX4080} {
		fmt.Fprintf(w, "-- %s --\n", gpu.Name)
		tw := table(w)
		fmt.Fprint(tw, "system\\mainmem(GiB)")
		for _, m := range memSweepGiB {
			fmt.Fprintf(tw, "\t%d", m)
		}
		fmt.Fprintln(tw)
		for _, p := range systems {
			maxSizeRow(tw, p, gpu, 1)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}

func fig8(w io.Writer) error {
	batches := []int{12, 24, 36, 60}
	for _, mem := range []int{128, 256} {
		fmt.Fprintf(w, "-- %d GiB main memory --\n", mem)
		tw := table(w)
		fmt.Fprint(tw, "variant\\batch")
		for _, b := range batches {
			fmt.Fprintf(tw, "\t%d", b)
		}
		fmt.Fprintln(tw)
		for _, p := range []strategy.Policy{strategy.RatelCpuAct, strategy.Ratel} {
			fmt.Fprintf(tw, "%s", p.Name)
			for _, b := range batches {
				srv := evalServer(hw.RTX4090, mem, 12)
				cfg, ok := capacity.MaxModel(p, srv, b, lmCandidates())
				if !ok {
					fmt.Fprint(tw, "\t-")
					continue
				}
				fmt.Fprintf(tw, "\t%s", cfg.Name)
			}
			fmt.Fprintln(tw)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}
