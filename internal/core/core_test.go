package core

import (
	"testing"

	"ratel/internal/agoffload"
	"ratel/internal/hw"
	"ratel/internal/nn"
	"ratel/internal/units"
)

func sessionOpts() Options {
	return Options{
		Model:    nn.Config{Vocab: 13, Seq: 6, Hidden: 8, Heads: 2, Layers: 2, Batch: 2, Seed: 5},
		GradMode: agoffload.Optimized,
		Devices:  2,
	}
}

func TestInitTrainClose(t *testing.T) {
	s, err := Init(sessionOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tokens := [][]int{{1, 2, 3, 4, 5, 6}, {2, 3, 4, 5, 6, 7}}
	targets := [][]int{{2, 3, 4, 5, 6, 7}, {3, 4, 5, 6, 7, 8}}
	var first, last float64
	for i := 0; i < 6; i++ {
		loss, err := s.TrainStep(tokens, targets)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = loss
		}
		last = loss
	}
	if last >= first {
		t.Errorf("loss did not decrease: %.4f -> %.4f", first, last)
	}
	if s.Stats().Steps != 6 {
		t.Errorf("steps = %d, want 6", s.Stats().Steps)
	}
	if s.Model() == nil {
		t.Error("nil model")
	}
}

func TestInitRunsPlanner(t *testing.T) {
	opts := sessionOpts()
	s, err := Init(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Plan().AG2M <= 0 {
		t.Error("planner did not run at Init")
	}

	opts.DisablePlanner = true
	s2, err := Init(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Plan().AG2M != 0 {
		t.Error("DisablePlanner should skip planning")
	}
}

func TestInitRejectsBadOptions(t *testing.T) {
	opts := sessionOpts()
	opts.GradMode = 99
	if _, err := Init(opts); err == nil {
		t.Error("bad gradient mode accepted")
	}
	opts = sessionOpts()
	opts.Model.Heads = 3
	if _, err := Init(opts); err == nil {
		t.Error("bad model config accepted")
	}
}

func TestPredict(t *testing.T) {
	srv := hw.EvalServer(hw.RTX4090, 768*units.GiB, 12)
	rep, err := Predict("Ratel", "13B", 32, srv)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TokensPerSec <= 0 {
		t.Error("non-positive predicted throughput")
	}
	if _, err := Predict("nope", "13B", 32, srv); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := Predict("Ratel", "999B", 32, srv); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestMaxTrainable(t *testing.T) {
	srv := hw.EvalServer(hw.RTX4090, 256*units.GiB, 12)
	cfg, ok, err := MaxTrainable("Ratel", srv, 1)
	if err != nil || !ok {
		t.Fatalf("MaxTrainable: %v, ok=%v", err, ok)
	}
	if cfg.Name != "276B" {
		t.Errorf("max trainable = %s, want 276B (Fig. 8b)", cfg.Name)
	}
	if _, _, err := MaxTrainable("nope", srv, 1); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestPlanFor(t *testing.T) {
	srv := hw.EvalServer(hw.RTX4090, 768*units.GiB, 12)
	pl, err := PlanFor("13B", 32, srv)
	if err != nil {
		t.Fatal(err)
	}
	if pl.AG2M <= 0 || pl.Predicted.Titer <= 0 {
		t.Errorf("degenerate plan: %+v", pl)
	}
	if _, err := PlanFor("999B", 32, srv); err == nil {
		t.Error("unknown model accepted")
	}
}
