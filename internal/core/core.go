// Package core is Ratel's public facade, mirroring the paper's user
// interface (Fig. 4): Init runs the hardware-aware profiling stage, Hook
// installs automatic activation management, and the optimizer is wrapped in
// active gradient offloading so `optimizer.step()` disappears from the
// user's training loop. A training step is just TrainStep.
//
// The package also exposes the analytical surface the paper's evaluation is
// built on: per-iteration prediction for any system/model/server, capacity
// solving, and the activation-swap planner.
package core

import (
	"fmt"
	"io"

	"ratel/internal/agoffload"
	"ratel/internal/capacity"
	"ratel/internal/engine"
	"ratel/internal/hw"
	"ratel/internal/itersim"
	"ratel/internal/model"
	"ratel/internal/nn"
	"ratel/internal/obs"
	"ratel/internal/opt"
	"ratel/internal/plan"
	"ratel/internal/strategy"
	"ratel/internal/units"
)

// Options configures a Ratel session.
type Options struct {
	// Model sizes the transformer to fine-tune.
	Model nn.Config
	// Adam overrides the optimizer hyperparameters (DefaultAdam if zero).
	Adam opt.AdamConfig
	// GradMode selects the active-gradient-offloading schedule; the default
	// is the optimized pipeline of Fig. 3b.
	GradMode agoffload.Mode
	// OptSchedule selects the optimizer scheduling mode: sync (default),
	// readiness (state reads issued at gradient arrival, bit-identical),
	// or async (importance-partitioned deferred Adam with bounded
	// staleness). AsyncTopK, MaxStaleness and ImportanceEvery tune the
	// async mode; zero values take the engine defaults (half the groups,
	// 1 step, every step).
	OptSchedule     opt.ScheduleMode
	AsyncTopK       int
	MaxStaleness    int
	ImportanceEvery int
	// Devices is the NVMe array width (1 if zero); Dir backs it with files
	// when non-empty.
	Devices int
	Dir     string
	// Sched enables the NVMe transfer scheduler: per-device duplex queues
	// with class-priority dispatch and coalescing instead of FCFS.
	// SchedClasses overrides the priority order as a comma-separated
	// permutation of fetch,opt-read,writeback,write-behind. The scheduler
	// reorders I/O only, never data — trajectories are bit-identical.
	Sched        bool
	SchedClasses string
	// AdaptiveDepth lets a per-window feedback loop choose the effective
	// activation pipeline depth between 1 and PipelineDepth from the step's
	// stall profile, instead of a hand-tuned static knob.
	AdaptiveDepth bool
	// HostMemory caps pinned host staging (0 = unlimited).
	HostMemory units.Bytes
	// Rates describes the hardware the activation planner should optimize
	// for; zero values fall back to the paper's evaluation server.
	Rates engine.HWRates
	// DisablePlanner skips profiling+planning (everything recomputed).
	DisablePlanner bool
	// LRSchedule, when non-nil, drives the learning rate per optimizer step
	// (e.g. opt.WarmupCosine).
	LRSchedule opt.Schedule
	// LossScale (> 0) enables static mixed-precision loss scaling;
	// DynamicLossScale adds overflow-driven adjustment (Serialized mode
	// only).
	LossScale        float64
	DynamicLossScale bool
	// Tracer, when non-nil, records wall-clock spans for every engine stage
	// (export with trace.WriteEngineJSON). Metrics, when non-nil, receives
	// per-step instrument updates (export with Registry.PublishExpvar).
	// Neither affects computed values.
	Tracer  *obs.Tracer
	Metrics *obs.Registry
}

// Session is an initialized Ratel training context.
type Session struct {
	eng  *engine.Engine
	plan plan.Plan
	opts Options
}

// Init builds the engine, runs the hardware-aware profiling stage on one
// synthetic batch, plans activation swapping with Algorithm 1, and installs
// the hooks (the Ratel_init + Ratel_hook + Ratel_Optimizer sequence of
// Fig. 4).
func Init(opts Options) (*Session, error) {
	if opts.GradMode != agoffload.Serialized && opts.GradMode != agoffload.Naive &&
		opts.GradMode != agoffload.Optimized {
		return nil, fmt.Errorf("core: unknown gradient mode %v", opts.GradMode)
	}
	eng, err := engine.New(engine.Config{
		Model:            opts.Model,
		Adam:             opts.Adam,
		GradMode:         opts.GradMode,
		OptSchedule:      opts.OptSchedule,
		AsyncTopK:        opts.AsyncTopK,
		MaxStaleness:     opts.MaxStaleness,
		ImportanceEvery:  opts.ImportanceEvery,
		Devices:          opts.Devices,
		Dir:              opts.Dir,
		Sched:            opts.Sched,
		SchedClasses:     opts.SchedClasses,
		AdaptiveDepth:    opts.AdaptiveDepth,
		HostMemory:       opts.HostMemory,
		LRSchedule:       opts.LRSchedule,
		LossScale:        opts.LossScale,
		DynamicLossScale: opts.DynamicLossScale,
		Tracer:           opts.Tracer,
		Metrics:          opts.Metrics,
	})
	if err != nil {
		return nil, err
	}
	s := &Session{eng: eng, opts: opts}
	if opts.DisablePlanner {
		return s, nil
	}

	rates := opts.Rates
	if rates.THPG == 0 {
		srv := hw.EvalServer(hw.RTX4090, 768*units.GiB, max(opts.Devices, 1))
		rates = engine.HWRates{
			THPG:     srv.GPU.PeakFP16,
			BWG:      srv.Link.GPUPerDirection,
			BWS2M:    srv.BWS2M(),
			BWM2S:    srv.BWM2S(),
			MemAvail: 64 * units.GiB,
		}
	}
	tokens := make([][]int, opts.Model.Batch)
	for i := range tokens {
		tokens[i] = make([]int, opts.Model.Seq)
	}
	pl, swap, err := eng.ProfileAndPlan(tokens, rates)
	if err != nil {
		eng.Close()
		return nil, fmt.Errorf("core: profiling stage: %w", err)
	}
	s.plan = pl
	eng.SetSwap(swap)
	return s, nil
}

// TrainStep runs one synchronous fine-tuning iteration: forward, backward
// with planned activation swapping/recomputation, and the hidden optimizer.
func (s *Session) TrainStep(tokens, targets [][]int) (float64, error) {
	return s.eng.TrainStep(tokens, targets)
}

// TrainStepAccum runs one optimizer step over several micro-batches
// (gradient accumulation), returning the mean loss.
func (s *Session) TrainStepAccum(micro []engine.Batch) (float64, error) {
	return s.eng.TrainStepAccum(micro)
}

// Generate continues a prompt greedily for steps tokens with the fine-tuned
// model (inference mode: dropout off).
func (s *Session) Generate(prompt []int, steps int) ([]int, error) {
	return s.eng.Model().Generate(prompt, steps)
}

// Plan returns the activation-swapping plan chosen at Init.
func (s *Session) Plan() plan.Plan { return s.plan }

// Model exposes the fine-tuned model (weights are the fp16 working copies;
// fp32 masters live in the NVMe store).
func (s *Session) Model() *nn.Model { return s.eng.Model() }

// Stats reports the session's data-movement counters.
func (s *Session) Stats() engine.Stats { return s.eng.Stats() }

// LastStepMetrics reports the wall-clock profile of the most recent
// optimizer step (zero value before the first TrainStep).
func (s *Session) LastStepMetrics() engine.StepMetrics { return s.eng.LastStepMetrics() }

// Flows reports the cumulative byte-flow ledger (every edge x purpose).
func (s *Session) Flows() obs.FlowSnapshot { return s.eng.Flows() }

// FlightRecords returns the engine's crash-ring of recent step records,
// oldest first — the payload of a flight-recorder dump.
func (s *Session) FlightRecords() []obs.StepRecord { return s.eng.FlightRecords() }

// FlushAsync joins every in-flight deferred optimizer update (async
// scheduling only; a no-op otherwise). Call it before reading final
// weights or traffic totals so they reflect all staged gradients.
func (s *Session) FlushAsync() error { return s.eng.FlushAsync() }

// SaveCheckpoint writes the session's full training state (fp32 masters and
// optimizer moments) to w; restoring and continuing is bit-identical to an
// uninterrupted run.
func (s *Session) SaveCheckpoint(w io.Writer) error { return s.eng.SaveCheckpoint(w) }

// LoadCheckpoint restores training state saved by SaveCheckpoint.
func (s *Session) LoadCheckpoint(r io.Reader) error { return s.eng.LoadCheckpoint(r) }

// Close releases the NVMe array.
func (s *Session) Close() error { return s.eng.Close() }

// --- Analytical surface ---

// Predict simulates one training iteration of a named system fine-tuning a
// catalog model on a server and reports stage times and throughput.
func Predict(policyName, modelName string, batch int, srv hw.Server) (itersim.Report, error) {
	p, err := strategy.ByName(policyName)
	if err != nil {
		return itersim.Report{}, err
	}
	cfg, err := model.ByName(modelName)
	if err != nil {
		return itersim.Report{}, err
	}
	return itersim.Simulate(p, cfg, batch, srv)
}

// MaxTrainable reports the largest catalog model the named system can
// fine-tune on the server at the given batch size.
func MaxTrainable(policyName string, srv hw.Server, batch int) (model.Config, bool, error) {
	p, err := strategy.ByName(policyName)
	if err != nil {
		return model.Config{}, false, err
	}
	candidates := append(append([]model.Config{}, model.SmallLMs...), model.TableIV...)
	cfg, ok := capacity.MaxModel(p, srv, batch, candidates)
	return cfg, ok, nil
}

// PlanFor runs the holistic traffic-aware planner for Ratel fine-tuning a
// catalog model on a server and returns the swap decision and predicted
// iteration time.
func PlanFor(modelName string, batch int, srv hw.Server) (plan.Plan, error) {
	cfg, err := model.ByName(modelName)
	if err != nil {
		return plan.Plan{}, err
	}
	return plan.Optimize(capacity.PlannerProfile(strategy.Ratel, cfg, batch, srv))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
