package capacity

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"ratel/internal/hw"
	"ratel/internal/model"
	"ratel/internal/strategy"
	"ratel/internal/units"
)

func candidates() []model.Config {
	return append(append([]model.Config{}, model.SmallLMs...), model.TableIV...)
}

func srv4090(memGiB units.Bytes) hw.Server {
	return hw.EvalServer(hw.RTX4090, memGiB*units.GiB, 12)
}

func maxName(t *testing.T, p strategy.Policy, srv hw.Server, batch int) string {
	t.Helper()
	c, ok := MaxModel(p, srv, batch, candidates())
	if !ok {
		return "-"
	}
	return c.Name
}

// TestFig6aHeadlines checks the paper's headline capacities on the RTX 4090
// (Fig. 6a, §I, §V-B).
func TestFig6aHeadlines(t *testing.T) {
	cases := []struct {
		pol  strategy.Policy
		mem  units.Bytes
		want string
	}{
		{strategy.Ratel, 768, "276B"},        // "fine-tuning of a 276B model under 768 GB"
		{strategy.Ratel, 256, "276B"},        // Fig. 8b top end
		{strategy.Ratel, 128, "135B"},        // Fig. 8a top end
		{strategy.ZeROInfinity, 768, "135B"}, // "2.04x larger than ZeRO-Infinity"
		{strategy.FlashNeuron, 768, "1.3B"},  // "FlashNeuron can only fine-tune a 1.55B model"
	}
	for _, c := range cases {
		if got := maxName(t, c.pol, srv4090(c.mem), 1); got != c.want {
			t.Errorf("%s @ %d GiB: max model = %s, want %s", c.pol.Name, c.mem, got, c.want)
		}
	}
}

// TestFig6b4080 checks the abstract's claim: Ratel trains the 175B model on
// an RTX 4080 with 256 GiB main memory, and the 276B model does not fit.
func TestFig6b4080(t *testing.T) {
	srv := hw.EvalServer(hw.RTX4080, 256*units.GiB, 12)
	if got := maxName(t, strategy.Ratel, srv, 1); got != "175B" {
		t.Errorf("Ratel on 4080/256GiB: max model = %s, want 175B", got)
	}
	if err := Check(strategy.Ratel, model.MustByName("276B"), 1, srv); err == nil {
		t.Error("276B should not fit a 16 GB RTX 4080")
	}
}

// Test412BIsGPUBound: the 412B model fails on the 4090 even with maximal
// main memory — the per-layer pipeline working set exceeds device memory
// (why Fig. 6a tops out at 276B).
func Test412BIsGPUBound(t *testing.T) {
	err := Check(strategy.Ratel, model.MustByName("412B"), 1, srv4090(768))
	if err == nil {
		t.Fatal("412B should fail on a 24 GB GPU")
	}
	if !strings.Contains(err.Error(), "GPU") {
		t.Errorf("412B failure should name the GPU, got: %v", err)
	}
}

// TestOrderingAcrossSystems: for every memory size, Ratel >= ZeRO-Infinity
// >= ZeRO-Offload and Colossal-AI >= FlashNeuron in max trainable params
// (the Fig. 2a / Fig. 6 ordering).
func TestOrderingAcrossSystems(t *testing.T) {
	for _, mem := range []units.Bytes{128, 256, 384, 512, 640, 768} {
		srv := srv4090(mem)
		get := func(p strategy.Policy) int64 {
			c, ok := MaxModel(p, srv, 1, candidates())
			if !ok {
				return 0
			}
			return c.Params()
		}
		ratel, zi, zo, col, fn := get(strategy.Ratel), get(strategy.ZeROInfinity),
			get(strategy.ZeROOffload), get(strategy.ColossalAI), get(strategy.FlashNeuron)
		if !(ratel >= zi && zi >= zo && col >= fn) {
			t.Errorf("mem %d GiB: ordering violated: Ratel %d, ZI %d, ZO %d, Col %d, FN %d",
				mem, ratel, zi, zo, col, fn)
		}
	}
}

// TestFig8CpuActGap: swapping activations to SSD enlarges the trainable
// model 2x-5x with 128 GiB main memory (Fig. 8a).
func TestFig8CpuActGap(t *testing.T) {
	srv := srv4090(128)
	for _, b := range []int{12, 24, 36, 60} {
		full, ok1 := MaxModel(strategy.Ratel, srv, b, candidates())
		host, ok2 := MaxModel(strategy.RatelCpuAct, srv, b, candidates())
		if !ok1 || !ok2 {
			t.Fatalf("batch %d: no feasible model (ratel %v, cpuact %v)", b, ok1, ok2)
		}
		ratio := float64(full.Params()) / float64(host.Params())
		if ratio < 1.5 || ratio > 6 {
			t.Errorf("batch %d: Ratel/CpuAct size ratio = %.1fx (%s vs %s), want 2x-5x",
				b, ratio, full.Name, host.Name)
		}
	}
}

// TestFig8LargeBatchConverges: with 256 GiB and batch 60 the two variants'
// maxima come close (the paper observes them equal), because the GPU
// working set, not main memory, binds.
func TestFig8LargeBatchConverges(t *testing.T) {
	srv := srv4090(256)
	full, _ := MaxModel(strategy.Ratel, srv, 60, candidates())
	host, _ := MaxModel(strategy.RatelCpuAct, srv, 60, candidates())
	ratio := float64(full.Params()) / float64(host.Params())
	if ratio > 1.5 {
		t.Errorf("256 GiB / batch 60: ratio %.2fx (%s vs %s), want close to 1x",
			ratio, full.Name, host.Name)
	}
}

func TestGPUDirectGate(t *testing.T) {
	g10 := strategy.G10
	g10.AssumeGPUDirect = false
	if err := Check(g10, model.MustByName("13B"), 1, srv4090(768)); err == nil {
		t.Error("G10 without GPUDirect should fail on a consumer GPU")
	}
	// With the paper's simulation assumption it runs.
	if err := Check(strategy.G10, model.MustByName("13B"), 1, srv4090(768)); err != nil {
		t.Errorf("G10 with assumed GPUDirect: %v", err)
	}
	// And on an A100 (which has GPUDirect) it runs regardless.
	a100 := hw.EvalServer(hw.A100_80G, 768*units.GiB, 12)
	if err := Check(g10, model.MustByName("13B"), 1, a100); err != nil {
		t.Errorf("G10 on A100: %v", err)
	}
}

func TestCheckErrors(t *testing.T) {
	srv := srv4090(768)
	cfg := model.MustByName("13B")
	if err := Check(strategy.Ratel, cfg, 0, srv); err == nil {
		t.Error("batch 0 accepted")
	}
	bad := srv
	bad.GPUCount = 0
	if err := Check(strategy.Ratel, cfg, 1, bad); err == nil {
		t.Error("invalid server accepted")
	}
	if err := Check(strategy.Policy{}, cfg, 1, srv); err == nil {
		t.Error("invalid policy accepted")
	}
}

func TestSSDCapacityBinds(t *testing.T) {
	// One SSD (3.84 TB) cannot hold the 276B model's 4.4 TB of states.
	srv := srv4090(768).WithSSDs(1)
	err := Check(strategy.Ratel, model.MustByName("276B"), 1, srv)
	if err == nil || !strings.Contains(err.Error(), "SSD") {
		t.Errorf("276B on 1 SSD = %v, want SSD capacity error", err)
	}
	// Twelve SSDs hold it easily.
	if err := Check(strategy.Ratel, model.MustByName("276B"), 1, srv4090(768)); err != nil {
		t.Errorf("276B on 12 SSDs: %v", err)
	}
}

func TestMaxBatch(t *testing.T) {
	grid := []int{8, 16, 24, 32, 48, 64}
	b, ok := MaxBatch(strategy.Ratel, model.MustByName("70B"), srv4090(512), grid)
	if !ok {
		t.Fatal("no feasible batch for 70B")
	}
	if b < 32 {
		t.Errorf("Ratel 70B max batch = %d, want >= 32 (Table V)", b)
	}
	// An infeasible combination reports not-found.
	if _, ok := MaxBatch(strategy.FlashNeuron, model.MustByName("70B"), srv4090(512), grid); ok {
		t.Error("FlashNeuron should not train 70B at any batch")
	}
}

func TestMemAvailForActivations(t *testing.T) {
	cfg := model.MustByName("13B")
	avail := MemAvailForActivations(strategy.Ratel, cfg, srv4090(256))
	if avail <= 0 || avail >= 256*units.GiB {
		t.Errorf("MemAvail = %v, want in (0, 256 GiB)", avail)
	}
	// A model whose staging exceeds memory leaves nothing.
	huge := model.MustByName("412B")
	if got := MemAvailForActivations(strategy.Ratel, huge, srv4090(128)); got != 0 {
		t.Errorf("MemAvail for oversized staging = %v, want 0", got)
	}
}

func TestPlannerProfileAppliesDeratings(t *testing.T) {
	cfg := model.MustByName("13B")
	srv := srv4090(768)
	full := PlannerProfile(strategy.Ratel, cfg, 32, srv)
	derated := PlannerProfile(strategy.ZeROInfinity, cfg, 32, srv)
	if derated.BWG >= full.BWG {
		t.Error("ZeRO-Infinity link derating not applied")
	}
	if derated.BWS2M >= full.BWS2M {
		t.Error("ZeRO-Infinity SSD derating not applied")
	}
}

func TestRequirementsScaleWithBatch(t *testing.T) {
	cfg := model.MustByName("13B")
	srv := srv4090(768)
	small := Compute(strategy.ZeROInfinity, cfg, 8, srv)
	large := Compute(strategy.ZeROInfinity, cfg, 64, srv)
	if large.Host <= small.Host {
		t.Error("host activation requirement should grow with batch")
	}
	if large.GPU <= small.GPU {
		t.Error("GPU working set should grow with batch")
	}
}

func TestTensorParallelShardsStates(t *testing.T) {
	cfg := model.MustByName("30B")
	dgx := hw.DGXA100()
	if err := Check(strategy.Megatron, cfg, 8, dgx); err != nil {
		t.Errorf("Megatron 30B on DGX-A100: %v (the paper fine-tunes it)", err)
	}
	// The 175B model exceeds even 8x80 GB without offloading.
	if err := Check(strategy.Megatron, model.MustByName("175B"), 8, dgx); err == nil {
		t.Error("Megatron 175B on DGX should not fit (motivates Fig. 13)")
	}
}

// TestMaxModelMonotoneInMemory: adding main memory never shrinks any
// system's maximum trainable model (fuzzed over systems and memory pairs).
func TestMaxModelMonotoneInMemory(t *testing.T) {
	pols := []strategy.Policy{strategy.Ratel, strategy.RatelCpuAct,
		strategy.ZeROInfinity, strategy.ZeROOffload, strategy.ColossalAI, strategy.FlashNeuron}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := pols[rng.Intn(len(pols))]
		m1 := units.Bytes(64+rng.Intn(700)) * units.GiB
		m2 := m1 + units.Bytes(1+rng.Intn(300))*units.GiB
		batch := 1 << rng.Intn(6)
		size := func(mem units.Bytes) int64 {
			c, ok := MaxModel(p, hw.EvalServer(hw.RTX4090, mem, 12), batch, candidates())
			if !ok {
				return 0
			}
			return c.Params()
		}
		return size(m2) >= size(m1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestMaxModelMonotoneInBatch: a larger batch never enlarges the maximum
// trainable model.
func TestMaxModelMonotoneInBatch(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b1 := 1 + rng.Intn(32)
		b2 := b1 + 1 + rng.Intn(64)
		srv := hw.EvalServer(hw.RTX4090, units.Bytes(128+rng.Intn(640))*units.GiB, 12)
		size := func(b int) int64 {
			c, ok := MaxModel(strategy.Ratel, srv, b, candidates())
			if !ok {
				return 0
			}
			return c.Params()
		}
		return size(b2) <= size(b1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestExplain(t *testing.T) {
	out := Explain(strategy.Ratel, model.MustByName("13B"), 32, srv4090(768))
	for _, want := range []string{"GPU", "host", "SSD", "ok"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
	over := Explain(strategy.Ratel, model.MustByName("412B"), 1, srv4090(768))
	if !strings.Contains(over, "EXCEEDED") {
		t.Errorf("Explain for infeasible config missing EXCEEDED:\n%s", over)
	}
}
