// Package capacity decides whether a (policy, model, batch, server)
// combination fits in the machine, and searches for the maximum trainable
// model size and batch size. It implements the memory model behind the
// paper's Figs. 2a, 6 and 8 and Table V.
//
// Each policy's requirements decompose into three budgets:
//
//	GPU    — resident model states (if any) + parameter pipeline buffers +
//	         gradient bucket + activation working set + reserved overhead,
//	         within (1 - workspace-fraction) of device memory.
//	Host   — resident model states (if any) + pinned staging pools +
//	         host-held activations.
//	SSD    — model states (if offloaded) + spilled activations.
//
// Calibration anchors (DESIGN.md §3): FlashNeuron tops out near 1.5B on a
// 24 GB GPU; ZeRO-Infinity reaches 135B with 768 GiB; Ratel reaches 135B
// with 128 GiB, 276B with 256 GiB, and is GPU-bound below 412B; the 276B
// model does not fit a 16 GB RTX 4080, the 175B model does.
package capacity

import (
	"fmt"

	"ratel/internal/hw"
	"ratel/internal/model"
	"ratel/internal/plan"
	"ratel/internal/strategy"
	"ratel/internal/units"
)

// Requirements is the per-budget footprint of a configuration.
type Requirements struct {
	GPU  units.Bytes
	Host units.Bytes
	SSD  units.Bytes
}

// zeroInfinityHostBytesPerParam models DeepSpeed's pinned fp32 gradient
// staging and bounce pools (~6 bytes/param), which cap ZeRO-Infinity at
// ~135B under 768 GiB (Fig. 6a).
const zeroInfinityHostBytesPerParam = 6

// hostStateBytesPerParam is the resident footprint of host-homed model
// states (P32 + OS32 + G16: 14 bytes/param; the P16 working copy streams).
const hostStateBytesPerParam = 14

// checkmateSolverOverhead is the host memory Checkmate's MILP solver pins
// for the activation graph and solver state (see hostActBytes).
const checkmateSolverOverhead = 70 * units.GiB

// Compute derives the budgets a configuration needs.
func Compute(p strategy.Policy, cfg model.Config, batch int, srv hw.Server) Requirements {
	params := cfg.Params()
	if p.TensorParallel && srv.GPUCount > 1 {
		params = params / int64(srv.GPUCount)
	}
	var r Requirements

	// --- GPU budget ---
	largest := cfg.LargestLayerParamBytesFP16()
	pipeline := units.Bytes(float64(largest) * (hw.GPUPipelineDepth + hw.GPUGradBucketFraction))
	switch p.States {
	case strategy.StatesGPU:
		r.GPU = model.ModelStateBytes(params)
	default:
		r.GPU = pipeline
	}
	switch p.Act {
	case strategy.ActAllOnGPU:
		if p.TensorParallel && srv.GPUCount > 1 {
			// Megatron with sequence parallelism and selective
			// recomputation keeps only the sharded boundary activations
			// plus a working block resident.
			r.GPU += (cfg.AinterBlock(batch) + cfg.ResidentActWorkingSet(batch)) / units.Bytes(srv.GPUCount)
		} else {
			r.GPU += cfg.Aall(batch)
		}
	case strategy.ActKeepGPU:
		r.GPU += cfg.AinterBlock(batch) + cfg.ResidentActWorkingSet(batch)
	case strategy.ActInterBlockHost, strategy.ActCapuchin, strategy.ActCheckmate:
		// Recomputation-based systems hold a block's activations while
		// recomputing.
		r.GPU += cfg.ResidentActWorkingSet(batch)
	default:
		r.GPU += cfg.GPUActWorkingSet(batch)
	}
	r.GPU += hw.GPUReservedBytes

	// --- Host budget ---
	switch p.States {
	case strategy.StatesHost:
		r.Host = units.Bytes(hostStateBytesPerParam * params)
	case strategy.StatesSSD:
		if isRatelFamily(p) {
			r.Host = units.Bytes(hw.RatelHostBytesPerParam * float64(params))
		} else {
			// ZeRO-Infinity-style pinned staging.
			r.Host = units.Bytes(zeroInfinityHostBytesPerParam * params)
		}
	}
	r.Host += hw.RatelHostBaseBytes
	r.Host += hostActBytes(p, cfg, batch, srv)

	// --- SSD budget ---
	if p.States == strategy.StatesSSD {
		r.SSD += model.ModelStateBytes(params)
	}
	switch p.Act {
	case strategy.ActAllToSSD, strategy.ActAllToSSDNoStates:
		r.SSD += cfg.Aall(batch)
	case strategy.ActPlanner:
		// Worst case: everything the planner may spill.
		r.SSD += cfg.Aall(batch)
	}
	return r
}

// hostActBytes is the activation footprint a policy pins in main memory.
func hostActBytes(p strategy.Policy, cfg model.Config, batch int, srv hw.Server) units.Bytes {
	switch p.Act {
	case strategy.ActInterBlockHost:
		return cfg.AinterBlock(batch)
	case strategy.ActPlannerHostOnly:
		// The host-only planner needs at least the inter-block floor in
		// main memory; anything beyond that it can trade for recomputation.
		return cfg.AinterBlock(batch)
	case strategy.ActCapuchin:
		return capuchinSwapBytes(cfg, batch, srv)
	case strategy.ActCheckmate:
		// Checkmate adapts its swap set to the memory budget, but its MILP
		// solver materializes the activation graph and solver state in host
		// memory — a large flat overhead that makes it fail outright on the
		// 128 GiB configuration of Table V while Capuchin survives.
		return cfg.AinterBlock(batch) + checkmateSolverOverhead
	case strategy.ActAllToSSD, strategy.ActAllToSSDNoStates, strategy.ActPlanner:
		// Pass-through staging only (already in the base bytes).
		return 0
	default:
		return 0
	}
}

// capuchinSwapBytes is Capuchin's swap set: layers whose recomputation time
// exceeds their GPU<->host transfer time (it ignores SSD and model-state
// traffic, §IV-D), i.e. OB > THP_G / BW_G.
func capuchinSwapBytes(cfg model.Config, batch int, srv hw.Server) units.Bytes {
	threshold := float64(srv.GPU.PeakFP16) / float64(srv.Link.GPUPerDirection)
	var swap units.Bytes
	for _, l := range cfg.LayerProfiles(batch) {
		if l.Boundary || l.OffloadingBenefit() > threshold {
			swap += l.ActBytes
		}
	}
	return swap
}

// Check reports nil when the configuration fits, or an error naming the
// binding resource.
func Check(p strategy.Policy, cfg model.Config, batch int, srv hw.Server) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	if err := srv.Validate(); err != nil {
		return err
	}
	if batch < 1 {
		return fmt.Errorf("capacity: batch %d", batch)
	}
	if p.RequiresGPUDirect && !srv.GPU.HasGPUDirect && !p.AssumeGPUDirect {
		return fmt.Errorf("capacity: %s requires GPUDirect, which %s lacks (§III-C)", p.Name, srv.GPU.Name)
	}
	r := Compute(p, cfg, batch, srv)
	gpuBudget := units.Bytes(float64(srv.GPU.Memory) * (1 - hw.GPUWorkspaceFraction))
	if r.GPU > gpuBudget {
		return fmt.Errorf("capacity: %s/%s batch %d needs %v GPU memory, budget %v on %s",
			p.Name, cfg.Name, batch, r.GPU, gpuBudget, srv.GPU.Name)
	}
	if r.Host > srv.MainMemory {
		return fmt.Errorf("capacity: %s/%s batch %d needs %v main memory, have %v",
			p.Name, cfg.Name, batch, r.Host, srv.MainMemory)
	}
	if cap := srv.SSDCapacity(); r.SSD > cap {
		return fmt.Errorf("capacity: %s/%s batch %d needs %v SSD capacity, have %v",
			p.Name, cfg.Name, batch, r.SSD, cap)
	}
	return nil
}

// Explain renders the configuration's per-budget requirements against the
// server's capacities, for diagnostics and the ratelplan CLI.
func Explain(p strategy.Policy, cfg model.Config, batch int, srv hw.Server) string {
	r := Compute(p, cfg, batch, srv)
	gpuBudget := units.Bytes(float64(srv.GPU.Memory) * (1 - hw.GPUWorkspaceFraction))
	verdict := func(need, have units.Bytes) string {
		if need <= have {
			return "ok"
		}
		return "EXCEEDED"
	}
	return fmt.Sprintf(
		"%s fine-tuning %s at batch %d:\n"+
			"  GPU  need %v of %v budget (%s)\n"+
			"  host need %v of %v (%s)\n"+
			"  SSD  need %v of %v (%s)\n",
		p.Name, cfg.Name, batch,
		r.GPU, gpuBudget, verdict(r.GPU, gpuBudget),
		r.Host, srv.MainMemory, verdict(r.Host, srv.MainMemory),
		r.SSD, srv.SSDCapacity(), verdict(r.SSD, srv.SSDCapacity()))
}

// MaxModel returns the largest candidate (by parameter count) the policy
// can train, and false when none fits.
func MaxModel(p strategy.Policy, srv hw.Server, batch int, candidates []model.Config) (model.Config, bool) {
	var best model.Config
	found := false
	for _, c := range candidates {
		if Check(p, c, batch, srv) != nil {
			continue
		}
		if !found || c.Params() > best.Params() {
			best = c
			found = true
		}
	}
	return best, found
}

// MaxBatch returns the largest batch in the grid the policy can train the
// model at, and false when none fits.
func MaxBatch(p strategy.Policy, cfg model.Config, srv hw.Server, grid []int) (int, bool) {
	best, found := 0, false
	for _, b := range grid {
		if Check(p, cfg, b, srv) != nil {
			continue
		}
		if b > best {
			best = b
			found = true
		}
	}
	return best, found
}

// MemAvailForActivations is MEMavail_M (§IV-B): the main memory left for
// activations after the policy's fixed footprint, used to parameterize the
// planner.
func MemAvailForActivations(p strategy.Policy, cfg model.Config, srv hw.Server) units.Bytes {
	r := Compute(p, cfg, 1, srv)
	fixed := r.Host - hostActBytes(p, cfg, 1, srv)
	avail := srv.MainMemory - fixed
	if avail < 0 {
		avail = 0
	}
	return avail
}

// PlannerProfile assembles the plan.Profile for a policy on a server,
// applying the policy's efficiency deratings.
func PlannerProfile(p strategy.Policy, cfg model.Config, batch int, srv hw.Server) plan.Profile {
	pr := plan.FromModel(cfg, srv, batch, MemAvailForActivations(p, cfg, srv))
	pr.THPG = units.FLOPsPerSecond(float64(pr.THPG) * p.ComputeEff)
	pr.BWG = units.BytesPerSecond(float64(pr.BWG) * p.LinkEff)
	pr.BWS2M = units.BytesPerSecond(float64(pr.BWS2M) * p.SSDEff)
	pr.BWM2S = units.BytesPerSecond(float64(pr.BWM2S) * p.SSDEff)
	return pr
}

func isRatelFamily(p strategy.Policy) bool {
	switch p.Act {
	case strategy.ActPlanner, strategy.ActPlannerHostOnly:
		return true
	}
	switch p.Name {
	case "Ratel+DS", "Ratel+Cap", "Ratel+G10", "Ratel+CM":
		return true
	}
	return false
}
