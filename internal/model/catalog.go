package model

import "fmt"

// DefaultSeqLen and DefaultVocab are the paper's workload constants (§V-A).
const (
	DefaultSeqLen = 1024
	DefaultVocab  = 50257
)

// lm builds a Table IV decoder-only config.
func lm(name string, layers, heads, hidden int) Config {
	return Config{Name: name, Kind: DecoderLM, Layers: layers, Heads: heads,
		Hidden: hidden, SeqLen: DefaultSeqLen, Vocab: DefaultVocab}
}

// dit builds a Table VI diffusion-transformer config. 512×512 images with
// an 8× VAE and patch size 2 give 64×64/4 = 1024 patch tokens.
func dit(name string, layers, heads, hidden int) Config {
	return Config{Name: name, Kind: DiT, Layers: layers, Heads: heads,
		Hidden: hidden, SeqLen: 1024}
}

// SmallLMs extends the catalog below the 6B entry with GPT-style sizes, so
// capacity experiments can resolve the maximum trainable size of systems
// that keep model states on the GPU (FlashNeuron tops out near 1.55B on an
// RTX 4090, §III-A).
var SmallLMs = []Config{
	lm("0.35B", 24, 16, 1024),
	lm("0.76B", 24, 16, 1536),
	lm("1.3B", 24, 32, 2048),
	lm("2.7B", 32, 32, 2560),
}

// TableIV lists the decoder-only LLMs evaluated in the paper.
var TableIV = []Config{
	lm("6B", 28, 32, 4096),
	lm("13B", 40, 40, 5120),
	lm("30B", 48, 56, 7168),
	lm("70B", 80, 64, 8192),
	lm("135B", 88, 88, 11264),
	lm("175B", 96, 96, 12288),
	lm("276B", 112, 112, 14336),
	lm("412B", 128, 128, 16384),
}

// TableVI lists the DiT diffusion models of Fig. 12.
var TableVI = []Config{
	dit("DiT-0.67B", 28, 16, 1152),
	dit("DiT-0.90B", 30, 16, 1280),
	dit("DiT-1.4B", 32, 16, 1536),
	dit("DiT-10B", 28, 32, 4096),
	dit("DiT-20B", 40, 40, 5120),
	dit("DiT-40B", 48, 56, 7168),
}

// ByName returns the catalog config with the given name.
func ByName(name string) (Config, error) {
	for _, list := range [][]Config{SmallLMs, TableIV, TableVI} {
		for _, c := range list {
			if c.Name == name {
				return c, nil
			}
		}
	}
	return Config{}, fmt.Errorf("model: unknown config %q", name)
}

// MustByName is ByName for static experiment tables; it panics on unknown
// names, which indicates a bug in the experiment definition itself.
func MustByName(name string) Config {
	c, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return c
}
