// Package model implements the paper's quantitative accounting of LLM
// fine-tuning: parameter counts, activation footprints, FLOP counts and the
// tensor lifecycle of Table II, for the decoder-only language models of
// Table IV and the DiT diffusion models of Table VI.
//
// Calibration (verified by tests against the paper's §III numbers):
//
//   - a transformer block saves ≈34·s·b·h bytes of fp16 activations, of
//     which 2·s·b·h is the inter-block boundary activation; for the 13B
//     model at batch 32 this yields ≈213 GiB total and ≈12.5 GiB inter-block
//     (Fig. 1 / §III-B),
//   - forward FLOPs per block ≈ 24·s·b·h² + 4·b·s²·h, so a 13B forward pass
//     at batch 32 is ≈870 TFLOP, ≈5.8 s at the RTX 4090's measured peak
//     (Fig. 1c),
//   - model states occupy 16 bytes/param (Table II), so a 175B model needs
//     ≈2.6 TB of persistent state plus activations (§I).
package model

import (
	"fmt"

	"ratel/internal/units"
)

// Kind selects the model family.
type Kind int

// Model families evaluated in the paper.
const (
	// DecoderLM is a GPT-style decoder-only language model (Table IV).
	DecoderLM Kind = iota
	// DiT is a diffusion transformer (Table VI), DiT-XL/2-style with
	// adaLN-Zero conditioning.
	DiT
)

// String names the model family.
func (k Kind) String() string {
	switch k {
	case DecoderLM:
		return "decoder-lm"
	case DiT:
		return "dit"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Config describes one model from Table IV or Table VI.
type Config struct {
	Name   string
	Kind   Kind
	Layers int
	Heads  int
	Hidden int
	// SeqLen is tokens per sample: 1024 text tokens for LMs (§V-A), and
	// 1024 patch tokens for DiT at 512×512 (64×64 latent, patch size 2).
	SeqLen int
	// Vocab is the vocabulary size for LMs (50257, §V-A); zero for DiT.
	Vocab int
}

// Validate reports an error for configurations the accounting model cannot
// describe.
func (c Config) Validate() error {
	switch {
	case c.Layers <= 0 || c.Hidden <= 0 || c.Heads <= 0 || c.SeqLen <= 0:
		return fmt.Errorf("model %q: non-positive dimension", c.Name)
	case c.Hidden%c.Heads != 0:
		return fmt.Errorf("model %q: hidden %d not divisible by heads %d", c.Name, c.Hidden, c.Heads)
	case c.Kind == DecoderLM && c.Vocab <= 0:
		return fmt.Errorf("model %q: decoder LM needs a vocabulary", c.Name)
	}
	return nil
}

// Params is the trainable parameter count P (Table I).
//
// Decoder LM: 12·L·h² per block (QKV, output projection, two MLP matrices)
// plus V·h token embeddings (tied with the LM head) and s·h positions.
// DiT: 18·L·h² per block (the adaLN-Zero modulation MLP adds 6·h²) plus
// small patch/timestep embedders.
func (c Config) Params() int64 {
	h := int64(c.Hidden)
	l := int64(c.Layers)
	switch c.Kind {
	case DiT:
		return 18*l*h*h + 8*h*h // blocks + patch-embed/final-layer/cond MLPs
	default:
		return 12*l*h*h + int64(c.Vocab)*h + int64(c.SeqLen)*h
	}
}

// blockParams is the parameter count of one transformer block.
func (c Config) blockParams() int64 {
	h := int64(c.Hidden)
	if c.Kind == DiT {
		return 18 * h * h
	}
	return 12 * h * h
}

// tokens is the number of sequence positions processed per iteration at the
// given batch size.
func (c Config) tokens(batch int) int64 {
	return int64(batch) * int64(c.SeqLen)
}

// TokensPerIteration is the throughput unit of Figs. 5/7/9-11 (text tokens)
// — for DiT use ImagesPerIteration instead.
func (c Config) TokensPerIteration(batch int) int64 { return c.tokens(batch) }

// ImagesPerIteration is the throughput unit of Fig. 12.
func (c Config) ImagesPerIteration(batch int) int64 { return int64(batch) }

// ForwardFLOPs is FLOP_f (Table I): the forward-pass floating point
// operations at the given batch size. Backward is 2×FLOP_f (§II).
func (c Config) ForwardFLOPs(batch int) units.FLOPs {
	var total units.FLOPs
	for _, l := range c.LayerProfiles(batch) {
		total += l.FwdFLOPs
	}
	return total
}

// BackwardFLOPs is the backward-pass operation count, 2·FLOP_f.
func (c Config) BackwardFLOPs(batch int) units.FLOPs { return 2 * c.ForwardFLOPs(batch) }

// Aall is the total fp16 activation footprint at the given batch size
// (Table I).
func (c Config) Aall(batch int) units.Bytes {
	var total units.Bytes
	for _, l := range c.LayerProfiles(batch) {
		total += l.ActBytes
	}
	return total
}

// AinterBlock is the inter-transformer-block activation footprint: one
// boundary tensor of 2·s·b·h bytes per block (Table I). It is the minimum
// safe swap amount of Algorithm 1 and what ZeRO-Infinity/Colossal-AI keep.
func (c Config) AinterBlock(batch int) units.Bytes {
	return units.Bytes(2*c.tokens(batch)*int64(c.Hidden)) * units.Bytes(c.Layers)
}

// LargestLayerParamBytesFP16 is the fp16 footprint of the largest layer's
// parameters, which bounds the GPU pipeline working set.
func (c Config) LargestLayerParamBytesFP16() units.Bytes {
	largest := c.blockParams()
	if c.Kind == DecoderLM {
		if emb := int64(c.Vocab) * int64(c.Hidden); emb > largest {
			largest = emb
		}
	}
	return units.Bytes(2 * largest)
}

// PerBlockActBytes is the fp16 activation footprint one transformer block
// saves for backward, ≈34·s·b·h (≈40·s·b·h for DiT's extra modulations).
func (c Config) PerBlockActBytes(batch int) units.Bytes {
	var total units.Bytes
	for _, s := range c.blockSublayers(batch) {
		total += s.actBytes
	}
	return total
}
