package model

import "ratel/internal/units"

// Stage is a phase of a training iteration (§II).
type Stage int

// The three stages of an iteration.
const (
	Forward Stage = iota
	Backward
	Optimizer
)

// String names the stage.
func (s Stage) String() string {
	switch s {
	case Forward:
		return "forward"
	case Backward:
		return "backward"
	case Optimizer:
		return "optimizer"
	}
	return "unknown"
}

// TensorKind enumerates the tensor classes of Table II.
type TensorKind int

// Tensor classes stored during an iteration (Table II).
const (
	P32  TensorKind = iota // fp32 master parameters
	OS32                   // fp32 Adam moments (m, v)
	G16                    // fp16 gradients
	P16                    // fp16 parameter copy for GPU compute
	A16                    // fp16 activations
)

// String names the tensor kind with the paper's notation.
func (k TensorKind) String() string {
	switch k {
	case P32:
		return "P32"
	case OS32:
		return "OS32"
	case G16:
		return "G16"
	case P16:
		return "P16"
	case A16:
		return "A16"
	}
	return "T?"
}

// BytesPerParam is the per-parameter footprint of the tensor kind; zero for
// A16, whose size is activation- rather than parameter-proportional.
func (k TensorKind) BytesPerParam() int64 {
	switch k {
	case P32:
		return 4
	case OS32:
		return 8
	case G16, P16:
		return 2
	}
	return 0
}

// Lifecycle reports when a tensor kind is produced and consumed (Table II).
// P32/OS32/P16 are produced by the previous iteration's optimizer.
func (k TensorKind) Lifecycle() (produced, consumed Stage) {
	switch k {
	case P32, OS32:
		return Optimizer, Optimizer
	case G16:
		return Backward, Optimizer
	case P16:
		return Optimizer, Backward // consumed during forward and backward
	case A16:
		return Forward, Backward
	}
	return Forward, Backward
}

// StateBytes returns the footprint of a parameter-proportional tensor kind
// for a model with P parameters.
func StateBytes(k TensorKind, params int64) units.Bytes {
	return units.Bytes(k.BytesPerParam() * params)
}

// ModelStateBytes is the total persistent model-state footprint
// P32+OS32+G16+P16 = 16 bytes/param (Table II).
func ModelStateBytes(params int64) units.Bytes {
	return StateBytes(P32, params) + StateBytes(OS32, params) + StateBytes(G16, params) + StateBytes(P16, params)
}

// OptimizerTrafficBytesPerDirection is the model-state traffic an in-GPU
// optimizer moves across PCIe per direction per iteration: P32+OS32+P16 out
// plus G16... — concretely the paper reports 14 bytes/param per direction
// for G10 on a 13B model ("182 GB per direction", §III-C): read
// P32+OS32+G16 (14P) in, write P32+OS32+P16 (14P) out.
func OptimizerTrafficBytesPerDirection(params int64) units.Bytes {
	return units.Bytes(14 * params)
}
