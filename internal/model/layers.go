package model

import (
	"fmt"

	"ratel/internal/units"
)

// LayerProfile is the per-layer record Algorithm 1 operates on: the fp16
// activation bytes the layer saves for backward, and the forward FLOPs
// needed to recompute them. OffloadingBenefit is the paper's OB (Eq. 6).
type LayerProfile struct {
	// Name identifies the operator, e.g. "block17/mlp-fc2".
	Name string
	// Block is the transformer block index the layer belongs to, or -1 for
	// the embedding/head layers.
	Block int
	// ActBytes is the fp16 activation footprint saved for backward.
	ActBytes units.Bytes
	// FwdFLOPs is the forward (= recomputation) cost of the layer.
	FwdFLOPs units.FLOPs
	// Boundary marks the inter-block activation (the tensors systems like
	// ZeRO-Infinity always swap).
	Boundary bool
}

// OffloadingBenefit is OB_layer = FLOP_layer / A_layer (Eq. 6): layers with
// high OB are expensive to recompute per byte and should be swapped first.
func (l LayerProfile) OffloadingBenefit() float64 {
	if l.ActBytes <= 0 {
		return 0
	}
	return float64(l.FwdFLOPs) / float64(l.ActBytes)
}

// sublayer is an operator template within one transformer block, with
// activation bytes and FLOPs expressed per (token × hidden).
type sublayer struct {
	name     string
	actBytes units.Bytes
	flops    units.FLOPs
	boundary bool
}

// blockSublayers decomposes one transformer block into its operators. With
// t = batch·seq tokens and hidden h:
//
//	operator    saved activations   forward FLOPs    OB
//	ln1         2·t·h (boundary)    8·t·h            ~4
//	qkv         6·t·h               6·t·h²           h
//	attn-core   4·t·h               4·t·s·h          s
//	attn-out    2·t·h               2·t·h²           h
//	ln2         2·t·h               8·t·h            ~4
//	mlp-fc1     16·t·h              8·t·h²           h/2
//	mlp-fc2     2·t·h               8·t·h²           4h
//
// Totals: 34·t·h activation bytes and (24·h + 4·s + 16)·t·h FLOPs per block,
// which reproduce the paper's §III numbers (see package doc). The attention
// core stores only its output and softmax statistics (no s×s maps),
// matching the memory-efficient attention the 24 GB GPU requires.
// DiT blocks append an adaLN modulation operator (+6·t·h bytes, +12·t·h²
// FLOPs).
func (c Config) blockSublayers(batch int) []sublayer {
	t := c.tokens(batch)
	h := int64(c.Hidden)
	s := int64(c.SeqLen)
	th := units.Bytes(t * h)
	fth := func(mult int64) units.FLOPs { return units.FLOPs(mult * t * h) }
	fthh := func(mult int64) units.FLOPs { return units.FLOPs(mult * t * h * h) }

	subs := []sublayer{
		{name: "ln1", actBytes: 2 * th, flops: fth(8), boundary: true},
		{name: "qkv", actBytes: 6 * th, flops: fthh(6)},
		{name: "attn-core", actBytes: 4 * th, flops: units.FLOPs(4 * t * s * h)},
		{name: "attn-out", actBytes: 2 * th, flops: fthh(2)},
		{name: "ln2", actBytes: 2 * th, flops: fth(8)},
		{name: "mlp-fc1", actBytes: 16 * th, flops: fthh(8)},
		{name: "mlp-fc2", actBytes: 2 * th, flops: fthh(8)},
	}
	if c.Kind == DiT {
		subs = append(subs, sublayer{name: "adaln", actBytes: 6 * th, flops: fthh(12)})
	}
	return subs
}

// LayerProfiles flattens the model into the per-operator records the
// planner, the capacity model and the simulator consume: an embedding (or
// patch-embedding) layer, Layers transformer blocks of sublayers, and the
// LM head (or DiT final layer).
func (c Config) LayerProfiles(batch int) []LayerProfile {
	t := c.tokens(batch)
	h := int64(c.Hidden)
	th := units.Bytes(t * h)

	out := make([]LayerProfile, 0, c.Layers*8+2)
	// Embedding: a lookup (LM) or conv patchify (DiT); negligible FLOPs for
	// the LM, 2·t·h² for DiT's linear patch embedding.
	emb := LayerProfile{Name: "embedding", Block: -1, ActBytes: 2 * th, Boundary: true}
	if c.Kind == DiT {
		emb.FwdFLOPs = units.FLOPs(2 * t * h * h)
	} else {
		emb.FwdFLOPs = units.FLOPs(2 * t * h)
	}
	out = append(out, emb)

	for b := 0; b < c.Layers; b++ {
		for _, s := range c.blockSublayers(batch) {
			out = append(out, LayerProfile{
				Name:     fmt.Sprintf("block%d/%s", b, s.name),
				Block:    b,
				ActBytes: s.actBytes,
				FwdFLOPs: s.flops,
				Boundary: s.boundary,
			})
		}
	}

	head := LayerProfile{Name: "head", Block: -1, ActBytes: 2 * th, Boundary: true}
	if c.Kind == DecoderLM {
		head.FwdFLOPs = units.FLOPs(2 * t * h * int64(c.Vocab))
	} else {
		head.FwdFLOPs = units.FLOPs(2 * t * h * h)
	}
	out = append(out, head)
	return out
}

// GPUActWorkingSet is the transient device-memory footprint of activation
// tensors during streamed execution: the block being executed holds most of
// its ~34·t·h activation bytes until the trailing offload DMA drains them,
// so ~24·t·h stay resident on average — except at the LM head, whose fp16
// logits must materialize and dominate at large batch. This coefficient
// reproduces the paper's batch ceilings: the 175B model trains at batch 16
// but not 32 on the RTX 4090 (Fig. 5c's throughput knee) and the 135B model
// keeps batch 36 under Fig. 8a's settings.
func (c Config) GPUActWorkingSet(batch int) units.Bytes {
	t := c.tokens(batch)
	h := int64(c.Hidden)
	working := units.Bytes(24 * t * h)
	if c.Kind == DecoderLM {
		if logits := units.Bytes(2 * t * int64(c.Vocab)); logits > working {
			return logits
		}
	}
	return working
}

// ResidentActWorkingSet is the device footprint when a system keeps a whole
// block's activations resident while recomputing (the working set of
// recomputation-based baselines).
func (c Config) ResidentActWorkingSet(batch int) units.Bytes {
	w := c.PerBlockActBytes(batch)
	if g := c.GPUActWorkingSet(batch); g > w {
		return g
	}
	return w
}
