package model

import (
	"math"
	"testing"

	"ratel/internal/units"
)

func TestTableIVParamCounts(t *testing.T) {
	// Table IV labels models by nominal size; the accounting formula should
	// land within 10% of the label (the 70B entry is the loosest, as in
	// GPT-3-style sizing).
	want := map[string]float64{
		"6B": 6e9, "13B": 13e9, "30B": 30e9, "70B": 70e9,
		"135B": 135e9, "175B": 175e9, "276B": 276e9, "412B": 412e9,
	}
	for _, c := range TableIV {
		got := float64(c.Params())
		rel := math.Abs(got-want[c.Name]) / want[c.Name]
		if rel > 0.10 {
			t.Errorf("%s: params = %.3g, want within 10%% of %.3g (off by %.1f%%)",
				c.Name, got, want[c.Name], 100*rel)
		}
	}
}

func TestValidateCatalog(t *testing.T) {
	for _, c := range append(append([]Config{}, TableIV...), TableVI...) {
		if err := c.Validate(); err != nil {
			t.Errorf("catalog config %s invalid: %v", c.Name, err)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{Name: "no-dims"},
		{Name: "indivisible", Kind: DecoderLM, Layers: 2, Heads: 3, Hidden: 8, SeqLen: 4, Vocab: 10},
		{Name: "no-vocab", Kind: DecoderLM, Layers: 2, Heads: 2, Hidden: 8, SeqLen: 4},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%s) = nil, want error", c.Name)
		}
	}
}

// Test13BActivationFootprint checks the paper's §III-B / Fig. 1 numbers:
// fine-tuning the 13B model at batch 32 stores ~213 GiB of activations, of
// which ~12.5 GiB are inter-block.
func Test13BActivationFootprint(t *testing.T) {
	c := MustByName("13B")
	aall := c.Aall(32).GiBf()
	if aall < 200 || aall > 230 {
		t.Errorf("13B/b32 Aall = %.1f GiB, want ~213 GiB", aall)
	}
	inter := c.AinterBlock(32).GiBf()
	if inter < 11.5 || inter > 13.5 {
		t.Errorf("13B/b32 AinterBlock = %.1f GiB, want ~12.5 GiB", inter)
	}
}

// Test13BForwardTime checks that the 13B forward pass at batch 32 is ~870
// TFLOP, ~5.8 s at the RTX 4090's 150 TFLOPS measured peak (Fig. 1c shows a
// 5 s forward stage; G10's analysis uses 5.96 s of GPU compute).
func Test13BForwardFLOPs(t *testing.T) {
	c := MustByName("13B")
	tf := c.ForwardFLOPs(32).TFLOPf()
	if tf < 820 || tf < 0 || tf > 920 {
		t.Errorf("13B/b32 forward = %.0f TFLOP, want ~870", tf)
	}
	if bw := c.BackwardFLOPs(32); bw != 2*c.ForwardFLOPs(32) {
		t.Errorf("backward FLOPs = %v, want 2x forward", bw)
	}
}

// Test175BStateFootprint checks §I: a 175B model needs ~2.6 TB of tensors at
// peak (16 bytes/param of model states plus activations), and §III-A: the
// model states alone (~2.45 TB claimed for "GPU memory needed") far exceed
// any GPU.
func Test175BStateFootprint(t *testing.T) {
	c := MustByName("175B")
	states := ModelStateBytes(c.Params())
	if got := float64(states) / 1e12; got < 2.5 || got > 3.0 {
		t.Errorf("175B model states = %.2f TB, want ~2.8 TB (16 bytes/param)", got)
	}
}

func TestG10OptimizerTraffic(t *testing.T) {
	// §III-C: G10 moves ~182 GB per direction for the 13B model.
	c := MustByName("13B")
	got := OptimizerTrafficBytesPerDirection(c.Params()).GBf()
	if got < 170 || got > 195 {
		t.Errorf("13B optimizer traffic per direction = %.0f GB, want ~182 GB", got)
	}
}

func TestLifecycleTableII(t *testing.T) {
	cases := []struct {
		kind               TensorKind
		produced, consumed Stage
		bytesPerParam      int64
	}{
		{P32, Optimizer, Optimizer, 4},
		{OS32, Optimizer, Optimizer, 8},
		{G16, Backward, Optimizer, 2},
		{P16, Optimizer, Backward, 2},
		{A16, Forward, Backward, 0},
	}
	for _, tc := range cases {
		p, cons := tc.kind.Lifecycle()
		if p != tc.produced || cons != tc.consumed {
			t.Errorf("%v lifecycle = (%v,%v), want (%v,%v)", tc.kind, p, cons, tc.produced, tc.consumed)
		}
		if got := tc.kind.BytesPerParam(); got != tc.bytesPerParam {
			t.Errorf("%v bytes/param = %d, want %d", tc.kind, got, tc.bytesPerParam)
		}
	}
}

func TestLayerProfilesConsistency(t *testing.T) {
	c := MustByName("13B")
	layers := c.LayerProfiles(8)
	var act units.Bytes
	var flops units.FLOPs
	boundaries := 0
	for _, l := range layers {
		if l.ActBytes < 0 || l.FwdFLOPs < 0 {
			t.Fatalf("layer %s has negative accounting", l.Name)
		}
		act += l.ActBytes
		flops += l.FwdFLOPs
		if l.Boundary {
			boundaries++
		}
	}
	if act != c.Aall(8) {
		t.Errorf("sum of layer ActBytes = %v, want Aall = %v", act, c.Aall(8))
	}
	if flops != c.ForwardFLOPs(8) {
		t.Errorf("sum of layer FLOPs = %v, want ForwardFLOPs = %v", flops, c.ForwardFLOPs(8))
	}
	// One boundary per block plus embedding and head.
	if want := c.Layers + 2; boundaries != want {
		t.Errorf("boundary layers = %d, want %d", boundaries, want)
	}
}

func TestActivationsScaleLinearlyWithBatch(t *testing.T) {
	c := MustByName("6B")
	if got, want := c.Aall(64), 8*c.Aall(8); got != want {
		t.Errorf("Aall(64) = %v, want 8x Aall(8) = %v", got, want)
	}
}

func TestOffloadingBenefitOrdering(t *testing.T) {
	// §IV-D: mlp-fc2 has the highest OB in a block (8·t·h² FLOPs per
	// 2·t·h bytes), layer norms the lowest.
	c := MustByName("13B")
	var fc2, ln1 LayerProfile
	for _, l := range c.LayerProfiles(32) {
		switch l.Name {
		case "block0/mlp-fc2":
			fc2 = l
		case "block0/ln1":
			ln1 = l
		}
	}
	if fc2.Name == "" || ln1.Name == "" {
		t.Fatal("expected block0 sublayers in profile")
	}
	if fc2.OffloadingBenefit() <= ln1.OffloadingBenefit() {
		t.Errorf("OB(fc2)=%.1f should exceed OB(ln1)=%.1f",
			fc2.OffloadingBenefit(), ln1.OffloadingBenefit())
	}
}

func TestDiTParamCounts(t *testing.T) {
	// DiT-XL/2 (28 layers, hidden 1152) is 675M params; the catalog's
	// smallest entry models it.
	c := MustByName("DiT-0.67B")
	got := float64(c.Params())
	if got < 0.6e9 || got > 0.75e9 {
		t.Errorf("DiT-0.67B params = %.3g, want ~0.67e9", got)
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("999B"); err == nil {
		t.Error("ByName(999B) = nil error, want error")
	}
}

func TestStageAndKindStrings(t *testing.T) {
	if Forward.String() != "forward" || Optimizer.String() != "optimizer" {
		t.Error("unexpected Stage strings")
	}
	if P32.String() != "P32" || A16.String() != "A16" {
		t.Error("unexpected TensorKind strings")
	}
	if DecoderLM.String() != "decoder-lm" || DiT.String() != "dit" {
		t.Error("unexpected Kind strings")
	}
}

func TestAccountingHelpers(t *testing.T) {
	c := MustByName("13B")
	if got := c.TokensPerIteration(32); got != 32*1024 {
		t.Errorf("TokensPerIteration = %d", got)
	}
	if got := c.ImagesPerIteration(8); got != 8 {
		t.Errorf("ImagesPerIteration = %d", got)
	}
	// Largest layer: a 13B block's 12h^2 parameters outweigh the embedding.
	block := units.Bytes(2 * 12 * 5120 * 5120)
	if got := c.LargestLayerParamBytesFP16(); got != block {
		t.Errorf("LargestLayerParamBytesFP16 = %v, want block %v", got, block)
	}
	// For the narrow 0.35B model the 50257x1024 embedding wins instead.
	small := MustByName("0.35B")
	emb := units.Bytes(2 * 50257 * 1024)
	if got := small.LargestLayerParamBytesFP16(); got != emb {
		t.Errorf("0.35B largest layer = %v, want embedding %v", got, emb)
	}
	if got := c.PerBlockActBytes(32); got != units.Bytes(34*32*1024*5120) {
		t.Errorf("PerBlockActBytes = %v", got)
	}
	// GPU working sets: logits dominate the streamed set for LMs at large
	// batch; the resident set is at least a block's activations.
	if c.GPUActWorkingSet(64) <= 0 || c.ResidentActWorkingSet(64) < c.PerBlockActBytes(64) {
		t.Error("working-set accounting inconsistent")
	}
	dit := MustByName("DiT-10B")
	if dit.GPUActWorkingSet(8) != units.Bytes(24*8*1024*4096) {
		t.Errorf("DiT working set = %v", dit.GPUActWorkingSet(8))
	}
}

func TestMustByNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustByName(unknown) did not panic")
		}
	}()
	MustByName("definitely-not-a-model")
}

func TestZeroBenefitLayer(t *testing.T) {
	l := LayerProfile{ActBytes: 0, FwdFLOPs: 100}
	if l.OffloadingBenefit() != 0 {
		t.Error("zero-byte layer should have zero benefit")
	}
}

func TestEnumStringsExhaustive(t *testing.T) {
	if Backward.String() != "backward" || Stage(99).String() != "unknown" {
		t.Error("stage strings")
	}
	for _, k := range []TensorKind{P32, OS32, G16, P16, A16} {
		if k.String() == "" {
			t.Error("tensor kind string empty")
		}
	}
	if TensorKind(99).String() != "T?" {
		t.Error("unknown tensor kind string")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind string")
	}
}
