// Package strategy encodes the tensor-placement and scheduling policy of
// every system the paper evaluates, as the simulator and the capacity model
// consume them: where model states live, where the optimizer runs, how
// gradients are offloaded, and how activations are managed.
//
// Each policy also carries effective-efficiency factors that calibrate the
// reproduction to the paper's measured behaviour (Fig. 1/2 labels); they
// model framework overheads — unpinned bounce-buffer copies, small transfer
// granularity, chunk management — that the paper observes but does not
// decompose. DESIGN.md §3 documents the anchors.
package strategy

import (
	"fmt"

	"ratel/internal/agoffload"
)

// StatePlace says where the model states (P32, OS32, G16, P16 home) live.
type StatePlace int

// Model-state placements.
const (
	StatesSSD  StatePlace = iota // ZeRO-Infinity, G10, Ratel
	StatesHost                   // ZeRO-Offload, Colossal-AI
	StatesGPU                    // FlashNeuron, Fast-DiT, Megatron-LM
)

// String names the placement.
func (s StatePlace) String() string {
	return [...]string{"states-ssd", "states-host", "states-gpu"}[s]
}

// OptimizerPlace says where Adam executes.
type OptimizerPlace int

// Optimizer placements.
const (
	OptCPU OptimizerPlace = iota // out-of-core CPU Adam
	OptGPU                       // in-core GPU Adam (G10, FlashNeuron, ...)
)

// String names the optimizer placement.
func (o OptimizerPlace) String() string {
	return [...]string{"opt-cpu", "opt-gpu"}[o]
}

// ActPolicy selects the activation-management strategy (§IV-D and the
// Fig. 9a baselines).
type ActPolicy int

// Activation policies.
const (
	// ActInterBlockHost swaps only the inter-block activations to main
	// memory and recomputes the rest (ZeRO-Infinity, ZeRO-Offload,
	// "Ratel+ZeRO"/"Ratel+DS").
	ActInterBlockHost ActPolicy = iota
	// ActKeepGPU keeps inter-block activations in GPU memory and recomputes
	// the rest (Colossal-AI).
	ActKeepGPU
	// ActAllToSSD swaps all activations to unified host/SSD memory with no
	// recomputation (G10, and "Ratel+G10").
	ActAllToSSD
	// ActPlanner runs Ratel's holistic traffic-aware planner (Algorithm 1).
	ActPlanner
	// ActPlannerHostOnly is the planner restricted to main memory
	// ("Ratel+CpuAct").
	ActPlannerHostOnly
	// ActCapuchin swaps to main memory the layers whose recompute time
	// exceeds their GPU<->host transfer time, ignoring SSD and model-state
	// traffic (Capuchin, "Ratel+Cap").
	ActCapuchin
	// ActCheckmate picks a cost-model-optimal recompute/host-swap split,
	// also ignoring SSD and model-state traffic (Checkmate, "Ratel+CM").
	ActCheckmate
	// ActAllToSSDNoStates offloads all activations to SSD while model
	// states stay on the GPU (FlashNeuron).
	ActAllToSSDNoStates
	// ActAllOnGPU keeps everything resident (Fast-DiT, Megatron-LM).
	ActAllOnGPU
)

// String names the activation policy.
func (a ActPolicy) String() string {
	return [...]string{"act-interblock-host", "act-keep-gpu", "act-all-ssd",
		"act-planner", "act-planner-host-only", "act-capuchin",
		"act-checkmate", "act-all-ssd-no-states", "act-all-gpu"}[a]
}

// Policy is a complete system description.
type Policy struct {
	Name      string
	States    StatePlace
	Optimizer OptimizerPlace
	// GradMode applies when Optimizer == OptCPU.
	GradMode agoffload.Mode
	// OptSched tunes the Readiness/AsyncTopK gradient modes (prefetch
	// depth, in-step top-k); the zero value takes the defaults.
	OptSched agoffload.Options
	Act      ActPolicy

	// LinkEff derates the effective GPU<->host PCIe bandwidth the system
	// achieves (1.0 = the measured link peak). DeepSpeed-style frameworks
	// move tensors through unpinned bounce buffers at small granularity,
	// which the paper's Fig. 1a utilization labels put at a small fraction
	// of the link peak.
	LinkEff float64
	// SSDEff derates the effective SSD bandwidth.
	SSDEff float64
	// AdamEff derates the CPU Adam rate.
	AdamEff float64
	// ComputeEff derates GPU compute throughput (chunk-manager stalls).
	ComputeEff float64
	// HostStateThrash, when true, models Gemini-style chunk management that
	// streams the working states host->GPU->host around every stage
	// (Colossal-AI).
	HostStateThrash bool
	// AssumeGPUDirect lets a GPUDirect-dependent design run on consumer
	// GPUs anyway, as the paper does when simulating G10 (§III-C).
	AssumeGPUDirect bool
	// RequiresGPUDirect marks designs that cannot run without GPUDirect.
	RequiresGPUDirect bool
	// TensorParallel marks Megatron-style execution, where model states are
	// sharded across the server's GPUs and activations stay resident.
	TensorParallel bool
}

// Validate rejects nonsensical policies.
func (p Policy) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("strategy: unnamed policy")
	}
	if p.LinkEff <= 0 || p.LinkEff > 1 || p.SSDEff <= 0 || p.SSDEff > 1 ||
		p.AdamEff <= 0 || p.AdamEff > 1 || p.ComputeEff <= 0 || p.ComputeEff > 1 {
		return fmt.Errorf("strategy: %s has efficiency factors outside (0,1]", p.Name)
	}
	if p.States == StatesGPU && p.Act == ActPlanner {
		return fmt.Errorf("strategy: %s plans SSD activation traffic with GPU-resident states", p.Name)
	}
	return nil
}

// The evaluated systems. Efficiency calibration anchors:
//   - ZeRO-Infinity 13B/batch-32: forward ≈14 s (M2G-bound at ~8% link
//     utilization), backward ≈26 s, optimizer ≈23 s, GPU busy ≈36%
//     (Fig. 1a, Fig. 2b/2c).
//   - Ratel same workload: forward ≈5 s, backward ≈20 s, no optimizer
//     stage (Fig. 1c).
//   - Colossal-AI: GPU busy ≈12% (§III-B).
var (
	// Ratel is the full system: planner + optimized active gradient
	// offloading.
	Ratel = Policy{
		Name: "Ratel", States: StatesSSD, Optimizer: OptCPU,
		GradMode: agoffload.Optimized, Act: ActPlanner,
		LinkEff: 1, SSDEff: 1, AdamEff: 1, ComputeEff: 1,
	}
	// RatelNaive uses the Fig. 3a per-tensor serialized handlers.
	RatelNaive = with(Ratel, "Ratel-Naive", func(p *Policy) { p.GradMode = agoffload.Naive })
	// RatelZeRO serializes backward and optimizer like ZeRO-Infinity but
	// keeps the rest of Ratel ("Ratel+ZeRO" in Fig. 7, "Ratel+DS" in
	// Table V uses the static activation split too — see RatelDS).
	RatelZeRO = with(Ratel, "Ratel+ZeRO", func(p *Policy) { p.GradMode = agoffload.Serialized })
	// RatelDS statically swaps inter-block activations only (Fig. 9a).
	RatelDS = with(Ratel, "Ratel+DS", func(p *Policy) { p.Act = ActInterBlockHost })
	// RatelCpuAct swaps activations only to main memory (Fig. 8).
	RatelCpuAct = with(Ratel, "Ratel+CpuAct", func(p *Policy) { p.Act = ActPlannerHostOnly })
	// RatelCap uses Capuchin's swap/recompute policy (Fig. 9a).
	RatelCap = with(Ratel, "Ratel+Cap", func(p *Policy) { p.Act = ActCapuchin })
	// RatelG10 uses G10's swap-everything policy (Fig. 9a).
	RatelG10 = with(Ratel, "Ratel+G10", func(p *Policy) { p.Act = ActAllToSSD })
	// RatelCM uses Checkmate's cost-model policy (Fig. 9a).
	RatelCM = with(Ratel, "Ratel+CM", func(p *Policy) { p.Act = ActCheckmate })

	// ZeROInfinity offloads model states to SSD, executes a serialized CPU
	// optimizer stage, and statically swaps inter-block activations to main
	// memory (DeepSpeed 0.9.3 configuration of §V-A).
	ZeROInfinity = Policy{
		Name: "ZeRO-Infinity", States: StatesSSD, Optimizer: OptCPU,
		GradMode: agoffload.Serialized, Act: ActInterBlockHost,
		LinkEff: 0.09, SSDEff: 0.45, AdamEff: 1, ComputeEff: 1,
	}
	// ZeROOffload keeps model states in main memory (no SSD traffic) with
	// the same DeepSpeed data path; the one-step-delayed update is disabled
	// (§V-A), so the optimizer stage is serialized.
	ZeROOffload = Policy{
		Name: "ZeRO-Offload", States: StatesHost, Optimizer: OptCPU,
		GradMode: agoffload.Serialized, Act: ActInterBlockHost,
		LinkEff: 0.09, SSDEff: 1, AdamEff: 1, ComputeEff: 1,
	}
	// ColossalAI (Gemini) keeps states in host chunks that thrash through
	// GPU memory, keeps inter-block activations on GPU, and recomputes the
	// rest.
	ColossalAI = Policy{
		Name: "Colossal-AI", States: StatesHost, Optimizer: OptCPU,
		GradMode: agoffload.Serialized, Act: ActKeepGPU,
		LinkEff: 0.05, SSDEff: 1, AdamEff: 0.3, ComputeEff: 0.7,
		HostStateThrash: true,
	}
	// FlashNeuron keeps model states on the GPU and offloads activations to
	// SSD (the paper's POSIX-file prototype, §V-A).
	FlashNeuron = Policy{
		Name: "FlashNeuron", States: StatesGPU, Optimizer: OptGPU,
		Act:     ActAllToSSDNoStates,
		LinkEff: 0.8, SSDEff: 0.8, AdamEff: 1, ComputeEff: 1,
	}
	// G10 offloads everything to unified host/SSD memory, runs Adam on the
	// GPU, and depends on GPUDirect; the paper simulates it with GPUDirect
	// assumed present and full pipelining (§III-C).
	G10 = Policy{
		Name: "G10", States: StatesSSD, Optimizer: OptGPU,
		Act:     ActAllToSSD,
		LinkEff: 1, SSDEff: 1, AdamEff: 1, ComputeEff: 1,
		RequiresGPUDirect: true, AssumeGPUDirect: true,
	}
	// FastDiT keeps everything GPU-resident (Fig. 12 baseline).
	FastDiT = Policy{
		Name: "Fast-DiT", States: StatesGPU, Optimizer: OptGPU,
		Act:     ActAllOnGPU,
		LinkEff: 1, SSDEff: 1, AdamEff: 1, ComputeEff: 1,
	}
	// Megatron shards the model across the DGX's GPUs with tensor
	// parallelism and no offloading (Fig. 13 baseline).
	Megatron = Policy{
		Name: "Megatron-LM", States: StatesGPU, Optimizer: OptGPU,
		Act:     ActAllOnGPU,
		LinkEff: 1, SSDEff: 1, AdamEff: 1, ComputeEff: 0.5,
		TensorParallel: true,
	}
)

// All lists every predefined policy.
func All() []Policy {
	return []Policy{Ratel, RatelNaive, RatelZeRO, RatelDS, RatelCpuAct,
		RatelCap, RatelG10, RatelCM, ZeROInfinity, ZeROOffload, ColossalAI,
		FlashNeuron, G10, FastDiT, Megatron}
}

// ByName looks a policy up.
func ByName(name string) (Policy, error) {
	for _, p := range All() {
		if p.Name == name {
			return p, nil
		}
	}
	return Policy{}, fmt.Errorf("strategy: unknown policy %q", name)
}

func with(base Policy, name string, mut func(*Policy)) Policy {
	p := base
	p.Name = name
	mut(&p)
	return p
}
