package strategy

import (
	"testing"

	"ratel/internal/agoffload"
)

func TestAllPoliciesValidate(t *testing.T) {
	seen := make(map[string]bool)
	for _, p := range All() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if seen[p.Name] {
			t.Errorf("duplicate policy name %q", p.Name)
		}
		seen[p.Name] = true
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("ZeRO-Infinity")
	if err != nil {
		t.Fatal(err)
	}
	if p.States != StatesSSD || p.GradMode != agoffload.Serialized {
		t.Errorf("ZeRO-Infinity misconfigured: %+v", p)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestPaperConfigurations(t *testing.T) {
	// §V-A baseline configurations.
	if ZeROOffload.States != StatesHost {
		t.Error("ZeRO-Offload offloads model states to main memory")
	}
	if ZeROOffload.GradMode != agoffload.Serialized {
		t.Error("ZeRO-Offload's one-step delayed update is disabled (§V-A): serialized optimizer")
	}
	if ColossalAI.Act != ActKeepGPU {
		t.Error("Colossal-AI keeps inter-block activations in GPU memory (§V-A)")
	}
	if FlashNeuron.States != StatesGPU || FlashNeuron.Act != ActAllToSSDNoStates {
		t.Error("FlashNeuron keeps model states on GPU and offloads activations to SSD")
	}
	if !G10.RequiresGPUDirect || !G10.AssumeGPUDirect {
		t.Error("G10 depends on GPUDirect; the paper simulates it as present (§III-C)")
	}
	if G10.Optimizer != OptGPU {
		t.Error("G10 executes Adam on the GPU")
	}
	if Ratel.GradMode != agoffload.Optimized || Ratel.Act != ActPlanner {
		t.Error("Ratel uses the optimized handlers and the holistic planner")
	}
	if !Megatron.TensorParallel {
		t.Error("Megatron-LM is the tensor-parallel baseline")
	}
}

func TestValidateRejectsBadPolicies(t *testing.T) {
	bad := []Policy{
		{},
		{Name: "x", LinkEff: 0, SSDEff: 1, AdamEff: 1, ComputeEff: 1},
		{Name: "x", LinkEff: 1.5, SSDEff: 1, AdamEff: 1, ComputeEff: 1},
		{Name: "x", States: StatesGPU, Act: ActPlanner, LinkEff: 1, SSDEff: 1, AdamEff: 1, ComputeEff: 1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad policy %d accepted", i)
		}
	}
}

func TestEnumStrings(t *testing.T) {
	if StatesSSD.String() != "states-ssd" || OptGPU.String() != "opt-gpu" {
		t.Error("unexpected enum strings")
	}
	for a := ActInterBlockHost; a <= ActAllOnGPU; a++ {
		if a.String() == "" {
			t.Errorf("empty string for ActPolicy %d", a)
		}
	}
}
