// Package data provides deterministic synthetic fine-tuning workloads for
// the mini engine — the paper randomly initializes datasets for evaluations
// that do not require convergence (§V-A); these tasks additionally have
// learnable structure so convergence tests and demos show decreasing loss.
package data

import (
	"fmt"
	"math/rand"
)

// Task generates (tokens, targets) pairs.
type Task int

// Synthetic tasks.
const (
	// Copy predicts the input sequence shifted by one position.
	Copy Task = iota
	// Progression predicts the next element of a strided arithmetic
	// progression modulo the vocabulary.
	Progression
	// Uniform is unlearnable uniform noise (the paper's random dataset),
	// for throughput-only runs.
	Uniform
)

// String names the task.
func (t Task) String() string {
	switch t {
	case Copy:
		return "copy"
	case Progression:
		return "progression"
	case Uniform:
		return "uniform"
	}
	return fmt.Sprintf("Task(%d)", int(t))
}

// Loader produces deterministic batches of a synthetic task.
type Loader struct {
	task  Task
	batch int
	seq   int
	vocab int
	rng   *rand.Rand
}

// NewLoader builds a loader; identical arguments yield identical batch
// streams.
func NewLoader(task Task, batch, seq, vocab int, seed int64) (*Loader, error) {
	if batch < 1 || seq < 1 || vocab < 2 {
		return nil, fmt.Errorf("data: bad geometry batch=%d seq=%d vocab=%d", batch, seq, vocab)
	}
	if task != Copy && task != Progression && task != Uniform {
		return nil, fmt.Errorf("data: unknown task %v", task)
	}
	return &Loader{task: task, batch: batch, seq: seq, vocab: vocab,
		rng: rand.New(rand.NewSource(seed))}, nil
}

// Next returns the next batch.
func (l *Loader) Next() (tokens, targets [][]int) {
	tokens = make([][]int, l.batch)
	targets = make([][]int, l.batch)
	for b := range tokens {
		tokens[b] = make([]int, l.seq)
		targets[b] = make([]int, l.seq)
		switch l.task {
		case Copy:
			start := l.rng.Intn(l.vocab)
			for s := 0; s < l.seq; s++ {
				tokens[b][s] = (start + s) % l.vocab
				targets[b][s] = (start + s + 1) % l.vocab
			}
		case Progression:
			start := l.rng.Intn(l.vocab)
			stride := 1 + l.rng.Intn(3)
			for s := 0; s < l.seq; s++ {
				tokens[b][s] = (start + s*stride) % l.vocab
				targets[b][s] = (start + (s+1)*stride) % l.vocab
			}
		case Uniform:
			for s := 0; s < l.seq; s++ {
				tokens[b][s] = l.rng.Intn(l.vocab)
				targets[b][s] = l.rng.Intn(l.vocab)
			}
		}
	}
	return tokens, targets
}
