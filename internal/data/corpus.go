package data

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Corpus is a character-level language-modeling dataset over a fixed text:
// batches are random windows, targets are the next character.
type Corpus struct {
	tokens []int
	chars  []rune
	index  map[rune]int
}

// DefaultText seeds the built-in corpus for demos.
const DefaultText = `ratel is a low cost high performance training framework that enables
efficient hundred billion parameter model fine tuning on a commodity server
with a consumer grade gpu and limited main memory. the key idea is to add
holistic offloading traffic as an optimization dimension: active gradient
offloading hides the out of core cpu optimizer behind backward propagation,
and traffic aware activation swapping balances recomputation against pcie
and ssd transfers so that each iteration finishes as fast as the slowest
resource allows. model states live on nvme ssds, so the trainable model
size is bounded by ssd capacity rather than by gpu or main memory.`

// NewCorpus builds a corpus from text, assigning token ids to characters in
// sorted order (deterministic).
func NewCorpus(text string) (*Corpus, error) {
	text = strings.TrimSpace(text)
	if len(text) < 8 {
		return nil, fmt.Errorf("data: corpus needs at least 8 characters")
	}
	seen := map[rune]bool{}
	for _, r := range text {
		seen[r] = true
	}
	chars := make([]rune, 0, len(seen))
	for r := range seen {
		chars = append(chars, r)
	}
	sort.Slice(chars, func(i, j int) bool { return chars[i] < chars[j] })
	index := make(map[rune]int, len(chars))
	for i, r := range chars {
		index[r] = i
	}
	c := &Corpus{chars: chars, index: index}
	for _, r := range text {
		c.tokens = append(c.tokens, index[r])
	}
	return c, nil
}

// VocabSize is the number of distinct characters.
func (c *Corpus) VocabSize() int { return len(c.chars) }

// Len is the corpus length in tokens.
func (c *Corpus) Len() int { return len(c.tokens) }

// Batch samples batch random windows of length seq, with next-character
// targets.
func (c *Corpus) Batch(rng *rand.Rand, batch, seq int) (tokens, targets [][]int, err error) {
	if batch < 1 || seq < 1 {
		return nil, nil, fmt.Errorf("data: bad geometry batch=%d seq=%d", batch, seq)
	}
	if seq+1 > len(c.tokens) {
		return nil, nil, fmt.Errorf("data: window %d exceeds corpus length %d", seq+1, len(c.tokens))
	}
	tokens = make([][]int, batch)
	targets = make([][]int, batch)
	for b := 0; b < batch; b++ {
		start := rng.Intn(len(c.tokens) - seq)
		tokens[b] = append([]int(nil), c.tokens[start:start+seq]...)
		targets[b] = append([]int(nil), c.tokens[start+1:start+seq+1]...)
	}
	return tokens, targets, nil
}

// Encode maps text to token ids; unknown characters are rejected.
func (c *Corpus) Encode(text string) ([]int, error) {
	var out []int
	for _, r := range text {
		id, ok := c.index[r]
		if !ok {
			return nil, fmt.Errorf("data: character %q not in corpus vocabulary", r)
		}
		out = append(out, id)
	}
	return out, nil
}

// Decode maps token ids back to text.
func (c *Corpus) Decode(tokens []int) string {
	var b strings.Builder
	for _, t := range tokens {
		if t >= 0 && t < len(c.chars) {
			b.WriteRune(c.chars[t])
		} else {
			b.WriteByte('?')
		}
	}
	return b.String()
}
