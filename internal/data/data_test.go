package data

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLoaderDeterminism(t *testing.T) {
	a, err := NewLoader(Progression, 2, 8, 32, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewLoader(Progression, 2, 8, 32, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		ta, ga := a.Next()
		tb, gb := b.Next()
		for r := range ta {
			for c := range ta[r] {
				if ta[r][c] != tb[r][c] || ga[r][c] != gb[r][c] {
					t.Fatalf("batch %d nondeterministic", i)
				}
			}
		}
	}
}

func TestCopyTaskStructure(t *testing.T) {
	l, err := NewLoader(Copy, 3, 6, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	tokens, targets := l.Next()
	for b := range tokens {
		for s := 0; s < 5; s++ {
			if targets[b][s] != tokens[b][s+1] {
				t.Fatalf("copy target mismatch at (%d,%d)", b, s)
			}
		}
	}
}

func TestTokenRanges(t *testing.T) {
	f := func(seed int64, taskSel uint8) bool {
		task := Task(int(taskSel) % 3)
		l, err := NewLoader(task, 2, 10, 17, seed)
		if err != nil {
			return false
		}
		tokens, targets := l.Next()
		for b := range tokens {
			for s := range tokens[b] {
				if tokens[b][s] < 0 || tokens[b][s] >= 17 || targets[b][s] < 0 || targets[b][s] >= 17 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNewLoaderErrors(t *testing.T) {
	if _, err := NewLoader(Copy, 0, 4, 8, 1); err == nil {
		t.Error("batch 0 accepted")
	}
	if _, err := NewLoader(Copy, 1, 0, 8, 1); err == nil {
		t.Error("seq 0 accepted")
	}
	if _, err := NewLoader(Copy, 1, 4, 1, 1); err == nil {
		t.Error("vocab 1 accepted")
	}
	if _, err := NewLoader(Task(9), 1, 4, 8, 1); err == nil {
		t.Error("unknown task accepted")
	}
}

func TestTaskStrings(t *testing.T) {
	for _, task := range []Task{Copy, Progression, Uniform} {
		if task.String() == "" {
			t.Error("empty task string")
		}
	}
}

func TestCorpusRoundTrip(t *testing.T) {
	c, err := NewCorpus("hello world, hello ratel")
	if err != nil {
		t.Fatal(err)
	}
	ids, err := c.Encode("hello")
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Decode(ids); got != "hello" {
		t.Errorf("decode(encode) = %q", got)
	}
	if _, err := c.Encode("z"); err == nil {
		t.Error("unknown character accepted")
	}
	if c.VocabSize() < 5 || c.Len() != 24 {
		t.Errorf("vocab=%d len=%d", c.VocabSize(), c.Len())
	}
	if c.Decode([]int{-1, 999}) != "??" {
		t.Error("out-of-range decode should map to ?")
	}
}

func TestCorpusBatches(t *testing.T) {
	c, err := NewCorpus(DefaultText)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	tokens, targets, err := c.Batch(rng, 3, 16)
	if err != nil {
		t.Fatal(err)
	}
	for b := range tokens {
		if len(tokens[b]) != 16 || len(targets[b]) != 16 {
			t.Fatal("bad window size")
		}
		// Targets are the input shifted by one.
		for s := 0; s < 15; s++ {
			if targets[b][s] != tokens[b][s+1] {
				t.Fatal("targets are not next characters")
			}
		}
	}
	if _, _, err := c.Batch(rng, 0, 4); err == nil {
		t.Error("batch 0 accepted")
	}
	if _, _, err := c.Batch(rng, 1, 100000); err == nil {
		t.Error("oversized window accepted")
	}
}

func TestCorpusErrors(t *testing.T) {
	if _, err := NewCorpus("   a  "); err == nil {
		t.Error("tiny corpus accepted")
	}
}
