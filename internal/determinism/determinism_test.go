// Package determinism_test is a regression gate for the repo's core
// guarantee: the planner and the discrete-event simulator are pure
// functions of their inputs. Two back-to-back runs must produce
// byte-identical plan descriptions and trace JSON — any divergence means
// map-iteration order, wall-clock reads, or scheduling races leaked into
// results (exactly what the simdet analyzer exists to keep out).
package determinism_test

import (
	"bytes"
	"testing"

	"ratel/internal/capacity"
	"ratel/internal/hw"
	"ratel/internal/itersim"
	"ratel/internal/model"
	"ratel/internal/plan"
	"ratel/internal/strategy"
	"ratel/internal/trace"
	"ratel/internal/units"
)

// artifacts is one full planner+simulator run rendered to bytes.
type artifacts struct {
	planDesc   string
	traceJSON  []byte
	chromeJSON []byte
}

func runOnce(t *testing.T) artifacts {
	t.Helper()
	cfg := model.MustByName("13B")
	srv := hw.EvalServer(hw.RTX4090, 768*units.GiB, 12)
	const batch = 32

	profile := capacity.PlannerProfile(strategy.Ratel, cfg, batch, srv)
	pl, err := plan.Optimize(profile)
	if err != nil {
		t.Fatalf("plan.Optimize: %v", err)
	}

	rep, err := itersim.Simulate(strategy.Ratel, cfg, batch, srv)
	if err != nil {
		t.Fatalf("itersim.Simulate: %v", err)
	}

	var tj bytes.Buffer
	if err := trace.WriteJSON(rep.Result, &tj); err != nil {
		t.Fatalf("trace.WriteJSON: %v", err)
	}
	var cj bytes.Buffer
	if err := trace.WriteChrome(trace.ChromeFromSim(rep.Result), &cj); err != nil {
		t.Fatalf("trace.WriteChrome: %v", err)
	}
	return artifacts{planDesc: pl.Describe(), traceJSON: tj.Bytes(), chromeJSON: cj.Bytes()}
}

func TestPlannerAndSimulatorAreDeterministic(t *testing.T) {
	first := runOnce(t)
	second := runOnce(t)

	if first.planDesc != second.planDesc {
		t.Errorf("plan description differs between identical runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
			first.planDesc, second.planDesc)
	}
	if !bytes.Equal(first.traceJSON, second.traceJSON) {
		t.Errorf("trace JSON differs between identical runs (%d vs %d bytes)",
			len(first.traceJSON), len(second.traceJSON))
	}
	if !bytes.Equal(first.chromeJSON, second.chromeJSON) {
		t.Errorf("Chrome trace JSON differs between identical runs (%d vs %d bytes)",
			len(first.chromeJSON), len(second.chromeJSON))
	}
}
