// Package profile implements hardware-aware profiling (§IV-B): gathering
// the Table I quantities the planner and the simulator need. Two paths are
// provided:
//
//   - Analytical: assemble the profile from the model accounting and the
//     server description (what the whole-figure experiments use).
//   - Measured: benchmark the real substrates — the NVMe array's aggregate
//     read/write bandwidth and the CPU optimizer's parameter rate — the way
//     the paper's profiling iteration monitors PCIe traffic.
package profile

import (
	"fmt"
	"time"

	"ratel/internal/capacity"
	"ratel/internal/hw"
	"ratel/internal/model"
	"ratel/internal/nvme"
	"ratel/internal/plan"
	"ratel/internal/strategy"
	"ratel/internal/units"
)

// Analytical builds the planner profile for a policy running a model on a
// server, with the policy's efficiency deratings applied.
func Analytical(p strategy.Policy, cfg model.Config, batch int, srv hw.Server) plan.Profile {
	return capacity.PlannerProfile(p, cfg, batch, srv)
}

// SSDBandwidth measures the aggregate sequential read and write bandwidth
// of an NVMe array by streaming objects of objBytes through it rounds
// times. It is how the engine fills in BW_S2M and BW_M2S when running on a
// real (or throttled) array.
func SSDBandwidth(a *nvme.Array, objBytes, rounds int) (read, write units.BytesPerSecond, err error) {
	if objBytes <= 0 || rounds <= 0 {
		return 0, 0, fmt.Errorf("profile: need positive object size and rounds")
	}
	buf := make([]byte, objBytes)
	for i := range buf {
		buf[i] = byte(i * 31)
	}

	start := time.Now()
	for i := 0; i < rounds; i++ {
		if err := a.Put(fmt.Sprintf("profile/bw/%d", i), buf); err != nil {
			return 0, 0, fmt.Errorf("profile: write benchmark: %w", err)
		}
	}
	writeDur := time.Since(start)

	start = time.Now()
	for i := 0; i < rounds; i++ {
		if err := a.ReadInto(fmt.Sprintf("profile/bw/%d", i), buf); err != nil {
			return 0, 0, fmt.Errorf("profile: read benchmark: %w", err)
		}
	}
	readDur := time.Since(start)

	for i := 0; i < rounds; i++ {
		if err := a.Delete(fmt.Sprintf("profile/bw/%d", i)); err != nil {
			return 0, 0, fmt.Errorf("profile: cleanup: %w", err)
		}
	}

	total := float64(objBytes * rounds)
	return units.BytesPerSecond(total / readDur.Seconds()),
		units.BytesPerSecond(total / writeDur.Seconds()), nil
}

// AdamRate measures an optimizer step implementation's parameter
// throughput: step must update exactly n parameters per call.
func AdamRate(n int, rounds int, step func()) (float64, error) {
	if n <= 0 || rounds <= 0 || step == nil {
		return 0, fmt.Errorf("profile: need positive sizes and a step function")
	}
	step() // warm up
	start := time.Now()
	for i := 0; i < rounds; i++ {
		step()
	}
	dur := time.Since(start).Seconds()
	if dur <= 0 {
		return 0, fmt.Errorf("profile: optimizer benchmark completed in zero time")
	}
	return float64(n*rounds) / dur, nil
}

// Overhead reports the profiling iteration's cost relative to a steady
// iteration (the paper: 2-3x one iteration, negligible over a fine-tuning
// run of thousands of iterations).
func Overhead(profilingIter, steadyIter units.Seconds, totalIters int) float64 {
	if steadyIter <= 0 || totalIters <= 0 {
		return 0
	}
	return float64(profilingIter-steadyIter) / (float64(steadyIter) * float64(totalIters))
}
