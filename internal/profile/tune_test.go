package profile

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ratel/internal/tensor"
)

// restoreTensorSettings snapshots the tunables and restores them when the
// test ends, so tuning tests cannot leak settings into other packages'
// tests sharing the process.
func restoreTensorSettings(t *testing.T) {
	t.Helper()
	k, j := tensor.Tiling()
	g := tensor.ElemGrain()
	t.Cleanup(func() {
		if err := tensor.SetTiling(k, j); err != nil {
			t.Fatal(err)
		}
		if err := tensor.SetElemGrain(g); err != nil {
			t.Fatal(err)
		}
	})
}

// TestTuneKernelsSweepAndRoundtrip runs a tiny sweep, checks the result is
// drawn from the candidate sets with metadata filled, round-trips it
// through Save/Load, and applies it.
func TestTuneKernelsSweepAndRoundtrip(t *testing.T) {
	restoreTensorSettings(t)
	var lines int
	tuning, err := TuneKernels(TuneConfig{Dim: 48, ElemN: 1 << 12, Repeats: 1},
		func(string, ...any) { lines++ })
	if err != nil {
		t.Fatal(err)
	}
	kBlocks, jBlocks, grains := tuneCandidates()
	if lines != len(kBlocks)+len(jBlocks)+len(grains) {
		t.Errorf("logf called %d times, want %d", lines, len(kBlocks)+len(jBlocks)+len(grains))
	}
	if !contains(kBlocks, tuning.MatMulKBlock) || !contains(jBlocks, tuning.MatMulJBlock) || !contains(grains, tuning.ElemGrain) {
		t.Errorf("tuning picked values outside the candidate sets: %+v", tuning)
	}
	if tuning.Version != TuningVersion || tuning.SIMDLevel == "" || tuning.Threads < 1 || tuning.CreatedAt == "" {
		t.Errorf("metadata incomplete: %+v", tuning)
	}

	// The sweep must restore the pre-sweep settings.
	preK, preJ := tensor.Tiling()
	if wantK, wantJ := tensor.Tiling(); preK != wantK || preJ != wantJ {
		t.Errorf("sweep leaked tiling %d,%d", preK, preJ)
	}

	path := filepath.Join(t.TempDir(), "tune.json")
	if err := tuning.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTuning(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != tuning {
		t.Errorf("roundtrip changed the profile:\n  saved  %+v\n  loaded %+v", tuning, loaded)
	}

	if err := loaded.Apply(); err != nil {
		t.Fatal(err)
	}
	if k, j := tensor.Tiling(); k != loaded.MatMulKBlock || j != loaded.MatMulJBlock {
		t.Errorf("Apply set tiling %d,%d, want %d,%d", k, j, loaded.MatMulKBlock, loaded.MatMulJBlock)
	}
	if g := tensor.ElemGrain(); g != loaded.ElemGrain {
		t.Errorf("Apply set grain %d, want %d", g, loaded.ElemGrain)
	}
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// TestLoadTuningRejectsBadProfiles checks version and validity gating.
func TestLoadTuningRejectsBadProfiles(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"missing":  "", // never written
		"garbage":  "not json",
		"version":  `{"version": 99, "matmul_k_block": 1, "matmul_j_block": 1, "elem_grain": 1}`,
		"zeroTile": `{"version": 1, "matmul_k_block": 0, "matmul_j_block": 64, "elem_grain": 4096}`,
	}
	for name, body := range cases {
		path := filepath.Join(dir, name+".json")
		if body != "" {
			if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := LoadTuning(path); err == nil {
			t.Errorf("LoadTuning accepted %s profile", name)
		}
	}
}

// TestStartupTuning exercises the startup loader directly (the sync.Once
// wrapper fires at most once per process, so tests target the inner func).
func TestStartupTuning(t *testing.T) {
	restoreTensorSettings(t)

	// Unset env → no-op.
	if path, err := loadStartupTuning(""); path != "" || err != nil {
		t.Errorf("unset: got (%q, %v), want no-op", path, err)
	}

	// Valid profile → applied.
	good := Tuning{Version: TuningVersion, SIMDLevel: "generic", Threads: 1,
		CreatedAt: "2026-01-01T00:00:00Z", MatMulKBlock: 96, MatMulJBlock: 24, ElemGrain: 2048}
	path := filepath.Join(t.TempDir(), "tune.json")
	if err := good.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := loadStartupTuning(path)
	if err != nil || got != path {
		t.Fatalf("loadStartupTuning(%q) = (%q, %v)", path, got, err)
	}
	if k, j := tensor.Tiling(); k != 96 || j != 24 {
		t.Errorf("startup tuning applied tiling %d,%d, want 96,24", k, j)
	}
	if g := tensor.ElemGrain(); g != 2048 {
		t.Errorf("startup tuning applied grain %d, want 2048", g)
	}

	// Named but missing → error (a silently-ignored calibration request
	// would be an invisible performance regression).
	if _, err := loadStartupTuning(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing profile: want error")
	} else if !strings.Contains(err.Error(), "tuning") {
		t.Errorf("missing profile error lacks context: %v", err)
	}
}
