package profile

import (
	"testing"

	"ratel/internal/hw"
	"ratel/internal/model"
	"ratel/internal/nvme"
	"ratel/internal/strategy"
	"ratel/internal/units"
)

func TestAnalyticalProfile(t *testing.T) {
	srv := hw.EvalServer(hw.RTX4090, 768*units.GiB, 12)
	p := Analytical(strategy.Ratel, model.MustByName("13B"), 32, srv)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.BWS2M.GBpsf() != 32 {
		t.Errorf("BWS2M = %.1f GB/s, want 32", p.BWS2M.GBpsf())
	}
	if p.MemAvailM <= 0 {
		t.Error("MemAvail should be positive on the 768 GiB server")
	}
}

func TestSSDBandwidthScalesWithDevices(t *testing.T) {
	open := func(devices int) *nvme.Array {
		a, err := nvme.Open(nvme.Config{
			Devices: devices,
			ReadBW:  units.GBps(0.5), WriteBW: units.GBps(0.5),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { a.Close() })
		return a
	}
	// A wall-clock measurement on a loaded single-core box (race runs) can
	// eat a GC pause mid-window and miss the scaling ratio by a hair, so
	// retry the whole measurement a few times before declaring failure.
	var r1, w1, r4, w4 units.BytesPerSecond
	for attempt := 0; attempt < 3; attempt++ {
		var err error
		if r1, w1, err = SSDBandwidth(open(1), 8<<20, 3); err != nil {
			t.Fatal(err)
		}
		if r4, w4, err = SSDBandwidth(open(4), 8<<20, 3); err != nil {
			t.Fatal(err)
		}
		if float64(r4) > 1.5*float64(r1) && float64(w4) > 1.5*float64(w1) {
			return
		}
	}
	t.Errorf("bandwidth did not scale with devices: read %.2f->%.2f GB/s, write %.2f->%.2f GB/s",
		r1.GBpsf(), r4.GBpsf(), w1.GBpsf(), w4.GBpsf())
}

func TestSSDBandwidthErrors(t *testing.T) {
	a, err := nvme.Open(nvme.Config{Devices: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if _, _, err := SSDBandwidth(a, 0, 1); err == nil {
		t.Error("zero object size accepted")
	}
	if _, _, err := SSDBandwidth(a, 1024, 0); err == nil {
		t.Error("zero rounds accepted")
	}
}

func TestAdamRate(t *testing.T) {
	sink := 0.0
	rate, err := AdamRate(1000, 3, func() {
		for i := 0; i < 1000; i++ {
			sink += float64(i)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rate <= 0 {
		t.Errorf("rate = %v, want positive", rate)
	}
	if _, err := AdamRate(0, 1, func() {}); err == nil {
		t.Error("zero params accepted")
	}
	if _, err := AdamRate(1, 1, nil); err == nil {
		t.Error("nil step accepted")
	}
	_ = sink
}

func TestOverhead(t *testing.T) {
	// A 3x profiling iteration amortized over 1000 iterations costs 0.2%.
	if got := Overhead(30, 10, 1000); got != 0.002 {
		t.Errorf("overhead = %v, want 0.002", got)
	}
	if got := Overhead(30, 0, 1000); got != 0 {
		t.Error("zero steady iteration should report 0")
	}
}
