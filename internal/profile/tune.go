package profile

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"ratel/internal/tensor"
	"ratel/internal/tensor/simd"
)

// Kernel calibration (the `ratelbench tune` subcommand): the matmul tile
// sizes and the element-wise grain trade cache residency against
// scheduling overhead, and the best settings are machine-specific — cache
// sizes, SIMD width, and core count all move the optimum. Because every
// tiling choice is bit-identical (tiles only reorder *independent* output
// work, never an accumulation; see tensor.SetTiling), a profile measured
// once can be applied on every later run without affecting results.
//
// The profile is a small JSON file. RATEL_TUNE_PROFILE names the file to
// load at engine startup (unset → built-in defaults); `ratelbench tune`
// writes one.

// TuningVersion identifies the profile schema; Load rejects other versions
// rather than silently applying fields with changed meanings.
const TuningVersion = 1

// Tuning is a machine-specific kernel calibration profile.
type Tuning struct {
	Version   int    `json:"version"`
	SIMDLevel string `json:"simd_level"`          // dispatch level when measured (informational)
	Threads   int    `json:"threads"`             // pool parallelism when measured (informational)
	CreatedAt string `json:"created_at"`          // RFC 3339 UTC
	SweepDim  int    `json:"sweep_dim,omitempty"` // matmul dimension the sweep timed

	MatMulKBlock int `json:"matmul_k_block"` // tensor.SetTiling k: MatMul/TMatMul k-panel rows
	MatMulJBlock int `json:"matmul_j_block"` // tensor.SetTiling j: MatMulT column tile
	ElemGrain    int `json:"elem_grain"`     // tensor.SetElemGrain: min elements per chunk
}

// Apply installs the profile's settings into the tensor package. The
// settings are result-neutral, so a stale or foreign profile can cost
// speed but never correctness.
func (t Tuning) Apply() error {
	if err := tensor.SetTiling(t.MatMulKBlock, t.MatMulJBlock); err != nil {
		return fmt.Errorf("profile: tuning: %w", err)
	}
	if err := tensor.SetElemGrain(t.ElemGrain); err != nil {
		return fmt.Errorf("profile: tuning: %w", err)
	}
	return nil
}

// Save writes the profile as indented JSON.
func (t Tuning) Save(path string) error {
	b, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return fmt.Errorf("profile: encode tuning: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// LoadTuning reads a profile written by Save and validates its version and
// settings (Apply re-validates; this catches a corrupt file early with a
// path in the error).
func LoadTuning(path string) (Tuning, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Tuning{}, fmt.Errorf("profile: read tuning: %w", err)
	}
	var t Tuning
	if err := json.Unmarshal(b, &t); err != nil {
		return Tuning{}, fmt.Errorf("profile: parse tuning %s: %w", path, err)
	}
	if t.Version != TuningVersion {
		return Tuning{}, fmt.Errorf("profile: tuning %s has version %d, want %d", path, t.Version, TuningVersion)
	}
	if t.MatMulKBlock < 1 || t.MatMulJBlock < 1 || t.ElemGrain < 1 {
		return Tuning{}, fmt.Errorf("profile: tuning %s has non-positive tile sizes", path)
	}
	return t, nil
}

// TuneEnvVar names the calibration profile applied at engine startup.
const TuneEnvVar = "RATEL_TUNE_PROFILE"

var (
	startupOnce sync.Once
	startupPath string
	startupErr  error
)

// ApplyStartupTuning loads and applies the profile named by
// RATEL_TUNE_PROFILE, once per process (engine.New calls it; later calls
// return the first outcome). With the variable unset it is a no-op
// returning ("", nil); with it set, a missing or invalid file is an error
// — a requested calibration that silently fails to load would be a
// hard-to-spot performance regression.
func ApplyStartupTuning() (path string, err error) {
	startupOnce.Do(func() {
		startupPath, startupErr = loadStartupTuning(os.Getenv(TuneEnvVar))
	})
	return startupPath, startupErr
}

func loadStartupTuning(path string) (string, error) {
	if path == "" {
		return "", nil
	}
	t, err := LoadTuning(path)
	if err != nil {
		return "", err
	}
	return path, t.Apply()
}

// TuneConfig sizes the calibration sweep.
type TuneConfig struct {
	// Dim is the square matmul dimension timed per candidate tile
	// (default 512 — big enough that tiling matters, small enough that
	// the full sweep stays in seconds).
	Dim int
	// ElemN is the element count timed per grain candidate (default 1<<20).
	ElemN int
	// Repeats is the timing repetitions per candidate; best-of is kept
	// (default 3).
	Repeats int
}

func (c *TuneConfig) fill() {
	if c.Dim <= 0 {
		c.Dim = 512
	}
	if c.ElemN <= 0 {
		c.ElemN = 1 << 20
	}
	if c.Repeats <= 0 {
		c.Repeats = 3
	}
}

// tuneCandidates returns the swept settings. Exposed as data (not
// hard-coded in the loop) so tests can assert coverage.
func tuneCandidates() (kBlocks, jBlocks, grains []int) {
	return []int{64, 128, 256, 512, 1024},
		[]int{16, 32, 64, 128, 256},
		[]int{1 << 10, 1 << 12, 1 << 14, 1 << 16}
}

// TuneKernels sweeps the matmul tile sizes and the element-wise grain on
// this machine and returns the fastest settings found. The current tensor
// settings are restored before returning — callers opt in via Apply. logf
// (optional) receives one line per candidate with its best time.
func TuneKernels(cfg TuneConfig, logf func(format string, a ...any)) (Tuning, error) {
	cfg.fill()
	if logf == nil {
		logf = func(string, ...any) {}
	}
	oldK, oldJ := tensor.Tiling()
	oldGrain := tensor.ElemGrain()
	defer func() {
		_ = tensor.SetTiling(oldK, oldJ)
		_ = tensor.SetElemGrain(oldGrain)
	}()

	rng := rand.New(rand.NewSource(1))
	a := tensor.New(cfg.Dim, cfg.Dim)
	b := tensor.New(cfg.Dim, cfg.Dim)
	a.RandInit(rng, 1)
	b.RandInit(rng, 1)
	elems := tensor.New(1, cfg.ElemN)
	elems.RandInit(rng, 1)

	best := Tuning{
		Version:   TuningVersion,
		SIMDLevel: simd.Level(),
		Threads:   tensor.Parallelism(),
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
		SweepDim:  cfg.Dim,
	}
	kBlocks, jBlocks, grains := tuneCandidates()

	// k-tile: times MatMul (the axpy-panel kernel streams b in k-row
	// panels, so kBlock controls its cache footprint).
	bestD := time.Duration(0)
	for _, k := range kBlocks {
		if err := tensor.SetTiling(k, oldJ); err != nil {
			return Tuning{}, err
		}
		d := timeBest(cfg.Repeats, func() error { _, err := tensor.MatMul(a, b); return err })
		if d < 0 {
			return Tuning{}, fmt.Errorf("profile: tune: matmul failed at kBlock=%d", k)
		}
		logf("tune matmul kBlock=%-5d %v", k, d)
		if best.MatMulKBlock == 0 || d < bestD {
			best.MatMulKBlock, bestD = k, d
		}
	}
	if err := tensor.SetTiling(oldK, oldJ); err != nil {
		return Tuning{}, err
	}

	// j-tile: times MatMulT (the dot kernel walks jBlock rows of bT per
	// pass over a's row).
	bestD = 0
	for _, j := range jBlocks {
		if err := tensor.SetTiling(best.MatMulKBlock, j); err != nil {
			return Tuning{}, err
		}
		d := timeBest(cfg.Repeats, func() error { _, err := tensor.MatMulT(a, b); return err })
		if d < 0 {
			return Tuning{}, fmt.Errorf("profile: tune: matmulT failed at jBlock=%d", j)
		}
		logf("tune matmulT jBlock=%-5d %v", j, d)
		if best.MatMulJBlock == 0 || d < bestD {
			best.MatMulJBlock, bestD = j, d
		}
	}

	// Element-wise grain: times the fp16 round-trip (the densest
	// element-wise kernel the training step runs).
	bestD = 0
	for _, g := range grains {
		if err := tensor.SetElemGrain(g); err != nil {
			return Tuning{}, err
		}
		d := timeBest(cfg.Repeats, func() error { elems.RoundFP16InPlace(); return nil })
		if d < 0 {
			return Tuning{}, fmt.Errorf("profile: tune: round failed at grain=%d", g)
		}
		logf("tune elemwise grain=%-7d %v", g, d)
		if best.ElemGrain == 0 || d < bestD {
			best.ElemGrain, bestD = g, d
		}
	}
	return best, nil
}

// timeBest runs f once to warm caches, then returns the best of repeats
// timings (negative on error).
func timeBest(repeats int, f func() error) time.Duration {
	if f() != nil {
		return -1
	}
	best := time.Duration(0)
	for i := 0; i < repeats; i++ {
		start := time.Now()
		if f() != nil {
			return -1
		}
		if d := time.Since(start); i == 0 || d < best {
			best = d
		}
	}
	return best
}
