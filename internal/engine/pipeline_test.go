package engine

import (
	"errors"
	"math"
	"testing"
	"time"

	"ratel/internal/agoffload"
	"ratel/internal/nvme"
	"ratel/internal/obs"
	"ratel/internal/units"
)

// pipelineIdle asserts the invariants the step barrier guarantees between
// steps, successful or failed: no write in flight, every ring-slot token
// home, no leaked host-pool reservation, no live read-ahead.
func pipelineIdle(t *testing.T, e *Engine) {
	t.Helper()
	if e.pipe == nil {
		t.Fatal("engine has no pipeline (DisablePipeline set?)")
	}
	if e.pipe.outstanding != 0 {
		t.Fatalf("%d offload writes still outstanding after the step barrier", e.pipe.outstanding)
	}
	if free, want := e.pipe.freeSlots(), len(e.pipe.slotTok); free != want {
		t.Fatalf("%d of %d ring-slot tokens home after the step barrier", free, want)
	}
	if used := e.hostPool.Used(); used != 0 {
		t.Fatalf("host pool still holds %v after the step barrier", used)
	}
	for i, live := range e.fetchLive {
		if live {
			t.Fatalf("block %d read-ahead still marked live after the step", i)
		}
	}
}

// poisonPool dirties a spread of shared-pool buffers, the datapath_test
// harness: any consumer trusting recycled contents now reads trash.
func poisonPool(blobLen int) {
	var bufs [][]byte
	for _, n := range []int{blobLen, blobLen, 512, 4096} {
		bufs = append(bufs, nvme.Buffers.Get(n))
	}
	for _, b := range bufs {
		for i := range b {
			b[i] = 0xAB
		}
		nvme.Buffers.Put(b)
	}
}

// TestPipelineWriteFaultBarrier injects a device fault that fires on the
// second activation write of a step — squarely mid-pipeline, with block 0's
// blob already retired and later blocks still computing. The step barrier
// must surface the device error, and every slot token, reservation, and
// read-ahead mark must be back home; after the fault clears (and the shared
// pool is poisoned, to prove the returned buffers carry no poison into
// values), training resumes.
func TestPipelineWriteFaultBarrier(t *testing.T) {
	// One device: every chunk op lands on it, so the countdown is exact. A
	// mini blob (3360 bytes) is one 4096-byte stripe chunk, and Serialized
	// mode does no optimizer I/O until after backward — so from the step's
	// start, chunk ops 0,1,2 are exactly the three activation writes.
	e := newEngine(t, Config{
		GradMode: agoffload.Serialized,
		Swap:     map[int]Tier{0: SwapSSD, 1: SwapSSD, 2: SwapSSD},
		Devices:  1,
		Tracer:   obs.NewTracer(0),
	})
	tokens, targets := data(e.cfg.Model, 3)

	boom := errors.New("flash wear-out")
	e.Array().InjectFaultAfter(0, 1, boom) // first write lands, second fails
	if _, err := e.TrainStep(tokens, targets); err == nil || !errors.Is(err, boom) {
		t.Fatalf("TrainStep with mid-pipeline write fault = %v, want %v", err, boom)
	}
	pipelineIdle(t, e)

	e.Array().InjectFault(0, nil)
	poisonPool(e.blobLen)
	loss, err := e.TrainStep(tokens, targets)
	if err != nil {
		t.Fatalf("TrainStep after fault cleared: %v", err)
	}
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("recovered step loss = %v", loss)
	}
	pipelineIdle(t, e)
}

// TestPipelineReadFaultBarrier arms the countdown past the forward's three
// writes so the first backward read-ahead fails mid-flight. The fetch error
// must surface from TrainStep, and the deferred drain must leave no live
// read-ahead or leaked reservation behind.
func TestPipelineReadFaultBarrier(t *testing.T) {
	e := newEngine(t, Config{
		GradMode: agoffload.Serialized,
		Swap:     map[int]Tier{0: SwapSSD, 1: SwapSSD, 2: SwapSSD},
		Devices:  1,
	})
	tokens, targets := data(e.cfg.Model, 3)

	boom := errors.New("uncorrectable read")
	e.Array().InjectFaultAfter(0, 3, boom) // ops 0..2: forward writes; op 3: first read
	if _, err := e.TrainStep(tokens, targets); err == nil || !errors.Is(err, boom) {
		t.Fatalf("TrainStep with mid-pipeline read fault = %v, want %v", err, boom)
	}
	pipelineIdle(t, e)

	e.Array().InjectFault(0, nil)
	poisonPool(e.blobLen)
	if _, err := e.TrainStep(tokens, targets); err != nil {
		t.Fatalf("TrainStep after fault cleared: %v", err)
	}
	pipelineIdle(t, e)
}

// TestPipelineWindowStall pins the ring's flow control: a depth-1 window
// over three SSD blocks with a slow device must block block 2's encode on
// block 0's in-flight write. The stall is observable — counted in
// StepMetrics and recorded on the stall lane — and values stay identical to
// an unthrottled synchronous run.
func TestPipelineWindowStall(t *testing.T) {
	swap := map[int]Tier{0: SwapSSD, 1: SwapSSD, 2: SwapSSD}
	tr := obs.NewTracer(0)
	slow := newEngine(t, Config{
		GradMode:      agoffload.Optimized,
		Swap:          swap,
		PipelineDepth: 1,
		SSD:           &nvme.Config{OpLatency: time.Millisecond},
		Tracer:        tr,
	})
	ref := newEngine(t, Config{GradMode: agoffload.Optimized, Swap: swap, DisablePipeline: true})

	slowLoss := trainK(t, slow, 2)
	refLoss := trainK(t, ref, 2)
	for i := range refLoss {
		if refLoss[i] != slowLoss[i] {
			t.Fatalf("loss[%d] differs under window stalls: %v vs %v", i, refLoss[i], slowLoss[i])
		}
	}
	pa, pb := paramsSnapshot(ref.Model()), paramsSnapshot(slow.Model())
	if !floatsEqual(pa, pb) {
		t.Fatal("window stalls changed trained parameters")
	}

	m := slow.LastStepMetrics()
	if m.OffloadStalls == 0 || m.OffloadStallWait <= 0 {
		t.Fatalf("depth-1 window over 3 slow writes recorded no stalls: %+v", m)
	}
	if m.OffloadQueuePeak == 0 {
		t.Fatalf("offload queue peak not recorded: %+v", m)
	}
	stallSpans := 0
	for _, s := range tr.Spans() {
		if s.Lane == obs.LaneStall {
			stallSpans++
			if s.End < s.Start {
				t.Fatalf("stall span ends before it starts: %+v", s)
			}
		}
	}
	if stallSpans == 0 {
		t.Fatal("no spans recorded on the stall lane")
	}
	pipelineIdle(t, slow)
}

// TestPipelinePoolBackpressure caps the host staging pool at exactly one
// blob: every block past the first must wait for an in-flight write to
// release its reservation before reserving its own. The retry loop must
// make progress (no deadlock, no spurious OOM), count its stalls, and keep
// values bit-identical.
func TestPipelinePoolBackpressure(t *testing.T) {
	swap := map[int]Tier{0: SwapSSD, 1: SwapSSD, 2: SwapSSD}
	blob := geometryOf(miniConfig()).blobBytes()
	tight := newEngine(t, Config{
		GradMode:   agoffload.Optimized,
		Swap:       swap,
		HostMemory: units.Bytes(blob), // exactly one blob in flight
		SSD:        &nvme.Config{OpLatency: time.Millisecond},
	})
	ref := newEngine(t, Config{GradMode: agoffload.Optimized, Swap: swap, DisablePipeline: true})

	tightLoss := trainK(t, tight, 2)
	refLoss := trainK(t, ref, 2)
	for i := range refLoss {
		if refLoss[i] != tightLoss[i] {
			t.Fatalf("loss[%d] differs under pool backpressure: %v vs %v", i, refLoss[i], tightLoss[i])
		}
	}
	if !floatsEqual(paramsSnapshot(ref.Model()), paramsSnapshot(tight.Model())) {
		t.Fatal("pool backpressure changed trained parameters")
	}
	if m := tight.LastStepMetrics(); m.OffloadStalls == 0 {
		t.Fatalf("one-blob staging pool over 3 slow writes recorded no stalls: %+v", m)
	}
	pipelineIdle(t, tight)
}

// TestPipelineDepthValidation: a negative window is a configuration error,
// not a silent fallback.
func TestPipelineDepthValidation(t *testing.T) {
	if _, err := New(Config{Model: miniConfig(), PipelineDepth: -1}); err == nil {
		t.Fatal("New accepted a negative PipelineDepth")
	}
}

// TestPipelineDefaultDepth: the zero Config gets DefaultPipelineDepth and a
// matching ring; DisablePipeline gets no pipeline at all.
func TestPipelineDefaultDepth(t *testing.T) {
	on := newEngine(t, Config{GradMode: agoffload.Optimized})
	if on.depth != DefaultPipelineDepth || on.pipe == nil {
		t.Fatalf("default engine: depth %d, pipe %v", on.depth, on.pipe != nil)
	}
	if len(on.arena.slots) != DefaultPipelineDepth+1 {
		t.Fatalf("ring has %d slots, want depth+1 = %d", len(on.arena.slots), DefaultPipelineDepth+1)
	}
	off := newEngine(t, Config{GradMode: agoffload.Optimized, DisablePipeline: true})
	if off.depth != 0 || off.pipe != nil {
		t.Fatalf("DisablePipeline engine: depth %d, pipe %v", off.depth, off.pipe != nil)
	}
}
