package engine

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ratel/internal/memctl"
	"ratel/internal/nvme"
	"ratel/internal/obs"
	"ratel/internal/units"
)

// This file is the write-behind half of the full-duplex activation I/O
// pipeline (§IV-C/§IV-D, Fig. 4): forward-pass SSD offloads are encoded
// into ring-arena slots and drained by persistent writer goroutines while
// the compute loop moves on to the next block. The window is bounded two
// ways — by the ring's slot tokens (at most depth blobs in flight) and by
// host-pool reservations (each queued blob pins its staging footprint until
// the NVMe write retires). A full window stalls the compute loop, and the
// stall is recorded on obs.LaneStall. All in-flight writes join a strict
// barrier at the forward/backward boundary and on every failure path, so
// every error surfaces before the step's result is reported and no buffer
// or reservation outlives its step.

// DefaultPipelineDepth is the activation I/O window used when
// Config.PipelineDepth is zero: up to 2 blobs in flight per direction
// (write-behind in forward, read-ahead in backward).
const DefaultPipelineDepth = 2

// offloadJob is one block's activation blob on its way to the NVMe array.
// The blob is an arena slot buffer: the writer owns it (and the slot token)
// until the Put returns, then releases the reservation and returns the
// token so the slot can be re-encoded.
type offloadJob struct {
	slot  int
	key   string
	label string // precomputed write-span label
	blob  []byte
	res   *memctl.Reservation
}

// offloadPipeline drains offloadJobs onto the NVMe array. Writer goroutines
// are spawned once at engine construction and live until Close; per-step
// state (outstanding jobs, stall accounting) belongs to the engine's step
// goroutine. A nil *offloadPipeline is the synchronous configuration: every
// method is nil-safe and a no-op.
type offloadPipeline struct {
	array  *nvme.Array
	tracer *obs.Tracer

	// jobs is the per-step offload queue. Its capacity equals the slot
	// count, and submissions are bounded by slot tokens, so a send never
	// blocks; flow control happens at token acquisition, where the stall is
	// observable, not silently inside the channel.
	jobs chan offloadJob
	// results carries one completion per submitted job. Its capacity is the
	// maximum number of offloads in a barrier window (one per model block),
	// NOT the slot count: the step goroutine only drains results at the
	// barrier or under pool backpressure, so a smaller buffer would block a
	// writer mid-step — and a blocked writer strands queued jobs that still
	// hold their slot tokens, deadlocking acquireSlot against the writer.
	results chan error
	// slotTok holds one token per arena slot. A slot's token is absent
	// exactly while a write from that slot is in flight; acquireSlot blocks
	// (and records the stall) until the writer returns it.
	slotTok []chan struct{}
	// hasErr is the fail-fast flag: writers set it so the forward loop can
	// stop encoding before the barrier formally surfaces the error.
	hasErr   atomic.Bool
	stopOnce sync.Once

	// Step-local accounting, owned by the engine's step goroutine.
	// poolStalls is the subset of stalls caused by host-staging exhaustion
	// (reserveStaged backpressure) — the adaptive depth controller's lower
	// signal, kept separate from ring-slot waits.
	outstanding int
	stalls      int
	poolStalls  int
	stallWait   time.Duration
	queuePeak   int
}

// newOffloadPipeline starts the writer goroutines. writers scales with the
// window: one writer serializes depth-1 exactly like the old inline path,
// two keep a deeper window's device throttle slots saturated. maxJobs is
// the most offloads a single barrier window can submit (the model's block
// count); it sizes results so a writer can always retire without waiting
// on the step goroutine.
func newOffloadPipeline(a *nvme.Array, tr *obs.Tracer, nslots, writers, maxJobs int) *offloadPipeline {
	if maxJobs < nslots {
		maxJobs = nslots
	}
	p := &offloadPipeline{
		array:   a,
		tracer:  tr,
		jobs:    make(chan offloadJob, nslots),
		results: make(chan error, maxJobs),
		slotTok: make([]chan struct{}, nslots),
	}
	for i := range p.slotTok {
		p.slotTok[i] = make(chan struct{}, 1)
		p.slotTok[i] <- struct{}{}
	}
	for w := 0; w < writers; w++ {
		go p.writer()
	}
	return p
}

// writer drains the offload queue until the pipeline is closed. Every job
// releases its reservation and returns its slot token no matter how the
// write went — the error travels on results, never by poisoning a buffer.
func (p *offloadPipeline) writer() {
	for j := range p.jobs {
		start := p.tracer.Now()
		// Write-behind is the least urgent traffic class: a whole
		// forward+backward separates the Put from the blob's next read.
		err := p.array.PutClass(j.key, j.blob, nvme.ClassWriteBehind)
		p.tracer.RecordSpan(obs.LaneOffload, j.label, start, p.tracer.Now())
		j.res.Release()
		p.slotTok[j.slot] <- struct{}{}
		if err != nil {
			p.hasErr.Store(true)
		}
		p.results <- err
	}
}

// close stops the writer goroutines. Idempotent; in-flight jobs finish
// first (the channel drains before the workers exit their range loop).
func (p *offloadPipeline) close() {
	if p == nil {
		return
	}
	p.stopOnce.Do(func() { close(p.jobs) })
}

// errored reports the fail-fast flag: some in-flight write has already
// failed, so the forward loop should stop feeding the window and let the
// barrier surface the error.
func (p *offloadPipeline) errored() bool { return p != nil && p.hasErr.Load() }

// acquireSlot takes slot's token, blocking while a previous write from the
// same ring slot is still in flight. A blocked acquisition is the window's
// flow control working; the wait is recorded on obs.LaneStall and counted
// for StepMetrics.
func (p *offloadPipeline) acquireSlot(slot int, stallLabel string) {
	select {
	case <-p.slotTok[slot]:
		return
	default:
	}
	start := time.Now()
	tstart := p.tracer.Now()
	<-p.slotTok[slot]
	p.tracer.RecordSpan(obs.LaneStall, stallLabel, tstart, p.tracer.Now())
	p.stalls++
	p.stallWait += time.Since(start)
}

// releaseSlot returns a token taken by acquireSlot without submitting a
// write — the encode-failure path.
func (p *offloadPipeline) releaseSlot(slot int) {
	p.slotTok[slot] <- struct{}{}
}

// submit queues one blob for write-behind. The caller must hold the job's
// slot token (acquireSlot); the send never blocks because outstanding jobs
// are bounded by the token count, which equals the queue capacity.
func (p *offloadPipeline) submit(j offloadJob) {
	p.jobs <- j
	p.outstanding++
	if l := len(p.jobs); l > p.queuePeak {
		p.queuePeak = l
	}
	// Hand the CPU to a writer right away. The compute loop never blocks
	// between submissions, so on a fully loaded host (GOMAXPROCS=1) a woken
	// writer otherwise waits for the ~10ms async-preemption tick before its
	// first device op — long enough to push the whole write train past the
	// end of forward compute. The writer parks on the device throttle almost
	// immediately, returning the CPU to compute.
	runtime.Gosched()
}

// limit drains in-flight write-behind until at most max jobs remain — the
// adaptive depth controller's forward-side window. The waits are not
// counted as stalls: they are imposed by the controller, not by flow
// control, and counting them would teach the controller to read its own
// throttling as congestion.
func (p *offloadPipeline) limit(max int) error {
	if p == nil {
		return nil
	}
	var joined error
	for p.outstanding > max {
		if err := p.waitOne(); err != nil {
			joined = errors.Join(joined, err)
		}
	}
	return joined
}

// waitOne blocks until any in-flight write retires and returns its error —
// the reservation-backpressure primitive: when the host pool is full, the
// forward loop waits for one queued blob's staging footprint to be
// released before retrying.
func (p *offloadPipeline) waitOne() error {
	err := <-p.results
	p.outstanding--
	return err
}

// barrier joins every in-flight write: it blocks until the queue is empty
// and returns all their errors joined. This is the strict step barrier —
// runBatch calls it at the forward/backward boundary and on every failure
// path, so no write (and no error) outlives its step. Idempotent: with
// nothing outstanding it returns nil immediately.
func (p *offloadPipeline) barrier() error {
	if p == nil {
		return nil
	}
	var joined error
	for p.outstanding > 0 {
		if err := p.waitOne(); err != nil {
			joined = errors.Join(joined, err)
		}
	}
	p.hasErr.Store(false)
	return joined
}

// resetStepCounters zeroes the per-step stall accounting; TrainStep and
// TrainStepAccum call it once per optimizer step.
func (p *offloadPipeline) resetStepCounters() {
	if p == nil {
		return
	}
	p.stalls = 0
	p.poolStalls = 0
	p.stallWait = 0
	p.queuePeak = 0
}

// freeSlots counts available slot tokens (all of them, between steps — the
// invariant the fault-injection tests pin).
func (p *offloadPipeline) freeSlots() int {
	if p == nil {
		return 0
	}
	n := 0
	for _, tok := range p.slotTok {
		n += len(tok)
	}
	return n
}

// reserveStaged reserves a queued blob's host staging footprint, treating a
// full pool as backpressure rather than failure while writes are in flight:
// each retired write releases its reservation, so waiting for one and
// retrying makes progress. Only when nothing is in flight (or the error is
// not an OOM) does the failure surface — the same hard-OOM semantics as the
// synchronous path.
func (e *Engine) reserveStaged(n int, stallLabel string) (*memctl.Reservation, error) {
	for {
		res, err := e.hostPool.Reserve(units.Bytes(n))
		if err == nil {
			return res, nil
		}
		if !errors.Is(err, memctl.ErrOOM) || e.pipe == nil || e.pipe.outstanding == 0 {
			return nil, err
		}
		start := time.Now()
		tstart := e.tracer.Now()
		werr := e.pipe.waitOne()
		e.tracer.RecordSpan(obs.LaneStall, stallLabel, tstart, e.tracer.Now())
		e.pipe.stalls++
		e.pipe.poolStalls++
		e.pipe.stallWait += time.Since(start)
		if werr != nil {
			return nil, werr
		}
	}
}
