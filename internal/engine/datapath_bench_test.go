package engine

import (
	"testing"

	"ratel/internal/agoffload"
	"ratel/internal/nn"
	"ratel/internal/nvme"
	"ratel/internal/tensor"
)

// BenchmarkCacheRoundTrip measures the full activation swap cycle for one
// block at a realistic blob size (~576 KiB of fp16): encode into a ring
// slot, store on the striped array, read back into the adjacent slot, and
// revive the ring cache. The steady-state path does all four stages
// without allocating; the pre-arena path allocated the blob, the fetch
// buffer, and a fresh BlockCache every cycle.
func BenchmarkCacheRoundTrip(b *testing.B) {
	g := geometry{batch: 2, seq: 64, hidden: 128, heads: 4}
	src := newBlockCache(g)
	for i, tt := range cacheTensors(src) {
		for j := range tt.Data {
			tt.Data[j] = tensor.RoundFP16(float32((i+j)%17) * 0.125)
		}
	}
	input := tensor.New(g.batch*g.seq, g.hidden)

	a, err := nvme.Open(nvme.Config{Devices: 4, StripeSize: 4096})
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()

	var ar blobArena
	ar.init(DefaultPipelineDepth + 1)
	n := g.blobBytes()
	b.SetBytes(int64(n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob := ar.slotBuf(i, n)
		if err := ar.encode(blob, src); err != nil {
			b.Fatal(err)
		}
		if err := a.Put("act/bench", blob); err != nil {
			b.Fatal(err)
		}
		fetch := ar.slotBuf(i+1, n)
		if err := a.ReadInto("act/bench", fetch); err != nil {
			b.Fatal(err)
		}
		c := ar.cacheFor(i, g)
		if err := ar.decode(c, fetch, input); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainStep_Swap is the end-to-end steady state: one optimizer
// step with active gradient offloading and mixed activation swapping
// (SSD / host / SSD), the configuration the allocation budget is pinned
// against.
func BenchmarkTrainStep_Swap(b *testing.B) {
	cfg := Config{
		Model:    nn.Config{Vocab: 64, Seq: 16, Hidden: 32, Heads: 4, Layers: 3, Batch: 2, Seed: 7},
		Devices:  4,
		GradMode: agoffload.Optimized,
		Swap:     map[int]Tier{0: SwapSSD, 1: SwapHost, 2: SwapSSD},
	}
	e, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	tokens, targets := data(cfg.Model, 1)
	for i := 0; i < 3; i++ {
		if _, err := e.TrainStep(tokens, targets); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.TrainStep(tokens, targets); err != nil {
			b.Fatal(err)
		}
	}
}
