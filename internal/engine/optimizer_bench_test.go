package engine

import (
	"testing"

	"ratel/internal/agoffload"
	"ratel/internal/nn"
	"ratel/internal/nvme"
	"ratel/internal/opt"
)

// optimizerBenchConfig shapes a step whose cost is dominated by optimizer
// state streaming (BENCH_optimizer.json): a wide-ish model over a short
// sequence, everything recomputed so the only SSD traffic is the 26 B/param
// state round-trip, on a Table III-shaped throttled array (same 1/200
// scaling argument as BENCH_overlap.json). The synchronous optimized
// schedule serializes each group's read->adam->write on the handler worker;
// the variants move that state traffic off the critical path.
func optimizerBenchConfig(mut func(*Config)) Config {
	cfg := Config{
		Model:    nn.Config{Vocab: 32, Seq: 64, Hidden: 64, Heads: 4, Layers: 4, Batch: 2, Seed: 21},
		GradMode: agoffload.Optimized,
		Devices:  3,
		SSD: &nvme.Config{
			ReadBW:     overlapReadBW,
			WriteBW:    overlapWriteBW,
			StripeSize: 1 << 16,
		},
	}
	mut(&cfg)
	return cfg
}

// BenchmarkTrainStepOptSchedule compares the optimizer scheduling modes on
// the state-streaming-bound step: sync (the baseline drain), readiness
// (state reads issued at gradient arrival, bit-identical), and async at two
// staleness bounds (tail partition deferred to the background applier).
func BenchmarkTrainStepOptSchedule(b *testing.B) {
	variants := []struct {
		name string
		mut  func(*Config)
	}{
		{"sync", func(c *Config) {}},
		{"readiness", func(c *Config) { c.OptSchedule = opt.ScheduleReadiness }},
		{"async-s1", func(c *Config) {
			c.OptSchedule = opt.ScheduleAsync
			c.AsyncTopK = 2
			c.MaxStaleness = 1
		}},
		{"async-s2", func(c *Config) {
			c.OptSchedule = opt.ScheduleAsync
			c.AsyncTopK = 2
			c.MaxStaleness = 2
		}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			e, err := New(optimizerBenchConfig(v.mut))
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			tokens, targets := data(e.cfg.Model, 9)
			for i := 0; i < 3; i++ {
				if _, err := e.TrainStep(tokens, targets); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.TrainStep(tokens, targets); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if err := e.FlushAsync(); err != nil {
				b.Fatal(err)
			}
			m := e.LastStepMetrics()
			b.ReportMetric(float64(m.OptimizerDrain.Microseconds()), "drain-µs/step")
			b.ReportMetric(float64(m.DeferredGroups), "deferred-groups/step")
		})
	}
}

// TestOptimizerBenchValues pins the benchmark's comparability claim: on the
// throttled bench config, the readiness variant follows the sync variant's
// trajectory bit-for-bit, and the async variants respect their staleness
// bounds.
func TestOptimizerBenchValues(t *testing.T) {
	if testing.Short() {
		t.Skip("throttled-array training in -short mode")
	}
	run := func(mut func(*Config)) ([]float64, *Engine) {
		e, err := New(optimizerBenchConfig(mut))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { e.Close() })
		tokens, targets := data(e.cfg.Model, 9)
		var losses []float64
		for i := 0; i < 3; i++ {
			loss, err := e.TrainStep(tokens, targets)
			if err != nil {
				t.Fatal(err)
			}
			losses = append(losses, loss)
		}
		return losses, e
	}
	syncLoss, _ := run(func(c *Config) {})
	readyLoss, _ := run(func(c *Config) { c.OptSchedule = opt.ScheduleReadiness })
	for i := range syncLoss {
		if syncLoss[i] != readyLoss[i] {
			t.Fatalf("readiness loss[%d] = %v differs from sync %v", i, readyLoss[i], syncLoss[i])
		}
	}
	for _, s := range []int{1, 2} {
		s := s
		_, e := run(func(c *Config) {
			c.OptSchedule = opt.ScheduleAsync
			c.AsyncTopK = 2
			c.MaxStaleness = s
		})
		if m := e.LastStepMetrics(); m.StalenessPeak > s {
			t.Fatalf("async-s%d staleness peak %d exceeds bound", s, m.StalenessPeak)
		}
		if err := e.FlushAsync(); err != nil {
			t.Fatal(err)
		}
	}
}
