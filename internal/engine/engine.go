// Package engine is the runnable Ratel training engine at laptop scale: a
// real transformer fine-tuned with mixed precision, with model states homed
// on the striped NVMe substrate, activations swapped or recomputed per the
// holistic plan, and the out-of-core CPU optimizer consuming gradients as
// they arrive during backward propagation (active gradient offloading,
// §IV-C).
//
// The engine exists to validate the paper's correctness claims for real:
// offloaded training is bit-identical to in-memory training, recomputation
// is bit-identical to caching, and active gradient offloading — naive or
// optimized — introduces no parameter staleness relative to a serialized
// optimizer stage.
package engine

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ratel/internal/agoffload"
	"ratel/internal/memctl"
	"ratel/internal/nn"
	"ratel/internal/nvme"
	"ratel/internal/obs"
	"ratel/internal/opt"
	"ratel/internal/profile"
	"ratel/internal/tensor"
	"ratel/internal/tensor/pool"
	"ratel/internal/units"
)

// classifyFlowKey maps an NVMe object key to its byte-flow purpose by
// namespace: activation blobs live under act/ and optimizer state under
// states/ (the prefix the engine hands NewOutOfCoreAdam).
func classifyFlowKey(key string) obs.FlowPurpose {
	switch {
	case strings.HasPrefix(key, "act/"):
		return obs.FlowActivations
	case strings.HasPrefix(key, "states/"):
		return obs.FlowOptState
	}
	return obs.FlowOther
}

// Tier says where a block's activation cache lives until backward.
type Tier int

// Activation placements, mirroring the planner's three-level hierarchy.
const (
	// Recompute discards the cache; backward rebuilds it from the block
	// input (which is always kept — it is the recomputation root).
	Recompute Tier = iota
	// SwapHost keeps the fp16 cache pinned in main memory.
	SwapHost
	// SwapSSD stages the fp16 cache through main memory onto the NVMe
	// array (the α·A_G2M portion of Eq. 3).
	SwapSSD
)

// String names the tier.
func (t Tier) String() string {
	switch t {
	case Recompute:
		return "recompute"
	case SwapHost:
		return "swap-host"
	case SwapSSD:
		return "swap-ssd"
	}
	return fmt.Sprintf("Tier(%d)", int(t))
}

// Config assembles an engine.
type Config struct {
	Model nn.Config
	Adam  opt.AdamConfig
	// GradMode selects how the optimizer consumes gradients: Serialized
	// (after backward, ZeRO-style), Naive (inline per-tensor handlers), or
	// Optimized (pipelined handlers overlapping backward).
	GradMode agoffload.Mode
	// Swap places each block's activation cache; absent blocks recompute.
	Swap map[int]Tier
	// DelayedUpdate enables ZeRO-Offload's one-step delayed parameter
	// update (footnote 4 of the paper): the optimizer applies iteration
	// k-1's gradients while iteration k computes with stale parameters.
	// Ratel rejects this because it changes the training trajectory — the
	// engine implements it so the staleness is demonstrable.
	DelayedUpdate bool
	// Devices is the NVMe array width; Dir selects file backing ("" =
	// memory).
	Devices int
	Dir     string
	// SSD, when non-nil, overrides the NVMe array's throttling/integrity
	// knobs (bandwidth per device, per-op latency, checksums); Devices and
	// Dir above still apply.
	SSD *nvme.Config
	// HostMemory caps the host staging pool (0 = unlimited).
	HostMemory units.Bytes
	// LRSchedule, when non-nil, sets the learning rate at the start of
	// every optimizer step (e.g. opt.WarmupCosine).
	LRSchedule opt.Schedule
	// LossScale, when > 0, amplifies the loss gradient by this factor so
	// small gradients survive fp16 (G16); the optimizer unscales in fp32.
	// Static scaling works with every GradMode.
	LossScale float64
	// DynamicLossScale adjusts the scale on overflow: a step whose
	// gradients contain Inf/NaN is skipped and the scale halved. Requires
	// the Serialized gradient mode — every gradient must be validated
	// before any update is applied.
	DynamicLossScale bool
	// ClipGroupNorm, when > 0, clips each parameter group's gradient to
	// this L2 norm inside its optimizer handler. Per-group rather than
	// global: the global norm is only known after all gradients arrive,
	// which would re-serialize the optimizer (§IV-C's whole point).
	ClipGroupNorm float64
	// OptSchedule selects the optimizer scheduling mode: ScheduleSync
	// (default, each handler streams its own state inline),
	// ScheduleReadiness (state reads issued at gradient arrival,
	// bit-identical), or ScheduleAsync (importance-partitioned async Adam
	// with bounded staleness). The non-sync modes are incompatible with
	// DynamicLossScale and DelayedUpdate.
	OptSchedule opt.ScheduleMode
	// AsyncTopK is the number of important parameter groups (top-k by
	// gradient L2 norm) updated synchronously in-step in ScheduleAsync mode;
	// the rest drain on the background applier. 0 means half the groups
	// (rounded up).
	AsyncTopK int
	// MaxStaleness bounds, in steps, how far behind a deferred group's
	// installed weights may lag in ScheduleAsync mode: a step whose start
	// would exceed the bound blocks on the backlogged applies first. 0 means
	// 1 (the classic one-step-stale async update).
	MaxStaleness int
	// ImportanceEvery is the importance-partition recompute cadence in
	// steps for ScheduleAsync mode; 0 means every step. The first step
	// always updates fully synchronously (no norms observed yet).
	ImportanceEvery int
	// PipelineDepth bounds the activation I/O window in each direction:
	// forward may have up to this many write-behind offloads in flight while
	// compute proceeds, and backward read-ahead launches the fetch for block
	// i-depth when block i is consumed. 0 means DefaultPipelineDepth;
	// negative is rejected. Depth changes only timing, never values — the
	// step barrier makes every depth bit-identical to the synchronous path.
	PipelineDepth int
	// DisablePipeline runs all activation I/O synchronously inline with
	// compute (for ablation benchmarks; values are unaffected either way).
	// It subsumes the old DisablePrefetch knob: both directions degrade.
	DisablePipeline bool
	// Sched enables the NVMe transfer scheduler: duplex per-device queues
	// with priority-class dequeue, so critical-path fetches stop queuing
	// behind bulk write-behind and optimizer spills. Off, the array runs
	// FCFS. Scheduling reorders I/O timing only — trajectories are
	// bit-identical in both modes.
	Sched bool
	// SchedClasses, when non-empty, overrides the scheduler's priority
	// order (see nvme.ParseClassOrder; default
	// "fetch,opt-read,writeback,write-behind").
	SchedClasses string
	// AdaptiveDepth enables the pipeline-depth feedback controller: the
	// effective read-ahead/write-behind window starts at 1 and moves
	// between 1 and PipelineDepth per decision window, driven by fetch- and
	// pool-stall counts (and the obs.Attribute verdict when tracing is on).
	// With PipelineDepth zero the ceiling is adaptiveDepthCeiling. Depth is
	// timing, never values.
	AdaptiveDepth bool
	// DepthWindow is the adaptive controller's decision window in steps;
	// DefaultDepthWindow if zero.
	DepthWindow int
	// Tracer, when non-nil, records wall-clock spans for every training
	// stage (forward/backward kernels, activation offload and prefetch,
	// NVMe device I/O, CPU-optimizer chunks). Tracing never changes
	// computed values and the hot path allocates nothing per span.
	Tracer *obs.Tracer
	// Metrics, when non-nil, receives per-step instrument updates
	// (tokens/s, stage wall times, tier bytes, NVMe and pool counters).
	Metrics *obs.Registry
}

// Stats counts the engine's data movement.
type Stats struct {
	Steps int
	// SkippedSteps counts dynamic-loss-scaling overflow skips.
	SkippedSteps int
	// ActBytesOffload is activation bytes written to the SSD tier.
	ActBytesOffload units.Bytes
	// ActBytesHost is activation bytes pinned in the host tier.
	ActBytesHost units.Bytes
	// ActBytesFetched is activation bytes restored from either tier.
	ActBytesFetched  units.Bytes
	RecomputedBlocks int
	SSD              nvme.Stats
}

// Engine drives training.
type Engine struct {
	cfg       Config
	model     *nn.Model
	array     *nvme.Array
	optimizer *opt.OutOfCoreAdam
	hostPool  *memctl.Pool
	geom      geometry

	hostActs  map[int]*hostAct
	prevGrads map[string][]float32 // pending gradients in DelayedUpdate mode
	scaler    *opt.LossScaler      // dynamic loss scaling, nil when static/off

	// groups caches ParamGroups at construction — group boundaries and the
	// P/G tensors they reference are fixed for the model's lifetime.
	groups []nn.ParamGroup
	// arena and blobLen are the preallocated swap-path buffers (see arena.go);
	// blobLen is the fixed fp16 size of one block's activation blob.
	arena   blobArena
	blobLen int
	// depth is the resolved activation I/O window (0 = synchronous); pipe is
	// the write-behind offload pipeline, nil when depth is 0 (see
	// pipeline.go). depthCtl, when non-nil, adapts the *effective* window
	// between 1 and depth (see depthctl.go). fetchCh/fetchLive are the
	// per-block read-ahead result channels and their in-flight marks,
	// preallocated so backward's launch path allocates no channels or maps
	// per step.
	depth     int
	depthCtl  *depthController
	pipe      *offloadPipeline
	fetchCh   []chan error
	fetchLive []bool
	// stepChs are the per-submission optimizer result channels, one per
	// param group, reused every step (each is drained before the step ends,
	// so reuse never observes a stale value). pendingScr is the matching
	// slice scratch. Engine steps are serial, so neither needs locking.
	stepChs    []chan error
	pendingScr []chan error

	// Optimizer scheduling (see opt/schedule_async.go). pref is the
	// readiness-ordered state prefetcher (ScheduleReadiness, nil otherwise);
	// applier and the per-group deferred slots implement the
	// importance-partitioned async mode (ScheduleAsync, nil otherwise). The
	// partition fields are owned by the step goroutine: asyncImportant names
	// the groups updating in-step under the current partition, asyncNorms
	// collects this step's gradient norms, and asyncRouted reports whether a
	// partition has been committed yet (before that, everything is sync).
	pref           *opt.StatePrefetcher
	applier        *opt.AsyncApplier
	deferreds      []*opt.DeferredUpdate
	deferredByName map[string]*opt.DeferredUpdate
	asyncImportant map[string]bool
	asyncNorms     map[string]float64
	asyncRouted    bool
	asyncK         int
	maxStaleness   int
	importEvery    int
	// Per-step optimizer-scheduling telemetry, owned by the step goroutine
	// and folded into StepMetrics at noteStep.
	deferredGroupsN int
	deferredBytesN  int64
	stalenessPeakN  int
	prefLaunchedN   int
	// Per-step read-ahead telemetry: backward waits on fetches that missed
	// their deadline. Owned by the step goroutine; the adaptive depth
	// controller's raise signal.
	fetchStallsN    int
	fetchStallWaitN time.Duration

	// Telemetry (see telemetry.go). tracer may be nil; ins instruments are
	// detached no-ops when Config.Metrics is nil. flows and flight are
	// always on: both are fixed-size atomic structures whose update paths
	// allocate nothing, so byte accounting and postmortem history never
	// need opting into.
	tracer           *obs.Tracer
	labels           []blockLabels
	ins              instruments
	flows            *obs.FlowLedger
	flight           *obs.FlightRecorder
	prevFlow         obs.FlowSnapshot
	prevKernelParams int64
	prevKernelBusy   time.Duration
	prevSSD          nvme.Stats
	prevSched        nvme.SchedStats

	// Per-block data-movement counters, updated inside the hot
	// forward/backward loops. Atomics rather than e.mu: the loops run once
	// per block per step, and the offload counter in particular is bumped
	// while writer goroutines are concurrently active — a mutex here would
	// serialize the hot path against every Stats() reader. Folded into
	// Stats() snapshots.
	actOffload  atomic.Int64
	actHost     atomic.Int64
	actFetched  atomic.Int64
	recomputedN atomic.Int64

	mu       sync.Mutex
	stats    Stats
	lastStep StepMetrics
}

// hostAct is a block cache pinned in main memory (SwapHost tier).
type hostAct struct {
	blob []byte
	res  *memctl.Reservation
}

// New builds the engine: model, NVMe array, and the out-of-core optimizer
// seeded with the initial fp32 masters.
func New(cfg Config) (*Engine, error) {
	// Kernel calibration first: RATEL_TUNE_PROFILE installs this machine's
	// measured tile sizes and grain before any kernel runs. Tuning is
	// result-neutral (tiles never reorder an accumulation), so this cannot
	// change what the engine computes — only how fast.
	if _, err := profile.ApplyStartupTuning(); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	if cfg.Devices < 1 {
		cfg.Devices = 1
	}
	if cfg.PipelineDepth < 0 {
		return nil, fmt.Errorf("engine: negative PipelineDepth %d", cfg.PipelineDepth)
	}
	m, err := nn.NewModel(cfg.Model)
	if err != nil {
		return nil, err
	}
	ncfg := nvme.Config{StripeSize: 4096}
	if cfg.SSD != nil {
		ncfg = *cfg.SSD
		if ncfg.StripeSize == 0 {
			ncfg.StripeSize = 4096
		}
	}
	ncfg.Devices = cfg.Devices
	ncfg.Dir = cfg.Dir
	if cfg.Sched {
		ncfg.Sched = true
	}
	if cfg.SchedClasses != "" {
		order, err := nvme.ParseClassOrder(cfg.SchedClasses)
		if err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
		ncfg.SchedOrder = order
	}
	a, err := nvme.Open(ncfg)
	if err != nil {
		return nil, err
	}
	if cfg.Adam == (opt.AdamConfig{}) {
		cfg.Adam = opt.DefaultAdam()
	}
	e := &Engine{
		cfg:       cfg,
		model:     m,
		array:     a,
		optimizer: opt.NewOutOfCoreAdam(a, cfg.Adam, "states"),
		hostPool:  memctl.NewPool("host", cfg.HostMemory),
		geom:      geometryOf(cfg.Model),
		hostActs:  make(map[int]*hostAct),
		groups:    m.ParamGroups(),
		tracer:    cfg.Tracer,
		labels:    makeBlockLabels(len(m.Blocks)),
		ins:       makeInstruments(cfg.Metrics),
		flows:     obs.NewFlowLedger(),
		flight:    obs.NewFlightRecorder(0),
	}
	e.blobLen = e.geom.blobBytes()
	// Resolve the activation I/O window: the ring needs depth+1 slots so a
	// block can encode while depth earlier blobs are still in flight (and so
	// backward's depth read-aheads never collide with the block being
	// consumed). The synchronous configuration keeps the minimum 2-slot ring.
	e.depth = cfg.PipelineDepth
	if e.depth == 0 {
		e.depth = DefaultPipelineDepth
		if cfg.AdaptiveDepth {
			// No explicit depth to respect: give the controller headroom to
			// find operating points past the static default.
			e.depth = adaptiveDepthCeiling
		}
	}
	if cfg.DisablePipeline {
		e.depth = 0
	}
	if cfg.AdaptiveDepth && e.depth > 0 {
		e.depthCtl = newDepthController(e.depth, cfg.DepthWindow)
	}
	e.arena.init(e.depth + 1)
	e.fetchCh = make([]chan error, len(m.Blocks))
	for i := range e.fetchCh {
		e.fetchCh[i] = make(chan error, 1)
	}
	e.fetchLive = make([]bool, len(m.Blocks))
	a.SetTracer(cfg.Tracer)
	e.optimizer.SetTracer(cfg.Tracer)
	// Byte-flow and latency observers: the array credits host↔NVMe bytes
	// per key namespace and feeds the transfer-latency histograms; the
	// optimizer credits its staging and codec traffic. The worker pool's
	// job histogram is process-wide, so it is only installed when this
	// engine actually exports metrics.
	a.SetObservers(e.ins.nvmeReadNS, e.ins.nvmeWritNS, e.flows, classifyFlowKey)
	e.optimizer.SetFlowLedger(e.flows)
	if cfg.Metrics != nil {
		pool.Default().SetJobHistogram(e.ins.poolJobNS)
	}
	if cfg.ClipGroupNorm > 0 {
		if err := e.optimizer.SetClipNorm(cfg.ClipGroupNorm); err != nil {
			return nil, errors.Join(err, a.Close())
		}
	}
	if cfg.OptSchedule != opt.ScheduleSync {
		if cfg.DynamicLossScale {
			err := fmt.Errorf("engine: %v optimizer scheduling is incompatible with dynamic loss scaling (a skipped step cannot be unwound from the schedule)", cfg.OptSchedule)
			return nil, errors.Join(err, a.Close())
		}
		if cfg.DelayedUpdate {
			err := fmt.Errorf("engine: %v optimizer scheduling is incompatible with the delayed update (both reschedule the same updates)", cfg.OptSchedule)
			return nil, errors.Join(err, a.Close())
		}
	}
	switch cfg.OptSchedule {
	case opt.ScheduleSync, opt.ScheduleReadiness, opt.ScheduleAsync:
	default:
		err := fmt.Errorf("engine: unknown optimizer schedule %v", cfg.OptSchedule)
		return nil, errors.Join(err, a.Close())
	}
	if cfg.OptSchedule == opt.ScheduleAsync {
		e.asyncK = cfg.AsyncTopK
		if e.asyncK <= 0 {
			e.asyncK = (len(e.groups) + 1) / 2
		}
		e.maxStaleness = cfg.MaxStaleness
		if e.maxStaleness <= 0 {
			e.maxStaleness = 1
		}
		e.importEvery = cfg.ImportanceEvery
		if e.importEvery <= 0 {
			e.importEvery = 1
		}
	}
	if cfg.DynamicLossScale {
		if cfg.GradMode != agoffload.Serialized {
			err := fmt.Errorf("engine: dynamic loss scaling requires the serialized gradient mode (updates must wait for overflow validation)")
			return nil, errors.Join(err, a.Close())
		}
		initial := cfg.LossScale
		if initial == 0 {
			initial = 1 << 16
		}
		scaler, err := opt.NewLossScaler(initial)
		if err != nil {
			return nil, errors.Join(err, a.Close())
		}
		e.scaler = scaler
	}
	for _, g := range e.groups {
		if err := e.optimizer.InitGroup(g); err != nil {
			return nil, errors.Join(err, a.Close())
		}
	}
	// Background goroutines (writers, state prefetcher, async applier)
	// start last so no construction-error path has to stop them: every
	// earlier failure closes just the array.
	switch cfg.OptSchedule {
	case opt.ScheduleReadiness:
		// The prefetch window reuses the activation pipeline depth (min 1 —
		// even the synchronous-activation configuration gets one read of
		// overlap).
		pdepth := e.depth
		if pdepth < 1 {
			pdepth = 1
		}
		e.pref = opt.NewStatePrefetcher(e.optimizer, pdepth, len(e.groups))
		for _, g := range e.groups {
			e.pref.Register(g)
		}
	case opt.ScheduleAsync:
		// Every group gets a preallocated deferred slot: the importance
		// partition shifts over training, so sizing for the current tail
		// would re-allocate (and blow the steady-state alloc budget) on
		// every partition change.
		e.applier = opt.NewAsyncApplier(e.optimizer, len(e.groups))
		e.deferreds = make([]*opt.DeferredUpdate, 0, len(e.groups))
		e.deferredByName = make(map[string]*opt.DeferredUpdate, len(e.groups))
		e.asyncImportant = make(map[string]bool, len(e.groups))
		e.asyncNorms = make(map[string]float64, len(e.groups))
		for _, g := range e.groups {
			d := e.optimizer.NewDeferred(g)
			e.deferreds = append(e.deferreds, d)
			e.deferredByName[g.Name] = d
			e.asyncNorms[g.Name] = 0
		}
	}
	if e.depth > 0 {
		// One writer serializes a depth-1 window exactly like the old inline
		// path. Deeper windows get one writer per in-flight blob up to the
		// array width: each blob stripes across every device, so fewer
		// writers than devices leaves aggregate write bandwidth idle between
		// blob boundaries.
		writers := e.depth
		if writers > cfg.Devices {
			writers = cfg.Devices
		}
		e.pipe = newOffloadPipeline(a, cfg.Tracer, len(e.arena.slots), writers, len(m.Blocks))
	}
	return e, nil
}

// currentScale is the active loss scale (1 = off).
func (e *Engine) currentScale() float64 {
	if e.scaler != nil {
		return e.scaler.Scale()
	}
	if e.cfg.LossScale > 0 {
		return e.cfg.LossScale
	}
	return 1
}

// LossScale reports the active loss scale (for tests and telemetry).
func (e *Engine) LossScale() float64 { return e.currentScale() }

// Close stops the offload pipeline's writer goroutines, the optimizer
// scheduling goroutines (state prefetcher / async applier), and releases
// the NVMe array. Call FlushAsync first when the pending deferred updates'
// results matter.
func (e *Engine) Close() error {
	e.pipe.close()
	e.pref.Close()
	e.applier.Close()
	return e.array.Close()
}

// Model exposes the underlying model (its weights are the P16 working
// copies).
func (e *Engine) Model() *nn.Model { return e.model }

// Array exposes the NVMe substrate for inspection and fault injection.
func (e *Engine) Array() *nvme.Array { return e.array }

// Stats returns a snapshot of the engine's counters. The per-block
// data-movement counts live in atomics (the hot loops never take e.mu) and
// are folded into the snapshot here.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	s := e.stats
	e.mu.Unlock()
	s.ActBytesOffload = units.Bytes(e.actOffload.Load())
	s.ActBytesHost = units.Bytes(e.actHost.Load())
	s.ActBytesFetched = units.Bytes(e.actFetched.Load())
	s.RecomputedBlocks = int(e.recomputedN.Load())
	s.SSD = e.array.Stats()
	return s
}

// gradJob hands one parameter group's gradients to the optimizer pipeline.
type gradJob struct {
	group nn.ParamGroup
	errCh chan error
}

// TrainStep runs one synchronous training iteration and returns the loss.
// Regardless of GradMode, the parameters after TrainStep are identical —
// active gradient offloading changes when updates run, not what they
// compute (no staleness, §IV-C).
func (e *Engine) TrainStep(tokens, targets [][]int) (float64, error) {
	m := e.model
	m.ZeroGrads()
	e.pipe.resetStepCounters()
	e.resetOptSchedCounters()
	if !e.cfg.DelayedUpdate {
		if err := e.beginStep(); err != nil {
			return 0, err
		}
	}
	stepStart := time.Now()
	stepSp := e.tracer.StartSpan(obs.LaneStep, labelStep)
	defer stepSp.End()

	groups := e.groups // embedding, block0..N-1, head

	// Optimizer pipeline for the Optimized mode: handlers run on a worker
	// goroutine, overlapping the remaining backward computation. Naive
	// runs handlers inline (strictly serialized per tensor); Serialized
	// defers them all past backward.
	var (
		jobs     chan gradJob
		pending  []chan error
		deferred []nn.ParamGroup
		workerWG sync.WaitGroup
	)
	if e.cfg.GradMode == agoffload.Optimized {
		jobs = make(chan gradJob, len(groups))
		workerWG.Add(1)
		go func() {
			defer workerWG.Done()
			for j := range jobs {
				j.errCh <- e.updateGroup(j.group)
			}
		}()
	}
	pending = e.pendingScr[:0]
	defer func() { e.pendingScr = pending[:0] }()
	submit := func(g nn.ParamGroup) error {
		if e.cfg.DelayedUpdate {
			return nil // handled after backward, one step late
		}
		if e.applier != nil {
			if handled, err := e.maybeDefer(g); handled || err != nil {
				return err
			}
		}
		e.launchPrefetch(g)
		switch e.cfg.GradMode {
		case agoffload.Optimized:
			errCh := e.stepCh(len(pending))
			jobs <- gradJob{group: g, errCh: errCh}
			pending = append(pending, errCh)
			return nil
		case agoffload.Naive:
			return e.updateGroup(g)
		default:
			deferred = append(deferred, g)
			return nil
		}
	}
	finish := func() error {
		if jobs != nil {
			close(jobs)
			workerWG.Wait()
			for _, ch := range pending {
				if err := <-ch; err != nil {
					return err
				}
			}
		}
		// Dynamic loss scaling: every gradient is resident now (serialized
		// mode); skip the whole update on overflow.
		if e.scaler != nil && gradsOverflow(deferred) {
			e.scaler.OnOverflow()
			if err := e.optimizer.CancelStep(); err != nil {
				return err
			}
			e.mu.Lock()
			e.stats.SkippedSteps++
			e.mu.Unlock()
			deferred = nil
			return nil
		}
		for _, g := range deferred {
			if err := e.updateGroup(g); err != nil {
				return err
			}
		}
		if e.scaler != nil {
			e.scaler.OnGoodStep()
		}
		return nil
	}
	fail := func(err error) (float64, error) {
		// Don't apply a partial serialized update for a failed step; the
		// already-submitted Optimized handlers are drained either way, and
		// so are any abandoned readiness prefetches.
		deferred = nil
		ferr := finish()
		if derr := e.pref.DrainLive(); derr != nil && ferr == nil {
			ferr = derr
		}
		if ferr != nil {
			return 0, fmt.Errorf("%w (and optimizer drain failed: %v)", err, ferr)
		}
		return 0, err
	}

	loss, fwdDur, bwdDur, err := e.runBatch(tokens, targets, groups, submit)
	if err != nil {
		return fail(err)
	}

	drainStart := time.Now()
	ferr := finish()
	if derr := e.pref.DrainLive(); derr != nil && ferr == nil {
		ferr = derr
	}
	if ferr != nil {
		return 0, ferr
	}
	if e.cfg.DelayedUpdate {
		if err := e.applyDelayed(groups); err != nil {
			return 0, err
		}
	}
	e.refreshPartition()
	drain := time.Since(drainStart)
	e.mu.Lock()
	e.stats.Steps++
	e.mu.Unlock()
	e.noteStep(fwdDur, bwdDur, drain, time.Since(stepStart), countTokens(tokens))
	return loss, nil
}

// stepCh returns the i'th reusable optimizer result channel, growing the
// set on first use.
func (e *Engine) stepCh(i int) chan error {
	for len(e.stepChs) <= i {
		e.stepChs = append(e.stepChs, make(chan error, 1))
	}
	return e.stepChs[i]
}

// countTokens sums the sequence lengths of one batch.
func countTokens(tokens [][]int) int {
	n := 0
	for _, seq := range tokens {
		n += len(seq)
	}
	return n
}

// Batch is one micro-batch for TrainStepAccum.
type Batch struct {
	Tokens, Targets [][]int
}

// TrainStepAccum runs one optimizer step over several micro-batches
// (gradient accumulation): gradients accumulate across micro-batches and
// are averaged, and each group's mean gradient is consumed by the active
// gradient offloading pipeline as it completes during the *last*
// micro-batch's backward — the overlap of §IV-C is preserved. The returned
// loss is the micro-batch mean. Incompatible with DelayedUpdate.
func (e *Engine) TrainStepAccum(micro []Batch) (float64, error) {
	if len(micro) == 0 {
		return 0, fmt.Errorf("engine: no micro-batches")
	}
	if e.cfg.DelayedUpdate {
		return 0, fmt.Errorf("engine: gradient accumulation with delayed update is unsupported")
	}
	if e.scaler != nil {
		return 0, fmt.Errorf("engine: gradient accumulation with dynamic loss scaling is unsupported (use a static LossScale)")
	}
	if e.applier != nil {
		return 0, fmt.Errorf("engine: gradient accumulation with async optimizer scheduling is unsupported")
	}
	m := e.model
	m.ZeroGrads()
	e.pipe.resetStepCounters()
	e.resetOptSchedCounters()
	if err := e.beginStep(); err != nil {
		return 0, err
	}
	stepStart := time.Now()
	stepSp := e.tracer.StartSpan(obs.LaneStep, labelStep)
	defer stepSp.End()
	groups := e.groups

	var totalLoss float64
	var fwdTotal, bwdTotal time.Duration
	tokenCount := 0
	noop := func(nn.ParamGroup) error { return nil }
	for _, b := range micro[:len(micro)-1] {
		loss, fwdDur, bwdDur, err := e.runBatch(b.Tokens, b.Targets, groups, noop)
		if err != nil {
			return 0, err
		}
		totalLoss += loss
		fwdTotal += fwdDur
		bwdTotal += bwdDur
		tokenCount += countTokens(b.Tokens)
	}

	// Final micro-batch: hand each completed group to the optimizer with
	// its gradients averaged over the micro-batches.
	var (
		jobs     chan gradJob
		pending  []chan error
		deferred []nn.ParamGroup
		workerWG sync.WaitGroup
	)
	if e.cfg.GradMode == agoffload.Optimized {
		jobs = make(chan gradJob, len(groups))
		workerWG.Add(1)
		go func() {
			defer workerWG.Done()
			for j := range jobs {
				j.errCh <- e.updateGroup(j.group)
			}
		}()
	}
	pending = e.pendingScr[:0]
	defer func() { e.pendingScr = pending[:0] }()
	scale := float32(1) / float32(len(micro))
	submit := func(g nn.ParamGroup) error {
		for _, p := range g.Params {
			p.G.Scale(scale)
		}
		e.launchPrefetch(g)
		switch e.cfg.GradMode {
		case agoffload.Optimized:
			errCh := e.stepCh(len(pending))
			jobs <- gradJob{group: g, errCh: errCh}
			pending = append(pending, errCh)
			return nil
		case agoffload.Naive:
			return e.updateGroup(g)
		default:
			deferred = append(deferred, g)
			return nil
		}
	}
	finish := func() error {
		if jobs != nil {
			close(jobs)
			workerWG.Wait()
			for _, ch := range pending {
				if err := <-ch; err != nil {
					return err
				}
			}
		}
		for _, g := range deferred {
			if err := e.updateGroup(g); err != nil {
				return err
			}
		}
		return nil
	}

	last := micro[len(micro)-1]
	loss, fwdDur, bwdDur, err := e.runBatch(last.Tokens, last.Targets, groups, submit)
	if err != nil {
		ferr := finish()
		if derr := e.pref.DrainLive(); derr != nil && ferr == nil {
			ferr = derr
		}
		if ferr != nil {
			return 0, fmt.Errorf("%w (and optimizer drain failed: %v)", err, ferr)
		}
		return 0, err
	}
	totalLoss += loss
	fwdTotal += fwdDur
	bwdTotal += bwdDur
	tokenCount += countTokens(last.Tokens)
	drainStart := time.Now()
	ferr := finish()
	if derr := e.pref.DrainLive(); derr != nil && ferr == nil {
		ferr = derr
	}
	if ferr != nil {
		return 0, ferr
	}
	drain := time.Since(drainStart)
	e.mu.Lock()
	e.stats.Steps++
	e.mu.Unlock()
	e.noteStep(fwdTotal, bwdTotal, drain, time.Since(stepStart), tokenCount)
	return totalLoss / float64(len(micro)), nil
}

// beginStep advances the optimizer, applies the learning-rate schedule and
// the current gradient unscale factor. Under async scheduling it also runs
// the staleness barrier: deferred updates older than MaxStaleness are joined
// before the new step's gradients can overwrite their groups.
func (e *Engine) beginStep() error {
	e.optimizer.BeginStep()
	if e.cfg.LRSchedule != nil {
		e.optimizer.SetLR(e.cfg.LRSchedule(e.optimizer.Step()))
	}
	if s := e.currentScale(); s != 1 {
		// The scale is validated at construction; ignore the impossible
		// error to keep the hot path clean.
		_ = e.optimizer.SetGradScale(s)
	}
	if e.applier != nil {
		return e.stalenessBarrier()
	}
	return nil
}

// updateGroup routes one group's synchronous update through the readiness
// prefetcher when that schedule is enabled; otherwise it hits the optimizer
// directly, exactly as before.
func (e *Engine) updateGroup(g nn.ParamGroup) error {
	if e.pref != nil {
		return e.pref.UpdateGroup(g)
	}
	return e.optimizer.UpdateGroup(g)
}

// launchPrefetch issues the group's readiness-ordered state read the moment
// its gradient lands in backward. No-op outside readiness scheduling.
func (e *Engine) launchPrefetch(g nn.ParamGroup) {
	if e.pref == nil {
		return
	}
	e.pref.Launch(g.Name)
	e.prefLaunchedN++
}

// resetOptSchedCounters clears the per-step scheduling telemetry.
func (e *Engine) resetOptSchedCounters() {
	e.deferredGroupsN = 0
	e.deferredBytesN = 0
	e.stalenessPeakN = 0
	e.prefLaunchedN = 0
	e.fetchStallsN = 0
	e.fetchStallWaitN = 0
}

// maybeDefer routes a group under async scheduling: important groups (and
// every group until the first partition is computed) fall through to the
// synchronous path, unimportant groups are staged and handed to the
// background applier. Returns handled=true when the group was deferred.
// Either way the group's previous deferred apply is joined first, so a slot
// is never reused (or raced by a sync update) while in flight.
func (e *Engine) maybeDefer(g nn.ParamGroup) (bool, error) {
	if e.importanceDue() {
		e.asyncNorms[g.Name] = gradNorm(g)
	}
	d := e.deferredByName[g.Name]
	if err := d.Wait(); err != nil {
		return true, err
	}
	if !e.asyncRouted || e.asyncImportant[g.Name] {
		return false, nil
	}
	if err := e.optimizer.StageDeferred(d, g); err != nil {
		return true, err
	}
	e.applier.Submit(d)
	e.deferredGroupsN++
	e.deferredBytesN += d.DeferredBytes()
	return true, nil
}

// importanceDue reports whether this step recomputes the importance
// partition (every ImportanceEvery steps; step 1 is always due).
func (e *Engine) importanceDue() bool {
	return e.optimizer.Step()%e.importEvery == 0 || !e.asyncRouted
}

// gradNorm is the L2 norm of a group's gradients, used to rank groups for
// the importance partition.
func gradNorm(g nn.ParamGroup) float64 {
	var sum float64
	for _, p := range g.Params {
		if p.G == nil {
			continue
		}
		for _, v := range p.G.Data {
			sum += float64(v) * float64(v)
		}
	}
	return math.Sqrt(sum)
}

// refreshPartition recomputes the top-k importance partition from the norms
// sampled this step. Called at the end of a successful TrainStep so the new
// partition routes the *next* step's gradients.
func (e *Engine) refreshPartition() {
	if e.applier == nil || !e.importanceDue() {
		return
	}
	for name := range e.asyncImportant {
		delete(e.asyncImportant, name)
	}
	for rank := 0; rank < e.asyncK && rank < len(e.groups); rank++ {
		best := -1
		var bestNorm float64
		for i, g := range e.groups {
			if e.asyncImportant[g.Name] {
				continue
			}
			if n := e.asyncNorms[g.Name]; best < 0 || n > bestNorm {
				best, bestNorm = i, n
			}
		}
		e.asyncImportant[e.groups[best].Name] = true
	}
	e.asyncRouted = true
}

// stalenessBarrier enforces MaxStaleness at the top of step t: any deferred
// update staged at step d with t-d > MaxStaleness is force-joined. Younger
// updates are deliberately NOT installed early even when the applier has
// finished — installs happen only at this fixed lag (or when the group is
// re-staged), so the trajectory depends on step arithmetic alone, never on
// applier timing, and training stays bit-reproducible across thread counts
// and reruns. The post-barrier peak staleness (≤ MaxStaleness by
// construction) is recorded for telemetry.
func (e *Engine) stalenessBarrier() error {
	t := e.optimizer.Step()
	peak := 0
	for _, d := range e.deferreds {
		if !d.Pending() {
			continue
		}
		age := t - d.Step()
		if age > e.maxStaleness {
			if err := d.Wait(); err != nil {
				return err
			}
			continue
		}
		if age > peak {
			peak = age
		}
	}
	e.stalenessPeakN = peak
	return nil
}

// FlushAsync joins every in-flight deferred optimizer update, installing
// their results. It is a no-op outside async scheduling; checkpointing and
// weight export call it so persisted state reflects all staged gradients.
func (e *Engine) FlushAsync() error {
	if e.applier == nil {
		return nil
	}
	var joined error
	for _, d := range e.deferreds {
		if err := d.Wait(); err != nil {
			joined = errors.Join(joined, err)
		}
	}
	return joined
}

// runBatch executes one forward/backward pass, accumulating gradients and
// handing each completed group to submit in gradient-arrival order. The
// returned durations are the forward and backward stage wall times.
func (e *Engine) runBatch(tokens, targets [][]int, groups []nn.ParamGroup, submit func(nn.ParamGroup) error) (loss float64, fwdDur, bwdDur time.Duration, err error) {
	m := e.model
	m.NextStep() // fresh dropout masks; recomputation below replays them
	groupOf := func(block int) nn.ParamGroup { return groups[block+1] }
	fail := func(err error) (float64, time.Duration, time.Duration, error) {
		// The step barrier holds on failure too: join every in-flight
		// write-behind offload (each returns its slot token and releases its
		// reservation regardless of outcome) so no write — and no write
		// error — outlives this step.
		if derr := e.pipe.barrier(); derr != nil {
			err = errors.Join(err, derr)
		}
		return 0, fwdDur, bwdDur, err
	}
	tr := e.tracer
	// The effective activation I/O window for this step: the adaptive
	// controller's current choice, or the static depth. Stable for the whole
	// step — the controller only moves between steps (noteStep).
	effDepth := e.depth
	if e.depthCtl != nil {
		effDepth = e.depthCtl.depth()
	}

	// ---------- Forward ----------
	fwdStart := time.Now()
	sp := tr.StartSpan(obs.LaneCompute, labelEmbedFwd)
	x, err := m.Embed(tokens)
	sp.End()
	if err != nil {
		return fail(err)
	}
	inputs := make([]*tensor.Tensor, len(m.Blocks))
	h := x
	for i, b := range m.Blocks {
		inputs[i] = h
		sp = tr.StartSpan(obs.LaneCompute, e.labels[i].fwd)
		y, c, err := b.Forward(h)
		sp.End()
		if err != nil {
			return fail(err)
		}
		switch e.cfg.Swap[i] {
		case SwapSSD:
			if e.pipe != nil {
				// Write-behind offload: encode into block i's ring slot and
				// queue the blob for the writer goroutines — block i+1's
				// compute proceeds while the NVMe Put is in flight. The slot
				// token bounds reuse (a full window stalls here, recorded on
				// the stall lane) and the reservation pins the host staging
				// footprint until the write retires.
				if e.pipe.errored() {
					// Fail fast: stop feeding the window; fail's barrier
					// carries the write error out.
					return fail(fmt.Errorf("engine: offload block %d activations: earlier write-behind failed", i))
				}
				slot := e.arena.slotIndex(i)
				e.pipe.acquireSlot(slot, e.labels[i].stall)
				sp = tr.StartSpan(obs.LaneOffload, e.labels[i].offload)
				blob := e.arena.slotBuf(i, e.blobLen)
				if err := e.arena.encode(blob, c); err != nil {
					sp.End()
					e.pipe.releaseSlot(slot)
					return fail(err)
				}
				sp.End()
				res, err := e.reserveStaged(len(blob), e.labels[i].stall)
				if err != nil {
					e.pipe.releaseSlot(slot)
					return fail(fmt.Errorf("engine: host staging for block %d: %w", i, err))
				}
				e.pipe.submit(offloadJob{slot: slot, key: e.labels[i].actKey, label: e.labels[i].write, blob: blob, res: res})
				if e.depthCtl != nil {
					// Adaptive window: hold write-behind to the effective
					// depth even though the ring could buffer more.
					if err := e.pipe.limit(effDepth); err != nil {
						return fail(fmt.Errorf("engine: offload block %d activations: %w", i, err))
					}
				}
			} else {
				// Synchronous fallback (DisablePipeline): host staging, then
				// the NVMe store inline. Put borrows the blob only for the
				// call, so the slot serves every step.
				sp = tr.StartSpan(obs.LaneOffload, e.labels[i].offload)
				blob := e.arena.slotBuf(i, e.blobLen)
				if err := e.arena.encode(blob, c); err != nil {
					sp.End()
					return fail(err)
				}
				res, err := e.hostPool.Reserve(units.Bytes(len(blob)))
				if err != nil {
					sp.End()
					return fail(fmt.Errorf("engine: host staging for block %d: %w", i, err))
				}
				if err := e.array.PutClass(e.labels[i].actKey, blob, nvme.ClassWriteBehind); err != nil {
					sp.End()
					res.Release()
					return fail(fmt.Errorf("engine: offload block %d activations: %w", i, err))
				}
				res.Release() // staged through, now resident on SSD
				sp.End()
			}
			e.actOffload.Add(int64(e.blobLen))
			// Ledger: the cache was fp16-encoded and staged through host
			// memory on its way to NVMe (the array credits the NVMe write).
			e.flows.Add(obs.EdgeCodecEncode, obs.FlowActivations, int64(e.blobLen))
			e.flows.Add(obs.EdgeComputeHost, obs.FlowActivations, int64(e.blobLen))
		case SwapHost:
			// Pin the cache in main memory until backward consumes it. The
			// blob outlives this call, so it comes from the shared buffer
			// pool and returns there when backward decodes it.
			sp = tr.StartSpan(obs.LaneOffload, e.labels[i].pin)
			blob := nvme.Buffers.Get(e.blobLen)
			if err := e.arena.encode(blob, c); err != nil {
				sp.End()
				nvme.Buffers.Put(blob)
				return fail(err)
			}
			res, err := e.hostPool.Reserve(units.Bytes(len(blob)))
			sp.End()
			if err != nil {
				nvme.Buffers.Put(blob)
				return fail(fmt.Errorf("engine: host tier for block %d: %w", i, err))
			}
			if stale := e.hostActs[i]; stale != nil {
				// Left over from a failed step: recycle before overwriting.
				stale.res.Release()
				nvme.Buffers.Put(stale.blob)
			}
			e.hostActs[i] = &hostAct{blob: blob, res: res}
			e.actHost.Add(int64(len(blob)))
			e.flows.Add(obs.EdgeCodecEncode, obs.FlowActivations, int64(len(blob)))
			e.flows.Add(obs.EdgeComputeHost, obs.FlowActivations, int64(len(blob)))
		}
		// The live cache is dropped either way: swapped blocks restore it
		// from their tier, the rest recompute from the saved block input.
		h = y
	}
	sp = tr.StartSpan(obs.LaneCompute, labelHeadFwd)
	lnOut, logits, err := m.HeadForward(h)
	sp.End()
	if err != nil {
		return fail(err)
	}
	sp = tr.StartSpan(obs.LaneCompute, labelLoss)
	loss, dlogits, err := nn.CrossEntropy(logits, targets)
	sp.End()
	if err != nil {
		return fail(err)
	}
	if s := e.currentScale(); s != 1 {
		dlogits.Scale(float32(s))
	}
	// Forward's half of the step barrier: every write-behind offload joins
	// here (head forward and the loss overlapped the tail writes), so any
	// write error surfaces before backward and backward starts with all ring
	// slots free for read-ahead.
	if err := e.pipe.barrier(); err != nil {
		return fail(fmt.Errorf("engine: offload activations: %w", err))
	}
	fwdDur = time.Since(fwdStart)
	tr.Instant(obs.LaneStep, labelFwdEnd)

	// ---------- Backward with active gradient offloading ----------
	bwdStart := time.Now()
	sp = tr.StartSpan(obs.LaneCompute, labelHeadBwd)
	dh, err := m.HeadBackward(h, lnOut, dlogits)
	sp.End()
	if err != nil {
		return fail(err)
	}
	dh.RoundFP16InPlace()
	// The head group's gradients are complete: its handler fires first
	// (gradients arrive with decreasing block index, §IV-C).
	if err := submit(groups[len(groups)-1]); err != nil {
		return fail(err)
	}

	// Pipelined data transfer (the Ratel_hook prefetching of Fig. 4),
	// generalized to depth-k read-ahead: the SSD fetch for block i-depth
	// launches when block i is consumed, so up to depth reads overlap
	// backward computation. Read-ahead changes only timing, never values.
	// Each fetch reads into its block's ring slot: launched-but-unconsumed
	// fetches span at most depth+1 consecutive block indices, which map to
	// distinct slots (see blobArena). Result channels are preallocated per
	// block, so a launch allocates only its fetch goroutine.
	launch := func(i int) {
		if i < 0 || e.cfg.Swap[i] != SwapSSD || e.depth == 0 {
			return
		}
		ch := e.fetchCh[i]
		e.fetchLive[i] = true
		label := e.labels[i].prefetch
		key := e.labels[i].actKey
		buf := e.arena.slotBuf(i, e.blobLen)
		go func() {
			start := tr.Now()
			err := e.array.ReadInto(key, buf)
			tr.RecordSpan(obs.LanePrefetch, label, start, tr.Now())
			ch <- err
		}()
		// Hand the CPU to the fetch goroutine now — same single-core hand-off
		// as offloadPipeline.submit: backward compute never blocks between
		// launches, so without a yield the read would not reach the device
		// until the next preemption tick.
		runtime.Gosched()
	}
	// On any exit, wait out in-flight fetches (consumed fetches clear their
	// mark, so this only drains leftovers after an error).
	defer func() {
		for i, live := range e.fetchLive {
			if live {
				<-e.fetchCh[i]
				e.fetchLive[i] = false
			}
		}
	}()
	// Stagger the window instead of issuing all depth fetches at once: on the
	// half-duplex device model concurrent reads fair-queue per device, so a
	// full-depth burst delays the one fetch backward is about to block on by
	// the whole batch. Launch only the first-needed fetch up front and refill
	// the window after each consume — in-flight reads still reach depth
	// during block compute, but the head of the queue is never contended.
	nextFetch := len(m.Blocks) - 1
	launch(nextFetch)
	nextFetch--

	for i := len(m.Blocks) - 1; i >= 0; i-- {
		var c *nn.BlockCache
		switch e.cfg.Swap[i] {
		case SwapSSD:
			blob := e.arena.slotBuf(i, e.blobLen)
			if e.fetchLive[i] {
				select {
				case err = <-e.fetchCh[i]:
					// Read-ahead won: the blob was resident before backward
					// needed it.
				default:
					// Read-ahead missed its deadline — backward is now blocked
					// on the fetch. The wait lands on the stall lane so
					// bottleneck attribution can tell "stalled-on-readahead"
					// from plain NVMe-read occupancy, and is counted for the
					// adaptive depth controller.
					stallStart := time.Now()
					sp = tr.StartSpan(obs.LaneStall, e.labels[i].fetchStall)
					err = <-e.fetchCh[i]
					sp.End()
					e.fetchStallsN++
					e.fetchStallWaitN += time.Since(stallStart)
				}
				e.fetchLive[i] = false
			} else {
				sp = tr.StartSpan(obs.LanePrefetch, e.labels[i].fetch)
				err = e.array.ReadInto(e.labels[i].actKey, blob)
				sp.End()
			}
			if err != nil {
				return fail(fmt.Errorf("engine: fetch block %d activations: %w", i, err))
			}
			c = e.arena.cacheFor(i, e.geom)
			if err = e.arena.decode(c, blob, inputs[i]); err != nil {
				return fail(err)
			}
			e.actFetched.Add(int64(len(blob)))
			e.flows.Add(obs.EdgeCodecDecode, obs.FlowActivations, int64(len(blob)))
			e.flows.Add(obs.EdgeComputeHost, obs.FlowActivations, int64(len(blob)))
		case SwapHost:
			ha := e.hostActs[i]
			if ha == nil {
				return fail(fmt.Errorf("engine: block %d host-tier cache missing", i))
			}
			c = e.arena.cacheFor(i, e.geom)
			if err = e.arena.decode(c, ha.blob, inputs[i]); err != nil {
				return fail(err)
			}
			blobLen := len(ha.blob)
			ha.res.Release()
			nvme.Buffers.Put(ha.blob)
			delete(e.hostActs, i)
			e.actFetched.Add(int64(blobLen))
			e.flows.Add(obs.EdgeCodecDecode, obs.FlowActivations, int64(blobLen))
			e.flows.Add(obs.EdgeComputeHost, obs.FlowActivations, int64(blobLen))
		default:
			sp = tr.StartSpan(obs.LaneCompute, e.labels[i].recompute)
			c, err = m.Blocks[i].Recompute(inputs[i])
			sp.End()
			if err != nil {
				return fail(err)
			}
			e.recomputedN.Add(1)
		}
		// Refill the read-ahead window now that block i's slot is consumed;
		// these fetches overlap block i's backward compute. The window is the
		// effective depth — the adaptive controller's choice when enabled.
		for nextFetch >= i-effDepth && nextFetch >= 0 {
			launch(nextFetch)
			nextFetch--
		}
		sp = tr.StartSpan(obs.LaneCompute, e.labels[i].bwd)
		dx, err := m.Blocks[i].Backward(c, dh)
		sp.End()
		if err != nil {
			return fail(err)
		}
		dx.RoundFP16InPlace()
		dh = dx
		if err := submit(groupOf(i)); err != nil {
			return fail(err)
		}
	}
	sp = tr.StartSpan(obs.LaneCompute, labelEmbedBwd)
	err = m.EmbedBackward(tokens, dh)
	sp.End()
	if err != nil {
		return fail(err)
	}
	if err := submit(groups[0]); err != nil {
		return fail(err)
	}
	bwdDur = time.Since(bwdStart)
	tr.Instant(obs.LaneStep, labelBwdEnd)
	return loss, fwdDur, bwdDur, nil
}

// applyDelayed implements the one-step delayed update: apply last
// iteration's pending gradients, then stash this iteration's for the next
// call. The current iteration therefore computed with parameters one update
// behind — the staleness footnote 4 warns about.
func (e *Engine) applyDelayed(groups []nn.ParamGroup) error {
	current := make(map[string][]float32, len(groups))
	for _, g := range groups {
		flat := make([]float32, 0, g.NumParams())
		for _, p := range g.Params {
			flat = append(flat, p.G.Data...)
		}
		current[g.Name] = flat
	}
	if e.prevGrads != nil {
		e.optimizer.BeginStep()
		for _, g := range groups {
			installGrads(g, e.prevGrads[g.Name])
			if err := e.optimizer.UpdateGroup(g); err != nil {
				return err
			}
		}
	}
	e.prevGrads = current
	return nil
}

// FlushDelayed applies the pending gradients of DelayedUpdate mode (e.g. at
// the end of training). A no-op otherwise.
func (e *Engine) FlushDelayed() error {
	if !e.cfg.DelayedUpdate || e.prevGrads == nil {
		return nil
	}
	e.optimizer.BeginStep()
	for _, g := range e.groups {
		installGrads(g, e.prevGrads[g.Name])
		if err := e.optimizer.UpdateGroup(g); err != nil {
			return err
		}
	}
	e.prevGrads = nil
	return nil
}

func installGrads(g nn.ParamGroup, flat []float32) {
	off := 0
	for _, p := range g.Params {
		copy(p.G.Data, flat[off:off+p.G.Numel()])
		off += p.G.Numel()
	}
}

// gradsOverflow scans parameter-group gradients for values the fp16 (G16)
// representation cannot carry: NaN, Inf, or magnitudes beyond the binary16
// maximum (they would round to Inf at the offloading boundary).
func gradsOverflow(groups []nn.ParamGroup) bool {
	const fp16Max = 65504
	for _, g := range groups {
		for _, p := range g.Params {
			for _, v := range p.G.Data {
				f := float64(v)
				if math.IsNaN(f) || math.Abs(f) > fp16Max {
					return true
				}
			}
		}
	}
	return false
}

func actKey(block int) string { return fmt.Sprintf("act/block%d", block) }

// EvalLoss computes a validation loss: forward-only, no gradients, no
// optimizer step, dropout disabled.
func (e *Engine) EvalLoss(tokens, targets [][]int) (float64, error) {
	return e.model.EvalLoss(tokens, targets)
}
