package engine

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"ratel/internal/agoffload"
	"ratel/internal/opt"
)

// TestReadinessBitIdenticalMatrix is the readiness mode's exactness claim:
// for every gradient-offloading schedule and a mixed swap tier, training
// with readiness-ordered state reads is bit-identical to the synchronous
// optimizer schedule — same losses, same parameters, only the fetch timing
// differs.
func TestReadinessBitIdenticalMatrix(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"serialized", Config{GradMode: agoffload.Serialized}},
		{"naive", Config{GradMode: agoffload.Naive}},
		{"optimized", Config{GradMode: agoffload.Optimized}},
		{"optimized/mixed-swap", Config{GradMode: agoffload.Optimized,
			Swap: map[int]Tier{0: SwapSSD, 1: SwapHost, 2: SwapSSD}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sync := newEngine(t, tc.cfg)
			syncLoss := trainK(t, sync, 4)
			syncSnap := paramsSnapshot(sync.Model())

			rcfg := tc.cfg
			rcfg.OptSchedule = opt.ScheduleReadiness
			ready := newEngine(t, rcfg)
			readyLoss := trainK(t, ready, 4)
			readySnap := paramsSnapshot(ready.Model())

			for i := range syncLoss {
				if syncLoss[i] != readyLoss[i] {
					t.Fatalf("loss[%d]: sync %v vs readiness %v", i, syncLoss[i], readyLoss[i])
				}
			}
			for i := range syncSnap {
				if syncSnap[i] != readySnap[i] {
					t.Fatalf("parameter %d differs under readiness scheduling", i)
				}
			}
			if m := ready.LastStepMetrics(); m.PrefetchedReads == 0 {
				t.Error("readiness mode issued no prefetched state reads")
			}
		})
	}
}

// TestAsyncConvergence is the async mode's regression bound: with the tail
// partition deferred at bounded staleness, the loss trajectory must track
// the synchronous baseline closely and end within tolerance.
func TestAsyncConvergence(t *testing.T) {
	const steps = 10
	sync := newEngine(t, Config{GradMode: agoffload.Optimized})
	syncLoss := trainK(t, sync, steps)

	async := newEngine(t, Config{GradMode: agoffload.Optimized,
		OptSchedule: opt.ScheduleAsync, AsyncTopK: 2, MaxStaleness: 2})
	asyncLoss := trainK(t, async, steps)
	if err := async.FlushAsync(); err != nil {
		t.Fatal(err)
	}

	for i := range asyncLoss {
		if math.IsNaN(asyncLoss[i]) || math.IsInf(asyncLoss[i], 0) {
			t.Fatalf("async loss[%d] = %v", i, asyncLoss[i])
		}
	}
	ref, got := syncLoss[steps-1], asyncLoss[steps-1]
	if drift := math.Abs(got-ref) / math.Abs(ref); drift > 0.05 {
		t.Fatalf("async final loss %v drifted %.1f%% from sync %v (tolerance 5%%)",
			got, 100*drift, ref)
	}
}

// TestAsyncStalenessBound: the post-barrier peak staleness reported each
// step must never exceed MaxStaleness, and the async mode must actually
// defer work (the bound is vacuous otherwise).
func TestAsyncStalenessBound(t *testing.T) {
	for _, maxStale := range []int{1, 2} {
		e := newEngine(t, Config{GradMode: agoffload.Optimized,
			OptSchedule: opt.ScheduleAsync, AsyncTopK: 1, MaxStaleness: maxStale})
		cfg := e.cfg.Model
		deferredSeen := false
		for s := 0; s < 8; s++ {
			tokens, targets := data(cfg, int64(s))
			if _, err := e.TrainStep(tokens, targets); err != nil {
				t.Fatal(err)
			}
			m := e.LastStepMetrics()
			if m.StalenessPeak > maxStale {
				t.Fatalf("S=%d step %d: staleness peak %d exceeds bound", maxStale, s, m.StalenessPeak)
			}
			if m.DeferredGroups > 0 {
				deferredSeen = true
				if m.DeferredBytes <= 0 {
					t.Fatalf("S=%d step %d: %d groups deferred but zero bytes credited", maxStale, s, m.DeferredGroups)
				}
			}
		}
		if !deferredSeen {
			t.Fatalf("S=%d: async mode never deferred a group", maxStale)
		}
		if err := e.FlushAsync(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestAsyncApplierFaultSurfaces: a device failure hit by the background
// applier's state stream must surface as a training (or flush) error, not
// vanish into the background goroutine.
func TestAsyncApplierFaultSurfaces(t *testing.T) {
	e := newEngine(t, Config{GradMode: agoffload.Optimized,
		OptSchedule: opt.ScheduleAsync, AsyncTopK: 1, MaxStaleness: 1})
	cfg := e.cfg.Model
	// Two clean steps establish the partition and start deferring.
	for s := 0; s < 2; s++ {
		tokens, targets := data(cfg, int64(s))
		if _, err := e.TrainStep(tokens, targets); err != nil {
			t.Fatal(err)
		}
	}
	boom := errors.New("media failure")
	for d := 0; d < 3; d++ {
		e.Array().InjectFault(d, boom)
	}
	var err error
	for s := 2; s < 6 && err == nil; s++ {
		tokens, targets := data(cfg, int64(s))
		_, err = e.TrainStep(tokens, targets)
	}
	if err == nil {
		err = e.FlushAsync()
	}
	if !errors.Is(err, boom) {
		t.Fatalf("applier fault did not surface: %v", err)
	}
	for d := 0; d < 3; d++ {
		e.Array().InjectFault(d, nil)
	}
}

// TestAsyncCheckpointFlushes: SaveCheckpoint joins in-flight deferred
// updates, so a checkpoint taken mid-training restores to the same
// parameters the flushed engine holds.
func TestAsyncCheckpointFlushes(t *testing.T) {
	e := newEngine(t, Config{GradMode: agoffload.Optimized,
		OptSchedule: opt.ScheduleAsync, AsyncTopK: 1, MaxStaleness: 2})
	trainK(t, e, 4)
	var buf bytes.Buffer
	if err := e.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	// Post-save, nothing is pending: the snapshot covered every staged update.
	m := e.LastStepMetrics()
	if m.Step == 0 {
		t.Fatal("no steps recorded")
	}
	restored := newEngine(t, Config{GradMode: agoffload.Optimized})
	if err := restored.LoadCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	a, b := paramsSnapshot(e.Model()), paramsSnapshot(restored.Model())
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("restored parameter %d differs from checkpointed engine", i)
		}
	}
}

// TestOptScheduleConfigErrors: the incompatible and malformed knob
// combinations fail at construction, not mid-training.
func TestOptScheduleConfigErrors(t *testing.T) {
	bad := []Config{
		{GradMode: agoffload.Serialized, OptSchedule: opt.ScheduleAsync, DynamicLossScale: true, LossScale: 1024},
		{GradMode: agoffload.Optimized, OptSchedule: opt.ScheduleReadiness, DelayedUpdate: true},
		{GradMode: agoffload.Optimized, OptSchedule: opt.ScheduleMode(99)},
	}
	for i, cfg := range bad {
		cfg.Model = miniConfig()
		cfg.Devices = 2
		if e, err := New(cfg); err == nil {
			e.Close()
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// TestOptSchedSteadyStateAllocs extends the zero-allocation pin to the new
// schedules: after warm-up both readiness and async TrainSteps must stay
// under the same budget as the synchronous path.
func TestOptSchedSteadyStateAllocs(t *testing.T) {
	modes := []struct {
		name string
		cfg  Config
	}{
		{"readiness", Config{GradMode: agoffload.Optimized,
			Swap:        map[int]Tier{0: SwapSSD, 1: SwapHost, 2: SwapSSD},
			OptSchedule: opt.ScheduleReadiness}},
		{"async", Config{GradMode: agoffload.Optimized,
			Swap:        map[int]Tier{0: SwapSSD, 1: SwapHost, 2: SwapSSD},
			OptSchedule: opt.ScheduleAsync, AsyncTopK: 2, MaxStaleness: 2}},
	}
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			e := newEngine(t, m.cfg)
			tokens, targets := data(e.cfg.Model, 1)
			for i := 0; i < 3; i++ {
				if _, err := e.TrainStep(tokens, targets); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(5, func() {
				if _, err := e.TrainStep(tokens, targets); err != nil {
					t.Fatal(err)
				}
			})
			t.Logf("%s steady-state allocs/step = %.0f (budget %d)", m.name, allocs, steadyStateAllocBudget)
			if allocs > steadyStateAllocBudget {
				t.Fatalf("%s TrainStep allocates %.0f/step, budget %d", m.name, allocs, steadyStateAllocBudget)
			}
		})
	}
}
