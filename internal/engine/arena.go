package engine

import (
	"sync/atomic"

	"ratel/internal/nn"
	"ratel/internal/tensor"
)

// blobArena is the engine's steady-state swap memory: every buffer the
// activation path needs, allocated at most once (blob size is fixed by the
// geometry) and reused for the rest of training.
//
// It is a ring of PipelineDepth+1 slots, each owning one blob buffer and
// one reusable BlockCache; block i maps to slot i mod len(slots). Safety
// relies on the pipeline's window discipline rather than locking:
//
//   - Forward (write-behind): block i encodes into slot(i) and hands the
//     blob to the offload queue. The slot's buffer stays in flight until the
//     writer goroutine finishes the NVMe Put and returns the slot token, and
//     the window bounds in-flight writes to depth — so by the time block
//     i+len(slots) wants the same slot, the engine has waited on that exact
//     token (a recorded stall when the window is full). All writes drain at
//     the forward/backward barrier, so backward starts with every slot free.
//   - Backward (read-ahead): the fetch for block i-depth launches only when
//     block i is consumed, so launched-but-unconsumed fetches span at most
//     blocks i-depth..i — depth+1 consecutive indices, which map to
//     distinct slots. The sync fallback (depth 0) touches one slot at a
//     time.
//   - The slot's BlockCache is revived by decode and consumed by Backward
//     before the next block's cache is decoded; Backward retains nothing
//     from the cache after it returns, so ring reuse is safe at any depth.
type blobArena struct {
	slots []arenaSlot
	// ts is the codec's tensor-list scratch: encode and decode both run on
	// the engine's step goroutine, never concurrently, so one slice serves
	// every block of every step.
	ts []*tensor.Tensor

	// blobReuses counts slot-buffer uses served without allocating;
	// ringReuses counts cache revivals into an existing ring entry. Exposed
	// via the metrics registry (engine.blob_reuses / engine.ring_reuses).
	blobReuses atomic.Int64
	ringReuses atomic.Int64
}

// arenaSlot is one ring entry: a blob buffer and the BlockCache it decodes
// into. Both allocate lazily on first use and persist for the engine's
// lifetime.
type arenaSlot struct {
	blob  []byte
	cache *nn.BlockCache
}

// init sizes the ring. Must be called before slotBuf/cacheFor; the engine
// calls it once at construction (depth+1 slots, minimum 2).
func (ar *blobArena) init(nslots int) {
	if nslots < 2 {
		nslots = 2
	}
	ar.slots = make([]arenaSlot, nslots)
}

// slotIndex maps a block to its ring slot.
func (ar *blobArena) slotIndex(i int) int { return i % len(ar.slots) }

// slotBuf returns block i's ring buffer of n bytes.
func (ar *blobArena) slotBuf(i, n int) []byte {
	s := &ar.slots[ar.slotIndex(i)]
	if s.blob == nil {
		s.blob = make([]byte, n)
	} else {
		ar.blobReuses.Add(1)
	}
	return s.blob
}

// cacheFor returns block i's ring cache, allocating it on first use.
func (ar *blobArena) cacheFor(i int, g geometry) *nn.BlockCache {
	s := &ar.slots[ar.slotIndex(i)]
	if s.cache == nil {
		s.cache = newBlockCache(g)
	} else {
		ar.ringReuses.Add(1)
	}
	return s.cache
}

// encode packs c into blob through the arena's tensor-list scratch — the
// allocation-free form of encodeCacheInto.
func (ar *blobArena) encode(blob []byte, c *nn.BlockCache) error {
	ar.ts = appendCacheTensors(ar.ts[:0], c)
	return encodeTensors(blob, ar.ts)
}

// decode revives c from blob with input installed as the block input — the
// allocation-free form of decodeCacheInto.
func (ar *blobArena) decode(c *nn.BlockCache, blob []byte, input *tensor.Tensor) error {
	c.X = input
	ar.ts = appendCacheTensors(ar.ts[:0], c)
	return decodeTensors(blob, ar.ts)
}
