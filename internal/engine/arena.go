package engine

import (
	"sync/atomic"

	"ratel/internal/nn"
	"ratel/internal/tensor"
)

// blobArena is the engine's steady-state swap memory: every buffer the
// activation path needs, allocated at most once (blob size is fixed by the
// geometry) and reused for the rest of training.
//
// Safety relies on the backward loop's structure rather than locking:
//
//   - enc is the forward encode scratch for the SSD tier. nvme.Put borrows
//     its argument only for the duration of the call, so the same buffer
//     serves every block of every step. (Host-tier blobs outlive the encode —
//     they are pinned until backward — so they come from nvme.Buffers
//     instead.)
//   - fetch is the prefetch double buffer, indexed by block parity (i%2). At
//     most the fetches of two adjacent blocks are ever in flight or being
//     consumed together — the pipeline launches i-1 while decoding i — and
//     adjacent blocks have opposite parity, so the slots never collide.
//   - ring holds the two reusable BlockCaches decodeCacheInto revives,
//     indexed by the same parity. Block i's cache is consumed by Backward
//     before block i-1 (or any earlier swap block) is decoded, and Backward
//     retains nothing from the cache after it returns, so two entries cover
//     the deepest overlap the pipeline creates.
type blobArena struct {
	enc   []byte
	fetch [2][]byte
	ring  [2]*nn.BlockCache
	// ts is the codec's tensor-list scratch: encode and decode both run on
	// the engine's step goroutine, never concurrently, so one slice serves
	// every block of every step.
	ts []*tensor.Tensor

	// blobReuses counts encode/fetch buffer uses served without allocating;
	// ringReuses counts cache revivals into an existing ring entry. Exposed
	// via the metrics registry (engine.blob_reuses / engine.ring_reuses).
	blobReuses atomic.Int64
	ringReuses atomic.Int64
}

// encBuf returns the shared forward-encode scratch of n bytes.
func (ar *blobArena) encBuf(n int) []byte {
	if ar.enc == nil {
		ar.enc = make([]byte, n)
	} else {
		ar.blobReuses.Add(1)
	}
	return ar.enc
}

// fetchBuf returns block i's prefetch slot of n bytes.
func (ar *blobArena) fetchBuf(i, n int) []byte {
	b := &ar.fetch[i&1]
	if *b == nil {
		*b = make([]byte, n)
	} else {
		ar.blobReuses.Add(1)
	}
	return *b
}

// cacheFor returns block i's ring cache, allocating it on first use.
func (ar *blobArena) cacheFor(i int, g geometry) *nn.BlockCache {
	s := &ar.ring[i&1]
	if *s == nil {
		*s = newBlockCache(g)
	} else {
		ar.ringReuses.Add(1)
	}
	return *s
}

// encode packs c into blob through the arena's tensor-list scratch — the
// allocation-free form of encodeCacheInto.
func (ar *blobArena) encode(blob []byte, c *nn.BlockCache) error {
	ar.ts = appendCacheTensors(ar.ts[:0], c)
	return encodeTensors(blob, ar.ts)
}

// decode revives c from blob with input installed as the block input — the
// allocation-free form of decodeCacheInto.
func (ar *blobArena) decode(c *nn.BlockCache, blob []byte, input *tensor.Tensor) error {
	c.X = input
	ar.ts = appendCacheTensors(ar.ts[:0], c)
	return decodeTensors(blob, ar.ts)
}
