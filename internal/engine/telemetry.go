package engine

import (
	"fmt"
	"time"

	"ratel/internal/nvme"
	"ratel/internal/obs"
	"ratel/internal/tensor/pool"
	"ratel/internal/units"
)

// This file is the engine's observability wiring: per-lane wall-clock
// spans (the live counterpart of the simulator's Gantt timeline) and a
// per-step metrics snapshot exported through an obs.Registry. Both are
// optional and nil-disabled; the span path is allocation-free because
// every label below is precomputed at construction.

// blockLabels precomputes the per-block span names so the training hot
// path never builds strings.
type blockLabels struct {
	fwd        string // "blockN/fwd"           lane gpu
	bwd        string // "blockN/bwd"           lane gpu
	recompute  string // "blockN/recompute"     lane gpu
	offload    string // "blockN/act-offload"   lane offload (SSD tier)
	pin        string // "blockN/act-pin"       lane offload (host tier)
	prefetch   string // "blockN/act-prefetch"  lane prefetch
	fetch      string // "blockN/act-fetch"     lane prefetch (sync fallback)
	write      string // "blockN/act-write"     lane offload (async Put wall)
	stall      string // "blockN/offload-stall" lane stall (window/pool full)
	fetchStall string // "blockN/fetch-stall"   lane stall (read-ahead missed)
	actKey     string // "act/blockN"           NVMe object key, not a span
}

func makeBlockLabels(layers int) []blockLabels {
	out := make([]blockLabels, layers)
	for i := range out {
		p := fmt.Sprintf("block%d", i)
		out[i] = blockLabels{
			fwd:        p + "/fwd",
			bwd:        p + "/bwd",
			recompute:  p + "/recompute",
			offload:    p + "/act-offload",
			pin:        p + "/act-pin",
			prefetch:   p + "/act-prefetch",
			fetch:      p + "/act-fetch",
			write:      p + "/act-write",
			stall:      p + "/offload-stall",
			fetchStall: p + "/fetch-stall",
			actKey:     actKey(i),
		}
	}
	return out
}

// Fixed span labels for the non-block stages.
const (
	labelEmbedFwd = "embed/fwd"
	labelEmbedBwd = "embed/bwd"
	labelHeadFwd  = "head/fwd"
	labelHeadBwd  = "head/bwd"
	labelLoss     = "loss"
	labelStep     = "step"
	labelFwdEnd   = "forward-end"
	labelBwdEnd   = "backward-end"
)

// StepMetrics is the wall-clock profile of one optimizer step (one
// TrainStep, or one TrainStepAccum across all its micro-batches).
type StepMetrics struct {
	// Step is the optimizer step this snapshot describes.
	Step int
	// Forward and Backward are the summed stage wall times; in a
	// gradient-accumulation step they span every micro-batch.
	Forward, Backward time.Duration
	// OptimizerDrain is the wall time after backward finished during which
	// the step still waited on the optimizer pipeline — the live
	// counterpart of the simulator's OptimizerTail (zero when active
	// gradient offloading fully hides the optimizer, §IV-C).
	OptimizerDrain time.Duration
	// Wall is the full step duration.
	Wall time.Duration
	// Tokens is the number of tokens consumed; TokensPerSec = Tokens/Wall.
	Tokens       int
	TokensPerSec float64
	// AdamParams and AdamBusy are the CPU-optimizer kernel work done
	// during the step; their quotient is the live Adam params/s rate.
	AdamParams int64
	AdamBusy   time.Duration
	// OffloadStalls counts times this step's compute loop blocked on
	// pipeline flow control (write-behind window full, or host staging pool
	// waiting on an in-flight write); OffloadStallWait is the summed wait.
	// Zero means the pipeline fully hid the activation offload I/O.
	OffloadStalls    int
	OffloadStallWait time.Duration
	// OffloadQueuePeak is the deepest the offload queue got this step.
	OffloadQueuePeak int
	// FetchStalls counts backward read-ahead misses (the compute loop
	// blocked waiting for an activation fetch); FetchStallWait is the summed
	// wait. Disjoint from OffloadStalls — this is the read direction.
	FetchStalls    int
	FetchStallWait time.Duration
	// EffectiveDepth is the activation I/O window in force this step (the
	// adaptive controller's choice when enabled, the static depth otherwise).
	EffectiveDepth int
	// Sched is the NVMe transfer scheduler's per-class step delta:
	// dispatched stride items, their summed queue wait, and the cumulative
	// queue-depth peak, indexed per nvme class / obs.SchedClassNames.
	Sched obs.SchedSample
	// Flow is the step's byte-flow ledger delta: bytes moved per
	// (edge, purpose) cell during this step (see obs.FlowLedger).
	Flow obs.FlowSnapshot
	// Optimizer-scheduling profile (zero under the sync schedule).
	// DeferredGroups/DeferredBytes count this step's updates handed to the
	// async applier and the optimizer traffic they moved off the step;
	// StalenessPeak is the oldest still-pending deferred update (in steps)
	// observed after the staleness barrier — ≤ MaxStaleness by construction.
	// PrefetchedReads counts readiness-ordered state reads issued during
	// backward.
	DeferredGroups  int
	DeferredBytes   int64
	StalenessPeak   int
	PrefetchedReads int
}

// AdamParamsPerSec is the step's measured CPU-optimizer throughput
// (0 when no optimizer work ran).
func (m StepMetrics) AdamParamsPerSec() float64 {
	if m.AdamBusy <= 0 {
		return 0
	}
	return float64(m.AdamParams) / m.AdamBusy.Seconds()
}

// LastStepMetrics returns the most recent step's wall-clock profile
// (zero value before the first step).
func (e *Engine) LastStepMetrics() StepMetrics {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lastStep
}

// Tracer returns the engine's span tracer (nil when tracing is off).
func (e *Engine) Tracer() *obs.Tracer { return e.tracer }

// instruments holds the engine's registry handles, created once at New so
// per-step updates are plain atomic stores. With Config.Metrics == nil the
// handles are detached no-ops (see obs.Registry).
type instruments struct {
	steps  *obs.Counter
	tokens *obs.Counter

	tokensPerSec *obs.Gauge
	forwardMS    *obs.Gauge
	backwardMS   *obs.Gauge
	drainMS      *obs.Gauge
	stepMS       *obs.Gauge
	adamRate     *obs.Gauge

	actOffload *obs.Gauge
	actHost    *obs.Gauge
	actFetched *obs.Gauge
	recomputed *obs.Gauge
	skipped    *obs.Gauge

	// Pipeline flow-control health: cumulative stalls, the last step's
	// summed stall wait and offload-queue peak, and the NVMe array's
	// per-direction in-flight high-water marks. A well-planned window shows
	// stalls flat at zero while the in-flight peaks sit at the queue depth.
	offloadStalls  *obs.Counter
	offloadStallMS *obs.Gauge
	offloadQueue   *obs.Gauge

	// Read-ahead health and the adaptive window: cumulative fetch stalls,
	// the last step's summed fetch wait, and the effective pipeline depth.
	fetchStalls  *obs.Counter
	fetchStallMS *obs.Gauge
	pipelineEff  *obs.Gauge

	// NVMe transfer-scheduler per-class health: last step's summed queue
	// wait and the cumulative queue-depth peak, one pair per traffic class.
	schedFetchWaitMS        *obs.Gauge
	schedFetchQueuePeak     *obs.Gauge
	schedOptReadWaitMS      *obs.Gauge
	schedOptReadQueuePeak   *obs.Gauge
	schedWritebackWaitMS    *obs.Gauge
	schedWritebackQueuePk   *obs.Gauge
	schedWriteBehindWaitMS  *obs.Gauge
	schedWriteBehindQueuePk *obs.Gauge

	// Optimizer-scheduling health (readiness/async modes): groups and bytes
	// deferred to the background applier last step, the post-barrier peak
	// staleness, and the readiness reads issued during backward.
	optDeferredGroups  *obs.Gauge
	optDeferredBytes   *obs.Gauge
	optStalenessPeak   *obs.Gauge
	optPrefetchedReads *obs.Gauge

	nvmeReadBytes  *obs.Gauge
	nvmeWriteBytes *obs.Gauge
	nvmeReadBW     *obs.Gauge
	nvmeWriteBW    *obs.Gauge
	nvmeReadOps    *obs.Gauge
	nvmeWriteOps   *obs.Gauge
	nvmeReadPeak   *obs.Gauge
	nvmeWritePeak  *obs.Gauge

	poolJobs      *obs.Gauge
	poolInline    *obs.Gauge
	poolSubmitter *obs.Gauge
	poolWorker    *obs.Gauge
	poolStolen    *obs.Gauge

	// Buffer-reuse health: the nvme buffer pool's hit/miss/steal counters
	// and the arena's blob/ring revival counts. A healthy steady state shows
	// misses and steals flat while hits and reuses climb.
	bufHits    *obs.Gauge
	bufMisses  *obs.Gauge
	bufSteals  *obs.Gauge
	blobReuses *obs.Gauge
	ringReuses *obs.Gauge

	// Latency histograms (log2-bucketed, nanosecond samples): per-stage
	// step latencies, NVMe object transfer times (fed by the array via
	// SetObservers), and pool job latencies (fed by the worker pool).
	stepWallNS *obs.Histogram
	forwardNS  *obs.Histogram
	backwardNS *obs.Histogram
	drainNS    *obs.Histogram
	nvmeReadNS *obs.Histogram
	nvmeWritNS *obs.Histogram
	poolJobNS  *obs.Histogram

	// Byte-flow gauges: the ledger's cumulative per-edge and per-purpose
	// totals, refreshed once per step from one snapshot.
	flowComputeHost *obs.Gauge
	flowNVMeRead    *obs.Gauge
	flowNVMeWrite   *obs.Gauge
	flowEncode      *obs.Gauge
	flowDecode      *obs.Gauge
	flowActs        *obs.Gauge
	flowParams      *obs.Gauge
	flowGrads       *obs.Gauge
	flowOptState    *obs.Gauge
}

func makeInstruments(r *obs.Registry) instruments {
	return instruments{
		steps:  r.Counter("engine.steps"),
		tokens: r.Counter("engine.tokens"),

		tokensPerSec: r.Gauge("engine.tokens_per_sec"),
		forwardMS:    r.Gauge("engine.forward_ms"),
		backwardMS:   r.Gauge("engine.backward_ms"),
		drainMS:      r.Gauge("engine.optimizer_drain_ms"),
		stepMS:       r.Gauge("engine.step_ms"),
		adamRate:     r.Gauge("engine.adam_params_per_sec"),

		actOffload: r.Gauge("engine.act_offload_bytes"),
		actHost:    r.Gauge("engine.act_host_bytes"),
		actFetched: r.Gauge("engine.act_fetched_bytes"),
		recomputed: r.Gauge("engine.recomputed_blocks"),
		skipped:    r.Gauge("engine.skipped_steps"),

		offloadStalls:  r.Counter("engine.offload_stalls"),
		offloadStallMS: r.Gauge("engine.offload_stall_ms"),
		offloadQueue:   r.Gauge("engine.offload_queue_peak"),

		fetchStalls:  r.Counter("engine.fetch_stalls"),
		fetchStallMS: r.Gauge("engine.fetch_stall_ms"),
		pipelineEff:  r.Gauge("engine.pipeline_depth_effective"),

		schedFetchWaitMS:        r.Gauge("nvme.sched_fetch_wait_ms"),
		schedFetchQueuePeak:     r.Gauge("nvme.sched_fetch_queue_peak"),
		schedOptReadWaitMS:      r.Gauge("nvme.sched_opt_read_wait_ms"),
		schedOptReadQueuePeak:   r.Gauge("nvme.sched_opt_read_queue_peak"),
		schedWritebackWaitMS:    r.Gauge("nvme.sched_writeback_wait_ms"),
		schedWritebackQueuePk:   r.Gauge("nvme.sched_writeback_queue_peak"),
		schedWriteBehindWaitMS:  r.Gauge("nvme.sched_write_behind_wait_ms"),
		schedWriteBehindQueuePk: r.Gauge("nvme.sched_write_behind_queue_peak"),

		optDeferredGroups:  r.Gauge("engine.opt_deferred_groups"),
		optDeferredBytes:   r.Gauge("engine.opt_deferred_bytes"),
		optStalenessPeak:   r.Gauge("engine.opt_staleness_peak"),
		optPrefetchedReads: r.Gauge("engine.opt_prefetched_reads"),

		nvmeReadBytes:  r.Gauge("nvme.read_bytes"),
		nvmeWriteBytes: r.Gauge("nvme.write_bytes"),
		nvmeReadBW:     r.Gauge("nvme.read_bytes_per_sec"),
		nvmeWriteBW:    r.Gauge("nvme.write_bytes_per_sec"),
		nvmeReadOps:    r.Gauge("nvme.read_ops"),
		nvmeWriteOps:   r.Gauge("nvme.write_ops"),
		nvmeReadPeak:   r.Gauge("nvme.reads_in_flight_peak"),
		nvmeWritePeak:  r.Gauge("nvme.writes_in_flight_peak"),

		poolJobs:      r.Gauge("pool.jobs"),
		poolInline:    r.Gauge("pool.inline_runs"),
		poolSubmitter: r.Gauge("pool.submitter_chunks"),
		poolWorker:    r.Gauge("pool.worker_chunks"),
		poolStolen:    r.Gauge("pool.stolen_chunks"),

		bufHits:    r.Gauge("nvme.buf_hits"),
		bufMisses:  r.Gauge("nvme.buf_misses"),
		bufSteals:  r.Gauge("nvme.buf_steals"),
		blobReuses: r.Gauge("engine.blob_reuses"),
		ringReuses: r.Gauge("engine.ring_reuses"),

		stepWallNS: r.Histogram("engine.step_wall_ns"),
		forwardNS:  r.Histogram("engine.forward_ns"),
		backwardNS: r.Histogram("engine.backward_ns"),
		drainNS:    r.Histogram("engine.optimizer_drain_ns"),
		nvmeReadNS: r.Histogram("nvme.read_ns"),
		nvmeWritNS: r.Histogram("nvme.write_ns"),
		poolJobNS:  r.Histogram("pool.job_ns"),

		flowComputeHost: r.Gauge("flow.compute_host_bytes"),
		flowNVMeRead:    r.Gauge("flow.host_nvme_read_bytes"),
		flowNVMeWrite:   r.Gauge("flow.host_nvme_write_bytes"),
		flowEncode:      r.Gauge("flow.codec_encode_bytes"),
		flowDecode:      r.Gauge("flow.codec_decode_bytes"),
		flowActs:        r.Gauge("flow.activations_bytes"),
		flowParams:      r.Gauge("flow.params_bytes"),
		flowGrads:       r.Gauge("flow.grads_bytes"),
		flowOptState:    r.Gauge("flow.opt_state_bytes"),
	}
}

// noteStep finalizes one optimizer step's telemetry: it snapshots the
// step profile for LastStepMetrics and refreshes the metrics registry.
func (e *Engine) noteStep(fwd, bwd, drain, wall time.Duration, tokens int) {
	kp, kb := e.optimizer.KernelStats()
	m := StepMetrics{
		Step:           e.optimizer.Step(),
		Forward:        fwd,
		Backward:       bwd,
		OptimizerDrain: drain,
		Wall:           wall,
		Tokens:         tokens,
		AdamParams:     kp - e.prevKernelParams,
		AdamBusy:       kb - e.prevKernelBusy,
	}
	if wall > 0 {
		m.TokensPerSec = float64(tokens) / wall.Seconds()
	}
	if e.pipe != nil {
		// The step barrier has passed: the pipeline is idle, so its step
		// counters are stable until the next TrainStep resets them.
		m.OffloadStalls = e.pipe.stalls
		m.OffloadStallWait = e.pipe.stallWait
		m.OffloadQueuePeak = e.pipe.queuePeak
	}
	m.FetchStalls = e.fetchStallsN
	m.FetchStallWait = e.fetchStallWaitN
	m.EffectiveDepth = e.EffectiveDepth()
	// Per-class scheduler delta vs the previous step's cumulative snapshot.
	// QueuePeak is the class's lifetime high-water mark — a peak can't be
	// differenced, and the lifetime value is what a postmortem wants.
	sched := e.array.SchedStats()
	for c := range sched.PerClass {
		cur, prev := sched.PerClass[c], e.prevSched.PerClass[c]
		m.Sched[c] = obs.SchedClassDelta{
			Dispatched: cur.Dispatched - prev.Dispatched,
			Wait:       cur.Wait - prev.Wait,
			QueuePeak:  cur.DepthPeak,
		}
	}
	e.prevSched = sched
	m.DeferredGroups = e.deferredGroupsN
	m.DeferredBytes = e.deferredBytesN
	m.StalenessPeak = e.stalenessPeakN
	m.PrefetchedReads = e.prefLaunchedN
	e.prevKernelParams, e.prevKernelBusy = kp, kb

	// Fold this step's byte flow out of the cumulative ledger; the delta
	// rides on StepMetrics and the flight record, the running totals on
	// the flow gauges below. All value types — nothing here allocates.
	flow := e.flows.Snapshot()
	m.Flow = flow.Sub(e.prevFlow)
	e.prevFlow = flow

	e.mu.Lock()
	e.lastStep = m
	e.mu.Unlock()

	// Flight recorder: the last K steps' profiles survive for postmortem
	// dumps even when span tracing is off. Offsets are on the tracer
	// timeline when available (so dumps join records to spans).
	endOff := e.tracer.Now()
	startOff := endOff - wall
	if startOff < 0 {
		startOff = 0
	}
	e.flight.Record(obs.StepRecord{
		Step:           m.Step,
		Start:          startOff,
		End:            endOff,
		Wall:           wall,
		Forward:        fwd,
		Backward:       bwd,
		OptimizerDrain: drain,
		Tokens:         tokens,
		Stalls:         int64(m.OffloadStalls),
		StallWait:      m.OffloadStallWait,
		FetchStalls:    int64(m.FetchStalls),
		FetchStallWait: m.FetchStallWait,
		EffectiveDepth: m.EffectiveDepth,
		Sched:          m.Sched,
		Flow:           m.Flow,
	})

	// Feed the adaptive depth controller after the record is cut, so the
	// recorded EffectiveDepth is the one this step actually ran at.
	if e.depthCtl != nil {
		poolStalls := 0
		if e.pipe != nil {
			poolStalls = e.pipe.poolStalls
		}
		e.depthCtl.observe(m.FetchStallWait, m.Wall, poolStalls, e.tracer)
	}

	ins := &e.ins
	ins.steps.Add(1)
	ins.tokens.Add(int64(tokens))
	ins.tokensPerSec.Set(m.TokensPerSec)
	ins.forwardMS.Set(float64(fwd) / float64(time.Millisecond))
	ins.backwardMS.Set(float64(bwd) / float64(time.Millisecond))
	ins.drainMS.Set(float64(drain) / float64(time.Millisecond))
	ins.stepMS.Set(float64(wall) / float64(time.Millisecond))
	ins.adamRate.Set(m.AdamParamsPerSec())

	ins.actOffload.Set(float64(e.actOffload.Load()))
	ins.actHost.Set(float64(e.actHost.Load()))
	ins.actFetched.Set(float64(e.actFetched.Load()))
	ins.recomputed.Set(float64(e.recomputedN.Load()))
	e.mu.Lock()
	skipped := e.stats.SkippedSteps
	e.mu.Unlock()
	ins.skipped.Set(float64(skipped))

	ins.offloadStalls.Add(int64(m.OffloadStalls))
	ins.offloadStallMS.Set(float64(m.OffloadStallWait) / float64(time.Millisecond))
	ins.offloadQueue.Set(float64(m.OffloadQueuePeak))

	ins.fetchStalls.Add(int64(m.FetchStalls))
	ins.fetchStallMS.Set(float64(m.FetchStallWait) / float64(time.Millisecond))
	ins.pipelineEff.Set(float64(m.EffectiveDepth))

	ins.schedFetchWaitMS.Set(float64(m.Sched[nvme.ClassCriticalFetch].Wait) / float64(time.Millisecond))
	ins.schedFetchQueuePeak.Set(float64(m.Sched[nvme.ClassCriticalFetch].QueuePeak))
	ins.schedOptReadWaitMS.Set(float64(m.Sched[nvme.ClassOptRead].Wait) / float64(time.Millisecond))
	ins.schedOptReadQueuePeak.Set(float64(m.Sched[nvme.ClassOptRead].QueuePeak))
	ins.schedWritebackWaitMS.Set(float64(m.Sched[nvme.ClassWriteback].Wait) / float64(time.Millisecond))
	ins.schedWritebackQueuePk.Set(float64(m.Sched[nvme.ClassWriteback].QueuePeak))
	ins.schedWriteBehindWaitMS.Set(float64(m.Sched[nvme.ClassWriteBehind].Wait) / float64(time.Millisecond))
	ins.schedWriteBehindQueuePk.Set(float64(m.Sched[nvme.ClassWriteBehind].QueuePeak))

	ins.optDeferredGroups.Set(float64(m.DeferredGroups))
	ins.optDeferredBytes.Set(float64(m.DeferredBytes))
	ins.optStalenessPeak.Set(float64(m.StalenessPeak))
	ins.optPrefetchedReads.Set(float64(m.PrefetchedReads))

	ssd := e.array.Stats()
	ins.nvmeReadBytes.Set(float64(ssd.BytesRead))
	ins.nvmeWriteBytes.Set(float64(ssd.BytesWritten))
	ins.nvmeReadOps.Set(float64(ssd.ReadOps))
	ins.nvmeWriteOps.Set(float64(ssd.WriteOps))
	ins.nvmeReadPeak.Set(float64(ssd.PeakReadsInFlight))
	ins.nvmeWritePeak.Set(float64(ssd.PeakWritesInFlight))
	if wall > 0 {
		readDelta := ssd.BytesRead - e.prevSSD.BytesRead
		writeDelta := ssd.BytesWritten - e.prevSSD.BytesWritten
		ins.nvmeReadBW.Set(float64(units.BytesPerSecond(float64(readDelta) / wall.Seconds())))
		ins.nvmeWriteBW.Set(float64(units.BytesPerSecond(float64(writeDelta) / wall.Seconds())))
	}
	e.prevSSD = ssd

	ps := pool.DefaultStats()
	ins.poolJobs.Set(float64(ps.Jobs))
	ins.poolInline.Set(float64(ps.InlineRuns))
	ins.poolSubmitter.Set(float64(ps.SubmitterChunks))
	ins.poolWorker.Set(float64(ps.WorkerChunks))
	ins.poolStolen.Set(float64(ps.StolenChunks))

	bs := nvme.Buffers.Stats()
	ins.bufHits.Set(float64(bs.Hits))
	ins.bufMisses.Set(float64(bs.Misses))
	ins.bufSteals.Set(float64(bs.Steals))
	ins.blobReuses.Set(float64(e.arena.blobReuses.Load()))
	ins.ringReuses.Set(float64(e.arena.ringReuses.Load()))

	ins.stepWallNS.RecordDuration(wall)
	ins.forwardNS.RecordDuration(fwd)
	ins.backwardNS.RecordDuration(bwd)
	ins.drainNS.RecordDuration(drain)

	ins.flowComputeHost.Set(float64(flow.Edge(obs.EdgeComputeHost)))
	ins.flowNVMeRead.Set(float64(flow.Edge(obs.EdgeHostNVMeRead)))
	ins.flowNVMeWrite.Set(float64(flow.Edge(obs.EdgeHostNVMeWrite)))
	ins.flowEncode.Set(float64(flow.Edge(obs.EdgeCodecEncode)))
	ins.flowDecode.Set(float64(flow.Edge(obs.EdgeCodecDecode)))
	ins.flowActs.Set(float64(flow.Purpose(obs.FlowActivations)))
	ins.flowParams.Set(float64(flow.Purpose(obs.FlowParams)))
	ins.flowGrads.Set(float64(flow.Purpose(obs.FlowGrads)))
	ins.flowOptState.Set(float64(flow.Purpose(obs.FlowOptState)))
}

// Flows returns the engine's cumulative byte-flow ledger snapshot: bytes
// moved per (edge, purpose) cell since construction. The ledger is always
// on — it is a fixed atomic matrix, so accounting costs nothing visible.
func (e *Engine) Flows() obs.FlowSnapshot { return e.flows.Snapshot() }

// FlightRecords returns the flight recorder's retained step records,
// oldest first — the last K steps' timing, stall, and flow profiles kept
// for postmortem dumps (see trace.WriteFlightJSON).
func (e *Engine) FlightRecords() []obs.StepRecord { return e.flight.Records() }
