package engine

import (
	"errors"
	"math/rand"
	"testing"

	"ratel/internal/agoffload"
	"ratel/internal/nn"
	"ratel/internal/opt"
	"ratel/internal/tensor"
	"ratel/internal/units"
)

func miniConfig() nn.Config {
	return nn.Config{Vocab: 13, Seq: 6, Hidden: 8, Heads: 2, Layers: 3, Batch: 2, Seed: 77}
}

func data(cfg nn.Config, seed int64) (tokens, targets [][]int) {
	rng := rand.New(rand.NewSource(seed))
	tokens = make([][]int, cfg.Batch)
	targets = make([][]int, cfg.Batch)
	for b := range tokens {
		tokens[b] = make([]int, cfg.Seq)
		targets[b] = make([]int, cfg.Seq)
		for s := range tokens[b] {
			tokens[b][s] = rng.Intn(cfg.Vocab)
			targets[b][s] = rng.Intn(cfg.Vocab)
		}
	}
	return tokens, targets
}

func newEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	if cfg.Model.Vocab == 0 {
		cfg.Model = miniConfig()
	}
	if cfg.Devices == 0 {
		cfg.Devices = 3
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// paramsSnapshot flattens all model parameters for exact comparison.
func paramsSnapshot(m *nn.Model) []float32 {
	var out []float32
	for _, p := range m.Params() {
		out = append(out, p.W.Data...)
	}
	return out
}

func trainK(t *testing.T, e *Engine, steps int) []float64 {
	t.Helper()
	cfg := e.cfg.Model
	var losses []float64
	for s := 0; s < steps; s++ {
		tokens, targets := data(cfg, int64(s))
		loss, err := e.TrainStep(tokens, targets)
		if err != nil {
			t.Fatal(err)
		}
		losses = append(losses, loss)
	}
	return losses
}

// TestNoStalenessAcrossGradModes is the paper's central correctness claim
// (§IV-C): after k steps, parameters are bit-identical whether the
// optimizer ran as a serialized stage, as naive inline handlers, or as the
// optimized overlapped pipeline.
func TestNoStalenessAcrossGradModes(t *testing.T) {
	var ref []float32
	var refLoss []float64
	for _, mode := range []agoffload.Mode{agoffload.Serialized, agoffload.Naive, agoffload.Optimized} {
		e := newEngine(t, Config{GradMode: mode})
		losses := trainK(t, e, 4)
		snap := paramsSnapshot(e.Model())
		if ref == nil {
			ref, refLoss = snap, losses
			continue
		}
		for i := range losses {
			if losses[i] != refLoss[i] {
				t.Fatalf("%v: loss[%d] = %v differs from serialized %v", mode, i, losses[i], refLoss[i])
			}
		}
		for i := range snap {
			if snap[i] != ref[i] {
				t.Fatalf("%v: parameter %d differs after training (staleness!)", mode, i)
			}
		}
	}
}

// TestOffloadTransparency: swapping every block's activations through the
// NVMe store yields bit-identical training to recomputing everything.
func TestOffloadTransparency(t *testing.T) {
	recompute := newEngine(t, Config{GradMode: agoffload.Optimized})
	lossRec := trainK(t, recompute, 3)

	swapAll := map[int]Tier{0: SwapSSD, 1: SwapSSD, 2: SwapSSD}
	offload := newEngine(t, Config{GradMode: agoffload.Optimized, Swap: swapAll})
	lossOff := trainK(t, offload, 3)

	for i := range lossRec {
		if lossRec[i] != lossOff[i] {
			t.Fatalf("loss[%d]: recompute %v vs offloaded %v", i, lossRec[i], lossOff[i])
		}
	}
	a, b := paramsSnapshot(recompute.Model()), paramsSnapshot(offload.Model())
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("offloaded training diverged from recompute training")
		}
	}
	// And the traffic actually happened.
	st := offload.Stats()
	if st.ActBytesOffload == 0 || st.ActBytesFetched != st.ActBytesOffload/3*3 {
		t.Errorf("activation traffic not accounted: %+v", st)
	}
	if st.RecomputedBlocks != 0 {
		t.Errorf("offload engine recomputed %d blocks", st.RecomputedBlocks)
	}
	if recompute.Stats().RecomputedBlocks != 9 {
		t.Errorf("recompute engine recomputed %d blocks, want 9", recompute.Stats().RecomputedBlocks)
	}
}

// TestMixedOffload: a partial swap set (the planner's normal output) also
// matches exactly.
func TestMixedOffload(t *testing.T) {
	full := newEngine(t, Config{GradMode: agoffload.Serialized})
	ref := trainK(t, full, 2)

	mixed := newEngine(t, Config{GradMode: agoffload.Optimized, Swap: map[int]Tier{1: SwapSSD}})
	got := trainK(t, mixed, 2)
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("loss[%d] differs with partial offload", i)
		}
	}
}

// TestLossDecreases: fine-tuning on a fixed batch reduces loss.
func TestLossDecreases(t *testing.T) {
	e := newEngine(t, Config{GradMode: agoffload.Optimized})
	cfg := e.cfg.Model
	tokens, targets := data(cfg, 42)
	var first, last float64
	for s := 0; s < 10; s++ {
		loss, err := e.TrainStep(tokens, targets)
		if err != nil {
			t.Fatal(err)
		}
		if s == 0 {
			first = loss
		}
		last = loss
	}
	if last >= first {
		t.Fatalf("loss did not decrease: %.4f -> %.4f", first, last)
	}
}

// TestMasterWeightsStayFP32: after training, the stored masters are not all
// on the fp16 grid (they accumulate fp32 precision), while the working
// copies are exactly their fp16 rounding.
func TestMasterWeightsStayFP32(t *testing.T) {
	e := newEngine(t, Config{GradMode: agoffload.Optimized})
	trainK(t, e, 3)
	groups := e.Model().ParamGroups()
	g := groups[1] // block0
	masters, err := e.optimizer.MasterWeights(g.Name, g.NumParams())
	if err != nil {
		t.Fatal(err)
	}
	offGrid := 0
	off := 0
	for _, p := range g.Params {
		for i := range p.W.Data {
			if p.W.Data[i] != tensor.RoundFP16(masters[off]) {
				t.Fatalf("P16 != fp16(P32) at %s[%d]", p.Name, i)
			}
			if masters[off] != tensor.RoundFP16(masters[off]) {
				offGrid++
			}
			off++
		}
	}
	if offGrid == 0 {
		t.Error("all masters are on the fp16 grid; fp32 accumulation is not happening")
	}
}

// TestSSDFaultPropagates: a failing device surfaces as a training error
// when activations are offloaded.
func TestSSDFaultPropagates(t *testing.T) {
	e := newEngine(t, Config{GradMode: agoffload.Serialized, Swap: map[int]Tier{0: SwapSSD}})
	cfg := e.cfg.Model
	tokens, targets := data(cfg, 1)
	boom := errors.New("media failure")
	e.Array().InjectFault(0, boom)
	if _, err := e.TrainStep(tokens, targets); err == nil || !errors.Is(err, boom) {
		t.Fatalf("TrainStep with failed device = %v, want media failure", err)
	}
}

// TestHostPoolLimit: an impossible host staging budget fails cleanly.
func TestHostPoolLimit(t *testing.T) {
	e := newEngine(t, Config{
		GradMode:   agoffload.Optimized,
		Swap:       map[int]Tier{0: SwapSSD},
		HostMemory: 16, // bytes — absurdly small
	})
	cfg := e.cfg.Model
	tokens, targets := data(cfg, 1)
	if _, err := e.TrainStep(tokens, targets); err == nil {
		t.Fatal("expected host staging OOM")
	}
}

// TestProfileAndPlan: the engine's profiling + Algorithm 1 integration
// returns a consistent swap set.
func TestProfileAndPlan(t *testing.T) {
	e := newEngine(t, Config{GradMode: agoffload.Optimized})
	cfg := e.cfg.Model
	tokens, _ := data(cfg, 5)
	// A GPU-bound rate profile: swapping everything should win (Case 2).
	pl, swap, err := e.ProfileAndPlan(tokens, HWRates{
		THPG: units.TFLOPS(0.000001), // absurdly slow compute
		BWG:  units.GBps(100), BWS2M: units.GBps(100), BWM2S: units.GBps(100),
		MemAvail: units.GiB,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(swap) != cfg.Layers {
		t.Errorf("GPU-bound plan swapped %d of %d blocks (case %v)", len(swap), cfg.Layers, pl.Case)
	}
	// A PCIe-bound profile: swap nothing beyond the boundary.
	_, swap, err = e.ProfileAndPlan(tokens, HWRates{
		THPG: units.TFLOPS(1e9),
		BWG:  1, BWS2M: 1, BWM2S: 1,
		MemAvail: units.GiB,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(swap) != 0 {
		t.Errorf("PCIe-bound plan swapped %d blocks, want 0", len(swap))
	}
	// The swap set can be installed and trained with.
	e.SetSwap(map[int]Tier{0: SwapSSD})
	tokens, targets := data(cfg, 6)
	if _, err := e.TrainStep(tokens, targets); err != nil {
		t.Fatal(err)
	}
}

// TestFileBackedEngine: the whole loop works with real file I/O.
func TestFileBackedEngine(t *testing.T) {
	e := newEngine(t, Config{
		GradMode: agoffload.Optimized,
		Swap:     map[int]Tier{0: SwapSSD, 1: SwapSSD, 2: SwapSSD},
		Dir:      t.TempDir(),
	})
	losses := trainK(t, e, 2)
	if len(losses) != 2 || losses[0] <= 0 {
		t.Fatalf("file-backed training failed: %v", losses)
	}
	if e.Stats().SSD.BytesWritten == 0 {
		t.Error("no bytes written to the file-backed array")
	}
}

// TestCacheCodecRoundTrip: encode/decode of a real cache is lossless.
func TestCacheCodecRoundTrip(t *testing.T) {
	e := newEngine(t, Config{})
	cfg := e.cfg.Model
	tokens, _ := data(cfg, 3)
	x, err := e.Model().Embed(tokens)
	if err != nil {
		t.Fatal(err)
	}
	_, c, err := e.Model().Blocks[0].Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	blob := encodeCache(c, e.geom)
	got, err := decodeCache(blob, x, e.geom)
	if err != nil {
		t.Fatal(err)
	}
	pairs := [][2]*tensor.Tensor{
		{c.LN1Out, got.LN1Out}, {c.Attn.QKV, got.Attn.QKV}, {c.Attn.Ctx, got.Attn.Ctx},
		{c.AttnY, got.AttnY}, {c.Res1, got.Res1}, {c.LN2Out, got.LN2Out},
		{c.FC1Out, got.FC1Out}, {c.GeluOut, got.GeluOut},
	}
	for k, pair := range pairs {
		for i := range pair[0].Data {
			if pair[0].Data[i] != pair[1].Data[i] {
				t.Fatalf("cache tensor %d differs at %d", k, i)
			}
		}
	}
	for bi := range c.Attn.Probs {
		for h := range c.Attn.Probs[bi] {
			for i := range c.Attn.Probs[bi][h].Data {
				if c.Attn.Probs[bi][h].Data[i] != got.Attn.Probs[bi][h].Data[i] {
					t.Fatal("probs differ after codec round trip")
				}
			}
		}
	}
	// Corrupted blobs are rejected.
	if _, err := decodeCache(blob[:len(blob)-2], x, e.geom); err == nil {
		t.Error("truncated blob accepted")
	}
	if _, err := decodeCache(append(blob, 0, 0), x, e.geom); err == nil {
		t.Error("oversized blob accepted")
	}
}

// TestEngineMatchesPlainModel: the engine's first step equals a plain
// nn.ForwardBackward + out-of-core Adam applied manually (the engine adds
// data movement, not different math).
func TestEngineMatchesPlainModel(t *testing.T) {
	cfgM := miniConfig()
	tokens, targets := data(cfgM, 9)

	e := newEngine(t, Config{GradMode: agoffload.Optimized, Swap: map[int]Tier{1: SwapSSD}})
	engineLoss, err := e.TrainStep(tokens, targets)
	if err != nil {
		t.Fatal(err)
	}

	ref, err := nn.NewModel(cfgM)
	if err != nil {
		t.Fatal(err)
	}
	ooc := opt.NewOutOfCoreAdam(opt.MemStore{}, opt.DefaultAdam(), "ref")
	for _, g := range ref.ParamGroups() {
		if err := ooc.InitGroup(g); err != nil {
			t.Fatal(err)
		}
	}
	ref.ZeroGrads()
	refLoss, err := ref.ForwardBackward(tokens, targets, map[int]bool{0: true, 1: true, 2: true})
	if err != nil {
		t.Fatal(err)
	}
	ooc.BeginStep()
	for _, g := range ref.ParamGroups() {
		if err := ooc.UpdateGroup(g); err != nil {
			t.Fatal(err)
		}
	}

	if engineLoss != refLoss {
		t.Fatalf("engine loss %v != reference loss %v", engineLoss, refLoss)
	}
	a, b := paramsSnapshot(e.Model()), paramsSnapshot(ref)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("engine parameters diverged from plain model + optimizer")
		}
	}
}

// miniConfigWith returns the standard test config with a different layer
// count, for shape-mismatch tests.
func miniConfigWith(layers int) nn.Config {
	cfg := miniConfig()
	cfg.Layers = layers
	return cfg
}
