package engine

import (
	"testing"

	"ratel/internal/agoffload"
	"ratel/internal/obs"
	"ratel/internal/units"
)

// TestTracingIsTransparent: enabling the tracer must not change a single
// computed value — losses and final parameters are bit-identical to an
// untraced run.
func TestTracingIsTransparent(t *testing.T) {
	swap := map[int]Tier{0: SwapSSD, 2: SwapHost}
	plain := newEngine(t, Config{GradMode: agoffload.Optimized, Swap: swap})
	lossPlain := trainK(t, plain, 3)

	tr := obs.NewTracer(obs.DefaultCapacity)
	traced := newEngine(t, Config{GradMode: agoffload.Optimized, Swap: swap, Tracer: tr, Metrics: obs.NewRegistry()})
	lossTraced := trainK(t, traced, 3)

	for i := range lossPlain {
		if lossPlain[i] != lossTraced[i] {
			t.Fatalf("loss[%d]: traced %v != untraced %v", i, lossTraced[i], lossPlain[i])
		}
	}
	p0, p1 := paramsSnapshot(plain.Model()), paramsSnapshot(traced.Model())
	for i := range p0 {
		if p0[i] != p1[i] {
			t.Fatalf("parameter %d differs under tracing", i)
		}
	}
}

// TestTraceCoversAllStages checks that one traced step records spans on
// every lane the step exercises, with the precomputed label scheme.
func TestTraceCoversAllStages(t *testing.T) {
	tr := obs.NewTracer(obs.DefaultCapacity)
	swap := map[int]Tier{0: SwapSSD, 1: SwapHost} // block 2 recomputes
	e := newEngine(t, Config{GradMode: agoffload.Optimized, Swap: swap, Tracer: tr})
	trainK(t, e, 1)

	names := make(map[string]map[string]int) // lane -> name -> count
	for _, s := range tr.Spans() {
		if names[s.Lane] == nil {
			names[s.Lane] = make(map[string]int)
		}
		names[s.Lane][s.Name]++
	}
	want := []struct{ lane, name string }{
		{obs.LaneCompute, labelEmbedFwd},
		{obs.LaneCompute, "block0/fwd"},
		{obs.LaneCompute, "block2/fwd"},
		{obs.LaneCompute, labelHeadFwd},
		{obs.LaneCompute, labelHeadBwd},
		{obs.LaneCompute, "block2/recompute"},
		{obs.LaneCompute, "block0/bwd"},
		{obs.LaneCompute, labelEmbedBwd},
		{obs.LaneOffload, "block0/act-offload"},
		{obs.LaneOffload, "block1/act-pin"},
		{obs.LanePrefetch, "block0/act-prefetch"},
		{obs.LaneNVMeWrite, "act/block0"},
		{obs.LaneNVMeRead, "act/block0"},
		{obs.LaneAdam, "block0/opt-adam"},
		{obs.LaneAdam, "head/opt-adam"},
		{obs.LaneStep, labelStep},
		{obs.LaneStep, labelFwdEnd},
		{obs.LaneStep, labelBwdEnd},
	}
	for _, w := range want {
		if names[w.lane][w.name] == 0 {
			t.Errorf("no span %q on lane %q (have %v)", w.name, w.lane, names[w.lane])
		}
	}
	// Recomputed block 2 must not have prefetch or offload spans.
	if n := names[obs.LanePrefetch]["block2/act-prefetch"]; n != 0 {
		t.Errorf("recomputed block got %d prefetch spans", n)
	}
}

// TestStepMetrics checks the per-step profile: positive stage times, token
// accounting, and Adam kernel deltas that reset between steps.
func TestStepMetrics(t *testing.T) {
	cfg := miniConfig()
	e := newEngine(t, Config{GradMode: agoffload.Optimized, Metrics: obs.NewRegistry()})
	trainK(t, e, 2)

	m := e.LastStepMetrics()
	if m.Step != 2 {
		t.Fatalf("Step = %d, want 2", m.Step)
	}
	if m.Forward <= 0 || m.Backward <= 0 || m.Wall <= 0 {
		t.Fatalf("non-positive stage times: %+v", m)
	}
	if m.Wall < m.Forward || m.Wall < m.Backward {
		t.Fatalf("wall %v shorter than a stage (fwd %v, bwd %v)", m.Wall, m.Forward, m.Backward)
	}
	if want := cfg.Batch * cfg.Seq; m.Tokens != want {
		t.Fatalf("Tokens = %d, want %d", m.Tokens, want)
	}
	if m.TokensPerSec <= 0 {
		t.Fatalf("TokensPerSec = %v", m.TokensPerSec)
	}
	// One step's Adam work is the whole model once, not twice (the deltas
	// must reset between steps).
	var total int64
	for _, p := range e.Model().Params() {
		total += int64(p.W.Numel())
	}
	if m.AdamParams != total {
		t.Fatalf("AdamParams = %d, want %d (one full model pass)", m.AdamParams, total)
	}
	if m.AdamBusy <= 0 || m.AdamParamsPerSec() <= 0 {
		t.Fatalf("AdamBusy = %v, rate = %v", m.AdamBusy, m.AdamParamsPerSec())
	}
}

// TestRegistryUpdatedPerStep checks that the metrics registry reflects the
// engine after a step.
func TestRegistryUpdatedPerStep(t *testing.T) {
	reg := obs.NewRegistry()
	e := newEngine(t, Config{GradMode: agoffload.Serialized, Swap: map[int]Tier{0: SwapSSD}, Metrics: reg})
	trainK(t, e, 3)

	snap := reg.Snapshot()
	if got := snap["engine.steps"]; got != 3 {
		t.Fatalf("engine.steps = %v, want 3", got)
	}
	cfg := miniConfig()
	if got := snap["engine.tokens"]; got != float64(3*cfg.Batch*cfg.Seq) {
		t.Fatalf("engine.tokens = %v", got)
	}
	for _, name := range []string{"engine.tokens_per_sec", "engine.step_ms", "engine.backward_ms",
		"engine.act_offload_bytes", "nvme.write_bytes", "nvme.read_bytes"} {
		if snap[name] <= 0 {
			t.Fatalf("%s = %v, want > 0 (snapshot %v)", name, snap[name], snap)
		}
	}
	st := e.Stats()
	if got := snap["engine.act_offload_bytes"]; got != float64(st.ActBytesOffload) {
		t.Fatalf("act_offload_bytes %v != stats %v", got, st.ActBytesOffload)
	}
	// Buffer-reuse counters: after 3 steps the SSD-swap block has revived
	// its arena blob and ring cache at least once past the first step.
	for _, name := range []string{"engine.blob_reuses", "engine.ring_reuses"} {
		if snap[name] <= 0 {
			t.Fatalf("%s = %v, want > 0 (snapshot %v)", name, snap[name], snap)
		}
	}
	// The shared nvme pool counters must at least be exported (hits can be
	// zero in an SSD-only config that never touches host-pinned blobs).
	for _, name := range []string{"nvme.buf_hits", "nvme.buf_misses", "nvme.buf_steals"} {
		if _, ok := snap[name]; !ok {
			t.Fatalf("%s missing from snapshot %v", name, snap)
		}
	}
}

// TestStatsAccumulateAcrossMicroBatches: engine.Stats() must count data
// movement from every micro-batch of a TrainStepAccum step, not only the
// final one, and StepMetrics must sum stage times and tokens across them.
func TestStatsAccumulateAcrossMicroBatches(t *testing.T) {
	cfg := miniConfig()
	const microN = 3
	swap := map[int]Tier{0: SwapSSD, 1: SwapHost} // block 2 recomputes
	e := newEngine(t, Config{GradMode: agoffload.Optimized, Swap: swap, Metrics: obs.NewRegistry()})

	// Baseline: one plain step's movement.
	tok, tgt := data(cfg, 1)
	if _, err := e.TrainStep(tok, tgt); err != nil {
		t.Fatal(err)
	}
	base := e.Stats()
	perBatchOffload := base.ActBytesOffload
	perBatchHost := base.ActBytesHost
	perBatchFetched := base.ActBytesFetched
	if perBatchOffload == 0 || perBatchHost == 0 || perBatchFetched == 0 {
		t.Fatalf("baseline step moved no activation bytes: %+v", base)
	}

	micro := make([]Batch, microN)
	for i := range micro {
		mt, mg := data(cfg, int64(10+i))
		micro[i] = Batch{Tokens: mt, Targets: mg}
	}
	if _, err := e.TrainStepAccum(micro); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Steps != base.Steps+1 {
		t.Fatalf("Steps = %d, want %d (accumulation is one optimizer step)", st.Steps, base.Steps+1)
	}
	if got, want := st.ActBytesOffload-perBatchOffload, units.Bytes(microN)*perBatchOffload; got != want {
		t.Fatalf("offload bytes across %d micro-batches = %v, want %v", microN, got, want)
	}
	if got, want := st.ActBytesHost-perBatchHost, units.Bytes(microN)*perBatchHost; got != want {
		t.Fatalf("host bytes across %d micro-batches = %v, want %v", microN, got, want)
	}
	if got, want := st.ActBytesFetched-perBatchFetched, units.Bytes(microN)*perBatchFetched; got != want {
		t.Fatalf("fetched bytes across %d micro-batches = %v, want %v", microN, got, want)
	}
	if got, want := st.RecomputedBlocks, base.RecomputedBlocks+microN; got != want {
		t.Fatalf("RecomputedBlocks = %d, want %d", got, want)
	}

	m := e.LastStepMetrics()
	if want := microN * cfg.Batch * cfg.Seq; m.Tokens != want {
		t.Fatalf("accum StepMetrics.Tokens = %d, want %d", m.Tokens, want)
	}
	if m.Forward <= 0 || m.Backward <= 0 || m.Wall < m.Forward {
		t.Fatalf("accum stage times inconsistent: %+v", m)
	}
}
