package engine

import (
	"testing"

	"ratel/internal/agoffload"
	"ratel/internal/obs"
	"ratel/internal/units"
)

// TestFlowLedgerReconcilesWithNVMe is the ledger's ground-truth check: the
// host_nvme_read / host_nvme_write rows are fed from the same call sites
// that maintain the array's own byte counters, so over any training window
// the two accountings must agree exactly.
func TestFlowLedgerReconcilesWithNVMe(t *testing.T) {
	swap := map[int]Tier{0: SwapSSD, 1: SwapSSD}
	e := newEngine(t, Config{GradMode: agoffload.Optimized, Swap: swap, Metrics: obs.NewRegistry()})

	stats0 := e.Array().Stats()
	flows0 := e.Flows()
	trainK(t, e, 3)
	stats1 := e.Array().Stats()
	flows1 := e.Flows()

	d := flows1.Sub(flows0)
	wroteBytes := int64(stats1.BytesWritten - stats0.BytesWritten)
	readBytes := int64(stats1.BytesRead - stats0.BytesRead)
	if wroteBytes == 0 || readBytes == 0 {
		t.Fatalf("window moved no NVMe bytes (wrote %d, read %d)", wroteBytes, readBytes)
	}
	if got := d.Edge(obs.EdgeHostNVMeWrite); got != wroteBytes {
		t.Errorf("ledger host_nvme_write = %d, array BytesWritten delta = %d", got, wroteBytes)
	}
	if got := d.Edge(obs.EdgeHostNVMeRead); got != readBytes {
		t.Errorf("ledger host_nvme_read = %d, array BytesRead delta = %d", got, readBytes)
	}

	// Purpose split: swapped activations and streamed optimizer state both
	// cross the NVMe edges under this config; nothing lands in params/grads
	// (those edges are compute<->host only).
	for _, p := range []obs.FlowPurpose{obs.FlowActivations, obs.FlowOptState} {
		if d.Get(obs.EdgeHostNVMeWrite, p) <= 0 {
			t.Errorf("no NVMe write bytes attributed to %s: %+v", p, d)
		}
	}
	if d.Get(obs.EdgeHostNVMeWrite, obs.FlowGrads) != 0 {
		t.Errorf("grads attributed to the NVMe write edge")
	}

	// The activation row reconciles against the engine's own offload
	// accounting (every offloaded blob is one NVMe object write).
	st := e.Stats()
	if got := units.Bytes(d.Get(obs.EdgeHostNVMeWrite, obs.FlowActivations)); got != st.ActBytesOffload {
		t.Errorf("ledger activation writes = %v, engine ActBytesOffload = %v", got, st.ActBytesOffload)
	}
}

// TestStepMetricsFlowDelta checks the per-step flow snapshot carried on
// StepMetrics: deltas reset each step and cover the expected purposes.
func TestStepMetricsFlowDelta(t *testing.T) {
	swap := map[int]Tier{0: SwapSSD}
	e := newEngine(t, Config{GradMode: agoffload.Optimized, Swap: swap, Metrics: obs.NewRegistry()})
	trainK(t, e, 2)

	m := e.LastStepMetrics()
	if m.Flow.Total() <= 0 {
		t.Fatalf("step flow delta empty: %+v", m.Flow)
	}
	if m.Flow.Purpose(obs.FlowActivations) <= 0 {
		t.Errorf("step moved no activation bytes: %+v", m.Flow)
	}
	if m.Flow.Purpose(obs.FlowOptState) <= 0 {
		t.Errorf("step moved no optimizer-state bytes: %+v", m.Flow)
	}
	if m.Flow.Purpose(obs.FlowParams) <= 0 || m.Flow.Purpose(obs.FlowGrads) <= 0 {
		t.Errorf("step moved no param/grad wire bytes: %+v", m.Flow)
	}
	// A steady-state delta is per-step, not cumulative: two consecutive
	// steps over identical shapes move identical byte counts.
	first := m.Flow
	trainK(t, e, 1)
	if second := e.LastStepMetrics().Flow; second != first {
		t.Errorf("per-step flow delta drifted: step n %+v, step n+1 %+v", first, second)
	}
}

// TestFlightRecorderAlwaysOn: the crash ring fills during normal training
// with no tracer and no registry configured.
func TestFlightRecorderAlwaysOn(t *testing.T) {
	e := newEngine(t, Config{GradMode: agoffload.Optimized, Swap: map[int]Tier{0: SwapSSD}})
	trainK(t, e, 4)

	recs := e.FlightRecords()
	if len(recs) != 4 {
		t.Fatalf("flight ring has %d records, want 4", len(recs))
	}
	cfg := miniConfig()
	for i, r := range recs {
		if r.Step != i+1 {
			t.Errorf("record %d: step %d, want %d", i, r.Step, i+1)
		}
		if r.Wall <= 0 || r.Forward <= 0 || r.Backward <= 0 {
			t.Errorf("record %d has non-positive stage times: %+v", i, r)
		}
		if r.Tokens != cfg.Batch*cfg.Seq {
			t.Errorf("record %d tokens = %d, want %d", i, r.Tokens, cfg.Batch*cfg.Seq)
		}
		if r.Flow.Total() <= 0 {
			t.Errorf("record %d has empty flow delta", i)
		}
	}
}

// TestStageHistogramsPopulated: with a registry configured, the step
// latency histograms publish quantiles into the snapshot.
func TestStageHistogramsPopulated(t *testing.T) {
	reg := obs.NewRegistry()
	e := newEngine(t, Config{GradMode: agoffload.Optimized, Swap: map[int]Tier{0: SwapSSD}, Metrics: reg})
	trainK(t, e, 3)

	snap := reg.Snapshot()
	for _, name := range []string{"engine.step_wall_ns", "engine.forward_ns", "engine.backward_ns",
		"nvme.read_ns", "nvme.write_ns"} {
		if got := snap[name+".count"]; got <= 0 {
			t.Errorf("%s.count = %v, want > 0", name, got)
		}
		if p50, p99 := snap[name+".p50"], snap[name+".p99"]; p50 <= 0 || p99 < p50 {
			t.Errorf("%s quantiles inconsistent: p50=%v p99=%v", name, p50, p99)
		}
	}
	if got := snap["engine.step_wall_ns.count"]; got != 3 {
		t.Errorf("step_wall count = %v, want 3", got)
	}
	// Flow gauges mirror the cumulative ledger.
	flows := e.Flows()
	if got := snap["flow.host_nvme_write_bytes"]; got != float64(flows.Edge(obs.EdgeHostNVMeWrite)) {
		t.Errorf("flow gauge %v != ledger %v", got, flows.Edge(obs.EdgeHostNVMeWrite))
	}
}
