package engine

import (
	"sync/atomic"
	"time"

	"ratel/internal/obs"
)

// This file is the adaptive pipeline-depth controller: a per-window
// feedback loop that nudges the engine's *effective* activation I/O window
// between 1 and the configured PipelineDepth, so mixed traffic converges to
// the stall-free operating point instead of relying on a hand-tuned static
// knob. The controller changes only how many transfers are in flight —
// depth is timing, never values, so every effective depth is bit-identical
// to every other (the same argument as Config.PipelineDepth itself).
//
// The control signals are the step's fetch-stall wait (backward blocked on
// read-ahead misses: the window is too shallow) and its pool-stall count
// (host staging exhausted waiting on write-behind: the window is too deep
// for memory), plus — when span tracing is on — the flight window's
// obs.Attribute verdict as a corroborating signal. The raise rule is the
// window's fetch-wait *fraction of wall clock*, not the raw miss count:
// the last block's fetch is launched at the backward boundary and so
// always misses by a few microseconds even when the window is deep enough
// — counting events would peg every configuration at the ceiling, while a
// time fraction separates "backward is waiting on the SSD" from "the
// channel hand-off lost a race". The raise threshold sits well under
// obs.Attribute's 15% verdict bound so the controller reacts to stall
// levels the postmortem verdict would still call healthy.

// adaptiveDepthCeiling is the depth ceiling when AdaptiveDepth is enabled
// without an explicit PipelineDepth: one more than the static default, so
// the controller can find operating points the default knob cannot express.
const adaptiveDepthCeiling = 4

// DefaultDepthWindow is the controller's decision window in steps.
const DefaultDepthWindow = 2

// depthRaiseFraction is the fetch-wait share of a window's wall clock above
// which the window is judged read-ahead-starved and the depth raised.
const depthRaiseFraction = 0.02

// depthController holds the feedback state. The effective depth is an
// atomic so telemetry readers never race the step goroutine; every other
// field is owned by the step goroutine (observe runs from noteStep).
type depthController struct {
	eff     atomic.Int32
	ceiling int
	window  int // steps per decision

	// Current-window accumulators.
	steps      int
	fetchWait  time.Duration
	wall       time.Duration
	poolStalls int
	winStart   time.Duration // tracer offset at window start

	// Lifetime decision counts, for tests and postmortems.
	windows, raises, lowers int
}

// newDepthController starts at depth 1 — the controller's first windows
// probe upward from the cheapest window rather than down from the ceiling,
// so a trace that never stalls never pays for unused in-flight buffers.
func newDepthController(ceiling, window int) *depthController {
	if window <= 0 {
		window = DefaultDepthWindow
	}
	c := &depthController{ceiling: ceiling, window: window}
	c.eff.Store(1)
	return c
}

// depth is the effective pipeline depth in force right now.
func (c *depthController) depth() int {
	if c == nil {
		return 0
	}
	return int(c.eff.Load())
}

// observe folds one finished step's stall profile into the current window
// and, at window boundaries, decides whether to move the effective depth.
func (c *depthController) observe(fetchWait, wall time.Duration, poolStalls int, tr *obs.Tracer) {
	c.fetchWait += fetchWait
	c.wall += wall
	c.poolStalls += poolStalls
	c.steps++
	if c.steps < c.window {
		return
	}
	starved := c.wall > 0 && float64(c.fetchWait) > depthRaiseFraction*float64(c.wall)
	raise := starved
	lower := !starved && c.poolStalls > 0
	if tr.Enabled() {
		switch att := obs.Attribute(tr.Spans(), c.winStart, tr.Now()); att.Bound {
		case obs.VerdictStalledReadhead:
			raise = true
		case obs.VerdictStalledOffload:
			if !starved {
				lower = true
			}
		}
	}
	eff := int(c.eff.Load())
	switch {
	case raise && eff < c.ceiling:
		c.eff.Store(int32(eff + 1))
		c.raises++
	case lower && eff > 1:
		c.eff.Store(int32(eff - 1))
		c.lowers++
	}
	c.windows++
	c.steps, c.poolStalls = 0, 0
	c.fetchWait, c.wall = 0, 0
	c.winStart = tr.Now()
}

// EffectiveDepth reports the activation I/O window currently in force: the
// adaptive controller's choice when enabled, the resolved static depth
// otherwise (0 = synchronous).
func (e *Engine) EffectiveDepth() int {
	if e.depthCtl != nil {
		return e.depthCtl.depth()
	}
	return e.depth
}

// DepthDecisions reports the adaptive controller's lifetime decision
// counts (all zero when AdaptiveDepth is off). For tests and diagnostics.
func (e *Engine) DepthDecisions() (windows, raises, lowers int) {
	if e.depthCtl == nil {
		return 0, 0, 0
	}
	return e.depthCtl.windows, e.depthCtl.raises, e.depthCtl.lowers
}
