package engine

import (
	"math"
	"testing"

	"ratel/internal/agoffload"
)

func TestDataParallelTrains(t *testing.T) {
	cfg := Config{Model: miniConfig(), GradMode: agoffload.Optimized, Devices: 2}
	dp, err := NewDataParallel(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer dp.Close()
	if dp.Replicas() != 2 {
		t.Fatalf("replicas = %d", dp.Replicas())
	}
	t1, g1 := data(cfg.Model, 1)
	t2, g2 := data(cfg.Model, 2)
	var first, last float64
	for s := 0; s < 6; s++ {
		loss, err := dp.TrainStep([]Batch{{t1, g1}, {t2, g2}})
		if err != nil {
			t.Fatal(err)
		}
		if s == 0 {
			first = loss
		}
		last = loss
	}
	if last >= first {
		t.Fatalf("data-parallel training did not learn: %.4f -> %.4f", first, last)
	}
}

// TestDataParallelReplicasStayInSync: after every step all replicas hold
// identical fp16 parameters (the broadcast works).
func TestDataParallelReplicasStayInSync(t *testing.T) {
	cfg := Config{Model: miniConfig(), GradMode: agoffload.Serialized, Devices: 1}
	dp, err := NewDataParallel(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer dp.Close()
	t1, g1 := data(cfg.Model, 3)
	t2, g2 := data(cfg.Model, 4)
	t3, g3 := data(cfg.Model, 5)
	if _, err := dp.TrainStep([]Batch{{t1, g1}, {t2, g2}, {t3, g3}}); err != nil {
		t.Fatal(err)
	}
	ref := paramsSnapshot(dp.replicas[0].model)
	for r := 1; r < 3; r++ {
		got := paramsSnapshot(dp.replicas[r].model)
		for i := range ref {
			if ref[i] != got[i] {
				t.Fatalf("replica %d out of sync at parameter %d", r, i)
			}
		}
	}
}

// TestDataParallelMatchesAccumulation: one DP step over two shards computes
// the same averaged-gradient update as gradient accumulation over the same
// micro-batches; fp32 summation order differs, so compare with tolerance.
func TestDataParallelMatchesAccumulation(t *testing.T) {
	cfg := Config{Model: miniConfig(), GradMode: agoffload.Serialized, Devices: 1}
	t1, g1 := data(cfg.Model, 7)
	t2, g2 := data(cfg.Model, 8)

	dp, err := NewDataParallel(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer dp.Close()
	if _, err := dp.TrainStep([]Batch{{t1, g1}, {t2, g2}}); err != nil {
		t.Fatal(err)
	}

	single, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	if _, err := single.TrainStepAccum([]Batch{{t1, g1}, {t2, g2}}); err != nil {
		t.Fatal(err)
	}

	a, b := paramsSnapshot(dp.Model()), paramsSnapshot(single.Model())
	for i := range a {
		diff := math.Abs(float64(a[i] - b[i]))
		scale := math.Max(1e-3, math.Abs(float64(b[i])))
		if diff/scale > 1e-3 {
			t.Fatalf("DP and accumulation diverged at parameter %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestDataParallelDeterminism: identical shards produce identical results.
func TestDataParallelDeterminism(t *testing.T) {
	cfg := Config{Model: miniConfig(), GradMode: agoffload.Optimized, Devices: 2}
	run := func() []float32 {
		dp, err := NewDataParallel(cfg, 2)
		if err != nil {
			t.Fatal(err)
		}
		defer dp.Close()
		t1, g1 := data(cfg.Model, 9)
		t2, g2 := data(cfg.Model, 10)
		for s := 0; s < 3; s++ {
			if _, err := dp.TrainStep([]Batch{{t1, g1}, {t2, g2}}); err != nil {
				t.Fatal(err)
			}
		}
		return paramsSnapshot(dp.Model())
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("data-parallel training is nondeterministic")
		}
	}
}

func TestDataParallelErrors(t *testing.T) {
	if _, err := NewDataParallel(Config{Model: miniConfig()}, 0); err == nil {
		t.Error("zero replicas accepted")
	}
	if _, err := NewDataParallel(Config{Model: miniConfig(), DelayedUpdate: true}, 2); err == nil {
		t.Error("delayed update accepted")
	}
	dp, err := NewDataParallel(Config{Model: miniConfig()}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer dp.Close()
	t1, g1 := data(miniConfig(), 1)
	if _, err := dp.TrainStep([]Batch{{t1, g1}}); err == nil {
		t.Error("shard/replica count mismatch accepted")
	}
}
