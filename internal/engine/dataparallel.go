package engine

import (
	"fmt"
	"sync"

	"ratel/internal/nn"
)

// DataParallel trains replicas of the same model on shards of a global
// batch (the paper's multi-GPU configuration, §V-G): each replica runs
// forward/backward concurrently, gradients are all-reduced (averaged), one
// optimizer pass updates the shared model states, and the fresh fp16
// parameters are broadcast back to every replica.
//
// Replica 0 owns the NVMe-homed model states; the others act as pure
// compute replicas, exactly like additional GPUs sharing the host's SSD
// array.
type DataParallel struct {
	replicas []*Engine
}

// NewDataParallel builds n identically-initialized replicas.
func NewDataParallel(cfg Config, n int) (*DataParallel, error) {
	if n < 1 {
		return nil, fmt.Errorf("engine: need at least one replica, got %d", n)
	}
	if cfg.DelayedUpdate {
		return nil, fmt.Errorf("engine: data parallelism with delayed update is unsupported")
	}
	dp := &DataParallel{}
	for i := 0; i < n; i++ {
		e, err := New(cfg)
		if err != nil {
			dp.Close()
			return nil, err
		}
		dp.replicas = append(dp.replicas, e)
	}
	return dp, nil
}

// Replicas reports the degree of parallelism.
func (dp *DataParallel) Replicas() int { return len(dp.replicas) }

// Model exposes replica 0's model (the state owner).
func (dp *DataParallel) Model() *nn.Model { return dp.replicas[0].model }

// Close releases every replica.
func (dp *DataParallel) Close() error {
	var first error
	for _, e := range dp.replicas {
		if e == nil {
			continue
		}
		if err := e.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// TrainStep runs one data-parallel iteration over one shard per replica.
// The math is identical to gradient accumulation over the same shards: the
// all-reduce averages the per-shard gradients before a single synchronous
// optimizer pass.
func (dp *DataParallel) TrainStep(shards []Batch) (float64, error) {
	n := len(dp.replicas)
	if len(shards) != n {
		return 0, fmt.Errorf("engine: %d shards for %d replicas", len(shards), n)
	}
	owner := dp.replicas[0]
	groups := make([][]nn.ParamGroup, n)
	for i, e := range dp.replicas {
		e.model.ZeroGrads()
		groups[i] = e.model.ParamGroups()
	}

	// Concurrent forward/backward on every replica.
	losses := make([]float64, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	noop := func(nn.ParamGroup) error { return nil }
	for i := range dp.replicas {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			losses[i], _, _, errs[i] = dp.replicas[i].runBatch(shards[i].Tokens, shards[i].Targets, groups[i], noop)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}

	// All-reduce: sum every replica's gradients into replica 0, then scale
	// by 1/n — the ring all-reduce's arithmetic, serialized for
	// reproducibility (replica order is fixed).
	for gi := range groups[0] {
		for pi := range groups[0][gi].Params {
			dst := groups[0][gi].Params[pi].G
			for r := 1; r < n; r++ {
				src := groups[r][gi].Params[pi].G
				for k := range dst.Data {
					dst.Data[k] += src.Data[k]
				}
			}
			dst.Scale(1 / float32(n))
		}
	}

	// One synchronous optimizer pass over the owner's states, in
	// gradient-arrival order.
	owner.beginStep()
	for gi := len(groups[0]) - 1; gi >= 0; gi-- {
		if err := owner.optimizer.UpdateGroup(groups[0][gi]); err != nil {
			return 0, err
		}
	}

	// Broadcast the fresh fp16 parameters to the other replicas.
	for r := 1; r < n; r++ {
		for gi := range groups[0] {
			for pi := range groups[0][gi].Params {
				copy(groups[r][gi].Params[pi].W.Data, groups[0][gi].Params[pi].W.Data)
			}
		}
	}

	owner.mu.Lock()
	owner.stats.Steps++
	owner.mu.Unlock()
	var total float64
	for _, l := range losses {
		total += l
	}
	return total / float64(n), nil
}
