package engine

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"ratel/internal/agoffload"
	"ratel/internal/nn"
	"ratel/internal/tensor"
	"ratel/internal/units"
)

// TestHostTierTransparency: pinning caches in main memory (SwapHost) is
// bit-identical to the SSD tier and to recomputation.
func TestHostTierTransparency(t *testing.T) {
	ref := newEngine(t, Config{GradMode: agoffload.Optimized})
	refLoss := trainK(t, ref, 3)

	host := newEngine(t, Config{
		GradMode: agoffload.Optimized,
		Swap:     map[int]Tier{0: SwapHost, 1: SwapHost, 2: SwapHost},
	})
	hostLoss := trainK(t, host, 3)
	for i := range refLoss {
		if refLoss[i] != hostLoss[i] {
			t.Fatalf("loss[%d]: recompute %v vs host tier %v", i, refLoss[i], hostLoss[i])
		}
	}
	a, b := paramsSnapshot(ref.Model()), paramsSnapshot(host.Model())
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("host-tier training diverged")
		}
	}
	st := host.Stats()
	if st.ActBytesHost == 0 {
		t.Error("host tier saw no traffic")
	}
	if st.ActBytesOffload != 0 {
		t.Error("host tier should not write the SSD")
	}
	if st.ActBytesFetched != st.ActBytesHost {
		t.Errorf("fetched %v != pinned %v", st.ActBytesFetched, st.ActBytesHost)
	}
}

// TestMixedTiers: host, SSD and recompute blocks interleave transparently
// (the α split of Eq. 3 at engine granularity).
func TestMixedTiers(t *testing.T) {
	ref := newEngine(t, Config{GradMode: agoffload.Serialized})
	refLoss := trainK(t, ref, 2)

	mixed := newEngine(t, Config{
		GradMode: agoffload.Optimized,
		Swap:     map[int]Tier{0: SwapHost, 2: SwapSSD}, // block 1 recomputes
	})
	got := trainK(t, mixed, 2)
	for i := range refLoss {
		if refLoss[i] != got[i] {
			t.Fatalf("loss[%d] differs under mixed tiers", i)
		}
	}
	st := mixed.Stats()
	if st.ActBytesHost == 0 || st.ActBytesOffload == 0 || st.RecomputedBlocks != 2 {
		t.Errorf("mixed-tier traffic wrong: %+v", st)
	}
}

// TestHostTierReleasesMemory: after backward, host-tier reservations are
// freed, so a pool sized for one step suffices indefinitely.
func TestHostTierReleasesMemory(t *testing.T) {
	e := newEngine(t, Config{
		GradMode:   agoffload.Optimized,
		Swap:       map[int]Tier{0: SwapHost, 1: SwapHost, 2: SwapHost},
		HostMemory: 64 * units.KiB, // roughly one step's caches
	})
	for s := 0; s < 4; s++ {
		tokens, targets := data(e.cfg.Model, int64(s))
		if _, err := e.TrainStep(tokens, targets); err != nil {
			t.Fatalf("step %d: %v (host tier leaking?)", s, err)
		}
	}
	if used := e.hostPool.Used(); used != 0 {
		t.Errorf("host pool retains %v after steps", used)
	}
}

// TestDelayedUpdateStaleness demonstrates footnote 4: the one-step delayed
// update produces *different* parameters than synchronous training — the
// staleness Ratel's active gradient offloading avoids.
func TestDelayedUpdateStaleness(t *testing.T) {
	sync := newEngine(t, Config{GradMode: agoffload.Optimized})
	trainK(t, sync, 4)

	delayed := newEngine(t, Config{GradMode: agoffload.Optimized, DelayedUpdate: true})
	trainK(t, delayed, 4)
	if err := delayed.FlushDelayed(); err != nil {
		t.Fatal(err)
	}

	a, b := paramsSnapshot(sync.Model()), paramsSnapshot(delayed.Model())
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("delayed update produced identical parameters; staleness not modeled")
	}
	// Both applied the same number of optimizer steps after the flush.
	if sync.optimizer.Step() != delayed.optimizer.Step() {
		t.Errorf("steps: sync %d vs delayed %d", sync.optimizer.Step(), delayed.optimizer.Step())
	}
}

// TestDelayedUpdateStillLearns: staleness changes the trajectory but the
// loss still decreases on a fixed batch (why ZeRO-Offload ships it as an
// option).
func TestDelayedUpdateStillLearns(t *testing.T) {
	e := newEngine(t, Config{GradMode: agoffload.Optimized, DelayedUpdate: true})
	tokens, targets := data(e.cfg.Model, 11)
	var first, last float64
	for s := 0; s < 10; s++ {
		loss, err := e.TrainStep(tokens, targets)
		if err != nil {
			t.Fatal(err)
		}
		if s == 0 {
			first = loss
		}
		last = loss
	}
	if last >= first {
		t.Fatalf("delayed update never learned: %.4f -> %.4f", first, last)
	}
	if err := e.FlushDelayed(); err != nil {
		t.Fatal(err)
	}
	if err := e.FlushDelayed(); err != nil { // second flush is a no-op
		t.Fatal(err)
	}
}

// TestCheckpointResume: save after k steps, restore into a fresh engine,
// continue — bit-identical to an uninterrupted run.
func TestCheckpointResume(t *testing.T) {
	straight := newEngine(t, Config{GradMode: agoffload.Optimized})
	trainK(t, straight, 5)
	want := paramsSnapshot(straight.Model())

	first := newEngine(t, Config{GradMode: agoffload.Optimized})
	trainK(t, first, 3)
	var buf bytes.Buffer
	if err := first.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}

	resumed := newEngine(t, Config{GradMode: agoffload.Optimized})
	if err := resumed.LoadCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	// Continue with the same batches 3 and 4.
	for s := 3; s < 5; s++ {
		tokens, targets := data(resumed.cfg.Model, int64(s))
		if _, err := resumed.TrainStep(tokens, targets); err != nil {
			t.Fatal(err)
		}
	}
	got := paramsSnapshot(resumed.Model())
	for i := range want {
		if want[i] != got[i] {
			t.Fatal("resumed run diverged from uninterrupted run")
		}
	}
}

// TestCheckpointErrors covers the failure paths.
func TestCheckpointErrors(t *testing.T) {
	e := newEngine(t, Config{})
	if err := e.LoadCheckpoint(strings.NewReader("garbage")); err == nil {
		t.Error("garbage checkpoint accepted")
	}
	// A checkpoint from a differently-shaped model is rejected.
	small := newEngine(t, Config{Model: miniConfigWith(2)})
	var buf bytes.Buffer
	if err := small.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadCheckpoint(&buf); err == nil {
		t.Error("mismatched checkpoint accepted")
	}
}

// TestTierString covers the enum.
func TestTierString(t *testing.T) {
	for _, tier := range []Tier{Recompute, SwapHost, SwapSSD} {
		if tier.String() == "" {
			t.Error("empty tier string")
		}
	}
	if Tier(99).String() == "" {
		t.Error("unknown tier should still render")
	}
}

// TestGradientAccumulation: micro-batched steps approximate one big-batch
// step — each micro-batch's samples contribute the same per-sample
// gradients (no cross-sample interaction in the model), so the averaged
// accumulation matches the same data trained sample-parallel, up to fp32
// summation order.
func TestGradientAccumulation(t *testing.T) {
	e := newEngine(t, Config{GradMode: agoffload.Optimized})
	cfg := e.cfg.Model
	t1, g1 := data(cfg, 21)
	t2, g2 := data(cfg, 22)
	loss, err := e.TrainStepAccum([]Batch{{t1, g1}, {t2, g2}})
	if err != nil {
		t.Fatal(err)
	}
	if loss <= 0 {
		t.Fatalf("loss = %v", loss)
	}
	if e.optimizer.Step() != 1 {
		t.Errorf("accumulated step count = %d, want 1", e.optimizer.Step())
	}
	if e.Stats().Steps != 1 {
		t.Errorf("stats steps = %d, want 1", e.Stats().Steps)
	}

	// The accumulated update differs from two separate steps (one vs two
	// optimizer applications) but not wildly: parameters stay finite and
	// close to a reference single step on t1.
	for _, p := range e.Model().Params() {
		for _, v := range p.W.Data {
			if v != v || v > 1e3 || v < -1e3 { // NaN or blowup
				t.Fatalf("parameter %s diverged: %v", p.Name, v)
			}
		}
	}
}

// TestGradientAccumulationLearns: accumulation still reduces loss on a
// fixed pair of micro-batches.
func TestGradientAccumulationLearns(t *testing.T) {
	e := newEngine(t, Config{GradMode: agoffload.Serialized})
	cfg := e.cfg.Model
	t1, g1 := data(cfg, 31)
	t2, g2 := data(cfg, 31) // identical: a fixed effective batch
	var first, last float64
	for s := 0; s < 8; s++ {
		loss, err := e.TrainStepAccum([]Batch{{t1, g1}, {t2, g2}})
		if err != nil {
			t.Fatal(err)
		}
		if s == 0 {
			first = loss
		}
		last = loss
	}
	if last >= first {
		t.Fatalf("accumulated training did not learn: %.4f -> %.4f", first, last)
	}
}

// TestGradientAccumulationMatchesScaledStep: accumulating the SAME
// micro-batch twice equals a single step on it (mean of two identical
// gradients), bit-for-bit.
func TestGradientAccumulationMatchesScaledStep(t *testing.T) {
	cfg := miniConfig()
	tokens, targets := data(cfg, 41)

	accum := newEngine(t, Config{GradMode: agoffload.Optimized})
	if _, err := accum.TrainStepAccum([]Batch{{tokens, targets}, {tokens, targets}}); err != nil {
		t.Fatal(err)
	}
	single := newEngine(t, Config{GradMode: agoffload.Optimized})
	if _, err := single.TrainStep(tokens, targets); err != nil {
		t.Fatal(err)
	}
	a, b := paramsSnapshot(accum.Model()), paramsSnapshot(single.Model())
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("duplicate-micro-batch accumulation diverged from single step")
		}
	}
}

// TestTrainStepAccumErrors covers the guard rails.
func TestTrainStepAccumErrors(t *testing.T) {
	e := newEngine(t, Config{GradMode: agoffload.Optimized})
	if _, err := e.TrainStepAccum(nil); err == nil {
		t.Error("empty micro-batch list accepted")
	}
	d := newEngine(t, Config{GradMode: agoffload.Optimized, DelayedUpdate: true})
	cfg := d.cfg.Model
	tokens, targets := data(cfg, 1)
	if _, err := d.TrainStepAccum([]Batch{{tokens, targets}}); err == nil {
		t.Error("accumulation with delayed update accepted")
	}
}

// TestLRSchedule: the schedule drives the optimizer's learning rate; with a
// zero-LR schedule parameters never move.
func TestLRSchedule(t *testing.T) {
	frozen := newEngine(t, Config{
		GradMode:   agoffload.Optimized,
		LRSchedule: func(int) float64 { return 0 },
	})
	before := paramsSnapshot(frozen.Model())
	trainK(t, frozen, 2)
	after := paramsSnapshot(frozen.Model())
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("zero learning rate still moved parameters")
		}
	}
}

// TestDropoutOffloadTransparency: with dropout enabled, offloaded training
// still matches recompute training bit-for-bit — the counter-based masks
// replay identically on both paths.
func TestDropoutOffloadTransparency(t *testing.T) {
	cfg := miniConfig()
	cfg.Dropout = 0.15
	ref := newEngine(t, Config{Model: cfg, GradMode: agoffload.Optimized})
	refLoss := trainK(t, ref, 3)

	off := newEngine(t, Config{
		Model: cfg, GradMode: agoffload.Optimized,
		Swap: map[int]Tier{0: SwapSSD, 1: SwapHost, 2: SwapSSD},
	})
	offLoss := trainK(t, off, 3)
	for i := range refLoss {
		if refLoss[i] != offLoss[i] {
			t.Fatalf("loss[%d] differs with dropout + offload: %v vs %v", i, refLoss[i], offLoss[i])
		}
	}
	a, b := paramsSnapshot(ref.Model()), paramsSnapshot(off.Model())
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("dropout + offload training diverged from recompute")
		}
	}
}

// TestDropoutCheckpointResume: the model's forward-pass counter rides in
// the checkpoint, so dropout masks line up after resume.
func TestDropoutCheckpointResume(t *testing.T) {
	cfg := miniConfig()
	cfg.Dropout = 0.2
	straight := newEngine(t, Config{Model: cfg, GradMode: agoffload.Optimized})
	trainK(t, straight, 4)
	want := paramsSnapshot(straight.Model())

	first := newEngine(t, Config{Model: cfg, GradMode: agoffload.Optimized})
	trainK(t, first, 2)
	var buf bytes.Buffer
	if err := first.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	resumed := newEngine(t, Config{Model: cfg, GradMode: agoffload.Optimized})
	if err := resumed.LoadCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	for s := 2; s < 4; s++ {
		tokens, targets := data(cfg, int64(s))
		if _, err := resumed.TrainStep(tokens, targets); err != nil {
			t.Fatal(err)
		}
	}
	got := paramsSnapshot(resumed.Model())
	for i := range want {
		if want[i] != got[i] {
			t.Fatal("dropout resume diverged (forward-pass counter not restored?)")
		}
	}
}

// TestStaticLossScaling: gradients travel at scale x and the optimizer
// unscales, so training still converges; the scale is visible via
// LossScale.
func TestStaticLossScaling(t *testing.T) {
	e := newEngine(t, Config{GradMode: agoffload.Optimized, LossScale: 1024})
	if e.LossScale() != 1024 {
		t.Fatalf("LossScale = %v", e.LossScale())
	}
	tokens, targets := data(e.cfg.Model, 51)
	var first, last float64
	for s := 0; s < 10; s++ {
		loss, err := e.TrainStep(tokens, targets)
		if err != nil {
			t.Fatal(err)
		}
		if s == 0 {
			first = loss
		}
		last = loss
	}
	if last >= first {
		t.Fatalf("scaled training did not learn: %.4f -> %.4f", first, last)
	}
	for _, p := range e.Model().Params() {
		for _, v := range p.W.Data {
			if v != v {
				t.Fatal("NaN parameter under static scaling")
			}
		}
	}
}

// TestDynamicLossScalingRecovers: an absurd initial scale overflows the
// fp16 gradients; the scaler halves until steps apply, and the skipped
// steps do not advance the optimizer.
func TestDynamicLossScalingRecovers(t *testing.T) {
	e := newEngine(t, Config{
		GradMode:         agoffload.Serialized,
		LossScale:        1 << 24, // guaranteed overflow at first
		DynamicLossScale: true,
	})
	tokens, targets := data(e.cfg.Model, 52)
	for s := 0; s < 20; s++ {
		if _, err := e.TrainStep(tokens, targets); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.SkippedSteps == 0 {
		t.Error("no overflow skips despite a 2^24 initial scale")
	}
	if e.LossScale() >= 1<<24 {
		t.Errorf("scale did not shrink: %v", e.LossScale())
	}
	if applied := e.optimizer.Step(); applied != 20-st.SkippedSteps {
		t.Errorf("optimizer applied %d steps, want %d (20 - %d skipped)",
			applied, 20-st.SkippedSteps, st.SkippedSteps)
	}
	// Parameters stay finite through the overflow storm.
	for _, p := range e.Model().Params() {
		for _, v := range p.W.Data {
			if v != v {
				t.Fatal("NaN parameter after recovery")
			}
		}
	}
}

// TestDynamicScalingRequiresSerialized: the guard rails hold.
func TestDynamicScalingRequiresSerialized(t *testing.T) {
	_, err := New(Config{Model: miniConfig(), GradMode: agoffload.Optimized, DynamicLossScale: true})
	if err == nil {
		t.Error("dynamic scaling with overlapped handlers accepted")
	}
	d := newEngine(t, Config{GradMode: agoffload.Serialized, DynamicLossScale: true})
	t1, g1 := data(d.cfg.Model, 1)
	if _, err := d.TrainStepAccum([]Batch{{t1, g1}}); err == nil {
		t.Error("accumulation with dynamic scaling accepted")
	}
}

// TestEvalLoss: evaluation neither updates parameters nor advances the
// dropout counter, and matches the training loss at the same parameters.
func TestEvalLoss(t *testing.T) {
	e := newEngine(t, Config{GradMode: agoffload.Optimized})
	tokens, targets := data(e.cfg.Model, 61)
	before := paramsSnapshot(e.Model())
	evalLoss, err := e.EvalLoss(tokens, targets)
	if err != nil {
		t.Fatal(err)
	}
	after := paramsSnapshot(e.Model())
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("EvalLoss changed parameters")
		}
	}
	trainLoss, err := e.TrainStep(tokens, targets)
	if err != nil {
		t.Fatal(err)
	}
	if evalLoss != trainLoss {
		t.Fatalf("eval loss %v != training loss %v at identical parameters", evalLoss, trainLoss)
	}
}

// TestEngineConfigFuzz: random valid configurations train one step without
// error and produce a finite loss.
func TestEngineConfigFuzz(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		heads := 1 + rng.Intn(3)
		cfg := Config{
			Model: nn.Config{
				Vocab:   8 + rng.Intn(40),
				Seq:     2 + rng.Intn(8),
				Hidden:  heads * (4 + 4*rng.Intn(3)),
				Heads:   heads,
				Layers:  1 + rng.Intn(4),
				Batch:   1 + rng.Intn(3),
				Seed:    seed,
				Dropout: []float64{0, 0, 0.1}[rng.Intn(3)],
			},
			GradMode:  []agoffload.Mode{agoffload.Serialized, agoffload.Naive, agoffload.Optimized}[rng.Intn(3)],
			Devices:   1 + rng.Intn(4),
			LossScale: []float64{0, 0, 256}[rng.Intn(3)],
		}
		swap := map[int]Tier{}
		for b := 0; b < cfg.Model.Layers; b++ {
			swap[b] = Tier(rng.Intn(3))
		}
		cfg.Swap = swap
		e, err := New(cfg)
		if err != nil {
			return false
		}
		defer e.Close()
		tokens, targets := data(cfg.Model, seed)
		loss, err := e.TrainStep(tokens, targets)
		if err != nil {
			return false
		}
		return loss > 0 && !math.IsNaN(loss) && !math.IsInf(loss, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestClipGroupNorm: a tiny clip norm shrinks the optimizer moments and
// therefore the realized update, relative to unclipped training on the
// same data.
func TestClipGroupNorm(t *testing.T) {
	run := func(clip float64) []float32 {
		e := newEngine(t, Config{GradMode: agoffload.Optimized, ClipGroupNorm: clip})
		tokens, targets := data(e.cfg.Model, 71)
		if _, err := e.TrainStep(tokens, targets); err != nil {
			t.Fatal(err)
		}
		return paramsSnapshot(e.Model())
	}
	init := func() []float32 {
		e := newEngine(t, Config{GradMode: agoffload.Optimized})
		return paramsSnapshot(e.Model())
	}
	start := init()
	unclipped := run(0)
	clipped := run(1e-4)
	move := func(after []float32) float64 {
		var sq float64
		for i := range after {
			d := float64(after[i] - start[i])
			sq += d * d
		}
		return sq
	}
	if move(clipped) >= move(unclipped) {
		t.Errorf("clipping did not shrink the update: %v vs %v", move(clipped), move(unclipped))
	}
	if move(clipped) == 0 {
		t.Error("clipping zeroed the update entirely")
	}
}

// TestPipelineEquivalenceMatrix: the full-duplex activation I/O pipeline
// changes timing only — training is bit-identical across the synchronous
// path, depth 1, and depth 3, across swap tier mixes (pure SSD, and SSD
// interleaved with pinned host blobs from the shared buffer pool) and
// worker-pool widths (serial and parallel codecs).
func TestPipelineEquivalenceMatrix(t *testing.T) {
	swaps := []struct {
		name string
		swap map[int]Tier
	}{
		{"all-ssd", map[int]Tier{0: SwapSSD, 1: SwapSSD, 2: SwapSSD}},
		{"mixed", map[int]Tier{0: SwapSSD, 1: SwapHost, 2: SwapSSD}},
	}
	variants := []struct {
		name string
		cfg  func(Config) Config
	}{
		{"sync", func(c Config) Config { c.DisablePipeline = true; return c }},
		{"depth1", func(c Config) Config { c.PipelineDepth = 1; return c }},
		{"depth3", func(c Config) Config { c.PipelineDepth = 3; return c }},
	}
	old := tensor.Parallelism()
	defer tensor.SetParallelism(old)
	for _, threads := range []int{1, 4} {
		tensor.SetParallelism(threads)
		for _, sc := range swaps {
			base := Config{GradMode: agoffload.Optimized, Swap: sc.swap}
			ref := newEngine(t, variants[0].cfg(base))
			refLoss := trainK(t, ref, 3)
			refParams := paramsSnapshot(ref.Model())
			for _, v := range variants[1:] {
				t.Run(fmt.Sprintf("%s/%s/threads=%d", sc.name, v.name, threads), func(t *testing.T) {
					e := newEngine(t, v.cfg(base))
					loss := trainK(t, e, 3)
					for i := range refLoss {
						if refLoss[i] != loss[i] {
							t.Fatalf("loss[%d] differs from synchronous path: %v vs %v", i, refLoss[i], loss[i])
						}
					}
					params := paramsSnapshot(e.Model())
					for i := range refParams {
						if refParams[i] != params[i] {
							t.Fatal("pipeline changed training values")
						}
					}
				})
			}
		}
	}
}
