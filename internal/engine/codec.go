package engine

import (
	"fmt"

	"ratel/internal/nn"
	"ratel/internal/tensor"
)

// geometry fixes the tensor shapes of a block cache so it can be serialized
// without per-tensor headers.
type geometry struct {
	batch, seq, hidden, heads int
}

func geometryOf(cfg nn.Config) geometry {
	return geometry{batch: cfg.Batch, seq: cfg.Seq, hidden: cfg.Hidden, heads: cfg.Heads}
}

// cacheTensors lists a block cache's tensors in serialization order. The
// block output Y is excluded: backward never reads it.
func cacheTensors(c *nn.BlockCache) []*tensor.Tensor {
	ts := []*tensor.Tensor{c.LN1Out, c.Attn.QKV}
	for _, hs := range c.Attn.Probs {
		ts = append(ts, hs...)
	}
	return append(ts, c.Attn.Ctx, c.AttnY, c.Res1, c.LN2Out, c.FC1Out, c.GeluOut)
}

// cacheShapes mirrors cacheTensors for decoding.
func (g geometry) cacheShapes() [][]int {
	n := g.batch * g.seq
	shapes := [][]int{{n, g.hidden}, {n, 3 * g.hidden}}
	for i := 0; i < g.batch*g.heads; i++ {
		shapes = append(shapes, []int{g.seq, g.seq})
	}
	return append(shapes,
		[]int{n, g.hidden},     // ctx
		[]int{n, g.hidden},     // attnY
		[]int{n, g.hidden},     // res1
		[]int{n, g.hidden},     // ln2out
		[]int{n, 4 * g.hidden}, // fc1out
		[]int{n, 4 * g.hidden}, // geluout
	)
}

// encodeCache packs a block cache's activations as binary16 — the A16 bytes
// the engine offloads. Every tensor is already on the fp16 grid, so the
// encoding is lossless.
func encodeCache(c *nn.BlockCache, g geometry) []byte {
	var out []byte
	for _, t := range cacheTensors(c) {
		out = append(out, tensor.ToFP16Bytes(t.Data)...)
	}
	return out
}

// decodeCache restores a block cache from its fp16 bytes and the saved
// block input.
func decodeCache(blob []byte, input *tensor.Tensor, g geometry) (*nn.BlockCache, error) {
	c := &nn.BlockCache{X: input, Attn: &nn.AttnCache{}}
	off := 0
	next := func(shape []int) (*tensor.Tensor, error) {
		n := tensor.Numel(shape...)
		end := off + 2*n
		if end > len(blob) {
			return nil, fmt.Errorf("engine: activation blob truncated at %d of %d bytes", off, len(blob))
		}
		t := tensor.New(shape...)
		if err := tensor.FromFP16Bytes(blob[off:end], t.Data); err != nil {
			return nil, err
		}
		off = end
		return t, nil
	}

	shapes := g.cacheShapes()
	var err error
	if c.LN1Out, err = next(shapes[0]); err != nil {
		return nil, err
	}
	if c.Attn.QKV, err = next(shapes[1]); err != nil {
		return nil, err
	}
	c.Attn.Probs = make([][]*tensor.Tensor, g.batch)
	idx := 2
	for bi := 0; bi < g.batch; bi++ {
		c.Attn.Probs[bi] = make([]*tensor.Tensor, g.heads)
		for h := 0; h < g.heads; h++ {
			if c.Attn.Probs[bi][h], err = next(shapes[idx]); err != nil {
				return nil, err
			}
			idx++
		}
	}
	for _, dst := range []**tensor.Tensor{&c.Attn.Ctx, &c.AttnY, &c.Res1, &c.LN2Out, &c.FC1Out, &c.GeluOut} {
		if *dst, err = next(shapes[idx]); err != nil {
			return nil, err
		}
		idx++
	}
	if off != len(blob) {
		return nil, fmt.Errorf("engine: activation blob has %d trailing bytes", len(blob)-off)
	}
	return c, nil
}
