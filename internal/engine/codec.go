package engine

import (
	"fmt"

	"ratel/internal/nn"
	"ratel/internal/tensor"
)

// geometry fixes the tensor shapes of a block cache so it can be serialized
// without per-tensor headers.
type geometry struct {
	batch, seq, hidden, heads int
}

func geometryOf(cfg nn.Config) geometry {
	return geometry{batch: cfg.Batch, seq: cfg.Seq, hidden: cfg.Hidden, heads: cfg.Heads}
}

// appendCacheTensors appends a block cache's tensors in serialization order
// to ts, reusing its capacity — the engine's steady-state codec scratch.
// The block output Y is excluded: backward never reads it.
func appendCacheTensors(ts []*tensor.Tensor, c *nn.BlockCache) []*tensor.Tensor {
	ts = append(ts, c.LN1Out, c.Attn.QKV)
	for _, hs := range c.Attn.Probs {
		ts = append(ts, hs...)
	}
	return append(ts, c.Attn.Ctx, c.AttnY, c.Res1, c.LN2Out, c.FC1Out, c.GeluOut)
}

// cacheTensors lists a block cache's tensors in serialization order.
func cacheTensors(c *nn.BlockCache) []*tensor.Tensor {
	ts := make([]*tensor.Tensor, 0, 8+len(c.Attn.Probs)*len(c.Attn.Probs[0]))
	return appendCacheTensors(ts, c)
}

// cacheShapes mirrors cacheTensors for decoding.
func (g geometry) cacheShapes() [][]int {
	n := g.batch * g.seq
	shapes := [][]int{{n, g.hidden}, {n, 3 * g.hidden}}
	for i := 0; i < g.batch*g.heads; i++ {
		shapes = append(shapes, []int{g.seq, g.seq})
	}
	return append(shapes,
		[]int{n, g.hidden},     // ctx
		[]int{n, g.hidden},     // attnY
		[]int{n, g.hidden},     // res1
		[]int{n, g.hidden},     // ln2out
		[]int{n, 4 * g.hidden}, // fc1out
		[]int{n, 4 * g.hidden}, // geluout
	)
}

// blobBytes is the exact fp16 size of an encoded block cache — statically
// known from the geometry, which is what lets the engine preallocate every
// swap buffer once.
func (g geometry) blobBytes() int {
	n := 0
	for _, s := range g.cacheShapes() {
		n += tensor.Numel(s...)
	}
	return 2 * n
}

// newBlockCache allocates an empty block cache with every serialized tensor
// shaped per the geometry — the ring entries decodeCacheInto revives. X and
// Y are left nil: X is installed per decode, Y is never serialized.
func newBlockCache(g geometry) *nn.BlockCache {
	n := g.batch * g.seq
	c := &nn.BlockCache{Attn: &nn.AttnCache{}}
	c.LN1Out = tensor.New(n, g.hidden)
	c.Attn.QKV = tensor.New(n, 3*g.hidden)
	c.Attn.Probs = make([][]*tensor.Tensor, g.batch)
	for bi := range c.Attn.Probs {
		c.Attn.Probs[bi] = make([]*tensor.Tensor, g.heads)
		for h := range c.Attn.Probs[bi] {
			c.Attn.Probs[bi][h] = tensor.New(g.seq, g.seq)
		}
	}
	c.Attn.Ctx = tensor.New(n, g.hidden)
	c.AttnY = tensor.New(n, g.hidden)
	c.Res1 = tensor.New(n, g.hidden)
	c.LN2Out = tensor.New(n, g.hidden)
	c.FC1Out = tensor.New(n, 4*g.hidden)
	c.GeluOut = tensor.New(n, 4*g.hidden)
	return c
}

// encodeCache packs a block cache's activations as binary16 — the A16 bytes
// the engine offloads. Every tensor is already on the fp16 grid, so the
// encoding is lossless. The blob is preallocated at its exact size; the
// steady-state path avoids even that by encoding into an arena buffer with
// encodeCacheInto.
func encodeCache(c *nn.BlockCache, g geometry) []byte {
	out := make([]byte, g.blobBytes())
	// The length is exact by construction, so the Into error is impossible.
	_ = encodeCacheInto(out, c, g)
	return out
}

// encodeCacheInto packs the cache into dst, which must be exactly
// g.blobBytes() long. dst is fully overwritten, so dirty reused buffers
// encode the same bits as fresh ones.
func encodeCacheInto(dst []byte, c *nn.BlockCache, g geometry) error {
	return encodeTensors(dst, cacheTensors(c))
}

// encodeTensors packs ts as fp16 into dst, which must hold exactly the
// tensors' combined encoded size.
func encodeTensors(dst []byte, ts []*tensor.Tensor) error {
	off := 0
	for _, t := range ts {
		end := off + 2*t.Numel()
		if end > len(dst) {
			return fmt.Errorf("engine: encode blob %d bytes, need more than %d", len(dst), off)
		}
		if err := tensor.ToFP16BytesInto(dst[off:end], t.Data); err != nil {
			return err
		}
		off = end
	}
	if off != len(dst) {
		return fmt.Errorf("engine: encode blob %d bytes, want %d", len(dst), off)
	}
	return nil
}

// decodeCache restores a block cache from its fp16 bytes and the saved
// block input, allocating fresh tensors. The engine's backward path decodes
// into a reusable ring with decodeCacheInto instead.
func decodeCache(blob []byte, input *tensor.Tensor, g geometry) (*nn.BlockCache, error) {
	c := newBlockCache(g)
	if err := decodeCacheInto(c, blob, input, g); err != nil {
		return nil, err
	}
	return c, nil
}

// decodeCacheInto revives c — a cache built by newBlockCache(g) — from its
// fp16 bytes, installing input as the block input. Every serialized tensor
// is fully overwritten, so ring entries carry no state between blocks.
func decodeCacheInto(c *nn.BlockCache, blob []byte, input *tensor.Tensor, g geometry) error {
	c.X = input
	return decodeTensors(blob, cacheTensors(c))
}

// decodeTensors unpacks fp16 blob bytes into ts, fully overwriting each
// tensor.
func decodeTensors(blob []byte, ts []*tensor.Tensor) error {
	off := 0
	for _, t := range ts {
		end := off + 2*t.Numel()
		if end > len(blob) {
			return fmt.Errorf("engine: activation blob truncated at %d of %d bytes", off, len(blob))
		}
		if err := tensor.FromFP16Bytes(blob[off:end], t.Data); err != nil {
			return err
		}
		off = end
	}
	if off != len(blob) {
		return fmt.Errorf("engine: activation blob has %d trailing bytes", len(blob)-off)
	}
	return nil
}
