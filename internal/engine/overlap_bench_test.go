package engine

import (
	"testing"

	"ratel/internal/agoffload"
	"ratel/internal/nn"
	"ratel/internal/nvme"
	"ratel/internal/units"
)

// BenchmarkTrainStepOverlap isolates the full-duplex activation I/O
// pipeline's overlap win (BENCH_overlap.json): one optimizer step with
// every block's activations swapped through a bandwidth-throttled array,
// synchronous vs write-behind/read-ahead at depth 1 and depth 3.
//
// The throttle keeps Table III's per-device shape — an Intel P5510 moves
// 6.5 GB/s reads against 3.8 GB/s writes, ratio 1.71 — scaled down 1/200:
// real Ratel blobs are hundreds of MiB while this model's are 256 KiB, so
// scaling bandwidth with the blobs restores a realistic compute-to-I/O
// ratio (the same scaling argument as the Fig. 10 mini benches). The model
// is shaped to make activation traffic dominate state traffic: attention
// probs grow with seq^2 while parameters grow with hidden^2, so a long
// sequence over a narrow model gives ~1.5 MiB of activations per direction
// per step against ~0.3 MiB of optimizer state. Serialized gradient mode
// keeps that optimizer traffic out of the forward/backward window, so the
// variants differ only in activation overlap — the thing under test.
const (
	overlapReadBW  = units.BytesPerSecond(33 << 20) // 6.5 GB/s / 200 per device
	overlapWriteBW = units.BytesPerSecond(19 << 20) // 3.8 GB/s / 200 per device
)

func overlapConfig(mut func(*Config)) Config {
	cfg := Config{
		Model:    nn.Config{Vocab: 64, Seq: 128, Hidden: 16, Heads: 2, Layers: 6, Batch: 2, Seed: 11},
		GradMode: agoffload.Serialized,
		Swap: map[int]Tier{
			0: SwapSSD, 1: SwapSSD, 2: SwapSSD, 3: SwapSSD, 4: SwapSSD, 5: SwapSSD,
		},
		Devices: 3,
		SSD: &nvme.Config{
			ReadBW:     overlapReadBW,
			WriteBW:    overlapWriteBW,
			StripeSize: 1 << 16,
		},
	}
	mut(&cfg)
	return cfg
}

func BenchmarkTrainStepOverlap(b *testing.B) {
	variants := []struct {
		name string
		mut  func(*Config)
	}{
		{"sync", func(c *Config) { c.DisablePipeline = true }},
		{"depth1", func(c *Config) { c.PipelineDepth = 1 }},
		{"depth3", func(c *Config) { c.PipelineDepth = 3 }},
	}
	var refLoss float64
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			e, err := New(overlapConfig(v.mut))
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			tokens, targets := data(e.cfg.Model, 9)
			var loss float64
			for i := 0; i < 2; i++ {
				if loss, err = e.TrainStep(tokens, targets); err != nil {
					b.Fatal(err)
				}
			}
			// All variants share one training trajectory; a drift here means
			// the pipeline changed values, which voids the comparison.
			if refLoss == 0 {
				refLoss = loss
			} else if loss != refLoss {
				b.Fatalf("%s warm-up loss %v != sync %v (pipeline changed values)", v.name, loss, refLoss)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.TrainStep(tokens, targets); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			m := e.LastStepMetrics()
			b.ReportMetric(float64(m.OffloadStalls), "stalls/step")
			b.ReportMetric(float64(m.OffloadStallWait.Microseconds()), "stall-µs/step")
		})
	}
}

// TestOverlapBenchValues pins the benchmark's comparability claim in the
// regular test suite: the three BenchmarkTrainStepOverlap variants follow
// bit-identical trajectories on the throttled array.
func TestOverlapBenchValues(t *testing.T) {
	if testing.Short() {
		t.Skip("throttled-array training in -short mode")
	}
	var ref []float64
	for _, v := range []struct {
		name string
		mut  func(*Config)
	}{
		{"sync", func(c *Config) { c.DisablePipeline = true }},
		{"depth1", func(c *Config) { c.PipelineDepth = 1 }},
		{"depth3", func(c *Config) { c.PipelineDepth = 3 }},
	} {
		e, err := New(overlapConfig(v.mut))
		if err != nil {
			t.Fatal(err)
		}
		tokens, targets := data(e.cfg.Model, 9)
		var losses []float64
		for i := 0; i < 2; i++ {
			loss, err := e.TrainStep(tokens, targets)
			if err != nil {
				t.Fatal(err)
			}
			losses = append(losses, loss)
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = losses
			continue
		}
		for i := range ref {
			if ref[i] != losses[i] {
				t.Fatalf("%s loss[%d] = %v differs from sync %v", v.name, i, losses[i], ref[i])
			}
		}
	}
}
