package engine

import (
	"testing"
	"time"

	"ratel/internal/agoffload"
	"ratel/internal/nn"
	"ratel/internal/nvme"
	"ratel/internal/opt"
)

// BenchmarkTrainStepSched isolates the transfer scheduler's win on a mixed
// activation+optimizer trace (BENCH_sched.json): the Table III per-device
// throttle shape of BenchmarkTrainStepOverlap, but with the readiness
// optimizer schedule so state reads are issued at gradient arrival — during
// backward they contend with the activation read-ahead, and the drain's
// writebacks contend with the write-behind spill. Under FCFS each device
// serves that mix through one arrival-ordered queue, so a critical fetch
// queues behind whatever bulk writeback got there first; the scheduler's
// duplex lanes dispatch the directions independently (the P5510's
// 6.5/3.8 GB/s full-duplex shape), priorities keep critical fetches and
// opt-reads ahead of bulk writes within a lane, and adjacent-stripe
// coalescing pays the per-op access latency once per run instead of once
// per stripe. The model is wider than the overlap bench (hidden 32) so
// optimizer-state traffic rivals activation traffic — the mix under test.
// The depth-1 pair pins the scheduler's effect on the overlap bench's
// depth-1 pathology, and the adaptive variant finds its depth by feedback
// instead of the hand-set knob. All variants share one bit-identical
// training trajectory (asserted at warm-up): the scheduler reorders I/O,
// never data.
func schedBenchConfig(mut func(*Config)) Config {
	cfg := Config{
		Model:    nn.Config{Vocab: 64, Seq: 64, Hidden: 32, Heads: 2, Layers: 6, Batch: 2, Seed: 11},
		GradMode: agoffload.Optimized,
		Swap: map[int]Tier{
			0: SwapSSD, 1: SwapSSD, 2: SwapSSD, 3: SwapSSD, 4: SwapSSD, 5: SwapSSD,
		},
		Devices:     3,
		OptSchedule: opt.ScheduleReadiness,
		SSD: &nvme.Config{
			ReadBW:     overlapReadBW,
			WriteBW:    overlapWriteBW,
			StripeSize: 1 << 14,
			OpLatency:  80 * time.Microsecond,
		},
		PipelineDepth: 2,
	}
	mut(&cfg)
	return cfg
}

func BenchmarkTrainStepSched(b *testing.B) {
	variants := []struct {
		name string
		mut  func(*Config)
	}{
		{"fcfs", func(c *Config) {}},
		{"sched", func(c *Config) { c.Sched = true }},
		{"fcfs-depth1", func(c *Config) { c.PipelineDepth = 1 }},
		{"sched-depth1", func(c *Config) { c.Sched = true; c.PipelineDepth = 1 }},
		{"sched-adaptive", func(c *Config) { c.Sched = true; c.AdaptiveDepth = true }},
	}
	var refLoss float64
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			e, err := New(schedBenchConfig(v.mut))
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			tokens, targets := data(e.cfg.Model, 9)
			var loss float64
			for i := 0; i < 4; i++ { // warm-up covers two adaptive windows
				if loss, err = e.TrainStep(tokens, targets); err != nil {
					b.Fatal(err)
				}
			}
			// One trajectory across all variants: the scheduler reorders
			// I/O, never data, so any drift voids the comparison.
			if refLoss == 0 {
				refLoss = loss
			} else if loss != refLoss {
				b.Fatalf("%s warm-up loss %v != fcfs %v (scheduler changed values)", v.name, loss, refLoss)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.TrainStep(tokens, targets); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			m := e.LastStepMetrics()
			b.ReportMetric(float64(m.OffloadStalls), "stalls/step")
			b.ReportMetric(float64(m.OffloadStallWait.Microseconds()), "stall-µs/step")
			b.ReportMetric(float64(m.FetchStallWait.Microseconds()), "fetch-µs/step")
			b.ReportMetric(float64(m.EffectiveDepth), "depth")
		})
	}
}
