package engine

import (
	"testing"

	"ratel/internal/agoffload"
	"ratel/internal/nn"
	"ratel/internal/nvme"
	"ratel/internal/obs"
	"ratel/internal/opt"
	"ratel/internal/tensor"
)

// cacheRoundTripAllocBudget pins the steady-state swap cycle: the
// persistent per-device dispatchers replaced the old per-transfer goroutine
// spawn (which cost ~24 allocs/op for goroutines + closures), so a full
// encode → striped Put → ReadInto → decode cycle must stay in single-digit
// allocations.
const cacheRoundTripAllocBudget = 8

func TestCacheRoundTripAllocs(t *testing.T) {
	g := geometry{batch: 2, seq: 64, hidden: 128, heads: 4}
	src := newBlockCache(g)
	for i, tt := range cacheTensors(src) {
		for j := range tt.Data {
			tt.Data[j] = tensor.RoundFP16(float32((i+j)%17) * 0.125)
		}
	}
	input := tensor.New(g.batch*g.seq, g.hidden)
	a, err := nvme.Open(nvme.Config{Devices: 4, StripeSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	var ar blobArena
	ar.init(DefaultPipelineDepth + 1)
	n := g.blobBytes()
	iter := 0
	cycle := func() {
		blob := ar.slotBuf(iter, n)
		if err := ar.encode(blob, src); err != nil {
			t.Fatal(err)
		}
		if err := a.Put("act/bench", blob); err != nil {
			t.Fatal(err)
		}
		fetch := ar.slotBuf(iter+1, n)
		if err := a.ReadInto("act/bench", fetch); err != nil {
			t.Fatal(err)
		}
		c := ar.cacheFor(iter, g)
		if err := ar.decode(c, fetch, input); err != nil {
			t.Fatal(err)
		}
		iter++
	}
	for i := 0; i < 4; i++ { // warm the arena, buffer pool and xfer pool
		cycle()
	}
	allocs := testing.AllocsPerRun(30, cycle)
	t.Logf("cache round trip: %.1f allocs/op (budget %d)", allocs, cacheRoundTripAllocBudget)
	if allocs > cacheRoundTripAllocBudget {
		t.Fatalf("cache round trip allocates %.1f/op, budget %d — per-transfer goroutine spawn crept back?",
			allocs, cacheRoundTripAllocBudget)
	}
}

// TestSchedBitIdentityMatrix pins the scheduler's exactness claim across
// the engine's operating modes: for every optimizer schedule and a mixed
// swap-tier layout, turning the transfer scheduler (and the adaptive depth
// controller) on must leave the training trajectory bit-identical — the
// scheduler reorders I/O, never data. Comparisons are within one
// OptSchedule mode; the async schedule differs from sync by design.
func TestSchedBitIdentityMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("throttled-array matrix in -short mode")
	}
	base := Config{
		Model:    nn.Config{Vocab: 64, Seq: 24, Hidden: 16, Heads: 2, Layers: 4, Batch: 2, Seed: 5},
		GradMode: agoffload.Optimized,
		Swap:     map[int]Tier{0: SwapSSD, 1: SwapHost, 2: SwapSSD, 3: SwapSSD},
		Devices:  3,
		SSD: &nvme.Config{
			ReadBW:     256 << 20,
			WriteBW:    148 << 20,
			StripeSize: 1 << 12,
		},
		PipelineDepth: 2,
	}
	schedules := []struct {
		name string
		mut  func(*Config)
	}{
		{"sync", func(c *Config) {}},
		{"readiness", func(c *Config) { c.OptSchedule = opt.ScheduleReadiness }},
		{"async", func(c *Config) {
			c.OptSchedule = opt.ScheduleAsync
			c.AsyncTopK = 2
			c.MaxStaleness = 1
		}},
	}
	arrays := []struct {
		name string
		mut  func(*Config)
	}{
		{"fcfs", func(c *Config) {}},
		{"sched", func(c *Config) { c.Sched = true }},
		{"sched-inverted", func(c *Config) {
			c.Sched = true
			c.SchedClasses = "write-behind,writeback,opt-read,fetch"
		}},
		{"sched-adaptive", func(c *Config) {
			c.Sched = true
			c.AdaptiveDepth = true
			c.DepthWindow = 1
		}},
	}
	const steps = 3
	run := func(cfg Config) (losses []float64, flat []float32) {
		t.Helper()
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tokens, targets := data(cfg.Model, 21)
		for s := 0; s < steps; s++ {
			loss, err := e.TrainStep(tokens, targets)
			if err != nil {
				e.Close()
				t.Fatal(err)
			}
			losses = append(losses, loss)
		}
		if err := e.FlushAsync(); err != nil {
			e.Close()
			t.Fatal(err)
		}
		for _, p := range e.Model().Params() {
			flat = append(flat, p.W.Data...)
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		return losses, flat
	}
	for _, sched := range schedules {
		t.Run(sched.name, func(t *testing.T) {
			var refLoss []float64
			var refFlat []float32
			for _, arr := range arrays {
				cfg := base
				sched.mut(&cfg)
				arr.mut(&cfg)
				losses, flat := run(cfg)
				if refLoss == nil {
					refLoss, refFlat = losses, flat
					continue
				}
				for s := range refLoss {
					if losses[s] != refLoss[s] {
						t.Fatalf("%s: loss[%d] = %v differs from fcfs %v (scheduler changed values)",
							arr.name, s, losses[s], refLoss[s])
					}
				}
				for i := range refFlat {
					if flat[i] != refFlat[i] {
						t.Fatalf("%s: param %d = %v differs from fcfs %v", arr.name, i, flat[i], refFlat[i])
					}
				}
			}
		})
	}
}

// TestAdaptiveDepthConverges drives the Table III throttle shape (the
// BenchmarkTrainStepOverlap configuration, where static depth 1 stalls 4
// times per step and burns ~10% of the wall waiting on read-ahead) with the
// adaptive controller and no hand-tuned depth: within 5 decision windows
// the controller must have raised the effective window to a stall-free
// operating point — fetch waits below the obs.Attribute verdict threshold
// and a bottleneck attribution that no longer reads "stalled readahead".
func TestAdaptiveDepthConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("throttled-array training in -short mode")
	}
	tr := obs.NewTracer(obs.DefaultCapacity)
	cfg := overlapConfig(func(c *Config) {
		c.Sched = true
		c.AdaptiveDepth = true // PipelineDepth left 0: adaptive ceiling applies
		c.Tracer = tr
	})
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	tokens, targets := data(cfg.Model, 9)

	if got := e.EffectiveDepth(); got != 1 {
		t.Fatalf("controller starts at depth %d, want 1", got)
	}
	const convergeBudget = 5 * DefaultDepthWindow // acceptance: 5 windows
	for s := 0; s < convergeBudget; s++ {
		if _, err := e.TrainStep(tokens, targets); err != nil {
			t.Fatal(err)
		}
	}
	windows, raises, _ := e.DepthDecisions()
	if windows == 0 || raises == 0 {
		t.Fatalf("after %d steps: %d windows, %d raises — controller never reacted to depth-1 stalls",
			convergeBudget, windows, raises)
	}

	// Converged tail: fetch waits are a healthy fraction of the wall (well
	// under the 15% verdict threshold) and the span attribution agrees. The
	// raw miss count never reaches zero on this trace — the head-of-window
	// fetch is launched at the backward boundary and always misses by a
	// hair — which is exactly why the controller keys on time, not events.
	tailStart := tr.Now()
	const tailSteps = 2 * DefaultDepthWindow
	for s := 0; s < tailSteps; s++ {
		if _, err := e.TrainStep(tokens, targets); err != nil {
			t.Fatal(err)
		}
		m := e.LastStepMetrics()
		if frac := float64(m.FetchStallWait) / float64(m.Wall); frac > 0.15 {
			t.Fatalf("tail step %d: fetch waits are %.0f%% of wall at effective depth %d — not converged within 5 windows",
				s, 100*frac, m.EffectiveDepth)
		}
		if m.EffectiveDepth <= 1 {
			t.Fatalf("tail step %d: effective depth %d, controller never raised", s, m.EffectiveDepth)
		}
	}
	if att := obs.Attribute(tr.Spans(), tailStart, tr.Now()); att.Bound == obs.VerdictStalledReadhead {
		t.Fatalf("converged tail still attributed to stalled readahead: %+v", att)
	}
}
