package engine

import (
	"bytes"
	"testing"

	"ratel/internal/agoffload"
	"ratel/internal/nn"
	"ratel/internal/nvme"
	"ratel/internal/tensor"
)

// steadyStateAllocBudget is the regression ceiling for steady-state
// TrainStep allocations on the mixed-swap mini config. The unpooled data
// path allocated 1835 per step; the pooled arena + in-place codec path
// measures ~322. The budget is the issue's >=5x floor, not the measured
// value, so routine churn doesn't flake the test — but a leak that
// reintroduces per-step blob or scratch allocation blows straight past it.
const steadyStateAllocBudget = 367

// TestTrainStepSteadyStateAllocs pins the zero-allocation claim: after
// warm-up, a swap-mode TrainStep must stay under the regression budget.
func TestTrainStepSteadyStateAllocs(t *testing.T) {
	e := newEngine(t, Config{
		GradMode: agoffload.Optimized,
		Swap:     map[int]Tier{0: SwapSSD, 1: SwapHost, 2: SwapSSD},
	})
	tokens, targets := data(e.cfg.Model, 1)
	// Warm-up: first steps populate the arena, the buffer pool, the
	// attention scratch, and the optimizer's store objects.
	for i := 0; i < 3; i++ {
		if _, err := e.TrainStep(tokens, targets); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := e.TrainStep(tokens, targets); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("steady-state allocs/step = %.0f (budget %d, unpooled baseline 1835)",
		allocs, steadyStateAllocBudget)
	if allocs > steadyStateAllocBudget {
		t.Fatalf("steady-state TrainStep allocates %.0f/step, budget %d", allocs, steadyStateAllocBudget)
	}
}

// TestDecodedCacheNeverAliasesBlob: decodeCacheInto copies, never aliases —
// poisoning the source blob after decode must not disturb the revived
// cache. This is the invariant that makes recycling fetch buffers safe
// while the previous block's cache is still being consumed.
func TestDecodedCacheNeverAliasesBlob(t *testing.T) {
	g := geometry{batch: 2, seq: 4, hidden: 8, heads: 2}
	src := newBlockCache(g)
	for i, tt := range cacheTensors(src) {
		for j := range tt.Data {
			tt.Data[j] = tensor.RoundFP16(float32(i+1) * float32(j%7) * 0.25)
		}
	}
	blob := make([]byte, g.blobBytes())
	if err := encodeCacheInto(blob, src, g); err != nil {
		t.Fatal(err)
	}

	input := tensor.New(g.batch*g.seq, g.hidden)
	dst := newBlockCache(g)
	if err := decodeCacheInto(dst, blob, input, g); err != nil {
		t.Fatal(err)
	}
	want := make([][]float32, 0)
	for _, tt := range cacheTensors(dst) {
		want = append(want, append([]float32(nil), tt.Data...))
	}

	// Poison the blob as a recycled buffer would be: every byte clobbered.
	for i := range blob {
		blob[i] = 0xFF
	}
	for i, tt := range cacheTensors(dst) {
		for j, v := range tt.Data {
			if v != want[i][j] {
				t.Fatalf("cache tensor %d[%d] changed after blob poison: %v vs %v", i, j, v, want[i][j])
			}
		}
	}
	if dst.X != input {
		t.Fatal("decode must install the block input by reference")
	}
}

// TestPoisonedPoolBuffersAreTransparent: dirtying every buffer in the
// shared nvme pool between steps must not change training — all pooled
// buffers are fully overwritten before they are read, so recycled garbage
// can never leak into values.
func TestPoisonedPoolBuffersAreTransparent(t *testing.T) {
	swap := map[int]Tier{0: SwapSSD, 1: SwapHost, 2: SwapHost}
	ref := newEngine(t, Config{GradMode: agoffload.Optimized, Swap: swap})
	poisoned := newEngine(t, Config{GradMode: agoffload.Optimized, Swap: swap})
	tokens, targets := data(ref.cfg.Model, 1)

	var refLoss, poiLoss []float64
	for step := 0; step < 4; step++ {
		l, err := ref.TrainStep(tokens, targets)
		if err != nil {
			t.Fatal(err)
		}
		refLoss = append(refLoss, l)

		// Churn the shared pool: claim a spread of sizes, fill with garbage,
		// recycle. Any consumer trusting recycled contents now reads trash.
		var bufs [][]byte
		for _, n := range []int{poisoned.blobLen, poisoned.blobLen, 512, 4096} {
			b := nvme.Buffers.Get(n)
			bufs = append(bufs, b)
		}
		for _, b := range bufs {
			for i := range b {
				b[i] = 0xAB
			}
			nvme.Buffers.Put(b)
		}

		l, err = poisoned.TrainStep(tokens, targets)
		if err != nil {
			t.Fatal(err)
		}
		poiLoss = append(poiLoss, l)
	}
	for i := range refLoss {
		if refLoss[i] != poiLoss[i] {
			t.Fatalf("loss[%d] differs with poisoned pool buffers: %v vs %v", i, refLoss[i], poiLoss[i])
		}
	}
	pa, pb := paramsSnapshot(ref.Model()), paramsSnapshot(poisoned.Model())
	if !floatsEqual(pa, pb) {
		t.Fatal("poisoned pool buffers changed trained parameters")
	}
}

func floatsEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBlobArenaRingSlots: within any window of ring-size consecutive
// blocks, every block gets a distinct slot buffer and ring cache (the
// pipeline overlap argument), and block i+ringsize reuses block i's backing
// exactly.
func TestBlobArenaRingSlots(t *testing.T) {
	g := geometry{batch: 1, seq: 2, hidden: 4, heads: 1}
	n := g.blobBytes()
	for _, nslots := range []int{2, 3, 4} {
		var ar blobArena
		ar.init(nslots)
		if got := len(ar.slots); got != nslots {
			t.Fatalf("init(%d) made %d slots", nslots, got)
		}
		bufs := make([]*byte, nslots)
		caches := make([]*nn.BlockCache, nslots)
		for i := 0; i < nslots; i++ {
			bufs[i] = &ar.slotBuf(i, n)[0]
			caches[i] = ar.cacheFor(i, g)
			for j := 0; j < i; j++ {
				if bufs[i] == bufs[j] {
					t.Fatalf("nslots=%d: blocks %d and %d share a slot buffer", nslots, j, i)
				}
				if caches[i] == caches[j] {
					t.Fatalf("nslots=%d: blocks %d and %d share a ring cache", nslots, j, i)
				}
			}
		}
		for i := 0; i < nslots; i++ {
			if &ar.slotBuf(i+nslots, n)[0] != bufs[i] {
				t.Fatalf("nslots=%d: block %d did not reuse block %d's slot buffer", nslots, i+nslots, i)
			}
			if ar.cacheFor(i+nslots, g) != caches[i] {
				t.Fatalf("nslots=%d: block %d did not reuse block %d's ring cache", nslots, i+nslots, i)
			}
		}
		if ar.blobReuses.Load() == 0 || ar.ringReuses.Load() == 0 {
			t.Fatal("arena reuse counters did not advance")
		}
	}
	// init clamps degenerate ring sizes to the 2-slot minimum.
	var ar blobArena
	ar.init(1)
	if len(ar.slots) != 2 {
		t.Fatalf("init(1) made %d slots, want the 2-slot minimum", len(ar.slots))
	}
}

// TestPutFromRecyclesIntoPool: ownership of a PutFrom buffer transfers to
// the store, which recycles it — the next same-class Get returns the same
// backing array.
func TestPutFromRecyclesIntoPool(t *testing.T) {
	a, err := nvme.Open(nvme.Config{Devices: 2, StripeSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	b := nvme.Buffers.Get(8192)
	for i := range b {
		b[i] = byte(i)
	}
	want := append([]byte(nil), b...)
	if err := a.PutFrom("k", b); err != nil {
		t.Fatal(err)
	}
	got := nvme.Buffers.Get(8192)
	if &got[0] != &b[0] {
		// Another test may have raced a buffer into the class; the pool is
		// shared. Retry once before declaring the recycle broken.
		got2 := nvme.Buffers.Get(8192)
		if &got2[0] != &b[0] {
			t.Skip("pool order perturbed by concurrent tests")
		}
		nvme.Buffers.Put(got)
		got = got2
	}
	nvme.Buffers.Put(got)

	back := make([]byte, 8192)
	if err := a.ReadInto("k", back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, want) {
		t.Fatal("stored bytes differ after PutFrom recycled the buffer")
	}
}
