package engine

import (
	"encoding/gob"
	"fmt"
	"io"

	"ratel/internal/opt"
)

// checkpoint is the serialized fine-tuning state: the optimizer step and
// every parameter group's fp32 masters and Adam moments. The fp16 working
// copies are rederived on load (P16 = fp16(P32)), so a restored run is
// bit-identical to an uninterrupted one.
type checkpoint struct {
	Version int
	Step    int
	// ModelStep is the forward-pass counter driving dropout masks.
	ModelStep uint64
	Groups    map[string]opt.GroupState
}

const checkpointVersion = 1

// SaveCheckpoint writes the engine's full training state to w. Under async
// optimizer scheduling every in-flight deferred update is joined first, so
// the persisted state reflects all staged gradients.
func (e *Engine) SaveCheckpoint(w io.Writer) error {
	if err := e.FlushAsync(); err != nil {
		return fmt.Errorf("engine: flush deferred updates before checkpoint: %w", err)
	}
	ck := checkpoint{
		Version:   checkpointVersion,
		Step:      e.optimizer.Step(),
		ModelStep: e.model.Step(),
		Groups:    make(map[string]opt.GroupState),
	}
	for _, g := range e.model.ParamGroups() {
		st, err := e.optimizer.ExportGroup(g.Name, g.NumParams())
		if err != nil {
			return fmt.Errorf("engine: checkpoint %s: %w", g.Name, err)
		}
		ck.Groups[g.Name] = st
	}
	if err := gob.NewEncoder(w).Encode(ck); err != nil {
		return fmt.Errorf("engine: encode checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint restores training state saved by SaveCheckpoint into this
// engine, which must have the same model configuration.
func (e *Engine) LoadCheckpoint(r io.Reader) error {
	// Join in-flight deferred updates before importing: a background apply
	// landing after the import would resurrect pre-restore state.
	if err := e.FlushAsync(); err != nil {
		return fmt.Errorf("engine: flush deferred updates before restore: %w", err)
	}
	var ck checkpoint
	if err := gob.NewDecoder(r).Decode(&ck); err != nil {
		return fmt.Errorf("engine: decode checkpoint: %w", err)
	}
	if ck.Version != checkpointVersion {
		return fmt.Errorf("engine: checkpoint version %d, want %d", ck.Version, checkpointVersion)
	}
	groups := e.model.ParamGroups()
	if len(ck.Groups) != len(groups) {
		return fmt.Errorf("engine: checkpoint has %d groups, model has %d", len(ck.Groups), len(groups))
	}
	for _, g := range groups {
		st, ok := ck.Groups[g.Name]
		if !ok {
			return fmt.Errorf("engine: checkpoint missing group %s", g.Name)
		}
		if err := e.optimizer.ImportGroup(g, st); err != nil {
			return fmt.Errorf("engine: restore %s: %w", g.Name, err)
		}
	}
	if err := e.optimizer.SetStep(ck.Step); err != nil {
		return err
	}
	e.model.SetStep(ck.ModelStep)
	e.prevGrads = nil
	return nil
}
