package engine

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"ratel/internal/model"
	"ratel/internal/plan"
	"ratel/internal/units"
)

// HWRates describes the hardware the plan should optimize for. At mini
// scale the engine's wall-clock is CPU-bound, so the rates parameterize the
// *decision*, exactly as the paper's profiling stage feeds Algorithm 1.
type HWRates struct {
	THPG         units.FLOPsPerSecond
	BWG          units.BytesPerSecond
	BWS2M, BWM2S units.BytesPerSecond
	MemAvail     units.Bytes
}

// ProfileAndPlan is the engine's hardware-aware profiling stage (§IV-B)
// followed by holistic traffic-aware planning (§IV-D): it runs one forward
// pass to measure each block's real activation footprint, estimates each
// block's FLOPs from its geometry, runs Algorithm 1, and returns both the
// plan and the block placement to configure the engine with. Swapped blocks
// land in the host tier until rates.MemAvail is exhausted, then spill to the
// SSD tier (Eq. 3's α split).
func (e *Engine) ProfileAndPlan(tokens [][]int, rates HWRates) (plan.Plan, map[int]Tier, error) {
	m := e.model
	x, err := m.Embed(tokens)
	if err != nil {
		return plan.Plan{}, nil, err
	}
	cfg := e.cfg.Model
	t := int64(cfg.Batch) * int64(cfg.Seq)
	h := int64(cfg.Hidden)
	blockFLOPs := units.FLOPs(24*t*h*h + 4*t*int64(cfg.Seq)*h)

	var layers []model.LayerProfile
	var flopf units.FLOPs
	hcur := x
	for i, b := range m.Blocks {
		boundaryBytes := units.Bytes(2 * int64(hcur.Numel()))
		y, c, err := b.Forward(hcur)
		if err != nil {
			return plan.Plan{}, nil, err
		}
		layers = append(layers,
			model.LayerProfile{
				Name:     fmt.Sprintf("block%d/input", i),
				Block:    i,
				ActBytes: boundaryBytes,
				Boundary: true,
			},
			model.LayerProfile{
				Name:     fmt.Sprintf("block%d/cache", i),
				Block:    i,
				ActBytes: units.Bytes(c.ActivationBytes()) - boundaryBytes,
				FwdFLOPs: blockFLOPs,
			},
		)
		flopf += blockFLOPs
		hcur = y
	}

	profile := plan.Profile{
		FLOPf:     flopf,
		THPG:      rates.THPG,
		BWG:       rates.BWG,
		BWS2M:     rates.BWS2M,
		BWM2S:     rates.BWM2S,
		Params:    int64(m.NumParams()),
		MemAvailM: rates.MemAvail,
		Layers:    layers,
	}
	pl, err := plan.Optimize(profile)
	if err != nil {
		return plan.Plan{}, nil, err
	}
	var swapped []int
	for name := range pl.SwapSet() {
		if rest, ok := strings.CutSuffix(name, "/cache"); ok {
			if idx, err := strconv.Atoi(strings.TrimPrefix(rest, "block")); err == nil {
				swapped = append(swapped, idx)
			}
		}
	}
	sort.Ints(swapped)
	swap := make(map[int]Tier, len(swapped))
	hostLeft := rates.MemAvail
	for _, idx := range swapped {
		size := layers[2*idx+1].ActBytes + layers[2*idx].ActBytes
		if size <= hostLeft {
			swap[idx] = SwapHost
			hostLeft -= size
		} else {
			swap[idx] = SwapSSD
		}
	}
	return pl, swap, nil
}

// SetSwap installs a block placement chosen by ProfileAndPlan.
func (e *Engine) SetSwap(swap map[int]Tier) { e.cfg.Swap = swap }
