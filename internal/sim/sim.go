// Package sim is a small deterministic discrete-event simulator used to
// execute per-iteration schedules over the server's serial resources (GPU
// compute engine, each PCIe direction, the SSD array, the CPU optimizer).
//
// The model is non-preemptive list scheduling: each task occupies exactly
// one resource for a fixed duration and may depend on other tasks; a
// resource executes one task at a time, picking among ready tasks in task-ID
// order. This matches how the training frameworks under study issue work:
// command queues per engine, with explicit event dependencies between them.
package sim

import (
	"container/heap"
	"fmt"
	"sort"

	"ratel/internal/units"
)

// ResourceID names a serial execution resource.
type ResourceID string

// Resources of the commodity server used by the iteration schedules.
const (
	GPUCompute ResourceID = "gpu"      // CUDA-kernel engine
	PCIeG2M    ResourceID = "pcie-g2m" // GPU -> main memory DMA direction
	PCIeM2G    ResourceID = "pcie-m2g" // main memory -> GPU DMA direction
	SSDBus     ResourceID = "ssd"      // simplex host <-> SSD-array path
	CPUAdam    ResourceID = "cpu-adam" // out-of-core optimizer threads

	// SSDRead / SSDWrite are the duplex SSD-array model: independent read
	// and write paths, matching the NVMe transfer scheduler's per-device
	// duplex lanes (consumer drives sustain reads and writes concurrently
	// at asymmetric rates). Schedules use either SSDBus or the duplex pair,
	// never both.
	SSDRead  ResourceID = "ssd-read"  // host <- SSD-array read path
	SSDWrite ResourceID = "ssd-write" // host -> SSD-array write path
)

// Task is one unit of work on one resource.
type Task struct {
	// ID must be unique and non-negative; among simultaneously-ready tasks
	// a resource runs the lowest ID first, so IDs encode issue order.
	ID       int
	Label    string
	Resource ResourceID
	Duration units.Seconds
	// Deps lists task IDs that must finish before this task may start.
	Deps []int
}

// Span records when a task executed.
type Span struct {
	Task       Task
	Start, End units.Seconds
}

// Result is the outcome of executing a schedule.
type Result struct {
	// Makespan is when the last task finished.
	Makespan units.Seconds
	// Spans maps task ID to its execution interval.
	Spans map[int]Span
	// Busy is the total occupied time per resource.
	Busy map[ResourceID]units.Seconds
}

// Utilization is the fraction of the makespan a resource was busy.
func (r Result) Utilization(res ResourceID) float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(r.Busy[res]) / float64(r.Makespan)
}

// WindowBusy reports how long a resource was busy within [from, to),
// counting partial overlap of spans. It supports the paper's per-stage PCIe
// utilization breakdowns (Fig. 1).
func (r Result) WindowBusy(res ResourceID, from, to units.Seconds) units.Seconds {
	// Accumulate in sorted task-ID order: float addition is not
	// associative, so map order would make the sum run-dependent.
	ids := make([]int, 0, len(r.Spans))
	for id := range r.Spans {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var busy units.Seconds
	for _, id := range ids {
		s := r.Spans[id]
		if s.Task.Resource != res {
			continue
		}
		lo, hi := s.Start, s.End
		if lo < from {
			lo = from
		}
		if hi > to {
			hi = to
		}
		if hi > lo {
			busy += hi - lo
		}
	}
	return busy
}

// intHeap is a min-heap of task IDs.
type intHeap []int

func (h intHeap) Len() int            { return len(h) }
func (h intHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h intHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *intHeap) Push(x interface{}) { *h = append(*h, x.(int)) }
func (h *intHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// completion is a scheduled task-finish event.
type completion struct {
	at units.Seconds
	id int
}

type completionHeap []completion

func (h completionHeap) Len() int { return len(h) }
func (h completionHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].id < h[j].id
}
func (h completionHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x interface{}) { *h = append(*h, x.(completion)) }
func (h *completionHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Run executes the schedule and returns the resulting timeline. It reports
// an error for duplicate or unknown task IDs, negative durations, and
// dependency cycles.
func Run(tasks []Task) (Result, error) {
	byID := make(map[int]Task, len(tasks))
	for _, t := range tasks {
		if t.ID < 0 {
			return Result{}, fmt.Errorf("sim: task %q has negative ID %d", t.Label, t.ID)
		}
		if _, dup := byID[t.ID]; dup {
			return Result{}, fmt.Errorf("sim: duplicate task ID %d", t.ID)
		}
		if t.Duration < 0 {
			return Result{}, fmt.Errorf("sim: task %d (%s) has negative duration", t.ID, t.Label)
		}
		if t.Resource == "" {
			return Result{}, fmt.Errorf("sim: task %d (%s) has no resource", t.ID, t.Label)
		}
		byID[t.ID] = t
	}

	waiting := make(map[int]int, len(tasks)) // remaining dep count
	dependents := make(map[int][]int)
	for _, t := range tasks {
		for _, d := range t.Deps {
			if _, ok := byID[d]; !ok {
				return Result{}, fmt.Errorf("sim: task %d depends on unknown task %d", t.ID, d)
			}
			waiting[t.ID]++
			dependents[d] = append(dependents[d], t.ID)
		}
	}

	ready := make(map[ResourceID]*intHeap)
	pushReady := func(id int) {
		res := byID[id].Resource
		h, ok := ready[res]
		if !ok {
			h = &intHeap{}
			ready[res] = h
		}
		heap.Push(h, id)
	}
	// Seed in sorted order for determinism of heap contents.
	ids := make([]int, 0, len(tasks))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if waiting[id] == 0 {
			pushReady(id)
		}
	}

	res := Result{
		Spans: make(map[int]Span, len(tasks)),
		Busy:  make(map[ResourceID]units.Seconds),
	}
	busyUntil := make(map[ResourceID]units.Seconds)
	running := make(map[ResourceID]bool)
	var events completionHeap
	var now units.Seconds

	// Dispatch scans resources in a fixed sorted order so the completion
	// heap's contents never depend on map iteration order.
	resOrder := make([]ResourceID, 0, len(ready))
	seenRes := make(map[ResourceID]bool, len(ready))
	for _, t := range tasks {
		if !seenRes[t.Resource] {
			seenRes[t.Resource] = true
			resOrder = append(resOrder, t.Resource)
		}
	}
	sort.Slice(resOrder, func(i, j int) bool { return resOrder[i] < resOrder[j] })

	dispatch := func() {
		for _, resID := range resOrder {
			h, ok := ready[resID]
			if !ok || running[resID] || h.Len() == 0 {
				continue
			}
			id := heap.Pop(h).(int)
			t := byID[id]
			start := now
			if bu := busyUntil[resID]; bu > start {
				start = bu
			}
			end := start + t.Duration
			res.Spans[id] = Span{Task: t, Start: start, End: end}
			res.Busy[resID] += t.Duration
			busyUntil[resID] = end
			running[resID] = true
			heap.Push(&events, completion{at: end, id: id})
		}
	}

	done := 0
	dispatch()
	for events.Len() > 0 {
		ev := heap.Pop(&events).(completion)
		now = ev.at
		done++
		running[byID[ev.id].Resource] = false
		for _, dep := range dependents[ev.id] {
			waiting[dep]--
			if waiting[dep] == 0 {
				pushReady(dep)
			}
		}
		dispatch()
	}
	if done != len(tasks) {
		return Result{}, fmt.Errorf("sim: dependency cycle, %d of %d tasks never ran", len(tasks)-done, len(tasks))
	}
	res.Makespan = now
	return res, nil
}
