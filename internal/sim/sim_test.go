package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ratel/internal/units"
)

func approx(a, b units.Seconds) bool { return math.Abs(float64(a-b)) < 1e-9 }

func TestSerialTasksOnOneResource(t *testing.T) {
	r, err := Run([]Task{
		{ID: 0, Resource: GPUCompute, Duration: 2},
		{ID: 1, Resource: GPUCompute, Duration: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(r.Makespan, 5) {
		t.Errorf("makespan = %v, want 5", r.Makespan)
	}
	if s := r.Spans[1]; !approx(s.Start, 2) {
		t.Errorf("task 1 start = %v, want 2 (serialized)", s.Start)
	}
}

func TestIndependentResourcesOverlap(t *testing.T) {
	r, err := Run([]Task{
		{ID: 0, Resource: GPUCompute, Duration: 4},
		{ID: 1, Resource: SSDBus, Duration: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(r.Makespan, 4) {
		t.Errorf("makespan = %v, want 4 (overlapped)", r.Makespan)
	}
	if got := r.Utilization(SSDBus); math.Abs(got-0.75) > 1e-9 {
		t.Errorf("SSD utilization = %v, want 0.75", got)
	}
}

func TestDependenciesSerializeAcrossResources(t *testing.T) {
	// Classic offload chain: compute -> G2M transfer -> SSD write.
	r, err := Run([]Task{
		{ID: 0, Resource: GPUCompute, Duration: 1},
		{ID: 1, Resource: PCIeG2M, Duration: 2, Deps: []int{0}},
		{ID: 2, Resource: SSDBus, Duration: 3, Deps: []int{1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(r.Makespan, 6) {
		t.Errorf("makespan = %v, want 6", r.Makespan)
	}
	if s := r.Spans[2]; !approx(s.Start, 3) {
		t.Errorf("SSD write start = %v, want 3", s.Start)
	}
}

func TestPipelineOverlap(t *testing.T) {
	// Two-stage pipeline over 3 items: with 1s stages the makespan is
	// 1 (fill) + 3 = 4, not 6.
	var tasks []Task
	for i := 0; i < 3; i++ {
		produce := Task{ID: 2 * i, Resource: GPUCompute, Duration: 1}
		if i > 0 {
			produce.Deps = []int{2 * (i - 1)}
		}
		tasks = append(tasks, produce,
			Task{ID: 2*i + 1, Resource: PCIeG2M, Duration: 1, Deps: []int{2 * i}})
	}
	r, err := Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(r.Makespan, 4) {
		t.Errorf("pipeline makespan = %v, want 4", r.Makespan)
	}
}

func TestWindowBusy(t *testing.T) {
	r, err := Run([]Task{
		{ID: 0, Resource: GPUCompute, Duration: 2},
		{ID: 1, Resource: GPUCompute, Duration: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.WindowBusy(GPUCompute, 1, 3); !approx(got, 2) {
		t.Errorf("WindowBusy(1,3) = %v, want 2", got)
	}
	if got := r.WindowBusy(GPUCompute, 3.5, 10); !approx(got, 0.5) {
		t.Errorf("WindowBusy(3.5,10) = %v, want 0.5", got)
	}
	if got := r.WindowBusy(SSDBus, 0, 4); got != 0 {
		t.Errorf("WindowBusy(ssd) = %v, want 0", got)
	}
}

func TestErrorCases(t *testing.T) {
	cases := []struct {
		name  string
		tasks []Task
	}{
		{"duplicate-id", []Task{{ID: 1, Resource: GPUCompute}, {ID: 1, Resource: SSDBus}}},
		{"negative-id", []Task{{ID: -1, Resource: GPUCompute}}},
		{"negative-duration", []Task{{ID: 0, Resource: GPUCompute, Duration: -1}}},
		{"no-resource", []Task{{ID: 0}}},
		{"unknown-dep", []Task{{ID: 0, Resource: GPUCompute, Deps: []int{7}}}},
		{"cycle", []Task{
			{ID: 0, Resource: GPUCompute, Deps: []int{1}},
			{ID: 1, Resource: GPUCompute, Deps: []int{0}},
		}},
	}
	for _, c := range cases {
		if _, err := Run(c.tasks); err == nil {
			t.Errorf("%s: Run succeeded, want error", c.name)
		}
	}
}

func TestEmptySchedule(t *testing.T) {
	r, err := Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan != 0 {
		t.Errorf("empty makespan = %v", r.Makespan)
	}
	if r.Utilization(GPUCompute) != 0 {
		t.Error("utilization of empty schedule should be 0")
	}
}

// TestMakespanBounds checks, on random DAG schedules, the two fundamental
// list-scheduling invariants: the makespan is at least the busiest
// resource's total work and at least the longest dependency chain, and at
// most the sum of all durations.
func TestMakespanBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		resources := []ResourceID{GPUCompute, PCIeG2M, PCIeM2G, SSDBus, CPUAdam}
		tasks := make([]Task, n)
		var total units.Seconds
		perRes := make(map[ResourceID]units.Seconds)
		chain := make([]units.Seconds, n) // longest path ending at i
		for i := range tasks {
			d := units.Seconds(rng.Float64() * 3)
			res := resources[rng.Intn(len(resources))]
			tasks[i] = Task{ID: i, Resource: res, Duration: d}
			var longest units.Seconds
			for j := 0; j < i; j++ {
				if rng.Float64() < 0.2 {
					tasks[i].Deps = append(tasks[i].Deps, j)
					if chain[j] > longest {
						longest = chain[j]
					}
				}
			}
			chain[i] = longest + d
			total += d
			perRes[res] += d
		}
		r, err := Run(tasks)
		if err != nil {
			return false
		}
		lower := units.Seconds(0)
		for _, b := range perRes {
			if b > lower {
				lower = b
			}
		}
		for _, c := range chain {
			if c > lower {
				lower = c
			}
		}
		const eps = 1e-9
		return float64(r.Makespan) >= float64(lower)-eps && float64(r.Makespan) <= float64(total)+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestDeterminism ensures identical inputs produce identical timelines.
func TestDeterminism(t *testing.T) {
	tasks := []Task{
		{ID: 0, Resource: GPUCompute, Duration: 1},
		{ID: 1, Resource: PCIeG2M, Duration: 1, Deps: []int{0}},
		{ID: 2, Resource: PCIeG2M, Duration: 2, Deps: []int{0}},
		{ID: 3, Resource: SSDBus, Duration: 1, Deps: []int{1, 2}},
	}
	a, err := Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	for id := range a.Spans {
		sa, sb := a.Spans[id], b.Spans[id]
		if sa.Start != sb.Start || sa.End != sb.End {
			t.Fatalf("nondeterministic span for task %d", id)
		}
	}
}

// TestReadyOrderIsTaskIDOrder verifies the documented tie-break: among ready
// tasks a resource runs the lowest ID first.
func TestReadyOrderIsTaskIDOrder(t *testing.T) {
	r, err := Run([]Task{
		{ID: 5, Resource: GPUCompute, Duration: 1},
		{ID: 2, Resource: GPUCompute, Duration: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Spans[2].Start != 0 {
		t.Errorf("task 2 should run first, started at %v", r.Spans[2].Start)
	}
	if !approx(r.Spans[5].Start, 1) {
		t.Errorf("task 5 should run second, started at %v", r.Spans[5].Start)
	}
}

// TestCriticalPath: the chain through a fork-join schedule follows the slow
// branch.
func TestCriticalPath(t *testing.T) {
	res, err := Run([]Task{
		{ID: 0, Resource: GPUCompute, Duration: 1},
		{ID: 1, Resource: PCIeG2M, Duration: 5, Deps: []int{0}}, // slow branch
		{ID: 2, Resource: SSDBus, Duration: 1, Deps: []int{0}},  // fast branch
		{ID: 3, Resource: CPUAdam, Duration: 2, Deps: []int{1, 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := CriticalPath(res)
	if len(path) != 3 {
		t.Fatalf("path length = %d, want 3: %+v", len(path), labels(path))
	}
	want := []int{0, 1, 3}
	for i, id := range want {
		if path[i].Task.ID != id {
			t.Fatalf("path = %v, want task ids %v", labels(path), want)
		}
	}
	shares := ResourceShares(path)
	if shares[PCIeG2M] < shares[GPUCompute] {
		t.Error("the slow PCIe branch should dominate the path")
	}
	var sum float64
	for _, v := range shares {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("shares sum to %v", sum)
	}
}

// TestCriticalPathThroughQueueing: a task delayed by resource contention
// (not a dependency) chains through the queue predecessor.
func TestCriticalPathThroughQueueing(t *testing.T) {
	res, err := Run([]Task{
		{ID: 0, Resource: GPUCompute, Duration: 3},
		{ID: 1, Resource: GPUCompute, Duration: 4}, // queued behind 0
	})
	if err != nil {
		t.Fatal(err)
	}
	path := CriticalPath(res)
	if len(path) != 2 || path[0].Task.ID != 0 || path[1].Task.ID != 1 {
		t.Fatalf("queueing path = %v", labels(path))
	}
}

func TestCriticalPathEmpty(t *testing.T) {
	if got := CriticalPath(Result{}); got != nil {
		t.Errorf("empty path = %v", got)
	}
	if got := ResourceShares(nil); len(got) != 0 {
		t.Errorf("empty shares = %v", got)
	}
}

func labels(path []Span) []int {
	var ids []int
	for _, s := range path {
		ids = append(ids, s.Task.ID)
	}
	return ids
}
