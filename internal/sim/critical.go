package sim

import "sort"

// CriticalPath returns the chain of spans that determines the makespan:
// starting from the span that finishes last, each step walks to the
// blocking predecessor — the dependency or same-resource span whose
// completion released this one. The returned chain is in execution order.
//
// Use it to answer "which resource bounds this iteration?": the resources
// along the path are the ones worth speeding up (the simulator's analogue
// of the paper's per-stage bottleneck analysis).
func CriticalPath(res Result) []Span {
	if len(res.Spans) == 0 {
		return nil
	}
	// Walk spans in sorted task-ID order so byResource slices and the
	// chosen terminal span never depend on map iteration order.
	ids := make([]int, 0, len(res.Spans))
	for id := range res.Spans {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	// Index spans by resource for queue-predecessor lookup.
	byResource := make(map[ResourceID][]Span)
	var last Span
	found := false
	for _, id := range ids {
		s := res.Spans[id]
		byResource[s.Task.Resource] = append(byResource[s.Task.Resource], s)
		if !found || s.End > last.End || (s.End == last.End && s.Task.ID > last.Task.ID) {
			last = s
			found = true
		}
	}
	for _, spans := range byResource {
		sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	}

	const eps = 1e-12
	var path []Span
	visited := make(map[int]bool)
	cur := last
	for {
		path = append(path, cur)
		visited[cur.Task.ID] = true
		if float64(cur.Start) <= eps {
			break
		}
		// Prefer the dependency that released this task; otherwise the
		// same-resource span whose end this task queued behind.
		var pred *Span
		for _, depID := range cur.Task.Deps {
			d, ok := res.Spans[depID]
			if !ok || visited[d.Task.ID] {
				continue
			}
			if float64(cur.Start-d.End) >= -eps && (pred == nil || d.End > pred.End) {
				dd := d
				pred = &dd
			}
		}
		if pred == nil || float64(cur.Start-pred.End) > eps {
			for _, s := range byResource[cur.Task.Resource] {
				if s.Task.ID == cur.Task.ID || visited[s.Task.ID] {
					continue
				}
				if float64(cur.Start-s.End) <= eps && float64(cur.Start-s.End) >= -eps {
					ss := s
					pred = &ss
					break
				}
			}
		}
		if pred == nil {
			break
		}
		cur = *pred
	}
	// Reverse into execution order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// ResourceShares reports how much of the critical path each resource
// occupies, as fractions of the path's total span time.
func ResourceShares(path []Span) map[ResourceID]float64 {
	shares := make(map[ResourceID]float64)
	var total float64
	for _, s := range path {
		d := float64(s.End - s.Start)
		shares[s.Task.Resource] += d
		total += d
	}
	if total > 0 {
		for r := range shares {
			shares[r] /= total
		}
	}
	return shares
}
