package agoffload

import (
	"math"
	"testing"

	"ratel/internal/sim"
	"ratel/internal/units"
)

// backwardWithGrads builds a synthetic backward stage: n GPU compute tasks
// in a chain, each followed by a gradient G2M transfer. Returns the tasks,
// the arrival IDs, and the next free task ID.
func backwardWithGrads(n int, compute, xfer units.Seconds) ([]sim.Task, []int, int) {
	var tasks []sim.Task
	arrivals := make([]int, n)
	id := 0
	prev := -1
	for i := 0; i < n; i++ {
		c := sim.Task{ID: id, Label: "bwd", Resource: sim.GPUCompute, Duration: compute}
		if prev >= 0 {
			c.Deps = []int{prev}
		}
		id++
		g := sim.Task{ID: id, Label: "grad", Resource: sim.PCIeG2M, Duration: xfer, Deps: []int{c.ID}}
		id++
		tasks = append(tasks, c, g)
		arrivals[i] = g.ID
		prev = c.ID
	}
	return tasks, arrivals, id
}

func rates() Rates {
	return Rates{BWS2M: units.GBps(32), BWM2S: units.GBps(32), AdamParamsPerSec: 1.1e9}
}

func runMode(t *testing.T, mode Mode) units.Seconds {
	t.Helper()
	tasks, arrivals, next := backwardWithGrads(8, 2, 0.3)
	labels := make([]string, 8)
	params := make([]int64, 8)
	for i := range labels {
		labels[i] = "blk"
		params[i] = 1.6e9 // 8 chunks of a ~13B model
	}
	chunks, err := ChunksForBlocks(labels, params, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	opt, _, finals, err := Schedule(mode, chunks, next, rates())
	if err != nil {
		t.Fatal(err)
	}
	if len(finals) != 8 {
		t.Fatalf("finals = %d, want 8", len(finals))
	}
	res, err := sim.Run(append(tasks, opt...))
	if err != nil {
		t.Fatal(err)
	}
	return res.Makespan
}

// TestModeOrdering reproduces the Fig. 7 effect: optimized < naive <
// serialized iteration time.
func TestModeOrdering(t *testing.T) {
	ser := runMode(t, Serialized)
	nai := runMode(t, Naive)
	opt := runMode(t, Optimized)
	if !(opt < nai && nai < ser) {
		t.Errorf("want optimized < naive < serialized, got %.2f, %.2f, %.2f",
			opt, nai, ser)
	}
}

// TestSerializedWaitsForBackward checks that in Serialized mode no optimizer
// task starts before the last gradient arrives.
func TestSerializedWaitsForBackward(t *testing.T) {
	tasks, arrivals, next := backwardWithGrads(4, 1, 0.2)
	chunks, err := ChunksForBlocks([]string{"a", "b", "c", "d"}, []int64{1e9, 1e9, 1e9, 1e9}, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	opt, _, _, err := Schedule(Serialized, chunks, next, rates())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(append(tasks, opt...))
	if err != nil {
		t.Fatal(err)
	}
	lastArrival := units.Seconds(0)
	for _, id := range arrivals {
		if e := res.Spans[id].End; e > lastArrival {
			lastArrival = e
		}
	}
	for _, o := range opt {
		if s := res.Spans[o.ID].Start; s < lastArrival {
			t.Errorf("serialized optimizer task %s started at %v before backward ended at %v",
				o.Label, s, lastArrival)
		}
	}
}

// TestNaiveSerializesHandlerSteps checks the Fig. 3a chain: chunk i+1's
// state read never starts before chunk i's write-back finished.
func TestNaiveSerializesHandlerSteps(t *testing.T) {
	tasks, arrivals, next := backwardWithGrads(4, 0.1, 0.05) // gradients arrive fast
	chunks, _ := ChunksForBlocks([]string{"a", "b", "c", "d"}, []int64{2e9, 2e9, 2e9, 2e9}, arrivals)
	opt, _, _, err := Schedule(Naive, chunks, next, rates())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(append(tasks, opt...))
	if err != nil {
		t.Fatal(err)
	}
	var prevWriteEnd units.Seconds
	for i := 0; i < len(opt); i += 3 {
		read, write := opt[i], opt[i+2]
		if s := res.Spans[read.ID].Start; i > 0 && s+1e-9 < prevWriteEnd {
			t.Errorf("naive: read %d started at %v before previous write ended at %v", i/3, s, prevWriteEnd)
		}
		prevWriteEnd = res.Spans[write.ID].End
	}
}

// TestOptimizedOverlapsCPUAndSSD checks the Fig. 3b property: total CPU busy
// time and SSD busy time overlap, i.e. the optimizer tail beyond backward is
// close to max(cpu, ssd) rather than their sum.
func TestOptimizedOverlapsCPUAndSSD(t *testing.T) {
	tasks, arrivals, next := backwardWithGrads(8, 0.1, 0.05)
	labels := make([]string, 8)
	params := make([]int64, 8)
	for i := range labels {
		labels[i], params[i] = "blk", 2e9
	}
	chunks, _ := ChunksForBlocks(labels, params, arrivals)
	opt, _, _, err := Schedule(Optimized, chunks, next, rates())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(append(tasks, opt...))
	if err != nil {
		t.Fatal(err)
	}
	cpu := res.Busy[sim.CPUAdam]
	ssd := res.Busy[sim.SSDBus]
	longest := cpu
	if ssd > longest {
		longest = ssd
	}
	// Pipelined: makespan is within 25% of the busiest resource, far from
	// the serial sum.
	if float64(res.Makespan) > 1.25*float64(longest) {
		t.Errorf("optimized makespan %.2f s not pipelined (cpu %.2f, ssd %.2f)",
			res.Makespan, cpu, ssd)
	}
}

// TestNoStreamingMode covers ZeRO-Offload-style handlers: states resident in
// main memory, handler is CPU-only.
func TestNoStreamingMode(t *testing.T) {
	tasks, arrivals, next := backwardWithGrads(3, 0.5, 0.1)
	chunks, _ := ChunksForBlocks([]string{"a", "b", "c"}, []int64{1e9, 1e9, 1e9}, arrivals)
	opt, _, finals, err := Schedule(Optimized, chunks, next, Rates{AdamParamsPerSec: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range opt {
		if task.Resource == sim.SSDBus {
			t.Fatal("no-streaming mode emitted SSD tasks")
		}
	}
	if len(finals) != 3 {
		t.Errorf("finals = %d, want 3 (the CPU updates)", len(finals))
	}
	res, err := sim.Run(append(tasks, opt...))
	if err != nil {
		t.Fatal(err)
	}
	// CPU total = 3 s; backward = 1.8 s; overlap means makespan < 1.8+3.
	if float64(res.Makespan) >= 4.8-1e-9 {
		t.Errorf("makespan %.2f s shows no overlap", res.Makespan)
	}
}

func TestScheduleErrors(t *testing.T) {
	if _, _, _, err := Schedule(Optimized, []Chunk{{Label: "x", Params: 0}}, 0, rates()); err == nil {
		t.Error("zero-param chunk accepted")
	}
	if _, _, _, err := Schedule(Optimized, nil, 0, Rates{}); err == nil {
		t.Error("zero Adam rate accepted")
	}
	if _, err := ChunksForBlocks([]string{"a"}, nil, nil); err == nil {
		t.Error("mismatched chunk inputs accepted")
	}
}

// TestAdamTimeAccounting: total CPU busy equals params/rate regardless of
// mode.
func TestAdamTimeAccounting(t *testing.T) {
	for _, mode := range []Mode{Serialized, Naive, Optimized} {
		tasks, arrivals, next := backwardWithGrads(5, 1, 0.1)
		labels := make([]string, 5)
		params := make([]int64, 5)
		var total float64
		for i := range labels {
			labels[i], params[i] = "blk", int64(1e9*(1+float64(i)))
			total += float64(params[i])
		}
		chunks, _ := ChunksForBlocks(labels, params, arrivals)
		opt, _, _, err := Schedule(mode, chunks, next, rates())
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(append(tasks, opt...))
		if err != nil {
			t.Fatal(err)
		}
		want := total / 1.1e9
		if got := float64(res.Busy[sim.CPUAdam]); math.Abs(got-want) > 1e-9 {
			t.Errorf("%v: CPU busy = %.3f s, want %.3f s", mode, got, want)
		}
	}
}

func TestModeString(t *testing.T) {
	for _, m := range []Mode{Serialized, Naive, Optimized} {
		if m.String() == "" {
			t.Error("empty mode string")
		}
	}
}
