package agoffload

import (
	"testing"

	"ratel/internal/sim"
	"ratel/internal/units"
)

// TestMeasureAdamRatePositive checks the calibration returns a plausible
// positive throughput and rejects empty samples.
func TestMeasureAdamRatePositive(t *testing.T) {
	rate, err := MeasureAdamRate(200_000)
	if err != nil {
		t.Fatal(err)
	}
	// Even one slow core updates well over a million params/s; anything
	// below that (or absurdly high) means the measurement is broken.
	if rate < 1e5 || rate > 1e13 {
		t.Fatalf("measured Adam rate %.3g params/s is implausible", rate)
	}
	if _, err := MeasureAdamRate(0); err == nil {
		t.Fatal("MeasureAdamRate(0) succeeded, want error")
	}
}

// TestMeasuredRatesDrivesSchedule checks the calibrated Rates plug straight
// into Schedule and produce positive CPU task durations.
func TestMeasuredRatesDrivesSchedule(t *testing.T) {
	r, err := MeasuredRates(units.GBps(4), units.GBps(2), 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if r.AdamParamsPerSec <= 0 {
		t.Fatalf("calibrated AdamParamsPerSec = %v, want > 0", r.AdamParamsPerSec)
	}
	if r.BWS2M != units.GBps(4) || r.BWM2S != units.GBps(2) {
		t.Fatalf("bandwidths not carried through: %+v", r)
	}
	chunks, err := ChunksForBlocks([]string{"b0", "b1"}, []int64{1 << 20, 1 << 20}, []int{-1, -1})
	if err != nil {
		t.Fatal(err)
	}
	tasks, _, finals, err := Schedule(Optimized, chunks, 0, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(finals) != 2 {
		t.Fatalf("got %d finals, want 2", len(finals))
	}
	for _, task := range tasks {
		if task.Resource == sim.CPUAdam && task.Duration <= 0 {
			t.Fatalf("CPU task %q has non-positive duration %v", task.Label, task.Duration)
		}
	}
}
