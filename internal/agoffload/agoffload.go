// Package agoffload implements active gradient offloading (§IV-C): the
// out-of-core CPU optimizer consumes gradients as they arrive in main
// memory during backward propagation. It builds the optimizer part of an
// iteration schedule in three modes:
//
//   - Serialized: the optimizer runs as a separate stage after backward
//     propagation finishes (what ZeRO-Infinity does; "Ratel+ZeRO" in
//     Fig. 7).
//   - Naive: each gradient's handler — SSD→Main state read, CPU update,
//     Main→SSD write-back — runs as soon as the gradient arrives, but the
//     three steps are strictly serialized per tensor (Fig. 3a).
//   - Optimized: the handler steps are software-pipelined so the SSD I/O of
//     one tensor overlaps the CPU update of another, and everything
//     overlaps GPU backward propagation (Fig. 3b).
//
// The same schedule semantics drive both the discrete-event simulator (this
// package) and the real engine's goroutine pipeline (package engine).
package agoffload

import (
	"fmt"
	"sort"

	"ratel/internal/sim"
	"ratel/internal/units"
)

// Mode selects the gradient-offloading schedule.
type Mode int

// Scheduling modes, in increasing order of overlap. Readiness and AsyncTopK
// are the optimizer-scheduling counterparts of the engine's OptSchedule
// knob: Readiness issues each chunk's state read at gradient arrival,
// depth-bounded by the prefetch window (reads no longer wait their turn in
// the update chain); AsyncTopK keeps only the top-k most important chunks
// in-step and defers the tail to a background applier (the deferred chunks
// are returned, not scheduled).
const (
	Serialized Mode = iota
	Naive
	Optimized
	Readiness
	AsyncTopK
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Serialized:
		return "serialized"
	case Naive:
		return "naive"
	case Optimized:
		return "optimized"
	case Readiness:
		return "readiness"
	case AsyncTopK:
		return "async-topk"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Chunk is the optimizer work for one gradient tensor (typically one
// transformer block): its parameter count determines the model-state bytes
// its handler streams (12 bytes/param read: P32+OS32; 14 bytes/param
// written: P32+OS32+P16) and the CPU update cost.
type Chunk struct {
	Label string
	// Params is the chunk's parameter count.
	Params int64
	// ArrivalDep is the schedule task ID whose completion delivers the
	// chunk's gradient to main memory (the backward G2M transfer), or -1 if
	// the gradient is already resident.
	ArrivalDep int
}

// StateReadBytes is the model-state bytes the handler reads from SSD.
func (c Chunk) StateReadBytes() units.Bytes { return units.Bytes(12 * c.Params) }

// StateWriteBytes is the updated-state bytes the handler writes back.
func (c Chunk) StateWriteBytes() units.Bytes { return units.Bytes(14 * c.Params) }

// Rates carries the resource speeds the handlers run at.
type Rates struct {
	// BWS2M and BWM2S are the aggregate SSD read/write bandwidths. Zero
	// disables state streaming (states held in main memory, e.g.
	// ZeRO-Offload) — handlers then consist only of the CPU update.
	BWS2M, BWM2S units.BytesPerSecond
	// AdamParamsPerSec is the CPU optimizer throughput.
	AdamParamsPerSec float64
}

// Options tunes the optimizer-scheduling modes. Zero values take the
// engine's defaults.
type Options struct {
	// Depth bounds the readiness prefetch window: at most Depth state reads
	// may run ahead of the update chain (0 = 2, the engine's default
	// pipeline depth).
	Depth int
	// TopK is the number of chunks the AsyncTopK mode keeps in-step,
	// ranked by parameter count — the simulator's stand-in for the
	// engine's gradient-norm importance (0 = half the chunks, rounded up).
	TopK int
	// Duplex routes state reads onto sim.SSDRead and write-backs onto
	// sim.SSDWrite instead of the shared simplex sim.SSDBus — the
	// simulator counterpart of the NVMe transfer scheduler's per-device
	// duplex lanes. BWS2M/BWM2S then throttle each direction
	// independently, so opt-reads never queue behind write-backs.
	Duplex bool
}

// ssdResources returns the (read, write) resources the options select.
func (o Options) ssdResources() (sim.ResourceID, sim.ResourceID) {
	if o.Duplex {
		return sim.SSDRead, sim.SSDWrite
	}
	return sim.SSDBus, sim.SSDBus
}

// Schedule appends the optimizer tasks for all chunks to a schedule.
// Task IDs are assigned from nextID upward; it returns the tasks, the next
// free ID, and the IDs of the final write-backs (the iteration's optimizer
// completion set). Readiness/AsyncTopK run with default Options; use
// ScheduleWith to tune them or to observe the deferred tail.
func Schedule(mode Mode, chunks []Chunk, nextID int, r Rates) (tasks []sim.Task, next int, finals []int, err error) {
	tasks, next, finals, _, err = ScheduleWith(mode, chunks, nextID, r, Options{})
	return tasks, next, finals, err
}

// ScheduleWith is Schedule with scheduling options. In AsyncTopK mode the
// chunks outside the top-k partition are returned in deferred instead of
// being scheduled — their handler traffic rides on a background applier
// outside the iteration's critical path; every other mode returns a nil
// deferred slice.
func ScheduleWith(mode Mode, chunks []Chunk, nextID int, r Rates, o Options) (tasks []sim.Task, next int, finals []int, deferred []Chunk, err error) {
	if r.AdamParamsPerSec <= 0 {
		return nil, 0, nil, nil, fmt.Errorf("agoffload: non-positive Adam rate %v", r.AdamParamsPerSec)
	}
	if mode == AsyncTopK {
		chunks, deferred = partitionTopK(chunks, o.TopK)
	}
	depth := o.Depth
	if depth <= 0 {
		depth = 2
	}
	ssdRead, ssdWrite := o.ssdResources()
	id := nextID
	alloc := func() int { id++; return id - 1 }

	streaming := r.BWS2M > 0 && r.BWM2S > 0

	// In Serialized mode every handler waits for all gradients: the
	// optimizer is a stage of its own.
	var allArrivals []int
	if mode == Serialized {
		for _, c := range chunks {
			if c.ArrivalDep >= 0 {
				allArrivals = append(allArrivals, c.ArrivalDep)
			}
		}
	}

	prevWrite := -1                           // previous chunk's write-back (Naive chain)
	prevCompute := -1                         // previous chunk's CPU update
	computeIDs := make([]int, 0, len(chunks)) // per-chunk updates (Readiness depth bound)
	for i, c := range chunks {
		if c.Params <= 0 {
			return nil, 0, nil, nil, fmt.Errorf("agoffload: chunk %d (%s) has %d params", i, c.Label, c.Params)
		}
		deps := func(extra ...int) []int {
			var d []int
			switch mode {
			case Serialized:
				d = append(d, allArrivals...)
			default:
				if c.ArrivalDep >= 0 {
					d = append(d, c.ArrivalDep)
				}
			}
			for _, e := range extra {
				if e >= 0 {
					d = append(d, e)
				}
			}
			return d
		}

		computeDeps := []int{}
		var readID = -1
		if streaming {
			readDeps := deps()
			switch mode {
			case Naive:
				// Fig. 3a: the next tensor's SSD->Main waits for the
				// previous tensor's Main->SSD.
				readDeps = deps(prevWrite)
			case Readiness:
				// Depth-bounded prefetch: read i reuses the buffer slot
				// freed when update i-depth consumed its state.
				if i >= depth {
					readDeps = deps(computeIDs[i-depth])
				}
			}
			readID = alloc()
			tasks = append(tasks, sim.Task{
				ID:       readID,
				Label:    c.Label + "/opt-read",
				Resource: ssdRead,
				Duration: units.TransferTime(c.StateReadBytes(), r.BWS2M),
				Deps:     readDeps,
			})
			computeDeps = append(computeDeps, readID)
		} else {
			computeDeps = deps()
		}
		// CPU updates run in arrival order: one optimizer thread pool.
		if prevCompute >= 0 {
			computeDeps = append(computeDeps, prevCompute)
		}
		computeID := alloc()
		tasks = append(tasks, sim.Task{
			ID:       computeID,
			Label:    c.Label + "/opt-adam",
			Resource: sim.CPUAdam,
			Duration: units.Seconds(float64(c.Params) / r.AdamParamsPerSec),
			Deps:     computeDeps,
		})
		prevCompute = computeID
		computeIDs = append(computeIDs, computeID)

		if streaming {
			writeID := alloc()
			tasks = append(tasks, sim.Task{
				ID:       writeID,
				Label:    c.Label + "/opt-write",
				Resource: ssdWrite,
				Duration: units.TransferTime(c.StateWriteBytes(), r.BWM2S),
				Deps:     []int{computeID},
			})
			prevWrite = writeID
			finals = append(finals, writeID)
		} else {
			finals = append(finals, computeID)
		}
	}
	return tasks, id, finals, deferred, nil
}

// partitionTopK splits chunks into the top-k by parameter count (kept
// in-step, original order preserved) and the deferred tail. k <= 0 keeps
// half the chunks, rounded up.
func partitionTopK(chunks []Chunk, k int) (kept, deferred []Chunk) {
	if k <= 0 {
		k = (len(chunks) + 1) / 2
	}
	if k >= len(chunks) {
		return chunks, nil
	}
	// Rank by parameter count without disturbing the arrival order of the
	// kept partition: select the k-th largest as a threshold.
	ranked := append([]Chunk(nil), chunks...)
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].Params > ranked[j].Params })
	keep := make(map[string]int, k)
	for _, c := range ranked[:k] {
		keep[c.Label]++
	}
	for _, c := range chunks {
		if keep[c.Label] > 0 {
			keep[c.Label]--
			kept = append(kept, c)
		} else {
			deferred = append(deferred, c)
		}
	}
	return kept, deferred
}

// ChunksForBlocks builds one chunk per (label, params) pair with the given
// arrival dependencies; arrivals[i] < 0 means the gradient is resident.
func ChunksForBlocks(labels []string, params []int64, arrivals []int) ([]Chunk, error) {
	if len(labels) != len(params) || len(labels) != len(arrivals) {
		return nil, fmt.Errorf("agoffload: mismatched chunk inputs (%d labels, %d params, %d arrivals)",
			len(labels), len(params), len(arrivals))
	}
	chunks := make([]Chunk, len(labels))
	for i := range labels {
		chunks[i] = Chunk{Label: labels[i], Params: params[i], ArrivalDep: arrivals[i]}
	}
	return chunks, nil
}
