// Package agoffload implements active gradient offloading (§IV-C): the
// out-of-core CPU optimizer consumes gradients as they arrive in main
// memory during backward propagation. It builds the optimizer part of an
// iteration schedule in three modes:
//
//   - Serialized: the optimizer runs as a separate stage after backward
//     propagation finishes (what ZeRO-Infinity does; "Ratel+ZeRO" in
//     Fig. 7).
//   - Naive: each gradient's handler — SSD→Main state read, CPU update,
//     Main→SSD write-back — runs as soon as the gradient arrives, but the
//     three steps are strictly serialized per tensor (Fig. 3a).
//   - Optimized: the handler steps are software-pipelined so the SSD I/O of
//     one tensor overlaps the CPU update of another, and everything
//     overlaps GPU backward propagation (Fig. 3b).
//
// The same schedule semantics drive both the discrete-event simulator (this
// package) and the real engine's goroutine pipeline (package engine).
package agoffload

import (
	"fmt"

	"ratel/internal/sim"
	"ratel/internal/units"
)

// Mode selects the gradient-offloading schedule.
type Mode int

// Scheduling modes, in increasing order of overlap.
const (
	Serialized Mode = iota
	Naive
	Optimized
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Serialized:
		return "serialized"
	case Naive:
		return "naive"
	case Optimized:
		return "optimized"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Chunk is the optimizer work for one gradient tensor (typically one
// transformer block): its parameter count determines the model-state bytes
// its handler streams (12 bytes/param read: P32+OS32; 14 bytes/param
// written: P32+OS32+P16) and the CPU update cost.
type Chunk struct {
	Label string
	// Params is the chunk's parameter count.
	Params int64
	// ArrivalDep is the schedule task ID whose completion delivers the
	// chunk's gradient to main memory (the backward G2M transfer), or -1 if
	// the gradient is already resident.
	ArrivalDep int
}

// StateReadBytes is the model-state bytes the handler reads from SSD.
func (c Chunk) StateReadBytes() units.Bytes { return units.Bytes(12 * c.Params) }

// StateWriteBytes is the updated-state bytes the handler writes back.
func (c Chunk) StateWriteBytes() units.Bytes { return units.Bytes(14 * c.Params) }

// Rates carries the resource speeds the handlers run at.
type Rates struct {
	// BWS2M and BWM2S are the aggregate SSD read/write bandwidths. Zero
	// disables state streaming (states held in main memory, e.g.
	// ZeRO-Offload) — handlers then consist only of the CPU update.
	BWS2M, BWM2S units.BytesPerSecond
	// AdamParamsPerSec is the CPU optimizer throughput.
	AdamParamsPerSec float64
}

// Schedule appends the optimizer tasks for all chunks to a schedule.
// Task IDs are assigned from nextID upward; it returns the tasks, the next
// free ID, and the IDs of the final write-backs (the iteration's optimizer
// completion set).
func Schedule(mode Mode, chunks []Chunk, nextID int, r Rates) (tasks []sim.Task, next int, finals []int, err error) {
	if r.AdamParamsPerSec <= 0 {
		return nil, 0, nil, fmt.Errorf("agoffload: non-positive Adam rate %v", r.AdamParamsPerSec)
	}
	id := nextID
	alloc := func() int { id++; return id - 1 }

	streaming := r.BWS2M > 0 && r.BWM2S > 0

	// In Serialized mode every handler waits for all gradients: the
	// optimizer is a stage of its own.
	var allArrivals []int
	if mode == Serialized {
		for _, c := range chunks {
			if c.ArrivalDep >= 0 {
				allArrivals = append(allArrivals, c.ArrivalDep)
			}
		}
	}

	prevWrite := -1   // previous chunk's write-back (Naive chain)
	prevCompute := -1 // previous chunk's CPU update
	for i, c := range chunks {
		if c.Params <= 0 {
			return nil, 0, nil, fmt.Errorf("agoffload: chunk %d (%s) has %d params", i, c.Label, c.Params)
		}
		deps := func(extra ...int) []int {
			var d []int
			switch mode {
			case Serialized:
				d = append(d, allArrivals...)
			default:
				if c.ArrivalDep >= 0 {
					d = append(d, c.ArrivalDep)
				}
			}
			for _, e := range extra {
				if e >= 0 {
					d = append(d, e)
				}
			}
			return d
		}

		computeDeps := []int{}
		var readID = -1
		if streaming {
			readDeps := deps()
			if mode == Naive {
				// Fig. 3a: the next tensor's SSD->Main waits for the
				// previous tensor's Main->SSD.
				readDeps = deps(prevWrite)
			}
			readID = alloc()
			tasks = append(tasks, sim.Task{
				ID:       readID,
				Label:    c.Label + "/opt-read",
				Resource: sim.SSDBus,
				Duration: units.TransferTime(c.StateReadBytes(), r.BWS2M),
				Deps:     readDeps,
			})
			computeDeps = append(computeDeps, readID)
		} else {
			computeDeps = deps()
		}
		// CPU updates run in arrival order: one optimizer thread pool.
		if prevCompute >= 0 {
			computeDeps = append(computeDeps, prevCompute)
		}
		computeID := alloc()
		tasks = append(tasks, sim.Task{
			ID:       computeID,
			Label:    c.Label + "/opt-adam",
			Resource: sim.CPUAdam,
			Duration: units.Seconds(float64(c.Params) / r.AdamParamsPerSec),
			Deps:     computeDeps,
		})
		prevCompute = computeID

		if streaming {
			writeID := alloc()
			tasks = append(tasks, sim.Task{
				ID:       writeID,
				Label:    c.Label + "/opt-write",
				Resource: sim.SSDBus,
				Duration: units.TransferTime(c.StateWriteBytes(), r.BWM2S),
				Deps:     []int{computeID},
			})
			prevWrite = writeID
			finals = append(finals, writeID)
		} else {
			finals = append(finals, computeID)
		}
	}
	return tasks, id, finals, nil
}

// ChunksForBlocks builds one chunk per (label, params) pair with the given
// arrival dependencies; arrivals[i] < 0 means the gradient is resident.
func ChunksForBlocks(labels []string, params []int64, arrivals []int) ([]Chunk, error) {
	if len(labels) != len(params) || len(labels) != len(arrivals) {
		return nil, fmt.Errorf("agoffload: mismatched chunk inputs (%d labels, %d params, %d arrivals)",
			len(labels), len(params), len(arrivals))
	}
	chunks := make([]Chunk, len(labels))
	for i := range labels {
		chunks[i] = Chunk{Label: labels[i], Params: params[i], ArrivalDep: arrivals[i]}
	}
	return chunks, nil
}
