package agoffload

import (
	"fmt"
	"time"

	"ratel/internal/opt"
	"ratel/internal/units"
)

// This file is the engine↔simulator calibration bridge for the CPU
// optimizer: the schedules in this package price each chunk's update at
// Params / Rates.AdamParamsPerSec, and the real engine runs the chunked
// multi-threaded Adam kernel in package opt (sharded over the shared
// worker pool, §IV-C's multi-threaded CPU optimizer). MeasureAdamRate
// times that actual kernel so simulator rates can come from the machine
// the engine runs on instead of the paper's Table III constants.

// measureFloor is the minimum wall-clock a measurement must span; below
// it the timer's resolution would dominate the rate.
const measureFloor = 20 * time.Millisecond

// MeasureAdamRate times the engine's chunked parallel Adam kernel over n
// synthetic parameters and returns its measured throughput in params/s —
// a drop-in value for Rates.AdamParamsPerSec. The measurement repeats the
// step until it spans measureFloor, so small n still yields a stable rate.
func MeasureAdamRate(n int) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("agoffload: measure Adam rate over %d params", n)
	}
	p32 := make([]float32, n)
	m := make([]float32, n)
	v := make([]float32, n)
	grad := make([]float32, n)
	for i := range p32 {
		p32[i] = float32(i%17) * 0.01
		grad[i] = float32(i%13)*0.001 - 0.005
	}
	cfg := opt.DefaultAdam()
	// Warm-up: fault pages in and let the pool spin up.
	if err := opt.AdamStep(cfg, 1, p32, m, v, grad); err != nil {
		return 0, err
	}
	steps := 0
	start := time.Now()
	for elapsed := time.Duration(0); elapsed < measureFloor; elapsed = time.Since(start) {
		if err := opt.AdamStep(cfg, steps+2, p32, m, v, grad); err != nil {
			return 0, err
		}
		steps++
	}
	return float64(n) * float64(steps) / time.Since(start).Seconds(), nil
}

// MeasuredRates builds Rates whose CPU-optimizer throughput is calibrated
// from the real kernel (MeasureAdamRate over sampleParams) and whose SSD
// bandwidths are the given values. Zero bandwidths keep their
// states-in-memory meaning (no streaming).
func MeasuredRates(bwS2M, bwM2S units.BytesPerSecond, sampleParams int) (Rates, error) {
	rate, err := MeasureAdamRate(sampleParams)
	if err != nil {
		return Rates{}, err
	}
	return Rates{BWS2M: bwS2M, BWM2S: bwM2S, AdamParamsPerSec: rate}, nil
}
