package itersim

import (
	"ratel/internal/agoffload"
	"ratel/internal/hw"
	"ratel/internal/model"
	"ratel/internal/strategy"
)

// SimulateProfiling models Ratel's first, hardware-aware profiling
// iteration (§IV-B): it swaps only inter-layer activations (recomputing the
// rest, "just like ZeRO-Infinity"), offloads all model states to the SSDs
// without the overlap optimizations, and serializes the optimizer so the
// computation and communication costs can be broken down cleanly. The paper
// reports this iteration costs 2–3× a steady one; the SimulateProfiling/
// Simulate ratio reproduces that.
func SimulateProfiling(cfg model.Config, batch int, srv hw.Server) (Report, error) {
	p := strategy.Ratel
	p.Name = "Ratel-profiling"
	p.Act = strategy.ActInterBlockHost
	p.GradMode = agoffload.Serialized
	// Instrumented transfers run at reduced efficiency: each is timed
	// individually rather than pipelined through pinned double buffers.
	p.LinkEff = 0.6
	p.SSDEff = 0.6
	return Simulate(p, cfg, batch, srv)
}
