package itersim

import (
	"ratel/internal/hw"
	"ratel/internal/model"
	"ratel/internal/sim"
	"ratel/internal/strategy"
	"ratel/internal/units"
)

// SimulateDelayedOverlap models the one-step delayed update (footnote 4):
// the optimizer stage of iteration k overlaps the forward/backward of
// iteration k+1, so in steady state the effective iteration time is the
// maximum of the compute phase and the optimizer phase rather than their
// sum — bought at the price of parameter staleness.
//
// The paper's point is that active gradient offloading achieves comparable
// overlap synchronously; this ablation quantifies the comparison.
func SimulateDelayedOverlap(p strategy.Policy, cfg model.Config, batch int, srv hw.Server) (Report, error) {
	rep, err := Simulate(p, cfg, batch, srv)
	if err != nil {
		return Report{}, err
	}
	computePhase := rep.BackwardEnd
	optimizerPhase := rep.OptimizerTail
	effective := computePhase
	if optimizerPhase > effective {
		effective = optimizerPhase
	}
	rep.Policy = p.Name + "+delayed"
	rep.Makespan = effective
	rep.OptimizerTail = 0
	iter := float64(effective)
	rep.TokensPerSec = float64(cfg.TokensPerIteration(batch)) / iter
	rep.ImagesPerSec = float64(cfg.ImagesPerIteration(batch)) / iter
	rep.TFLOPS = units.Throughput(3*cfg.ForwardFLOPs(batch), effective).TFLOPSf()
	rep.OptimizerShare = 0
	if rep.BackwardEnd > rep.Makespan {
		rep.BackwardEnd = rep.Makespan
	}
	rep.GPUBusyFrac = float64(rep.Result.Busy[sim.GPUCompute]) / iter
	if rep.GPUBusyFrac > 1 {
		rep.GPUBusyFrac = 1
	}
	return rep, nil
}
