package itersim

import (
	"fmt"

	"ratel/internal/capacity"
	"ratel/internal/hw"
	"ratel/internal/model"
	"ratel/internal/strategy"
	"ratel/internal/units"
)

// SimulateMultiGPU models data-parallel training on a server with several
// GPUs (Fig. 11): each GPU processes globalBatch/N samples against its own
// replica of the schedule; the SSD array and host link are shared, so each
// rank sees 1/N of the SSD bandwidth; gradient synchronization adds one
// ring-allreduce of the fp16 gradients (~2·2P/N per direction per rank)
// over the PCIe link, and the shared CPU optimizer updates each shard once.
func SimulateMultiGPU(p strategy.Policy, cfg model.Config, globalBatch int, srv hw.Server) (Report, error) {
	n := srv.GPUCount
	if n < 1 {
		return Report{}, fmt.Errorf("itersim: server has no GPUs")
	}
	if n == 1 {
		return Simulate(p, cfg, globalBatch, srv)
	}
	if globalBatch%n != 0 {
		return Report{}, fmt.Errorf("itersim: global batch %d not divisible by %d GPUs", globalBatch, n)
	}
	perGPU := globalBatch / n

	rep, err := simulate(p, cfg, perGPU, srv, n)
	if err != nil {
		return Report{}, err
	}
	// Ring allreduce of fp16 gradients across PCIe, serialized after the
	// rank's own backward traffic: 2·(N-1)/N ≈ 2 volumes of 2P bytes per
	// direction, degraded by the policy's link efficiency.
	bwG := units.BytesPerSecond(float64(srv.Link.GPUPerDirection) * p.LinkEff)
	allreduce := units.TransferTime(units.Bytes(4*cfg.Params()*int64(n-1)/int64(n)), bwG)
	rep.Makespan += allreduce
	rep.BackwardEnd += allreduce

	rep.GPUs = n
	iter := float64(rep.Makespan)
	rep.TokensPerSec = float64(cfg.TokensPerIteration(globalBatch)) / iter
	rep.ImagesPerSec = float64(cfg.ImagesPerIteration(globalBatch)) / iter
	rep.TFLOPS = units.Throughput(3*cfg.ForwardFLOPs(globalBatch), rep.Makespan).TFLOPSf()
	rep.Batch = globalBatch
	rep.OptimizerShare = float64(rep.OptimizerTail) / iter
	return rep, nil
}

// SimulateTensorParallel models Megatron-LM on an NVLink machine (Fig. 13):
// the model is sharded across all GPUs, activations stay resident, and the
// iteration is compute-bound at the policy's effective efficiency, with the
// in-core optimizer adding a small GPU pass.
func SimulateTensorParallel(p strategy.Policy, cfg model.Config, batch int, srv hw.Server) (Report, error) {
	if !p.TensorParallel {
		return Report{}, fmt.Errorf("itersim: %s is not a tensor-parallel policy", p.Name)
	}
	if err := capacity.Check(p, cfg, batch, srv); err != nil {
		return Report{}, err
	}
	thp := units.FLOPsPerSecond(float64(srv.GPU.PeakFP16) * p.ComputeEff * float64(srv.GPUCount))
	compute := units.ComputeTime(3*cfg.ForwardFLOPs(batch), thp)
	opt := units.ComputeTime(units.FLOPs(20*float64(cfg.Params())), thp)
	iter := compute + opt
	rep := Report{
		Policy: p.Name, Model: cfg.Name, Batch: batch, GPUs: srv.GPUCount,
		ForwardEnd:  compute / 3,
		BackwardEnd: compute,
		Makespan:    iter,
		GPUBusyFrac: 1,
	}
	rep.OptimizerTail = opt
	rep.TokensPerSec = float64(cfg.TokensPerIteration(batch)) / float64(iter)
	rep.ImagesPerSec = float64(cfg.ImagesPerIteration(batch)) / float64(iter)
	rep.TFLOPS = units.Throughput(3*cfg.ForwardFLOPs(batch), iter).TFLOPSf()
	rep.OptimizerShare = float64(opt) / float64(iter)
	return rep, nil
}

// BestThroughput sweeps the batch grid and returns the report with the
// highest token throughput among feasible batches (how the paper picks "the
// largest batch size the system can fine-tune").
func BestThroughput(p strategy.Policy, cfg model.Config, srv hw.Server, grid []int) (Report, error) {
	var best Report
	found := false
	for _, b := range grid {
		rep, err := Simulate(p, cfg, b, srv)
		if err != nil {
			continue
		}
		if !found || rep.TokensPerSec > best.TokensPerSec {
			best = rep
			found = true
		}
	}
	if !found {
		return Report{}, fmt.Errorf("itersim: %s cannot train %s at any batch in %v", p.Name, cfg.Name, grid)
	}
	return best, nil
}
