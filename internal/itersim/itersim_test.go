package itersim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ratel/internal/capacity"
	"ratel/internal/hw"
	"ratel/internal/model"
	"ratel/internal/plan"
	"ratel/internal/sim"
	"ratel/internal/strategy"
	"ratel/internal/units"
)

func srv4090() hw.Server { return hw.EvalServer(hw.RTX4090, 768*units.GiB, 12) }

func mustSim(t *testing.T, p strategy.Policy, name string, batch int) Report {
	t.Helper()
	rep, err := Simulate(p, model.MustByName(name), batch, srv4090())
	if err != nil {
		t.Fatalf("%s/%s/b%d: %v", p.Name, name, batch, err)
	}
	return rep
}

// TestFig1aZeROInfinityBreakdown anchors the simulated ZeRO-Infinity stage
// times for the 13B model at batch 32 against Fig. 1a: forward ~14 s,
// backward ~26 s, optimizer ~23 s, GPU busy ~36%.
func TestFig1aZeROInfinityBreakdown(t *testing.T) {
	rep := mustSim(t, strategy.ZeROInfinity, "13B", 32)
	if f := float64(rep.ForwardEnd); f < 10 || f > 18 {
		t.Errorf("forward = %.1f s, want ~14 s", f)
	}
	if b := float64(rep.BackwardEnd - rep.ForwardEnd); b < 18 || b > 30 {
		t.Errorf("backward = %.1f s, want ~26 s", b)
	}
	if o := float64(rep.OptimizerTail); o < 18 || o > 28 {
		t.Errorf("optimizer stage = %.1f s, want ~23 s", o)
	}
	if g := rep.GPUBusyFrac; g < 0.30 || g > 0.48 {
		t.Errorf("GPU busy = %.0f%%, want ~36%%", 100*g)
	}
	if s := rep.OptimizerShare; s < 0.30 || s > 0.60 {
		t.Errorf("optimizer share = %.0f%%, want 30-60%% (Fig. 2c)", 100*s)
	}
}

// TestFig1cRatelBreakdown anchors Ratel on the same workload: short forward
// (~5 s), optimizer hidden behind backward (tail ≈ 0), high GPU utilization.
func TestFig1cRatelBreakdown(t *testing.T) {
	rep := mustSim(t, strategy.Ratel, "13B", 32)
	if f := float64(rep.ForwardEnd); f < 4 || f > 8 {
		t.Errorf("forward = %.1f s, want ~5-6 s", f)
	}
	if o := float64(rep.OptimizerTail); o > 2.5 {
		t.Errorf("optimizer tail = %.1f s, want hidden behind backward (§IV-C)", o)
	}
	if g := rep.GPUBusyFrac; g < 0.80 {
		t.Errorf("GPU busy = %.0f%%, want > 80%%", 100*g)
	}
	if rep.FLOPr <= 0 {
		t.Error("Ratel should recompute part of the activations on this server")
	}
}

// TestFig1bG10Breakdown: G10's in-GPU optimizer creates a distinct optimizer
// stage dominated by model-state transfer (~13 s in the paper).
func TestFig1bG10Breakdown(t *testing.T) {
	rep := mustSim(t, strategy.G10, "13B", 32)
	if o := float64(rep.OptimizerTail); o < 8 || o > 16 {
		t.Errorf("G10 optimizer stage = %.1f s, want ~13 s", o)
	}
	if rep.FLOPr != 0 {
		t.Error("G10 swaps all activations and never recomputes")
	}
	if rep.AG2M != model.MustByName("13B").Aall(32) {
		t.Errorf("G10 should swap all activations, got %v", rep.AG2M)
	}
}

// TestFig5aThroughputRatios checks the headline end-to-end comparison at
// batch 32 on the RTX 4090: Ratel ≈ 2.3x ZeRO-Offload, ≈ 3x ZeRO-Infinity,
// and 5-9x Colossal-AI (paper: 2.32x / 3.46x / 8.02x).
func TestFig5aThroughputRatios(t *testing.T) {
	ratel := mustSim(t, strategy.Ratel, "13B", 32).TokensPerSec
	zo := mustSim(t, strategy.ZeROOffload, "13B", 32).TokensPerSec
	zi := mustSim(t, strategy.ZeROInfinity, "13B", 32).TokensPerSec
	col := mustSim(t, strategy.ColossalAI, "13B", 32).TokensPerSec
	if r := ratel / zo; r < 1.8 || r > 3.2 {
		t.Errorf("Ratel/ZeRO-Offload = %.2fx, want ~2.3x", r)
	}
	if r := ratel / zi; r < 2.3 || r > 4.6 {
		t.Errorf("Ratel/ZeRO-Infinity = %.2fx, want ~3.5x", r)
	}
	if r := ratel / col; r < 4.5 || r > 10 {
		t.Errorf("Ratel/Colossal-AI = %.2fx, want ~8x", r)
	}
}

// TestThroughputMonotoneInBatch: for every system, throughput does not
// decrease with batch size over its feasible range (Fig. 5a/5b shape).
func TestThroughputMonotoneInBatch(t *testing.T) {
	for _, p := range []strategy.Policy{strategy.Ratel, strategy.ZeROInfinity, strategy.ZeROOffload} {
		prev := 0.0
		for _, b := range []int{8, 16, 32, 64} {
			rep, err := Simulate(p, model.MustByName("13B"), b, srv4090())
			if err != nil {
				break
			}
			if rep.TokensPerSec < prev*0.98 {
				t.Errorf("%s: throughput dropped at batch %d (%.0f -> %.0f)",
					p.Name, b, prev, rep.TokensPerSec)
			}
			prev = rep.TokensPerSec
		}
	}
}

// TestFig7ActiveGradientOffloading: optimized >= naive and optimized >
// serialized, with the gap shrinking at small batch (§V-D).
func TestFig7ActiveGradientOffloading(t *testing.T) {
	for _, b := range []int{16, 32, 64} {
		opt := mustSim(t, strategy.Ratel, "13B", b).TokensPerSec
		nai := mustSim(t, strategy.RatelNaive, "13B", b).TokensPerSec
		ser := mustSim(t, strategy.RatelZeRO, "13B", b).TokensPerSec
		if opt < nai || opt < ser {
			t.Errorf("batch %d: optimized (%.0f) not best (naive %.0f, serialized %.0f)",
				b, opt, nai, ser)
		}
	}
	gainLarge := mustSim(t, strategy.Ratel, "13B", 64).TokensPerSec /
		mustSim(t, strategy.RatelZeRO, "13B", 64).TokensPerSec
	if gainLarge < 1.15 {
		t.Errorf("batch 64: optimized/serialized = %.2fx, want ~1.3x (Fig. 7a)", gainLarge)
	}
}

// TestFig5cPeakUtilization: Ratel reaches >= 85% of measured peak for models
// up to 70B and drops to ~50-65% at 175B where the feasible batch shrinks.
func TestFig5cPeakUtilization(t *testing.T) {
	grid := []int{1, 2, 4, 8, 16, 32, 64, 128}
	peak := hw.RTX4090.PeakFP16.TFLOPSf()
	for _, name := range []string{"13B", "30B", "70B"} {
		rep, err := BestThroughput(strategy.Ratel, model.MustByName(name), srv4090(), grid)
		if err != nil {
			t.Fatal(err)
		}
		if frac := rep.TFLOPS / peak; frac < 0.85 {
			t.Errorf("%s: %.0f%% of peak, want >= 85%% (paper: 90-95%%)", name, 100*frac)
		}
	}
	rep, err := BestThroughput(strategy.Ratel, model.MustByName("175B"), srv4090(), grid)
	if err != nil {
		t.Fatal(err)
	}
	if frac := rep.TFLOPS / peak; frac < 0.35 || frac > 0.75 {
		t.Errorf("175B: %.0f%% of peak, want ~53%%", 100*frac)
	}
}

// TestFig10aSSDScaling: near-linear Ratel scaling from 1 to 3 SSDs for the
// 135B model, small gains from 6 to 12; ZeRO-Infinity grows slowly.
func TestFig10aSSDScaling(t *testing.T) {
	grid := []int{1, 2, 4, 8, 16, 32}
	tput := func(p strategy.Policy, ssds int) float64 {
		rep, err := BestThroughput(p, model.MustByName("135B"), srv4090().WithSSDs(ssds), grid)
		if err != nil {
			t.Fatalf("%s with %d SSDs: %v", p.Name, ssds, err)
		}
		return rep.TokensPerSec
	}
	r1, r3 := tput(strategy.Ratel, 1), tput(strategy.Ratel, 3)
	if scale := r3 / r1; scale < 2.3 {
		t.Errorf("Ratel 1->3 SSDs scaled %.2fx, want near-linear (>2.3x)", scale)
	}
	r6, r12 := tput(strategy.Ratel, 6), tput(strategy.Ratel, 12)
	if gain := r12 / r6; gain > 1.35 {
		t.Errorf("Ratel 6->12 SSDs gained %.2fx, want small (<1.35x)", gain)
	}
	z1, z12 := tput(strategy.ZeROInfinity, 1), tput(strategy.ZeROInfinity, 12)
	if zscale, rscale := z12/z1, r12/r1; zscale >= rscale {
		t.Errorf("ZeRO-Infinity scaled %.1fx vs Ratel %.1fx; Ratel should aggregate SSDs better", zscale, rscale)
	}
}

// TestFig10bSSDKnees: the batch-dependent SSD counts at which Ratel's 13B
// throughput saturates (paper: 12 SSDs for batch 32, 6 for 48, 3 for 64).
func TestFig10bSSDKnees(t *testing.T) {
	saturated := func(batch, ssds int) bool {
		at := mustSimSSD(t, batch, ssds)
		max := mustSimSSD(t, batch, 12)
		return at >= 0.93*max
	}
	if saturated(32, 3) {
		t.Error("batch 32 should need more than 3 SSDs to saturate")
	}
	if !saturated(48, 6) {
		t.Error("batch 48 should saturate by 6 SSDs")
	}
	if !saturated(64, 3) {
		t.Error("batch 64 should saturate by 3 SSDs")
	}
}

func mustSimSSD(t *testing.T, batch, ssds int) float64 {
	t.Helper()
	rep, err := Simulate(strategy.Ratel, model.MustByName("13B"), batch, srv4090().WithSSDs(ssds))
	if err != nil {
		t.Fatal(err)
	}
	return rep.TFLOPS
}

// TestFig11MultiGPU: Ratel outperforms ZeRO-Infinity on 2 and 4 GPUs, and
// 4 GPUs beat 2 at the same global batch.
func TestFig11MultiGPU(t *testing.T) {
	cfg := model.MustByName("13B")
	for _, n := range []int{2, 4} {
		srv := srv4090().WithGPUs(n)
		ratel, err := SimulateMultiGPU(strategy.Ratel, cfg, 64, srv)
		if err != nil {
			t.Fatal(err)
		}
		zi, err := SimulateMultiGPU(strategy.ZeROInfinity, cfg, 64, srv)
		if err != nil {
			t.Fatal(err)
		}
		if ratel.TokensPerSec <= zi.TokensPerSec {
			t.Errorf("%d GPUs: Ratel (%.0f) should beat ZeRO-Infinity (%.0f)",
				n, ratel.TokensPerSec, zi.TokensPerSec)
		}
		if ratel.GPUs != n {
			t.Errorf("report GPUs = %d, want %d", ratel.GPUs, n)
		}
	}
	two, _ := SimulateMultiGPU(strategy.Ratel, cfg, 128, srv4090().WithGPUs(2))
	four, _ := SimulateMultiGPU(strategy.Ratel, cfg, 128, srv4090().WithGPUs(4))
	if four.TokensPerSec <= two.TokensPerSec {
		t.Errorf("4 GPUs (%.0f tok/s) should beat 2 GPUs (%.0f tok/s)",
			four.TokensPerSec, two.TokensPerSec)
	}
	if _, err := SimulateMultiGPU(strategy.Ratel, cfg, 63, srv4090().WithGPUs(2)); err == nil {
		t.Error("indivisible global batch accepted")
	}
}

// TestFig12Diffusion: Ratel trains DiT models Fast-DiT cannot, and matches
// or beats it where both run.
func TestFig12Diffusion(t *testing.T) {
	grid := []int{1, 2, 4, 8, 16, 32, 64, 128}
	small := model.MustByName("DiT-0.67B")
	fd, err := BestThroughput(strategy.FastDiT, small, srv4090(), grid)
	if err != nil {
		t.Fatalf("Fast-DiT on DiT-0.67B: %v", err)
	}
	ra, err := BestThroughput(strategy.Ratel, small, srv4090(), grid)
	if err != nil {
		t.Fatal(err)
	}
	if ra.ImagesPerSec < fd.ImagesPerSec {
		t.Errorf("Ratel (%.1f img/s) below Fast-DiT (%.1f img/s) on DiT-0.67B",
			ra.ImagesPerSec, fd.ImagesPerSec)
	}
	// Fast-DiT cannot hold a 10B DiT; Ratel trains even the 40B.
	if _, err := BestThroughput(strategy.FastDiT, model.MustByName("DiT-10B"), srv4090(), grid); err == nil {
		t.Error("Fast-DiT should OOM on DiT-10B")
	}
	if _, err := BestThroughput(strategy.Ratel, model.MustByName("DiT-40B"), srv4090(), grid); err != nil {
		t.Errorf("Ratel should train DiT-40B: %v", err)
	}
}

// TestFig9aActivationStrategies: with 512 GiB main memory and the same
// workload, Ratel's holistic planner is at least as fast as every
// alternative activation-management strategy.
func TestFig9aActivationStrategies(t *testing.T) {
	srv := hw.EvalServer(hw.RTX4090, 512*units.GiB, 12)
	cfg := model.MustByName("70B")
	best, err := Simulate(strategy.Ratel, cfg, 32, srv)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []strategy.Policy{strategy.RatelDS, strategy.RatelCap, strategy.RatelG10, strategy.RatelCM} {
		rep, err := Simulate(p, cfg, 32, srv)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if rep.TokensPerSec > best.TokensPerSec*1.001 {
			t.Errorf("%s (%.0f tok/s) beat the holistic planner (%.0f tok/s)",
				p.Name, rep.TokensPerSec, best.TokensPerSec)
		}
	}
}

// TestInfeasibleConfigsFail ensures capacity gating is wired in.
func TestInfeasibleConfigsFail(t *testing.T) {
	if _, err := Simulate(strategy.FlashNeuron, model.MustByName("13B"), 8, srv4090()); err == nil {
		t.Error("FlashNeuron 13B should fail on a 24 GB GPU (§V-C)")
	}
	if _, err := Simulate(strategy.ZeROOffload, model.MustByName("175B"), 1, srv4090()); err == nil {
		t.Error("ZeRO-Offload 175B should exceed main memory")
	}
}

// TestStageAccountingInvariants checks basic report sanity across systems.
func TestStageAccountingInvariants(t *testing.T) {
	for _, p := range []strategy.Policy{strategy.Ratel, strategy.ZeROInfinity,
		strategy.ZeROOffload, strategy.ColossalAI, strategy.G10, strategy.RatelCpuAct} {
		rep, err := Simulate(p, model.MustByName("13B"), 16, srv4090())
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if !(rep.ForwardEnd > 0 && rep.ForwardEnd <= rep.BackwardEnd && rep.BackwardEnd <= rep.Makespan) {
			t.Errorf("%s: stage ordering broken: fwd %v, bwd %v, total %v",
				p.Name, rep.ForwardEnd, rep.BackwardEnd, rep.Makespan)
		}
		if rep.TokensPerSec <= 0 || rep.GPUBusyFrac <= 0 || rep.GPUBusyFrac > 1 {
			t.Errorf("%s: bad throughput/utilization: %+v", p.Name, rep)
		}
		if rep.AlphaBytes > rep.AG2M {
			t.Errorf("%s: alpha bytes %v exceed AG2M %v", p.Name, rep.AlphaBytes, rep.AG2M)
		}
	}
}

// TestSimulateTensorParallel covers the Megatron path.
func TestSimulateTensorParallel(t *testing.T) {
	dgx := hw.DGXA100()
	rep, err := SimulateTensorParallel(strategy.Megatron, model.MustByName("30B"), 32, dgx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TokensPerSec <= 0 || rep.GPUs != 8 {
		t.Errorf("bad Megatron report: %+v", rep)
	}
	if _, err := SimulateTensorParallel(strategy.Ratel, model.MustByName("30B"), 32, dgx); err == nil {
		t.Error("non-TP policy accepted by SimulateTensorParallel")
	}
	// The 175B model does not fit the DGX without offloading (§V-I
	// motivation).
	if _, err := SimulateTensorParallel(strategy.Megatron, model.MustByName("175B"), 8, dgx); err == nil {
		t.Error("Megatron 175B on DGX should fail")
	}
}

// TestBestThroughputFailsWhenNothingFits covers the error path.
func TestBestThroughputFailsWhenNothingFits(t *testing.T) {
	if _, err := BestThroughput(strategy.FlashNeuron, model.MustByName("70B"), srv4090(), []int{8, 16}); err == nil {
		t.Error("expected no feasible batch")
	}
}

// TestProfilingIterationOverhead: the first (profiling) iteration costs
// 2-3x a steady Ratel iteration (§IV-B), so it is negligible over a
// fine-tuning run.
func TestProfilingIterationOverhead(t *testing.T) {
	prof, err := SimulateProfiling(model.MustByName("13B"), 32, srv4090())
	if err != nil {
		t.Fatal(err)
	}
	steady := mustSim(t, strategy.Ratel, "13B", 32)
	ratio := float64(prof.Makespan) / float64(steady.Makespan)
	if ratio < 1.5 || ratio > 3.5 {
		t.Errorf("profiling iteration = %.2fx a steady one, want 2-3x", ratio)
	}
}

// TestSimulationInvariantsFuzzed: random feasible configurations always
// produce well-formed reports — ordered stage boundaries, utilizations in
// [0,1], positive throughput — and throughput never falls when compute
// or bandwidth improves.
func TestSimulationInvariantsFuzzed(t *testing.T) {
	pols := []strategy.Policy{strategy.Ratel, strategy.RatelNaive, strategy.RatelZeRO,
		strategy.ZeROInfinity, strategy.ZeROOffload, strategy.G10, strategy.RatelCpuAct}
	names := []string{"6B", "13B", "30B"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := pols[rng.Intn(len(pols))]
		cfg := model.MustByName(names[rng.Intn(len(names))])
		batch := 1 << rng.Intn(6)
		srv := hw.EvalServer(hw.RTX4090, units.Bytes(128+rng.Intn(640))*units.GiB, 1+rng.Intn(12))
		rep, err := Simulate(p, cfg, batch, srv)
		if err != nil {
			return true // infeasible configs are allowed to fail
		}
		if !(rep.ForwardEnd > 0 && rep.ForwardEnd <= rep.BackwardEnd && rep.BackwardEnd <= rep.Makespan) {
			return false
		}
		if rep.GPUBusyFrac <= 0 || rep.GPUBusyFrac > 1+1e-9 {
			return false
		}
		if rep.TokensPerSec <= 0 || rep.OptimizerShare < 0 || rep.OptimizerShare > 1 {
			return false
		}
		if rep.AlphaBytes > rep.AG2M || rep.FLOPr < 0 {
			return false
		}
		// A strictly faster GPU never materially slows the iteration.
		// (Non-preemptive list scheduling admits tiny Graham anomalies, so
		// allow a 2% slack.)
		faster := srv
		faster.GPU.PeakFP16 *= 2
		rep2, err := Simulate(p, cfg, batch, faster)
		if err != nil {
			return false
		}
		return float64(rep2.Makespan) <= 1.02*float64(rep.Makespan)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestFlashNeuronPath: FlashNeuron (states on GPU, activations to SSD)
// simulates on a small model and is compute-bound — no optimizer stage on
// the CPU, no model-state streaming.
func TestFlashNeuronPath(t *testing.T) {
	rep, err := Simulate(strategy.FlashNeuron, model.MustByName("0.76B"), 8, srv4090())
	if err != nil {
		t.Fatal(err)
	}
	if rep.TokensPerSec <= 0 {
		t.Fatal("FlashNeuron produced no throughput")
	}
	if rep.FLOPr != 0 {
		t.Error("FlashNeuron does not recompute (it swaps all activations)")
	}
	// In-core optimizer: the CPU Adam resource is never used.
	if busy := rep.Result.Busy[sim.CPUAdam]; busy != 0 {
		t.Errorf("FlashNeuron used the CPU optimizer for %v", busy)
	}
}

// TestColossalKeepGPUPath: Colossal-AI keeps inter-block activations on the
// GPU, so its AG2M transfer volume is zero.
func TestColossalKeepGPUPath(t *testing.T) {
	rep := mustSim(t, strategy.ColossalAI, "13B", 16)
	if rep.AG2M != 0 {
		t.Errorf("Colossal-AI swapped %v, want 0 (activations stay on GPU)", rep.AG2M)
	}
	if rep.FLOPr <= 0 {
		t.Error("Colossal-AI recomputes intra-block activations")
	}
}

// TestDelayedOverlapAblation quantifies footnote 4's trade: the delayed
// update lets ZeRO-Offload hide its optimizer stage (throughput rises), yet
// Ratel's synchronous active gradient offloading still matches or beats it —
// without the staleness.
func TestDelayedOverlapAblation(t *testing.T) {
	sync := mustSim(t, strategy.ZeROOffload, "13B", 32)
	delayed, err := SimulateDelayedOverlap(strategy.ZeROOffload, model.MustByName("13B"), 32, srv4090())
	if err != nil {
		t.Fatal(err)
	}
	if delayed.TokensPerSec <= sync.TokensPerSec {
		t.Errorf("delayed update should raise ZeRO-Offload throughput: %.0f vs %.0f",
			delayed.TokensPerSec, sync.TokensPerSec)
	}
	ratel := mustSim(t, strategy.Ratel, "13B", 32)
	if ratel.TokensPerSec < delayed.TokensPerSec {
		t.Errorf("Ratel (%.0f tok/s, synchronous) should match or beat delayed ZeRO-Offload (%.0f tok/s)",
			ratel.TokensPerSec, delayed.TokensPerSec)
	}
	if delayed.OptimizerTail != 0 || delayed.OptimizerShare != 0 {
		t.Error("delayed-overlap report should hide the optimizer stage")
	}
	if delayed.Policy != "ZeRO-Offload+delayed" {
		t.Errorf("policy label = %q", delayed.Policy)
	}
}

// TestAnalyticalModelFitsSimulation: the closed-form Eqs. 1-5 prediction
// sits within 25% below the simulated makespan (the simulator pays pipeline
// fill/drain that the pure max() model ignores, so sim >= analytical).
func TestAnalyticalModelFitsSimulation(t *testing.T) {
	srv := srv4090()
	for _, name := range []string{"13B", "70B"} {
		profile := capacity.PlannerProfile(strategy.Ratel, model.MustByName(name), 32, srv)
		pl, err := plan.Optimize(profile)
		if err != nil {
			t.Fatal(err)
		}
		rep := mustSim(t, strategy.Ratel, name, 32)
		ratio := float64(rep.Makespan) / float64(pl.Predicted.Titer)
		if ratio < 0.98 || ratio > 1.25 {
			t.Errorf("%s: simulated/analytical = %.2fx, want [1.0, 1.25]", name, ratio)
		}
	}
}

func TestReportStageUtilization(t *testing.T) {
	rep := mustSim(t, strategy.Ratel, "13B", 32)
	util := rep.StageUtilization()
	if got := util["forward"][sim.GPUCompute]; got < 0.8 {
		t.Errorf("forward GPU utilization = %.2f, want high", got)
	}
	// Ratel's optimizer window is nearly empty; the CPU is busy during
	// backward instead.
	if got := util["backward"][sim.CPUAdam]; got < 0.5 {
		t.Errorf("backward CPU utilization = %.2f, want > 0.5 (active offloading)", got)
	}
	for stage, m := range util {
		for res, v := range m {
			if v < 0 || v > 1+1e-9 {
				t.Errorf("%s/%s utilization = %v", stage, res, v)
			}
		}
	}
}

// TestDiTThroughputOrdering: Ratel's image throughput decreases
// monotonically across the Table VI scale-up (Fig. 12 shape).
func TestDiTThroughputOrdering(t *testing.T) {
	grid := []int{1, 2, 4, 8, 16, 32, 64, 128}
	prev := 1e18
	for _, name := range []string{"DiT-0.67B", "DiT-0.90B", "DiT-1.4B", "DiT-10B", "DiT-20B", "DiT-40B"} {
		rep, err := BestThroughput(strategy.Ratel, model.MustByName(name), srv4090(), grid)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.ImagesPerSec >= prev {
			t.Errorf("%s: %.2f img/s not below previous %.2f", name, rep.ImagesPerSec, prev)
		}
		prev = rep.ImagesPerSec
	}
}
