// Package itersim assembles and executes one training iteration's schedule
// for a (policy, model, batch, server) combination on the discrete-event
// simulator, and reports the stage times, utilizations and throughput the
// paper's figures are made of.
//
// The schedule is built at transformer-block granularity: for each block the
// forward stage prefetches fp16 parameters (SSD→host→GPU as the policy's
// state placement dictates), computes, and offloads the planned share of
// activations (GPU→host, host→SSD); the backward stage fetches activations
// back, recomputes the discarded ones, computes gradients, and hands them to
// the optimizer according to the policy's gradient-offloading mode (package
// agoffload) or streams model states through the GPU for in-core optimizers
// (G10).
package itersim

import (
	"fmt"

	"ratel/internal/agoffload"
	"ratel/internal/capacity"
	"ratel/internal/hw"
	"ratel/internal/model"
	"ratel/internal/plan"
	"ratel/internal/sim"
	"ratel/internal/strategy"
	"ratel/internal/units"
)

// Report is the outcome of simulating one iteration.
type Report struct {
	Policy string
	Model  string
	Batch  int
	GPUs   int

	// Stage boundaries on the simulated timeline.
	ForwardEnd  units.Seconds
	BackwardEnd units.Seconds
	Makespan    units.Seconds

	// OptimizerTail is the time after backward ends during which only the
	// optimizer pipeline still runs (zero when fully hidden, §IV-C).
	OptimizerTail units.Seconds

	// DeferredParams counts parameters whose updates the AsyncTopK gradient
	// mode moved off the iteration's critical path onto the background
	// applier (zero in every other mode).
	DeferredParams int64

	// Activation decision actually simulated.
	AG2M       units.Bytes
	AlphaBytes units.Bytes
	FLOPr      units.FLOPs

	// Throughput metrics.
	TokensPerSec float64
	ImagesPerSec float64
	TFLOPS       float64

	// GPUBusyFrac is the fraction of the iteration the GPU computes
	// (Fig. 2b).
	GPUBusyFrac float64
	// OptimizerShare is the optimizer tail's share of the iteration
	// (Fig. 2c).
	OptimizerShare float64

	// Result retains the full timeline for trace rendering.
	Result sim.Result
}

// actDecision is the simulated activation split.
type actDecision struct {
	hostFrac  float64 // fraction of each block's swap that stays in host
	swapBytes map[string]units.Bytes
	ag2m      units.Bytes
	alpha     units.Bytes
	flopr     units.FLOPs
}

// decideActivations evaluates the policy's activation strategy.
func decideActivations(p strategy.Policy, cfg model.Config, batch int, srv hw.Server) (actDecision, error) {
	layers := cfg.LayerProfiles(batch)
	profile := capacity.PlannerProfile(p, cfg, batch, srv)
	memAvail := profile.MemAvailM

	d := actDecision{swapBytes: make(map[string]units.Bytes)}
	swap := func(l model.LayerProfile) {
		d.swapBytes[l.Name] += l.ActBytes
		d.ag2m += l.ActBytes
	}
	d.flopr = cfg.ForwardFLOPs(batch)

	switch p.Act {
	case strategy.ActPlanner:
		pl, err := plan.Optimize(profile)
		if err != nil {
			return d, err
		}
		for _, l := range pl.Swapped {
			d.swapBytes[l.Name] += l.ActBytes
		}
		d.ag2m = pl.AG2M
		d.alpha = pl.AlphaBytes
		d.flopr = pl.FLOPr
	case strategy.ActPlannerHostOnly, strategy.ActCheckmate:
		// The host-only planner (Ratel+CpuAct) and Checkmate's cost-model
		// split: run the planner, then truncate the swap set to what main
		// memory holds — everything beyond is recomputed instead.
		pl, err := plan.Optimize(profile)
		if err != nil {
			return d, err
		}
		for _, l := range pl.Swapped {
			if d.ag2m+l.ActBytes > memAvail && !l.Boundary {
				continue
			}
			swap(l)
			d.flopr -= l.FwdFLOPs
		}
	case strategy.ActInterBlockHost:
		for _, l := range layers {
			if l.Boundary {
				swap(l)
				d.flopr -= l.FwdFLOPs
			}
		}
	case strategy.ActKeepGPU:
		// Inter-block activations stay on GPU: no transfer, but no
		// recomputation of them either.
		for _, l := range layers {
			if l.Boundary {
				d.flopr -= l.FwdFLOPs
			}
		}
	case strategy.ActAllToSSD, strategy.ActAllToSSDNoStates:
		for _, l := range layers {
			swap(l)
		}
		d.flopr = 0
		if over := d.ag2m - memAvail; over > 0 {
			d.alpha = over
		}
	case strategy.ActCapuchin:
		threshold := float64(profile.THPG) / float64(profile.BWG)
		for _, l := range layers {
			if l.Boundary || l.OffloadingBenefit() > threshold {
				swap(l)
				d.flopr -= l.FwdFLOPs
			}
		}
	case strategy.ActAllOnGPU:
		d.flopr = 0
	default:
		return d, fmt.Errorf("itersim: unhandled activation policy %v", p.Act)
	}

	if d.ag2m > 0 {
		d.hostFrac = 1 - float64(d.alpha)/float64(d.ag2m)
	}
	if d.flopr < 0 {
		d.flopr = 0
	}
	return d, nil
}

// blockSpec aggregates one schedule unit (embedding, one transformer block,
// or the head).
type blockSpec struct {
	label    string
	params   int64
	fwdFLOPs units.FLOPs
	actSwap  units.Bytes // total activation bytes offloaded
	recomp   units.FLOPs // recomputation run during backward
}

// buildBlocks groups the per-operator profiles into schedule units.
func buildBlocks(cfg model.Config, batch int, d actDecision) []blockSpec {
	h := int64(cfg.Hidden)
	embedParams := int64(0)
	if cfg.Kind == model.DecoderLM {
		embedParams = int64(cfg.Vocab)*h + int64(cfg.SeqLen)*h
	} else {
		embedParams = 8 * h * h
	}
	blockParams := (cfg.Params() - embedParams) / int64(cfg.Layers)

	specs := make([]blockSpec, 0, cfg.Layers+2)
	specs = append(specs, blockSpec{label: "embedding", params: embedParams})
	for i := 0; i < cfg.Layers; i++ {
		specs = append(specs, blockSpec{label: fmt.Sprintf("block%d", i), params: blockParams})
	}
	// The LM head shares the embedding matrix (tied weights), so it adds no
	// parameters or optimizer work of its own.
	specs = append(specs, blockSpec{label: "head", params: 0})

	index := func(block int, name string) int {
		switch {
		case name == "embedding":
			return 0
		case name == "head":
			return len(specs) - 1
		default:
			return block + 1
		}
	}
	for _, l := range cfg.LayerProfiles(batch) {
		i := index(l.Block, l.Name)
		specs[i].fwdFLOPs += l.FwdFLOPs
		if b, ok := d.swapBytes[l.Name]; ok {
			specs[i].actSwap += b
		} else {
			specs[i].recomp += l.FwdFLOPs
		}
	}
	// Align total recomputation with the decision (planner truncation can
	// leave rounding).
	return specs
}

// rates are the policy-derated resource speeds.
type rates struct {
	thp          units.FLOPsPerSecond
	bwG          units.BytesPerSecond
	bwS2M, bwM2S units.BytesPerSecond
	adam         float64
}

func effectiveRates(p strategy.Policy, srv hw.Server) rates {
	return rates{
		thp:   units.FLOPsPerSecond(float64(srv.GPU.PeakFP16) * p.ComputeEff),
		bwG:   units.BytesPerSecond(float64(srv.Link.GPUPerDirection) * p.LinkEff),
		bwS2M: units.BytesPerSecond(float64(srv.BWS2M()) * p.SSDEff),
		bwM2S: units.BytesPerSecond(float64(srv.BWM2S()) * p.SSDEff),
		adam:  srv.CPU.AdamParamsPerSec * p.AdamEff,
	}
}

// Simulate runs one iteration and reports its timeline. It fails when the
// configuration does not fit the machine (package capacity).
func Simulate(p strategy.Policy, cfg model.Config, batch int, srv hw.Server) (Report, error) {
	return simulate(p, cfg, batch, srv, 1)
}

// simulate optionally divides SSD bandwidth among nShare GPUs (multi-GPU
// data parallelism).
func simulate(p strategy.Policy, cfg model.Config, batch int, srv hw.Server, nShare int) (Report, error) {
	if err := capacity.Check(p, cfg, batch, srv); err != nil {
		return Report{}, err
	}
	d, err := decideActivations(p, cfg, batch, srv)
	if err != nil {
		return Report{}, err
	}
	r := effectiveRates(p, srv)
	shard := int64(1)
	if nShare > 1 {
		// Data-parallel ranks share the SSD array and the CPU optimizer,
		// and shard the model states ZeRO-style: each rank streams and
		// updates 1/N of the states while all-gathering full fp16
		// parameters over its own PCIe link.
		r.bwS2M /= units.BytesPerSecond(nShare)
		r.bwM2S /= units.BytesPerSecond(nShare)
		r.adam /= float64(nShare)
		shard = int64(nShare)
	}
	specs := buildBlocks(cfg, batch, d)

	b := newBuilder()
	statesStream := p.States != strategy.StatesGPU
	statesOnSSD := p.States == strategy.StatesSSD

	// ---------- Forward ----------
	prevCompute := -1
	fwdCompute := make([]int, len(specs))
	actReady := make([]int, len(specs)) // last task holding the block's activations
	for i, s := range specs {
		deps := []int{}
		if statesStream && s.params > 0 {
			fetch := -1
			if statesOnSSD {
				fetch = b.add(sim.SSDBus, s.label+"/fwd-pread", units.TransferTime(units.Bytes(2*s.params/shard), r.bwS2M))
			}
			m2g := b.add(sim.PCIeM2G, s.label+"/fwd-pfetch", units.TransferTime(units.Bytes(2*s.params), r.bwG), fetch)
			deps = append(deps, m2g)
		}
		if prevCompute >= 0 {
			deps = append(deps, prevCompute)
		}
		c := b.add(sim.GPUCompute, s.label+"/fwd", units.ComputeTime(s.fwdFLOPs, r.thp), deps...)
		fwdCompute[i] = c
		prevCompute = c
		actReady[i] = -1
		if s.actSwap > 0 {
			g2m := b.add(sim.PCIeG2M, s.label+"/act-out", units.TransferTime(s.actSwap, r.bwG), c)
			actReady[i] = g2m
			if ssdPart := units.Bytes(float64(s.actSwap) * (1 - d.hostFrac)); ssdPart > 0 {
				actReady[i] = b.add(sim.SSDBus, s.label+"/act-spill", units.TransferTime(ssdPart, r.bwM2S), g2m)
			}
		}
		// Colossal-AI's Gemini evicts the chunk back to host after use.
		if p.HostStateThrash && s.params > 0 {
			b.add(sim.PCIeG2M, s.label+"/fwd-evict", units.TransferTime(units.Bytes(2*s.params), r.bwG), c)
		}
	}
	forwardTasks := len(b.tasks)

	// ---------- Backward ----------
	prevCompute = fwdCompute[len(specs)-1]
	gradArrival := make([]int, len(specs))
	for i := len(specs) - 1; i >= 0; i-- {
		s := specs[i]
		deps := []int{prevCompute}
		if statesStream && s.params > 0 {
			fetch := -1
			if statesOnSSD {
				fetch = b.add(sim.SSDBus, s.label+"/bwd-pread", units.TransferTime(units.Bytes(2*s.params/shard), r.bwS2M))
			}
			m2g := b.add(sim.PCIeM2G, s.label+"/bwd-pfetch", units.TransferTime(units.Bytes(2*s.params), r.bwG), fetch)
			deps = append(deps, m2g)
		}
		if s.actSwap > 0 {
			fetch := -1
			if ssdPart := units.Bytes(float64(s.actSwap) * (1 - d.hostFrac)); ssdPart > 0 {
				fetch = b.add(sim.SSDBus, s.label+"/act-read", units.TransferTime(ssdPart, r.bwS2M), actReady[i])
			}
			m2g := b.add(sim.PCIeM2G, s.label+"/act-in", units.TransferTime(s.actSwap, r.bwG), fetch, actReady[i])
			deps = append(deps, m2g)
		}
		c := b.add(sim.GPUCompute, s.label+"/bwd",
			units.ComputeTime(s.recomp+2*s.fwdFLOPs, r.thp), deps...)
		prevCompute = c
		// Gemini also evicts the chunk's working copy after backward.
		if p.HostStateThrash && s.params > 0 {
			b.add(sim.PCIeG2M, s.label+"/bwd-evict", units.TransferTime(units.Bytes(2*s.params), r.bwG), c)
		}

		gradArrival[i] = -1
		if s.params > 0 {
			switch {
			case p.Optimizer == strategy.OptCPU:
				g2m := b.add(sim.PCIeG2M, s.label+"/grad-out", units.TransferTime(units.Bytes(2*s.params), r.bwG), c)
				gradArrival[i] = g2m
				if statesOnSSD && p.GradMode == agoffload.Serialized {
					// ZeRO-Infinity spills gradients to SSD before the
					// optimizer stage rereads them.
					gradArrival[i] = b.add(sim.SSDBus, s.label+"/grad-spill", units.TransferTime(units.Bytes(2*s.params), r.bwM2S), g2m)
				}
			case p.Optimizer == strategy.OptGPU && statesOnSSD:
				// G10: gradients stay on GPU; the optimizer stage streams
				// states through the GPU below.
				gradArrival[i] = c
			}
		}
	}
	backwardTasks := len(b.tasks)

	// ---------- Optimizer ----------
	var deferredParams int64
	switch p.Optimizer {
	case strategy.OptCPU:
		var labels []string
		var params []int64
		var arrivals []int
		// Chunks are handled in gradient-arrival order — backward runs the
		// blocks in reverse, so the head-side blocks' handlers fire first
		// (§IV-C: "gradient tensors arrive ... with a decreasing index").
		for i := len(specs) - 1; i >= 0; i-- {
			s := specs[i]
			if s.params == 0 {
				continue
			}
			labels = append(labels, s.label)
			params = append(params, s.params/shard)
			arrivals = append(arrivals, gradArrival[i])
		}
		ssdRead, ssdWrite := r.bwS2M, r.bwM2S
		if !statesOnSSD {
			ssdRead, ssdWrite = 0, 0 // states resident in main memory
		}
		chunks, err := agoffload.ChunksForBlocks(labels, params, arrivals)
		if err != nil {
			return Report{}, err
		}
		tasks, next, _, deferred, err := agoffload.ScheduleWith(p.GradMode, chunks, b.next, agoffload.Rates{
			BWS2M: ssdRead, BWM2S: ssdWrite, AdamParamsPerSec: r.adam,
		}, p.OptSched)
		if err != nil {
			return Report{}, err
		}
		b.tasks = append(b.tasks, tasks...)
		b.next = next
		for _, c := range deferred {
			deferredParams += c.Params
		}
	case strategy.OptGPU:
		if statesOnSSD {
			// G10-style: stream 12 bytes/param in, update on GPU, stream
			// 14 bytes/param out, per block, pipelined, after backward.
			for i, s := range specs {
				if s.params == 0 {
					continue
				}
				read := b.add(sim.SSDBus, s.label+"/opt-sread", units.TransferTime(units.Bytes(12*s.params), r.bwS2M), gradArrival[i], prevCompute)
				in := b.add(sim.PCIeM2G, s.label+"/opt-sin", units.TransferTime(units.Bytes(12*s.params), r.bwG), read)
				upd := b.add(sim.GPUCompute, s.label+"/opt-gpu", units.ComputeTime(units.FLOPs(20*float64(s.params)), r.thp), in)
				out := b.add(sim.PCIeG2M, s.label+"/opt-sout", units.TransferTime(units.Bytes(14*s.params), r.bwG), upd)
				b.add(sim.SSDBus, s.label+"/opt-swrite", units.TransferTime(units.Bytes(14*s.params), r.bwM2S), out)
			}
		} else {
			// Everything resident: one in-core update.
			b.add(sim.GPUCompute, "opt-gpu", units.ComputeTime(units.FLOPs(20*float64(cfg.Params())), r.thp), prevCompute)
		}
	}

	res, err := sim.Run(b.tasks)
	if err != nil {
		return Report{}, err
	}

	rep := Report{
		Policy: p.Name, Model: cfg.Name, Batch: batch, GPUs: 1,
		AG2M: d.ag2m, AlphaBytes: d.alpha, FLOPr: d.flopr,
		Makespan: res.Makespan, Result: res,
		DeferredParams: deferredParams,
	}
	for id := 0; id < forwardTasks; id++ {
		if sp, ok := res.Spans[id]; ok && sp.Task.Resource == sim.GPUCompute && sp.End > rep.ForwardEnd {
			rep.ForwardEnd = sp.End
		}
	}
	for id := forwardTasks; id < backwardTasks; id++ {
		if sp, ok := res.Spans[id]; ok && sp.End > rep.BackwardEnd {
			rep.BackwardEnd = sp.End
		}
	}
	if rep.BackwardEnd < rep.ForwardEnd {
		rep.BackwardEnd = rep.ForwardEnd
	}
	rep.OptimizerTail = rep.Makespan - rep.BackwardEnd
	if rep.OptimizerTail < 0 {
		rep.OptimizerTail = 0
	}

	iter := float64(rep.Makespan)
	if iter > 0 {
		rep.TokensPerSec = float64(cfg.TokensPerIteration(batch)) / iter
		rep.ImagesPerSec = float64(cfg.ImagesPerIteration(batch)) / iter
		rep.TFLOPS = units.Throughput(3*cfg.ForwardFLOPs(batch), rep.Makespan).TFLOPSf()
		rep.GPUBusyFrac = res.Utilization(sim.GPUCompute)
		rep.OptimizerShare = float64(rep.OptimizerTail) / iter
	}
	return rep, nil
}

// builder allocates sequential task IDs.
type builder struct {
	tasks []sim.Task
	next  int
}

func newBuilder() *builder { return &builder{} }

// add appends a task; negative deps are skipped.
func (b *builder) add(res sim.ResourceID, label string, dur units.Seconds, deps ...int) int {
	var clean []int
	for _, d := range deps {
		if d >= 0 {
			clean = append(clean, d)
		}
	}
	id := b.next
	b.next++
	b.tasks = append(b.tasks, sim.Task{ID: id, Label: label, Resource: res, Duration: dur, Deps: clean})
	return id
}

// StageUtilization reports, per stage, the busy fraction of each resource
// within the stage window — the Fig. 1 annotation data.
func (r Report) StageUtilization() map[string]map[sim.ResourceID]float64 {
	windows := map[string][2]units.Seconds{
		"forward":   {0, r.ForwardEnd},
		"backward":  {r.ForwardEnd, r.BackwardEnd},
		"optimizer": {r.BackwardEnd, r.Makespan},
	}
	resources := []sim.ResourceID{sim.GPUCompute, sim.PCIeM2G, sim.PCIeG2M, sim.SSDBus, sim.CPUAdam}
	out := make(map[string]map[sim.ResourceID]float64, len(windows))
	for stage, w := range windows {
		span := w[1] - w[0]
		m := make(map[sim.ResourceID]float64, len(resources))
		for _, res := range resources {
			if span > 0 {
				m[res] = float64(r.Result.WindowBusy(res, w[0], w[1])) / float64(span)
			}
		}
		out[stage] = m
	}
	return out
}
