// Package nn implements a small but real decoder-only transformer with
// hand-written backward passes, used by the engine to run the paper's
// algorithms end-to-end at laptop scale.
//
// Mixed-precision discipline: every forward tensor is rounded onto the fp16
// grid when produced (the engine's P16/A16 tensors), so serializing an
// activation to binary16 bytes and restoring it is lossless, and
// recomputing a discarded activation reproduces it bit-for-bit. Gradients
// are computed in fp32 and rounded to fp16 (G16) at the offloading
// boundary. All kernels are deterministic.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"ratel/internal/tensor"
	"ratel/internal/tensor/pool"
)

// Linear is a dense layer y = x·W + b with gradient accumulators.
type Linear struct {
	Name   string
	W      *tensor.Tensor // [in, out]
	B      *tensor.Tensor // [out]
	DW, DB *tensor.Tensor

	// dwScr is Backward's weight-gradient staging buffer, reused across
	// steps. TMatMulInto fully overwrites it, so dirty reuse is
	// bit-transparent; it never escapes the method.
	dwScr *tensor.Tensor
}

// NewLinear initializes a linear layer with scaled-normal weights.
func NewLinear(name string, in, out int, rng *rand.Rand) *Linear {
	l := &Linear{
		Name: name,
		W:    tensor.New(in, out),
		B:    tensor.New(out),
		DW:   tensor.New(in, out),
		DB:   tensor.New(out),
	}
	l.W.RandInit(rng, 0.02)
	return l
}

// Forward computes y = x·W + b, rounded to the fp16 grid.
func (l *Linear) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	y, err := tensor.MatMul(x, l.W)
	if err != nil {
		return nil, fmt.Errorf("nn: %s: %w", l.Name, err)
	}
	if err := tensor.AddBias(y, l.B); err != nil {
		return nil, fmt.Errorf("nn: %s: %w", l.Name, err)
	}
	roundGrid(y)
	return y, nil
}

// Backward accumulates DW += xᵀ·dy and DB += Σrows(dy), returning
// dx = dy·Wᵀ.
func (l *Linear) Backward(x, dy *tensor.Tensor) (*tensor.Tensor, error) {
	if l.dwScr == nil {
		l.dwScr = tensor.New(l.W.Shape...)
	}
	if err := tensor.TMatMulInto(l.dwScr, x, dy); err != nil {
		return nil, fmt.Errorf("nn: %s backward: %w", l.Name, err)
	}
	if err := tensor.AddInPlace(l.DW, l.dwScr); err != nil {
		return nil, err
	}
	rows, cols, err := dy.Dims2()
	if err != nil {
		return nil, err
	}
	for i := 0; i < rows; i++ {
		row := dy.Data[i*cols : (i+1)*cols]
		for j, v := range row {
			l.DB.Data[j] += v
		}
	}
	dx, err := tensor.MatMulT(dy, l.W)
	if err != nil {
		return nil, fmt.Errorf("nn: %s backward: %w", l.Name, err)
	}
	return dx, nil
}

// Params lists the layer's parameter tensors paired with their gradients.
func (l *Linear) Params() []Param {
	return []Param{{l.Name + ".w", l.W, l.DW}, {l.Name + ".b", l.B, l.DB}}
}

// Param pairs a parameter tensor with its gradient accumulator.
type Param struct {
	Name string
	W    *tensor.Tensor
	G    *tensor.Tensor
}

// LayerNorm normalizes the last dimension with learnable scale and shift.
type LayerNorm struct {
	Name          string
	Gamma, Beta   *tensor.Tensor
	DGamma, DBeta *tensor.Tensor
	dim           int
	eps           float64
	xhat          []float64 // backward per-row scratch, fully rewritten each row
}

// NewLayerNorm initializes gamma=1, beta=0.
func NewLayerNorm(name string, dim int) *LayerNorm {
	ln := &LayerNorm{
		Name:  name,
		Gamma: tensor.New(dim), Beta: tensor.New(dim),
		DGamma: tensor.New(dim), DBeta: tensor.New(dim),
		dim: dim, eps: 1e-5,
	}
	for i := range ln.Gamma.Data {
		ln.Gamma.Data[i] = 1
	}
	return ln
}

// Forward normalizes each row of x [n, dim].
func (ln *LayerNorm) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	n, d, err := x.Dims2()
	if err != nil || d != ln.dim {
		return nil, fmt.Errorf("nn: %s: got %dx%d, want dim %d (%v)", ln.Name, n, d, ln.dim, err)
	}
	y := tensor.New(n, d)
	// Rows normalize independently (the per-row statistics are local), so
	// they shard across the worker pool bit-identically at any thread
	// count. Backward stays serial: it accumulates DGamma/DBeta across
	// rows, a reduction the determinism policy keeps off the pool.
	work := 4 * int64(n) * int64(d)
	if pool.InlineWork(work) {
		ln.forwardRows(x, y, d, 0, n)
	} else {
		pool.ForWork(n, 1, work, func(lo, hi int) { ln.forwardRows(x, y, d, lo, hi) })
	}
	roundGrid(y)
	return y, nil
}

func (ln *LayerNorm) forwardRows(x, y *tensor.Tensor, d, lo, hi int) {
	for i := lo; i < hi; i++ {
		row := x.Data[i*d : (i+1)*d]
		var mean float64
		for _, v := range row {
			mean += float64(v)
		}
		mean /= float64(d)
		var varsum float64
		for _, v := range row {
			diff := float64(v) - mean
			varsum += diff * diff
		}
		inv := 1 / math.Sqrt(varsum/float64(d)+ln.eps)
		out := y.Data[i*d : (i+1)*d]
		for j, v := range row {
			out[j] = float32((float64(v)-mean)*inv)*ln.Gamma.Data[j] + ln.Beta.Data[j]
		}
	}
}

// Backward recomputes the row statistics from x (deterministically) and
// returns dx while accumulating DGamma/DBeta.
func (ln *LayerNorm) Backward(x, dy *tensor.Tensor) (*tensor.Tensor, error) {
	n, d, err := x.Dims2()
	if err != nil || d != ln.dim {
		return nil, fmt.Errorf("nn: %s backward: bad shape", ln.Name)
	}
	dx := tensor.New(n, d)
	if len(ln.xhat) != d {
		ln.xhat = make([]float64, d)
	}
	xhat := ln.xhat
	for i := 0; i < n; i++ {
		row := x.Data[i*d : (i+1)*d]
		dyr := dy.Data[i*d : (i+1)*d]
		var mean float64
		for _, v := range row {
			mean += float64(v)
		}
		mean /= float64(d)
		var varsum float64
		for _, v := range row {
			diff := float64(v) - mean
			varsum += diff * diff
		}
		inv := 1 / math.Sqrt(varsum/float64(d)+ln.eps)

		var sumDyG, sumDyGX float64
		for j := range row {
			xhat[j] = (float64(row[j]) - mean) * inv
			dg := float64(dyr[j]) * float64(ln.Gamma.Data[j])
			sumDyG += dg
			sumDyGX += dg * xhat[j]
			ln.DGamma.Data[j] += dyr[j] * float32(xhat[j])
			ln.DBeta.Data[j] += dyr[j]
		}
		for j := range row {
			dg := float64(dyr[j]) * float64(ln.Gamma.Data[j])
			dx.Data[i*d+j] = float32(inv * (dg - sumDyG/float64(d) - xhat[j]*sumDyGX/float64(d)))
		}
	}
	return dx, nil
}

// Params lists the layer's parameters.
func (ln *LayerNorm) Params() []Param {
	return []Param{{ln.Name + ".gamma", ln.Gamma, ln.DGamma}, {ln.Name + ".beta", ln.Beta, ln.DBeta}}
}
