package nn

import (
	"fmt"
	"math"
	"math/rand"

	"ratel/internal/tensor"
	"ratel/internal/tensor/pool"
)

// Attention is multi-head causal self-attention.
type Attention struct {
	Name  string
	Heads int
	Dim   int
	QKV   *Linear // [d, 3d]
	Out   *Linear // [d, d]

	// scratch holds one headScratch per (batch, head) task, allocated on
	// first use and reused for the layer's lifetime: per-head temporaries
	// dominated steady-state allocation churn. Forward and Backward never run
	// concurrently on one layer, and each task touches only its own entry, so
	// no locking is needed.
	scratch    []headScratch
	scratchSeq int
}

// headScratch is one attention task's reusable temporaries. Every tensor is
// fully overwritten on each use (the Into kernels zero-or-write every cell,
// and dscores is explicitly zeroed before its causal fill), so reuse is
// bit-transparent.
type headScratch struct {
	q, k, v, out     *tensor.Tensor // [seq, dh]
	dout, dv, dq, dk *tensor.Tensor // [seq, dh]
	dprobs, dscores  *tensor.Tensor // [seq, seq]
}

// scratchFor returns the per-task scratch table for the given geometry,
// (re)allocating when batch or seq changed since the last call.
func (a *Attention) scratchFor(batch, seq int) []headScratch {
	if a.scratch != nil && a.scratchSeq == seq && len(a.scratch) == batch*a.Heads {
		return a.scratch
	}
	dh := a.Dim / a.Heads
	ws := make([]headScratch, batch*a.Heads)
	for i := range ws {
		ws[i] = headScratch{
			q: tensor.New(seq, dh), k: tensor.New(seq, dh), v: tensor.New(seq, dh),
			out: tensor.New(seq, dh), dout: tensor.New(seq, dh),
			dv: tensor.New(seq, dh), dq: tensor.New(seq, dh), dk: tensor.New(seq, dh),
			dprobs: tensor.New(seq, seq), dscores: tensor.New(seq, seq),
		}
	}
	a.scratch, a.scratchSeq = ws, seq
	return ws
}

// NewAttention builds a causal multi-head attention layer.
func NewAttention(name string, dim, heads int, rng *rand.Rand) (*Attention, error) {
	if dim%heads != 0 {
		return nil, fmt.Errorf("nn: %s: dim %d not divisible by %d heads", name, dim, heads)
	}
	return &Attention{
		Name:  name,
		Heads: heads,
		Dim:   dim,
		QKV:   NewLinear(name+".qkv", dim, 3*dim, rng),
		Out:   NewLinear(name+".out", dim, dim, rng),
	}, nil
}

// AttnCache holds the intermediates attention saves for backward (or
// recomputes when the planner chose recomputation).
type AttnCache struct {
	QKV *tensor.Tensor // [b*s, 3d]
	// Probs[b][h] is the post-softmax causal attention matrix [s, s].
	Probs [][]*tensor.Tensor
	Ctx   *tensor.Tensor // [b*s, d] pre-projection context
}

// Forward runs attention over x [b*s, d] with the given batch and sequence
// lengths.
func (a *Attention) Forward(x *tensor.Tensor, batch, seq int) (*tensor.Tensor, *AttnCache, error) {
	n, d, err := x.Dims2()
	if err != nil || d != a.Dim || n != batch*seq {
		return nil, nil, fmt.Errorf("nn: %s: input %dx%d for batch %d seq %d dim %d", a.Name, n, d, batch, seq, a.Dim)
	}
	qkv, err := a.QKV.Forward(x)
	if err != nil {
		return nil, nil, err
	}
	dh := d / a.Heads
	scale := float32(1 / math.Sqrt(float64(dh)))

	cache := &AttnCache{QKV: qkv, Probs: make([][]*tensor.Tensor, batch)}
	for bi := 0; bi < batch; bi++ {
		cache.Probs[bi] = make([]*tensor.Tensor, a.Heads)
	}
	ctx := tensor.New(n, d)
	ws := a.scratchFor(batch, seq)
	// Each (batch, head) task writes disjoint column slices of ctx, its own
	// cache.Probs cell, and its own scratch entry, so heads fan out across
	// the worker pool with bit-identical results at any thread count.
	err = a.forEachHead(batch, seq, func(bi, h int) error {
		w := &ws[bi*a.Heads+h]
		q, k, v := w.q, w.k, w.v
		for s := 0; s < seq; s++ {
			row := qkv.Data[(bi*seq+s)*3*d : (bi*seq+s+1)*3*d]
			copy(q.Data[s*dh:(s+1)*dh], row[h*dh:(h+1)*dh])
			copy(k.Data[s*dh:(s+1)*dh], row[d+h*dh:d+(h+1)*dh])
			copy(v.Data[s*dh:(s+1)*dh], row[2*d+h*dh:2*d+(h+1)*dh])
		}
		// scores is the one per-head tensor that survives the task: it is
		// retained as cache.Probs[bi][h], so it cannot come from scratch.
		scores := tensor.New(seq, seq)
		if err := tensor.MatMulTInto(scores, q, k); err != nil {
			return err
		}
		scores.Scale(scale)
		applyCausalMask(scores, seq)
		if err := tensor.SoftmaxRows(scores); err != nil {
			return err
		}
		roundGrid(scores)
		cache.Probs[bi][h] = scores
		if err := tensor.MatMulInto(w.out, scores, v); err != nil {
			return err
		}
		for s := 0; s < seq; s++ {
			copy(ctx.Data[(bi*seq+s)*d+h*dh:(bi*seq+s)*d+(h+1)*dh], w.out.Data[s*dh:(s+1)*dh])
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	roundGrid(ctx)
	cache.Ctx = ctx
	y, err := a.Out.Forward(ctx)
	if err != nil {
		return nil, nil, err
	}
	return y, cache, nil
}

func applyCausalMask(scores *tensor.Tensor, seq int) {
	negInf := float32(math.Inf(-1))
	for i := 0; i < seq; i++ {
		for j := i + 1; j < seq; j++ {
			scores.Data[i*seq+j] = negInf
		}
	}
}

// Backward propagates dy through attention given the layer input x and the
// forward cache, returning dx.
func (a *Attention) Backward(x *tensor.Tensor, cache *AttnCache, dy *tensor.Tensor, batch, seq int) (*tensor.Tensor, error) {
	d := a.Dim
	dh := d / a.Heads
	scale := float32(1 / math.Sqrt(float64(dh)))

	dctx, err := a.Out.Backward(cache.Ctx, dy)
	if err != nil {
		return nil, err
	}
	dqkv := tensor.New(batch*seq, 3*d)
	ws := a.scratchFor(batch, seq)
	// Each (batch, head) task writes disjoint column slices of dqkv and its
	// own scratch entry; the parameter-gradient accumulations (Out.Backward
	// above, QKV.Backward below) stay outside the parallel region.
	err = a.forEachHead(batch, seq, func(bi, h int) error {
		w := &ws[bi*a.Heads+h]
		// Re-slice q, k, v for this head.
		q, k, v := w.q, w.k, w.v
		for s := 0; s < seq; s++ {
			row := cache.QKV.Data[(bi*seq+s)*3*d : (bi*seq+s+1)*3*d]
			copy(q.Data[s*dh:(s+1)*dh], row[h*dh:(h+1)*dh])
			copy(k.Data[s*dh:(s+1)*dh], row[d+h*dh:d+(h+1)*dh])
			copy(v.Data[s*dh:(s+1)*dh], row[2*d+h*dh:2*d+(h+1)*dh])
		}
		probs := cache.Probs[bi][h]

		dout := w.dout
		for s := 0; s < seq; s++ {
			copy(dout.Data[s*dh:(s+1)*dh], dctx.Data[(bi*seq+s)*d+h*dh:(bi*seq+s)*d+(h+1)*dh])
		}
		// dV = probsᵀ·dout, dprobs = dout·vᵀ.
		dv := w.dv
		if err := tensor.TMatMulInto(dv, probs, dout); err != nil {
			return err
		}
		dprobs := w.dprobs
		if err := tensor.MatMulTInto(dprobs, dout, v); err != nil {
			return err
		}
		// Softmax backward per row: ds = (dp - Σ dp∘p) ∘ p, then the
		// 1/sqrt(dh) scale. Only the causal (lower) triangle is filled; the
		// explicit Zero restores the upper triangle the matmuls below read,
		// which a fresh allocation used to provide implicitly.
		dscores := w.dscores
		dscores.Zero()
		for i := 0; i < seq; i++ {
			var dot float64
			for j := 0; j <= i; j++ {
				dot += float64(dprobs.Data[i*seq+j]) * float64(probs.Data[i*seq+j])
			}
			for j := 0; j <= i; j++ {
				p := probs.Data[i*seq+j]
				dscores.Data[i*seq+j] = (dprobs.Data[i*seq+j] - float32(dot)) * p * scale
			}
		}
		// dQ = dscores·k, dK = dscoresᵀ·q.
		dq := w.dq
		if err := tensor.MatMulInto(dq, dscores, k); err != nil {
			return err
		}
		dk := w.dk
		if err := tensor.TMatMulInto(dk, dscores, q); err != nil {
			return err
		}
		for s := 0; s < seq; s++ {
			row := dqkv.Data[(bi*seq+s)*3*d : (bi*seq+s+1)*3*d]
			copy(row[h*dh:(h+1)*dh], dq.Data[s*dh:(s+1)*dh])
			copy(row[d+h*dh:d+(h+1)*dh], dk.Data[s*dh:(s+1)*dh])
			copy(row[2*d+h*dh:2*d+(h+1)*dh], dv.Data[s*dh:(s+1)*dh])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return a.QKV.Backward(x, dqkv)
}

// forEachHead runs fn for every (batch, head) pair, fanning tasks out
// across the worker pool when the per-head attention work is large enough
// to justify dispatch. Tasks must only write disjoint outputs; the first
// error (in task order) is returned.
func (a *Attention) forEachHead(batch, seq int, fn func(bi, h int) error) error {
	tasks := batch * a.Heads
	dh := a.Dim / a.Heads
	// Per head: two seq x seq x dh matmuls dominate (~4*seq*seq*dh ops).
	work := int64(tasks) * 4 * int64(seq) * int64(seq) * int64(dh)
	if work < pool.SerialCutoff || pool.Default().Limit() <= 1 {
		// Serial path: no error slice or dispatch closure; the first failing
		// task short-circuits the rest (their outputs are scratch).
		for t := 0; t < tasks; t++ {
			if err := fn(t/a.Heads, t%a.Heads); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, tasks)
	pool.Run(tasks, func(t int) {
		errs[t] = fn(t/a.Heads, t%a.Heads)
	})
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// Params lists attention's parameters.
func (a *Attention) Params() []Param {
	return append(a.QKV.Params(), a.Out.Params()...)
}
