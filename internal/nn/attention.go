package nn

import (
	"fmt"
	"math"
	"math/rand"

	"ratel/internal/tensor"
	"ratel/internal/tensor/pool"
)

// Attention is multi-head causal self-attention.
type Attention struct {
	Name  string
	Heads int
	Dim   int
	QKV   *Linear // [d, 3d]
	Out   *Linear // [d, d]
}

// NewAttention builds a causal multi-head attention layer.
func NewAttention(name string, dim, heads int, rng *rand.Rand) (*Attention, error) {
	if dim%heads != 0 {
		return nil, fmt.Errorf("nn: %s: dim %d not divisible by %d heads", name, dim, heads)
	}
	return &Attention{
		Name:  name,
		Heads: heads,
		Dim:   dim,
		QKV:   NewLinear(name+".qkv", dim, 3*dim, rng),
		Out:   NewLinear(name+".out", dim, dim, rng),
	}, nil
}

// AttnCache holds the intermediates attention saves for backward (or
// recomputes when the planner chose recomputation).
type AttnCache struct {
	QKV *tensor.Tensor // [b*s, 3d]
	// Probs[b][h] is the post-softmax causal attention matrix [s, s].
	Probs [][]*tensor.Tensor
	Ctx   *tensor.Tensor // [b*s, d] pre-projection context
}

// Forward runs attention over x [b*s, d] with the given batch and sequence
// lengths.
func (a *Attention) Forward(x *tensor.Tensor, batch, seq int) (*tensor.Tensor, *AttnCache, error) {
	n, d, err := x.Dims2()
	if err != nil || d != a.Dim || n != batch*seq {
		return nil, nil, fmt.Errorf("nn: %s: input %dx%d for batch %d seq %d dim %d", a.Name, n, d, batch, seq, a.Dim)
	}
	qkv, err := a.QKV.Forward(x)
	if err != nil {
		return nil, nil, err
	}
	dh := d / a.Heads
	scale := float32(1 / math.Sqrt(float64(dh)))

	cache := &AttnCache{QKV: qkv, Probs: make([][]*tensor.Tensor, batch)}
	for bi := 0; bi < batch; bi++ {
		cache.Probs[bi] = make([]*tensor.Tensor, a.Heads)
	}
	ctx := tensor.New(n, d)
	// Each (batch, head) task writes disjoint column slices of ctx and its
	// own cache.Probs cell, so heads fan out across the worker pool with
	// bit-identical results at any thread count.
	err = a.forEachHead(batch, seq, func(bi, h int) error {
		q := tensor.New(seq, dh)
		k := tensor.New(seq, dh)
		v := tensor.New(seq, dh)
		for s := 0; s < seq; s++ {
			row := qkv.Data[(bi*seq+s)*3*d : (bi*seq+s+1)*3*d]
			copy(q.Data[s*dh:(s+1)*dh], row[h*dh:(h+1)*dh])
			copy(k.Data[s*dh:(s+1)*dh], row[d+h*dh:d+(h+1)*dh])
			copy(v.Data[s*dh:(s+1)*dh], row[2*d+h*dh:2*d+(h+1)*dh])
		}
		scores, err := tensor.MatMulT(q, k)
		if err != nil {
			return err
		}
		scores.Scale(scale)
		applyCausalMask(scores, seq)
		if err := tensor.SoftmaxRows(scores); err != nil {
			return err
		}
		roundGrid(scores)
		cache.Probs[bi][h] = scores
		out, err := tensor.MatMul(scores, v)
		if err != nil {
			return err
		}
		for s := 0; s < seq; s++ {
			copy(ctx.Data[(bi*seq+s)*d+h*dh:(bi*seq+s)*d+(h+1)*dh], out.Data[s*dh:(s+1)*dh])
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	roundGrid(ctx)
	cache.Ctx = ctx
	y, err := a.Out.Forward(ctx)
	if err != nil {
		return nil, nil, err
	}
	return y, cache, nil
}

func applyCausalMask(scores *tensor.Tensor, seq int) {
	negInf := float32(math.Inf(-1))
	for i := 0; i < seq; i++ {
		for j := i + 1; j < seq; j++ {
			scores.Data[i*seq+j] = negInf
		}
	}
}

// Backward propagates dy through attention given the layer input x and the
// forward cache, returning dx.
func (a *Attention) Backward(x *tensor.Tensor, cache *AttnCache, dy *tensor.Tensor, batch, seq int) (*tensor.Tensor, error) {
	d := a.Dim
	dh := d / a.Heads
	scale := float32(1 / math.Sqrt(float64(dh)))

	dctx, err := a.Out.Backward(cache.Ctx, dy)
	if err != nil {
		return nil, err
	}
	dqkv := tensor.New(batch*seq, 3*d)
	// Each (batch, head) task writes disjoint column slices of dqkv; the
	// parameter-gradient accumulations (Out.Backward above, QKV.Backward
	// below) stay outside the parallel region.
	err = a.forEachHead(batch, seq, func(bi, h int) error {
		// Re-slice q, k, v for this head.
		q := tensor.New(seq, dh)
		k := tensor.New(seq, dh)
		v := tensor.New(seq, dh)
		for s := 0; s < seq; s++ {
			row := cache.QKV.Data[(bi*seq+s)*3*d : (bi*seq+s+1)*3*d]
			copy(q.Data[s*dh:(s+1)*dh], row[h*dh:(h+1)*dh])
			copy(k.Data[s*dh:(s+1)*dh], row[d+h*dh:d+(h+1)*dh])
			copy(v.Data[s*dh:(s+1)*dh], row[2*d+h*dh:2*d+(h+1)*dh])
		}
		probs := cache.Probs[bi][h]

		dout := tensor.New(seq, dh)
		for s := 0; s < seq; s++ {
			copy(dout.Data[s*dh:(s+1)*dh], dctx.Data[(bi*seq+s)*d+h*dh:(bi*seq+s)*d+(h+1)*dh])
		}
		// dV = probsᵀ·dout, dprobs = dout·vᵀ.
		dv, err := tensor.TMatMul(probs, dout)
		if err != nil {
			return err
		}
		dprobs, err := tensor.MatMulT(dout, v)
		if err != nil {
			return err
		}
		// Softmax backward per row: ds = (dp - Σ dp∘p) ∘ p, then the
		// 1/sqrt(dh) scale.
		dscores := tensor.New(seq, seq)
		for i := 0; i < seq; i++ {
			var dot float64
			for j := 0; j <= i; j++ {
				dot += float64(dprobs.Data[i*seq+j]) * float64(probs.Data[i*seq+j])
			}
			for j := 0; j <= i; j++ {
				p := probs.Data[i*seq+j]
				dscores.Data[i*seq+j] = (dprobs.Data[i*seq+j] - float32(dot)) * p * scale
			}
		}
		// dQ = dscores·k, dK = dscoresᵀ·q.
		dq, err := tensor.MatMul(dscores, k)
		if err != nil {
			return err
		}
		dk, err := tensor.TMatMul(dscores, q)
		if err != nil {
			return err
		}
		for s := 0; s < seq; s++ {
			row := dqkv.Data[(bi*seq+s)*3*d : (bi*seq+s+1)*3*d]
			copy(row[h*dh:(h+1)*dh], dq.Data[s*dh:(s+1)*dh])
			copy(row[d+h*dh:d+(h+1)*dh], dk.Data[s*dh:(s+1)*dh])
			copy(row[2*d+h*dh:2*d+(h+1)*dh], dv.Data[s*dh:(s+1)*dh])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return a.QKV.Backward(x, dqkv)
}

// forEachHead runs fn for every (batch, head) pair, fanning tasks out
// across the worker pool when the per-head attention work is large enough
// to justify dispatch. Tasks must only write disjoint outputs; the first
// error (in task order) is returned.
func (a *Attention) forEachHead(batch, seq int, fn func(bi, h int) error) error {
	tasks := batch * a.Heads
	dh := a.Dim / a.Heads
	// Per head: two seq x seq x dh matmuls dominate (~4*seq*seq*dh ops).
	work := int64(tasks) * 4 * int64(seq) * int64(seq) * int64(dh)
	errs := make([]error, tasks)
	run := func(t int) {
		errs[t] = fn(t/a.Heads, t%a.Heads)
	}
	if work < pool.SerialCutoff || pool.Default().Limit() <= 1 {
		for t := 0; t < tasks; t++ {
			run(t)
		}
	} else {
		pool.Run(tasks, run)
	}
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// Params lists attention's parameters.
func (a *Attention) Params() []Param {
	return append(a.QKV.Params(), a.Out.Params()...)
}
