package nn

import (
	"fmt"
	"math/rand"

	"ratel/internal/tensor"
)

// Block is one pre-norm transformer block:
// x -> ln1 -> attention -> +x -> ln2 -> mlp -> +res.
type Block struct {
	Name string
	LN1  *LayerNorm
	Attn *Attention
	LN2  *LayerNorm
	FC1  *Linear // [d, 4d]
	FC2  *Linear // [4d, d]
	// Drop, when active, applies counter-based dropout after the attention
	// projection (site) and the MLP output (site+1).
	Drop  *Dropout
	site  uint64
	batch int
	seq   int
}

// NewBlock builds a block for fixed batch/sequence geometry.
func NewBlock(name string, dim, heads, batch, seq int, rng *rand.Rand) (*Block, error) {
	attn, err := NewAttention(name+".attn", dim, heads, rng)
	if err != nil {
		return nil, err
	}
	return &Block{
		Name:  name,
		LN1:   NewLayerNorm(name+".ln1", dim),
		Attn:  attn,
		LN2:   NewLayerNorm(name+".ln2", dim),
		FC1:   NewLinear(name+".fc1", dim, 4*dim, rng),
		FC2:   NewLinear(name+".fc2", 4*dim, dim, rng),
		batch: batch, seq: seq,
	}, nil
}

// BlockCache holds the intermediates the block saves for backward. The
// engine may discard it (keeping only the block input) and rebuild it via
// Recompute — bit-identically, since every tensor is on the fp16 grid and
// all kernels are deterministic.
type BlockCache struct {
	X       *tensor.Tensor // block input
	LN1Out  *tensor.Tensor
	Attn    *AttnCache
	AttnY   *tensor.Tensor // attention projection output
	Res1    *tensor.Tensor // x + attnY
	LN2Out  *tensor.Tensor
	FC1Out  *tensor.Tensor
	GeluOut *tensor.Tensor
	Y       *tensor.Tensor // block output
}

// ActivationBytes is the fp16 footprint of the cache's saved tensors, the
// engine's A16 accounting for this block.
func (c *BlockCache) ActivationBytes() int64 {
	if c == nil {
		return 0
	}
	n := int64(0)
	for _, t := range []*tensor.Tensor{c.X, c.LN1Out, c.AttnY, c.Res1, c.LN2Out, c.FC1Out, c.GeluOut} {
		if t != nil {
			n += 2 * int64(t.Numel())
		}
	}
	if c.Attn != nil {
		n += 2 * int64(c.Attn.QKV.Numel())
		n += 2 * int64(c.Attn.Ctx.Numel())
		for _, hs := range c.Attn.Probs {
			for _, p := range hs {
				n += 2 * int64(p.Numel())
			}
		}
	}
	return n
}

// Forward runs the block and returns its output and cache.
func (b *Block) Forward(x *tensor.Tensor) (*tensor.Tensor, *BlockCache, error) {
	c := &BlockCache{X: x}
	var err error
	if c.LN1Out, err = b.LN1.Forward(x); err != nil {
		return nil, nil, err
	}
	if c.AttnY, c.Attn, err = b.Attn.Forward(c.LN1Out, b.batch, b.seq); err != nil {
		return nil, nil, err
	}
	if b.Drop.Active() {
		b.Drop.Apply(c.AttnY, b.site)
	}
	c.Res1 = x.Clone()
	if err := tensor.AddInPlace(c.Res1, c.AttnY); err != nil {
		return nil, nil, err
	}
	roundGrid(c.Res1)
	if c.LN2Out, err = b.LN2.Forward(c.Res1); err != nil {
		return nil, nil, err
	}
	if c.FC1Out, err = b.FC1.Forward(c.LN2Out); err != nil {
		return nil, nil, err
	}
	c.GeluOut = tensor.GELU(c.FC1Out)
	roundGrid(c.GeluOut)
	fc2, err := b.FC2.Forward(c.GeluOut)
	if err != nil {
		return nil, nil, err
	}
	if b.Drop.Active() {
		b.Drop.Apply(fc2, b.site+1)
	}
	c.Y = c.Res1.Clone()
	if err := tensor.AddInPlace(c.Y, fc2); err != nil {
		return nil, nil, err
	}
	roundGrid(c.Y)
	return c.Y, c, nil
}

// Recompute rebuilds the cache from the block input (activation
// recomputation, §II).
func (b *Block) Recompute(x *tensor.Tensor) (*BlockCache, error) {
	_, c, err := b.Forward(x)
	return c, err
}

// Backward propagates dy through the block using the cache, accumulating
// parameter gradients and returning dx.
func (b *Block) Backward(c *BlockCache, dy *tensor.Tensor) (*tensor.Tensor, error) {
	if c == nil {
		return nil, fmt.Errorf("nn: %s: backward without cache", b.Name)
	}
	// Residual 2: y = res1 + drop(fc2(gelu(fc1(ln2(res1))))).
	dfc2 := dy
	if b.Drop.Active() {
		dfc2 = dy.Clone()
		b.Drop.Backward(dfc2, b.site+1)
	}
	dgelu, err := b.FC2.Backward(c.GeluOut, dfc2)
	if err != nil {
		return nil, err
	}
	dfc1, err := tensor.GELUBackward(c.FC1Out, dgelu)
	if err != nil {
		return nil, err
	}
	dln2, err := b.FC1.Backward(c.LN2Out, dfc1)
	if err != nil {
		return nil, err
	}
	dres1, err := b.LN2.Backward(c.Res1, dln2)
	if err != nil {
		return nil, err
	}
	if err := tensor.AddInPlace(dres1, dy); err != nil { // residual path
		return nil, err
	}
	// Residual 1: res1 = x + drop(attn(ln1(x))).
	dattnY := dres1
	if b.Drop.Active() {
		dattnY = dres1.Clone()
		b.Drop.Backward(dattnY, b.site)
	}
	dln1, err := b.Attn.Backward(c.LN1Out, c.Attn, dattnY, b.batch, b.seq)
	if err != nil {
		return nil, err
	}
	dx, err := b.LN1.Backward(c.X, dln1)
	if err != nil {
		return nil, err
	}
	if err := tensor.AddInPlace(dx, dres1); err != nil { // residual path
		return nil, err
	}
	return dx, nil
}

// Params lists all block parameters in a stable order.
func (b *Block) Params() []Param {
	var ps []Param
	ps = append(ps, b.LN1.Params()...)
	ps = append(ps, b.Attn.Params()...)
	ps = append(ps, b.LN2.Params()...)
	ps = append(ps, b.FC1.Params()...)
	ps = append(ps, b.FC2.Params()...)
	return ps
}
