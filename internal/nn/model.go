package nn

import (
	"fmt"
	"math"
	"math/rand"

	"ratel/internal/tensor"
)

// Config sizes a mini decoder-only language model.
type Config struct {
	Vocab  int
	Seq    int
	Hidden int
	Heads  int
	Layers int
	Batch  int
	Seed   int64
	// Dropout, when positive, enables counter-based dropout after the
	// attention projection and the MLP of every block. Masks are a pure
	// function of (seed, step, site, element), so recomputation replays
	// them exactly.
	Dropout float64
	// TieEmbeddings shares the LM head's weight matrix with the token
	// embedding (the paper's models tie them, which is why the head adds no
	// parameters to P and no optimizer work of its own).
	TieEmbeddings bool
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	switch {
	case c.Vocab < 2 || c.Seq < 1 || c.Hidden < 1 || c.Heads < 1 || c.Layers < 1 || c.Batch < 1:
		return fmt.Errorf("nn: non-positive dimension in %+v", c)
	case c.Hidden%c.Heads != 0:
		return fmt.Errorf("nn: hidden %d not divisible by heads %d", c.Hidden, c.Heads)
	}
	return nil
}

// Model is the mini GPT.
type Model struct {
	Cfg     Config
	TokEmb  *tensor.Tensor // [V, d]
	PosEmb  *tensor.Tensor // [S, d]
	DTokEmb *tensor.Tensor
	DPosEmb *tensor.Tensor
	Blocks  []*Block
	FinalLN *LayerNorm
	Head    *Linear // [d, V]

	step uint64 // forward-pass counter driving dropout masks
	drop *Dropout

	// params caches the flat parameter list: the model's structure is fixed
	// after construction, and per-step callers (ZeroGrads) must not rebuild
	// the per-layer slices every iteration.
	params []Param
}

// NextStep advances the dropout counter; call once per training pass
// (recomputation within a pass replays the same masks).
func (m *Model) NextStep() { m.step++ }

// Step reports the forward-pass counter, for checkpointing.
func (m *Model) Step() uint64 { return m.step }

// SetStep restores the forward-pass counter from a checkpoint.
func (m *Model) SetStep(s uint64) { m.step = s }

// NewModel builds and deterministically initializes a model.
func NewModel(cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{
		Cfg:     cfg,
		TokEmb:  tensor.New(cfg.Vocab, cfg.Hidden),
		PosEmb:  tensor.New(cfg.Seq, cfg.Hidden),
		DTokEmb: tensor.New(cfg.Vocab, cfg.Hidden),
		DPosEmb: tensor.New(cfg.Seq, cfg.Hidden),
		FinalLN: NewLayerNorm("final_ln", cfg.Hidden),
		Head:    NewLinear("head", cfg.Hidden, cfg.Vocab, rng),
	}
	m.TokEmb.RandInit(rng, 0.02)
	m.PosEmb.RandInit(rng, 0.02)
	if cfg.Dropout > 0 {
		if cfg.Dropout >= 1 {
			return nil, fmt.Errorf("nn: dropout %v would drop everything", cfg.Dropout)
		}
		m.drop = &Dropout{P: float32(cfg.Dropout), Seed: uint64(cfg.Seed) ^ 0x5261_7465_6c21, Step: &m.step}
	}
	for i := 0; i < cfg.Layers; i++ {
		b, err := NewBlock(fmt.Sprintf("block%d", i), cfg.Hidden, cfg.Heads, cfg.Batch, cfg.Seq, rng)
		if err != nil {
			return nil, err
		}
		b.Drop = m.drop
		b.site = uint64(i) * 4
		m.Blocks = append(m.Blocks, b)
	}
	return m, nil
}

// Embed produces the input activations for token batch tokens
// [batch][seq], rounded to the fp16 grid.
func (m *Model) Embed(tokens [][]int) (*tensor.Tensor, error) {
	cfg := m.Cfg
	if len(tokens) != cfg.Batch {
		return nil, fmt.Errorf("nn: batch %d, want %d", len(tokens), cfg.Batch)
	}
	x := tensor.New(cfg.Batch*cfg.Seq, cfg.Hidden)
	for bi, row := range tokens {
		if len(row) != cfg.Seq {
			return nil, fmt.Errorf("nn: sequence %d has %d tokens, want %d", bi, len(row), cfg.Seq)
		}
		for s, tok := range row {
			if tok < 0 || tok >= cfg.Vocab {
				return nil, fmt.Errorf("nn: token %d out of vocabulary", tok)
			}
			dst := x.Data[(bi*cfg.Seq+s)*cfg.Hidden : (bi*cfg.Seq+s+1)*cfg.Hidden]
			for j := 0; j < cfg.Hidden; j++ {
				dst[j] = m.TokEmb.Data[tok*cfg.Hidden+j] + m.PosEmb.Data[s*cfg.Hidden+j]
			}
		}
	}
	roundGrid(x)
	return x, nil
}

// EmbedBackward accumulates embedding gradients from dx.
func (m *Model) EmbedBackward(tokens [][]int, dx *tensor.Tensor) error {
	cfg := m.Cfg
	for bi, row := range tokens {
		for s, tok := range row {
			src := dx.Data[(bi*cfg.Seq+s)*cfg.Hidden : (bi*cfg.Seq+s+1)*cfg.Hidden]
			for j := 0; j < cfg.Hidden; j++ {
				m.DTokEmb.Data[tok*cfg.Hidden+j] += src[j]
				m.DPosEmb.Data[s*cfg.Hidden+j] += src[j]
			}
		}
	}
	return nil
}

// HeadForward applies the final layer norm and LM head. With tied
// embeddings the logits are lnOut·TokEmbᵀ; otherwise a separate projection.
func (m *Model) HeadForward(x *tensor.Tensor) (lnOut, logits *tensor.Tensor, err error) {
	lnOut, err = m.FinalLN.Forward(x)
	if err != nil {
		return nil, nil, err
	}
	if m.Cfg.TieEmbeddings {
		logits, err = tensor.MatMulT(lnOut, m.TokEmb)
		if err != nil {
			return nil, nil, err
		}
		roundGrid(logits)
		return lnOut, logits, nil
	}
	logits, err = m.Head.Forward(lnOut)
	if err != nil {
		return nil, nil, err
	}
	return lnOut, logits, nil
}

// HeadBackward propagates dlogits through the head and final norm.
func (m *Model) HeadBackward(x, lnOut, dlogits *tensor.Tensor) (*tensor.Tensor, error) {
	var dln *tensor.Tensor
	var err error
	if m.Cfg.TieEmbeddings {
		// dTokEmb += dlogitsᵀ·lnOut; dln = dlogits·TokEmb.
		demb, err := tensor.TMatMul(dlogits, lnOut)
		if err != nil {
			return nil, err
		}
		if err := tensor.AddInPlace(m.DTokEmb, demb); err != nil {
			return nil, err
		}
		if dln, err = tensor.MatMul(dlogits, m.TokEmb); err != nil {
			return nil, err
		}
	} else {
		if dln, err = m.Head.Backward(lnOut, dlogits); err != nil {
			return nil, err
		}
	}
	return m.FinalLN.Backward(x, dln)
}

// CrossEntropy computes the mean next-token loss and dlogits for targets
// [batch][seq].
func CrossEntropy(logits *tensor.Tensor, targets [][]int) (float64, *tensor.Tensor, error) {
	n, v, err := logits.Dims2()
	if err != nil {
		return 0, nil, err
	}
	flat := make([]int, 0, n)
	for _, row := range targets {
		flat = append(flat, row...)
	}
	if len(flat) != n {
		return 0, nil, fmt.Errorf("nn: %d targets for %d positions", len(flat), n)
	}
	dlogits := tensor.New(n, v)
	var loss float64
	for i := 0; i < n; i++ {
		row := logits.Data[i*v : (i+1)*v]
		max := row[0]
		for _, val := range row {
			if val > max {
				max = val
			}
		}
		var sum float64
		for _, val := range row {
			sum += math.Exp(float64(val - max))
		}
		logZ := math.Log(sum) + float64(max)
		tgt := flat[i]
		if tgt < 0 || tgt >= v {
			return 0, nil, fmt.Errorf("nn: target %d out of vocabulary", tgt)
		}
		loss += logZ - float64(row[tgt])
		invN := 1 / float64(n)
		for j := 0; j < v; j++ {
			p := math.Exp(float64(row[j])-logZ) * invN
			dlogits.Data[i*v+j] = float32(p)
		}
		dlogits.Data[i*v+tgt] -= float32(invN)
	}
	return loss / float64(n), dlogits, nil
}

// Params lists every parameter in a stable order: embeddings, blocks, final
// norm, head. The returned slice is cached and shared — treat it as
// read-only.
func (m *Model) Params() []Param {
	if m.params == nil {
		ps := []Param{
			{"tok_emb", m.TokEmb, m.DTokEmb},
			{"pos_emb", m.PosEmb, m.DPosEmb},
		}
		for _, b := range m.Blocks {
			ps = append(ps, b.Params()...)
		}
		ps = append(ps, m.FinalLN.Params()...)
		if !m.Cfg.TieEmbeddings {
			ps = append(ps, m.Head.Params()...)
		}
		m.params = ps
	}
	return m.params
}

// ParamGroups partitions parameters into the offloading/optimizer chunks
// the engine streams: one group per block, plus an embedding group and a
// head group (Table II's per-tensor lifecycle at block granularity).
func (m *Model) ParamGroups() []ParamGroup {
	groups := []ParamGroup{{Name: "embedding", Params: []Param{
		{"tok_emb", m.TokEmb, m.DTokEmb},
		{"pos_emb", m.PosEmb, m.DPosEmb},
	}}}
	for _, b := range m.Blocks {
		groups = append(groups, ParamGroup{Name: b.Name, Params: b.Params()})
	}
	head := ParamGroup{Name: "head"}
	head.Params = append(head.Params, m.FinalLN.Params()...)
	if !m.Cfg.TieEmbeddings {
		head.Params = append(head.Params, m.Head.Params()...)
	}
	return append(groups, head)
}

// ParamGroup is a named set of parameters streamed and updated together.
type ParamGroup struct {
	Name   string
	Params []Param
}

// NumParams is the group's total parameter count.
func (g ParamGroup) NumParams() int {
	n := 0
	for _, p := range g.Params {
		n += p.W.Numel()
	}
	return n
}

// ZeroGrads clears all gradient accumulators.
func (m *Model) ZeroGrads() {
	for _, p := range m.Params() {
		p.G.Zero()
	}
}

// NumParams is the model's total parameter count.
func (m *Model) NumParams() int {
	n := 0
	for _, p := range m.Params() {
		n += p.W.Numel()
	}
	return n
}

// RoundParamsFP16 rounds every parameter onto the fp16 grid — the engine
// keeps the working copies as P16, with fp32 masters in the optimizer.
func (m *Model) RoundParamsFP16() {
	for _, p := range m.Params() {
		p.W.RoundFP16InPlace()
	}
}
