package nn

import (
	"fmt"

	"ratel/internal/tensor"
)

// ForwardBackward runs one full training pass: embed, blocks, head, loss,
// and the reverse sweep, accumulating gradients. Blocks whose index is in
// recompute have their caches discarded after forward and rebuilt from the
// saved block input during backward (activation recomputation, §II); the
// result is bit-identical either way.
//
// Gradients crossing block boundaries are rounded to the fp16 grid, the
// engine's G16 representation, so in-memory and offloaded training agree
// exactly.
func (m *Model) ForwardBackward(tokens, targets [][]int, recompute map[int]bool) (float64, error) {
	m.NextStep()
	x, err := m.Embed(tokens)
	if err != nil {
		return 0, err
	}
	inputs := make([]*tensor.Tensor, len(m.Blocks))
	caches := make([]*BlockCache, len(m.Blocks))
	h := x
	for i, b := range m.Blocks {
		inputs[i] = h
		y, c, err := b.Forward(h)
		if err != nil {
			return 0, err
		}
		if recompute[i] {
			caches[i] = nil // discarded; rebuilt during backward
		} else {
			caches[i] = c
		}
		h = y
	}
	lnOut, logits, err := m.HeadForward(h)
	if err != nil {
		return 0, err
	}
	loss, dlogits, err := CrossEntropy(logits, targets)
	if err != nil {
		return 0, err
	}
	dh, err := m.HeadBackward(h, lnOut, dlogits)
	if err != nil {
		return 0, err
	}
	roundGrid(dh)
	for i := len(m.Blocks) - 1; i >= 0; i-- {
		c := caches[i]
		if c == nil {
			if c, err = m.Blocks[i].Recompute(inputs[i]); err != nil {
				return 0, fmt.Errorf("nn: recompute block %d: %w", i, err)
			}
		}
		dx, err := m.Blocks[i].Backward(c, dh)
		if err != nil {
			return 0, err
		}
		roundGrid(dx)
		dh = dx
	}
	if err := m.EmbedBackward(tokens, dh); err != nil {
		return 0, err
	}
	return loss, nil
}
