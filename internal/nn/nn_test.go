package nn

import (
	"math"
	"math/rand"
	"testing"

	"ratel/internal/tensor"
)

func tinyConfig() Config {
	return Config{Vocab: 11, Seq: 6, Hidden: 8, Heads: 2, Layers: 2, Batch: 2, Seed: 42}
}

func randomData(cfg Config, seed int64) (tokens, targets [][]int) {
	rng := rand.New(rand.NewSource(seed))
	tokens = make([][]int, cfg.Batch)
	targets = make([][]int, cfg.Batch)
	for b := range tokens {
		tokens[b] = make([]int, cfg.Seq)
		targets[b] = make([]int, cfg.Seq)
		for s := range tokens[b] {
			tokens[b][s] = rng.Intn(cfg.Vocab)
			targets[b][s] = rng.Intn(cfg.Vocab)
		}
	}
	return tokens, targets
}

// TestNumericalGradients validates every analytic gradient in the model
// against central finite differences (with fp16-grid rounding disabled so
// the loss is locally smooth).
func TestNumericalGradients(t *testing.T) {
	defer SetFP16Grid(SetFP16Grid(false))
	cfg := tinyConfig()
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tokens, targets := randomData(cfg, 1)
	m.ZeroGrads()
	if _, err := m.ForwardBackward(tokens, targets, nil); err != nil {
		t.Fatal(err)
	}

	lossAt := func() float64 {
		saved := map[string][]float32{}
		for _, p := range m.Params() {
			saved[p.Name] = append([]float32(nil), p.G.Data...)
			p.G.Zero()
		}
		loss, err := m.ForwardBackward(tokens, targets, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range m.Params() {
			copy(p.G.Data, saved[p.Name])
		}
		return loss
	}

	rng := rand.New(rand.NewSource(2))
	const h = 1e-3
	checked := 0
	for _, p := range m.Params() {
		// Sample a few coordinates per parameter tensor.
		for k := 0; k < 3 && k < p.W.Numel(); k++ {
			i := rng.Intn(p.W.Numel())
			analytic := float64(p.G.Data[i])
			orig := p.W.Data[i]
			p.W.Data[i] = orig + h
			up := lossAt()
			p.W.Data[i] = orig - h
			down := lossAt()
			p.W.Data[i] = orig
			numeric := (up - down) / (2 * h)
			tol := 1e-3 + 2e-2*math.Max(math.Abs(analytic), math.Abs(numeric))
			if math.Abs(analytic-numeric) > tol {
				t.Errorf("%s[%d]: analytic %.6f vs numeric %.6f", p.Name, i, analytic, numeric)
			}
			checked++
		}
	}
	if checked < 30 {
		t.Fatalf("only %d gradient coordinates checked", checked)
	}
}

// TestRecomputeEquivalence: discarding and recomputing block caches yields
// bit-identical gradients (the engine's correctness premise for activation
// recomputation).
func TestRecomputeEquivalence(t *testing.T) {
	cfg := tinyConfig()
	tokens, targets := randomData(cfg, 3)

	run := func(recompute map[int]bool) (float64, map[string][]float32) {
		m, err := NewModel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m.RoundParamsFP16()
		m.ZeroGrads()
		loss, err := m.ForwardBackward(tokens, targets, recompute)
		if err != nil {
			t.Fatal(err)
		}
		grads := map[string][]float32{}
		for _, p := range m.Params() {
			grads[p.Name] = append([]float32(nil), p.G.Data...)
		}
		return loss, grads
	}

	lossKeep, gradsKeep := run(nil)
	lossRec, gradsRec := run(map[int]bool{0: true, 1: true})
	if lossKeep != lossRec {
		t.Fatalf("loss differs: %v vs %v", lossKeep, lossRec)
	}
	for name, g := range gradsKeep {
		for i := range g {
			if g[i] != gradsRec[name][i] {
				t.Fatalf("gradient %s[%d] differs: %v vs %v", name, i, g[i], gradsRec[name][i])
			}
		}
	}
}

// TestDeterminism: two identical runs produce identical losses and grads.
func TestDeterminism(t *testing.T) {
	cfg := tinyConfig()
	tokens, targets := randomData(cfg, 4)
	losses := [2]float64{}
	for trial := 0; trial < 2; trial++ {
		m, err := NewModel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		loss, err := m.ForwardBackward(tokens, targets, nil)
		if err != nil {
			t.Fatal(err)
		}
		losses[trial] = loss
	}
	if losses[0] != losses[1] {
		t.Fatalf("nondeterministic loss: %v vs %v", losses[0], losses[1])
	}
}

// TestLossDecreasesUnderSGD: a few plain-SGD steps reduce the loss on a
// fixed batch.
func TestLossDecreasesUnderSGD(t *testing.T) {
	cfg := tinyConfig()
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tokens, targets := randomData(cfg, 5)
	var first, last float64
	for step := 0; step < 8; step++ {
		m.ZeroGrads()
		loss, err := m.ForwardBackward(tokens, targets, nil)
		if err != nil {
			t.Fatal(err)
		}
		if step == 0 {
			first = loss
		}
		last = loss
		for _, p := range m.Params() {
			for i := range p.W.Data {
				p.W.Data[i] -= 0.05 * p.G.Data[i]
			}
		}
	}
	if last >= first {
		t.Fatalf("loss did not decrease: %.4f -> %.4f", first, last)
	}
}

// TestActivationBytesAccounting: a cache's fp16 footprint is positive and
// scales with tokens.
func TestActivationBytesAccounting(t *testing.T) {
	cfg := tinyConfig()
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tokens, _ := randomData(cfg, 6)
	x, err := m.Embed(tokens)
	if err != nil {
		t.Fatal(err)
	}
	_, c, err := m.Blocks[0].Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if c.ActivationBytes() <= 0 {
		t.Error("non-positive activation accounting")
	}
	var nilCache *BlockCache
	if nilCache.ActivationBytes() != 0 {
		t.Error("nil cache should account zero bytes")
	}
}

// TestParamGroupsCoverAllParams: groups partition the parameter set.
func TestParamGroupsCoverAllParams(t *testing.T) {
	m, err := NewModel(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, g := range m.ParamGroups() {
		total += g.NumParams()
	}
	if total != m.NumParams() {
		t.Errorf("groups cover %d params, model has %d", total, m.NumParams())
	}
	if len(m.ParamGroups()) != m.Cfg.Layers+2 {
		t.Errorf("groups = %d, want layers+2", len(m.ParamGroups()))
	}
}

// TestCausalMasking: changing a future token must not affect earlier
// positions' logits.
func TestCausalMasking(t *testing.T) {
	cfg := tinyConfig()
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tokens, _ := randomData(cfg, 7)
	logitsFor := func() *tensor.Tensor {
		x, err := m.Embed(tokens)
		if err != nil {
			t.Fatal(err)
		}
		h := x
		for _, b := range m.Blocks {
			y, _, err := b.Forward(h)
			if err != nil {
				t.Fatal(err)
			}
			h = y
		}
		_, logits, err := m.HeadForward(h)
		if err != nil {
			t.Fatal(err)
		}
		return logits
	}
	before := logitsFor().Clone()
	tokens[0][cfg.Seq-1] = (tokens[0][cfg.Seq-1] + 1) % cfg.Vocab
	after := logitsFor()
	v := cfg.Vocab
	// Positions 0..seq-2 of sequence 0 must be unchanged.
	for s := 0; s < cfg.Seq-1; s++ {
		for j := 0; j < v; j++ {
			if before.Data[s*v+j] != after.Data[s*v+j] {
				t.Fatalf("future token leaked into position %d", s)
			}
		}
	}
}

// TestValidationErrors covers the input checks.
func TestValidationErrors(t *testing.T) {
	if _, err := NewModel(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := NewModel(Config{Vocab: 4, Seq: 2, Hidden: 5, Heads: 2, Layers: 1, Batch: 1}); err == nil {
		t.Error("indivisible heads accepted")
	}
	cfg := tinyConfig()
	m, _ := NewModel(cfg)
	if _, err := m.Embed([][]int{{0}}); err == nil {
		t.Error("wrong batch accepted")
	}
	if _, err := m.Embed(make([][]int, cfg.Batch)); err == nil {
		t.Error("short sequences accepted")
	}
	bad := make([][]int, cfg.Batch)
	for i := range bad {
		bad[i] = make([]int, cfg.Seq)
		bad[i][0] = cfg.Vocab + 5
	}
	if _, err := m.Embed(bad); err == nil {
		t.Error("out-of-vocab token accepted")
	}
	logits := tensor.New(2, cfg.Vocab)
	if _, _, err := CrossEntropy(logits, [][]int{{0, 1, 2}}); err == nil {
		t.Error("target count mismatch accepted")
	}
	if _, _, err := CrossEntropy(logits, [][]int{{99}, {0}}); err == nil {
		t.Error("out-of-vocab target accepted")
	}
}

// TestTiedEmbeddingsGradients: with weight tying, the head contributes its
// gradient to the token embedding; finite differences confirm the combined
// gradient.
func TestTiedEmbeddingsGradients(t *testing.T) {
	defer SetFP16Grid(SetFP16Grid(false))
	cfg := tinyConfig()
	cfg.TieEmbeddings = true
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tokens, targets := randomData(cfg, 23)
	m.ZeroGrads()
	if _, err := m.ForwardBackward(tokens, targets, nil); err != nil {
		t.Fatal(err)
	}
	// No head parameters exposed under tying.
	for _, p := range m.Params() {
		if p.Name == "head.w" || p.Name == "head.b" {
			t.Fatal("tied model exposes head parameters")
		}
	}
	// Spot-check embedding gradients numerically (they now carry both the
	// embedding and the head contribution).
	const h = 1e-3
	for _, i := range []int{0, 5, 33} {
		analytic := float64(m.DTokEmb.Data[i])
		orig := m.TokEmb.Data[i]
		lossAt := func(v float32) float64 {
			m.TokEmb.Data[i] = v
			saved := append([]float32(nil), m.DTokEmb.Data...)
			m.ZeroGrads()
			loss, err := m.ForwardBackward(tokens, targets, nil)
			if err != nil {
				t.Fatal(err)
			}
			copy(m.DTokEmb.Data, saved)
			return loss
		}
		up := lossAt(orig + h)
		down := lossAt(orig - h)
		m.TokEmb.Data[i] = orig
		numeric := (up - down) / (2 * h)
		tol := 1e-3 + 2e-2*math.Max(math.Abs(analytic), math.Abs(numeric))
		if math.Abs(analytic-numeric) > tol {
			t.Errorf("tied tok_emb[%d]: analytic %.6f vs numeric %.6f", i, analytic, numeric)
		}
	}
}

// TestTiedModelTrainsAndGenerates: the tied configuration runs the full
// loop, with fewer parameters than the untied one.
func TestTiedModelTrainsAndGenerates(t *testing.T) {
	cfg := tinyConfig()
	untied, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.TieEmbeddings = true
	tied, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tied.NumParams() >= untied.NumParams() {
		t.Errorf("tied params %d should be fewer than untied %d", tied.NumParams(), untied.NumParams())
	}
	tokens, targets := randomData(cfg, 29)
	var first, last float64
	for s := 0; s < 8; s++ {
		tied.ZeroGrads()
		loss, err := tied.ForwardBackward(tokens, targets, nil)
		if err != nil {
			t.Fatal(err)
		}
		if s == 0 {
			first = loss
		}
		last = loss
		for _, p := range tied.Params() {
			for i := range p.W.Data {
				p.W.Data[i] -= 0.05 * p.G.Data[i]
			}
		}
	}
	if last >= first {
		t.Fatalf("tied model did not learn: %.4f -> %.4f", first, last)
	}
	if _, err := tied.Generate([]int{1, 2}, 2); err != nil {
		t.Fatal(err)
	}
}
