package nn

import (
	"math"
	"testing"

	"ratel/internal/tensor"
)

func dropConfig(p float64) Config {
	cfg := tinyConfig()
	cfg.Dropout = p
	return cfg
}

func TestDropoutMasksAreDeterministic(t *testing.T) {
	step := uint64(3)
	d := &Dropout{P: 0.5, Seed: 7, Step: &step}
	a := tensor.New(4, 8)
	b := tensor.New(4, 8)
	for i := range a.Data {
		a.Data[i] = 1
		b.Data[i] = 1
	}
	d.Apply(a, 2)
	d.Apply(b, 2)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("same (seed, step, site) produced different masks")
		}
	}
	// A different step yields a different mask.
	step = 4
	c := tensor.New(4, 8)
	for i := range c.Data {
		c.Data[i] = 1
	}
	d.Apply(c, 2)
	same := true
	for i := range a.Data {
		if a.Data[i] != c.Data[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different steps produced identical masks")
	}
}

func TestDropoutRate(t *testing.T) {
	step := uint64(1)
	d := &Dropout{P: 0.3, Seed: 11, Step: &step}
	x := tensor.New(100, 100)
	for i := range x.Data {
		x.Data[i] = 1
	}
	d.Apply(x, 0)
	zeros := 0
	for _, v := range x.Data {
		if v == 0 {
			zeros++
		}
	}
	frac := float64(zeros) / float64(len(x.Data))
	if math.Abs(frac-0.3) > 0.02 {
		t.Errorf("drop fraction = %.3f, want ~0.30", frac)
	}
	// Survivors are scaled by 1/(1-p).
	want := tensor.RoundFP16(1 / 0.7)
	for _, v := range x.Data {
		if v != 0 && v != want {
			t.Fatalf("survivor = %v, want %v", v, want)
		}
	}
}

func TestDropoutBackwardMatchesForwardMask(t *testing.T) {
	step := uint64(5)
	d := &Dropout{P: 0.4, Seed: 3, Step: &step}
	x := tensor.New(8, 8)
	dy := tensor.New(8, 8)
	for i := range x.Data {
		x.Data[i] = 1
		dy.Data[i] = 1
	}
	d.Apply(x, 1)
	d.Backward(dy, 1)
	for i := range x.Data {
		if (x.Data[i] == 0) != (dy.Data[i] == 0) {
			t.Fatal("backward mask differs from forward mask")
		}
	}
}

func TestInactiveDropoutIsIdentity(t *testing.T) {
	var d *Dropout
	if d.Active() {
		t.Error("nil dropout active")
	}
	x := tensor.New(2, 2)
	x.Data[0] = 5
	d.Apply(x, 0) // must not panic
	if x.Data[0] != 5 {
		t.Error("nil dropout modified data")
	}
}

// TestDropoutRecomputeEquivalence is the critical property: with dropout
// enabled, recomputing a block replays exactly the masks the original
// forward pass used, so gradients stay bit-identical.
func TestDropoutRecomputeEquivalence(t *testing.T) {
	cfg := dropConfig(0.2)
	tokens, targets := randomData(cfg, 13)

	run := func(recompute map[int]bool) (float64, map[string][]float32) {
		m, err := NewModel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m.RoundParamsFP16()
		m.ZeroGrads()
		loss, err := m.ForwardBackward(tokens, targets, recompute)
		if err != nil {
			t.Fatal(err)
		}
		grads := map[string][]float32{}
		for _, p := range m.Params() {
			grads[p.Name] = append([]float32(nil), p.G.Data...)
		}
		return loss, grads
	}
	lossKeep, gradsKeep := run(nil)
	lossRec, gradsRec := run(map[int]bool{0: true, 1: true})
	if lossKeep != lossRec {
		t.Fatalf("loss differs under recomputation with dropout: %v vs %v", lossKeep, lossRec)
	}
	for name, g := range gradsKeep {
		for i := range g {
			if g[i] != gradsRec[name][i] {
				t.Fatalf("gradient %s[%d] differs with dropout + recompute", name, i)
			}
		}
	}
}

// TestDropoutMasksChangePerStep: two training passes see different masks
// (losses differ on the same data).
func TestDropoutMasksChangePerStep(t *testing.T) {
	cfg := dropConfig(0.3)
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tokens, targets := randomData(cfg, 17)
	m.ZeroGrads()
	l1, err := m.ForwardBackward(tokens, targets, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.ZeroGrads()
	l2, err := m.ForwardBackward(tokens, targets, nil)
	if err != nil {
		t.Fatal(err)
	}
	if l1 == l2 {
		t.Error("losses identical across steps; dropout masks are not advancing")
	}
	if m.Step() != 2 {
		t.Errorf("step = %d, want 2", m.Step())
	}
}

func TestDropoutValidation(t *testing.T) {
	cfg := tinyConfig()
	cfg.Dropout = 1.0
	if _, err := NewModel(cfg); err == nil {
		t.Error("dropout=1 accepted")
	}
}
