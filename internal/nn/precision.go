package nn

import "ratel/internal/tensor"

// fp16Grid controls whether forward tensors are rounded onto the fp16 grid
// (the engine's mixed-precision discipline, on by default). The numerical
// gradient checks disable it: finite differences need a locally smooth loss.
var fp16Grid = true

// SetFP16Grid toggles fp16-grid rounding and returns the previous setting.
// Intended for tests; production code leaves the grid on.
func SetFP16Grid(on bool) (previous bool) {
	previous = fp16Grid
	fp16Grid = on
	return previous
}

func roundGrid(t *tensor.Tensor) {
	if fp16Grid {
		t.RoundFP16InPlace()
	}
}
