package nn

import (
	"fmt"
	"math"

	"ratel/internal/tensor"
)

// KVCache holds per-block attention keys and values for incremental
// decoding: generating token t attends over the cached keys/values of
// tokens 0..t without recomputing them. Decoding through the cache is
// bit-identical to a full forward pass over the same prefix (all kernels
// compute per row in the same order).
type KVCache struct {
	k, v []*tensor.Tensor // per block: [maxSeq, hidden], first `length` rows valid
	len  int
	max  int
}

// NewKVCache allocates a cache for the model's context window.
func (m *Model) NewKVCache() *KVCache {
	c := &KVCache{max: m.Cfg.Seq}
	for range m.Blocks {
		c.k = append(c.k, tensor.New(m.Cfg.Seq, m.Cfg.Hidden))
		c.v = append(c.v, tensor.New(m.Cfg.Seq, m.Cfg.Hidden))
	}
	return c
}

// Len reports how many positions are cached.
func (c *KVCache) Len() int { return c.len }

// DecodeStep feeds one token at the next position and returns its
// next-token logits, updating the cache. Dropout is disabled (inference).
func (m *Model) DecodeStep(cache *KVCache, token int) ([]float32, error) {
	cfg := m.Cfg
	pos := cache.len
	if pos >= cache.max {
		return nil, fmt.Errorf("nn: kv cache full (%d positions)", cache.max)
	}
	if token < 0 || token >= cfg.Vocab {
		return nil, fmt.Errorf("nn: token %d out of vocabulary", token)
	}
	restore := m.disableDropout()
	defer restore()

	x := tensor.New(1, cfg.Hidden)
	for j := 0; j < cfg.Hidden; j++ {
		x.Data[j] = m.TokEmb.Data[token*cfg.Hidden+j] + m.PosEmb.Data[pos*cfg.Hidden+j]
	}
	roundGrid(x)

	h := x
	for bi, b := range m.Blocks {
		y, err := b.decodeStep(h, cache.k[bi], cache.v[bi], pos)
		if err != nil {
			return nil, err
		}
		h = y
	}
	cache.len++

	_, logits, err := m.HeadForward(h)
	if err != nil {
		return nil, err
	}
	out := make([]float32, cfg.Vocab)
	copy(out, logits.Data[:cfg.Vocab])
	return out, nil
}

// decodeStep runs one block on a single token row [1, d], reading and
// extending the block's key/value cache at position pos.
func (b *Block) decodeStep(x, kCache, vCache *tensor.Tensor, pos int) (*tensor.Tensor, error) {
	d := b.Attn.Dim
	heads := b.Attn.Heads
	dh := d / heads
	scale := float32(1 / math.Sqrt(float64(dh)))

	ln1, err := b.LN1.Forward(x)
	if err != nil {
		return nil, err
	}
	qkv, err := b.Attn.QKV.Forward(ln1) // [1, 3d]
	if err != nil {
		return nil, err
	}
	copy(kCache.Data[pos*d:(pos+1)*d], qkv.Data[d:2*d])
	copy(vCache.Data[pos*d:(pos+1)*d], qkv.Data[2*d:3*d])

	ctx := tensor.New(1, d)
	scores := make([]float32, pos+1)
	for h := 0; h < heads; h++ {
		q := qkv.Data[h*dh : (h+1)*dh]
		// scores_j = q . k_j / sqrt(dh) over the causal prefix.
		for j := 0; j <= pos; j++ {
			kRow := kCache.Data[j*d+h*dh : j*d+(h+1)*dh]
			var s float32
			for t := 0; t < dh; t++ {
				s += q[t] * kRow[t]
			}
			scores[j] = s * scale
		}
		softmaxRow(scores[:pos+1])
		for j := 0; j <= pos; j++ {
			scores[j] = tensor.RoundFP16(scores[j])
		}
		out := ctx.Data[h*dh : (h+1)*dh]
		for j := 0; j <= pos; j++ {
			p := scores[j]
			if p == 0 {
				continue
			}
			vRow := vCache.Data[j*d+h*dh : j*d+(h+1)*dh]
			for t := 0; t < dh; t++ {
				out[t] += p * vRow[t]
			}
		}
	}
	roundGrid(ctx)
	attnY, err := b.Attn.Out.Forward(ctx)
	if err != nil {
		return nil, err
	}
	res1 := x.Clone()
	if err := tensor.AddInPlace(res1, attnY); err != nil {
		return nil, err
	}
	roundGrid(res1)
	ln2, err := b.LN2.Forward(res1)
	if err != nil {
		return nil, err
	}
	fc1, err := b.FC1.Forward(ln2)
	if err != nil {
		return nil, err
	}
	gelu := tensor.GELU(fc1)
	roundGrid(gelu)
	fc2, err := b.FC2.Forward(gelu)
	if err != nil {
		return nil, err
	}
	y := res1.Clone()
	if err := tensor.AddInPlace(y, fc2); err != nil {
		return nil, err
	}
	roundGrid(y)
	return y, nil
}

// softmaxRow applies a numerically-stable softmax to one row in place, with
// the same accumulation order as tensor.SoftmaxRows.
func softmaxRow(row []float32) {
	max := row[0]
	for _, v := range row {
		if v > max {
			max = v
		}
	}
	var sum float64
	for j, v := range row {
		e := math.Exp(float64(v - max))
		row[j] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for j := range row {
		row[j] *= inv
	}
}

// GenerateCached continues a prompt greedily using the KV cache — O(n) per
// token instead of O(n²). Results equal Generate for prompts within the
// context window.
func (m *Model) GenerateCached(prompt []int, steps int) ([]int, error) {
	if len(prompt) == 0 {
		return nil, fmt.Errorf("nn: empty prompt")
	}
	if len(prompt)+steps > m.Cfg.Seq {
		return nil, fmt.Errorf("nn: prompt %d + steps %d exceed context %d (use Generate for sliding-window decoding)",
			len(prompt), steps, m.Cfg.Seq)
	}
	cache := m.NewKVCache()
	var logits []float32
	var err error
	for _, tok := range prompt {
		if logits, err = m.DecodeStep(cache, tok); err != nil {
			return nil, err
		}
	}
	out := append([]int(nil), prompt...)
	for i := 0; i < steps; i++ {
		best := 0
		for j, v := range logits {
			if v > logits[best] {
				best = j
			}
		}
		out = append(out, best)
		if i == steps-1 {
			break
		}
		if logits, err = m.DecodeStep(cache, best); err != nil {
			return nil, err
		}
	}
	return out, nil
}
