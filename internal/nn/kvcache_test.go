package nn

import "testing"

// TestKVCacheMatchesFullForward: incremental decoding through the KV cache
// produces bit-identical logits to a full forward pass over the same
// prefix, at every position.
func TestKVCacheMatchesFullForward(t *testing.T) {
	cfg := tinyConfig()
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tokens := []int{3, 1, 4, 1, 5, 9}
	cache := m.NewKVCache()
	for i, tok := range tokens {
		inc, err := m.DecodeStep(cache, tok)
		if err != nil {
			t.Fatal(err)
		}
		full, err := m.Logits(tokens[:i+1])
		if err != nil {
			t.Fatal(err)
		}
		for j := range full {
			if inc[j] != full[j] {
				t.Fatalf("position %d logit %d differs: cached %v vs full %v", i, j, inc[j], full[j])
			}
		}
	}
	if cache.Len() != len(tokens) {
		t.Errorf("cache length = %d, want %d", cache.Len(), len(tokens))
	}
}

// TestGenerateCachedMatchesGenerate: greedy decoding with and without the
// cache picks the same tokens.
func TestGenerateCachedMatchesGenerate(t *testing.T) {
	m, err := NewModel(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	prompt := []int{2, 7}
	a, err := m.Generate(prompt, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.GenerateCached(prompt, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cached generation diverged at %d: %v vs %v", i, a, b)
		}
	}
}

func TestKVCacheErrors(t *testing.T) {
	cfg := tinyConfig()
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cache := m.NewKVCache()
	if _, err := m.DecodeStep(cache, cfg.Vocab+3); err == nil {
		t.Error("out-of-vocab token accepted")
	}
	for i := 0; i < cfg.Seq; i++ {
		if _, err := m.DecodeStep(cache, 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.DecodeStep(cache, 1); err == nil {
		t.Error("over-full cache accepted")
	}
	if _, err := m.GenerateCached(nil, 2); err == nil {
		t.Error("empty prompt accepted")
	}
	if _, err := m.GenerateCached(make([]int, cfg.Seq), 2); err == nil {
		t.Error("context overflow accepted")
	}
}
