package nn

import "testing"

// TestGenerateLearnsCopyTask: after fine-tuning on "next token = current+1",
// greedy generation continues the pattern far above chance.
func TestGenerateLearnsCopyTask(t *testing.T) {
	cfg := Config{Vocab: 24, Seq: 8, Hidden: 16, Heads: 2, Layers: 2, Batch: 4, Seed: 19}
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tokens := make([][]int, cfg.Batch)
	targets := make([][]int, cfg.Batch)
	for b := range tokens {
		tokens[b] = make([]int, cfg.Seq)
		targets[b] = make([]int, cfg.Seq)
		for s := 0; s < cfg.Seq; s++ {
			tokens[b][s] = (b*3 + s) % cfg.Vocab
			targets[b][s] = (b*3 + s + 1) % cfg.Vocab
		}
	}
	for step := 0; step < 220; step++ {
		m.ZeroGrads()
		if _, err := m.ForwardBackward(tokens, targets, nil); err != nil {
			t.Fatal(err)
		}
		for _, p := range m.Params() {
			for i := range p.W.Data {
				p.W.Data[i] -= 0.01 * p.G.Data[i]
			}
		}
	}

	out, err := m.Generate([]int{5, 6, 7}, 6)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 3; i < len(out); i++ {
		if out[i] == (5+i)%cfg.Vocab {
			correct++
		}
	}
	if correct < 4 {
		t.Errorf("generation got %d/6 progression tokens right: %v", correct, out)
	}
}

func TestLogitsValidation(t *testing.T) {
	cfg := tinyConfig()
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Logits(nil); err == nil {
		t.Error("empty sequence accepted")
	}
	if _, err := m.Logits(make([]int, cfg.Seq+1)); err == nil {
		t.Error("over-length sequence accepted")
	}
	if _, err := m.Logits([]int{cfg.Vocab + 1}); err == nil {
		t.Error("out-of-vocab token accepted")
	}
	logits, err := m.Logits([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(logits) != cfg.Vocab {
		t.Errorf("logits length = %d, want %d", len(logits), cfg.Vocab)
	}
}

func TestGenerateValidation(t *testing.T) {
	m, err := NewModel(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Generate(nil, 3); err == nil {
		t.Error("empty prompt accepted")
	}
	// Long prompts are truncated to the context window, not rejected.
	long := make([]int, 20)
	out, err := m.Generate(long, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 22 {
		t.Errorf("generated %d tokens, want 22", len(out))
	}
}

// TestGenerationIgnoresDropout: inference output is deterministic even with
// dropout configured, and the training-time drop rate is restored after.
func TestGenerationIgnoresDropout(t *testing.T) {
	cfg := tinyConfig()
	cfg.Dropout = 0.5
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.Logits([]int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	m.NextStep() // would change masks if dropout were active
	b, err := m.Logits([]int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("inference is nondeterministic under dropout")
		}
	}
	if m.drop.P != 0.5 {
		t.Error("drop probability not restored after inference")
	}
}

// TestEvalLossMatchesTrainingLoss: at identical parameters the inference
// loss equals the training loss (no dropout in either when configured off).
func TestEvalLossMatchesTrainingLoss(t *testing.T) {
	cfg := tinyConfig()
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tokens, targets := randomData(cfg, 31)
	eval, err := m.EvalLoss(tokens, targets)
	if err != nil {
		t.Fatal(err)
	}
	m.ZeroGrads()
	train, err := m.ForwardBackward(tokens, targets, nil)
	if err != nil {
		t.Fatal(err)
	}
	if eval != train {
		t.Fatalf("eval %v != train %v", eval, train)
	}
	if _, err := m.EvalLoss([][]int{{0}}, targets); err == nil {
		t.Error("bad batch accepted")
	}
	// SetStep round-trips for checkpoint restore.
	m.SetStep(42)
	if m.Step() != 42 {
		t.Error("SetStep failed")
	}
}
