package nn

import (
	"fmt"

	"ratel/internal/tensor"
)

// ForwardWith runs the block on arbitrary (batch, seq) geometry — used by
// inference, where sequences grow token by token.
func (b *Block) ForwardWith(x *tensor.Tensor, batch, seq int) (*tensor.Tensor, *BlockCache, error) {
	savedB, savedS := b.batch, b.seq
	b.batch, b.seq = batch, seq
	defer func() { b.batch, b.seq = savedB, savedS }()
	return b.Forward(x)
}

// Logits runs the model on a single sequence and returns the logits at its
// last position — the next-token distribution. Dropout is disabled
// (inference mode).
func (m *Model) Logits(tokens []int) ([]float32, error) {
	cfg := m.Cfg
	seq := len(tokens)
	if seq < 1 || seq > cfg.Seq {
		return nil, fmt.Errorf("nn: sequence length %d outside [1, %d]", seq, cfg.Seq)
	}
	restore := m.disableDropout()
	defer restore()

	x := tensor.New(seq, cfg.Hidden)
	for s, tok := range tokens {
		if tok < 0 || tok >= cfg.Vocab {
			return nil, fmt.Errorf("nn: token %d out of vocabulary", tok)
		}
		dst := x.Data[s*cfg.Hidden : (s+1)*cfg.Hidden]
		for j := 0; j < cfg.Hidden; j++ {
			dst[j] = m.TokEmb.Data[tok*cfg.Hidden+j] + m.PosEmb.Data[s*cfg.Hidden+j]
		}
	}
	roundGrid(x)
	h := x
	for _, b := range m.Blocks {
		y, _, err := b.ForwardWith(h, 1, seq)
		if err != nil {
			return nil, err
		}
		h = y
	}
	_, logits, err := m.HeadForward(h)
	if err != nil {
		return nil, err
	}
	last := make([]float32, cfg.Vocab)
	copy(last, logits.Data[(seq-1)*cfg.Vocab:seq*cfg.Vocab])
	return last, nil
}

// Generate continues a prompt greedily for steps tokens, truncating the
// attention context to the model's maximum sequence length.
func (m *Model) Generate(prompt []int, steps int) ([]int, error) {
	if len(prompt) == 0 {
		return nil, fmt.Errorf("nn: empty prompt")
	}
	out := append([]int(nil), prompt...)
	for i := 0; i < steps; i++ {
		ctx := out
		if len(ctx) > m.Cfg.Seq {
			ctx = ctx[len(ctx)-m.Cfg.Seq:]
		}
		logits, err := m.Logits(ctx)
		if err != nil {
			return nil, err
		}
		best := 0
		for j, v := range logits {
			if v > logits[best] {
				best = j
			}
			_ = v
		}
		out = append(out, best)
	}
	return out, nil
}

// disableDropout zeroes the drop probability and returns a restorer.
func (m *Model) disableDropout() func() {
	if m.drop == nil {
		return func() {}
	}
	saved := m.drop.P
	m.drop.P = 0
	return func() { m.drop.P = saved }
}

// EvalLoss computes the mean next-token loss of a batch in inference mode:
// no gradients, no dropout, no state changes.
func (m *Model) EvalLoss(tokens, targets [][]int) (float64, error) {
	restore := m.disableDropout()
	defer restore()
	x, err := m.Embed(tokens)
	if err != nil {
		return 0, err
	}
	h := x
	for _, b := range m.Blocks {
		y, _, err := b.Forward(h)
		if err != nil {
			return 0, err
		}
		h = y
	}
	_, logits, err := m.HeadForward(h)
	if err != nil {
		return 0, err
	}
	loss, _, err := CrossEntropy(logits, targets)
	return loss, err
}
