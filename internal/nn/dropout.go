package nn

import "ratel/internal/tensor"

// Dropout is counter-based (Philox-style) dropout: the mask for element i
// of a given site at a given training step is a pure function of
// (seed, step, site, i). Recomputing a discarded activation therefore
// regenerates exactly the masks the original forward pass used — the
// classic requirement for combining dropout with activation recomputation,
// which frameworks solve with replayable RNG states.
type Dropout struct {
	// P is the drop probability; zero disables dropout entirely.
	P float32
	// Seed namespaces the whole model's randomness.
	Seed uint64
	// Step points at the model's forward-pass counter; each training step
	// gets fresh masks, while recomputation within a step replays them.
	Step *uint64
}

// Active reports whether dropout does anything.
func (d *Dropout) Active() bool { return d != nil && d.P > 0 }

// Apply drops elements of x in place with probability P (inverted dropout:
// survivors are scaled by 1/(1-P)), using the site tag to decorrelate
// different dropout locations. The result is rounded onto the fp16 grid.
func (d *Dropout) Apply(x *tensor.Tensor, site uint64) {
	if !d.Active() {
		return
	}
	scale := 1 / (1 - d.P)
	for i := range x.Data {
		if d.dropped(site, i) {
			x.Data[i] = 0
		} else {
			x.Data[i] = tensor.RoundFP16(x.Data[i] * scale)
		}
	}
}

// Backward masks dy in place with the same pattern Apply used.
func (d *Dropout) Backward(dy *tensor.Tensor, site uint64) {
	if !d.Active() {
		return
	}
	scale := 1 / (1 - d.P)
	for i := range dy.Data {
		if d.dropped(site, i) {
			dy.Data[i] = 0
		} else {
			dy.Data[i] *= scale
		}
	}
}

// dropped decides element i's fate from the counter hash.
func (d *Dropout) dropped(site uint64, i int) bool {
	h := counterHash(d.Seed, *d.Step, site, uint64(i))
	// Map the top 24 bits to [0,1).
	u := float32(h>>40) * (1.0 / (1 << 24))
	return u < d.P
}

// counterHash is a SplitMix64-style mix of the four counters; it is the
// reproduction's stand-in for Philox.
func counterHash(seed, step, site, i uint64) uint64 {
	x := seed ^ step*0x9e3779b97f4a7c15 ^ site*0xbf58476d1ce4e5b9 ^ i*0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
