package memctl

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"ratel/internal/units"
)

func TestAllocFreePeak(t *testing.T) {
	p := NewPool("gpu", 100)
	if err := p.Alloc(60); err != nil {
		t.Fatal(err)
	}
	if err := p.Alloc(30); err != nil {
		t.Fatal(err)
	}
	p.Free(50)
	if got := p.Used(); got != 40 {
		t.Errorf("Used = %v, want 40", got)
	}
	if got := p.Peak(); got != 90 {
		t.Errorf("Peak = %v, want 90", got)
	}
	if got := p.Available(); got != 60 {
		t.Errorf("Available = %v, want 60", got)
	}
	if got := p.MinUnallocated(); got != 10 {
		t.Errorf("MinUnallocated = %v, want 10", got)
	}
}

func TestOOM(t *testing.T) {
	p := NewPool("gpu", 24*units.GiB)
	if err := p.Alloc(20 * units.GiB); err != nil {
		t.Fatal(err)
	}
	err := p.Alloc(5 * units.GiB)
	if !errors.Is(err, ErrOOM) {
		t.Fatalf("Alloc over capacity = %v, want ErrOOM", err)
	}
	// Failed alloc must not change usage.
	if got := p.Used(); got != 20*units.GiB {
		t.Errorf("Used after failed alloc = %v", got)
	}
}

func TestUnlimitedPool(t *testing.T) {
	p := NewPool("unbounded", 0)
	if err := p.Alloc(1 * units.TiB); err != nil {
		t.Fatal(err)
	}
	if p.Available() < units.Bytes(1)<<61 {
		t.Error("unlimited pool should report huge availability")
	}
	if p.MinUnallocated() != 0 {
		t.Error("unlimited pool has no headroom information")
	}
}

func TestFreeTooMuchPanics(t *testing.T) {
	p := NewPool("gpu", 10)
	defer func() {
		if recover() == nil {
			t.Error("over-free did not panic")
		}
	}()
	p.Free(1)
}

func TestNegativeAlloc(t *testing.T) {
	p := NewPool("gpu", 10)
	if err := p.Alloc(-1); err == nil {
		t.Error("negative alloc should fail")
	}
}

func TestResetPeak(t *testing.T) {
	p := NewPool("m", 100)
	_ = p.Alloc(80)
	p.Free(80)
	p.ResetPeak()
	if got := p.Peak(); got != 0 {
		t.Errorf("Peak after reset = %v, want 0", got)
	}
}

func TestReservationReleasesOnce(t *testing.T) {
	p := NewPool("m", 100)
	r, err := p.Reserve(40)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bytes() != 40 {
		t.Errorf("Bytes = %v", r.Bytes())
	}
	r.Release()
	r.Release() // second release is a no-op, not a panic
	if got := p.Used(); got != 0 {
		t.Errorf("Used after release = %v, want 0", got)
	}
}

func TestReserveFailurePropagates(t *testing.T) {
	p := NewPool("m", 10)
	if _, err := p.Reserve(11); !errors.Is(err, ErrOOM) {
		t.Errorf("Reserve over capacity = %v, want ErrOOM", err)
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	p := NewPool("m", 1_000_000)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if err := p.Alloc(10); err != nil {
					t.Error(err)
					return
				}
				p.Free(10)
			}
		}()
	}
	wg.Wait()
	if got := p.Used(); got != 0 {
		t.Errorf("Used after balanced alloc/free = %v, want 0", got)
	}
}

// Property: after any sequence of successful allocs, used == sum and
// peak >= used, and capacity is never exceeded.
func TestPoolInvariants(t *testing.T) {
	f := func(sizes []uint16) bool {
		p := NewPool("q", 1<<20)
		var sum units.Bytes
		for _, s := range sizes {
			n := units.Bytes(s)
			if err := p.Alloc(n); err != nil {
				if !errors.Is(err, ErrOOM) {
					return false
				}
				continue
			}
			sum += n
		}
		return p.Used() == sum && p.Peak() >= p.Used() && p.Used() <= p.Capacity()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
