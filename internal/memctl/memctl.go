// Package memctl provides capacity-tracked memory pools for the GPU and
// main memory. The engine allocates every tensor through a pool, so
// out-of-memory conditions are detected exactly as they would be on the
// device, and the profiling stage can read the peak usage and the minimum
// unallocated main memory MEMavail_M (§IV-B) from the pool's high-water
// mark.
package memctl

import (
	"errors"
	"fmt"
	"sync"

	"ratel/internal/units"
)

// ErrOOM is wrapped by allocation failures.
var ErrOOM = errors.New("memctl: out of memory")

// Pool is a capacity-limited allocator with peak tracking. The zero value
// is unusable; use NewPool.
type Pool struct {
	name     string
	capacity units.Bytes

	mu   sync.Mutex
	used units.Bytes
	peak units.Bytes
}

// NewPool creates a pool with the given capacity. A non-positive capacity
// means unlimited (used by tests and by the simulator's accounting-only
// runs).
func NewPool(name string, capacity units.Bytes) *Pool {
	return &Pool{name: name, capacity: capacity}
}

// Name reports the pool's name.
func (p *Pool) Name() string { return p.name }

// Capacity reports the configured capacity (0 = unlimited).
func (p *Pool) Capacity() units.Bytes { return p.capacity }

// Alloc reserves n bytes, failing with an ErrOOM-wrapped error if the pool
// would exceed its capacity.
func (p *Pool) Alloc(n units.Bytes) error {
	if n < 0 {
		return fmt.Errorf("memctl: %s: negative allocation %d", p.name, n)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.capacity > 0 && p.used+n > p.capacity {
		return fmt.Errorf("%w: %s: need %v, used %v of %v",
			ErrOOM, p.name, n, p.used, p.capacity)
	}
	p.used += n
	if p.used > p.peak {
		p.peak = p.used
	}
	return nil
}

// Free releases n bytes. Freeing more than is allocated indicates an
// accounting bug in the caller and panics.
func (p *Pool) Free(n units.Bytes) {
	if n < 0 {
		panic(fmt.Sprintf("memctl: %s: negative free %d", p.name, n))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if n > p.used {
		panic(fmt.Sprintf("memctl: %s: free %v exceeds used %v", p.name, n, p.used))
	}
	p.used -= n
}

// Used reports current usage.
func (p *Pool) Used() units.Bytes {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.used
}

// Peak reports the high-water mark since creation or the last ResetPeak.
func (p *Pool) Peak() units.Bytes {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.peak
}

// Available reports the headroom left; unlimited pools report a very large
// value.
func (p *Pool) Available() units.Bytes {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.capacity <= 0 {
		return units.Bytes(1) << 62
	}
	return p.capacity - p.used
}

// MinUnallocated is the paper's MEMavail_M: capacity minus the peak usage
// observed during profiling. Unlimited pools report 0 headroom information.
func (p *Pool) MinUnallocated() units.Bytes {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.capacity <= 0 {
		return 0
	}
	return p.capacity - p.peak
}

// ResetPeak sets the high-water mark to current usage, for reuse across
// profiling iterations.
func (p *Pool) ResetPeak() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.peak = p.used
}

// Reservation is an RAII-style allocation that frees itself exactly once.
type Reservation struct {
	pool *Pool
	n    units.Bytes
	once sync.Once
}

// Reserve allocates n bytes and returns a handle that releases them.
func (p *Pool) Reserve(n units.Bytes) (*Reservation, error) {
	if err := p.Alloc(n); err != nil {
		return nil, err
	}
	return &Reservation{pool: p, n: n}, nil
}

// Release frees the reservation; extra calls are no-ops.
func (r *Reservation) Release() {
	r.once.Do(func() { r.pool.Free(r.n) })
}

// Bytes reports the reservation size.
func (r *Reservation) Bytes() units.Bytes { return r.n }
