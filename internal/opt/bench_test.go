package opt

import (
	"fmt"
	"runtime"
	"testing"

	"ratel/internal/tensor"
)

// BenchmarkAdamStep_1M measures the chunked CPU Adam kernel over one
// million parameters, pinned to one thread and on the full worker pool —
// the engine-side number behind the simulator's AdamParamsPerSec.
func BenchmarkAdamStep_1M(b *testing.B) {
	const n = 1 << 20
	p32 := make([]float32, n)
	m := make([]float32, n)
	v := make([]float32, n)
	grad := make([]float32, n)
	for i := range p32 {
		p32[i] = float32(i%17) * 0.01
		grad[i] = float32(i%13)*0.001 - 0.005
	}
	cfg := DefaultAdam()

	old := tensor.Parallelism()
	defer tensor.SetParallelism(old)

	for _, threads := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("%dthreads", threads), func(b *testing.B) {
			tensor.SetParallelism(threads)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := AdamStep(cfg, i+1, p32, m, v, grad); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mparams/s")
		})
	}
}
