package opt

import "fmt"

// LossScaler implements dynamic loss scaling for mixed-precision training:
// the loss gradient is amplified by Scale so small gradients survive the
// fp16 (G16) representation, and the optimizer divides it back out in fp32.
// A step whose gradients overflow is skipped and the scale halved; after
// GrowthInterval consecutive good steps the scale doubles.
type LossScaler struct {
	scale          float64
	growthInterval int
	goodSteps      int
	minScale       float64
	maxScale       float64
}

// NewLossScaler builds a scaler with the conventional dynamics (growth
// interval 100, scale clamped to [1, 2^24]).
func NewLossScaler(initial float64) (*LossScaler, error) {
	if initial < 1 {
		return nil, fmt.Errorf("opt: loss scale %v < 1", initial)
	}
	return &LossScaler{scale: initial, growthInterval: 100, minScale: 1, maxScale: 1 << 24}, nil
}

// Scale reports the current loss scale.
func (s *LossScaler) Scale() float64 { return s.scale }

// OnOverflow halves the scale and resets the growth counter.
func (s *LossScaler) OnOverflow() {
	s.scale /= 2
	if s.scale < s.minScale {
		s.scale = s.minScale
	}
	s.goodSteps = 0
}

// OnGoodStep advances the growth counter, doubling the scale every
// GrowthInterval good steps.
func (s *LossScaler) OnGoodStep() {
	s.goodSteps++
	if s.goodSteps >= s.growthInterval {
		s.goodSteps = 0
		if s.scale*2 <= s.maxScale {
			s.scale *= 2
		}
	}
}

// SetGradScale tells the optimizer to divide incoming (fp16) gradients by
// scale before the fp32 update — the unscale half of loss scaling.
func (o *OutOfCoreAdam) SetGradScale(scale float64) error {
	if scale <= 0 {
		return fmt.Errorf("opt: gradient scale %v", scale)
	}
	o.gradScale = scale
	return nil
}

// CancelStep undoes a BeginStep whose updates were skipped (gradient
// overflow), so bias correction stays aligned with applied updates.
func (o *OutOfCoreAdam) CancelStep() error {
	if o.step < 1 {
		return fmt.Errorf("opt: no step to cancel")
	}
	o.step--
	return nil
}
