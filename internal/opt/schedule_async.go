// Optimizer scheduling modes on top of OutOfCoreAdam (ROADMAP item 3).
//
// The synchronous schedule streams each group's state inline with its
// update, so the optimizer drain is a serialized read→adam→write chain.
// This file adds the two schedules that break that chain:
//
//   - StatePrefetcher (GreedySnake-style): a persistent reader goroutine
//     issues group state reads in gradient-arrival order, as soon as each
//     gradient lands in backward, depth-bounded through nvme.Buffers. The
//     update consumes the prefetched wire bytes through the same codec
//     path a direct load uses, so results are bit-identical to the
//     synchronous schedule — only the fetch timing changes.
//
//   - AsyncApplier (ZenFlow-style): unimportant groups' updates are staged
//     (gradient snapshot + captured step/hyperparameters) and drained by a
//     background goroutine with its own scratch; the new fp16 working
//     weights land in a staging buffer and are installed on the step
//     goroutine at the engine's bounded-staleness barrier, never
//     concurrently with compute.
package opt

import (
	"fmt"
	"math"
	"sync"
	"time"

	"ratel/internal/nn"
	"ratel/internal/nvme"
	"ratel/internal/obs"
	"ratel/internal/tensor"
)

// ScheduleMode selects how the engine schedules optimizer work relative to
// the training step.
type ScheduleMode int

// Optimizer scheduling modes.
const (
	// ScheduleSync is the baseline: every group's handler streams its own
	// state inline (read, adam, write) in gradient-arrival order.
	ScheduleSync ScheduleMode = iota
	// ScheduleReadiness issues each group's state read as soon as its
	// gradient arrives in backward, reordered by readiness and overlapped
	// with the remaining backward compute and with other groups' updates.
	// Bit-identical to ScheduleSync: same updates, different fetch order.
	ScheduleReadiness
	// ScheduleAsync partitions groups by gradient-norm importance: the
	// important partition updates synchronously in-step, the tail drains on
	// a background applier under a bounded-staleness barrier. Changes the
	// training trajectory (boundedly); validated by a convergence test, not
	// bit-equality.
	ScheduleAsync
)

// String names the mode.
func (m ScheduleMode) String() string {
	switch m {
	case ScheduleSync:
		return "sync"
	case ScheduleReadiness:
		return "readiness"
	case ScheduleAsync:
		return "async"
	}
	return fmt.Sprintf("ScheduleMode(%d)", int(m))
}

// ParseScheduleMode parses a -opt-schedule flag value.
func ParseScheduleMode(s string) (ScheduleMode, error) {
	switch s {
	case "sync":
		return ScheduleSync, nil
	case "readiness":
		return ScheduleReadiness, nil
	case "async":
		return ScheduleAsync, nil
	}
	return 0, fmt.Errorf("opt: unknown schedule mode %q (want sync, readiness or async)", s)
}

// stateFetch is one group's in-flight (or completed) state prefetch. One
// struct per registered group, preallocated and reused every step.
type stateFetch struct {
	name  string
	keys  groupKeys
	n     int
	label string // "<group>/opt-pread" span label, precomputed
	ready chan error
	wire  StateWire // buffers from nvme.Buffers while live
	live  bool
}

// StatePrefetcher reorders OutOfCoreAdam state reads by readiness: Launch
// enqueues a group's fetch the moment its gradient lands, a single
// persistent reader goroutine streams the state into pooled buffers
// (depth-bounded), and UpdateGroup consumes the bytes through
// UpdateGroupWire. Launch and UpdateGroup run on the engine's step/worker
// goroutines; per-fetch handoff synchronizes through each fetch's ready
// channel, and the engine's job channel orders Launch before the matching
// consume.
type StatePrefetcher struct {
	o        *OutOfCoreAdam
	depth    int
	queue    chan *stateFetch
	sem      chan struct{} // depth tokens: bounds unconsumed fetched state
	wg       sync.WaitGroup
	stopOnce sync.Once
	byName   map[string]*stateFetch
	// fifo holds launched fetches in launch order until DrainLive resets it
	// at the end of the step. Reader processing is FIFO, so draining in this
	// order can never deadlock against the depth tokens.
	fifo []*stateFetch
}

// NewStatePrefetcher starts the reader goroutine. depth bounds how many
// groups' fetched state may sit unconsumed (minimum 1); maxGroups sizes the
// launch queue so Launch never blocks the backward pass. The optimizer's
// Store must be safe for concurrent use — the reader fetches one group's
// state while the step goroutine writes another's back (nvme.Array is
// synchronized; the bare MemStore test map is not).
func NewStatePrefetcher(o *OutOfCoreAdam, depth, maxGroups int) *StatePrefetcher {
	if depth < 1 {
		depth = 1
	}
	if maxGroups < 1 {
		maxGroups = 1
	}
	p := &StatePrefetcher{
		o:      o,
		depth:  depth,
		queue:  make(chan *stateFetch, maxGroups),
		sem:    make(chan struct{}, depth),
		byName: make(map[string]*stateFetch),
		fifo:   make([]*stateFetch, 0, maxGroups),
	}
	p.wg.Add(1)
	go p.reader()
	return p
}

// Register preallocates the fetch slot for one parameter group; call once
// per group before training starts.
func (p *StatePrefetcher) Register(g nn.ParamGroup) {
	p.byName[g.Name] = &stateFetch{
		name:  g.Name,
		keys:  p.o.groupKeysFor(g.Name),
		n:     g.NumParams(),
		label: g.Name + "/opt-pread",
		ready: make(chan error, 1),
	}
}

// Launch enqueues the group's state fetch. Non-blocking (the queue holds
// every registered group); a group already in flight is left alone.
func (p *StatePrefetcher) Launch(group string) {
	f := p.byName[group]
	if f == nil || f.live {
		return
	}
	f.live = true
	p.fifo = append(p.fifo, f)
	p.queue <- f
}

// UpdateGroup applies one group's optimizer update, consuming its
// prefetched state when a fetch is in flight and falling back to the
// synchronous load otherwise. Bit-identical either way.
func (p *StatePrefetcher) UpdateGroup(g nn.ParamGroup) error {
	f := p.byName[g.Name]
	if f == nil || !f.live {
		return p.o.UpdateGroup(g)
	}
	f.live = false
	if err := <-f.ready; err != nil {
		p.release(f)
		return err
	}
	err := p.o.UpdateGroupWire(g, &f.wire)
	p.release(f)
	return err
}

// DrainLive consumes every launched-but-unapplied fetch (the failure-path
// cleanup: a failed step abandons its remaining updates) and resets the
// launch-order list; in the normal path it is a cheap per-step reset. It
// must only run while no worker goroutine is consuming fetches.
func (p *StatePrefetcher) DrainLive() error {
	if p == nil {
		return nil
	}
	var first error
	for _, f := range p.fifo {
		if !f.live {
			continue
		}
		f.live = false
		if err := <-f.ready; err != nil && first == nil {
			first = err
		}
		p.release(f)
	}
	p.fifo = p.fifo[:0]
	return first
}

// Close drains any abandoned fetches and joins the reader goroutine.
// Idempotent and nil-safe.
func (p *StatePrefetcher) Close() {
	if p == nil {
		return
	}
	p.stopOnce.Do(func() {
		close(p.queue)
		_ = p.DrainLive()
	})
	p.wg.Wait()
}

// reader is the persistent fetch goroutine: strictly FIFO over the launch
// queue, holding at most depth groups' state in pooled buffers.
func (p *StatePrefetcher) reader() {
	defer p.wg.Done()
	for f := range p.queue {
		p.sem <- struct{}{} // wait for a consumed slot before buffering more
		start := p.o.tracer.Now()
		err := p.fetch(f)
		p.o.tracer.RecordSpan(obs.LanePrefetch, f.label, start, p.o.tracer.Now())
		f.ready <- err
	}
}

// fetch streams one group's three state tensors into pooled wire buffers.
// All-or-nothing: on error the buffers go straight back to the pool.
func (p *StatePrefetcher) fetch(f *stateFetch) error {
	nb := 4 * f.n
	f.wire.P32 = nvme.Buffers.Get(nb)
	f.wire.M = nvme.Buffers.Get(nb)
	f.wire.V = nvme.Buffers.Get(nb)
	if err := p.readOne(f.keys.p32, f.wire.P32, f.name, "p32"); err != nil {
		p.putBufs(f)
		return err
	}
	if err := p.readOne(f.keys.m, f.wire.M, f.name, "m"); err != nil {
		p.putBufs(f)
		return err
	}
	if err := p.readOne(f.keys.v, f.wire.V, f.name, "v"); err != nil {
		p.putBufs(f)
		return err
	}
	return nil
}

// readOne reads one state object into dst, preferring the store's in-place
// path.
func (p *StatePrefetcher) readOne(key string, dst []byte, group, kind string) error {
	if p.o.readInto != nil {
		var err error
		if p.o.readClass != nil {
			err = p.o.readClass.ReadIntoClass(key, dst, nvme.ClassOptRead)
		} else {
			err = p.o.readInto.ReadInto(key, dst)
		}
		if err != nil {
			return fmt.Errorf("opt: prefetch %s/%s: %w", group, kind, err)
		}
		return nil
	}
	b, err := p.o.store.Get(key)
	if err != nil {
		return fmt.Errorf("opt: prefetch %s/%s: %w", group, kind, err)
	}
	if len(b) != len(dst) {
		return fmt.Errorf("opt: prefetch %s/%s: object %d bytes, want %d", group, kind, len(b), len(dst))
	}
	copy(dst, b)
	return nil
}

// release returns a consumed fetch's buffers to the pool and frees its
// depth token.
func (p *StatePrefetcher) release(f *stateFetch) {
	p.putBufs(f)
	<-p.sem
}

// putBufs recycles whatever wire buffers the fetch holds.
func (p *StatePrefetcher) putBufs(f *stateFetch) {
	if f.wire.P32 != nil {
		nvme.Buffers.Put(f.wire.P32)
		f.wire.P32 = nil
	}
	if f.wire.M != nil {
		nvme.Buffers.Put(f.wire.M)
		f.wire.M = nil
	}
	if f.wire.V != nil {
		nvme.Buffers.Put(f.wire.V)
		f.wire.V = nil
	}
}

// DeferredUpdate is one group's staged asynchronous update: the gradient
// snapshot and captured optimizer step/hyperparameters at defer time, plus
// the fp16 staging the background apply writes its result into. One struct
// per group, preallocated and reused; the pending flag (owned by the step
// goroutine) serializes reuse, and the done channel carries the handoff
// from the applier goroutine.
type DeferredUpdate struct {
	group nn.ParamGroup
	name  string
	n     int
	keys  groupKeys
	label string // "<group>/opt-adam-async" span label, precomputed

	step  int        // optimizer step the staged gradient belongs to
	cfg   AdamConfig // hyperparameters at stage time (pins the scheduled LR)
	grads []float32  // fp16-rounded, unscaled, clipped gradient snapshot
	p16   []float32  // fp16 working weights the apply produced, pre-install

	done    chan error
	pending bool
}

// NewDeferred preallocates the deferred-update slot for one parameter
// group: staging sized to the group, the result channel, and precomputed
// store keys and span label, so deferring never allocates or touches
// shared maps.
func (o *OutOfCoreAdam) NewDeferred(g nn.ParamGroup) *DeferredUpdate {
	n := g.NumParams()
	return &DeferredUpdate{
		group: g,
		name:  g.Name,
		n:     n,
		keys:  o.groupKeysFor(g.Name),
		label: g.Name + "/opt-adam-async",
		grads: make([]float32, n),
		p16:   make([]float32, n),
		done:  make(chan error, 1),
	}
}

// Pending reports whether a background apply of this update is in flight.
func (d *DeferredUpdate) Pending() bool { return d.pending }

// Step is the optimizer step the staged gradient belongs to; the weights'
// staleness at step t is t - Step().
func (d *DeferredUpdate) Step() int { return d.step }

// Name is the parameter group this slot serves.
func (d *DeferredUpdate) Name() string { return d.name }

// DeferredBytes is the optimizer traffic one deferred update moves off the
// step's critical path: the 12 B/param state read, 14 B/param state+P16
// write-back, and the 2 B/param fp16 gradient snapshot.
func (d *DeferredUpdate) DeferredBytes() int64 { return 28 * int64(d.n) }

// Wait blocks until the background apply finishes, installs the fresh fp16
// working weights into the group's tensors, and clears the pending mark.
// Must run on the step goroutine (the installed weights are read by
// compute).
func (d *DeferredUpdate) Wait() error {
	if !d.pending {
		return nil
	}
	err := <-d.done
	d.pending = false
	if err != nil {
		return err
	}
	d.install()
	return nil
}

// install copies the staged fp16 working weights into the model tensors.
func (d *DeferredUpdate) install() {
	off := 0
	for _, p := range d.group.Params {
		copy(p.W.Data, d.p16[off:off+p.W.Numel()])
		off += p.W.Numel()
	}
}

// StageDeferred captures everything a background apply of g's update needs:
// the fp16-rounded, unscaled and clipped gradient, the optimizer step the
// gradient belongs to, and the hyperparameters at stage time (so the
// learning-rate schedule applies to the step that produced the gradient,
// not the step the apply lands in). The G16 staging is bit-identical to the
// synchronous handler's. d must be idle.
func (o *OutOfCoreAdam) StageDeferred(d *DeferredUpdate, g nn.ParamGroup) error {
	if o.step < 1 {
		return fmt.Errorf("opt: StageDeferred(%s) before BeginStep", g.Name)
	}
	if d.pending {
		return fmt.Errorf("opt: StageDeferred(%s): previous deferred update still in flight", g.Name)
	}
	inv := 1.0
	if o.gradScale > 0 {
		inv = 1 / o.gradScale
	}
	grad := d.grads
	idx := 0
	for _, p := range g.Params {
		if inv == 1 {
			if err := tensor.RoundFP16Into(grad[idx:idx+len(p.G.Data)], p.G.Data); err != nil {
				return fmt.Errorf("opt: stage deferred grad %s: %w", g.Name, err)
			}
			idx += len(p.G.Data)
			continue
		}
		for _, gv := range p.G.Data {
			grad[idx] = float32(float64(tensor.RoundFP16(gv)) * inv)
			idx++
		}
	}
	// Gradients crossed the compute→host boundary in fp16 (G16), same as
	// the synchronous handler — only the apply is deferred.
	o.flows.Add(obs.EdgeComputeHost, obs.FlowGrads, int64(2*d.n))
	if o.clipNorm > 0 {
		var sq float64
		for _, gv := range grad {
			sq += float64(gv) * float64(gv)
		}
		if norm := math.Sqrt(sq); norm > o.clipNorm {
			scale := float32(o.clipNorm / norm)
			for i := range grad {
				grad[i] *= scale
			}
		}
	}
	d.step = o.step
	d.cfg = o.cfg
	d.pending = true
	return nil
}

// AsyncApplier drains DeferredUpdates on a background goroutine. It owns
// its own state scratch — a background apply never contends with an
// in-step update on the optimizer's scratch lock, and the store keys of a
// deferred group are disjoint from every concurrently-updating group (the
// engine's partition routing guarantees it).
type AsyncApplier struct {
	o        *OutOfCoreAdam
	jobs     chan *DeferredUpdate
	wg       sync.WaitGroup
	stopOnce sync.Once
	scr      struct {
		p32, m, v []float32
		enc       []byte
	}
}

// NewAsyncApplier starts the applier goroutine; maxQueue sizes the job
// channel (the engine passes its group count, so Submit never blocks the
// backward pass). The optimizer's Store must be safe for concurrent use —
// the applier round-trips deferred groups' state while the step goroutine
// streams the in-step groups' (nvme.Array is synchronized; the bare
// MemStore test map is not).
func NewAsyncApplier(o *OutOfCoreAdam, maxQueue int) *AsyncApplier {
	if maxQueue < 1 {
		maxQueue = 1
	}
	a := &AsyncApplier{o: o, jobs: make(chan *DeferredUpdate, maxQueue)}
	a.wg.Add(1)
	go a.run()
	return a
}

// Submit hands a staged update to the applier. Jobs apply strictly in
// submission order, so two defers of the same group (serialized by the
// pending flag) can never reorder.
func (a *AsyncApplier) Submit(d *DeferredUpdate) { a.jobs <- d }

// Close stops the applier after finishing queued jobs. Idempotent and
// nil-safe; flush pending updates (DeferredUpdate.Wait) before closing if
// their results matter.
func (a *AsyncApplier) Close() {
	if a == nil {
		return
	}
	a.stopOnce.Do(func() { close(a.jobs) })
	a.wg.Wait()
}

// run drains the job queue until Close.
func (a *AsyncApplier) run() {
	defer a.wg.Done()
	for d := range a.jobs {
		d.done <- a.apply(d)
	}
}

// apply runs one deferred group update against the store using the
// applier's own scratch: stream P32+OS32 in, Adam at the captured
// step/hyperparameters, stream back, and round the new fp16 working
// weights into the staging buffer for the step goroutine to install.
func (a *AsyncApplier) apply(d *DeferredUpdate) error {
	o := a.o
	n := d.n
	p32 := scrF32(&a.scr.p32, n)
	m := scrF32(&a.scr.m, n)
	v := scrF32(&a.scr.v, n)
	if cap(a.scr.enc) < 4*n {
		a.scr.enc = make([]byte, 4*n)
	}
	buf := a.scr.enc[:4*n]
	if err := o.loadFP32Into(p32, buf, d.keys.p32, d.name, "p32"); err != nil {
		return err
	}
	if err := o.loadFP32Into(m, buf, d.keys.m, d.name, "m"); err != nil {
		return err
	}
	if err := o.loadFP32Into(v, buf, d.keys.v, d.name, "v"); err != nil {
		return err
	}
	o.flows.Add(obs.EdgeCodecDecode, obs.FlowOptState, int64(3*4*n))
	sp := o.tracer.StartSpan(obs.LaneAdam, d.label)
	kernelStart := time.Now()
	if err := AdamStep(d.cfg, d.step, p32, m, v, d.grads); err != nil {
		sp.End()
		return fmt.Errorf("opt: async update %s: %w", d.name, err)
	}
	o.kernelNanos.Add(time.Since(kernelStart).Nanoseconds())
	o.kernelParams.Add(int64(n))
	sp.End()
	if err := o.saveFP32(buf, d.keys.p32, p32); err != nil {
		return err
	}
	if err := o.saveFP32(buf, d.keys.m, m); err != nil {
		return err
	}
	if err := o.saveFP32(buf, d.keys.v, v); err != nil {
		return err
	}
	o.flows.Add(obs.EdgeCodecEncode, obs.FlowOptState, int64(3*4*n))
	if err := tensor.RoundFP16Into(d.p16, p32); err != nil {
		return fmt.Errorf("opt: async install %s: %w", d.name, err)
	}
	// The fp16 install crosses back to the compute tier when the step
	// goroutine copies it in at the staleness barrier; credit it where the
	// bytes are produced.
	o.flows.Add(obs.EdgeComputeHost, obs.FlowParams, int64(2*n))
	return nil
}
