package opt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ratel/internal/nn"
	"ratel/internal/nvme"
	"ratel/internal/tensor"
)

func TestAdamStepMatchesReference(t *testing.T) {
	// One step from zero moments: m = (1-b1)g, v = (1-b2)g², update =
	// lr·g/(|g|+eps) ≈ lr·sign(g).
	cfg := DefaultAdam()
	p := []float32{1, -2, 3}
	m := make([]float32, 3)
	v := make([]float32, 3)
	g := []float32{0.5, -0.25, 0.125}
	if err := AdamStep(cfg, 1, p, m, v, g); err != nil {
		t.Fatal(err)
	}
	want := []float32{1 - 1e-3, -2 + 1e-3, 3 - 1e-3}
	for i := range want {
		if math.Abs(float64(p[i]-want[i])) > 1e-6 {
			t.Errorf("p[%d] = %v, want ~%v", i, p[i], want[i])
		}
	}
}

func TestAdamStepErrors(t *testing.T) {
	cfg := DefaultAdam()
	if err := AdamStep(cfg, 1, []float32{1}, []float32{0}, []float32{0}, []float32{0, 0}); err == nil {
		t.Error("mismatched sizes accepted")
	}
	if err := AdamStep(cfg, 0, []float32{1}, []float32{0}, []float32{0}, []float32{0}); err == nil {
		t.Error("step 0 accepted")
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize f(x) = (x-3)² with Adam; x should approach 3.
	cfg := DefaultAdam()
	cfg.LR = 0.1
	p := []float32{-5}
	m := make([]float32, 1)
	v := make([]float32, 1)
	for step := 1; step <= 500; step++ {
		g := []float32{2 * (p[0] - 3)}
		if err := AdamStep(cfg, step, p, m, v, g); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(float64(p[0])-3) > 0.05 {
		t.Errorf("Adam did not converge: x = %v, want ~3", p[0])
	}
}

func buildModel(t *testing.T) *nn.Model {
	t.Helper()
	m, err := nn.NewModel(nn.Config{Vocab: 11, Seq: 4, Hidden: 8, Heads: 2, Layers: 2, Batch: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func setGrads(m *nn.Model, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for _, p := range m.Params() {
		for i := range p.G.Data {
			p.G.Data[i] = float32(rng.NormFloat64())
		}
	}
}

// TestOutOfCoreEqualsInMemory: the chunked, store-backed optimizer produces
// bit-identical parameters to a monolithic in-memory Adam over the same
// gradients, for several steps.
func TestOutOfCoreEqualsInMemory(t *testing.T) {
	modelA := buildModel(t)
	modelB := buildModel(t)

	ooc := NewOutOfCoreAdam(MemStore{}, DefaultAdam(), "test")
	for _, g := range modelA.ParamGroups() {
		if err := ooc.InitGroup(g); err != nil {
			t.Fatal(err)
		}
	}
	// Reference: flat in-memory state per group, same G16 rounding.
	type refState struct{ p, m, v []float32 }
	ref := map[string]*refState{}
	for _, g := range modelB.ParamGroups() {
		flat := make([]float32, 0, g.NumParams())
		for _, p := range g.Params {
			flat = append(flat, p.W.Data...)
		}
		ref[g.Name] = &refState{p: flat, m: make([]float32, len(flat)), v: make([]float32, len(flat))}
		for _, p := range g.Params {
			p.W.RoundFP16InPlace()
		}
	}

	for step := 1; step <= 3; step++ {
		setGrads(modelA, int64(step))
		setGrads(modelB, int64(step))
		ooc.BeginStep()
		for _, g := range modelA.ParamGroups() {
			if err := ooc.UpdateGroup(g); err != nil {
				t.Fatal(err)
			}
		}
		for _, g := range modelB.ParamGroups() {
			st := ref[g.Name]
			grad := make([]float32, 0, len(st.p))
			for _, p := range g.Params {
				for _, gv := range p.G.Data {
					grad = append(grad, tensor.RoundFP16(gv))
				}
			}
			if err := AdamStep(DefaultAdam(), step, st.p, st.m, st.v, grad); err != nil {
				t.Fatal(err)
			}
			off := 0
			for _, p := range g.Params {
				for i := range p.W.Data {
					p.W.Data[i] = tensor.RoundFP16(st.p[off])
					off++
				}
			}
		}
	}

	pa, pb := modelA.Params(), modelB.Params()
	for i := range pa {
		for j := range pa[i].W.Data {
			if pa[i].W.Data[j] != pb[i].W.Data[j] {
				t.Fatalf("param %s[%d] differs: %v vs %v",
					pa[i].Name, j, pa[i].W.Data[j], pb[i].W.Data[j])
			}
		}
	}
	if ooc.Step() != 3 {
		t.Errorf("step = %d, want 3", ooc.Step())
	}
}

// TestOutOfCoreOverNVMe: the same optimizer runs over the real striped
// array backend.
func TestOutOfCoreOverNVMe(t *testing.T) {
	a, err := nvme.Open(nvme.Config{Devices: 3, StripeSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	m := buildModel(t)
	ooc := NewOutOfCoreAdam(a, DefaultAdam(), "model")
	for _, g := range m.ParamGroups() {
		if err := ooc.InitGroup(g); err != nil {
			t.Fatal(err)
		}
	}
	setGrads(m, 1)
	ooc.BeginStep()
	for _, g := range m.ParamGroups() {
		if err := ooc.UpdateGroup(g); err != nil {
			t.Fatal(err)
		}
	}
	// Masters exist and differ from the fp16 working copies only by
	// rounding.
	g0 := m.ParamGroups()[0]
	masters, err := ooc.MasterWeights(g0.Name, g0.NumParams())
	if err != nil {
		t.Fatal(err)
	}
	off := 0
	for _, p := range g0.Params {
		for i := range p.W.Data {
			if p.W.Data[i] != tensor.RoundFP16(masters[off]) {
				t.Fatalf("P16 != fp16(P32) at %s[%d]", p.Name, i)
			}
			off++
		}
	}
}

func TestUpdateBeforeBeginStepFails(t *testing.T) {
	m := buildModel(t)
	ooc := NewOutOfCoreAdam(MemStore{}, DefaultAdam(), "x")
	g := m.ParamGroups()[0]
	if err := ooc.InitGroup(g); err != nil {
		t.Fatal(err)
	}
	if err := ooc.UpdateGroup(g); err == nil {
		t.Error("UpdateGroup before BeginStep accepted")
	}
}

func TestUpdateUninitializedGroupFails(t *testing.T) {
	m := buildModel(t)
	ooc := NewOutOfCoreAdam(MemStore{}, DefaultAdam(), "x")
	ooc.BeginStep()
	if err := ooc.UpdateGroup(m.ParamGroups()[0]); err == nil {
		t.Error("update of uninitialized group accepted")
	}
}

// TestAdamStateInvariant: v stays non-negative for any gradient sequence.
func TestAdamStateInvariant(t *testing.T) {
	f := func(gs []float32) bool {
		if len(gs) == 0 {
			return true
		}
		cfg := DefaultAdam()
		p := make([]float32, len(gs))
		m := make([]float32, len(gs))
		v := make([]float32, len(gs))
		for step := 1; step <= 3; step++ {
			if err := AdamStep(cfg, step, p, m, v, gs); err != nil {
				return false
			}
		}
		for _, x := range v {
			if x < 0 || math.IsNaN(float64(x)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestWeightDecayAppliesDecoupled: AdamW's decay shrinks parameters even
// with zero gradients.
func TestWeightDecayAppliesDecoupled(t *testing.T) {
	cfg := DefaultAdam()
	cfg.WeightDecay = 0.1
	p := []float32{10}
	m := make([]float32, 1)
	v := make([]float32, 1)
	if err := AdamStep(cfg, 1, p, m, v, []float32{0}); err != nil {
		t.Fatal(err)
	}
	want := float32(10 - 1e-3*0.1*10)
	if math.Abs(float64(p[0]-want)) > 1e-6 {
		t.Errorf("p = %v, want %v (decoupled decay)", p[0], want)
	}
}

// TestExportImportRoundTrip: optimizer state survives export/import exactly
// and training continues identically.
func TestExportImportRoundTrip(t *testing.T) {
	m := buildModel(t)
	ooc := NewOutOfCoreAdam(MemStore{}, DefaultAdam(), "a")
	for _, g := range m.ParamGroups() {
		if err := ooc.InitGroup(g); err != nil {
			t.Fatal(err)
		}
	}
	setGrads(m, 3)
	ooc.BeginStep()
	for _, g := range m.ParamGroups() {
		if err := ooc.UpdateGroup(g); err != nil {
			t.Fatal(err)
		}
	}

	m2 := buildModel(t)
	ooc2 := NewOutOfCoreAdam(MemStore{}, DefaultAdam(), "b")
	for _, g := range m2.ParamGroups() {
		if err := ooc2.InitGroup(g); err != nil {
			t.Fatal(err)
		}
	}
	for _, g := range m.ParamGroups() {
		st, err := ooc.ExportGroup(g.Name, g.NumParams())
		if err != nil {
			t.Fatal(err)
		}
		var dst nn.ParamGroup
		for _, g2 := range m2.ParamGroups() {
			if g2.Name == g.Name {
				dst = g2
			}
		}
		if err := ooc2.ImportGroup(dst, st); err != nil {
			t.Fatal(err)
		}
	}
	if err := ooc2.SetStep(ooc.Step()); err != nil {
		t.Fatal(err)
	}

	// Continue both for one more identical step.
	setGrads(m, 4)
	setGrads(m2, 4)
	ooc.BeginStep()
	ooc2.BeginStep()
	for i, g := range m.ParamGroups() {
		if err := ooc.UpdateGroup(g); err != nil {
			t.Fatal(err)
		}
		if err := ooc2.UpdateGroup(m2.ParamGroups()[i]); err != nil {
			t.Fatal(err)
		}
	}
	pa, pb := m.Params(), m2.Params()
	for i := range pa {
		for j := range pa[i].W.Data {
			if pa[i].W.Data[j] != pb[i].W.Data[j] {
				t.Fatalf("diverged after import at %s[%d]", pa[i].Name, j)
			}
		}
	}
}

func TestImportGroupValidatesSizes(t *testing.T) {
	m := buildModel(t)
	ooc := NewOutOfCoreAdam(MemStore{}, DefaultAdam(), "x")
	g := m.ParamGroups()[0]
	if err := ooc.ImportGroup(g, GroupState{P32: []float32{1}}); err == nil {
		t.Error("short state accepted")
	}
	if err := ooc.SetStep(-1); err == nil {
		t.Error("negative step accepted")
	}
}

func TestSchedules(t *testing.T) {
	if got := ConstantLR(0.5)(17); got != 0.5 {
		t.Errorf("ConstantLR = %v", got)
	}
	s := WarmupCosine(1.0, 10, 100, 0.1)
	if got := s(5); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("warmup midpoint = %v, want 0.5", got)
	}
	if got := s(10); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("warmup end = %v, want 1.0", got)
	}
	// Midway through the cosine the LR sits between floor and base.
	mid := s(55)
	if mid <= 0.1 || mid >= 1.0 {
		t.Errorf("cosine midpoint = %v", mid)
	}
	if got := s(100); got != 0.1 {
		t.Errorf("final LR = %v, want floor", got)
	}
	if got := s(5000); got != 0.1 {
		t.Errorf("past-end LR = %v, want floor", got)
	}
	// Degenerate schedules do not divide by zero.
	if got := WarmupCosine(1, 0, 0, 0)(1); got < 0 {
		t.Errorf("degenerate schedule = %v", got)
	}
}

func TestSetLR(t *testing.T) {
	o := NewOutOfCoreAdam(MemStore{}, DefaultAdam(), "x")
	o.SetLR(0.42)
	if o.LR() != 0.42 {
		t.Errorf("LR = %v", o.LR())
	}
}

func TestExportGroupMissing(t *testing.T) {
	o := NewOutOfCoreAdam(MemStore{}, DefaultAdam(), "x")
	if _, err := o.ExportGroup("ghost", 4); err == nil {
		t.Error("export of missing group accepted")
	}
}

// TestClipNorm: huge per-group gradients are rescaled to the clip norm,
// small ones pass through untouched.
func TestClipNorm(t *testing.T) {
	m := buildModel(t)
	ooc := NewOutOfCoreAdam(MemStore{}, DefaultAdam(), "c")
	if err := ooc.SetClipNorm(1.0); err != nil {
		t.Fatal(err)
	}
	g := m.ParamGroups()[1]
	if err := ooc.InitGroup(g); err != nil {
		t.Fatal(err)
	}
	before, err := ooc.MasterWeights(g.Name, g.NumParams())
	if err != nil {
		t.Fatal(err)
	}
	// Gradients of norm 1000: the clipped update equals the update from
	// the same direction at norm 1.
	for _, p := range g.Params {
		for i := range p.G.Data {
			p.G.Data[i] = 1000 / float32(math.Sqrt(float64(g.NumParams())))
		}
	}
	ooc.BeginStep()
	if err := ooc.UpdateGroup(g); err != nil {
		t.Fatal(err)
	}
	after, err := ooc.MasterWeights(g.Name, g.NumParams())
	if err != nil {
		t.Fatal(err)
	}
	// Each coordinate moved by at most ~LR (Adam's per-coordinate step is
	// bounded by LR regardless, but the clipped gradient is tiny so moments
	// stay small); mainly: the update happened and is finite.
	moved := 0
	for i := range before {
		d := math.Abs(float64(after[i] - before[i]))
		if d > 0 {
			moved++
		}
		if d > 2*DefaultAdam().LR {
			t.Fatalf("coordinate %d moved %v, beyond Adam's bound", i, d)
		}
	}
	if moved == 0 {
		t.Fatal("clipping zeroed the update entirely")
	}
	if err := ooc.SetClipNorm(-1); err == nil {
		t.Error("negative clip norm accepted")
	}
}

func TestLossScalerDynamics(t *testing.T) {
	s, err := NewLossScaler(1 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if s.Scale() != 1<<10 {
		t.Fatalf("initial scale = %v", s.Scale())
	}
	s.OnOverflow()
	if s.Scale() != 1<<9 {
		t.Errorf("after overflow scale = %v, want halved", s.Scale())
	}
	// 100 good steps double the scale.
	for i := 0; i < 100; i++ {
		s.OnGoodStep()
	}
	if s.Scale() != 1<<10 {
		t.Errorf("after growth interval scale = %v, want doubled", s.Scale())
	}
	// Overflows clamp at the floor.
	for i := 0; i < 100; i++ {
		s.OnOverflow()
	}
	if s.Scale() != 1 {
		t.Errorf("floor = %v, want 1", s.Scale())
	}
	// The ceiling holds too.
	big, _ := NewLossScaler(1 << 24)
	for i := 0; i < 200; i++ {
		big.OnGoodStep()
	}
	if big.Scale() > 1<<24 {
		t.Errorf("ceiling exceeded: %v", big.Scale())
	}
	if _, err := NewLossScaler(0.5); err == nil {
		t.Error("sub-1 initial scale accepted")
	}
}

func TestGradScaleUnscalesInOptimizer(t *testing.T) {
	m := buildModel(t)
	ooc := NewOutOfCoreAdam(MemStore{}, DefaultAdam(), "s")
	g := m.ParamGroups()[0]
	if err := ooc.InitGroup(g); err != nil {
		t.Fatal(err)
	}
	if err := ooc.SetGradScale(0); err == nil {
		t.Error("zero grad scale accepted")
	}
	if err := ooc.SetGradScale(1024); err != nil {
		t.Fatal(err)
	}
	before, _ := ooc.MasterWeights(g.Name, g.NumParams())
	// Gradients at 1024x: after unscale they are unit-sized, so Adam's
	// first step moves each master by ~LR.
	for _, p := range g.Params {
		for i := range p.G.Data {
			p.G.Data[i] = 1024
		}
	}
	ooc.BeginStep()
	if err := ooc.UpdateGroup(g); err != nil {
		t.Fatal(err)
	}
	after, _ := ooc.MasterWeights(g.Name, g.NumParams())
	for i := range before {
		if d := math.Abs(float64(after[i] - before[i])); d > 1.5*DefaultAdam().LR {
			t.Fatalf("unscale failed: master moved %v", d)
		}
	}
	if err := ooc.CancelStep(); err != nil {
		t.Fatal(err)
	}
	if ooc.Step() != 0 {
		t.Errorf("step after cancel = %d", ooc.Step())
	}
	if err := ooc.CancelStep(); err == nil {
		t.Error("cancel below zero accepted")
	}
}

// getOnlyStore hides a store's ReadInto method, forcing the optimizer onto
// the allocating Get path.
type getOnlyStore struct{ s Store }

func (g getOnlyStore) Put(key string, data []byte) error { return g.s.Put(key, data) }
func (g getOnlyStore) Get(key string) ([]byte, error)    { return g.s.Get(key) }

// TestReadIntoMatchesGet: the scratch-buffered ReadInto fast path and the
// allocating Get fallback drive bit-identical updates — the pooled spill
// path changes no values.
func TestReadIntoMatchesGet(t *testing.T) {
	modelA := buildModel(t)
	modelB := buildModel(t)

	fast := NewOutOfCoreAdam(MemStore{}, DefaultAdam(), "fast")
	slow := NewOutOfCoreAdam(getOnlyStore{MemStore{}}, DefaultAdam(), "slow")
	for _, g := range modelA.ParamGroups() {
		if err := fast.InitGroup(g); err != nil {
			t.Fatal(err)
		}
	}
	for _, g := range modelB.ParamGroups() {
		if err := slow.InitGroup(g); err != nil {
			t.Fatal(err)
		}
	}
	for step := 1; step <= 3; step++ {
		setGrads(modelA, int64(step))
		setGrads(modelB, int64(step))
		fast.BeginStep()
		slow.BeginStep()
		for _, g := range modelA.ParamGroups() {
			if err := fast.UpdateGroup(g); err != nil {
				t.Fatal(err)
			}
		}
		for _, g := range modelB.ParamGroups() {
			if err := slow.UpdateGroup(g); err != nil {
				t.Fatal(err)
			}
		}
	}
	pa, pb := modelA.Params(), modelB.Params()
	for i := range pa {
		for j := range pa[i].W.Data {
			if pa[i].W.Data[j] != pb[i].W.Data[j] {
				t.Fatalf("param %s[%d]: ReadInto %v vs Get %v",
					pa[i].Name, j, pa[i].W.Data[j], pb[i].W.Data[j])
			}
		}
	}
}
