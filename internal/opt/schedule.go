package opt

import "math"

// Schedule maps a 1-based optimizer step to a learning rate.
type Schedule func(step int) float64

// ConstantLR returns lr for every step.
func ConstantLR(lr float64) Schedule {
	return func(int) float64 { return lr }
}

// WarmupCosine linearly warms up to base over warmup steps, then decays to
// floor along a cosine over the remaining total-warmup steps — the schedule
// conventionally used for LLM fine-tuning.
func WarmupCosine(base float64, warmup, total int, floor float64) Schedule {
	if warmup < 0 {
		warmup = 0
	}
	if total <= warmup {
		total = warmup + 1
	}
	return func(step int) float64 {
		if step <= warmup {
			return base * float64(step) / float64(max(warmup, 1))
		}
		if step >= total {
			return floor
		}
		progress := float64(step-warmup) / float64(total-warmup)
		return floor + (base-floor)*0.5*(1+math.Cos(math.Pi*progress))
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// SetLR changes the optimizer's learning rate; the engine drives it from a
// Schedule at the start of each step.
func (o *OutOfCoreAdam) SetLR(lr float64) { o.cfg.LR = lr }

// LR reports the current learning rate.
func (o *OutOfCoreAdam) LR() float64 { return o.cfg.LR }
