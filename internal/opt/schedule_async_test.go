package opt

import (
	"strings"
	"sync"
	"testing"
)

// lockedStore guards a MemStore with a mutex for the prefetcher/applier
// tests: those consumers require a concurrency-safe Store (nvme.Array in
// the engine), and the bare test map is not one.
type lockedStore struct {
	mu sync.Mutex
	m  MemStore
}

func (s *lockedStore) Put(key string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Put(key, data)
}

func (s *lockedStore) Get(key string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Get(key)
}

func (s *lockedStore) ReadInto(key string, dst []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.ReadInto(key, dst)
}

func TestScheduleModeParse(t *testing.T) {
	for _, m := range []ScheduleMode{ScheduleSync, ScheduleReadiness, ScheduleAsync} {
		got, err := ParseScheduleMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseScheduleMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseScheduleMode("eventually"); err == nil {
		t.Error("unknown mode accepted")
	}
}

// TestPrefetcherBitIdentity: consuming state through the readiness
// prefetcher produces bit-identical parameters to the synchronous loads —
// the prefetcher only changes when the bytes are fetched, not what the
// update computes.
func TestPrefetcherBitIdentity(t *testing.T) {
	modelSync := buildModel(t)
	modelPref := buildModel(t)

	sync := NewOutOfCoreAdam(MemStore{}, DefaultAdam(), "s")
	pref := NewOutOfCoreAdam(&lockedStore{m: MemStore{}}, DefaultAdam(), "s")
	for _, g := range modelSync.ParamGroups() {
		if err := sync.InitGroup(g); err != nil {
			t.Fatal(err)
		}
	}
	groups := modelPref.ParamGroups()
	for _, g := range groups {
		if err := pref.InitGroup(g); err != nil {
			t.Fatal(err)
		}
	}
	p := NewStatePrefetcher(pref, 2, len(groups))
	defer p.Close()
	for _, g := range groups {
		p.Register(g)
	}

	for step := 1; step <= 3; step++ {
		setGrads(modelSync, int64(step))
		setGrads(modelPref, int64(step))
		sync.BeginStep()
		pref.BeginStep()
		for _, g := range modelSync.ParamGroups() {
			if err := sync.UpdateGroup(g); err != nil {
				t.Fatal(err)
			}
		}
		// Launch every fetch first (gradient-arrival order), consume after:
		// the reads run ahead of the updates, depth-bounded.
		for _, g := range groups {
			p.Launch(g.Name)
		}
		for _, g := range groups {
			if err := p.UpdateGroup(g); err != nil {
				t.Fatal(err)
			}
		}
		if err := p.DrainLive(); err != nil {
			t.Fatal(err)
		}
	}

	a, b := modelSync.Params(), modelPref.Params()
	for i := range a {
		for j := range a[i].W.Data {
			if a[i].W.Data[j] != b[i].W.Data[j] {
				t.Fatalf("param %d[%d]: sync %v vs prefetched %v", i, j, a[i].W.Data[j], b[i].W.Data[j])
			}
		}
	}
}

// TestPrefetcherFallback: UpdateGroup without a prior Launch falls back to
// the synchronous load, and an abandoned Launch is reclaimed by DrainLive.
func TestPrefetcherFallback(t *testing.T) {
	m := buildModel(t)
	o := NewOutOfCoreAdam(&lockedStore{m: MemStore{}}, DefaultAdam(), "x")
	groups := m.ParamGroups()
	for _, g := range groups {
		if err := o.InitGroup(g); err != nil {
			t.Fatal(err)
		}
	}
	p := NewStatePrefetcher(o, 1, len(groups))
	defer p.Close()
	for _, g := range groups {
		p.Register(g)
	}
	setGrads(m, 1)
	o.BeginStep()
	if err := p.UpdateGroup(groups[0]); err != nil { // no Launch: sync fallback
		t.Fatal(err)
	}
	p.Launch(groups[1].Name) // abandoned: a failed step never consumes it
	if err := p.DrainLive(); err != nil {
		t.Fatal(err)
	}
	p.Close()
	p.Close() // idempotent
}

// TestAsyncApplierMatchesSync: staging a group and waiting for the
// background apply before the next step is bit-identical to the synchronous
// update — deferral changes when the update runs, not what it computes.
func TestAsyncApplierMatchesSync(t *testing.T) {
	modelSync := buildModel(t)
	modelAsync := buildModel(t)

	sync := NewOutOfCoreAdam(MemStore{}, DefaultAdam(), "s")
	async := NewOutOfCoreAdam(&lockedStore{m: MemStore{}}, DefaultAdam(), "s")
	for _, g := range modelSync.ParamGroups() {
		if err := sync.InitGroup(g); err != nil {
			t.Fatal(err)
		}
	}
	groups := modelAsync.ParamGroups()
	for _, g := range groups {
		if err := async.InitGroup(g); err != nil {
			t.Fatal(err)
		}
	}
	a := NewAsyncApplier(async, len(groups))
	defer a.Close()
	slots := make([]*DeferredUpdate, len(groups))
	for i, g := range groups {
		slots[i] = async.NewDeferred(g)
	}

	for step := 1; step <= 3; step++ {
		setGrads(modelSync, int64(step))
		setGrads(modelAsync, int64(step))
		sync.BeginStep()
		async.BeginStep()
		for _, g := range modelSync.ParamGroups() {
			if err := sync.UpdateGroup(g); err != nil {
				t.Fatal(err)
			}
		}
		for i, g := range groups {
			if err := async.StageDeferred(slots[i], g); err != nil {
				t.Fatal(err)
			}
			a.Submit(slots[i])
		}
		for _, d := range slots {
			if err := d.Wait(); err != nil {
				t.Fatal(err)
			}
		}
	}

	pa, pb := modelSync.Params(), modelAsync.Params()
	for i := range pa {
		for j := range pa[i].W.Data {
			if pa[i].W.Data[j] != pb[i].W.Data[j] {
				t.Fatalf("param %d[%d]: sync %v vs deferred %v", i, j, pa[i].W.Data[j], pb[i].W.Data[j])
			}
		}
	}
}

// TestAsyncApplierFault: a store failure inside the background apply
// surfaces from Wait, leaves the working weights untouched, and frees the
// slot for reuse.
func TestAsyncApplierFault(t *testing.T) {
	m := buildModel(t)
	store := MemStore{}
	o := NewOutOfCoreAdam(store, DefaultAdam(), "x")
	g := m.ParamGroups()[0]
	if err := o.InitGroup(g); err != nil {
		t.Fatal(err)
	}
	a := NewAsyncApplier(o, 1)
	defer a.Close()
	d := o.NewDeferred(g)

	setGrads(m, 1)
	o.BeginStep()
	before := append([]float32(nil), g.Params[0].W.Data...)
	delete(store, o.key(g.Name, "m")) // media failure stand-in
	if err := o.StageDeferred(d, g); err != nil {
		t.Fatal(err)
	}
	a.Submit(d)
	err := d.Wait()
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("Wait after store fault = %v, want missing-object error", err)
	}
	if d.Pending() {
		t.Fatal("slot still pending after failed Wait")
	}
	for i, v := range g.Params[0].W.Data {
		if v != before[i] {
			t.Fatal("failed apply modified working weights")
		}
	}
}

func TestStageDeferredErrors(t *testing.T) {
	m := buildModel(t)
	o := NewOutOfCoreAdam(MemStore{}, DefaultAdam(), "x")
	g := m.ParamGroups()[0]
	if err := o.InitGroup(g); err != nil {
		t.Fatal(err)
	}
	d := o.NewDeferred(g)
	if err := o.StageDeferred(d, g); err == nil {
		t.Error("StageDeferred before BeginStep accepted")
	}
	o.BeginStep()
	if err := o.StageDeferred(d, g); err != nil {
		t.Fatal(err)
	}
	if err := o.StageDeferred(d, g); err == nil {
		t.Error("double StageDeferred on a pending slot accepted")
	}
}
