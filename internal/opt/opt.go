// Package opt implements the optimizer side of the paper's model-state
// management: mixed-precision Adam with fp32 master weights and moments
// (P32 + OS32, Table II), and an out-of-core variant that streams each
// parameter group's state through a storage backend — the CPU optimizer
// that active gradient offloading (§IV-C) drives.
//
// The out-of-core optimizer is exactly equivalent to the in-memory one for
// any chunking: state round-trips through storage as raw little-endian
// float32, and gradients are consumed in fp16 (G16) in both paths.
package opt

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"ratel/internal/nn"
	"ratel/internal/nvme"
	"ratel/internal/obs"
	"ratel/internal/tensor"
	"ratel/internal/tensor/pool"
)

// AdamConfig holds the Adam hyperparameters. A non-zero WeightDecay selects
// decoupled weight decay (AdamW), the variant commonly used for LLM
// fine-tuning.
type AdamConfig struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64
}

// DefaultAdam is the conventional Adam configuration used for LLM
// fine-tuning.
func DefaultAdam() AdamConfig {
	return AdamConfig{LR: 1e-3, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// AdamStep applies one bias-corrected Adam update to p32 in place, with
// step t (1-based) and moments m, v. The gradient is consumed as given
// (the engine rounds it to fp16 before handing it over: G16).
//
// Elements update independently, so the slice is cut into chunks sharded
// across the worker pool — the paper's multi-threaded CPU optimizer
// (§IV-C). Results are bit-identical at any thread count.
func AdamStep(cfg AdamConfig, t int, p32, m, v, grad []float32) error {
	if len(p32) != len(m) || len(p32) != len(v) || len(p32) != len(grad) {
		return fmt.Errorf("opt: mismatched state sizes %d/%d/%d/%d", len(p32), len(m), len(v), len(grad))
	}
	if t < 1 {
		return fmt.Errorf("opt: step %d, want >= 1", t)
	}
	b1c := 1 - math.Pow(cfg.Beta1, float64(t))
	b2c := 1 - math.Pow(cfg.Beta2, float64(t))
	// ~20 scalar ops per element (sqrt included).
	work := 20 * int64(len(p32))
	if pool.InlineWork(work) {
		adamChunk(cfg, b1c, b2c, p32, m, v, grad)
		return nil
	}
	pool.ForWork(len(p32), adamChunkGrain, work, func(lo, hi int) {
		adamChunk(cfg, b1c, b2c, p32[lo:hi], m[lo:hi], v[lo:hi], grad[lo:hi])
	})
	return nil
}

// adamChunkGrain is the minimum parameters per pool chunk: small enough to
// load-balance, large enough that chunk dispatch is noise next to the
// floating-point work.
const adamChunkGrain = 8192

// adamChunk is the serial Adam kernel over one contiguous chunk of state.
func adamChunk(cfg AdamConfig, b1c, b2c float64, p32, m, v, grad []float32) {
	for i := range p32 {
		g := float64(grad[i])
		mi := cfg.Beta1*float64(m[i]) + (1-cfg.Beta1)*g
		vi := cfg.Beta2*float64(v[i]) + (1-cfg.Beta2)*g*g
		m[i], v[i] = float32(mi), float32(vi)
		mhat := mi / b1c
		vhat := vi / b2c
		p := float64(p32[i])
		p -= cfg.LR * mhat / (math.Sqrt(vhat) + cfg.Eps)
		if cfg.WeightDecay != 0 {
			p -= cfg.LR * cfg.WeightDecay * float64(p32[i])
		}
		p32[i] = float32(p)
	}
}

// Store is the storage the out-of-core optimizer streams model states
// through; *nvme.Array satisfies it. Put must not retain data after it
// returns — the optimizer encodes into reusable scratch buffers. Get returns
// a buffer the caller owns.
type Store interface {
	Put(key string, data []byte) error
	Get(key string) ([]byte, error)
}

// ReadIntoStore is the optional allocation-free read path: stores that
// implement it (nvme.Array, MemStore) let the optimizer stream state into
// its own scratch buffer instead of allocating per Get. dst must be exactly
// the stored object's size.
type ReadIntoStore interface {
	ReadInto(key string, dst []byte) error
}

// classedStore / classedReadStore are the optional traffic-classed paths:
// stores backed by the NVMe transfer scheduler (*nvme.Array) expose them so
// the optimizer's state streams carry their true priority — reads ahead of
// the Adam sweep are latency-sensitive (ClassOptRead), state writebacks are
// not (ClassWriteback). Stores without classes (MemStore) fall back to the
// plain Put/ReadInto paths; the bytes moved are identical either way.
type classedStore interface {
	PutClass(key string, data []byte, class nvme.Class) error
}

type classedReadStore interface {
	ReadIntoClass(key string, dst []byte, class nvme.Class) error
}

// MemStore is an in-memory Store for tests and the in-memory reference
// optimizer.
type MemStore map[string][]byte

// Put stores a copy of data.
func (s MemStore) Put(key string, data []byte) error {
	s[key] = append([]byte(nil), data...)
	return nil
}

// Get returns a copy of the stored bytes.
func (s MemStore) Get(key string) ([]byte, error) {
	b, ok := s[key]
	if !ok {
		return nil, fmt.Errorf("opt: memstore: missing %q", key)
	}
	return append([]byte(nil), b...), nil
}

// ReadInto copies the stored bytes into dst, which must have the object's
// exact size.
func (s MemStore) ReadInto(key string, dst []byte) error {
	b, ok := s[key]
	if !ok {
		return fmt.Errorf("opt: memstore: missing %q", key)
	}
	if len(dst) != len(b) {
		return fmt.Errorf("opt: memstore: ReadInto %q: dst %d bytes, object %d", key, len(dst), len(b))
	}
	copy(dst, b)
	return nil
}

// OutOfCoreAdam keeps fp32 master weights and Adam moments in a Store and
// updates one parameter group at a time — the paper's CPU optimizer
// operating on model states homed on NVMe.
type OutOfCoreAdam struct {
	cfg       AdamConfig
	store     Store
	readInto  ReadIntoStore    // store's optional in-place read path, nil if absent
	putClass  classedStore     // store's optional classed write path, nil if absent
	readClass classedReadStore // store's optional classed read path, nil if absent
	prefix    string
	step      int
	gradScale float64 // loss-scale divisor; 0 or 1 means unscaled
	clipNorm  float64 // per-group L2 clip; 0 disables

	tracer     *obs.Tracer       // optional: records per-chunk Adam spans
	flows      *obs.FlowLedger   // optional: per-edge/purpose byte accounting
	adamLabels map[string]string // group -> "group/opt-adam", precomputed
	keys       map[string]groupKeys

	// scr is the UpdateGroup scratch: state and gradient staging plus the
	// byte codec buffer, sized to the largest group seen and reused for the
	// optimizer's lifetime. scrMu serializes UpdateGroup — the engine's
	// pipeline runs group updates on one worker, so the lock is uncontended
	// and exists only to keep concurrent misuse safe.
	scrMu sync.Mutex
	scr   struct {
		p32, m, v, grad []float32
		enc             []byte
	}

	kernelParams atomic.Int64 // params the Adam kernel has updated
	kernelNanos  atomic.Int64 // wall-clock spent inside the Adam kernel
}

// groupKeys are a group's precomputed store keys (the hot path must not
// Sprintf per transfer).
type groupKeys struct {
	p32, m, v string
}

// KernelStats reports cumulative CPU-optimizer kernel work: parameters
// updated and wall-clock spent in the Adam kernel (excluding state
// streaming). Their quotient is the live Adam params/s rate the metrics
// registry exports and the calibration report compares against
// agoffload.MeasureAdamRate.
func (o *OutOfCoreAdam) KernelStats() (params int64, busy time.Duration) {
	return o.kernelParams.Load(), time.Duration(o.kernelNanos.Load())
}

// SetTracer installs a wall-clock span tracer: every UpdateGroup records
// one span per parameter group (the paper's per-tensor optimizer chunk) on
// obs.LaneAdam around the Adam kernel, named after the simulator's
// "<group>/opt-adam" task labels so measured and simulated timelines join
// by name. Call before training starts.
func (o *OutOfCoreAdam) SetTracer(tr *obs.Tracer) { o.tracer = tr }

// SetFlowLedger installs a byte-flow ledger: every UpdateGroup credits
// its gradient staging (fp16 wire bytes, compute→host), its fp16
// parameter install (host→compute), and the fp32 codec traffic of the
// state stream (3 tensors each way). The host↔NVMe bytes themselves are
// accounted by the store (nvme.Array.SetObservers), not here — the two
// views reconcile because the optimizer streams state through the store
// uncompressed. Call before training starts; updates are allocation-free.
func (o *OutOfCoreAdam) SetFlowLedger(l *obs.FlowLedger) { o.flows = l }

// adamLabel returns the group's precomputed span label (built at InitGroup
// so the UpdateGroup hot path never concatenates).
func (o *OutOfCoreAdam) adamLabel(group string) string {
	if l, ok := o.adamLabels[group]; ok {
		return l
	}
	return group
}

// SetClipNorm enables per-group gradient clipping: each parameter group's
// gradient is rescaled so its L2 norm does not exceed n. Note this is
// per-GROUP clipping, not global-norm clipping — the global norm is only
// known once every gradient has arrived, which is exactly the serialization
// active gradient offloading exists to avoid.
func (o *OutOfCoreAdam) SetClipNorm(n float64) error {
	if n < 0 {
		return fmt.Errorf("opt: negative clip norm %v", n)
	}
	o.clipNorm = n
	return nil
}

// NewOutOfCoreAdam creates an optimizer over the given store. prefix
// namespaces its keys.
func NewOutOfCoreAdam(store Store, cfg AdamConfig, prefix string) *OutOfCoreAdam {
	o := &OutOfCoreAdam{cfg: cfg, store: store, prefix: prefix}
	o.readInto, _ = store.(ReadIntoStore)
	o.putClass, _ = store.(classedStore)
	o.readClass, _ = store.(classedReadStore)
	return o
}

// Step reports the number of completed optimizer steps.
func (o *OutOfCoreAdam) Step() int { return o.step }

func (o *OutOfCoreAdam) key(group, kind string) string {
	return o.prefix + "/" + group + "/" + kind
}

// groupKeysFor returns the group's precomputed keys, building and caching
// them on first use.
func (o *OutOfCoreAdam) groupKeysFor(group string) groupKeys {
	if ks, ok := o.keys[group]; ok {
		return ks
	}
	if o.keys == nil {
		o.keys = make(map[string]groupKeys)
	}
	ks := groupKeys{
		p32: o.key(group, "p32"),
		m:   o.key(group, "m"),
		v:   o.key(group, "v"),
	}
	o.keys[group] = ks
	return ks
}

// InitGroup seeds the store with the group's fp32 masters (from the current
// working weights) and zero moments, and rounds the working weights to fp16
// (the P16 copies the GPU computes with). State flattens and encodes through
// the optimizer's scratch buffers — the same ones UpdateGroup streams
// through — so initialization warms them to the largest group's size
// instead of allocating per call.
func (o *OutOfCoreAdam) InitGroup(g nn.ParamGroup) error {
	if o.adamLabels == nil {
		o.adamLabels = make(map[string]string)
	}
	o.adamLabels[g.Name] = g.Name + "/opt-adam"
	ks := o.groupKeysFor(g.Name) // precompute store keys off the hot path
	o.scrMu.Lock()
	defer o.scrMu.Unlock()
	n := g.NumParams()
	flat := scrF32(&o.scr.p32, n)
	off := 0
	for _, p := range g.Params {
		off += copy(flat[off:], p.W.Data)
	}
	if cap(o.scr.enc) < 4*n {
		o.scr.enc = make([]byte, 4*n)
	}
	buf := o.scr.enc[:4*n]
	if err := o.saveFP32(buf, ks.p32, flat); err != nil {
		return fmt.Errorf("opt: init %s: %w", g.Name, err)
	}
	zero := scrF32(&o.scr.m, n)
	for i := range zero {
		zero[i] = 0
	}
	if err := o.saveFP32(buf, ks.m, zero); err != nil {
		return fmt.Errorf("opt: init %s: %w", g.Name, err)
	}
	if err := o.saveFP32(buf, ks.v, zero); err != nil {
		return fmt.Errorf("opt: init %s: %w", g.Name, err)
	}
	for _, p := range g.Params {
		p.W.RoundFP16InPlace()
	}
	return nil
}

// BeginStep advances the optimizer step counter; call once per training
// iteration before the group updates.
func (o *OutOfCoreAdam) BeginStep() { o.step++ }

// StateWire is one group's optimizer state in wire form: the raw
// little-endian fp32 bytes of the masters and both Adam moments, exactly as
// the store holds them (4*NumParams bytes each). The readiness-ordered
// prefetcher fills one from the store ahead of the update and the optimizer
// decodes it through the same codec path a direct load uses, so a prefetched
// update is bit-identical to a synchronous one.
type StateWire struct {
	P32, M, V []byte
}

// UpdateGroup is the active-gradient-offloading handler body: it consumes
// the group's gradients (rounded to fp16, as they arrive over PCIe),
// streams P32+OS32 in from the store, applies Adam, streams the updated
// state back, and installs the new fp16 working weights.
func (o *OutOfCoreAdam) UpdateGroup(g nn.ParamGroup) error {
	return o.applyGroup(g, nil)
}

// UpdateGroupWire is UpdateGroup consuming state the readiness prefetcher
// already read: wire holds the group's raw store bytes, so the only
// difference from UpdateGroup is *when* the store read happened — the
// decoded values, and therefore the update, are bit-identical.
func (o *OutOfCoreAdam) UpdateGroupWire(g nn.ParamGroup, wire *StateWire) error {
	return o.applyGroup(g, wire)
}

// applyGroup runs one group update. wire, when non-nil, supplies the state
// bytes (prefetched); nil streams them from the store inline.
func (o *OutOfCoreAdam) applyGroup(g nn.ParamGroup, wire *StateWire) error {
	if o.step < 1 {
		return fmt.Errorf("opt: UpdateGroup(%s) before BeginStep", g.Name)
	}
	o.scrMu.Lock()
	defer o.scrMu.Unlock()
	ks := o.groupKeysFor(g.Name)
	n := g.NumParams()
	p32 := scrF32(&o.scr.p32, n)
	m := scrF32(&o.scr.m, n)
	v := scrF32(&o.scr.v, n)
	if cap(o.scr.enc) < 4*n {
		o.scr.enc = make([]byte, 4*n)
	}
	buf := o.scr.enc[:4*n]
	if wire != nil {
		if err := decodeWire(wire.P32, p32, g.Name, "p32"); err != nil {
			return err
		}
		if err := decodeWire(wire.M, m, g.Name, "m"); err != nil {
			return err
		}
		if err := decodeWire(wire.V, v, g.Name, "v"); err != nil {
			return err
		}
	} else {
		if err := o.loadFP32Into(p32, buf, ks.p32, g.Name, "p32"); err != nil {
			return err
		}
		if err := o.loadFP32Into(m, buf, ks.m, g.Name, "m"); err != nil {
			return err
		}
		if err := o.loadFP32Into(v, buf, ks.v, g.Name, "v"); err != nil {
			return err
		}
	}
	// Three fp32 state tensors decoded from their wire form (P32, M, V).
	o.flows.Add(obs.EdgeCodecDecode, obs.FlowOptState, int64(3*4*n))

	inv := 1.0
	if o.gradScale > 0 {
		inv = 1 / o.gradScale
	}
	grad := scrF32(&o.scr.grad, n)
	idx := 0
	for _, p := range g.Params {
		if inv == 1 {
			// G16 boundary, unscaled: stage through the chunked fp16
			// round kernel (vectorized where available, bit-identical to
			// the scalar path per element).
			if err := tensor.RoundFP16Into(grad[idx:idx+len(p.G.Data)], p.G.Data); err != nil {
				return fmt.Errorf("opt: stage grad %s: %w", g.Name, err)
			}
			idx += len(p.G.Data)
			continue
		}
		for _, gv := range p.G.Data {
			// G16 boundary: gradients cross PCIe in fp16 (at loss-scaled
			// magnitude), then unscale in fp32. The unscale multiply is
			// float64 — a float32 vector multiply would change bits, so
			// the scaled path stays scalar.
			grad[idx] = float32(float64(tensor.RoundFP16(gv)) * inv)
			idx++
		}
	}
	// Gradients crossed the compute→host boundary in fp16 (G16).
	o.flows.Add(obs.EdgeComputeHost, obs.FlowGrads, int64(2*n))
	if o.clipNorm > 0 {
		var sq float64
		for _, gv := range grad {
			sq += float64(gv) * float64(gv)
		}
		if norm := math.Sqrt(sq); norm > o.clipNorm {
			scale := float32(o.clipNorm / norm)
			for i := range grad {
				grad[i] *= scale
			}
		}
	}
	sp := o.tracer.StartSpan(obs.LaneAdam, o.adamLabel(g.Name))
	kernelStart := time.Now()
	if err := AdamStep(o.cfg, o.step, p32, m, v, grad); err != nil {
		sp.End()
		return fmt.Errorf("opt: update %s: %w", g.Name, err)
	}
	o.kernelNanos.Add(time.Since(kernelStart).Nanoseconds())
	o.kernelParams.Add(int64(n))
	sp.End()
	if err := o.saveFP32(buf, ks.p32, p32); err != nil {
		return err
	}
	if err := o.saveFP32(buf, ks.m, m); err != nil {
		return err
	}
	if err := o.saveFP32(buf, ks.v, v); err != nil {
		return err
	}
	// Three fp32 state tensors re-encoded to their wire form.
	o.flows.Add(obs.EdgeCodecEncode, obs.FlowOptState, int64(3*4*n))
	// Install P16 = fp16(P32) working copies through the chunked round
	// kernel (bit-identical to the scalar loop per element).
	off := 0
	for _, p := range g.Params {
		if err := tensor.RoundFP16Into(p.W.Data, p32[off:off+len(p.W.Data)]); err != nil {
			return fmt.Errorf("opt: install %s: %w", g.Name, err)
		}
		off += len(p.W.Data)
	}
	// Fresh fp16 working weights cross back to the compute tier.
	o.flows.Add(obs.EdgeComputeHost, obs.FlowParams, int64(2*n))
	return nil
}

// scrF32 returns a scratch slice of length n backed by *s, growing the
// backing array when the group is larger than any seen before. Contents are
// unspecified; every caller fully overwrites its slice.
func scrF32(s *[]float32, n int) []float32 {
	if cap(*s) < n {
		*s = make([]float32, n)
	}
	return (*s)[:n]
}

// decodeWire decodes one prefetched state tensor from its wire bytes.
func decodeWire(src []byte, dst []float32, group, kind string) error {
	if err := tensor.FromFP32Bytes(src, dst); err != nil {
		return fmt.Errorf("opt: decode prefetched %s/%s: %w", group, kind, err)
	}
	return nil
}

// loadFP32Into streams one state tensor into dst, using the store's in-place
// read path when available (buf is the shared byte staging buffer, exactly
// 4*len(dst) bytes).
func (o *OutOfCoreAdam) loadFP32Into(dst []float32, buf []byte, key, group, kind string) error {
	if o.readInto != nil {
		var err error
		if o.readClass != nil {
			err = o.readClass.ReadIntoClass(key, buf, nvme.ClassOptRead)
		} else {
			err = o.readInto.ReadInto(key, buf)
		}
		if err != nil {
			return fmt.Errorf("opt: load %s/%s: %w", group, kind, err)
		}
		if err := tensor.FromFP32Bytes(buf, dst); err != nil {
			return fmt.Errorf("opt: decode %s/%s: %w", group, kind, err)
		}
		return nil
	}
	b, err := o.store.Get(key)
	if err != nil {
		return fmt.Errorf("opt: load %s/%s: %w", group, kind, err)
	}
	if err := tensor.FromFP32Bytes(b, dst); err != nil {
		return fmt.Errorf("opt: decode %s/%s: %w", group, kind, err)
	}
	return nil
}

// saveFP32 encodes vals into buf and writes it to the store. Safe because
// Store.Put must not retain its argument.
func (o *OutOfCoreAdam) saveFP32(buf []byte, key string, vals []float32) error {
	if err := tensor.ToFP32BytesInto(buf, vals); err != nil {
		return err
	}
	if o.putClass != nil {
		return o.putClass.PutClass(key, buf, nvme.ClassWriteback)
	}
	return o.store.Put(key, buf)
}

// MasterWeights returns the group's current fp32 masters (a copy), for
// checkpointing and tests.
func (o *OutOfCoreAdam) MasterWeights(group string, n int) ([]float32, error) {
	return o.loadFP32(group, "p32", n)
}

// GroupState is the full optimizer state of one parameter group: fp32
// masters and Adam moments (P32 + OS32, Table II).
type GroupState struct {
	P32, M, V []float32
}

// ExportGroup extracts a group's state for checkpointing.
func (o *OutOfCoreAdam) ExportGroup(group string, n int) (GroupState, error) {
	var st GroupState
	var err error
	if st.P32, err = o.loadFP32(group, "p32", n); err != nil {
		return GroupState{}, err
	}
	if st.M, err = o.loadFP32(group, "m", n); err != nil {
		return GroupState{}, err
	}
	if st.V, err = o.loadFP32(group, "v", n); err != nil {
		return GroupState{}, err
	}
	return st, nil
}

// ImportGroup restores a group's state from a checkpoint and installs the
// fp16 working weights into the group's tensors.
func (o *OutOfCoreAdam) ImportGroup(g nn.ParamGroup, st GroupState) error {
	n := g.NumParams()
	if len(st.P32) != n || len(st.M) != n || len(st.V) != n {
		return fmt.Errorf("opt: import %s: state sizes %d/%d/%d for %d params",
			g.Name, len(st.P32), len(st.M), len(st.V), n)
	}
	ks := o.groupKeysFor(g.Name)
	o.scrMu.Lock()
	defer o.scrMu.Unlock()
	if cap(o.scr.enc) < 4*n {
		o.scr.enc = make([]byte, 4*n)
	}
	buf := o.scr.enc[:4*n]
	if err := o.saveFP32(buf, ks.p32, st.P32); err != nil {
		return fmt.Errorf("opt: import %s: %w", g.Name, err)
	}
	if err := o.saveFP32(buf, ks.m, st.M); err != nil {
		return fmt.Errorf("opt: import %s: %w", g.Name, err)
	}
	if err := o.saveFP32(buf, ks.v, st.V); err != nil {
		return fmt.Errorf("opt: import %s: %w", g.Name, err)
	}
	off := 0
	for _, p := range g.Params {
		if err := tensor.RoundFP16Into(p.W.Data, st.P32[off:off+len(p.W.Data)]); err != nil {
			return fmt.Errorf("opt: import %s: %w", g.Name, err)
		}
		off += len(p.W.Data)
	}
	return nil
}

// SetStep restores the optimizer step counter from a checkpoint.
func (o *OutOfCoreAdam) SetStep(step int) error {
	if step < 0 {
		return fmt.Errorf("opt: negative step %d", step)
	}
	o.step = step
	return nil
}

// loadFP32 returns one state tensor as a fresh caller-owned slice. It
// streams through the persistent scratch under scrMu exactly like
// UpdateGroup — the only allocation is the result itself, so checkpoint and
// export traffic stays off the steady-state alloc budget.
func (o *OutOfCoreAdam) loadFP32(group, kind string, n int) ([]float32, error) {
	out := make([]float32, n)
	o.scrMu.Lock()
	defer o.scrMu.Unlock()
	if cap(o.scr.enc) < 4*n {
		o.scr.enc = make([]byte, 4*n)
	}
	buf := o.scr.enc[:4*n]
	if err := o.loadFP32Into(out, buf, o.key(group, kind), group, kind); err != nil {
		return nil, err
	}
	return out, nil
}
