package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"ratel/internal/sim"
)

func timeline(t *testing.T) sim.Result {
	t.Helper()
	res, err := sim.Run([]sim.Task{
		{ID: 0, Label: "fwd", Resource: sim.GPUCompute, Duration: 4},
		{ID: 1, Label: "act-out", Resource: sim.PCIeG2M, Duration: 2, Deps: []int{0}},
		{ID: 2, Label: "bwd", Resource: sim.GPUCompute, Duration: 6, Deps: []int{0}},
		{ID: 3, Label: "opt", Resource: sim.CPUAdam, Duration: 3, Deps: []int{2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestGantt(t *testing.T) {
	out := Gantt(timeline(t), 40)
	for _, want := range []string{"gpu", "pcie-g2m", "cpu-adam", "ssd"} {
		if !strings.Contains(out, want) {
			t.Errorf("gantt missing resource row %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "#") {
		t.Error("gantt has no busy glyphs")
	}
	if got := Gantt(sim.Result{}, 40); !strings.Contains(got, "empty") {
		t.Errorf("empty timeline render = %q", got)
	}
	// Narrow widths are clamped rather than breaking.
	if out := Gantt(timeline(t), 1); !strings.Contains(out, "gpu") {
		t.Error("clamped-width gantt broken")
	}
}

func TestStageUtilization(t *testing.T) {
	res := timeline(t)
	w := StageWindows{ForwardEnd: 4, BackwardEnd: 10, End: 13}
	util := StageUtilization(res, w)
	if got := util["forward"][sim.GPUCompute]; got != 1.0 {
		t.Errorf("forward GPU util = %v, want 1.0", got)
	}
	if got := util["backward"][sim.GPUCompute]; got != 1.0 {
		t.Errorf("backward GPU util = %v, want 1.0", got)
	}
	// The activation offload runs in the first 2s of the backward window.
	if got := util["backward"][sim.PCIeG2M]; got < 0.3 || got > 0.4 {
		t.Errorf("backward G2M util = %v, want 1/3", got)
	}
	if got := util["optimizer"][sim.CPUAdam]; got != 1.0 {
		t.Errorf("optimizer CPU util = %v, want 1.0", got)
	}
	text := FormatStageUtilization(res, w)
	if !strings.Contains(text, "forward") || !strings.Contains(text, "optimizer") {
		t.Errorf("formatted breakdown missing stages:\n%s", text)
	}
}

func TestBusiestTasks(t *testing.T) {
	res := timeline(t)
	top := BusiestTasks(res, 2)
	if len(top) != 2 {
		t.Fatalf("got %d tasks, want 2", len(top))
	}
	if top[0].Task.Label != "bwd" {
		t.Errorf("busiest = %q, want bwd", top[0].Task.Label)
	}
	// Asking for more than exists returns all.
	if got := BusiestTasks(res, 99); len(got) != 4 {
		t.Errorf("BusiestTasks(99) = %d, want 4", len(got))
	}
}

func TestWriteCSV(t *testing.T) {
	var buf strings.Builder
	if err := WriteCSV(timeline(t), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Count(out, "\n")
	if lines != 5 { // header + 4 tasks
		t.Errorf("csv has %d lines, want 5:\n%s", lines, out)
	}
	if !strings.HasPrefix(out, "id,label,resource,start_s,end_s,duration_s") {
		t.Errorf("csv header wrong:\n%s", out)
	}
	if !strings.Contains(out, "act-out,pcie-g2m") {
		t.Errorf("csv missing task row:\n%s", out)
	}
}

func TestWriteJSON(t *testing.T) {
	var buf strings.Builder
	if err := WriteJSON(timeline(t), &buf); err != nil {
		t.Fatal(err)
	}
	var spans []map[string]interface{}
	if err := json.Unmarshal([]byte(buf.String()), &spans); err != nil {
		t.Fatalf("invalid json: %v", err)
	}
	if len(spans) != 4 {
		t.Fatalf("json has %d spans, want 4", len(spans))
	}
	// Sorted by start time: the forward task comes first.
	if spans[0]["label"] != "fwd" {
		t.Errorf("first span = %v, want fwd", spans[0]["label"])
	}
}
