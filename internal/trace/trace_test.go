package trace

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"ratel/internal/obs"
	"ratel/internal/sim"
)

func timeline(t *testing.T) sim.Result {
	t.Helper()
	res, err := sim.Run([]sim.Task{
		{ID: 0, Label: "fwd", Resource: sim.GPUCompute, Duration: 4},
		{ID: 1, Label: "act-out", Resource: sim.PCIeG2M, Duration: 2, Deps: []int{0}},
		{ID: 2, Label: "bwd", Resource: sim.GPUCompute, Duration: 6, Deps: []int{0}},
		{ID: 3, Label: "opt", Resource: sim.CPUAdam, Duration: 3, Deps: []int{2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestGantt(t *testing.T) {
	out := Gantt(timeline(t), 40)
	for _, want := range []string{"gpu", "pcie-g2m", "cpu-adam", "ssd"} {
		if !strings.Contains(out, want) {
			t.Errorf("gantt missing resource row %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "#") {
		t.Error("gantt has no busy glyphs")
	}
	if got := Gantt(sim.Result{}, 40); !strings.Contains(got, "empty") {
		t.Errorf("empty timeline render = %q", got)
	}
	// Narrow widths are clamped rather than breaking.
	if out := Gantt(timeline(t), 1); !strings.Contains(out, "gpu") {
		t.Error("clamped-width gantt broken")
	}
}

func TestStageUtilization(t *testing.T) {
	res := timeline(t)
	w := StageWindows{ForwardEnd: 4, BackwardEnd: 10, End: 13}
	util := StageUtilization(res, w)
	if got := util["forward"][sim.GPUCompute]; got != 1.0 {
		t.Errorf("forward GPU util = %v, want 1.0", got)
	}
	if got := util["backward"][sim.GPUCompute]; got != 1.0 {
		t.Errorf("backward GPU util = %v, want 1.0", got)
	}
	// The activation offload runs in the first 2s of the backward window.
	if got := util["backward"][sim.PCIeG2M]; got < 0.3 || got > 0.4 {
		t.Errorf("backward G2M util = %v, want 1/3", got)
	}
	if got := util["optimizer"][sim.CPUAdam]; got != 1.0 {
		t.Errorf("optimizer CPU util = %v, want 1.0", got)
	}
	text := FormatStageUtilization(res, w)
	if !strings.Contains(text, "forward") || !strings.Contains(text, "optimizer") {
		t.Errorf("formatted breakdown missing stages:\n%s", text)
	}
}

func TestBusiestTasks(t *testing.T) {
	res := timeline(t)
	top := BusiestTasks(res, 2)
	if len(top) != 2 {
		t.Fatalf("got %d tasks, want 2", len(top))
	}
	if top[0].Task.Label != "bwd" {
		t.Errorf("busiest = %q, want bwd", top[0].Task.Label)
	}
	// Asking for more than exists returns all.
	if got := BusiestTasks(res, 99); len(got) != 4 {
		t.Errorf("BusiestTasks(99) = %d, want 4", len(got))
	}
}

func TestWriteCSV(t *testing.T) {
	var buf strings.Builder
	if err := WriteCSV(timeline(t), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Count(out, "\n")
	if lines != 5 { // header + 4 tasks
		t.Errorf("csv has %d lines, want 5:\n%s", lines, out)
	}
	if !strings.HasPrefix(out, "id,label,resource,start_s,end_s,duration_s") {
		t.Errorf("csv header wrong:\n%s", out)
	}
	if !strings.Contains(out, "act-out,pcie-g2m") {
		t.Errorf("csv missing task row:\n%s", out)
	}
}

func TestWriteJSONIsChromeTraceFormat(t *testing.T) {
	var buf strings.Builder
	if err := WriteJSON(timeline(t), &buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal([]byte(buf.String()), &events); err != nil {
		t.Fatalf("invalid json: %v", err)
	}
	var complete, meta []map[string]interface{}
	for _, ev := range events {
		switch ev["ph"] {
		case "X":
			complete = append(complete, ev)
		case "M":
			meta = append(meta, ev)
		default:
			t.Errorf("unexpected event phase %v", ev["ph"])
		}
	}
	if len(complete) != 4 {
		t.Fatalf("got %d complete events, want 4", len(complete))
	}
	// Metadata names the process and the five canonical resource threads.
	if len(meta) != 6 {
		t.Errorf("got %d metadata events, want 6", len(meta))
	}
	// Sorted by start time: the forward task comes first, at ts 0 with a
	// 4-second (4e6 µs) duration, and every event addresses pid/tid.
	first := complete[0]
	if first["name"] != "fwd" {
		t.Errorf("first event = %v, want fwd", first["name"])
	}
	if first["ts"] != 0.0 || first["dur"] != 4e6 {
		t.Errorf("fwd ts/dur = %v/%v, want 0/4e6 µs", first["ts"], first["dur"])
	}
	for _, ev := range complete {
		if _, ok := ev["pid"]; !ok {
			t.Fatalf("event missing pid: %v", ev)
		}
		if _, ok := ev["tid"]; !ok {
			t.Fatalf("event missing tid: %v", ev)
		}
	}
}

func TestWriteSpansJSONKeepsLegacySchema(t *testing.T) {
	var buf strings.Builder
	if err := WriteSpansJSON(timeline(t), &buf); err != nil {
		t.Fatal(err)
	}
	var spans []map[string]interface{}
	if err := json.Unmarshal([]byte(buf.String()), &spans); err != nil {
		t.Fatalf("invalid json: %v", err)
	}
	if len(spans) != 4 {
		t.Fatalf("json has %d spans, want 4", len(spans))
	}
	if spans[0]["label"] != "fwd" || spans[0]["resource"] != "gpu" {
		t.Errorf("first span = %v, want fwd on gpu", spans[0])
	}
	if _, ok := spans[0]["start_s"]; !ok {
		t.Error("legacy schema missing start_s")
	}
}

func TestWriteEngineJSON(t *testing.T) {
	spans := []obs.Span{
		{Lane: obs.LaneCompute, Name: "block0/bwd", Start: 0, End: 3 * time.Millisecond},
		{Lane: obs.LaneAdam, Name: "block0/opt-adam", Start: time.Millisecond, End: 2 * time.Millisecond},
	}
	var buf strings.Builder
	if err := WriteEngineJSON(spans, &buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal([]byte(buf.String()), &events); err != nil {
		t.Fatalf("invalid json: %v", err)
	}
	var sawAdam bool
	for _, ev := range events {
		if ev["ph"] == "X" && ev["name"] == "block0/opt-adam" {
			sawAdam = true
			if ev["ts"] != 1e3 || ev["dur"] != 1e3 {
				t.Errorf("adam span ts/dur = %v/%v, want 1e3/1e3 µs", ev["ts"], ev["dur"])
			}
			if ev["pid"] != float64(PIDEngine) {
				t.Errorf("engine event pid = %v, want %d", ev["pid"], PIDEngine)
			}
		}
	}
	if !sawAdam {
		t.Error("engine export missing the adam span")
	}
}

// TestMergedExportSharesSchema pins the tentpole property: sim and engine
// timelines serialize to the same event schema, so one file can hold both.
func TestMergedExportSharesSchema(t *testing.T) {
	events := append(ChromeFromSim(timeline(t)), ChromeFromSpans([]obs.Span{
		{Lane: obs.LaneAdam, Name: "opt", Start: 0, End: time.Millisecond},
	})...)
	var buf strings.Builder
	if err := WriteChrome(events, &buf); err != nil {
		t.Fatal(err)
	}
	var decoded []ChromeEvent
	if err := json.Unmarshal([]byte(buf.String()), &decoded); err != nil {
		t.Fatalf("merged export not decodable into the shared schema: %v", err)
	}
	pids := map[int]bool{}
	for _, ev := range decoded {
		pids[ev.PID] = true
	}
	if !pids[PIDSim] || !pids[PIDEngine] {
		t.Errorf("merged export pids = %v, want both %d and %d", pids, PIDSim, PIDEngine)
	}
}
