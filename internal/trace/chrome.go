package trace

import (
	"encoding/json"
	"io"
	"time"

	"ratel/internal/obs"
	"ratel/internal/sim"
)

// This file is the shared export path to the Chrome trace-event format
// (the JSON Array Format, loadable by Perfetto / chrome://tracing):
// simulated timelines (sim.Result) and live engine timelines ([]obs.Span)
// serialize to the same schema, so a simulated schedule and the real run
// it predicts can be compared in one viewer.
//
// Process/thread mapping: the simulator exports as pid PIDSim with one
// thread per serial resource; the engine exports as pid PIDEngine with one
// thread per lane. Metadata events (ph "M") carry the names.

// Export process IDs. Two pids so a merged file shows sim and engine as
// separate process groups.
const (
	PIDSim    = 1
	PIDEngine = 2
)

// ChromeEvent is one Chrome trace-event record. Ph "X" is a complete span
// (Ts/Dur in microseconds); ph "M" is metadata (process/thread names).
type ChromeEvent struct {
	Name string                 `json:"name"`
	Ph   string                 `json:"ph"`
	TS   float64                `json:"ts"`
	Dur  float64                `json:"dur,omitempty"`
	PID  int                    `json:"pid"`
	TID  int                    `json:"tid"`
	Args map[string]interface{} `json:"args,omitempty"`
}

// WriteChrome serializes events as a Chrome trace-event JSON array.
func WriteChrome(events []ChromeEvent, w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(events)
}

// metaEvents names a process and its threads.
func metaEvents(pid int, process string, threads []string) []ChromeEvent {
	events := []ChromeEvent{{
		Name: "process_name", Ph: "M", PID: pid,
		Args: map[string]interface{}{"name": process},
	}}
	for tid, name := range threads {
		events = append(events, ChromeEvent{
			Name: "thread_name", Ph: "M", PID: pid, TID: tid,
			Args: map[string]interface{}{"name": name},
		})
	}
	return events
}

// ChromeFromSim converts a simulated timeline: one thread per resource (in
// the canonical row order), simulated seconds mapped to microseconds.
func ChromeFromSim(res sim.Result) []ChromeEvent {
	tids := make(map[sim.ResourceID]int, len(resourceOrder))
	names := make([]string, len(resourceOrder))
	for i, r := range resourceOrder {
		tids[r] = i
		names[i] = string(r)
	}
	events := metaEvents(PIDSim, "sim", names)
	for _, s := range sortedSpans(res) {
		tid, ok := tids[s.Task.Resource]
		if !ok {
			// Resource outside the canonical set: append a fresh thread.
			tid = len(names)
			names = append(names, string(s.Task.Resource))
			tids[s.Task.Resource] = tid
			events = append(events, metaEvents(PIDSim, "sim", names)[tid+1])
		}
		events = append(events, ChromeEvent{
			Name: s.Task.Label,
			Ph:   "X",
			TS:   float64(s.Start) * 1e6,
			Dur:  float64(s.End-s.Start) * 1e6,
			PID:  PIDSim,
			TID:  tid,
		})
	}
	return events
}

// ChromeFromSpans converts a live engine timeline: one thread per lane,
// wall-clock offsets mapped to microseconds.
func ChromeFromSpans(spans []obs.Span) []ChromeEvent {
	lanes := obs.Lanes(spans)
	tids := make(map[string]int, len(lanes))
	for i, l := range lanes {
		tids[l] = i
	}
	events := metaEvents(PIDEngine, "engine", lanes)
	for _, s := range spans {
		events = append(events, ChromeEvent{
			Name: s.Name,
			Ph:   "X",
			TS:   float64(s.Start) / float64(time.Microsecond),
			Dur:  float64(s.End-s.Start) / float64(time.Microsecond),
			PID:  PIDEngine,
			TID:  tids[s.Lane],
		})
	}
	return events
}

// WriteEngineJSON exports a live engine timeline as Chrome trace-event
// JSON (the rateltrain --trace artifact).
func WriteEngineJSON(spans []obs.Span, w io.Writer) error {
	return WriteChrome(ChromeFromSpans(spans), w)
}
