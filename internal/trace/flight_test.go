package trace

import (
	"strings"
	"testing"
	"time"

	"ratel/internal/obs"
)

func sampleSteps() []obs.StepRecord {
	led := obs.NewFlowLedger()
	led.Add(obs.EdgeHostNVMeWrite, obs.FlowActivations, 4096)
	led.Add(obs.EdgeComputeHost, obs.FlowGrads, 512)
	flow := led.Snapshot()
	return []obs.StepRecord{
		{
			Step: 1, Start: 0, End: 10 * time.Millisecond,
			Wall: 10 * time.Millisecond, Forward: 4 * time.Millisecond,
			Backward: 5 * time.Millisecond, OptimizerDrain: time.Millisecond,
			Tokens: 64, Flow: flow,
		},
		{
			Step: 2, Start: 10 * time.Millisecond, End: 21 * time.Millisecond,
			Wall: 11 * time.Millisecond, Forward: 4 * time.Millisecond,
			Backward: 6 * time.Millisecond, OptimizerDrain: time.Millisecond,
			Tokens: 64, Stalls: 1, StallWait: 2 * time.Millisecond, Flow: flow,
		},
	}
}

func TestFlightDumpRoundTrip(t *testing.T) {
	spans := []obs.Span{
		{Lane: obs.LaneCompute, Name: "block0/fwd", Start: 0, End: 4 * time.Millisecond},
		{Lane: obs.LaneStall, Name: "block1/fetch-stall", Start: 4 * time.Millisecond, End: 5 * time.Millisecond},
		{Lane: obs.LaneOffload, Name: "block0/offload", Start: time.Millisecond, End: 3 * time.Millisecond},
	}
	metrics := map[string]float64{"engine.steps": 2}
	dump := BuildFlightDump("sigquit", sampleSteps(), spans, metrics)

	var buf strings.Builder
	if err := WriteFlightDump(dump, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFlightDump(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("dump not loadable: %v", err)
	}
	if got.Reason != "sigquit" {
		t.Errorf("reason = %q, want sigquit", got.Reason)
	}
	if len(got.Steps) != 2 || got.Steps[1].Step != 2 {
		t.Fatalf("steps = %+v, want 2 records ending at step 2", got.Steps)
	}
	if got.Steps[0].FlowBytes["host_nvme_write/activations"] != 4096 {
		t.Errorf("flow bytes = %v, want host_nvme_write/activations=4096", got.Steps[0].FlowBytes)
	}
	if got.Steps[1].StallNS != int64(2*time.Millisecond) {
		t.Errorf("stall wait = %d, want 2ms", got.Steps[1].StallNS)
	}
	if got.Metrics["engine.steps"] != 2 {
		t.Errorf("metrics snapshot lost: %v", got.Metrics)
	}
}

// TestFlightDumpTraceLanes pins that the embedded Chrome trace carries the
// flow counter samples and the new stall/flow lanes so the postmortem is
// viewable, not just parseable.
func TestFlightDumpTraceLanes(t *testing.T) {
	spans := []obs.Span{
		{Lane: obs.LaneStall, Name: "block2/fetch-stall", Start: 0, End: time.Millisecond},
	}
	dump := BuildFlightDump("panic", sampleSteps(), spans, nil)

	var counters, stalls int
	for _, ev := range dump.Trace {
		switch {
		case ev.Ph == "C" && ev.Name == "flow_bytes_per_step":
			counters++
			if v, ok := ev.Args["host_nvme_write"].(int64); !ok || v != 4096 {
				t.Errorf("counter args = %v, want host_nvme_write=4096", ev.Args)
			}
		case ev.Ph == "X" && ev.Name == "block2/fetch-stall":
			stalls++
		}
	}
	if counters != 2 {
		t.Errorf("got %d flow counter events, want one per step (2)", counters)
	}
	if stalls != 1 {
		t.Errorf("fetch-stall span missing from embedded trace")
	}

	// Round-trip keeps the counter events decodable.
	var buf strings.Builder
	if err := WriteFlightDump(dump, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFlightDump(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Trace) != len(dump.Trace) {
		t.Errorf("trace events: got %d, want %d", len(got.Trace), len(dump.Trace))
	}
}

func TestReadFlightDumpRejectsMalformed(t *testing.T) {
	if _, err := ReadFlightDump(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadFlightDump(strings.NewReader(
		`{"reason":"x","steps":[{"step":1,"flow_bytes":{"bogus/edge":1}}]}`)); err == nil {
		t.Error("unknown flow key accepted")
	}
	if _, err := ReadFlightDump(strings.NewReader(
		`{"reason":"x","steps":[{"step":2},{"step":1}]}`)); err == nil {
		t.Error("out-of-order steps accepted")
	}
}
