// Package trace renders simulated iteration timelines as text: a per-resource
// Gantt strip and the per-stage PCIe/SSD utilization breakdown the paper
// annotates Fig. 1 with.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"ratel/internal/sim"
	"ratel/internal/units"
)

// StageWindows marks the stage boundaries on a timeline.
type StageWindows struct {
	ForwardEnd  units.Seconds
	BackwardEnd units.Seconds
	End         units.Seconds
}

// resourceOrder fixes the row order of rendered timelines.
var resourceOrder = []sim.ResourceID{
	sim.GPUCompute, sim.PCIeM2G, sim.PCIeG2M, sim.SSDBus, sim.CPUAdam,
}

// Gantt renders one character row per resource, where each column covers
// makespan/width seconds and is drawn with a density glyph by busy fraction.
func Gantt(res sim.Result, width int) string {
	if width < 10 {
		width = 10
	}
	if res.Makespan <= 0 {
		return "(empty timeline)\n"
	}
	col := res.Makespan / units.Seconds(width)
	var b strings.Builder
	for _, r := range resourceOrder {
		fmt.Fprintf(&b, "%-9s|", r)
		for i := 0; i < width; i++ {
			from := units.Seconds(i) * col
			busy := float64(res.WindowBusy(r, from, from+col)) / float64(col)
			switch {
			case busy > 0.75:
				b.WriteByte('#')
			case busy > 0.40:
				b.WriteByte('+')
			case busy > 0.05:
				b.WriteByte('.')
			default:
				b.WriteByte(' ')
			}
		}
		fmt.Fprintf(&b, "| %4.1f%%\n", 100*res.Utilization(r))
	}
	fmt.Fprintf(&b, "%-9s 0s%*s\n", "", width, res.Makespan.String())
	return b.String()
}

// StageUtilization reports, per stage, the fraction of the stage window each
// resource was busy (the Fig. 1 labels, e.g. "PCIeM2G: 8%").
func StageUtilization(res sim.Result, w StageWindows) map[string]map[sim.ResourceID]float64 {
	stages := map[string][2]units.Seconds{
		"forward":   {0, w.ForwardEnd},
		"backward":  {w.ForwardEnd, w.BackwardEnd},
		"optimizer": {w.BackwardEnd, w.End},
	}
	out := make(map[string]map[sim.ResourceID]float64, len(stages))
	for name, win := range stages {
		span := win[1] - win[0]
		m := make(map[sim.ResourceID]float64, len(resourceOrder))
		for _, r := range resourceOrder {
			if span > 0 {
				m[r] = float64(res.WindowBusy(r, win[0], win[1])) / float64(span)
			}
		}
		out[name] = m
	}
	return out
}

// FormatStageUtilization renders StageUtilization as aligned text rows in a
// stable order.
func FormatStageUtilization(res sim.Result, w StageWindows) string {
	util := StageUtilization(res, w)
	var b strings.Builder
	for _, stage := range []string{"forward", "backward", "optimizer"} {
		m := util[stage]
		fmt.Fprintf(&b, "%-9s", stage)
		for _, r := range resourceOrder {
			fmt.Fprintf(&b, "  %s=%3.0f%%", r, 100*m[r])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// BusiestTasks lists the n longest tasks, most expensive first — the quick
// answer to "what bounds this iteration?".
func BusiestTasks(res sim.Result, n int) []sim.Span {
	spans := make([]sim.Span, 0, len(res.Spans))
	for _, s := range res.Spans {
		spans = append(spans, s)
	}
	sort.Slice(spans, func(i, j int) bool {
		di, dj := spans[i].End-spans[i].Start, spans[j].End-spans[j].Start
		if di != dj {
			return di > dj
		}
		return spans[i].Task.ID < spans[j].Task.ID
	})
	if n > len(spans) {
		n = len(spans)
	}
	return spans[:n]
}
