package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"ratel/internal/sim"
)

// WriteCSV exports a simulated timeline as CSV (one row per task) for
// external plotting: id,label,resource,start,end,duration.
func WriteCSV(res sim.Result, w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "label", "resource", "start_s", "end_s", "duration_s"}); err != nil {
		return err
	}
	for _, s := range sortedSpans(res) {
		row := []string{
			strconv.Itoa(s.Task.ID),
			s.Task.Label,
			string(s.Task.Resource),
			formatSec(float64(s.Start)),
			formatSec(float64(s.End)),
			formatSec(float64(s.End - s.Start)),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonSpan is the bespoke span record WriteSpansJSON emits.
type jsonSpan struct {
	ID       int     `json:"id"`
	Label    string  `json:"label"`
	Resource string  `json:"resource"`
	Start    float64 `json:"start_s"`
	End      float64 `json:"end_s"`
}

// WriteJSON exports the timeline in the Chrome trace-event format
// (Perfetto / chrome://tracing loadable): complete events with
// microsecond timestamps, one thread per resource. For the flat
// span-array schema this function used to emit, use WriteSpansJSON.
func WriteJSON(res sim.Result, w io.Writer) error {
	return WriteChrome(ChromeFromSim(res), w)
}

// WriteSpansJSON exports the timeline as a flat JSON span array
// (id/label/resource/start_s/end_s) for external plotting scripts that
// consume the pre-Chrome schema.
func WriteSpansJSON(res sim.Result, w io.Writer) error {
	spans := sortedSpans(res)
	out := make([]jsonSpan, 0, len(spans))
	for _, s := range spans {
		out = append(out, jsonSpan{
			ID: s.Task.ID, Label: s.Task.Label, Resource: string(s.Task.Resource),
			Start: float64(s.Start), End: float64(s.End),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func sortedSpans(res sim.Result) []sim.Span {
	spans := make([]sim.Span, 0, len(res.Spans))
	for _, s := range res.Spans {
		spans = append(spans, s)
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].Task.ID < spans[j].Task.ID
	})
	return spans
}

func formatSec(v float64) string { return fmt.Sprintf("%.6f", v) }
