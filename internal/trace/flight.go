package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"ratel/internal/obs"
)

// Flight-recorder dump: the crash/postmortem artifact. A dump combines the
// bounded ring of recent step records (timing + stall + byte-flow deltas),
// the metrics registry snapshot, and the tracer's span ring, serialized as
// one JSON document whose "trace" field is itself a Chrome trace-event
// array (spans as ph "X" plus per-step flow counters as ph "C"), so the
// postmortem can be opened directly in Perfetto after extracting that
// field — or parsed programmatically with ReadFlightDump.

// FlightStep is the serialized form of one obs.StepRecord: durations in
// nanoseconds, flow deltas as nested maps keyed by edge then purpose name.
type FlightStep struct {
	Step      int   `json:"step"`
	StartNS   int64 `json:"start_ns"`
	EndNS     int64 `json:"end_ns"`
	WallNS    int64 `json:"wall_ns"`
	ForwardNS int64 `json:"forward_ns"`
	BackwrdNS int64 `json:"backward_ns"`
	DrainNS   int64 `json:"optimizer_drain_ns"`
	Tokens    int   `json:"tokens"`
	Stalls    int64 `json:"offload_stalls"`
	StallNS   int64 `json:"offload_stall_wait_ns"`
	// Fetch stalls (backward blocked on a read-ahead miss) are broken out
	// from the write-behind stalls above; EffDepth is the pipeline depth in
	// force (varies per step under the adaptive controller).
	FetchStalls  int64                     `json:"fetch_stalls"`
	FetchStallNS int64                     `json:"fetch_stall_wait_ns"`
	EffDepth     int                       `json:"effective_depth"`
	Sched        map[string]FlightSchedRow `json:"sched,omitempty"`
	FlowBytes    map[string]int64          `json:"flow_bytes"`
}

// FlightSchedRow is one traffic class's scheduler activity in a step:
// transfers dispatched, total queue wait, and the lifetime queue-depth peak.
type FlightSchedRow struct {
	Dispatched int64 `json:"dispatched"`
	WaitNS     int64 `json:"wait_ns"`
	QueuePeak  int64 `json:"queue_peak"`
}

// FlightDump is the top-level postmortem document.
type FlightDump struct {
	Reason  string             `json:"reason"`
	Steps   []FlightStep       `json:"steps"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
	Trace   []ChromeEvent      `json:"trace,omitempty"`
}

// flowKey names one ledger cell in the dump: "edge/purpose" using the
// canonical snake_case names (e.g. "host_nvme_write/activations").
func flowKey(e obs.FlowEdge, p obs.FlowPurpose) string {
	return e.String() + "/" + p.String()
}

// flowMap flattens a snapshot to its non-zero cells.
func flowMap(s obs.FlowSnapshot) map[string]int64 {
	m := make(map[string]int64)
	for _, e := range obs.FlowEdges() {
		for _, p := range obs.FlowPurposes() {
			if v := s.Get(e, p); v != 0 {
				m[flowKey(e, p)] = v
			}
		}
	}
	return m
}

// schedMap flattens a scheduler sample to its active classes, keyed by the
// canonical snake_case class names.
func schedMap(s obs.SchedSample) map[string]FlightSchedRow {
	if !s.Active() {
		return nil
	}
	m := make(map[string]FlightSchedRow, obs.SchedClassCount)
	for c, d := range s {
		if d.Dispatched == 0 && d.Wait == 0 && d.QueuePeak == 0 {
			continue
		}
		m[obs.SchedClassNames[c]] = FlightSchedRow{
			Dispatched: d.Dispatched,
			WaitNS:     int64(d.Wait),
			QueuePeak:  d.QueuePeak,
		}
	}
	return m
}

// flightStep converts one ring record.
func flightStep(r obs.StepRecord) FlightStep {
	return FlightStep{
		Step:         r.Step,
		StartNS:      int64(r.Start),
		EndNS:        int64(r.End),
		WallNS:       int64(r.Wall),
		ForwardNS:    int64(r.Forward),
		BackwrdNS:    int64(r.Backward),
		DrainNS:      int64(r.OptimizerDrain),
		Tokens:       r.Tokens,
		Stalls:       r.Stalls,
		StallNS:      int64(r.StallWait),
		FetchStalls:  r.FetchStalls,
		FetchStallNS: int64(r.FetchStallWait),
		EffDepth:     r.EffectiveDepth,
		Sched:        schedMap(r.Sched),
		FlowBytes:    flowMap(r.Flow),
	}
}

// flowCounterEvents emits one Chrome ph "C" counter sample per step on a
// dedicated "flow" thread: the per-step byte deltas for each edge, stamped
// at the step's end offset. Counter tracks render as stacked area charts
// in the trace viewer, one series per edge name.
func flowCounterEvents(steps []obs.StepRecord) []ChromeEvent {
	events := make([]ChromeEvent, 0, len(steps))
	for _, r := range steps {
		args := make(map[string]interface{}, len(obs.FlowEdges()))
		for _, e := range obs.FlowEdges() {
			args[e.String()] = r.Flow.Edge(e)
		}
		events = append(events, ChromeEvent{
			Name: "flow_bytes_per_step",
			Ph:   "C",
			TS:   float64(r.End) / float64(time.Microsecond),
			PID:  PIDEngine,
			Args: args,
		})
	}
	return events
}

// BuildFlightDump assembles the postmortem document from the engine's
// flight ring, span ring, and (optionally nil) metrics snapshot.
func BuildFlightDump(reason string, steps []obs.StepRecord, spans []obs.Span, metrics map[string]float64) FlightDump {
	d := FlightDump{
		Reason:  reason,
		Steps:   make([]FlightStep, 0, len(steps)),
		Metrics: metrics,
	}
	for _, r := range steps {
		d.Steps = append(d.Steps, flightStep(r))
	}
	if len(spans) > 0 || len(steps) > 0 {
		d.Trace = append(ChromeFromSpans(spans), flowCounterEvents(steps)...)
	}
	return d
}

// WriteFlightDump serializes a dump as indented JSON.
func WriteFlightDump(d FlightDump, w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(d)
}

// ReadFlightDump parses a dump written by WriteFlightDump and validates
// the invariants a loadable postmortem must satisfy: steps are in order,
// spans are well-formed, and every flow key names a real edge/purpose
// pair. Crash-handler output is only useful if it can actually be opened,
// so the SIGQUIT path is tested through this reader.
func ReadFlightDump(r io.Reader) (FlightDump, error) {
	var d FlightDump
	dec := json.NewDecoder(r)
	if err := dec.Decode(&d); err != nil {
		return FlightDump{}, fmt.Errorf("flight dump: %w", err)
	}
	valid := make(map[string]bool)
	for _, e := range obs.FlowEdges() {
		for _, p := range obs.FlowPurposes() {
			valid[flowKey(e, p)] = true
		}
	}
	classes := make(map[string]bool, obs.SchedClassCount)
	for _, n := range obs.SchedClassNames {
		classes[n] = true
	}
	for i, s := range d.Steps {
		if i > 0 && s.Step <= d.Steps[i-1].Step {
			return FlightDump{}, fmt.Errorf("flight dump: steps out of order at index %d", i)
		}
		for k := range s.FlowBytes {
			if !valid[k] {
				return FlightDump{}, fmt.Errorf("flight dump: unknown flow key %q", k)
			}
		}
		for k := range s.Sched {
			if !classes[k] {
				return FlightDump{}, fmt.Errorf("flight dump: unknown sched class %q", k)
			}
		}
	}
	for i, ev := range d.Trace {
		switch ev.Ph {
		case "X", "M", "C":
		default:
			return FlightDump{}, fmt.Errorf("flight dump: unknown event phase %q at index %d", ev.Ph, i)
		}
	}
	return d, nil
}
