package slotlife_test

import (
	"testing"

	"ratel/internal/analysis/analysistest"
	"ratel/internal/analysis/slotlife"
)

func TestSlotlife(t *testing.T) {
	analysistest.Run(t, slotlife.Analyzer, "slotd")
}

func TestScope(t *testing.T) {
	if !slotlife.Analyzer.AppliesTo("ratel/internal/engine") {
		t.Error("slotlife should cover the engine")
	}
	for _, pkg := range []string{"ratel/internal/nvme", "ratel/internal/tensor/pool"} {
		if slotlife.Analyzer.AppliesTo(pkg) {
			t.Errorf("slotlife should not cover %s (the protocol lives in engine)", pkg)
		}
	}
}
