// Package slotd is slotlife's golden testdata. The pipe type mirrors the
// engine's offloadPipeline protocol surface (recognition is by method
// name — the real types are unexported).
package slotd

type job struct {
	slot int
	key  string
}

type pipe struct{}

func (p *pipe) acquireSlot(slot int, label string) {}
func (p *pipe) releaseSlot(slot int)               {}
func (p *pipe) submit(j job)                       {}

func bad() bool { return false }

// The engine's write-behind idiom: release on every error path, submit on
// success. Exactly one release on every path — clean.
func protocolIsFine(p *pipe, encode func() error, reserve func() error) error {
	slot := 3
	p.acquireSlot(slot, "stall")
	if err := encode(); err != nil {
		p.releaseSlot(slot)
		return err
	}
	if err := reserve(); err != nil {
		p.releaseSlot(slot)
		return err
	}
	p.submit(job{slot: slot, key: "k"})
	return nil
}

// The error return skips the release: the token leaks on that path and the
// next acquireSlot of this slot deadlocks.
func leakOnErrorPath(p *pipe, encode func() error) error {
	slot := 3
	p.acquireSlot(slot, "stall") // want `slot token "slot" is not released on every path`
	if err := encode(); err != nil {
		return err
	}
	p.submit(job{slot: slot, key: "k"})
	return nil
}

func neverReleased(p *pipe) {
	slot := 1
	p.acquireSlot(slot, "stall") // want `slot token "slot" is never released`
}

func doubleRelease(p *pipe) {
	slot := 1
	p.acquireSlot(slot, "stall")
	p.releaseSlot(slot)
	p.releaseSlot(slot) // want `slot token "slot" released twice`
}

// submit hands the token to the writer; releasing it again afterwards puts
// a second token into the slot's channel.
func releaseAfterSubmit(p *pipe) {
	slot := 1
	p.acquireSlot(slot, "stall")
	p.submit(job{slot: slot, key: "k"})
	p.releaseSlot(slot) // want `slot token "slot" released twice`
}

// Released on one branch, then released again at the merge: a double
// release on the branch-taken path only — invisible to a line scan.
func maybeDoubleRelease(p *pipe, ok bool) {
	slot := 1
	p.acquireSlot(slot, "stall")
	if ok {
		p.releaseSlot(slot)
	}
	p.releaseSlot(slot) // want `slot token "slot" may already be released on a preceding path`
}

func reacquireWhileHeld(p *pipe) {
	slot := 1
	p.acquireSlot(slot, "a")
	p.acquireSlot(slot, "b") // want `slot token "slot" re-acquired while still held`
	p.releaseSlot(slot)
}

// An explicit panic between acquire and submit leaks the token on the
// panic path — recover would leave the ring slot unusable.
func panicPathLeaks(p *pipe) {
	slot := 1
	p.acquireSlot(slot, "stall") // want `slot token "slot" leaks on a panic path`
	if bad() {
		panic("encode invariant broken")
	}
	p.submit(job{slot: slot, key: "k"})
}

// The deferred release runs on both the normal and the panic exit: clean.
func deferReleaseIsFine(p *pipe, work func()) {
	slot := 1
	p.acquireSlot(slot, "stall")
	defer p.releaseSlot(slot)
	if bad() {
		panic("invariant broken")
	}
	work()
}

// Handing the release duty to a closure escapes the token from this
// frame's accounting; the closure is analyzed as its own frame.
func closureReleasesIsFine(p *pipe) func() {
	slot := 1
	p.acquireSlot(slot, "stall")
	return func() { p.releaseSlot(slot) }
}

// Reassigning the slot variable while its token is held orphans the token:
// nothing can release it anymore.
func reassignWhileHeld(p *pipe) {
	slot := 1
	p.acquireSlot(slot, "stall")
	slot = 2 // want `slot variable "slot" reassigned while its token is still held`
	p.releaseSlot(slot)
}
