// Package slotlife guards the ring-arena slot-token protocol of the
// write-behind pipeline (DESIGN.md §10): a token taken with acquireSlot
// must leave the function exactly once on every path — either returned
// with releaseSlot (the encode/reserve failure idiom) or handed to the
// writer goroutines with submit. Double releases corrupt the token channel
// (a slot with two tokens admits two concurrent writes into one arena
// slot); a leaked token deadlocks the next step's acquireSlot. Both only
// happen on the paths AST checks cannot see — error returns, branch
// merges, panic exits — which is exactly where the CFG/dataflow substrate
// (DESIGN.md §13) looks.
package slotlife

import (
	"go/ast"
	"go/token"
	"go/types"

	"ratel/internal/analysis"
)

// Analyzer is the slotlife check.
var Analyzer = &analysis.Analyzer{
	Name: "slotlife",
	Doc: `ring-arena slot tokens must be released exactly once on every path

Tracks the integer slot variable passed to acquireSlot through the
function's control-flow graph. releaseSlot(slot) and submit(job{slot:
slot, ...}) both give the token up; reaching any exit — including the
panic exit through the defer chain — while the token is still held is a
leak, and releasing twice (or releasing after submit) is a double release.
Exactness: recognition is by method name (acquireSlot/releaseSlot/submit
— the engine's pipeline types are unexported, so the protocol is the
name); only bare-identifier slot variables are tracked, and a slot
variable captured by a closure or handed to a goroutine escapes the
analysis. Implicit runtime panics are not modeled; explicit panic paths
are.`,
	Scope: []string{"ratel/internal/engine"},
	Run:   run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkFunc(pass, n.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

// slotCall classifies one protocol call site.
type slotCall struct {
	v   *types.Var
	via string // "acquireSlot", "releaseSlot", or "submit"
	pos token.Pos
}

type tracker struct {
	pass *analysis.Pass
	// acquiredAt remembers where each tracked variable last took its token,
	// for the leak report (the acquire is the actionable site).
	acquiredAt map[*types.Var]token.Pos
	reported   map[token.Pos]bool
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	hasAcquire := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sc, ok := classify(pass.TypesInfo, call); ok && sc.via == "acquireSlot" {
				hasAcquire = true
			}
		}
		return !hasAcquire
	})
	if !hasAcquire {
		return
	}

	tr := &tracker{
		pass:       pass,
		acquiredAt: make(map[*types.Var]token.Pos),
		reported:   make(map[token.Pos]bool),
	}
	cfg := pass.FuncCFG(body)
	flow := &analysis.Flow{CFG: cfg, Transfer: tr.transfer}
	in := flow.Fixpoint()
	flow.Visit(in, tr.report)

	// Exit obligations: a token still held when control leaves the function
	// is a leak. Owned at the exit join means every reaching path holds it;
	// MaybeReleased means at least one path leaks it.
	reportLeaks := func(st analysis.State, panicPath bool) {
		for key, val := range st {
			v, ok := key.(*types.Var)
			if !ok {
				continue
			}
			pos, known := tr.acquiredAt[v]
			if !known || tr.reported[pos] {
				continue
			}
			switch {
			case val == analysis.Owned && !panicPath:
				tr.reported[pos] = true
				pass.Reportf(pos, "slot token %q is never released: every path must releaseSlot or submit before returning", v.Name())
			case val == analysis.MaybeReleased && !panicPath:
				tr.reported[pos] = true
				pass.Reportf(pos, "slot token %q is not released on every path: an error return is missing its releaseSlot", v.Name())
			case (val == analysis.Owned || val == analysis.MaybeReleased) && panicPath:
				tr.reported[pos] = true
				pass.Reportf(pos, "slot token %q leaks on a panic path: release it in a defer so recover leaves the ring usable", v.Name())
			}
		}
	}
	reportLeaks(in[cfg.Exit.Index], false)
	reportLeaks(in[cfg.PanicExit.Index], true)
}

func (tr *tracker) transfer(_ *analysis.Block, n ast.Node, st analysis.State) {
	info := tr.pass.TypesInfo
	analysis.InspectShallow(n, func(m ast.Node) {
		switch m := m.(type) {
		case *ast.CallExpr:
			if sc, ok := classify(info, m); ok {
				if sc.via == "acquireSlot" {
					st.Set(sc.v, analysis.Owned)
					tr.acquiredAt[sc.v] = sc.pos
				} else {
					st.Set(sc.v, analysis.Released)
				}
			}
		case *ast.AssignStmt:
			// Reassigning the slot variable re-points the handle; the old
			// token (if held) is checked at the reassignment by report.
			for _, l := range m.Lhs {
				if id, ok := ast.Unparen(l).(*ast.Ident); ok && id.Name != "_" {
					if v := analysis.UsedVar(info, id); v != nil {
						st.Set(v, analysis.Bottom)
					}
				}
			}
		case *ast.FuncLit:
			for _, v := range capturedVars(info, m) {
				if st.Get(v) != analysis.Bottom {
					st.Set(v, analysis.Escaped)
				}
			}
		case *ast.GoStmt:
			for _, arg := range m.Call.Args {
				if v := analysis.UsedVar(info, arg); v != nil && st.Get(v) != analysis.Bottom {
					st.Set(v, analysis.Escaped)
				}
			}
		}
	})
}

func (tr *tracker) report(_ *analysis.Block, n ast.Node, st analysis.State) {
	info := tr.pass.TypesInfo
	analysis.InspectShallow(n, func(m ast.Node) {
		switch m := m.(type) {
		case *ast.CallExpr:
			sc, ok := classify(info, m)
			if !ok || tr.reported[sc.pos] {
				return
			}
			val := st.Get(sc.v)
			switch sc.via {
			case "acquireSlot":
				if val == analysis.Owned || val == analysis.MaybeReleased {
					tr.reported[sc.pos] = true
					tr.pass.Reportf(sc.pos, "slot token %q re-acquired while still held: the previous acquireSlot was never released", sc.v.Name())
				}
			default: // releaseSlot or submit
				if val == analysis.Released {
					tr.reported[sc.pos] = true
					tr.pass.Reportf(sc.pos, "slot token %q released twice: %s gives up a token this path already gave up", sc.v.Name(), sc.via)
				} else if val == analysis.MaybeReleased {
					tr.reported[sc.pos] = true
					tr.pass.Reportf(sc.pos, "slot token %q may already be released on a preceding path: %s here double-releases it", sc.v.Name(), sc.via)
				}
			}
		case *ast.AssignStmt:
			for _, l := range m.Lhs {
				id, ok := ast.Unparen(l).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				v, _ := info.Uses[id].(*types.Var)
				if v == nil {
					continue
				}
				if val := st.Get(v); val == analysis.Owned || val == analysis.MaybeReleased {
					if !tr.reported[id.Pos()] {
						tr.reported[id.Pos()] = true
						tr.pass.Reportf(id.Pos(), "slot variable %q reassigned while its token is still held: the old token can no longer be released", v.Name())
					}
				}
			}
		}
	})
}

// classify recognizes the three protocol calls by method name and resolves
// the slot variable. acquireSlot/releaseSlot carry it as their first
// argument; submit carries it as the `slot` field of its job literal.
func classify(info *types.Info, call *ast.CallExpr) (slotCall, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return slotCall{}, false
	}
	switch sel.Sel.Name {
	case "acquireSlot", "releaseSlot":
		if len(call.Args) < 1 {
			return slotCall{}, false
		}
		v := analysis.UsedVar(info, call.Args[0])
		if v == nil {
			return slotCall{}, false
		}
		return slotCall{v: v, via: sel.Sel.Name, pos: call.Pos()}, true
	case "submit":
		if len(call.Args) != 1 {
			return slotCall{}, false
		}
		cl, ok := ast.Unparen(call.Args[0]).(*ast.CompositeLit)
		if !ok {
			return slotCall{}, false
		}
		for _, el := range cl.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok || key.Name != "slot" {
				continue
			}
			v := analysis.UsedVar(info, kv.Value)
			if v == nil {
				return slotCall{}, false
			}
			return slotCall{v: v, via: "submit", pos: call.Pos()}, true
		}
	}
	return slotCall{}, false
}

func capturedVars(info *types.Info, lit *ast.FuncLit) []*types.Var {
	var out []*types.Var
	seen := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok && !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
		return true
	})
	return out
}
