package errdrop_test

import (
	"testing"

	"ratel/internal/analysis/analysistest"
	"ratel/internal/analysis/errdrop"
)

func TestErrdrop(t *testing.T) {
	analysistest.Run(t, errdrop.Analyzer, "errd")
}
