// Package errdrop flags dropped errors from the NVMe and trace write
// paths. An nvme.Put that fails silently corrupts the offload state the
// engine later Gets back, and a trace.WriteChrome whose error is ignored
// produces a truncated file that Perfetto rejects — both have bitten
// before, so calls into those packages must consume the returned error in
// non-test code.
package errdrop

import (
	"go/ast"
	"go/types"
	"strings"

	"ratel/internal/analysis"
)

// watchedPkgs are the import paths whose error returns must be handled.
var watchedPkgs = []string{
	"ratel/internal/nvme",
	"ratel/internal/trace",
}

// Analyzer is the errdrop check.
var Analyzer = &analysis.Analyzer{
	Name: "errdrop",
	Doc: `errors from NVMe and trace write paths must not be dropped

Flags statement-position calls, defers, and blank-assigned results where a
function declared in ratel/internal/nvme or ratel/internal/trace returns an
error that is discarded. Test files are exempt: tests drop errors on
purpose when exercising failure paths.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDropped(pass, call, "call")
				}
			case *ast.DeferStmt:
				checkDropped(pass, n.Call, "deferred call")
			case *ast.GoStmt:
				checkDropped(pass, n.Call, "go statement")
			case *ast.AssignStmt:
				checkBlankAssign(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkDropped reports a call whose entire result list — including an
// error — is discarded by statement position.
func checkDropped(pass *analysis.Pass, call *ast.CallExpr, how string) {
	fn, errAt := watchedErrCall(pass, call)
	if fn == nil || errAt < 0 {
		return
	}
	pass.Reportf(call.Pos(), "%s drops the error returned by %s.%s: a silent NVMe/trace write failure corrupts downstream state, so check or log it", how, shortPkg(fn), fn.Name())
}

// checkBlankAssign reports x, _ := nvme.Open(...)-style drops where every
// LHS slot receiving the error component is the blank identifier.
func checkBlankAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || len(as.Lhs) == 0 {
		return
	}
	fn, errAt := watchedErrCall(pass, call)
	if fn == nil || errAt < 0 || errAt >= len(as.Lhs) {
		return
	}
	if id, ok := as.Lhs[errAt].(*ast.Ident); ok && id.Name == "_" {
		pass.Reportf(as.Pos(), "error returned by %s.%s assigned to blank identifier: a silent NVMe/trace write failure corrupts downstream state, so check or log it", shortPkg(fn), fn.Name())
	}
}

// watchedErrCall resolves call's callee; if it is declared in a watched
// package and returns an error, it and the error's result index are
// returned. Otherwise (nil, -1).
func watchedErrCall(pass *analysis.Pass, call *ast.CallExpr) (*types.Func, int) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return nil, -1
	}
	path := analysis.FuncPkgPath(fn)
	watched := false
	for _, p := range watchedPkgs {
		if path == p || strings.HasPrefix(path, p+"/") {
			watched = true
			break
		}
	}
	if !watched {
		return nil, -1
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil, -1
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
			return fn, i
		}
	}
	return nil, -1
}

func shortPkg(fn *types.Func) string {
	path := analysis.FuncPkgPath(fn)
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}
