// Package errd is errdrop's golden testdata. It imports the real nvme and
// trace packages so callee package paths resolve as they do in the engine.
package errd

import (
	"fmt"
	"io"

	"ratel/internal/nvme"
	"ratel/internal/sim"
	"ratel/internal/trace"
)

func statementDrop(a *nvme.Array, data []byte) {
	a.Put("weights", data) // want `call drops the error returned by nvme.Put`
}

func deferDrop(a *nvme.Array) {
	defer a.Close() // want `deferred call drops the error returned by nvme.Close`
}

func blankSingle(res sim.Result, w io.Writer) {
	_ = trace.WriteJSON(res, w) // want `error returned by trace.WriteJSON assigned to blank identifier`
}

func blankMulti(a *nvme.Array) []byte {
	data, _ := a.Get("weights") // want `error returned by nvme.Get assigned to blank identifier`
	return data
}

func checkedIsFine(a *nvme.Array, data []byte) error {
	if err := a.Put("weights", data); err != nil {
		return err
	}
	return a.Close()
}

func deferClosureIsFine(a *nvme.Array) (err error) {
	defer func() {
		if cerr := a.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return nil
}

func capturedMultiIsFine(a *nvme.Array) ([]byte, error) {
	return a.Get("weights")
}

func noErrorResultIsFine(res sim.Result) string {
	return trace.Gantt(res, 80)
}

func unwatchedPackageIsFine(w io.Writer) {
	fmt.Fprintln(w, "status") // fmt is not a watched write path
}
