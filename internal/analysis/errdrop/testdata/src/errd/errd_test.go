package errd

import "ratel/internal/nvme"

// Test files may drop errors on purpose when exercising failure paths; no
// diagnostics are expected anywhere in this file.
func dropInTestIsFine(a *nvme.Array, data []byte) {
	a.Put("weights", data)
	_, _ = a.Get("weights")
	defer a.Close()
}
