package spanpair_test

import (
	"testing"

	"ratel/internal/analysis/analysistest"
	"ratel/internal/analysis/spanpair"
)

func TestSpanpair(t *testing.T) {
	analysistest.Run(t, spanpair.Analyzer, "spand")
}

func TestScope(t *testing.T) {
	for _, pkg := range []string{"ratel/internal/engine", "ratel/internal/nvme", "ratel/internal/opt"} {
		if !spanpair.Analyzer.AppliesTo(pkg) {
			t.Errorf("spanpair should cover %s", pkg)
		}
	}
	if spanpair.Analyzer.AppliesTo("ratel/internal/sim") {
		t.Error("spanpair should not cover the simulator")
	}
}
