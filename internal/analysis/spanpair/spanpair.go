// Package spanpair enforces obs span hygiene in the live-engine packages:
// every span begun must be ended on every return path (a leaked span skews
// the busy-fraction folding the sim-vs-real calibration depends on), and
// span labels on hot paths must be precomputed, not built per call (the
// tracer's record path is allocation-free by contract; a fmt.Sprintf label
// breaks that silently).
package spanpair

import (
	"go/ast"
	"go/token"
	"go/types"

	"ratel/internal/analysis"
)

const obsPkg = "ratel/internal/obs"

// Analyzer is the spanpair check.
var Analyzer = &analysis.Analyzer{
	Name: "spanpair",
	Doc: `every obs span must be ended on all return paths, with precomputed labels

Tracks variables holding obs.Scope values through structured control flow:
a return reachable while a span is open, a span reassigned while open, or
a StartSpan result that is discarded outright are all flagged. defer
sp.End() closes the span for every path. Passing the scope to another
function or goroutine transfers responsibility and stops tracking.

Also flags span labels built per call (fmt.Sprintf or non-constant string
concatenation in the name argument of StartSpan / RecordSpan / Instant):
the tracer stores label strings by reference and its record path is
allocation-free by contract, so labels must be precomputed.`,
	Scope: []string{
		"ratel/internal/engine",
		"ratel/internal/nvme",
		"ratel/internal/opt",
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					newScanner(pass).scanFunc(n.Body)
				}
			case *ast.FuncLit:
				newScanner(pass).scanFunc(n.Body)
			case *ast.CallExpr:
				checkLabel(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkLabel flags per-call span label construction.
func checkLabel(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || analysis.FuncPkgPath(fn) != obsPkg {
		return
	}
	switch fn.Name() {
	case "StartSpan", "RecordSpan", "Instant":
	default:
		return
	}
	if len(call.Args) < 2 {
		return
	}
	name := ast.Unparen(call.Args[1])
	switch e := name.(type) {
	case *ast.CallExpr:
		if analysis.IsPkgCall(pass.TypesInfo, e, "fmt", "Sprintf", "Sprint") {
			pass.Reportf(e.Pos(), "span label built with fmt.%s on a hot path: precompute the label once and pass it in", analysis.CalleeFunc(pass.TypesInfo, e).Name())
		}
	case *ast.BinaryExpr:
		tv := pass.TypesInfo.Types[name]
		if e.Op == token.ADD && tv.Value == nil && isString(tv.Type) {
			pass.Reportf(e.Pos(), "span label concatenated per call on a hot path: precompute the label once and pass it in")
		}
	}
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// scanner walks one function body (func literals are separate roots),
// tracking which obs.Scope variables are open along each structured path.
type scanner struct {
	pass *analysis.Pass
}

func newScanner(pass *analysis.Pass) *scanner { return &scanner{pass: pass} }

// open maps a tracked span variable to the position where it was started.
type open map[*types.Var]token.Pos

func (o open) clone() open {
	c := make(open, len(o))
	for k, v := range o {
		c[k] = v
	}
	return c
}

func (s *scanner) scanFunc(body *ast.BlockStmt) {
	spans := make(open)
	terminated := s.scan(body.List, spans)
	if !terminated {
		for v, pos := range spans {
			s.pass.Reportf(pos, "span %q is not ended before the function returns", v.Name())
		}
	}
}

// scan walks a statement sequence, returning whether it always terminates
// (returns or branches away) before falling off the end.
func (s *scanner) scan(stmts []ast.Stmt, spans open) bool {
	for _, st := range stmts {
		if s.scanStmt(st, spans) {
			return true
		}
	}
	return false
}

func (s *scanner) scanStmt(st ast.Stmt, spans open) bool {
	switch st := st.(type) {
	case *ast.AssignStmt:
		s.assign(st, spans)
	case *ast.ExprStmt:
		s.exprStmt(st, spans)
	case *ast.DeferStmt:
		s.deferStmt(st, spans)
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			s.escape(r, spans)
		}
		for v, pos := range spans {
			s.pass.Reportf(st.Pos(), "return with span %q still open (started at %s)", v.Name(), s.pass.Fset.Position(pos))
		}
		return true
	case *ast.IfStmt:
		if st.Init != nil {
			s.scanStmt(st.Init, spans)
		}
		thenSpans := spans.clone()
		thenTerm := s.scan(st.Body.List, thenSpans)
		elseSpans := spans.clone()
		elseTerm := false
		if st.Else != nil {
			elseTerm = s.scanStmt(st.Else, elseSpans)
		}
		merge(spans, thenSpans, thenTerm, elseSpans, elseTerm)
		return thenTerm && elseTerm
	case *ast.BlockStmt:
		return s.scan(st.List, spans)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return s.branches(st, spans)
	case *ast.ForStmt:
		if st.Init != nil {
			s.scanStmt(st.Init, spans)
		}
		bodySpans := spans.clone()
		if !s.scan(st.Body.List, bodySpans) {
			union(spans, bodySpans)
		}
	case *ast.RangeStmt:
		bodySpans := spans.clone()
		if !s.scan(st.Body.List, bodySpans) {
			union(spans, bodySpans)
		}
	case *ast.LabeledStmt:
		return s.scanStmt(st.Stmt, spans)
	case *ast.BranchStmt:
		// break/continue/goto: the span may be closed after the loop;
		// stop scanning this sequence without a leak verdict.
		return true
	case *ast.GoStmt:
		s.call(st.Call, spans)
	case *ast.DeclStmt:
		s.decl(st, spans)
	default:
		// Anything else (send, incdec, decl): a use of an open span
		// transfers responsibility and stops tracking.
		ast.Inspect(st, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				s.escape(e, spans)
			}
			return true
		})
	}
	return false
}

// branches handles switch / type-switch / select: each clause runs from the
// pre-state; the post-state is the union of the fall-through paths.
func (s *scanner) branches(st ast.Stmt, spans open) bool {
	var clauses [][]ast.Stmt
	hasDefault := false
	collect := func(body []ast.Stmt, isDefault bool) {
		clauses = append(clauses, body)
		hasDefault = hasDefault || isDefault
	}
	var alwaysRuns bool
	switch st := st.(type) {
	case *ast.SwitchStmt:
		if st.Init != nil {
			s.scanStmt(st.Init, spans)
		}
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			collect(cc.Body, cc.List == nil)
		}
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			s.scanStmt(st.Init, spans)
		}
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			collect(cc.Body, cc.List == nil)
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			collect(c.(*ast.CommClause).Body, false)
		}
		alwaysRuns = len(clauses) > 0 // a blocking select executes some clause
	}

	pre := spans.clone()
	allTerm := len(clauses) > 0
	merged := make(open)
	for _, body := range clauses {
		cs := pre.clone()
		if !s.scan(body, cs) {
			allTerm = false
			union(merged, cs)
		}
	}
	if !hasDefault && !alwaysRuns {
		union(merged, pre) // the no-case-matched path
		allTerm = false
	}
	for v := range spans {
		delete(spans, v)
	}
	union(spans, merged)
	return allTerm
}

// merge computes the post-if state from the two branch outcomes.
func merge(dst, thenSpans open, thenTerm bool, elseSpans open, elseTerm bool) {
	for v := range dst {
		delete(dst, v)
	}
	if !thenTerm {
		union(dst, thenSpans)
	}
	if !elseTerm {
		union(dst, elseSpans)
	}
}

func union(dst, src open) {
	for v, pos := range src {
		if _, ok := dst[v]; !ok {
			dst[v] = pos
		}
	}
}

// decl tracks `var sp = tr.StartSpan(...)` declarations.
func (s *scanner) decl(st *ast.DeclStmt, spans open) {
	gd, ok := st.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			var rhs ast.Expr
			if len(vs.Values) == len(vs.Names) {
				rhs = vs.Values[i]
			} else if len(vs.Values) == 1 {
				rhs = vs.Values[0]
			}
			if rhs == nil || !s.yieldsScope(rhs, i, len(vs.Names)) {
				continue
			}
			if v, ok := s.pass.TypesInfo.Defs[name].(*types.Var); ok {
				spans[v] = rhs.Pos()
			}
		}
	}
}

// assign tracks span openings and catches reassignment of an open span.
func (s *scanner) assign(st *ast.AssignStmt, spans open) {
	for _, r := range st.Rhs {
		s.escape(r, spans)
	}
	for i, lhs := range st.Lhs {
		var rhs ast.Expr
		if len(st.Rhs) == len(st.Lhs) {
			rhs = st.Rhs[i]
		} else if len(st.Rhs) == 1 {
			rhs = st.Rhs[0]
		}
		if rhs == nil || !s.yieldsScope(rhs, i, len(st.Lhs)) {
			continue
		}
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue // stored into a field or index: not trackable
		}
		if id.Name == "_" {
			s.pass.Reportf(rhs.Pos(), "span discarded: the returned obs.Scope must be ended")
			continue
		}
		v := analysis.UsedVar(s.pass.TypesInfo, id)
		if v == nil {
			continue
		}
		if pos, isOpen := spans[v]; isOpen {
			s.pass.Reportf(st.Pos(), "span %q reassigned while still open (started at %s)", v.Name(), s.pass.Fset.Position(pos))
		}
		spans[v] = rhs.Pos()
	}
}

// yieldsScope reports whether expression r produces an obs.Scope in
// position i of an n-way assignment.
func (s *scanner) yieldsScope(r ast.Expr, i, n int) bool {
	t := s.pass.TypesInfo.Types[r].Type
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		if i >= tup.Len() {
			return false
		}
		t = tup.At(i).Type()
	} else if n > 1 && i > 0 {
		return false
	}
	return analysis.NamedType(t, obsPkg, "Scope")
}

func (s *scanner) exprStmt(st *ast.ExprStmt, spans open) {
	call, ok := ast.Unparen(st.X).(*ast.CallExpr)
	if !ok {
		return
	}
	if v := s.endReceiver(call); v != nil {
		delete(spans, v)
		return
	}
	if s.yieldsScope(call, 0, 1) {
		s.pass.Reportf(call.Pos(), "StartSpan result discarded: the returned obs.Scope must be ended")
		return
	}
	s.call(call, spans)
}

func (s *scanner) deferStmt(st *ast.DeferStmt, spans open) {
	if v := s.endReceiver(st.Call); v != nil {
		delete(spans, v) // defer closes the span on every path from here
		return
	}
	// defer func() { ...; sp.End(); ... }() and friends: any End inside
	// the deferred expression closes its span for all paths.
	s.closeEndsWithin(st.Call, spans)
	s.call(st.Call, spans)
}

// call treats any remaining use of an open span inside a call as a
// responsibility transfer (the callee or goroutine now owns it).
func (s *scanner) call(call *ast.CallExpr, spans open) {
	s.closeEndsWithin(call, spans)
	for _, a := range call.Args {
		s.escape(a, spans)
	}
	// A closure invoked or spawned here may capture and end the span.
	ast.Inspect(call.Fun, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok {
			s.escape(e, spans)
		}
		return true
	})
}

// closeEndsWithin clears tracking for spans ended anywhere inside n.
func (s *scanner) closeEndsWithin(n ast.Node, spans open) {
	ast.Inspect(n, func(m ast.Node) bool {
		if c, ok := m.(*ast.CallExpr); ok {
			if v := s.endReceiver(c); v != nil {
				delete(spans, v)
			}
		}
		return true
	})
}

// endReceiver returns the tracked variable v when call is v.End().
func (s *scanner) endReceiver(call *ast.CallExpr) *types.Var {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return nil
	}
	fn := analysis.CalleeFunc(s.pass.TypesInfo, call)
	if fn == nil || analysis.FuncPkgPath(fn) != obsPkg {
		return nil
	}
	return analysis.UsedVar(s.pass.TypesInfo, sel.X)
}

// escape stops tracking a span variable that is used as a value (passed,
// stored, sent, or returned): the receiver of that value owns the End.
func (s *scanner) escape(e ast.Expr, spans open) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			// Closure bodies are separate scan roots, but a closure
			// capturing the span may end it: handled by closeEndsWithin
			// at the call site; here just stop descending.
			return true
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := s.pass.TypesInfo.Uses[id].(*types.Var); ok {
			if _, tracked := spans[v]; tracked {
				delete(spans, v)
			}
		}
		return true
	})
}
