// Package spand is spanpair's golden testdata. It imports the real obs
// package so the analyzer resolves obs.Scope exactly as it does in the
// engine.
package spand

import (
	"errors"
	"fmt"

	"ratel/internal/obs"
)

var errBoom = errors.New("boom")

const label = "precomputed"

func leakOnErrorPath(tr *obs.Tracer, fail bool) error {
	sp := tr.StartSpan("lane", label)
	if fail {
		return errBoom // want `return with span "sp" still open`
	}
	sp.End()
	return nil
}

func endOnBothPathsIsFine(tr *obs.Tracer, fail bool) error {
	sp := tr.StartSpan("lane", label)
	if fail {
		sp.End()
		return errBoom
	}
	sp.End()
	return nil
}

func deferIsFine(tr *obs.Tracer, fail bool) error {
	sp := tr.StartSpan("lane", label)
	defer sp.End()
	if fail {
		return errBoom
	}
	return nil
}

func deferredClosureIsFine(tr *obs.Tracer) {
	sp := tr.StartSpan("lane", label)
	defer func() { sp.End() }()
}

func discarded(tr *obs.Tracer) {
	tr.StartSpan("lane", label) // want `StartSpan result discarded`
}

func discardedBlank(tr *obs.Tracer) {
	_ = tr.StartSpan("lane", label) // want `span discarded`
}

func reassignedWhileOpen(tr *obs.Tracer) {
	sp := tr.StartSpan("lane", label)
	sp = tr.StartSpan("lane", label) // want `span "sp" reassigned while still open`
	sp.End()
}

func reuseAfterEndIsFine(tr *obs.Tracer) {
	sp := tr.StartSpan("lane", label)
	sp.End()
	sp = tr.StartSpan("lane", label)
	sp.End()
}

func leakAtFunctionEnd(tr *obs.Tracer) {
	sp := tr.StartSpan("lane", label) // want `span "sp" is not ended before the function returns`
	if false {
		sp.End() // ends only on one conditional path
	}
}

func loopOpenCloseIsFine(tr *obs.Tracer, n int) {
	var sp obs.Scope
	for i := 0; i < n; i++ {
		sp = tr.StartSpan("lane", label)
		sp.End()
	}
}

func switchAllPathsIsFine(tr *obs.Tracer, mode int) {
	sp := tr.StartSpan("lane", label)
	switch mode {
	case 0:
		sp.End()
	default:
		sp.End()
	}
}

func switchLeak(tr *obs.Tracer, mode int) error {
	sp := tr.StartSpan("lane", label)
	switch mode {
	case 0:
		return errBoom // want `return with span "sp" still open`
	}
	sp.End()
	return nil
}

func handedOffIsFine(tr *obs.Tracer, sink func(obs.Scope)) {
	sp := tr.StartSpan("lane", label)
	sink(sp) // responsibility transferred
}

func sprintfLabel(tr *obs.Tracer, i int) {
	sp := tr.StartSpan("lane", fmt.Sprintf("block%d", i)) // want `span label built with fmt.Sprintf`
	sp.End()
}

func concatLabel(tr *obs.Tracer, name string) {
	tr.Instant("lane", "prefix/"+name) // want `span label concatenated per call`
}

func constantConcatIsFine(tr *obs.Tracer) {
	tr.Instant("lane", "prefix/"+"suffix")
}

func variableLabelIsFine(tr *obs.Tracer, key string) {
	sp := tr.StartSpan("lane", key)
	sp.End()
}
