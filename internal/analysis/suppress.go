package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// IgnorePrefix is the suppression-comment marker. The full form is
//
//	//ratelvet:ignore <analyzer> <reason>
//
// placed either on the flagged line or on its own line immediately above.
// The reason is mandatory: a suppression that does not say why it is safe
// is rejected with a diagnostic of its own, as is a suppression naming an
// analyzer that does not exist (a typo would otherwise silently disable
// nothing).
const IgnorePrefix = "ratelvet:ignore"

// Suppression is one parsed //ratelvet:ignore comment. The `ratelvet
// audit` subcommand lists them tree-wide; run.go indexes them per package.
type Suppression struct {
	Line     int
	Analyzer string
	Reason   string
	Pos      token.Pos
}

// CollectSuppressions parses every ignore comment in a file, malformed
// ones included (empty Analyzer or Reason — the audit shows them too).
func CollectSuppressions(fset *token.FileSet, f *ast.File) []Suppression {
	var out []Suppression
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, IgnorePrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, IgnorePrefix))
			fields := strings.Fields(rest)
			s := Suppression{Line: fset.Position(c.Pos()).Line, Pos: c.Pos()}
			if len(fields) > 0 {
				s.Analyzer = fields[0]
			}
			if len(fields) > 1 {
				s.Reason = strings.Join(fields[1:], " ")
			}
			out = append(out, s)
		}
	}
	return out
}

// suppressionSet indexes a package's suppressions for diagnostic filtering.
type suppressionSet struct {
	// byFileLine maps file -> line -> analyzers suppressed on that line.
	byFileLine map[string]map[int][]string
}

// newSuppressionSet gathers a package's suppressions and reports the
// malformed ones (missing reason, unknown analyzer) through report.
func newSuppressionSet(pkg *Package, known map[string]bool, report func(Diagnostic)) suppressionSet {
	set := suppressionSet{byFileLine: make(map[string]map[int][]string)}
	for _, f := range pkg.Files {
		for _, s := range CollectSuppressions(pkg.Fset, f) {
			switch {
			case s.Analyzer == "":
				report(Diagnostic{Pos: s.Pos, Analyzer: "ratelvet",
					Message: "ratelvet:ignore needs an analyzer name and a reason"})
				continue
			case known != nil && !known[s.Analyzer]:
				report(Diagnostic{Pos: s.Pos, Analyzer: "ratelvet",
					Message: "ratelvet:ignore names unknown analyzer " + strconv(s.Analyzer)})
				continue
			case s.Reason == "":
				report(Diagnostic{Pos: s.Pos, Analyzer: "ratelvet",
					Message: "ratelvet:ignore " + s.Analyzer + " needs a reason (//ratelvet:ignore " + s.Analyzer + " <why this is safe>)"})
				continue
			}
			file := pkg.Fset.Position(s.Pos).Filename
			lines := set.byFileLine[file]
			if lines == nil {
				lines = make(map[int][]string)
				set.byFileLine[file] = lines
			}
			// The suppression covers its own line and the next one, so it
			// works both trailing a statement and on the line above it.
			lines[s.Line] = append(lines[s.Line], s.Analyzer)
			lines[s.Line+1] = append(lines[s.Line+1], s.Analyzer)
		}
	}
	return set
}

func strconv(s string) string { return "\"" + s + "\"" }

// suppressed reports whether a diagnostic at pos is covered by an ignore
// comment naming any of the analyzer's accepted names (its own plus
// retired aliases).
func (set suppressionSet) suppressed(fset *token.FileSet, names []string, pos token.Pos) bool {
	p := fset.Position(pos)
	for _, a := range set.byFileLine[p.Filename][p.Line] {
		for _, n := range names {
			if a == n {
				return true
			}
		}
	}
	return false
}
