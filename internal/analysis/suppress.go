package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// IgnorePrefix is the suppression-comment marker. The full form is
//
//	//ratelvet:ignore <analyzer> <reason>
//
// placed either on the flagged line or on its own line immediately above.
// The reason is mandatory: a suppression that does not say why it is safe
// is rejected with a diagnostic of its own, as is a suppression naming an
// analyzer that does not exist (a typo would otherwise silently disable
// nothing).
const IgnorePrefix = "ratelvet:ignore"

// suppression is one parsed //ratelvet:ignore comment.
type suppression struct {
	line     int
	analyzer string
	reason   string
	pos      token.Pos
}

// collectSuppressions parses every ignore comment in a file.
func collectSuppressions(fset *token.FileSet, f *ast.File) []suppression {
	var out []suppression
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, IgnorePrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, IgnorePrefix))
			fields := strings.Fields(rest)
			s := suppression{line: fset.Position(c.Pos()).Line, pos: c.Pos()}
			if len(fields) > 0 {
				s.analyzer = fields[0]
			}
			if len(fields) > 1 {
				s.reason = strings.Join(fields[1:], " ")
			}
			out = append(out, s)
		}
	}
	return out
}

// suppressionSet indexes a package's suppressions for diagnostic filtering.
type suppressionSet struct {
	// byFileLine maps file -> line -> analyzers suppressed on that line.
	byFileLine map[string]map[int][]string
}

// newSuppressionSet gathers a package's suppressions and reports the
// malformed ones (missing reason, unknown analyzer) through report.
func newSuppressionSet(pkg *Package, known map[string]bool, report func(Diagnostic)) suppressionSet {
	set := suppressionSet{byFileLine: make(map[string]map[int][]string)}
	for _, f := range pkg.Files {
		for _, s := range collectSuppressions(pkg.Fset, f) {
			switch {
			case s.analyzer == "":
				report(Diagnostic{Pos: s.pos, Analyzer: "ratelvet",
					Message: "ratelvet:ignore needs an analyzer name and a reason"})
				continue
			case known != nil && !known[s.analyzer]:
				report(Diagnostic{Pos: s.pos, Analyzer: "ratelvet",
					Message: "ratelvet:ignore names unknown analyzer " + strconv(s.analyzer)})
				continue
			case s.reason == "":
				report(Diagnostic{Pos: s.pos, Analyzer: "ratelvet",
					Message: "ratelvet:ignore " + s.analyzer + " needs a reason (//ratelvet:ignore " + s.analyzer + " <why this is safe>)"})
				continue
			}
			file := pkg.Fset.Position(s.pos).Filename
			lines := set.byFileLine[file]
			if lines == nil {
				lines = make(map[int][]string)
				set.byFileLine[file] = lines
			}
			// The suppression covers its own line and the next one, so it
			// works both trailing a statement and on the line above it.
			lines[s.line] = append(lines[s.line], s.analyzer)
			lines[s.line+1] = append(lines[s.line+1], s.analyzer)
		}
	}
	return set
}

func strconv(s string) string { return "\"" + s + "\"" }

// suppressed reports whether a diagnostic from analyzer at position pos is
// covered by an ignore comment.
func (set suppressionSet) suppressed(fset *token.FileSet, analyzer string, pos token.Pos) bool {
	p := fset.Position(pos)
	for _, a := range set.byFileLine[p.Filename][p.Line] {
		if a == analyzer {
			return true
		}
	}
	return false
}
