package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Finding is a diagnostic resolved to a concrete position.
type Finding struct {
	Analyzer string
	Position token.Position
	Message  string
	// Suppressed marks findings covered by a //ratelvet:ignore comment.
	// They are kept (flagged) so `-json` output and audits can show them;
	// text output and exit codes skip them.
	Suppressed bool
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Position, f.Analyzer, f.Message)
}

// Run applies every analyzer whose scope covers the package and returns all
// findings sorted by position, suppressed ones flagged rather than dropped.
// Malformed suppression comments are returned as findings from the
// pseudo-analyzer "ratelvet" regardless of which analyzers ran; those are
// never suppressible. Suppressions naming an analyzer's retired alias count
// for the successor.
func Run(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	known := make(map[string]bool, len(analyzers))
	aliases := make(map[string][]string, len(analyzers))
	for _, a := range analyzers {
		for _, n := range a.Names() {
			known[n] = true
		}
		aliases[a.Name] = a.Names()
	}

	var raw []Diagnostic
	collect := func(d Diagnostic) { raw = append(raw, d) }

	set := newSuppressionSet(pkg, known, collect)

	for _, a := range analyzers {
		if !a.AppliesTo(pkg.PkgPath) {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			d.Analyzer = name
			collect(d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.PkgPath, err)
		}
	}

	var out []Finding
	for _, d := range raw {
		names := aliases[d.Analyzer]
		if names == nil {
			names = []string{d.Analyzer}
		}
		// The suppression hygiene checks cannot themselves be suppressed.
		sup := d.Analyzer != "ratelvet" && set.suppressed(pkg.Fset, names, d.Pos)
		out = append(out, Finding{
			Analyzer:   d.Analyzer,
			Position:   pkg.Fset.Position(d.Pos),
			Message:    d.Message,
			Suppressed: sup,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := out[i].Position, out[j].Position
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}
