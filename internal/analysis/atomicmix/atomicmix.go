// Package atomicmix guards the module's atomics discipline: a location
// accessed through sync/atomic anywhere must be accessed atomically
// everywhere — one plain load or store next to atomic ones is a data race
// the race detector only catches when the interleaving cooperates. The
// check is module-wide and includes test files (IncludeTests): a plain
// read in a test assertion races exactly like one in production. It also
// flags hot plain fields laid out immediately adjacent to atomic fields,
// where false sharing bounces the cache line between cores (the same
// layout hygiene the pool's padded cursors exist for).
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"

	"ratel/internal/analysis"
)

// Analyzer is the atomicmix check.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc: `locations accessed with sync/atomic must be atomic everywhere

Collects every variable or struct field whose address is passed to a
sync/atomic free function, then flags plain reads, writes, and address
captures of the same location anywhere in the package — test files
included. Array/slice locations are tracked per base variable and flagged
on element accesses. Separately, a plain scalar field written inside a
loop and laid out immediately adjacent to an atomic field (sync/atomic
typed or atomically accessed) is flagged for false sharing; pad with
_ [N]byte or regroup the fields. Exactness: typed atomics (atomic.Int64
and friends) are safe by construction and only participate via the
adjacency check; locations reached through interface values or aliased
pointers are out of scope.`,
	IncludeTests: true,
	Run:          run,
}

// key identifies one atomically-accessed location.
type key struct {
	v *types.Var
	// indexed marks array/slice bases (atomic.AddInt32(&counts[i], 1)):
	// only element accesses are flagged, not len/range/slice-header uses.
	indexed bool
}

func run(pass *analysis.Pass) error {
	keys := collectAtomicKeys(pass)
	if len(keys) > 0 {
		flagPlainAccesses(pass, keys)
	}
	flagAdjacency(pass, keys)
	return nil
}

// atomicArg returns the &-operand of a sync/atomic free-function call's
// first argument, nil otherwise.
func atomicArg(info *types.Info, call *ast.CallExpr) ast.Expr {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil || analysis.FuncPkgPath(fn) != "sync/atomic" {
		return nil
	}
	if len(call.Args) == 0 {
		return nil
	}
	un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil
	}
	return ast.Unparen(un.X)
}

// resolveTarget maps an atomic call's &-operand to a tracked location.
func resolveTarget(info *types.Info, e ast.Expr) (key, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			return key{v: v}, true
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			if v, ok := sel.Obj().(*types.Var); ok {
				return key{v: v}, true
			}
		}
		if v, ok := info.Uses[e.Sel].(*types.Var); ok {
			return key{v: v}, true
		}
	case *ast.IndexExpr:
		switch base := ast.Unparen(e.X).(type) {
		case *ast.Ident:
			if v, ok := info.Uses[base].(*types.Var); ok {
				return key{v: v, indexed: true}, true
			}
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[base]; ok {
				if v, ok := sel.Obj().(*types.Var); ok {
					return key{v: v, indexed: true}, true
				}
			}
		}
	}
	return key{}, false
}

func collectAtomicKeys(pass *analysis.Pass) map[*types.Var]key {
	keys := make(map[*types.Var]key)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if e := atomicArg(pass.TypesInfo, call); e != nil {
				if k, ok := resolveTarget(pass.TypesInfo, e); ok {
					keys[k.v] = k
				}
			}
			return true
		})
	}
	return keys
}

// span is a half-open source range sanctioned for plain syntax (the inside
// of an atomic call's &-argument).
type span struct{ lo, hi token.Pos }

func flagPlainAccesses(pass *analysis.Pass, keys map[*types.Var]key) {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		var sanctioned []span
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if e := atomicArg(info, call); e != nil {
					sanctioned = append(sanctioned, span{e.Pos(), e.End()})
				}
			}
			return true
		})
		inSanctioned := func(p token.Pos) bool {
			for _, s := range sanctioned {
				if p >= s.lo && p < s.hi {
					return true
				}
			}
			return false
		}

		// Parent stack so an access can be classified read vs write.
		// ast.Inspect signals the pop with a nil node.
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			access, k, ok := accessOf(info, n, keys)
			if ok && !inSanctioned(access.Pos()) {
				reportAccess(pass, access, k, stack)
			}
			return true
		})
	}
}

// accessOf reports whether node n is a flaggable access of a tracked
// location: the selector/ident naming a scalar key, or an index expression
// over an indexed key's base.
func accessOf(info *types.Info, n ast.Node, keys map[*types.Var]key) (ast.Expr, key, bool) {
	switch n := n.(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[n]; ok {
			if v, ok := sel.Obj().(*types.Var); ok {
				if k, tracked := keys[v]; tracked && !k.indexed {
					return n, k, true
				}
			}
		}
	case *ast.Ident:
		v, ok := info.Uses[n].(*types.Var)
		if !ok || v.IsField() {
			// Field uses surface as the Sel of a SelectorExpr (handled
			// above) or as composite-literal keys (pre-publication writes,
			// plain by design) — only bare variable idents belong here.
			return nil, key{}, false
		}
		k, tracked := keys[v]
		if !tracked || k.indexed {
			return nil, key{}, false
		}
		return n, k, true
	case *ast.IndexExpr:
		if v := indexBase(info, n.X); v != nil {
			if k, tracked := keys[v]; tracked && k.indexed {
				return n, k, true
			}
		}
	case *ast.RangeStmt:
		// A value-carrying range reads every element plainly; a key-only
		// range walks indices without touching the data.
		if n.Value == nil {
			return nil, key{}, false
		}
		if v := indexBase(info, n.X); v != nil {
			if k, tracked := keys[v]; tracked && k.indexed {
				return n.X, k, true
			}
		}
	}
	return nil, key{}, false
}

// indexBase resolves the base variable of an indexable expression.
func indexBase(info *types.Info, e ast.Expr) *types.Var {
	switch b := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, _ := info.Uses[b].(*types.Var)
		return v
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[b]; ok {
			v, _ := sel.Obj().(*types.Var)
			return v
		}
	}
	return nil
}

// reportAccess classifies the access via the parent stack and reports it.
// The stack's last element is the access expression itself.
func reportAccess(pass *analysis.Pass, access ast.Expr, k key, stack []ast.Node) {
	// Walk outward past parens/selector wrappers to the governing node.
	self := ast.Node(access)
	for i := len(stack) - 2; i >= 0; i-- {
		parent := stack[i]
		switch p := parent.(type) {
		case *ast.ParenExpr:
			self = p
			continue
		case *ast.SelectorExpr:
			// access is the X of a deeper selector (s.counts[i].field) —
			// treat the outer selector as the access context.
			if p.X == self {
				self = p
				continue
			}
		case *ast.KeyValueExpr:
			if p.Key == self {
				// Composite-literal field initialization: pre-publication,
				// plain by design.
				return
			}
		case *ast.AssignStmt:
			for _, l := range p.Lhs {
				if l == self {
					pass.Reportf(access.Pos(), "%s is written plainly but accessed with sync/atomic elsewhere: use atomic.Store*/Add* (plain write races the atomic readers)", describe(k))
					return
				}
			}
		case *ast.IncDecStmt:
			if p.X == self {
				pass.Reportf(access.Pos(), "%s is mutated plainly (%s) but accessed with sync/atomic elsewhere: use atomic.Add*", describe(k), p.Tok)
				return
			}
		case *ast.UnaryExpr:
			if p.Op == token.AND && p.X == self {
				pass.Reportf(access.Pos(), "address of atomically-accessed %s escapes outside sync/atomic: the alias permits unchecked plain access", describe(k))
				return
			}
		}
		break
	}
	pass.Reportf(access.Pos(), "%s is read plainly but accessed with sync/atomic elsewhere: use atomic.Load* (plain read races the atomic writers)", describe(k))
}

func describe(k key) string {
	kind := "variable"
	if k.v.IsField() {
		kind = "field"
	} else if k.indexed {
		kind = "array"
	}
	return kind + " \"" + k.v.Name() + "\""
}

// flagAdjacency reports hot plain scalar fields laid out immediately next
// to an atomic field: false sharing bounces the shared cache line.
func flagAdjacency(pass *analysis.Pass, keys map[*types.Var]key) {
	info := pass.TypesInfo
	hot := hotWrittenFields(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			// Flatten the field list (one entry per name) preserving order.
			type fieldInfo struct {
				id *ast.Ident
				v  *types.Var
			}
			var flat []fieldInfo
			for _, fl := range st.Fields.List {
				if len(fl.Names) == 0 {
					flat = append(flat, fieldInfo{})
					continue
				}
				for _, name := range fl.Names {
					v, _ := info.Defs[name].(*types.Var)
					flat = append(flat, fieldInfo{id: name, v: v})
				}
			}
			isAtomic := func(fi fieldInfo) bool {
				if fi.v == nil {
					return false
				}
				if isAtomicType(fi.v.Type()) {
					return true
				}
				_, tracked := keys[fi.v]
				return tracked
			}
			for i, fi := range flat {
				if fi.v == nil || fi.id.Name == "_" || isAtomic(fi) {
					continue
				}
				if !isPlainScalar(fi.v.Type()) || !hot[fi.v] {
					continue
				}
				var neighbor *types.Var
				if i > 0 && isAtomic(flat[i-1]) {
					neighbor = flat[i-1].v
				} else if i+1 < len(flat) && isAtomic(flat[i+1]) {
					neighbor = flat[i+1].v
				}
				if neighbor != nil {
					pass.Reportf(fi.id.Pos(), "hot field %q shares a cache line with atomic field %q: pad with _ [N]byte or regroup to stop false sharing", fi.id.Name, neighbor.Name())
				}
			}
			return true
		})
	}
}

// hotWrittenFields finds struct fields written inside a loop somewhere in
// the package — the "hot" half of the false-sharing pair.
func hotWrittenFields(pass *analysis.Pass) map[*types.Var]bool {
	info := pass.TypesInfo
	hot := make(map[*types.Var]bool)
	for _, f := range pass.Files {
		depth := 0
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt:
				depth++
				if n.Body != nil {
					ast.Inspect(n.Body, walk)
				}
				depth--
				return false
			case *ast.RangeStmt:
				depth++
				if n.Body != nil {
					ast.Inspect(n.Body, walk)
				}
				depth--
				return false
			case *ast.AssignStmt:
				if depth > 0 {
					for _, l := range n.Lhs {
						markFieldWrite(info, l, hot)
					}
				}
			case *ast.IncDecStmt:
				if depth > 0 {
					markFieldWrite(info, n.X, hot)
				}
			}
			return true
		}
		ast.Inspect(f, walk)
	}
	return hot
}

func markFieldWrite(info *types.Info, e ast.Expr, hot map[*types.Var]bool) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return
	}
	if s, ok := info.Selections[sel]; ok {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			hot[v] = true
		}
	}
}

func isAtomicType(t types.Type) bool {
	for _, name := range []string{"Bool", "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer", "Value"} {
		if analysis.NamedType(t, "sync/atomic", name) {
			return true
		}
	}
	return false
}

func isPlainScalar(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsNumeric|types.IsBoolean) != 0
}
