// Package atomd is atomicmix's golden testdata: locations accessed via
// sync/atomic free functions must be accessed atomically everywhere, and
// hot plain fields must not share a cache line with atomic fields.
package atomd

import "sync/atomic"

type stats struct {
	n int64
}

func (s *stats) bump() { atomic.AddInt64(&s.n, 1) }

func (s *stats) read() int64 { return atomic.LoadInt64(&s.n) }

func (s *stats) plainRead() int64 {
	return s.n // want `field "n" is read plainly but accessed with sync/atomic elsewhere`
}

func (s *stats) plainWrite() {
	s.n = 0 // want `field "n" is written plainly but accessed with sync/atomic elsewhere`
}

// One branch is atomic, the other plain: the mix only shows up when both
// paths are considered together.
func (s *stats) plainIncOnOnePath(ok bool) {
	if ok {
		s.n++ // want `field "n" is mutated plainly`
	} else {
		atomic.AddInt64(&s.n, 1)
	}
}

// An escaping alias permits unchecked plain access downstream.
func (s *stats) addressEscapes() *int64 {
	return &s.n // want `address of atomically-accessed field "n" escapes outside sync/atomic`
}

// Composite-literal initialization happens before publication: plain by
// design, no finding.
func newStats() *stats {
	return &stats{n: 0}
}

var counts [4]int32

func bumpShard(i int) { atomic.AddInt32(&counts[i], 1) }

// Element reads race the sharded atomic writers; len/range over the array
// header does not touch elements and stays clean.
func snapshotPlain() int32 {
	var total int32
	for i := range counts {
		total += counts[i] // want `array "counts" is read plainly but accessed with sync/atomic elsewhere`
	}
	return total
}

func snapshotAtomic() int32 {
	var total int32
	for i := range counts {
		total += atomic.LoadInt32(&counts[i])
	}
	return total
}

func resetShard() {
	counts[0] = 0 // want `array "counts" is written plainly but accessed with sync/atomic elsewhere`
}

// A value-carrying range reads every element; only key-only iteration
// (as in snapshotAtomic) leaves the elements untouched.
func rangeValuePlain() int32 {
	var total int32
	for _, v := range counts { // want `array "counts" is read plainly but accessed with sync/atomic elsewhere`
		total += v
	}
	return total
}

var published uint32

func publish() { atomic.StoreUint32(&published, 1) }

func checkPlain() bool {
	return published == 1 // want `variable "published" is read plainly but accessed with sync/atomic elsewhere`
}

// Typed atomics are safe by construction: no plain-access findings.
type typed struct {
	total atomic.Int64
}

func (t *typed) ok() int64 {
	t.total.Add(1)
	return t.total.Load()
}

// hits is written every iteration right next to the atomic sequence
// counter: both live on one cache line and every atomic op bounces it.
type falseShared struct {
	seq  atomic.Uint64
	hits int64 // want `hot field "hits" shares a cache line with atomic field "seq"`
}

func (f *falseShared) spin(n int) {
	for i := 0; i < n; i++ {
		f.hits++
	}
}

// Padding between the pair restores line isolation: clean.
type padded struct {
	seq  atomic.Uint64
	_    [56]byte
	hits int64
}

func (p *padded) spin(n int) {
	for i := 0; i < n; i++ {
		p.hits++
	}
}

// gen is written once outside any loop — cold, so adjacency is harmless.
type coldNeighbor struct {
	seq atomic.Uint64
	gen int64
}

func (c *coldNeighbor) set(g int64) { c.gen = g }
