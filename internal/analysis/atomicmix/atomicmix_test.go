package atomicmix_test

import (
	"testing"

	"ratel/internal/analysis/analysistest"
	"ratel/internal/analysis/atomicmix"
)

func TestAtomicmix(t *testing.T) {
	analysistest.Run(t, atomicmix.Analyzer, "atomd")
}

func TestCoversTestsModuleWide(t *testing.T) {
	if !atomicmix.Analyzer.IncludeTests {
		t.Error("atomicmix must include _test.go files: a plain read in a test races like any other")
	}
	if atomicmix.Analyzer.Scope != nil {
		t.Error("atomicmix is module-wide: atomics discipline is not an engine-only concern")
	}
}
