package analysis

// This file is the control-flow half of ratelvet's dataflow substrate
// (DESIGN.md §13): a per-function intraprocedural CFG over the raw AST,
// built without type information so it works on any parsed function. The
// graph models branches, loops (including labeled break/continue and
// goto), switch/type-switch fallthrough, select arms (with and without
// default), explicit panic exits, and defer execution: every return or
// panic edge is routed through a chain of defer blocks in LIFO order, so a
// release performed in a deferred call is visible to dataflow on every exit
// path. Function literals are opaque values in the enclosing graph —
// analyzers build separate CFGs for closure bodies.
//
// Exactness contract (what analyzers may assume):
//
//   - Blocks are straight-line: entering a block executes all its Nodes in
//     order. Exits (return, panic, branch) always end a block.
//   - A defer registered in a block that dominates an exit is on every
//     path to that exit (no bypass edge); other defers get a bypass edge,
//     so they "may" run — conservative in both directions.
//   - Only explicit panic(...) statements produce panic edges. Implicit
//     runtime panics (nil derefs, bounds) are not modeled; analyzers that
//     must hold under them should treat every exit uniformly.
//   - A DeferStmt node in a body block is the registration point (its
//     arguments are evaluated there); the deferred *ast.CallExpr reappears
//     as the sole node of a "defer" chain block on each exit it reaches.

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Body is the function body the graph was built from.
	Body *ast.BlockStmt
	// Blocks lists every block in creation order; Blocks[0] is Entry.
	Blocks []*Block
	// Entry is the first executed block.
	Entry *Block
	// Exit is the virtual normal-return block: every return (and
	// falling off the end of the body) reaches it through that exit's
	// defer chain. It holds no nodes.
	Exit *Block
	// PanicExit is the virtual exit reached by explicit panic(...)
	// statements, also through the defer chain. Nil-safe to compare
	// against; it exists even when no panic occurs.
	PanicExit *Block
	// GoSpawns lists every go statement in the body, outermost-first,
	// excluding those inside nested function literals.
	GoSpawns []*ast.GoStmt
	// Defers lists every defer statement in registration order, excluding
	// those inside nested function literals.
	Defers []*ast.DeferStmt
}

// Block is one straight-line region.
type Block struct {
	Index   int
	Comment string // structural origin: "entry", "if.then", "for.head", "defer", ...
	Nodes   []ast.Node
	Succs   []*Block
	Preds   []*Block
}

// BuildCFG constructs the CFG of a function body (a *ast.FuncDecl.Body or
// *ast.FuncLit.Body). The body may be nil (external/assembly functions):
// the result is an empty graph whose entry connects straight to the exit.
func BuildCFG(body *ast.BlockStmt) *CFG {
	c := &CFG{Body: body}
	b := &cfgBuilder{c: c, labels: map[string]*Block{}}
	b.cur = b.block("entry")
	c.Entry = b.cur
	if body != nil {
		b.stmtList(body.List)
	}
	// Falling off the end of the body is a return.
	if b.cur != nil {
		b.exits = append(b.exits, pendingExit{from: b.cur, panics: false})
	}
	b.resolveGotos()

	// Exit wiring happens after dominators so conditional defers are known.
	c.Exit = b.block("exit")
	c.PanicExit = b.block("panic.exit")
	dom := dominators(c.Blocks[:len(c.Blocks)-2], c.Entry)
	for _, px := range b.exits {
		b.wireExit(px, dom)
	}
	return c
}

// cfgBuilder carries construction state.
type cfgBuilder struct {
	c   *CFG
	cur *Block // nil when the current position is unreachable

	// targets is the break/continue stack, innermost last.
	targets []branchTarget
	// labels maps label names to their blocks (goto targets).
	labels map[string]*Block
	// pendingLabel is the label naming the next loop/switch/select.
	pendingLabel string
	// fallthroughTo is the next case clause's block inside a switch.
	fallthroughTo *Block

	defers []deferSite
	exits  []pendingExit
	gotos  []pendingGoto
}

type branchTarget struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select
}

type deferSite struct {
	stmt  *ast.DeferStmt
	block *Block
}

type pendingExit struct {
	from   *Block
	panics bool
}

type pendingGoto struct {
	from *Block
	name string
	pos  token.Pos
}

func (b *cfgBuilder) block(comment string) *Block {
	blk := &Block{Index: len(b.c.Blocks), Comment: comment}
	b.c.Blocks = append(b.c.Blocks, blk)
	return blk
}

func edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// jump connects the current block to target, if reachable.
func (b *cfgBuilder) jump(to *Block) {
	if b.cur != nil {
		edge(b.cur, to)
	}
}

func (b *cfgBuilder) add(n ast.Node) {
	if b.cur != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for a labeled loop/switch/select.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		lb := b.block("label." + s.Label.Name)
		b.jump(lb)
		b.cur = lb
		b.labels[s.Label.Name] = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		label := b.takeLabel()
		_ = label // if statements are not break targets
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		then := b.block("if.then")
		done := b.block("if.done")
		if cond != nil {
			edge(cond, then)
		}
		b.cur = then
		b.stmt(s.Body)
		b.jump(done)
		if s.Else != nil {
			els := b.block("if.else")
			if cond != nil {
				edge(cond, els)
			}
			b.cur = els
			b.stmt(s.Else)
			b.jump(done)
		} else if cond != nil {
			edge(cond, done)
		}
		b.cur = done

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.block("for.head")
		b.jump(head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		body := b.block("for.body")
		done := b.block("for.done")
		edge(head, body)
		if s.Cond != nil {
			edge(head, done)
		}
		cont := head
		var post *Block
		if s.Post != nil {
			post = b.block("for.post")
			post.Nodes = append(post.Nodes, s.Post)
			edge(post, head)
			cont = post
		}
		b.targets = append(b.targets, branchTarget{label: label, breakTo: done, continueTo: cont})
		b.cur = body
		b.stmt(s.Body)
		b.jump(cont)
		b.targets = b.targets[:len(b.targets)-1]
		b.cur = done

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.block("range.head")
		b.jump(head)
		head.Nodes = append(head.Nodes, s)
		body := b.block("range.body")
		done := b.block("range.done")
		edge(head, body)
		edge(head, done)
		b.targets = append(b.targets, branchTarget{label: label, breakTo: done, continueTo: head})
		b.cur = body
		b.stmt(s.Body)
		b.jump(head)
		b.targets = b.targets[:len(b.targets)-1]
		b.cur = done

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchClauses(label, s.Body.List, func(cc ast.Stmt, blk *Block) []ast.Stmt {
			clause := cc.(*ast.CaseClause)
			for _, e := range clause.List {
				blk.Nodes = append(blk.Nodes, e)
			}
			return clause.Body
		}, func(cc ast.Stmt) bool { return cc.(*ast.CaseClause).List == nil })

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchClauses(label, s.Body.List, func(cc ast.Stmt, blk *Block) []ast.Stmt {
			return cc.(*ast.CaseClause).Body
		}, func(cc ast.Stmt) bool { return cc.(*ast.CaseClause).List == nil })

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		done := b.block("select.done")
		b.targets = append(b.targets, branchTarget{label: label, breakTo: done})
		for _, cc := range s.Body.List {
			clause := cc.(*ast.CommClause)
			comment := "select.recv"
			switch clause.Comm.(type) {
			case nil:
				comment = "select.default"
			case *ast.SendStmt:
				comment = "select.send"
			}
			arm := b.block(comment)
			if head != nil {
				edge(head, arm)
			}
			if clause.Comm != nil {
				arm.Nodes = append(arm.Nodes, clause.Comm)
			}
			b.cur = arm
			b.stmtList(clause.Body)
			b.jump(done)
		}
		b.targets = b.targets[:len(b.targets)-1]
		// For select{} (no arms) done has no predecessors: statements after
		// it land in an unreachable block, which is exactly right.
		b.cur = done

	case *ast.BranchStmt:
		if b.cur == nil {
			return
		}
		switch s.Tok {
		case token.BREAK:
			if t := b.findTarget(s.Label, false); t != nil {
				edge(b.cur, t.breakTo)
			}
		case token.CONTINUE:
			if t := b.findTarget(s.Label, true); t != nil {
				edge(b.cur, t.continueTo)
			}
		case token.GOTO:
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, name: s.Label.Name, pos: s.Pos()})
		case token.FALLTHROUGH:
			if b.fallthroughTo != nil {
				edge(b.cur, b.fallthroughTo)
			}
		}
		b.cur = nil

	case *ast.ReturnStmt:
		if b.cur == nil {
			return
		}
		b.add(s)
		b.exits = append(b.exits, pendingExit{from: b.cur, panics: false})
		b.cur = nil

	case *ast.DeferStmt:
		if b.cur == nil {
			return
		}
		b.add(s)
		b.defers = append(b.defers, deferSite{stmt: s, block: b.cur})
		b.c.Defers = append(b.c.Defers, s)

	case *ast.GoStmt:
		if b.cur == nil {
			return
		}
		b.add(s)
		b.c.GoSpawns = append(b.c.GoSpawns, s)

	case *ast.ExprStmt:
		if b.cur == nil {
			return
		}
		b.add(s)
		if isPanicCall(s.X) {
			b.exits = append(b.exits, pendingExit{from: b.cur, panics: true})
			b.cur = nil
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// AssignStmt, DeclStmt, IncDecStmt, SendStmt, ...
		b.add(s)
	}
}

// switchClauses builds the per-clause blocks shared by value and type
// switches. nodes fills a clause block's guard nodes and returns its body.
func (b *cfgBuilder) switchClauses(label string, clauses []ast.Stmt, nodes func(ast.Stmt, *Block) []ast.Stmt, isDefault func(ast.Stmt) bool) {
	head := b.cur
	done := b.block("switch.done")
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		comment := "switch.case"
		if isDefault(cc) {
			comment = "switch.default"
			hasDefault = true
		}
		blocks[i] = b.block(comment)
		if head != nil {
			edge(head, blocks[i])
		}
	}
	if !hasDefault && head != nil {
		edge(head, done)
	}
	b.targets = append(b.targets, branchTarget{label: label, breakTo: done})
	for i, cc := range clauses {
		body := nodes(cc, blocks[i])
		if i+1 < len(clauses) {
			b.fallthroughTo = blocks[i+1]
		} else {
			b.fallthroughTo = nil
		}
		b.cur = blocks[i]
		b.stmtList(body)
		b.jump(done)
	}
	b.fallthroughTo = nil
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = done
}

// findTarget resolves a break/continue to its loop or switch.
func (b *cfgBuilder) findTarget(label *ast.Ident, needContinue bool) *branchTarget {
	for i := len(b.targets) - 1; i >= 0; i-- {
		t := &b.targets[i]
		if needContinue && t.continueTo == nil {
			continue
		}
		if label == nil || t.label == label.Name {
			return t
		}
	}
	return nil
}

func (b *cfgBuilder) resolveGotos() {
	for _, g := range b.gotos {
		if lb, ok := b.labels[g.name]; ok {
			edge(g.from, lb)
		}
	}
}

// wireExit routes one return/panic block through its defer chain to the
// exit. Defers whose registration block can reach the exiting block are in
// the chain (reverse registration order — LIFO); those whose registration
// does not dominate the exit get bypass edges, so they only "may" run.
func (b *cfgBuilder) wireExit(px pendingExit, dom dominatorSets) {
	target := b.c.Exit
	if px.panics {
		target = b.c.PanicExit
	}
	var chain []*Block
	var conditional []bool
	for i := len(b.defers) - 1; i >= 0; i-- {
		d := b.defers[i]
		if d.block != px.from && !reaches(d.block, px.from) {
			continue
		}
		db := b.block("defer")
		db.Nodes = append(db.Nodes, ast.Node(d.stmt.Call))
		chain = append(chain, db)
		conditional = append(conditional, !dom.dominates(d.block, px.from))
	}
	seq := append([]*Block{px.from}, chain...)
	seq = append(seq, target)
	for i := 0; i+1 < len(seq); i++ {
		edge(seq[i], seq[i+1])
		// Bypass runs of conditional defers: a defer that may not have been
		// registered can be skipped.
		for j := i + 1; j < len(seq)-1; j++ {
			hop := j - 1 // index into chain for seq[j]
			if !conditional[hop] {
				break
			}
			edge(seq[i], seq[j+1])
		}
	}
}

// reaches reports whether a path of core edges leads from a to z.
func reaches(a, z *Block) bool {
	seen := map[*Block]bool{}
	var dfs func(b *Block) bool
	dfs = func(b *Block) bool {
		if b == z {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if dfs(s) {
				return true
			}
		}
		return false
	}
	if a == z {
		// Self-reach requires a cycle.
		for _, s := range a.Succs {
			if dfs(s) {
				return true
			}
		}
		return false
	}
	return dfs(a)
}

// dominatorSets holds, per block index, the set of blocks dominating it.
type dominatorSets [][]bool

func (d dominatorSets) dominates(a, b *Block) bool {
	if a == b {
		return true
	}
	if b.Index >= len(d) || a.Index >= len(d) {
		return false
	}
	return d[b.Index][a.Index]
}

// dominators computes dominance over the core graph (before exit wiring)
// with the classic iterative data-flow formulation — function graphs are
// small enough that the O(n²) sets never matter.
func dominators(blocks []*Block, entry *Block) dominatorSets {
	n := len(blocks)
	dom := make(dominatorSets, n)
	for i := range dom {
		dom[i] = make([]bool, n)
		if blocks[i] == entry {
			dom[i][i] = true
			continue
		}
		for j := range dom[i] {
			dom[i][j] = true
		}
	}
	changed := true
	for changed {
		changed = false
		for _, b := range blocks {
			if b == entry {
				continue
			}
			i := b.Index
			for j := 0; j < n; j++ {
				if j == i || !dom[i][j] {
					continue
				}
				// j stays a dominator only if it dominates every pred.
				keep := len(b.Preds) > 0
				for _, p := range b.Preds {
					if p.Index >= n || !dom[p.Index][j] {
						keep = false
						break
					}
				}
				if !keep {
					dom[i][j] = false
					changed = true
				}
			}
		}
	}
	return dom
}

func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// Format renders the graph in a stable textual shape for golden tests:
// one line per block with its comment, condensed nodes, and successor
// indices.
func (c *CFG) Format(fset *token.FileSet) string {
	if fset == nil {
		fset = token.NewFileSet()
	}
	var sb strings.Builder
	for _, b := range c.Blocks {
		fmt.Fprintf(&sb, "b%d %s:", b.Index, b.Comment)
		for _, n := range b.Nodes {
			sb.WriteString(" {")
			sb.WriteString(condense(fset, n))
			sb.WriteString("}")
		}
		if len(b.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range b.Succs {
				fmt.Fprintf(&sb, " b%d", s.Index)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// condense prints one node on one line with collapsed whitespace. Range
// statements appear whole in their head block (dataflow needs the key /
// value / operand triple) but render as just their header here so the body
// is not printed twice.
func condense(fset *token.FileSet, n ast.Node) string {
	if r, ok := n.(*ast.RangeStmt); ok {
		hdr := "range " + condense(fset, r.X)
		if r.Key != nil {
			assign := condense(fset, r.Key)
			if r.Value != nil {
				assign += ", " + condense(fset, r.Value)
			}
			hdr = assign + " " + r.Tok.String() + " " + hdr
		}
		return hdr
	}
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return fmt.Sprintf("<%T>", n)
	}
	return strings.Join(strings.Fields(buf.String()), " ")
}
