// Package analysistest runs a ratelvet analyzer over a testdata package and
// checks its diagnostics against `// want "regexp"` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest. Testdata packages live under
// <analyzer>/testdata/src/<name> and may import real module packages (the
// go tool ignores testdata directories, so they never join the build).
package analysistest

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"ratel/internal/analysis"
)

var wantRE = regexp.MustCompile(`// want (.*)$`)

// quotedRE matches one want pattern: double-quoted or backtick-quoted.
var quotedRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// moduleExports lists the whole module once per test process and caches the
// export-data map used to resolve testdata imports.
var moduleExports = sync.OnceValues(func() (map[string]string, error) {
	root, err := moduleRoot()
	if err != nil {
		return nil, err
	}
	pkgs, exports, err := listExports(root, "./...")
	_ = pkgs
	return exports, err
})

func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysistest: no go.mod above the test's working directory")
		}
		dir = parent
	}
}

// listExports returns the import-path -> export-file map for patterns and
// all their dependencies.
func listExports(dir string, patterns ...string) ([]string, map[string]string, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-f",
		"{{.ImportPath}}\t{{.Export}}\t{{.DepOnly}}"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("analysistest: go list: %v", err)
	}
	exports := make(map[string]string)
	var roots []string
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		parts := strings.Split(line, "\t")
		if len(parts) != 3 {
			continue
		}
		if parts[1] != "" {
			exports[parts[0]] = parts[1]
		}
		if parts[2] == "false" {
			roots = append(roots, parts[0])
		}
	}
	return roots, exports, nil
}

// Run loads testdata/src/<name> (relative to the calling test's package
// directory), applies the analyzer with its package scope lifted, and
// reports mismatches between the diagnostics and the `// want` comments.
func Run(t *testing.T, a *analysis.Analyzer, name string) {
	t.Helper()

	exports, err := moduleExports()
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", "src", name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		t.Fatalf("analysistest: no Go files in %s", dir)
	}
	pkg, err := analysis.CheckPackage(name, dir, files, exports)
	if err != nil {
		t.Fatal(err)
	}
	if pkg.TypeError != nil {
		t.Fatalf("analysistest: testdata package %s does not type-check: %v", name, pkg.TypeError)
	}

	// Lift the scope: testdata package paths are synthetic.
	unscoped := *a
	unscoped.Scope = nil
	unscoped.Exclude = nil

	findings, err := analysis.Run(pkg, []*analysis.Analyzer{&unscoped})
	if err != nil {
		t.Fatal(err)
	}

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, fn := range files {
		data, err := os.ReadFile(fn)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			k := key{file: fn, line: i + 1}
			for _, q := range quotedRE.FindAllStringSubmatch(m[1], -1) {
				pat := q[1]
				if pat == "" {
					pat = q[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", fn, i+1, pat, err)
				}
				wants[k] = append(wants[k], re)
			}
		}
	}

	matched := make(map[key][]bool)
	for k, res := range wants {
		matched[k] = make([]bool, len(res))
	}
	for _, f := range findings {
		if f.Suppressed {
			continue
		}
		k := key{file: f.Position.Filename, line: f.Position.Line}
		ok := false
		for i, re := range wants[k] {
			if !matched[k][i] && re.MatchString(f.Message) {
				matched[k][i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", f.Position, f.Analyzer, f.Message)
		}
	}
	var keys []key
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for i, re := range wants[k] {
			if !matched[k][i] {
				t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, re)
			}
		}
	}
}
