package analysis_test

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ratel/internal/analysis"
)

// fakeAnalyzer flags every return statement, giving the suppression tests a
// deterministic diagnostic to silence.
var fakeAnalyzer = &analysis.Analyzer{
	Name: "fake",
	Doc:  "flags every return statement (test analyzer)",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if r, ok := n.(*ast.ReturnStmt); ok {
					pass.Reportf(r.Pos(), "return statement")
				}
				return true
			})
		}
		return nil
	},
}

// check loads src as a single-file package and runs fakeAnalyzer over it.
func check(t *testing.T, src string) []analysis.Finding {
	t.Helper()
	dir := t.TempDir()
	fn := filepath.Join(dir, "p.go")
	if err := os.WriteFile(fn, []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	pkg, err := analysis.CheckPackage("p", dir, []string{fn}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pkg.TypeError != nil {
		t.Fatalf("test source does not type-check: %v", pkg.TypeError)
	}
	findings, err := analysis.Run(pkg, []*analysis.Analyzer{fakeAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

func messages(fs []analysis.Finding) []string {
	var out []string
	for _, f := range fs {
		out = append(out, "["+f.Analyzer+"] "+f.Message)
	}
	return out
}

func TestSuppressionWithReasonSilencesFinding(t *testing.T) {
	findings := check(t, `package p
func a() int {
	return 1 //ratelvet:ignore fake verified by hand in TestSuppression
}
func b() int {
	//ratelvet:ignore fake covers the next line too
	return 2
}
`)
	for _, f := range findings {
		if !f.Suppressed {
			t.Errorf("explained suppressions should silence the findings, got %v", f)
		}
	}
	if len(findings) != 2 {
		t.Errorf("suppressed findings must still be returned (flagged) for -json/audit, got %v", messages(findings))
	}
}

// A suppression naming a retired alias keeps silencing the successor.
func TestSuppressionViaAliasStillCounts(t *testing.T) {
	aliased := *fakeAnalyzer
	aliased.Aliases = []string{"oldfake"}
	dir := t.TempDir()
	fn := filepath.Join(dir, "p.go")
	src := `package p
func a() int {
	return 1 //ratelvet:ignore oldfake suppression predates the rename
}
`
	if err := os.WriteFile(fn, []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	pkg, err := analysis.CheckPackage("p", dir, []string{fn}, nil)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.Run(pkg, []*analysis.Analyzer{&aliased})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.Analyzer == "ratelvet" {
			t.Errorf("alias must be a known name, got %v", f)
		}
		if f.Analyzer == "fake" && !f.Suppressed {
			t.Errorf("alias suppression must cover the successor's finding: %v", f)
		}
	}
}

func TestSuppressionWithoutReasonIsRejected(t *testing.T) {
	findings := check(t, `package p
func a() int {
	return 1 //ratelvet:ignore fake
}
`)
	// The unexplained suppression must NOT silence the finding, and must
	// draw a diagnostic of its own.
	var sawFinding, sawRejection bool
	for _, f := range findings {
		if f.Analyzer == "fake" {
			sawFinding = true
		}
		if f.Analyzer == "ratelvet" && strings.Contains(f.Message, "needs a reason") {
			sawRejection = true
		}
	}
	if !sawFinding {
		t.Errorf("a reason-less suppression must not silence the finding; findings: %v", messages(findings))
	}
	if !sawRejection {
		t.Errorf("a reason-less suppression must be rejected with its own diagnostic; findings: %v", messages(findings))
	}
}

func TestSuppressionNamingUnknownAnalyzerIsRejected(t *testing.T) {
	findings := check(t, `package p
func a() int {
	return 1 //ratelvet:ignore fakr typo should not silently disable nothing
}
`)
	var sawFinding, sawRejection bool
	for _, f := range findings {
		if f.Analyzer == "fake" {
			sawFinding = true
		}
		if f.Analyzer == "ratelvet" && strings.Contains(f.Message, "unknown analyzer") {
			sawRejection = true
		}
	}
	if !sawFinding || !sawRejection {
		t.Errorf("unknown analyzer name must be rejected and not suppress; findings: %v", messages(findings))
	}
}

func TestBareSuppressionIsRejected(t *testing.T) {
	findings := check(t, `package p
func a() int {
	return 1 //ratelvet:ignore
}
`)
	var sawRejection bool
	for _, f := range findings {
		if f.Analyzer == "ratelvet" && strings.Contains(f.Message, "needs an analyzer name") {
			sawRejection = true
		}
	}
	if !sawRejection {
		t.Errorf("bare ratelvet:ignore must be rejected; findings: %v", messages(findings))
	}
}
