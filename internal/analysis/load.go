package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed, type-checked package.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info

	// ForTest marks the test variant of a package: the same sources plus
	// in-package _test.go files, type-checked together under the base
	// import path (so analyzer scopes match). Produced by LoadWithTests.
	ForTest bool

	// TypeError holds the first type-checking failure, if any. Analyzers
	// still run on packages with type errors; they must tolerate partial
	// type information.
	TypeError error
}

// listedPackage is the subset of `go list -json` output the loader reads.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	ForTest    string
	Error      *struct{ Err string }
}

// Load lists patterns with the go tool (from dir, typically the module
// root), parses each root package's non-test sources, and type-checks them
// against the toolchain's export data for every dependency — the same
// resolution `go vet` uses, so Load works offline and never re-typechecks
// the world from source.
func Load(dir string, patterns ...string) ([]*Package, error) {
	return load(dir, false, patterns...)
}

// LoadWithTests is Load plus each package's internal test variant (the
// package compiled with its in-package _test.go files), type-checked under
// the base import path with Package.ForTest set. External _test packages
// and generated .test mains are skipped: the protocol analyzers care about
// code that lives inside the package, not black-box tests.
func LoadWithTests(dir string, patterns ...string) ([]*Package, error) {
	return load(dir, true, patterns...)
}

func load(dir string, withTests bool, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := []string{"list", "-e", "-export", "-deps"}
	if withTests {
		args = append(args, "-test")
	}
	args = append(args,
		"-json=ImportPath,Dir,GoFiles,Export,DepOnly,Standard,ForTest,Error")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string) // import path -> export data file
	var roots []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if lp.DepOnly {
			continue
		}
		if lp.ForTest != "" {
			// Keep only the internal variant "X [X.test]"; drop external
			// "X_test [X.test]" packages and synthesized "X.test" mains.
			if lp.ImportPath != lp.ForTest+" ["+lp.ForTest+".test]" {
				continue
			}
		} else if strings.HasSuffix(lp.ImportPath, ".test") {
			continue
		}
		roots = append(roots, lp)
	}

	var pkgs []*Package
	for _, lp := range roots {
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		var files []string
		for _, f := range lp.GoFiles {
			files = append(files, filepath.Join(lp.Dir, f))
		}
		path := lp.ImportPath
		if lp.ForTest != "" {
			path = lp.ForTest
		}
		pkg, err := CheckPackage(path, lp.Dir, files, exports)
		if err != nil {
			return nil, err
		}
		pkg.ForTest = lp.ForTest != ""
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// CheckPackage parses and type-checks one package from source, resolving
// imports through export data files (import path -> file). It is shared by
// the standalone loader, the vet-tool mode (which gets the map from the vet
// config), and the analysistest harness.
func CheckPackage(pkgPath, dir string, filenames []string, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %v", fn, err)
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		ef, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(ef)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var firstErr error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, _ := conf.Check(pkgPath, fset, files, info)
	return &Package{
		PkgPath:   pkgPath,
		Dir:       dir,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		Info:      info,
		TypeError: firstErr,
	}, nil
}
