package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, parsed, type-checked package.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info

	// TypeError holds the first type-checking failure, if any. Analyzers
	// still run on packages with type errors; they must tolerate partial
	// type information.
	TypeError error
}

// listedPackage is the subset of `go list -json` output the loader reads.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load lists patterns with the go tool (from dir, typically the module
// root), parses each root package's non-test sources, and type-checks them
// against the toolchain's export data for every dependency — the same
// resolution `go vet` uses, so Load works offline and never re-typechecks
// the world from source.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,DepOnly,Standard,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string) // import path -> export data file
	var roots []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly {
			roots = append(roots, lp)
		}
	}

	var pkgs []*Package
	for _, lp := range roots {
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		var files []string
		for _, f := range lp.GoFiles {
			files = append(files, filepath.Join(lp.Dir, f))
		}
		pkg, err := CheckPackage(lp.ImportPath, lp.Dir, files, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// CheckPackage parses and type-checks one package from source, resolving
// imports through export data files (import path -> file). It is shared by
// the standalone loader, the vet-tool mode (which gets the map from the vet
// config), and the analysistest harness.
func CheckPackage(pkgPath, dir string, filenames []string, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %v", fn, err)
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		ef, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(ef)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var firstErr error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, _ := conf.Check(pkgPath, fset, files, info)
	return &Package{
		PkgPath:   pkgPath,
		Dir:       dir,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		Info:      info,
		TypeError: firstErr,
	}, nil
}
