package poolcapture_test

import (
	"testing"

	"ratel/internal/analysis/analysistest"
	"ratel/internal/analysis/poolcapture"
)

func TestPoolcapture(t *testing.T) {
	analysistest.Run(t, poolcapture.Analyzer, "poold")
}

func TestScope(t *testing.T) {
	for _, pkg := range []string{"ratel/internal/tensor", "ratel/internal/opt", "ratel/internal/engine"} {
		if !poolcapture.Analyzer.AppliesTo(pkg) {
			t.Errorf("poolcapture should cover %s", pkg)
		}
	}
}
