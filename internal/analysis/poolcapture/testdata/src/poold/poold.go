// Package poold is poolcapture's golden testdata. It imports the real
// pool package so callee resolution works exactly as it does in the
// kernels.
package poold

import (
	"sync/atomic"

	"ratel/internal/tensor/pool"
)

func scalarAccumulate(xs []float64) float64 {
	var sum float64
	pool.For(len(xs), 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum += xs[i] // want `closure passed to pool.For writes captured variable "sum"`
		}
	})
	return sum
}

func counterIncrement(chunks int) int {
	total := 0
	pool.Run(chunks, func(chunk int) {
		total++ // want `closure passed to pool.Run writes captured variable "total"`
	})
	return total
}

func appendCapture(xs []float64) []float64 {
	var out []float64
	pool.ForWork(len(xs), 32, 8, func(lo, hi int) {
		out = append(out, xs[lo:hi]...) // want `closure passed to pool.ForWork writes captured variable "out"`
	})
	return out
}

func methodReceiverToo(p *pool.Pool, xs []float64) float64 {
	var sum float64
	p.For(len(xs), 64, func(lo, hi int) {
		sum = xs[lo] // want `closure passed to pool.For writes captured variable "sum"`
	})
	return sum
}

func shardedWriteIsFine(xs, out []float64) {
	pool.For(len(xs), 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = xs[i] * 2
		}
	})
}

func partialReduceIsFine(xs []float64, chunks int) float64 {
	partial := make([]float64, chunks)
	pool.Run(chunks, func(chunk int) {
		var local float64
		for _, x := range xs {
			local += x
		}
		partial[chunk] = local
	})
	var sum float64
	for _, p := range partial {
		sum += p
	}
	return sum
}

func atomicIsFine(xs []int64) int64 {
	var total atomic.Int64
	pool.For(len(xs), 64, func(lo, hi int) {
		var local int64
		for i := lo; i < hi; i++ {
			local += xs[i]
		}
		total.Add(local)
	})
	return total.Load()
}

func sequentialOutsideIsFine(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum
}
