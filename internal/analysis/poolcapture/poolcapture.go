// Package poolcapture guards the worker-pool contract: chunks submitted to
// pool.Run / pool.For / pool.ForWork may execute concurrently and in any
// order, so the closure must only write through disjoint per-chunk slots
// (out[i] = ...). A closure that assigns a captured outer variable directly
// is a data race and, even when "benign", makes kernel results depend on
// chunk interleaving — breaking the bit-identical-at-any-thread-count
// guarantee the tensor kernels are tested for.
package poolcapture

import (
	"go/ast"
	"go/token"
	"go/types"

	"ratel/internal/analysis"
)

const poolPkg = "ratel/internal/tensor/pool"

// submitFuncs are the pool entry points whose final argument is the
// parallel body (package functions and *Pool methods share names).
var submitFuncs = map[string]bool{"Run": true, "For": true, "ForWork": true}

// Analyzer is the poolcapture check.
var Analyzer = &analysis.Analyzer{
	Name: "poolcapture",
	Doc: `closures submitted to the worker pool must not write captured variables

Flags assignments (including +=, ++, and x = append(x, ...)) whose target
is a bare variable declared outside the closure passed to pool.Run /
pool.For / pool.ForWork. Chunks run concurrently: write through disjoint
index expressions (out[i] = v) and reduce after the loop, or use atomics.
Reads of captured variables and writes through index/field expressions are
allowed.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !analysis.IsPkgCall(pass.TypesInfo, call, poolPkg) {
				return true
			}
			fn := analysis.CalleeFunc(pass.TypesInfo, call)
			if !submitFuncs[fn.Name()] || len(call.Args) == 0 {
				return true
			}
			lit, ok := ast.Unparen(call.Args[len(call.Args)-1]).(*ast.FuncLit)
			if !ok {
				return true
			}
			checkBody(pass, fn.Name(), lit)
			return true
		})
	}
	return nil
}

func checkBody(pass *analysis.Pass, entry string, lit *ast.FuncLit) {
	report := func(pos token.Pos, name string) {
		pass.Reportf(pos, "closure passed to pool.%s writes captured variable %q: chunks run concurrently, so write disjoint per-chunk slots and reduce afterwards", entry, name)
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if v, id := capturedTarget(pass, lit, lhs); v != nil {
					report(n.Pos(), id)
				}
			}
		case *ast.IncDecStmt:
			if v, id := capturedTarget(pass, lit, n.X); v != nil {
				report(n.Pos(), id)
			}
		}
		return true
	})
}

// capturedTarget resolves lhs to a bare identifier naming a variable
// declared outside the closure. Index and field stores are the sanctioned
// disjoint-shard idiom and return nil.
func capturedTarget(pass *analysis.Pass, lit *ast.FuncLit, lhs ast.Expr) (*types.Var, string) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil, ""
	}
	v := analysis.UsedVar(pass.TypesInfo, id)
	if v == nil {
		return nil, ""
	}
	if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
		return nil, "" // declared inside the closure
	}
	return v, id.Name
}
