package analysis

import (
	"go/ast"
	"testing"
)

// All lattice points, for exhaustive law checks.
var allVals = []Val{Bottom, Borrowed, Owned, Released, MaybeReleased, Escaped}

func TestJoinLaws(t *testing.T) {
	for _, a := range allVals {
		if got := JoinVal(a, a); got != a {
			t.Errorf("join(%v,%v) = %v, want idempotent", a, a, got)
		}
		if got := JoinVal(a, Bottom); got != a {
			t.Errorf("join(%v,bottom) = %v, want %v", a, got, a)
		}
		if got := JoinVal(a, Escaped); got != Escaped {
			t.Errorf("join(%v,escaped) = %v, want escaped (top)", a, got)
		}
		for _, b := range allVals {
			if JoinVal(a, b) != JoinVal(b, a) {
				t.Errorf("join(%v,%v) not commutative", a, b)
			}
			for _, c := range allVals {
				if JoinVal(JoinVal(a, b), c) != JoinVal(a, JoinVal(b, c)) {
					t.Errorf("join not associative at (%v,%v,%v)", a, b, c)
				}
			}
		}
	}
}

func TestJoinProtocolPoints(t *testing.T) {
	cases := []struct{ a, b, want Val }{
		{Owned, Released, MaybeReleased},
		{Owned, Borrowed, Owned}, // owned-on-any-path must stay owned
		{Borrowed, Released, MaybeReleased},
		{Released, MaybeReleased, MaybeReleased},
		{Owned, MaybeReleased, MaybeReleased},
	}
	for _, c := range cases {
		if got := JoinVal(c.a, c.b); got != c.want {
			t.Errorf("join(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestStateSetBottomDeletes(t *testing.T) {
	s := State{}
	k := "key"
	s.Set(k, Owned)
	if s.Get(k) != Owned {
		t.Fatal("set/get failed")
	}
	s.Set(k, Bottom)
	if _, ok := s[k]; ok {
		t.Fatal("Set(Bottom) must delete the key")
	}
}

// transferForTest interprets a tiny protocol over identifiers by name:
// acquire(x) makes x Owned, release(x) makes it Released (joining via the
// natural protocol on repeats), spawn(x) escapes it.
func transferForTest(_ *Block, n ast.Node, st State) {
	call, ok := n.(ast.Stmt)
	if !ok {
		return
	}
	es, ok := call.(*ast.ExprStmt)
	if !ok {
		return
	}
	ce, ok := es.X.(*ast.CallExpr)
	if !ok || len(ce.Args) != 1 {
		return
	}
	fn, ok := ce.Fun.(*ast.Ident)
	if !ok {
		return
	}
	arg, ok := ce.Args[0].(*ast.Ident)
	if !ok {
		return
	}
	switch fn.Name {
	case "acquire":
		st.Set(arg.Name, Owned)
	case "release":
		st.Set(arg.Name, Released)
	case "spawn":
		st.Set(arg.Name, Escaped)
	}
}

// A branch that releases on one arm only must join to MaybeReleased at the
// merge point — the core property AST-level checks cannot see.
func TestFixpointBranchJoin(t *testing.T) {
	c, _ := buildFrom(t, `
func f(ok bool) {
	acquire(x)
	if ok {
		release(x)
	}
	use(x)
}`)
	flow := &Flow{CFG: c, Transfer: transferForTest}
	in := flow.Fixpoint()
	// Find the if.done block: x must be maybe-released there.
	for _, b := range c.Blocks {
		if b.Comment == "if.done" {
			if got := in[b.Index].Get("x"); got != MaybeReleased {
				t.Fatalf("at if.done x = %v, want maybe-released", got)
			}
			return
		}
	}
	t.Fatal("no if.done block")
}

// A release inside a loop body feeds back through the head: the second
// iteration enters the body with x already released.
func TestFixpointLoopFeedback(t *testing.T) {
	c, _ := buildFrom(t, `
func f(n int) {
	acquire(x)
	for i := 0; i < n; i++ {
		release(x)
	}
}`)
	flow := &Flow{CFG: c, Transfer: transferForTest}
	in := flow.Fixpoint()
	for _, b := range c.Blocks {
		if b.Comment == "for.body" {
			if got := in[b.Index].Get("x"); got != MaybeReleased {
				t.Fatalf("loop body entry x = %v, want maybe-released (release feeds back)", got)
			}
		}
		if b.Comment == "for.done" {
			if got := in[b.Index].Get("x"); got != MaybeReleased {
				t.Fatalf("loop exit x = %v, want maybe-released (zero-trip path keeps it owned)", got)
			}
		}
	}
}

// Visit reports the state each node executes in, before its own transfer.
func TestVisitSeesPreState(t *testing.T) {
	c, _ := buildFrom(t, `
func f() {
	acquire(x)
	release(x)
	release(x)
}`)
	flow := &Flow{CFG: c, Transfer: transferForTest}
	in := flow.Fixpoint()
	var seen []Val
	flow.Visit(in, func(_ *Block, n ast.Node, st State) {
		seen = append(seen, st.Get("x"))
	})
	// Before acquire: bottom. Before first release: owned. Before second
	// release: released (the double-release a checker would flag).
	want := []Val{Bottom, Owned, Released}
	if len(seen) != len(want) {
		t.Fatalf("visited %d nodes, want %d", len(seen), len(want))
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("node %d pre-state = %v, want %v", i, seen[i], want[i])
		}
	}
}

// The defer chain participates in dataflow: a release inside a deferred
// call is applied on the exit path.
func TestFixpointDeferRelease(t *testing.T) {
	c, _ := buildFrom(t, `
func f() {
	acquire(x)
	defer release(x)
	work()
}`)
	// Transfer must unwrap the bare CallExpr defer-chain nodes too.
	transfer := func(blk *Block, n ast.Node, st State) {
		if ce, ok := n.(*ast.CallExpr); ok {
			transferForTest(blk, &ast.ExprStmt{X: ce}, st)
			return
		}
		transferForTest(blk, n, st)
	}
	flow := &Flow{CFG: c, Transfer: transfer}
	in := flow.Fixpoint()
	if got := in[c.Exit.Index].Get("x"); got != Released {
		t.Fatalf("exit x = %v, want released via defer chain", got)
	}
}
