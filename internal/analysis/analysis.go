// Package analysis is ratelvet's static-analysis framework: a small,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// surface the repo's analyzers need. It exists because this module builds
// offline with no third-party dependencies; the API mirrors x/tools closely
// enough that migrating the analyzers there later is mechanical.
//
// The pieces:
//
//   - Analyzer / Pass / Diagnostic: the x/tools-shaped analyzer contract.
//   - Load (load.go): a package loader driving `go list -json -export -deps`,
//     type-checking each package's source against toolchain export data —
//     the same resolution scheme `go vet` itself uses.
//   - Run (run.go): applies analyzers to loaded packages, honoring each
//     analyzer's package scope and `//ratelvet:ignore` suppressions.
//   - suppress.go: the suppression-comment contract (a reason is mandatory;
//     unexplained or unknown suppressions are themselves diagnostics).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one ratelvet check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //ratelvet:ignore comments. It must be a single lower-case word.
	Name string

	// Doc is a one-paragraph description ( `ratelvet help` prints it).
	Doc string

	// Scope restricts the analyzer to packages whose import path equals or
	// is under one of these prefixes. nil means every package.
	Scope []string

	// Exclude removes packages (same prefix semantics) from the scope even
	// when Scope matches. The unitsafe analyzer, for instance, excludes the
	// units package that defines the helpers it steers callers toward.
	Exclude []string

	// Aliases are retired analyzer names this analyzer answers for:
	// existing //ratelvet:ignore comments naming an alias keep suppressing
	// the successor's diagnostics (xferown aliases the retired bufreuse).
	Aliases []string

	// IncludeTests runs the analyzer on the test variant of each package
	// (_test.go files compiled into the package), not just the plain build.
	// atomicmix needs it: a plain write in a test races the same as one in
	// production code.
	IncludeTests bool

	// Run executes the analyzer on one package.
	Run func(*Pass) error
}

// Names returns the analyzer's name plus all aliases.
func (a *Analyzer) Names() []string {
	return append([]string{a.Name}, a.Aliases...)
}

// AppliesTo reports whether the analyzer's scope covers a package path.
func (a *Analyzer) AppliesTo(pkgPath string) bool {
	for _, e := range a.Exclude {
		if underPath(pkgPath, e) {
			return false
		}
	}
	if a.Scope == nil {
		return true
	}
	for _, s := range a.Scope {
		if underPath(pkgPath, s) {
			return true
		}
	}
	return false
}

func underPath(pkg, prefix string) bool {
	return pkg == prefix || strings.HasPrefix(pkg, prefix+"/")
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver installs it.
	Report func(Diagnostic)

	cfgs map[*ast.BlockStmt]*CFG
}

// FuncCFG returns the control-flow graph for a function body, building it
// on first request and memoizing per pass (several analyzers walk the same
// functions). body may be nil.
func (p *Pass) FuncCFG(body *ast.BlockStmt) *CFG {
	if c, ok := p.cfgs[body]; ok {
		return c
	}
	if p.cfgs == nil {
		p.cfgs = make(map[*ast.BlockStmt]*CFG)
	}
	c := BuildCFG(body)
	p.cfgs[body] = c
	return c
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled in by the driver
}
