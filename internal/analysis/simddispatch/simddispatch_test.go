package simddispatch_test

import (
	"testing"

	"ratel/internal/analysis/analysistest"
	"ratel/internal/analysis/simddispatch"
)

func TestSimddispatch(t *testing.T) {
	analysistest.Run(t, simddispatch.Analyzer, "simdd")
}

func TestScope(t *testing.T) {
	if simddispatch.Analyzer.AppliesTo("ratel/internal/tensor/simd") {
		t.Error("simddispatch must not flag the simd package that defines the reference kernels")
	}
	if !simddispatch.Analyzer.AppliesTo("ratel/internal/tensor") {
		t.Error("simddispatch should cover the rest of the module")
	}
}
