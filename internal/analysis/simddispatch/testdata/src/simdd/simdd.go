// Package simdd is simddispatch's golden testdata.
package simdd

import "ratel/internal/tensor/simd"

func dispatchedCallsAreFine(c, b []float32) float32 {
	simd.Axpy(c, b, 2)
	simd.Add(c, b)
	simd.Scale(c, 0.5)
	return simd.Dot(c, b)
}

func directGenericCall(c, b []float32) {
	simd.AxpyGeneric(c, b, 2) // want `direct call to simd.AxpyGeneric bypasses the kernel dispatch`
}

func directCodecCalls(dst []byte, src []float32) {
	simd.F16EncodeGeneric(dst, src) // want `direct call to simd.F16EncodeGeneric bypasses the kernel dispatch`
	simd.F16RoundGeneric(src)       // want `direct call to simd.F16RoundGeneric bypasses the kernel dispatch`
	_ = simd.DotGeneric(src, src)   // want `direct call to simd.DotGeneric bypasses the kernel dispatch`
}

func genericAsFunctionValue() func(d []float32, s float32) {
	return simd.ScaleGeneric // want `direct call to simd.ScaleGeneric bypasses the kernel dispatch`
}

func forceGenericIsTheSanctionedHook() {
	restore := simd.ForceGeneric()
	defer restore()
}

func scalarConversionsAreFine(f float32) float32 {
	return simd.HalfToFloat32(simd.Float32ToHalf(f))
}
