// Package simddispatch keeps kernel callers on the simd package's
// dispatched entry points. The *Generic functions exist as the portable
// reference implementations — the dispatch installs them when the CPU
// lacks the vector features, when RATEL_NOSIMD vetoes them, or under
// ForceGeneric — and calling one directly bypasses all three controls:
// the call site silently pins scalar speed on vector-capable machines and
// escapes the escape hatch everywhere else.
package simddispatch

import (
	"go/ast"
	"go/types"
	"strings"

	"ratel/internal/analysis"
)

// simdPath is the dispatch package whose reference implementations are
// off-limits outside it.
const simdPath = "ratel/internal/tensor/simd"

// Analyzer is the simddispatch check.
var Analyzer = &analysis.Analyzer{
	Name: "simddispatch",
	Doc: `forbid direct use of the simd package's *Generic reference kernels

Flags any reference (call or function value) to an exported *Generic
function of ratel/internal/tensor/simd from outside that package. The
Generic variants are the portable reference implementations the dispatch
falls back to; production code must call the dispatched wrappers (Axpy,
Dot, F16Encode, ...) so CPU-feature detection, the RATEL_NOSIMD veto, and
ForceGeneric stay authoritative. Tests that deliberately compare the two
paths pin the reference with simd.ForceGeneric() or live inside the simd
package itself.`,
	Exclude: []string{simdPath},
	Run:     run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok {
				return true
			}
			if analysis.FuncPkgPath(fn) != simdPath || !strings.HasSuffix(fn.Name(), "Generic") {
				return true
			}
			// ForceGeneric is the sanctioned pin-the-reference hook, not a
			// reference kernel.
			if fn.Name() == "ForceGeneric" {
				return true
			}
			dispatched := strings.TrimSuffix(fn.Name(), "Generic")
			pass.Reportf(id.Pos(),
				"direct call to simd.%s bypasses the kernel dispatch (feature detection, RATEL_NOSIMD, ForceGeneric); call simd.%s",
				fn.Name(), dispatched)
			return true
		})
	}
	return nil
}
