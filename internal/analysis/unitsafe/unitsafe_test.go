package unitsafe_test

import (
	"testing"

	"ratel/internal/analysis/analysistest"
	"ratel/internal/analysis/unitsafe"
)

func TestUnitsafe(t *testing.T) {
	analysistest.Run(t, unitsafe.Analyzer, "unitd")
}

func TestScope(t *testing.T) {
	if unitsafe.Analyzer.AppliesTo("ratel/internal/units") {
		t.Error("unitsafe must not flag the units package that defines the helpers")
	}
	if !unitsafe.Analyzer.AppliesTo("ratel/internal/nvme") {
		t.Error("unitsafe should cover the rest of the module")
	}
}
