// Package unitsafe keeps units.Bytes / bandwidth / duration arithmetic
// dimension-consistent. The planner's iteration-time model (Eqs. 1-5) and
// the NVMe throttles are all ratios of sized quantities; once a byte count
// is divided by a bandwidth "by hand", or scaled by a bare 1e9, the type
// system can no longer see the unit error that follows.
package unitsafe

import (
	"go/ast"
	"go/constant"
	"go/types"

	"ratel/internal/analysis"
)

const unitsPkg = "ratel/internal/units"

// Analyzer is the unitsafe check.
var Analyzer = &analysis.Analyzer{
	Name: "unitsafe",
	Doc: `flag unit arithmetic that bypasses the units helpers

Flags, everywhere except the units package itself:

  - float64(bytes) / float64(bandwidth): use units.TransferTime (or
    units.TransferDuration for a time.Duration)
  - float64(flops) / float64(throughput): use units.ComputeTime
  - a raw integer divided by a units bandwidth/throughput value: wrap the
    count in its units type and use the helper
  - multiplying or dividing a units-typed value by a bare magnitude
    constant (1e9, 1e12, 1<<20/30/40): use the accessor methods
    (GiBf, GBpsf, TFLOPf, Seconds.Duration, ...)
  - units.Bytes(len(s)) where s's elements are wider than one byte: an
    element count is not a byte count`,
	Exclude: []string{unitsPkg},
	Run:     run,
}

// ratioHelpers maps numerator/denominator unit types to the helper that
// divides them safely.
var ratioHelpers = []struct {
	num, den, helper string
}{
	{"Bytes", "BytesPerSecond", "units.TransferTime (or units.TransferDuration)"},
	{"FLOPs", "FLOPsPerSecond", "units.ComputeTime"},
}

// magnitudes are the bare constants that almost always mean a manual unit
// conversion. Smaller scalers (1e3, 1<<10) are too common as generic
// factors to flag.
var magnitudes = []int64{1e9, 1e12, 1 << 20, 1 << 30, 1 << 40}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkRatio(pass, n)
				checkMagnitude(pass, n)
			case *ast.CallExpr:
				checkElementCount(pass, n)
			}
			return true
		})
	}
	return nil
}

// unitsOperand resolves e to the units-package named type of the value it
// converts or denotes, looking through float64(x) conversions.
func unitsOperand(pass *analysis.Pass, e ast.Expr) (typeName string, viaConversion bool) {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 {
		if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
			if name := unitsTypeName(pass.TypesInfo.Types[call.Args[0]].Type); name != "" {
				return name, true
			}
			return "", false
		}
	}
	if tv, ok := pass.TypesInfo.Types[e]; ok {
		return unitsTypeName(tv.Type), false
	}
	return "", false
}

func unitsTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != unitsPkg {
		return ""
	}
	return obj.Name()
}

// checkRatio flags manual size/bandwidth and flops/throughput divisions.
func checkRatio(pass *analysis.Pass, be *ast.BinaryExpr) {
	if be.Op.String() != "/" {
		return
	}
	den, denConv := unitsOperand(pass, be.Y)
	if den == "" {
		return
	}
	num, _ := unitsOperand(pass, be.X)
	for _, r := range ratioHelpers {
		if den != r.den {
			continue
		}
		switch {
		case num == r.num:
			pass.Reportf(be.Pos(), "manual %s/%s division: use %s", r.num, r.den, r.helper)
		case num == "" && denConv && isIntegerish(pass, be.X):
			pass.Reportf(be.Pos(), "raw count divided by units.%s: wrap the count in units.%s and use %s", r.den, r.num, r.helper)
		}
	}
}

// isIntegerish reports whether e is (a float64 conversion of) an integer
// expression — a raw count about to be divided by a bandwidth.
func isIntegerish(pass *analysis.Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 {
		if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
			e = ast.Unparen(call.Args[0])
		}
	}
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// checkMagnitude flags scaling a units-typed value by a bare unit-magnitude
// constant in place of the named accessor.
func checkMagnitude(pass *analysis.Pass, be *ast.BinaryExpr) {
	op := be.Op.String()
	if op != "*" && op != "/" {
		return
	}
	var unitSide ast.Expr
	switch {
	case isMagnitude(pass, be.Y):
		unitSide = be.X
	case op == "*" && isMagnitude(pass, be.X):
		unitSide = be.Y
	default:
		return
	}
	if name := findUnitsConversion(pass, unitSide); name != "" {
		pass.Reportf(be.Pos(), "scaling units.%s by a bare magnitude constant: use the units accessor methods (GiBf, GBpsf, TFLOPf, TFLOPSf, Seconds.Duration, ...)", name)
	}
}

// isMagnitude reports whether e is a constant equal to one of the
// unit-conversion magnitudes (including typed constants such as
// time.Second after a float64 conversion).
func isMagnitude(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil {
		return false
	}
	val := constant.ToFloat(tv.Value)
	if val.Kind() != constant.Float {
		return false
	}
	f, _ := constant.Float64Val(val)
	for _, m := range magnitudes {
		if f == float64(m) {
			return true
		}
	}
	return false
}

// findUnitsConversion reports the units type converted to a plain float
// anywhere inside e (e.g. the FLOPs buried in 3*float64(flops)/iter).
func findUnitsConversion(pass *analysis.Pass, e ast.Expr) string {
	var found string
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 || found != "" {
			return found == ""
		}
		if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
			if name := unitsTypeName(pass.TypesInfo.Types[call.Args[0]].Type); name != "" {
				found = name
			}
		}
		return found == ""
	})
	return found
}

// checkElementCount flags units.Bytes(len(s)) where s's elements are wider
// than one byte.
func checkElementCount(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() || unitsTypeName(tv.Type) != "Bytes" {
		return
	}
	inner, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr)
	if !ok || len(inner.Args) != 1 {
		return
	}
	id, ok := ast.Unparen(inner.Fun).(*ast.Ident)
	if !ok || id.Name != "len" {
		return
	}
	if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
		return
	}
	argT := pass.TypesInfo.Types[inner.Args[0]].Type
	if argT == nil {
		return
	}
	var elem types.Type
	switch t := argT.Underlying().(type) {
	case *types.Slice:
		elem = t.Elem()
	case *types.Array:
		elem = t.Elem()
	default:
		return // strings and other len()s are byte counts already
	}
	sizes := types.SizesFor("gc", "amd64")
	if b, ok := elem.Underlying().(*types.Basic); ok && b.Kind() == types.Byte {
		return
	}
	pass.Reportf(call.Pos(), "units.Bytes(len(...)) of a []%s counts elements, not bytes: multiply by the element size (%d)", elem.String(), sizes.Sizeof(elem))
}
