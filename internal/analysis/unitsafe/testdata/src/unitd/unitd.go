// Package unitd is unitsafe's golden testdata.
package unitd

import (
	"time"

	"ratel/internal/units"
)

func manualTransfer(b units.Bytes, bw units.BytesPerSecond) float64 {
	return float64(b) / float64(bw) // want `manual Bytes/BytesPerSecond division`
}

func manualCompute(f units.FLOPs, thp units.FLOPsPerSecond) float64 {
	return float64(f) / float64(thp) // want `manual FLOPs/FLOPsPerSecond division`
}

func helperIsFine(b units.Bytes, bw units.BytesPerSecond) units.Seconds {
	return units.TransferTime(b, bw)
}

func rawCountOverBandwidth(n int, bw units.BytesPerSecond) float64 {
	return float64(n) / float64(bw) // want `raw count divided by units.BytesPerSecond`
}

func floatRatioIsFine(a, b float64) float64 {
	return a / b // no units involved
}

func magnitudeScale(s units.Seconds) time.Duration {
	return time.Duration(float64(s) * float64(time.Second)) // want `scaling units.Seconds by a bare magnitude constant`
}

func magnitudeDivide(f units.FLOPs, iter float64) float64 {
	return 3 * float64(f) / iter / 1e12 // want `scaling units.FLOPs by a bare magnitude constant`
}

func accessorIsFine(b units.Bytes) float64 {
	return b.GiBf()
}

func smallScalerIsFine(b units.Bytes) float64 {
	return float64(b) * 2 // plain doubling, not a unit conversion
}

func elementCount(xs []float32) units.Bytes {
	return units.Bytes(len(xs)) // want `counts elements, not bytes`
}

func byteCountIsFine(blob []byte) units.Bytes {
	return units.Bytes(len(blob))
}

func sizedElementCountIsFine(xs []float32) units.Bytes {
	return units.Bytes(4 * len(xs))
}
