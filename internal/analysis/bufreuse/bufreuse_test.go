package bufreuse_test

import (
	"testing"

	"ratel/internal/analysis/analysistest"
	"ratel/internal/analysis/bufreuse"
)

func TestBufreuse(t *testing.T) {
	analysistest.Run(t, bufreuse.Analyzer, "bufd")
}

func TestScope(t *testing.T) {
	for _, pkg := range []string{"ratel/internal/engine", "ratel/internal/nvme"} {
		if !bufreuse.Analyzer.AppliesTo(pkg) {
			t.Errorf("bufreuse should cover %s", pkg)
		}
	}
	for _, pkg := range []string{"ratel/internal/tensor", "ratel/internal/obs"} {
		if bufreuse.Analyzer.AppliesTo(pkg) {
			t.Errorf("bufreuse should not cover %s", pkg)
		}
	}
}
