// Package bufreuse guards the buffer-ownership protocol of the offload
// data path: a buffer handed to (*nvme.BufPool).Put or transferred with
// (*nvme.Array).PutFrom is released — the pool may immediately hand the
// same backing array to another caller, so any later read, write, or
// re-release through the old variable is a use-after-free in all but name.
// The scope is the code that actually borrows pooled buffers (engine and
// nvme); elsewhere the pool types do not appear.
package bufreuse

import (
	"go/ast"
	"go/token"
	"go/types"

	"ratel/internal/analysis"
)

const nvmePkg = "ratel/internal/nvme"

// Analyzer is the bufreuse check.
var Analyzer = &analysis.Analyzer{
	Name: "bufreuse",
	Doc: `pooled buffers must not be used after release

Flags uses of a buffer variable after it was passed to (*BufPool).Put or
(*Array).PutFrom (both release ownership to the pool). Reassigning the
variable (e.g. from a fresh Get) clears the taint. The analysis is
positional within one function: releases inside loops whose uses precede
them textually, and buffers released through fields or escaping the
function, are out of scope — the ownership comment on BufPool covers
those by contract.`,
	Scope: []string{"ratel/internal/engine", "ratel/internal/nvme"},
	Run:   run,
}

// release is one ownership-transfer call site: v is dead between the call
// and limit — the end of the region control can still reach after the
// release (a release followed by a return taints only its own block, the
// idiom of error-path cleanup).
type release struct {
	v     *types.Var
	via   string
	call  *ast.CallExpr
	limit token.Pos
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkBody(pass, n.Body)
				}
				return false // checkBody descends into nested literals itself
			case *ast.FuncLit:
				// Only reached for literals outside any FuncDecl (package-level
				// var initializers); nested ones are covered above.
				checkBody(pass, n.Body)
				return false
			}
			return true
		})
	}
	return nil
}

// checkBody runs the positional use-after-release scan over one function
// body, nested closures included: a closure that touches a released buffer
// runs no earlier than its creation point, so linear position order is a
// sound approximation in the release-then-capture direction.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	var releases []release
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if r, ok := releaseCall(pass.TypesInfo, call); ok {
			r.limit = taintLimit(body, call)
			releases = append(releases, r)
		}
		return true
	})
	if len(releases) == 0 {
		return
	}

	// Stores to a released variable through a bare-identifier LHS re-point it
	// (typically at a fresh Get) and clear the taint; the LHS identifier
	// itself is a store target, not a use of the released buffer.
	type store struct {
		v   *types.Var
		end ast.Node
	}
	var stores []store
	lhsTargets := make(map[*ast.Ident]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			lhsTargets[id] = true
			if v := analysis.UsedVar(pass.TypesInfo, id); v != nil {
				stores = append(stores, store{v: v, end: as})
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || lhsTargets[id] {
			return true
		}
		v, _ := pass.TypesInfo.Uses[id].(*types.Var)
		if v == nil {
			return true
		}
		for _, r := range releases {
			if r.v != v || id.Pos() <= r.call.End() || id.Pos() > r.limit {
				continue
			}
			cleared := false
			for _, s := range stores {
				if s.v == v && s.end.End() > r.call.End() && s.end.End() <= id.Pos() {
					cleared = true
					break
				}
			}
			if !cleared {
				pass.Reportf(id.Pos(), "pooled buffer %q used after %s released it: ownership transferred to the pool, the bytes may already back another caller's data", id.Name, r.via)
				break
			}
		}
		return true
	})
}

// releaseCall recognizes the two ownership-transfer entry points and
// resolves the released argument to a bare variable.
func releaseCall(info *types.Info, call *ast.CallExpr) (release, bool) {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil || analysis.FuncPkgPath(fn) != nvmePkg {
		return release{}, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return release{}, false
	}
	var argIdx int
	var via string
	switch {
	case fn.Name() == "Put" && analysis.NamedType(sig.Recv().Type(), nvmePkg, "BufPool"):
		argIdx, via = 0, "BufPool.Put"
	case fn.Name() == "PutFrom" && analysis.NamedType(sig.Recv().Type(), nvmePkg, "Array"):
		argIdx, via = 1, "Array.PutFrom"
	default:
		return release{}, false
	}
	if len(call.Args) <= argIdx {
		return release{}, false
	}
	v := analysis.UsedVar(info, call.Args[argIdx])
	if v == nil {
		return release{}, false
	}
	return release{v: v, via: via, call: call}, true
}

// taintLimit bounds how far past the release control can still flow: when
// the release's enclosing block goes on to return or panic, execution
// never re-enters the surrounding code, so only that block is tainted —
// the error-path cleanup idiom (Put then return err). Blocks that fall
// through escalate to their parent, up to the whole function body.
func taintLimit(body *ast.BlockStmt, call *ast.CallExpr) token.Pos {
	for _, b := range enclosingBlocks(body, call) {
		if terminatesAfter(b, call.End()) {
			return b.End()
		}
	}
	return body.End()
}

// enclosingBlocks lists the blocks containing the call, innermost first.
func enclosingBlocks(body *ast.BlockStmt, call *ast.CallExpr) []*ast.BlockStmt {
	var chain []*ast.BlockStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil || n.Pos() > call.Pos() || n.End() < call.End() {
			return false
		}
		if b, ok := n.(*ast.BlockStmt); ok {
			chain = append([]*ast.BlockStmt{b}, chain...)
		}
		return true
	})
	return chain
}

// terminatesAfter reports whether the block, from pos onward, contains a
// top-level statement that leaves the function (return or panic). Branch
// statements do not count: break/continue re-enter the surrounding code.
func terminatesAfter(b *ast.BlockStmt, pos token.Pos) bool {
	for _, st := range b.List {
		if st.Pos() < pos {
			continue
		}
		switch st := st.(type) {
		case *ast.ReturnStmt:
			return true
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
					return true
				}
			}
		}
	}
	return false
}
