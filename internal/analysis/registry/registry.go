// Package registry enumerates every ratelvet analyzer in one place so the
// command, the tests, and future tooling agree on the active set.
package registry

import (
	"ratel/internal/analysis"
	"ratel/internal/analysis/bufreuse"
	"ratel/internal/analysis/errdrop"
	"ratel/internal/analysis/metrichygiene"
	"ratel/internal/analysis/poolcapture"
	"ratel/internal/analysis/simddispatch"
	"ratel/internal/analysis/simdet"
	"ratel/internal/analysis/spanpair"
	"ratel/internal/analysis/unitsafe"
)

// All returns the full analyzer set in stable (alphabetical) order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		bufreuse.Analyzer,
		errdrop.Analyzer,
		metrichygiene.Analyzer,
		poolcapture.Analyzer,
		simddispatch.Analyzer,
		simdet.Analyzer,
		spanpair.Analyzer,
		unitsafe.Analyzer,
	}
}
