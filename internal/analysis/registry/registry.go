// Package registry enumerates every ratelvet analyzer in one place so the
// command, the tests, and future tooling agree on the active set.
package registry

import (
	"ratel/internal/analysis"
	"ratel/internal/analysis/atomicmix"
	"ratel/internal/analysis/errdrop"
	"ratel/internal/analysis/gojoin"
	"ratel/internal/analysis/metrichygiene"
	"ratel/internal/analysis/poolcapture"
	"ratel/internal/analysis/simddispatch"
	"ratel/internal/analysis/simdet"
	"ratel/internal/analysis/slotlife"
	"ratel/internal/analysis/spanpair"
	"ratel/internal/analysis/unitsafe"
	"ratel/internal/analysis/xferown"
)

// All returns the full analyzer set in stable (alphabetical) order.
// bufreuse is retired: xferown supersedes it (and answers for its name in
// //ratelvet:ignore comments via the alias mechanism).
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicmix.Analyzer,
		errdrop.Analyzer,
		gojoin.Analyzer,
		metrichygiene.Analyzer,
		poolcapture.Analyzer,
		simddispatch.Analyzer,
		simdet.Analyzer,
		slotlife.Analyzer,
		spanpair.Analyzer,
		unitsafe.Analyzer,
		xferown.Analyzer,
	}
}
