package simdet_test

import (
	"testing"

	"ratel/internal/analysis/analysistest"
	"ratel/internal/analysis/simdet"
)

func TestSimdet(t *testing.T) {
	analysistest.Run(t, simdet.Analyzer, "simd")
}

func TestScope(t *testing.T) {
	a := simdet.Analyzer
	for _, pkg := range []string{
		"ratel/internal/sim", "ratel/internal/itersim", "ratel/internal/plan",
		"ratel/internal/cost", "ratel/internal/strategy",
	} {
		if !a.AppliesTo(pkg) {
			t.Errorf("simdet should cover %s", pkg)
		}
	}
	for _, pkg := range []string{"ratel/internal/engine", "ratel/internal/nvme", "ratel/internal/simx"} {
		if a.AppliesTo(pkg) {
			t.Errorf("simdet should not cover %s", pkg)
		}
	}
}
