// Package simd is simdet's golden testdata: positive findings carry want
// comments; the rest must stay silent.
package simd

import (
	"container/heap"
	"math/rand"
	"sort"
	"time"
)

type resource string

type intHeap []int

func (h intHeap) Len() int           { return len(h) }
func (h intHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h intHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *intHeap) Push(x any)        { *h = append(*h, x.(int)) }
func (h *intHeap) Pop() any {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

func wallClock() time.Duration {
	start := time.Now()          // want `time.Now in simulator code`
	time.Sleep(time.Millisecond) // want `time.Sleep in simulator code`
	return time.Since(start)     // want `time.Since in simulator code`
}

func durationMathIsFine(d time.Duration) float64 {
	return d.Seconds() // methods and duration arithmetic are allowed
}

func globalRand() int {
	return rand.Intn(10) // want `global rand.Intn in simulator code`
}

func seededRandIsFine(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func spawn(done chan struct{}) {
	go func() { close(done) }() // want `goroutine spawn in simulator code`
}

func mapOrderAppend(m map[string]int) []int {
	var out []int
	for _, v := range m { // want `append to 'out' without a subsequent sort`
		out = append(out, v)
	}
	return out
}

func collectThenSortIsFine(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func mapOrderAssign(m map[string]int) string {
	var last string
	for k := range m {
		if k > last {
			last = k // want `assignment to outer variable 'last'`
		}
	}
	return last
}

func mapOrderFloatSum(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want `floating-point accumulation into 'total'`
	}
	return total
}

func intCountIsFine(m map[string]int) int {
	var n int
	for range m {
		n++ // integer inc is commutative: allowed
	}
	return n
}

func mapOrderHeapPush(m map[resource]int, h *intHeap) {
	for _, v := range m {
		heap.Push(h, v) // want `heap.Push`
	}
}

func mapIndexWritesAreFine(m map[string]float64, total float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = v / total
	}
	return out
}

func sliceRangeIsFine(xs []float64) float64 {
	var total float64
	for _, v := range xs {
		total += v
	}
	return total
}
