// Package simdet enforces determinism in the simulator/planner packages:
// the discrete-event simulator regenerates every figure in the paper, and
// its schedules must replay bit-identically run after run. Wall-clock
// reads, the global math/rand source, goroutine spawns, and order-sensitive
// iteration over unordered maps all break that guarantee silently.
package simdet

import (
	"go/ast"
	"go/token"
	"go/types"

	"ratel/internal/analysis"
)

// Analyzer is the simdet check.
var Analyzer = &analysis.Analyzer{
	Name: "simdet",
	Doc: `forbid nondeterminism in simulator code

Flags, inside the simulator and planner packages (internal/sim, itersim,
plan, cost, strategy):

  - wall-clock reads (time.Now, Since, Sleep, After, Tick, ...)
  - the global math/rand source (rand.Intn, rand.Float64, ...); a seeded
    *rand.Rand is fine
  - goroutine spawns (schedules must not depend on runtime interleaving)
  - range over an unordered map when the loop body is order-sensitive:
    it appends to a slice, assigns a variable declared outside the loop,
    accumulates floating point (float addition is not associative), or
    pushes into a container/heap

The collect-keys-then-sort idiom is recognized: a map range that only
appends keys into a slice which is subsequently passed to a sort call in
the same block is allowed.`,
	Scope: []string{
		"ratel/internal/sim",
		"ratel/internal/itersim",
		"ratel/internal/plan",
		"ratel/internal/cost",
		"ratel/internal/strategy",
	},
	Run: run,
}

// wallClockFuncs are the time package functions that read or depend on the
// wall clock. Duration arithmetic and formatting stay allowed.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

// seededConstructors are the math/rand functions that build explicitly
// seeded generators rather than touching the global source.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "goroutine spawn in simulator code: schedule results must not depend on runtime interleaving")
			case *ast.RangeStmt:
				checkMapRange(pass, f, n)
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	switch analysis.FuncPkgPath(fn) {
	case "time":
		if wallClockFuncs[fn.Name()] && fn.Type().(*types.Signature).Recv() == nil {
			pass.Reportf(call.Pos(), "time.%s in simulator code: simulated time must come from the event clock, not the wall clock", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if fn.Type().(*types.Signature).Recv() == nil && !seededConstructors[fn.Name()] {
			pass.Reportf(call.Pos(), "global rand.%s in simulator code: use an explicitly seeded *rand.Rand so runs replay", fn.Name())
		}
	}
}

// checkMapRange flags order-sensitive bodies of ranges over unordered maps.
func checkMapRange(pass *analysis.Pass, file *ast.File, rs *ast.RangeStmt) {
	t := pass.TypesInfo.Types[rs.X].Type
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}

	var appendTargets []*types.Var
	report := func(pos token.Pos, what string) {
		pass.Reportf(pos, "range over unordered map: %s makes the result iteration-order dependent; iterate sorted keys", what)
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				v := analysis.UsedVar(pass.TypesInfo, id)
				if v == nil || v.Pos() >= rs.Pos() { // declared by/inside the loop
					continue
				}
				switch n.Tok {
				case token.ASSIGN:
					// x = append(x, ...) is the collect idiom, resolved below.
					if i < len(n.Rhs) && isAppendOf(pass.TypesInfo, n.Rhs[i], v) {
						appendTargets = append(appendTargets, v)
						continue
					}
					report(n.Pos(), "assignment to outer variable "+quote(id.Name))
				case token.DEFINE:
					// := with an outer var cannot happen; skip.
				default: // compound: order matters only for non-associative kinds
					if isFloat(v.Type()) {
						report(n.Pos(), "floating-point accumulation into "+quote(id.Name)+" (float addition is not associative)")
					}
				}
			}
		case *ast.IncDecStmt:
			// integer ++/-- is commutative; allowed.
		case *ast.CallExpr:
			if analysis.IsPkgCall(pass.TypesInfo, n, "container/heap", "Push") {
				report(n.Pos(), "heap.Push (heap contents become iteration-order dependent)")
			}
		}
		return true
	})

	for _, v := range appendTargets {
		if !sortedAfter(pass.TypesInfo, file, rs, v) {
			report(rs.Pos(), "append to "+quote(v.Name())+" without a subsequent sort")
		}
	}
}

func quote(s string) string { return "'" + s + "'" }

func isAppendOf(info *types.Info, e ast.Expr, v *types.Var) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return false
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	return analysis.UsedVar(info, call.Args[0]) == v
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// sortedAfter reports whether, lexically after the range statement, the
// collected slice v is handed to a sort call — the sanctioned
// collect-keys-then-sort idiom.
func sortedAfter(info *types.Info, file *ast.File, rs *ast.RangeStmt, v *types.Var) bool {
	sorted := false
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || sorted {
			return !sorted
		}
		if analysis.IsPkgCall(info, call, "sort") || analysis.IsPkgCall(info, call, "slices") {
			for _, a := range call.Args {
				if analysis.UsedVar(info, a) == v {
					sorted = true
				}
			}
		}
		return !sorted
	})
	return sorted
}
