package analysis

// Forward dataflow over a CFG (DESIGN.md §13). The lattice is a small
// abstract-ownership domain shared by the protocol analyzers:
//
//	        Escaped            (top: crossed a goroutine/closure boundary)
//	           |
//	      MaybeReleased        (released on some path, live on another)
//	       /        \
//	   Owned      Released
//	       \        /
//	       Borrowed            (usable, but this frame must not release)
//	           |
//	        Bottom             (untracked / unreachable)
//
// Join is the least upper bound along that diagram with one asymmetry:
// Owned ⊔ Borrowed = Owned, because a value that is owned on any path must
// be released on every path — treating it as borrowed would hide a leak.
// Analyzers give their own meaning to the points (slotlife reads Owned as
// "token held", xferown as "buffer usable"); the runner only joins.

import "go/ast"

// Val is one point of the ownership lattice.
type Val uint8

const (
	// Bottom: not tracked on this path (or path unreachable).
	Bottom Val = iota
	// Borrowed: usable, but ownership belongs to another frame — this
	// function must not release it.
	Borrowed
	// Owned: this frame holds the value and is responsible for exactly one
	// release.
	Owned
	// Released: ownership was given up; any further use is a bug.
	Released
	// MaybeReleased: released on at least one incoming path and still live
	// on another — uses are flagged, re-releases are double-releases.
	MaybeReleased
	// Escaped: the value crossed into a goroutine or stored location this
	// analysis cannot see; all bets are off (top).
	Escaped
)

func (v Val) String() string {
	switch v {
	case Bottom:
		return "bottom"
	case Borrowed:
		return "borrowed"
	case Owned:
		return "owned"
	case Released:
		return "released"
	case MaybeReleased:
		return "maybe-released"
	case Escaped:
		return "escaped"
	}
	return "val?"
}

// JoinVal is the least upper bound of two lattice points.
func JoinVal(a, b Val) Val {
	if a == b {
		return a
	}
	if a == Bottom {
		return b
	}
	if b == Bottom {
		return a
	}
	if a == Escaped || b == Escaped {
		return Escaped
	}
	// Order the pair so a <= b numerically; the remaining distinct pairs
	// over {Borrowed, Owned, Released, MaybeReleased} are few.
	if a > b {
		a, b = b, a
	}
	switch {
	case a == Borrowed && b == Owned:
		return Owned // owned-on-any-path must be released on every path
	case a == Borrowed && b == Released:
		return MaybeReleased
	case a == Borrowed && b == MaybeReleased:
		return MaybeReleased
	case a == Owned && b == Released:
		return MaybeReleased
	case a == Owned && b == MaybeReleased:
		return MaybeReleased
	case a == Released && b == MaybeReleased:
		return MaybeReleased
	}
	return Escaped // unreachable
}

// State maps tracked keys (typically *types.Var) to lattice points. Keys
// absent from the map are Bottom.
type State map[any]Val

// Get returns the point for key, Bottom if untracked.
func (s State) Get(key any) Val {
	return s[key]
}

// Set records a point; setting Bottom removes the key.
func (s State) Set(key any, v Val) {
	if v == Bottom {
		delete(s, key)
		return
	}
	s[key] = v
}

func (s State) clone() State {
	out := make(State, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// joinInto merges other into s, returning true if s changed.
func (s State) joinInto(other State) bool {
	changed := false
	for k, v := range other {
		nv := JoinVal(s[k], v)
		if nv != s[k] {
			s[k] = nv
			changed = true
		}
	}
	return changed
}

// Flow runs a forward dataflow problem to fixpoint over a CFG.
type Flow struct {
	CFG *CFG
	// Transfer applies one node's effect to st in place. It must be
	// monotone for the fixpoint to terminate (the iteration cap backstops
	// a non-monotone transfer, trading precision for termination).
	Transfer func(blk *Block, n ast.Node, st State)
}

// maxFixpointSweeps bounds full-graph sweeps. The lattice has height 4 per
// key, so honest transfers converge in a handful of sweeps; this is a
// backstop against a buggy analyzer, not a tuning knob.
const maxFixpointSweeps = 64

// Fixpoint computes per-block entry states. in[b.Index] is the join of all
// predecessor exit states; Entry starts empty (analyzers seed initial
// ownership in their Transfer on defining nodes).
func (f *Flow) Fixpoint() []State {
	n := len(f.CFG.Blocks)
	in := make([]State, n)
	for i := range in {
		in[i] = State{}
	}
	work := []*Block{f.CFG.Entry}
	queued := make([]bool, n)
	queued[f.CFG.Entry.Index] = true
	sweeps := 0
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk.Index] = false
		if sweeps++; sweeps > maxFixpointSweeps*n {
			break
		}
		out := in[blk.Index].clone()
		for _, node := range blk.Nodes {
			f.Transfer(blk, node, out)
		}
		for _, s := range blk.Succs {
			if in[s.Index].joinInto(out) && !queued[s.Index] {
				work = append(work, s)
				queued[s.Index] = true
			}
		}
	}
	return in
}

// Visit replays every block once from its fixpoint entry state, calling
// report before applying each node's transfer — so report sees the state
// the node executes in. Blocks never reached keep empty states; analyzers
// that care can skip blocks with no predecessors.
func (f *Flow) Visit(in []State, report func(blk *Block, n ast.Node, st State)) {
	for _, blk := range f.CFG.Blocks {
		st := in[blk.Index].clone()
		for _, node := range blk.Nodes {
			report(blk, node, st)
			f.Transfer(blk, node, st)
		}
	}
}
