// Package xferown guards the buffer-ownership protocol of the offload data
// path with the CFG/dataflow substrate (DESIGN.md §13): a buffer handed to
// (*nvme.BufPool).Put or (*nvme.Array).PutFrom — or queued to a writer
// goroutine over a channel — is ownership-transferred, and any later read,
// write, or re-release through the old variable on any path is a
// use-after-transfer. It supersedes the retired straight-line bufreuse
// analyzer (kept as an alias so existing suppressions stay valid) and sees
// what that one could not: releases that only happen on one branch, loop
// back edges carrying a released buffer into the next iteration, and
// deferred releases that are in fact safe.
package xferown

import (
	"go/ast"
	"go/types"

	"ratel/internal/analysis"
)

const nvmePkg = "ratel/internal/nvme"

// Analyzer is the xferown check.
var Analyzer = &analysis.Analyzer{
	Name:    "xferown",
	Aliases: []string{"bufreuse"},
	Doc: `pooled buffers must not be used after ownership transfers

Tracks each buffer variable through the function's control-flow graph with
an owned/released lattice. (*BufPool).Put and (*Array).PutFrom release
ownership to the pool; sending the buffer (or a struct carrying it) on a
channel transfers it to the consuming goroutine. Any use after a transfer
— on every path or just one — is flagged, including uses a straight-line
scan cannot see (loop back edges, branch merges). Reassigning the variable
(e.g. from a fresh Get) clears the taint; a buffer captured live by a
closure escapes and is no longer tracked. Exactness: keys are bare local
variables; buffers released through fields, slices of buffers, or aliased
pointers are out of scope — the ownership comment on BufPool covers those
by contract. Implicit runtime panics are not modeled.`,
	Scope: []string{"ratel/internal/engine", "ratel/internal/nvme"},
	Run:   run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			// Each function body — declared or literal — is analyzed as its
			// own frame; closures appear opaque to the enclosing frame.
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkFunc(pass, n.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

// tracker is the per-function dataflow client.
type tracker struct {
	pass *analysis.Pass
	// via records, per variable, how ownership left: "BufPool.Put",
	// "Array.PutFrom", or "" for a channel send.
	via map[*types.Var]string
	// reported dedupes findings per ident (Visit replays blocks once, but a
	// capture check may revisit an ident the closure's own frame also saw).
	reported map[*ast.Ident]bool
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	// Fast pre-filter: no transfer points, nothing to track.
	if !mentionsTransfer(pass.TypesInfo, body) {
		return
	}
	tr := &tracker{
		pass:     pass,
		via:      make(map[*types.Var]string),
		reported: make(map[*ast.Ident]bool),
	}
	cfg := pass.FuncCFG(body)
	flow := &analysis.Flow{CFG: cfg, Transfer: tr.transfer}
	in := flow.Fixpoint()
	flow.Visit(in, tr.report)
}

// mentionsTransfer reports whether the body contains any release or send.
func mentionsTransfer(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.CallExpr:
			if _, _, ok := releaseCall(info, n); ok {
				found = true
			}
		}
		return !found
	})
	return found
}

// transfer applies one CFG node's ownership effects. Order inside a node:
// releases and sends first, then assignment gen/kill (a reassignment wins
// over a release in the same statement), then closure escapes.
func (tr *tracker) transfer(_ *analysis.Block, n ast.Node, st analysis.State) {
	info := tr.pass.TypesInfo
	analysis.InspectShallow(n, func(m ast.Node) {
		switch m := m.(type) {
		case *ast.CallExpr:
			if v, via, ok := releaseCall(info, m); ok {
				st.Set(v, analysis.Released)
				tr.via[v] = via
			}
		case *ast.SendStmt:
			for _, v := range sentVars(info, m.Value) {
				if owns(st.Get(v)) {
					st.Set(v, analysis.Released)
					tr.via[v] = ""
				}
			}
		}
	})
	analysis.InspectShallow(n, func(m ast.Node) {
		switch m := m.(type) {
		case *ast.AssignStmt:
			tr.assign(m.Lhs, m.Rhs, st)
		case *ast.DeclStmt:
			if gd, ok := m.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						lhs := make([]ast.Expr, len(vs.Names))
						for i, id := range vs.Names {
							lhs[i] = id
						}
						tr.assign(lhs, vs.Values, st)
					}
				}
			}
		case *ast.RangeStmt:
			var lhs []ast.Expr
			if m.Key != nil {
				lhs = append(lhs, m.Key)
			}
			if m.Value != nil {
				lhs = append(lhs, m.Value)
			}
			tr.assign(lhs, nil, st)
		}
	})
	analysis.InspectShallow(n, func(m ast.Node) {
		switch m := m.(type) {
		case *ast.FuncLit:
			// A live buffer captured by a closure escapes this frame's
			// tracking; a released one stays released (the capture itself is
			// flagged by report).
			for _, v := range capturedVars(info, m) {
				if owns(st.Get(v)) || st.Get(v) == analysis.Borrowed {
					st.Set(v, analysis.Escaped)
				}
			}
		case *ast.GoStmt:
			// A buffer handed to a spawned goroutine as a call argument
			// crosses frames; stop tracking it here.
			for _, arg := range m.Call.Args {
				if v := analysis.UsedVar(info, arg); v != nil && owns(st.Get(v)) {
					st.Set(v, analysis.Escaped)
				}
			}
		}
	})
}

func owns(v analysis.Val) bool {
	return v == analysis.Owned || v == analysis.MaybeReleased
}

// assign applies gen/kill for one assignment: a bare-identifier LHS fed by
// a BufPool.Get becomes Owned, any other bare-identifier store kills the
// taint (the variable points at something new).
func (tr *tracker) assign(lhs, rhs []ast.Expr, st analysis.State) {
	for i, l := range lhs {
		id, ok := ast.Unparen(l).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		v := analysis.UsedVar(tr.pass.TypesInfo, id)
		if v == nil {
			continue
		}
		fresh := false
		if len(rhs) == len(lhs) {
			fresh = isGetCall(tr.pass.TypesInfo, rhs[i])
		} else if len(rhs) == 1 {
			fresh = isGetCall(tr.pass.TypesInfo, rhs[0])
		}
		if fresh {
			st.Set(v, analysis.Owned)
		} else {
			st.Set(v, analysis.Bottom)
		}
	}
}

// report flags uses of released buffers, replaying each node in the state
// it executes in (before its own transfer, so a first release is clean and
// a second one is a double-release).
func (tr *tracker) report(_ *analysis.Block, n ast.Node, st analysis.State) {
	var visit func(m ast.Node) bool
	visit = func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			// The closure runs no earlier than its creation: capturing a
			// buffer that is already released here is a use-after-transfer
			// wherever the closure later runs.
			ast.Inspect(m.Body, func(k ast.Node) bool {
				if id, ok := k.(*ast.Ident); ok {
					tr.checkUse(id, st)
				}
				return true
			})
			return false
		case *ast.AssignStmt:
			for _, r := range m.Rhs {
				ast.Inspect(r, visit)
			}
			for _, l := range m.Lhs {
				// A bare-identifier LHS is a store target, not a use; an
				// indexed or field LHS reads the released base.
				if _, bare := ast.Unparen(l).(*ast.Ident); !bare {
					ast.Inspect(l, visit)
				}
			}
			return false
		case *ast.RangeStmt:
			ast.Inspect(m.X, visit)
			return false
		case *ast.Ident:
			tr.checkUse(m, st)
		}
		return true
	}
	ast.Inspect(n, visit)
}

func (tr *tracker) checkUse(id *ast.Ident, st analysis.State) {
	v, _ := tr.pass.TypesInfo.Uses[id].(*types.Var)
	if v == nil || tr.reported[id] {
		return
	}
	val := st.Get(v)
	if val != analysis.Released && val != analysis.MaybeReleased {
		return
	}
	tr.reported[id] = true
	via := tr.via[v]
	switch {
	case via == "":
		tr.pass.Reportf(id.Pos(), "pooled buffer %q used after it was queued to a writer goroutine: ownership transferred with the send, the consumer may already be recycling the bytes", id.Name)
	case val == analysis.MaybeReleased:
		tr.pass.Reportf(id.Pos(), "pooled buffer %q may be used after %s released it on a preceding path: every path must either release or keep ownership", id.Name, via)
	default:
		tr.pass.Reportf(id.Pos(), "pooled buffer %q used after %s released it: ownership transferred to the pool, the bytes may already back another caller's data", id.Name, via)
	}
}

// releaseCall recognizes the two pool ownership-transfer entry points and
// resolves the released argument to a bare variable.
func releaseCall(info *types.Info, call *ast.CallExpr) (*types.Var, string, bool) {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil || analysis.FuncPkgPath(fn) != nvmePkg {
		return nil, "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, "", false
	}
	var argIdx int
	var via string
	switch {
	case fn.Name() == "Put" && analysis.NamedType(sig.Recv().Type(), nvmePkg, "BufPool"):
		argIdx, via = 0, "BufPool.Put"
	case fn.Name() == "PutFrom" && analysis.NamedType(sig.Recv().Type(), nvmePkg, "Array"):
		argIdx, via = 1, "Array.PutFrom"
	case fn.Name() == "PutFromClass" && analysis.NamedType(sig.Recv().Type(), nvmePkg, "Array"):
		// The class-tagged variant the transfer scheduler adds: same
		// borrowed-buffer hand-off, the class only routes the queue.
		argIdx, via = 1, "Array.PutFromClass"
	default:
		return nil, "", false
	}
	if len(call.Args) <= argIdx {
		return nil, "", false
	}
	v := analysis.UsedVar(info, call.Args[argIdx])
	if v == nil {
		return nil, "", false
	}
	return v, via, true
}

// isGetCall reports whether e is a (*BufPool).Get call — the ownership
// source that makes a variable tracked.
func isGetCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := analysis.CalleeFunc(info, call)
	if fn == nil || analysis.FuncPkgPath(fn) != nvmePkg || fn.Name() != "Get" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && analysis.NamedType(sig.Recv().Type(), nvmePkg, "BufPool")
}

// sentVars lists the bare variables a channel send hands over: the value
// itself, or the top-level elements of a composite literal (the writer-job
// struct idiom).
func sentVars(info *types.Info, e ast.Expr) []*types.Var {
	var out []*types.Var
	add := func(x ast.Expr) {
		if v := analysis.UsedVar(info, x); v != nil {
			out = append(out, v)
		}
	}
	e = ast.Unparen(e)
	if cl, ok := e.(*ast.CompositeLit); ok {
		for _, el := range cl.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				add(kv.Value)
			} else {
				add(el)
			}
		}
		return out
	}
	add(e)
	return out
}

// capturedVars lists every variable a function literal references.
func capturedVars(info *types.Info, lit *ast.FuncLit) []*types.Var {
	var out []*types.Var
	seen := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok && !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
		return true
	})
	return out
}
