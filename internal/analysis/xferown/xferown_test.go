package xferown_test

import (
	"testing"

	"ratel/internal/analysis/analysistest"
	"ratel/internal/analysis/xferown"
)

// TestMigrationFromBufreuse runs the retired bufreuse analyzer's golden
// suite unchanged: every straight-line finding it reported must survive
// the move to the dataflow engine.
func TestMigrationFromBufreuse(t *testing.T) {
	analysistest.Run(t, xferown.Analyzer, "bufd")
}

// TestXferown covers the control-flow cases only the CFG engine can see:
// branch merges, loop back edges, defers, and channel transfers.
func TestXferown(t *testing.T) {
	analysistest.Run(t, xferown.Analyzer, "xferd")
}

func TestAliasKeepsSuppressionsValid(t *testing.T) {
	found := false
	for _, a := range xferown.Analyzer.Aliases {
		if a == "bufreuse" {
			found = true
		}
	}
	if !found {
		t.Fatal("xferown must alias the retired bufreuse analyzer so existing suppressions stay valid")
	}
}

func TestScope(t *testing.T) {
	for _, pkg := range []string{"ratel/internal/engine", "ratel/internal/nvme"} {
		if !xferown.Analyzer.AppliesTo(pkg) {
			t.Errorf("xferown should cover %s", pkg)
		}
	}
	for _, pkg := range []string{"ratel/internal/tensor", "ratel/internal/obs"} {
		if xferown.Analyzer.AppliesTo(pkg) {
			t.Errorf("xferown should not cover %s", pkg)
		}
	}
}
