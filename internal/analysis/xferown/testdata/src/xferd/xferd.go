// Package xferd is xferown's golden testdata for the cases the retired
// straight-line bufreuse scan could not see: branch merges, loop back
// edges, deferred releases, and writer-goroutine channel transfers.
package xferd

import "ratel/internal/nvme"

type job struct {
	key     string
	payload []byte
}

// Released on one branch only: the merge point may hold a dead buffer.
func releasedOnOnePath(ok bool) byte {
	buf := nvme.Buffers.Get(64)
	if ok {
		nvme.Buffers.Put(buf)
	}
	return buf[0] // want `pooled buffer "buf" may be used after BufPool.Put released it on a preceding path`
}

// The release feeds back through the loop: iteration 2 writes a buffer
// iteration 1 already returned to the pool. Textually the use precedes the
// release, so only a CFG-aware check catches it.
func loopCarriedRelease(n int) {
	buf := nvme.Buffers.Get(64)
	for i := 0; i < n; i++ {
		buf[0] = byte(i)      // want `pooled buffer "buf" may be used after BufPool.Put released it on a preceding path`
		nvme.Buffers.Put(buf) // want `pooled buffer "buf" may be used after BufPool.Put released it on a preceding path`
	}
}

// Reacquiring at the top of each iteration is the fix: no finding.
func loopReacquireIsFine(n int) {
	for i := 0; i < n; i++ {
		buf := nvme.Buffers.Get(64)
		buf[0] = byte(i)
		nvme.Buffers.Put(buf)
	}
}

// A deferred Put runs after every use in the body — the straight-line scan
// flagged this sanctioned idiom as use-after-release.
func deferPutIsFine() byte {
	buf := nvme.Buffers.Get(64)
	defer nvme.Buffers.Put(buf)
	return buf[0]
}

// A deferred Put after an explicit Put is a double release: the exit chain
// releases a buffer the body already returned.
func deferThenExplicitPut() {
	buf := nvme.Buffers.Get(64)
	defer nvme.Buffers.Put(buf) // want `pooled buffer "buf" used after BufPool.Put released it`
	buf[0] = 1
	nvme.Buffers.Put(buf)
}

// Queueing the buffer to a writer goroutine transfers ownership with the
// send; the producer must not touch it afterwards.
func sendTransfersOwnership(jobs chan job) {
	buf := nvme.Buffers.Get(64)
	jobs <- job{key: "k", payload: buf}
	buf[0] = 1 // want `pooled buffer "buf" used after it was queued to a writer goroutine`
}

// Filling before the send is the protocol: no finding.
func fillThenSendIsFine(jobs chan job) {
	buf := nvme.Buffers.Get(64)
	buf[0] = 1
	jobs <- job{key: "k", payload: buf}
}

// A buffer whose cleanup responsibility moves into a closure escapes this
// frame; the closure's own frame is analyzed separately.
func closureOwnsCleanupIsFine() func() {
	buf := nvme.Buffers.Get(64)
	buf[0] = 1
	return func() { nvme.Buffers.Put(buf) }
}

// Inside a closure the same dataflow applies: the closure is its own frame.
func useAfterPutInsideClosure() func() byte {
	return func() byte {
		buf := nvme.Buffers.Get(64)
		nvme.Buffers.Put(buf)
		return buf[0] // want `pooled buffer "buf" used after BufPool.Put released it`
	}
}

// Releasing on both arms then merging is exactly-once on every path when
// each arm returns; the merge is never reached with a dead buffer.
func releaseOnBothReturningArms(ok bool) error {
	buf := nvme.Buffers.Get(64)
	if ok {
		nvme.Buffers.Put(buf)
		return nil
	}
	nvme.Buffers.Put(buf)
	return nil
}
