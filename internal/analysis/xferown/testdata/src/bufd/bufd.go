// Package bufd is the migration suite inherited verbatim from the retired
// bufreuse analyzer: every finding its straight-line scan reported must
// still be reported by xferown's dataflow. It imports the real nvme
// package so receiver-type resolution works exactly as it does in the
// engine.
package bufd

import "ratel/internal/nvme"

func readAfterPut() byte {
	buf := nvme.Buffers.Get(4096)
	nvme.Buffers.Put(buf)
	return buf[0] // want `pooled buffer "buf" used after BufPool.Put released it`
}

func writeAfterPut() {
	buf := nvme.Buffers.Get(4096)
	nvme.Buffers.Put(buf)
	buf[0] = 1 // want `pooled buffer "buf" used after BufPool.Put released it`
}

func doublePut() {
	buf := nvme.Buffers.Get(4096)
	nvme.Buffers.Put(buf)
	nvme.Buffers.Put(buf) // want `pooled buffer "buf" used after BufPool.Put released it`
}

func useAfterPutFrom(a *nvme.Array) error {
	buf := nvme.Buffers.Get(4096)
	if err := a.PutFrom("k", buf); err != nil {
		return err
	}
	buf[0] = 1 // want `pooled buffer "buf" used after Array.PutFrom released it`
	return nil
}

func useAfterPutFromClass(a *nvme.Array) error {
	// The scheduler's class-tagged hand-off releases exactly like PutFrom:
	// the class routes the queue, the buffer still changes owner.
	buf := nvme.Buffers.Get(4096)
	if err := a.PutFromClass("k", buf, nvme.ClassWriteBehind); err != nil {
		return err
	}
	buf[0] = 1 // want `pooled buffer "buf" used after Array.PutFromClass released it`
	return nil
}

func capturedInClosureAfterPut() func() byte {
	buf := nvme.Buffers.Get(4096)
	nvme.Buffers.Put(buf)
	return func() byte { return buf[1] } // want `pooled buffer "buf" used after BufPool.Put released it`
}

func reassignFromGetIsFine() byte {
	buf := nvme.Buffers.Get(4096)
	nvme.Buffers.Put(buf)
	buf = nvme.Buffers.Get(8192)
	b := buf[0]
	nvme.Buffers.Put(buf)
	return b
}

func putThenReturnIsFine() {
	buf := nvme.Buffers.Get(4096)
	buf[0] = 1
	nvme.Buffers.Put(buf)
}

func arrayPutBorrowsOnly(a *nvme.Array) (byte, error) {
	// (*Array).Put borrows for the duration of the call — the caller keeps
	// ownership, so reading afterwards is the sanctioned idiom.
	buf := nvme.Buffers.Get(4096)
	if err := a.Put("k", buf); err != nil {
		return 0, err
	}
	b := buf[0]
	nvme.Buffers.Put(buf)
	return b, nil
}

func errorPathCleanupIsFine(a *nvme.Array, fill func([]byte) error) error {
	// The engine's host-tier idiom: release on the error path, then return.
	// Control never reaches the later uses after that release.
	buf := nvme.Buffers.Get(4096)
	if err := fill(buf); err != nil {
		nvme.Buffers.Put(buf)
		return err
	}
	if err := a.Put("k", buf); err != nil {
		nvme.Buffers.Put(buf)
		return err
	}
	nvme.Buffers.Put(buf)
	return nil
}

func unrelatedBufferIsFine() byte {
	a := nvme.Buffers.Get(512)
	b := nvme.Buffers.Get(512)
	nvme.Buffers.Put(a)
	v := b[0]
	nvme.Buffers.Put(b)
	return v
}
