// Package gojoin guards the goroutine-lifecycle discipline of the pipeline
// packages: every `go` statement must have a join edge — a WaitGroup.Wait,
// a channel close that terminates a range worker, or a receive of the
// goroutine's completion signal — reachable from every non-panic exit of
// the spawning function (or, for long-lived workers joined at shutdown,
// anywhere in the package). An unjoined goroutine outlives its spawner:
// construction-error paths leak writers, tests pass while work races the
// process exit, and shutdown deadlocks wait on workers nobody can stop.
package gojoin

import (
	"go/ast"
	"go/token"
	"go/types"

	"ratel/internal/analysis"
)

// Analyzer is the gojoin check.
var Analyzer = &analysis.Analyzer{
	Name: "gojoin",
	Doc: `every go statement needs a join edge on all non-panic exits

Resolves each spawned function (literal or same-package declaration) and
extracts its completion signals: WaitGroup.Done, ranging over an input
channel, or closing/sending on a completion channel. Each signal is then
matched to a join: field and package-level WaitGroups must be Wait-ed and
completion channels received somewhere in the package; function-local ones
must be joined on every path from the spawn to the function's normal exit
(the defer chain counts, the panic exit is exempt). A worker that ranges
over a channel additionally requires a close of that channel somewhere in
the package — without one the worker can never exit. Exactness: spawns of
dynamic function values are flagged (no body to inspect); a local
WaitGroup or channel handed to another function or returned is assumed
joined by its new owner; receives inside loops count as range-style
consumption for joining but carry no close obligation.`,
	Scope: []string{
		"ratel/internal/engine",
		"ratel/internal/nvme",
		"ratel/internal/opt",
		"ratel/internal/tensor/pool",
	},
	Run: run,
}

// signal is one completion mechanism the spawned body uses.
type signal struct {
	kind string // "wg" (WaitGroup.Done), "range" (ranges input channel), "done" (close/send at completion)
	v    *types.Var
}

func run(pass *analysis.Pass) error {
	decls := declBodies(pass)
	joins := collectPackageJoins(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			}
			if body == nil {
				return true
			}
			cfg := pass.FuncCFG(body)
			for _, g := range cfg.GoSpawns {
				check(pass, cfg, body, g, decls, joins)
			}
			return true
		})
	}
	return nil
}

// declBodies maps each declared function/method to its body so `go f()`
// and `go s.loop()` spawns can be resolved.
func declBodies(pass *analysis.Pass) map[*types.Func]*ast.FuncDecl {
	m := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					m[fn] = fd
				}
			}
		}
	}
	return m
}

// packageJoins are the join edges visible anywhere in the package,
// collected once: which WaitGroups are waited, which channels are closed,
// and which channels are received from.
type packageJoins struct {
	waited   map[*types.Var]bool
	closed   map[*types.Var]bool
	received map[*types.Var]bool
}

func collectPackageJoins(pass *analysis.Pass) *packageJoins {
	j := &packageJoins{
		waited:   make(map[*types.Var]bool),
		closed:   make(map[*types.Var]bool),
		received: make(map[*types.Var]bool),
	}
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if v, ok := waitGroupCall(info, n, "Wait"); ok {
					j.waited[v] = true
				}
				if v := closedChan(info, n); v != nil {
					j.closed[v] = true
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					if v := resolveVar(info, n.X); v != nil {
						j.received[v] = true
					}
				}
			case *ast.RangeStmt:
				if isChan(info, n.X) {
					if v := resolveVar(info, n.X); v != nil {
						j.received[v] = true
					}
				}
			}
			return true
		})
	}
	return j
}

func check(pass *analysis.Pass, cfg *analysis.CFG, body *ast.BlockStmt, g *ast.GoStmt, decls map[*types.Func]*ast.FuncDecl, joins *packageJoins) {
	spawned, params := spawnedBody(pass, g.Call, decls)
	if spawned == nil {
		pass.Reportf(g.Pos(), "cannot resolve the function spawned here: a dynamic spawn has no verifiable join edge")
		return
	}
	signals := collectSignals(pass, spawned, params, g.Call)

	joined := false
	var partial, unjoinedSig *signal
	for i := range signals {
		s := &signals[i]
		// A local handle copied out of a field (ch := e.fetchCh[i]) is
		// joined wherever the underlying field is.
		if isLocal(pass, s.v) {
			if base := aliasOf(pass, body, s.v); base != nil {
				s.v = base
			}
		}
		switch s.kind {
		case "range":
			// Termination obligation: a range worker needs its input closed,
			// independent of how the goroutine is otherwise joined.
			if !joins.closed[s.v] {
				pass.Reportf(g.Pos(), "worker goroutine ranges over %q but nothing in the package closes it: the worker can never exit and shutdown joins deadlock", s.v.Name())
				return
			}
			joined = true
		case "recv":
			if joins.closed[s.v] {
				joined = true
			}
		case "wg":
			if isLocal(pass, s.v) {
				switch localJoin(pass, cfg, body, g, s, isWaitOn) {
				case joinAll:
					joined = true
				case joinSome:
					partial = s
				case joinNone:
					if unjoinedSig == nil {
						unjoinedSig = s
					}
				}
			} else if joins.waited[s.v] {
				joined = true
			} else if unjoinedSig == nil {
				unjoinedSig = s
			}
		case "done":
			if isLocal(pass, s.v) {
				switch localJoin(pass, cfg, body, g, s, isRecvFrom) {
				case joinAll:
					joined = true
				case joinSome:
					partial = s
				case joinNone:
					if unjoinedSig == nil {
						unjoinedSig = s
					}
				}
			} else if joins.received[s.v] {
				joined = true
			} else if unjoinedSig == nil {
				unjoinedSig = s
			}
		}
	}
	if joined {
		return
	}
	switch {
	case partial != nil && partial.kind == "wg":
		pass.Reportf(g.Pos(), "goroutine is not joined on every path: a return path skips %s.Wait", partial.v.Name())
	case partial != nil:
		pass.Reportf(g.Pos(), "goroutine is not joined on every path: a return path skips the receive from %q", partial.v.Name())
	case unjoinedSig != nil && unjoinedSig.kind == "wg":
		pass.Reportf(g.Pos(), "goroutine signals %s.Done but nothing in the package calls %s.Wait: the spawn has no join edge", unjoinedSig.v.Name(), unjoinedSig.v.Name())
	case unjoinedSig != nil:
		pass.Reportf(g.Pos(), "goroutine signals completion on %q but nothing receives it: the spawn has no join edge", unjoinedSig.v.Name())
	default:
		pass.Reportf(g.Pos(), "goroutine has no join: it signals completion through no WaitGroup, channel close, or send a caller could wait on")
	}
}

// spawnedBody resolves the body the go statement runs: a function literal
// directly, or a same-package declaration (params returned for arg
// substitution). nil means the callee is a dynamic value.
func spawnedBody(pass *analysis.Pass, call *ast.CallExpr, decls map[*types.Func]*ast.FuncDecl) (*ast.BlockStmt, *types.Tuple) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return lit.Body, nil
	}
	if fn := analysis.CalleeFunc(pass.TypesInfo, call); fn != nil {
		if fd := decls[fn]; fd != nil {
			sig, _ := fn.Type().(*types.Signature)
			if sig != nil {
				return fd.Body, sig.Params()
			}
			return fd.Body, nil
		}
	}
	return nil, nil
}

// collectSignals extracts the completion signals of a spawned body. When
// the body belongs to a declared function, signal variables that are its
// parameters are substituted with the spawn-site arguments so local joins
// are checked against the caller's variables; a parameter that cannot be
// mapped back drops the signal (assumed joined by the callee's contract).
func collectSignals(pass *analysis.Pass, body *ast.BlockStmt, params *types.Tuple, call *ast.CallExpr) []signal {
	info := pass.TypesInfo
	var out []signal
	seen := make(map[signal]bool)
	add := func(kind string, v *types.Var) {
		if v == nil {
			return
		}
		if params != nil {
			mapped, ok := substituteParam(info, v, params, call)
			if !ok {
				return
			}
			v = mapped
		}
		s := signal{kind: kind, v: v}
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	loopDepth := 0
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			loopDepth++
			ast.Inspect(n.Body, walk)
			loopDepth--
			return false
		case *ast.RangeStmt:
			if isChan(info, n.X) {
				add("range", resolveVar(info, n.X))
			}
			loopDepth++
			ast.Inspect(n.Body, walk)
			loopDepth--
			return false
		case *ast.CallExpr:
			if v, ok := waitGroupCall(info, n, "Done"); ok {
				add("wg", v)
			}
			if v := closedChan(info, n); v != nil {
				add("done", v)
			}
		case *ast.SendStmt:
			add("done", resolveVar(info, n.Chan))
		case *ast.UnaryExpr:
			// A receive inside the worker's loop consumes an input channel
			// range-style: closing that channel is a join, but the close
			// obligation is not implied (the loop may exit other ways).
			if n.Op == token.ARROW && loopDepth > 0 {
				add("recv", resolveVar(info, n.X))
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	return out
}

// substituteParam maps a callee parameter back to the caller variable
// passed at the spawn site.
func substituteParam(info *types.Info, v *types.Var, params *types.Tuple, call *ast.CallExpr) (*types.Var, bool) {
	for i := 0; i < params.Len(); i++ {
		if params.At(i) != v {
			continue
		}
		if i < len(call.Args) {
			if mapped := resolveVar(info, call.Args[i]); mapped != nil {
				return mapped, true
			}
		}
		return nil, false
	}
	return v, true // not a parameter: field or captured variable
}

// isLocal reports whether v lives in some function's scope (as opposed to
// a struct field or package-level variable, whose joins are package-wide).
func isLocal(pass *analysis.Pass, v *types.Var) bool {
	if v.IsField() {
		return false
	}
	return v.Parent() != nil && v.Parent() != pass.Pkg.Scope() && v.Parent() != types.Universe
}

type joinResult int

const (
	joinNone joinResult = iota // no join site in the function; not escaped
	joinSome                   // a join exists but some path to the exit skips it
	joinAll                    // every non-panic path from the spawn passes a join
)

// localJoin checks a function-local signal variable: every path from the
// spawn to the normal exit must pass a block containing the join (the
// deferred chain counts). A variable handed to another function, stored,
// or returned is assumed joined by its new owner.
func localJoin(pass *analysis.Pass, cfg *analysis.CFG, body *ast.BlockStmt, g *ast.GoStmt, s *signal, pred func(*types.Info, ast.Node, *types.Var) bool) joinResult {
	info := pass.TypesInfo
	hasJoin := false
	ast.Inspect(body, func(n ast.Node) bool {
		if pred(info, n, s.v) {
			hasJoin = true
		}
		return !hasJoin
	})
	if !hasJoin {
		if escapes(info, body, s.v) {
			return joinAll
		}
		return joinNone
	}
	if allPathsJoin(info, cfg, g, s.v, pred) {
		return joinAll
	}
	return joinSome
}

// allPathsJoin walks the CFG from the spawn block: a path that reaches the
// normal exit without passing a join block is a leak. The panic exit is
// exempt (panics unwind past joins by design).
func allPathsJoin(info *types.Info, cfg *analysis.CFG, g *ast.GoStmt, v *types.Var, pred func(*types.Info, ast.Node, *types.Var) bool) bool {
	nodeJoins := func(n ast.Node) bool {
		found := false
		analysis.InspectShallow(n, func(m ast.Node) {
			if pred(info, m, v) {
				found = true
			}
		})
		return found
	}
	var spawn *analysis.Block
	spawnIdx := -1
	for _, b := range cfg.Blocks {
		for i, n := range b.Nodes {
			if n == g {
				spawn, spawnIdx = b, i
				break
			}
		}
		if spawn != nil {
			break
		}
	}
	if spawn == nil {
		return false
	}
	// The rest of the spawn block runs on every path out of it.
	for _, n := range spawn.Nodes[spawnIdx+1:] {
		if nodeJoins(n) {
			return true
		}
	}
	blockJoins := func(b *analysis.Block) bool {
		for _, n := range b.Nodes {
			if nodeJoins(n) {
				return true
			}
		}
		return false
	}
	visited := map[*analysis.Block]bool{spawn: true}
	stack := append([]*analysis.Block(nil), spawn.Succs...)
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited[b] {
			continue
		}
		visited[b] = true
		if b == cfg.Exit {
			return false
		}
		if b == cfg.PanicExit || blockJoins(b) {
			continue
		}
		stack = append(stack, b.Succs...)
	}
	return true
}

// escapes reports whether v is handed beyond this function: passed as a
// call argument (directly or by address), returned, or placed in a
// composite literal. Join/signal uses do not count.
func escapes(info *types.Info, body *ast.BlockStmt, v *types.Var) bool {
	usesV := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if u, ok := info.Uses[id].(*types.Var); ok && u == v {
					found = true
				}
			}
			return !found
		})
		return found
	}
	escaped := false
	ast.Inspect(body, func(n ast.Node) bool {
		if escaped {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if _, ok := waitGroupCall(info, n, "Done"); ok {
				return true
			}
			if _, ok := waitGroupCall(info, n, "Wait"); ok {
				return true
			}
			if closedChan(info, n) != nil {
				return true
			}
			for _, arg := range n.Args {
				if usesV(arg) {
					escaped = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if usesV(r) {
					escaped = true
				}
			}
		case *ast.CompositeLit:
			for _, e := range n.Elts {
				if usesV(e) {
					escaped = true
				}
			}
		}
		return !escaped
	})
	return escaped
}

// isWaitOn reports whether n is v.Wait().
func isWaitOn(info *types.Info, n ast.Node, v *types.Var) bool {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return false
	}
	w, ok := waitGroupCall(info, call, "Wait")
	return ok && w == v
}

// isRecvFrom reports whether n receives from v: a <-v expression or a
// range over it.
func isRecvFrom(info *types.Info, n ast.Node, v *types.Var) bool {
	switch n := n.(type) {
	case *ast.UnaryExpr:
		return n.Op == token.ARROW && resolveVar(info, n.X) == v
	case *ast.RangeStmt:
		return isChan(info, n.X) && resolveVar(info, n.X) == v
	}
	return false
}

// waitGroupCall matches wg.<method>() where wg resolves to a
// sync.WaitGroup variable or field.
func waitGroupCall(info *types.Info, call *ast.CallExpr, method string) (*types.Var, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return nil, false
	}
	if !analysis.NamedType(info.TypeOf(sel.X), "sync", "WaitGroup") {
		return nil, false
	}
	v := resolveVar(info, sel.X)
	if v == nil {
		return nil, false
	}
	return v, true
}

// closedChan matches close(ch) and resolves the channel variable.
func closedChan(info *types.Info, call *ast.CallExpr) *types.Var {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "close" {
		return nil
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "close" {
		return nil
	}
	if len(call.Args) != 1 {
		return nil
	}
	return resolveVar(info, call.Args[0])
}

// resolveVar maps an expression to the variable or field it names. An
// index expression resolves to its base: the engine keeps per-block
// channels in slice fields (e.fetchCh[i]), and join edges are tracked at
// the granularity of the slice that holds them.
func resolveVar(info *types.Info, e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			return v
		}
		if v, ok := info.Defs[e].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			if v, ok := sel.Obj().(*types.Var); ok {
				return v
			}
			return nil
		}
		if v, ok := info.Uses[e.Sel].(*types.Var); ok {
			return v
		}
	case *ast.IndexExpr:
		return resolveVar(info, e.X)
	}
	return nil
}

// aliasOf resolves a local variable initialized from a field or
// package-level variable (ch := e.fetchCh[i]) back to that variable, so
// package-wide joins on the underlying channel count. Only single-value
// definitions are followed, and only when the result is nonlocal.
func aliasOf(pass *analysis.Pass, body *ast.BlockStmt, v *types.Var) *types.Var {
	info := pass.TypesInfo
	var base *types.Var
	ast.Inspect(body, func(n ast.Node) bool {
		if base != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, l := range n.Lhs {
				if resolveVar(info, l) != v {
					continue
				}
				if r := resolveVar(info, n.Rhs[i]); r != nil && !isLocal(pass, r) {
					base = r
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) != len(n.Values) {
				return true
			}
			for i, name := range n.Names {
				if resolveVar(info, name) != v {
					continue
				}
				if r := resolveVar(info, n.Values[i]); r != nil && !isLocal(pass, r) {
					base = r
				}
			}
		}
		return base == nil
	})
	return base
}

func isChan(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}
