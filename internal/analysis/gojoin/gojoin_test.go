package gojoin_test

import (
	"testing"

	"ratel/internal/analysis/analysistest"
	"ratel/internal/analysis/gojoin"
)

func TestGojoin(t *testing.T) {
	analysistest.Run(t, gojoin.Analyzer, "gjd")
}

func TestScope(t *testing.T) {
	for _, pkg := range []string{"ratel/internal/engine", "ratel/internal/nvme", "ratel/internal/tensor/pool"} {
		if !gojoin.Analyzer.AppliesTo(pkg) {
			t.Errorf("gojoin should cover %s", pkg)
		}
	}
	if gojoin.Analyzer.AppliesTo("ratel/internal/analysis") {
		t.Error("gojoin covers only the goroutine-spawning pipeline packages")
	}
}
