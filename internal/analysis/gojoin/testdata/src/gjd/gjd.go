// Package gjd is gojoin's golden testdata: every go statement needs a join
// edge reachable from all non-panic exits.
package gjd

import "sync"

func work() {}

// Fan-out with a Wait on the only exit: clean.
func wgJoined(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// The construction-error idiom gone wrong: the error return leaves before
// Wait, so the goroutine outlives the call on exactly that path.
func wgSkippedOnErrorPath(fail func() error) error {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `goroutine is not joined on every path: a return path skips wg.Wait`
		defer wg.Done()
		work()
	}()
	if err := fail(); err != nil {
		return err
	}
	wg.Wait()
	return nil
}

// A deferred Wait rides the exit chain and covers the error return: clean.
func wgDeferredWaitIsFine(fail func() error) error {
	var wg sync.WaitGroup
	wg.Add(1)
	defer wg.Wait()
	go func() {
		defer wg.Done()
		work()
	}()
	if err := fail(); err != nil {
		return err
	}
	return nil
}

// No WaitGroup, no channel: nothing a caller could wait on.
func fireAndForget() {
	go work() // want `goroutine has no join`
}

// A dynamic function value has no body to find a signal in.
func dynamicSpawn(fn func()) {
	go fn() // want `dynamic spawn has no verifiable join edge`
}

type server struct {
	jobs chan int
	done chan struct{}
}

func (s *server) loop() {
	for j := range s.jobs {
		_ = j
	}
	close(s.done)
}

// The input channel is closed by Close and the done channel received
// there: the worker terminates and joins at shutdown.
func (s *server) start() {
	go s.loop()
}

func (s *server) close() {
	close(s.jobs)
	<-s.done
}

type leaky struct {
	jobs chan int
}

func (l *leaky) loop() {
	for j := range l.jobs {
		_ = j
	}
}

// Nothing in the package ever closes l.jobs: the worker can never exit.
func (l *leaky) start() {
	go l.loop() // want `worker goroutine ranges over "jobs" but nothing in the package closes it`
}

// Completion channel closed by the goroutine and received by the spawner:
// a classic one-shot join.
func doneReceivedIsFine() {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	<-done
}

// The spawner drops its only handle on the completion signal.
func orphanDone() {
	done := make(chan struct{})
	go func() { // want `goroutine signals completion on "done" but nothing receives it`
		work()
		close(done)
	}()
}

// Handing the WaitGroup to another function transfers the join duty.
func spawnAndHandOff(join func(*sync.WaitGroup)) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	join(&wg)
}

// A declared worker ranging over a parameter: the spawn-site argument is
// what must be closed, and it is.
func drain(ch chan int) {
	for v := range ch {
		_ = v
	}
}

func startDrain() {
	ch := make(chan int)
	go drain(ch)
	ch <- 1
	close(ch)
}

func leakDrain() chan int {
	ch := make(chan int)
	go drain(ch) // want `worker goroutine ranges over "ch" but nothing in the package closes it`
	return ch
}

// A per-slot channel copied into a local before the spawn: the send on ch
// aliases f.chans[i], and the drain's receive joins it.
type fetcher struct {
	chans []chan error
}

func (f *fetcher) launch(i int) {
	ch := f.chans[i]
	go func() {
		ch <- nil
	}()
}

func (f *fetcher) drain() {
	for i := range f.chans {
		<-f.chans[i]
	}
}

// The array scheduler's persistent-dispatcher shape: per-device workers
// parked on a condition variable, signalling a field WaitGroup whose only
// Wait lives in close. The Done in the worker body plus the package-level
// Wait form the join edge.
type dispatcher struct {
	mu     sync.Mutex
	cond   *sync.Cond
	closed bool
	wg     sync.WaitGroup
}

func (d *dispatcher) start(n int) {
	for i := 0; i < n; i++ {
		d.wg.Add(1)
		go d.loop()
	}
}

func (d *dispatcher) loop() {
	defer d.wg.Done()
	d.mu.Lock()
	for !d.closed {
		d.cond.Wait()
	}
	d.mu.Unlock()
}

func (d *dispatcher) close() {
	d.mu.Lock()
	d.closed = true
	d.cond.Broadcast()
	d.mu.Unlock()
	d.wg.Wait()
}

// The same shape with the Wait forgotten: the field WaitGroup is signalled
// but no shutdown path ever joins the dispatchers.
type leakyDispatcher struct {
	wg sync.WaitGroup
}

func (d *leakyDispatcher) start(n int) {
	for i := 0; i < n; i++ {
		d.wg.Add(1)
		go d.loop() // want `goroutine signals wg.Done but nothing in the package calls wg.Wait: the spawn has no join edge`
	}
}

func (d *leakyDispatcher) loop() {
	defer d.wg.Done()
	work()
}

// A select-style worker consumes via receive-with-ok inside its loop:
// closing the input joins it, with no range-style close obligation.
func recvLoopWorker() {
	ch := make(chan int)
	go func() {
		for {
			_, ok := <-ch
			if !ok {
				return
			}
		}
	}()
	ch <- 1
	close(ch)
}
