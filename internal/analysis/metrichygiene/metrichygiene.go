// Package metrichygiene enforces metric-name hygiene in the live-engine
// packages: every instrument registered on an obs.Registry (Counter, Gauge,
// Histogram) must be named by a compile-time constant in snake_case (dots
// as namespace separators, e.g. "engine.step_wall_ns"), and registration
// must happen once at setup — never inside a loop and never with a name
// built per call. The registry interns instruments by name under a mutex,
// so a fmt.Sprintf name on a hot path both allocates and takes the lock
// every call, and a dynamically-built name fractures the metric namespace
// the OpenMetrics exporter and the dashboards depend on.
package metrichygiene

import (
	"go/ast"
	"go/constant"
	"regexp"

	"ratel/internal/analysis"
)

const obsPkg = "ratel/internal/obs"

// nameRE is the canonical metric-name shape: snake_case segments joined by
// dots, starting with a letter ("engine.step_wall_ns", "nvme.buf_hits").
var nameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z0-9_]+)*$`)

// Analyzer is the metrichygiene check.
var Analyzer = &analysis.Analyzer{
	Name: "metrichygiene",
	Doc: `metric names must be literal snake_case constants registered once

Flags obs.Registry instrument registrations (Counter, Gauge, Histogram)
whose name argument is not a compile-time string constant (fmt.Sprintf and
runtime concatenation fracture the metric namespace and allocate on hot
paths), whose name does not match ^[a-z][a-z0-9_]*(\.[a-z0-9_]+)*$, or
that sit inside a for/range loop (the registry interns by name under a
mutex — registration belongs in setup code, with the instrument handle
kept).`,
	Scope: []string{
		"ratel/internal/engine",
		"ratel/internal/nvme",
		"ratel/internal/opt",
		"ratel/internal/tensor/pool",
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		var loopDepth int
		var walk func(n ast.Node) bool
		inspectInLoop := func(nodes ...ast.Node) {
			loopDepth++
			for _, sub := range nodes {
				if sub != nil {
					ast.Inspect(sub, walk)
				}
			}
			loopDepth--
		}
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt:
				// The init/cond/post expressions repeat with the body.
				inspectInLoop(stmtOrNil(n.Init), exprOrNil(n.Cond), stmtOrNil(n.Post), n.Body)
				return false
			case *ast.RangeStmt:
				inspectInLoop(exprOrNil(n.X), n.Body)
				return false
			case *ast.CallExpr:
				checkRegistration(pass, n, loopDepth > 0)
			}
			return true
		}
		ast.Inspect(f, walk)
	}
	return nil
}

// stmtOrNil / exprOrNil avoid typed-nil interface values from optional
// AST fields (a nil *ast.ExprStmt boxed as ast.Node is non-nil).
func stmtOrNil(s ast.Stmt) ast.Node {
	if s == nil {
		return nil
	}
	return s
}

func exprOrNil(e ast.Expr) ast.Node {
	if e == nil {
		return nil
	}
	return e
}

// checkRegistration validates one possible instrument registration call.
func checkRegistration(pass *analysis.Pass, call *ast.CallExpr, inLoop bool) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || analysis.FuncPkgPath(fn) != obsPkg {
		return
	}
	switch fn.Name() {
	case "Counter", "Gauge", "Histogram":
	default:
		return
	}
	// Only registry lookups take a name; the instrument types' own methods
	// (Counter.Add etc.) have different names, so arity is the remaining
	// guard against same-named helpers.
	if len(call.Args) != 1 {
		return
	}
	arg := ast.Unparen(call.Args[0])
	tv := pass.TypesInfo.Types[call.Args[0]]
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		if inner, ok := arg.(*ast.CallExpr); ok && analysis.IsPkgCall(pass.TypesInfo, inner, "fmt", "Sprintf", "Sprint") {
			pass.Reportf(arg.Pos(), "metric name built with fmt.%s: metric names must be literal constants registered once at setup", analysis.CalleeFunc(pass.TypesInfo, inner).Name())
			return
		}
		pass.Reportf(arg.Pos(), "metric name is not a compile-time constant: register instruments once at setup with literal names")
		return
	}
	name := constant.StringVal(tv.Value)
	if !nameRE.MatchString(name) {
		pass.Reportf(arg.Pos(), "metric name %q is not snake_case (want ^[a-z][a-z0-9_]*(\\.[a-z0-9_]+)*$)", name)
	}
	if inLoop {
		pass.Reportf(call.Pos(), "instrument %q registered inside a loop: the registry lookup takes a lock — register once at setup and keep the handle", name)
	}
}
