package metrichygiene_test

import (
	"testing"

	"ratel/internal/analysis/analysistest"
	"ratel/internal/analysis/metrichygiene"
)

func TestMetrichygiene(t *testing.T) {
	analysistest.Run(t, metrichygiene.Analyzer, "metricsd")
}

func TestScope(t *testing.T) {
	for _, pkg := range []string{
		"ratel/internal/engine", "ratel/internal/nvme",
		"ratel/internal/opt", "ratel/internal/tensor/pool",
	} {
		if !metrichygiene.Analyzer.AppliesTo(pkg) {
			t.Errorf("metrichygiene should cover %s", pkg)
		}
	}
	if metrichygiene.Analyzer.AppliesTo("ratel/internal/sim") {
		t.Error("metrichygiene should not cover the simulator")
	}
}
