// Package metricsd is metrichygiene's golden testdata. It imports the real
// obs package so the analyzer resolves Registry methods exactly as it does
// in the engine.
package metricsd

import (
	"fmt"

	"ratel/internal/obs"
)

const histName = "engine.step_wall_ns"

type instruments struct {
	steps *obs.Counter
	wall  *obs.Histogram
}

func setupIsFine(r *obs.Registry) instruments {
	return instruments{
		steps: r.Counter("engine.steps"),
		wall:  r.Histogram(histName), // constants are fine, not just literals
	}
}

func gaugeIsFine(r *obs.Registry) *obs.Gauge {
	return r.Gauge("flow.host_nvme_write_bytes")
}

func sprintfName(r *obs.Registry, i int) *obs.Counter {
	return r.Counter(fmt.Sprintf("engine.block%d.bytes", i)) // want `metric name built with fmt.Sprintf`
}

func concatenatedName(r *obs.Registry, lane string) *obs.Gauge {
	return r.Gauge("engine." + lane) // want `metric name is not a compile-time constant`
}

func badCase(r *obs.Registry) *obs.Counter {
	return r.Counter("Engine.StepCount") // want `not snake_case`
}

func badSeparator(r *obs.Registry) *obs.Gauge {
	return r.Gauge("engine.step-wall") // want `not snake_case`
}

func registeredInLoop(r *obs.Registry, n int) {
	for i := 0; i < n; i++ {
		r.Counter("engine.loop_hits").Add(1) // want `registered inside a loop`
	}
}

func registeredInRange(r *obs.Registry, names []string) {
	for range names {
		r.Gauge("engine.range_gauge").Set(1) // want `registered inside a loop`
	}
}

func handleUseInLoopIsFine(r *obs.Registry, n int) {
	c := r.Counter("engine.hoisted")
	for i := 0; i < n; i++ {
		c.Add(1) // the handle was hoisted; Add in a loop is the point
	}
}

func nilRegistryStillChecked() {
	var r *obs.Registry
	r.Counter("BAD.Name") // want `not snake_case`
}
