package analysis

import (
	"go/ast"
	"go/types"
)

// CalleeFunc resolves the *types.Func a call invokes (package function or
// method), or nil when the callee is a builtin, a function value, or not
// resolvable with the available type information.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Qualified identifier (pkg.Func).
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// FuncPkgPath reports the import path of the package declaring fn; methods
// report their receiver type's package.
func FuncPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// IsPkgCall reports whether call invokes a function or method declared in
// the package with import path pkgPath, optionally restricted to the given
// names (any name when names is empty).
func IsPkgCall(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) bool {
	fn := CalleeFunc(info, call)
	if fn == nil || FuncPkgPath(fn) != pkgPath {
		return false
	}
	if len(names) == 0 {
		return true
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// NamedType reports whether t (after pointer indirection) is the named type
// pkgPath.name.
func NamedType(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// UsedVar resolves an expression to the variable it names, or nil.
func UsedVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}

// InspectShallow walks one CFG node's own subtree the way the dataflow
// analyzers need: function literals are reported to f but not descended
// into (they are separate frames), a defer statement's subtree is skipped
// entirely (its effects belong to the exit chain block, which holds the
// same CallExpr), and a range statement contributes only its operand and
// key/value (its body lives in other blocks).
func InspectShallow(n ast.Node, f func(ast.Node)) {
	if n == nil {
		return
	}
	if r, ok := n.(*ast.RangeStmt); ok {
		f(r)
		InspectShallow(r.X, f)
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if _, ok := m.(*ast.DeferStmt); ok {
			return false
		}
		f(m)
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if r, ok := m.(*ast.RangeStmt); ok && r != n {
			InspectShallow(r, f)
			return false
		}
		return true
	})
}

// ReturnsError reports whether the call's results include an error.
func ReturnsError(info *types.Info, call *ast.CallExpr) bool {
	fn := CalleeFunc(info, call)
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok {
			if named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
				return true
			}
		}
	}
	return false
}
