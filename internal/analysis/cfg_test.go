package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildFrom parses a file containing exactly one function declaration and
// returns its CFG plus the fset used to parse it.
func buildFrom(t *testing.T, body string) (*CFG, *token.FileSet) {
	t.Helper()
	src := "package p\n" + body
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return BuildCFG(fd.Body), fset
		}
	}
	t.Fatal("no function found")
	return nil, nil
}

// wantShape pins the formatted graph. The golden is written with leading
// tab indentation for readability; both sides are trimmed per line.
func wantShape(t *testing.T, c *CFG, fset *token.FileSet, golden string) {
	t.Helper()
	got := strings.TrimSpace(c.Format(fset))
	var want []string
	for _, line := range strings.Split(strings.TrimSpace(golden), "\n") {
		want = append(want, strings.TrimSpace(line))
	}
	if got != strings.Join(want, "\n") {
		t.Errorf("CFG shape mismatch\n--- got ---\n%s\n--- want ---\n%s", got, strings.Join(want, "\n"))
	}
}

func TestCFGStraightLine(t *testing.T) {
	c, fset := buildFrom(t, `func f() { x := 1; use(x) }`)
	wantShape(t, c, fset, `
		b0 entry: {x := 1} {use(x)} -> b1
		b1 exit:
		b2 panic.exit:
	`)
}

func TestCFGIfElse(t *testing.T) {
	c, fset := buildFrom(t, `
func f(ok bool) int {
	if ok {
		return 1
	} else {
		touch()
	}
	return 2
}`)
	wantShape(t, c, fset, `
		b0 entry: {ok} -> b1 b3
		b1 if.then: {return 1} -> b4
		b2 if.done: {return 2} -> b4
		b3 if.else: {touch()} -> b2
		b4 exit:
		b5 panic.exit:
	`)
}

// Defer ordering: defers run LIFO, so the chain on the exit path must list
// the second registration first.
func TestCFGDeferOrdering(t *testing.T) {
	c, fset := buildFrom(t, `
func f() {
	defer first()
	defer second()
	work()
}`)
	wantShape(t, c, fset, `
		b0 entry: {defer first()} {defer second()} {work()} -> b3
		b1 exit:
		b2 panic.exit:
		b3 defer: {second()} -> b4
		b4 defer: {first()} -> b1
	`)
	if len(c.Defers) != 2 {
		t.Fatalf("Defers = %d, want 2", len(c.Defers))
	}
}

// A defer registered under a condition gets a bypass edge on exits it does
// not dominate: the exit path may skip it.
func TestCFGConditionalDeferBypass(t *testing.T) {
	c, fset := buildFrom(t, `
func f(ok bool) {
	if ok {
		defer cleanup()
	}
	work()
}`)
	wantShape(t, c, fset, `
		b0 entry: {ok} -> b1 b2
		b1 if.then: {defer cleanup()} -> b2
		b2 if.done: {work()} -> b5 b3
		b3 exit:
		b4 panic.exit:
		b5 defer: {cleanup()} -> b3
	`)
}

// An unconditional defer plus an explicit panic: the panic path runs the
// defer chain into the panic exit, the return path into the normal exit.
func TestCFGPanicRunsDefers(t *testing.T) {
	c, fset := buildFrom(t, `
func f(bad bool) {
	defer rescue()
	if bad {
		panic("bad")
	}
	work()
}`)
	wantShape(t, c, fset, `
		b0 entry: {defer rescue()} {bad} -> b1 b2
		b1 if.then: {panic("bad")} -> b5
		b2 if.done: {work()} -> b6
		b3 exit:
		b4 panic.exit:
		b5 defer: {rescue()} -> b4
		b6 defer: {rescue()} -> b3
	`)
}

// panic/recover: recover lives inside a deferred closure; the closure body
// is opaque (one node) and the chain reaches both exits.
func TestCFGPanicRecover(t *testing.T) {
	c, fset := buildFrom(t, `
func f() {
	defer func() {
		if r := recover(); r != nil {
			note(r)
		}
	}()
	panic("boom")
}`)
	wantShape(t, c, fset, `
		b0 entry: {defer func() { if r := recover(); r != nil { note(r) } }()} {panic("boom")} -> b3
		b1 exit:
		b2 panic.exit:
		b3 defer: {func() { if r := recover(); r != nil { note(r) } }()} -> b2
	`)
}

func TestCFGForLoop(t *testing.T) {
	c, fset := buildFrom(t, `
func f(n int) {
	for i := 0; i < n; i++ {
		work(i)
	}
	done()
}`)
	wantShape(t, c, fset, `
		b0 entry: {i := 0} -> b1
		b1 for.head: {i < n} -> b2 b3
		b2 for.body: {work(i)} -> b4
		b3 for.done: {done()} -> b5
		b4 for.post: {i++} -> b1
		b5 exit:
		b6 panic.exit:
	`)
}

// Labeled break/continue: continue outer must target the outer post block,
// break outer the outer done block — not the inner loop's.
func TestCFGLabeledBreakContinue(t *testing.T) {
	c, fset := buildFrom(t, `
func f(n int) {
	outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if skip(j) {
				continue outer
			}
			if stop(j) {
				break outer
			}
			work(i, j)
		}
	}
}`)
	wantShape(t, c, fset, `
		b0 entry: -> b1
		b1 label.outer: {i := 0} -> b2
		b2 for.head: {i < n} -> b3 b4
		b3 for.body: {j := 0} -> b6
		b4 for.done: -> b14
		b5 for.post: {i++} -> b2
		b6 for.head: {j < n} -> b7 b8
		b7 for.body: {skip(j)} -> b10 b11
		b8 for.done: -> b5
		b9 for.post: {j++} -> b6
		b10 if.then: -> b5
		b11 if.done: {stop(j)} -> b12 b13
		b12 if.then: -> b4
		b13 if.done: {work(i, j)} -> b9
		b14 exit:
		b15 panic.exit:
	`)
}

func TestCFGRangeLoop(t *testing.T) {
	c, fset := buildFrom(t, `
func f(xs []int) {
	for _, x := range xs {
		work(x)
	}
}`)
	wantShape(t, c, fset, `
		b0 entry: -> b1
		b1 range.head: {_, x := range xs} -> b2 b3
		b2 range.body: {work(x)} -> b1
		b3 range.done: -> b4
		b4 exit:
		b5 panic.exit:
	`)
}

// Select with default: one arm per comm clause plus a default arm; every
// arm joins at select.done, and the head branches to all of them.
func TestCFGSelectWithDefault(t *testing.T) {
	c, fset := buildFrom(t, `
func f(ch chan int, out chan int) {
	select {
	case v := <-ch:
		use(v)
	case out <- 1:
		sent()
	default:
		idle()
	}
	done()
}`)
	wantShape(t, c, fset, `
		b0 entry: -> b2 b3 b4
		b1 select.done: {done()} -> b5
		b2 select.recv: {v := <-ch} {use(v)} -> b1
		b3 select.send: {out <- 1} {sent()} -> b1
		b4 select.default: {idle()} -> b1
		b5 exit:
		b6 panic.exit:
	`)
}

func TestCFGSwitchFallthrough(t *testing.T) {
	c, fset := buildFrom(t, `
func f(x int) {
	switch x {
	case 1:
		one()
		fallthrough
	case 2:
		two()
	default:
		other()
	}
}`)
	wantShape(t, c, fset, `
		b0 entry: {x} -> b2 b3 b4
		b1 switch.done: -> b5
		b2 switch.case: {1} {one()} -> b3
		b3 switch.case: {2} {two()} -> b1
		b4 switch.default: {other()} -> b1
		b5 exit:
		b6 panic.exit:
	`)
}

// Nested closures are opaque: go/defer statements inside a function
// literal belong to the literal's own CFG, not the enclosing one, and the
// literal appears as a single node.
func TestCFGNestedClosuresOpaque(t *testing.T) {
	c, _ := buildFrom(t, `
func f() {
	go func() {
		defer inner()
		go spawnDeep()
	}()
	work()
}`)
	if len(c.GoSpawns) != 1 {
		t.Fatalf("GoSpawns = %d, want 1 (nested go belongs to the closure)", len(c.GoSpawns))
	}
	if len(c.Defers) != 0 {
		t.Fatalf("Defers = %d, want 0 (defer inside closure is opaque)", len(c.Defers))
	}
	// The closure body builds its own graph.
	lit := c.GoSpawns[0].Call.Fun.(*ast.FuncLit)
	inner := BuildCFG(lit.Body)
	if len(inner.Defers) != 1 || len(inner.GoSpawns) != 1 {
		t.Fatalf("inner Defers=%d GoSpawns=%d, want 1 and 1", len(inner.Defers), len(inner.GoSpawns))
	}
}

func TestCFGGoto(t *testing.T) {
	c, fset := buildFrom(t, `
func f() {
	i := 0
loop:
	if i < 3 {
		i++
		goto loop
	}
}`)
	wantShape(t, c, fset, `
		b0 entry: {i := 0} -> b1
		b1 label.loop: {i < 3} -> b2 b3
		b2 if.then: {i++} -> b1
		b3 if.done: -> b4
		b4 exit:
		b5 panic.exit:
	`)
}

func TestCFGNilBody(t *testing.T) {
	c := BuildCFG(nil)
	if c.Entry == nil || c.Exit == nil || c.PanicExit == nil {
		t.Fatal("nil body must still produce entry/exit blocks")
	}
	if len(c.Entry.Succs) != 1 || c.Entry.Succs[0] != c.Exit {
		t.Fatalf("nil body entry should flow straight to exit, got %v", c.Entry.Succs)
	}
}
